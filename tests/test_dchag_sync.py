"""The replicated-layer invariant behind D-CHAG's forward-only gather (§3.3).

The ``core/dchag.py`` docstring promises this module: the forward-only
AllGather is only sound if the final cross-attention (and everything after
it) stays *replicated* across the group — identical init, and then
**bitwise-identical gradients on every rank at every training step**, with
no gradient AllReduce to fall back on.  That in turn rests on the runtime's
deterministic, rank-ordered reductions.  These tests assert the chain
end-to-end over several real AdamW steps, and that the backward pass issues
zero collectives (via the ``dist.stats`` traffic counters).
"""

import numpy as np
import pytest

from repro.core import DCHAG, DCHAGConfig
from repro.dist import run_spmd_world
from repro.tensor import AdamW

B, C, IMG, P, D, HEADS = 2, 16, 16, 4, 32, 4
STEPS = 5
N_TOKENS = (IMG // P) ** 2


def _train(comm, kind, fanout):
    imgs = np.random.default_rng(11).standard_normal((B, C, IMG, IMG)).astype(np.float32)
    cfg = DCHAGConfig(channels=C, patch=P, dim=D, heads=HEADS, kind=kind, fanout=fanout)
    model = DCHAG(comm, None, cfg, rng_seed=9)
    opt = AdamW(model.parameters(), lr=1e-3, weight_decay=0.0)
    shared = model.shared_parameters()

    grads_per_step, weights_per_step = [], []
    for step in range(STEPS):
        for p in model.parameters():
            p.grad = None
        out = model(imgs + 0.01 * step)  # slightly different batch each step
        loss = (out * out).mean()
        comm.phase = "backward"
        loss.backward()
        comm.phase = ""
        grads_per_step.append([p.grad.copy() for p in shared])
        opt.step()
        weights_per_step.append([p.data.copy() for p in shared])
    return grads_per_step, weights_per_step


@pytest.fixture(scope="module", params=[("linear", 0), ("cross", 2)], ids=["linear", "cross-tree2"])
def trained(request):
    kind, fanout = request.param
    results, world = run_spmd_world(_train, 4, kind, fanout)
    return results, world


class TestReplicatedLayerInvariant:
    def test_final_layer_gradients_bitwise_identical_every_step(self, trained):
        """The docstring's promise, verbatim: bitwise-identical gradients on
        every rank, at every one of several training steps."""
        results, _ = trained
        ref_grads, _ = results[0]
        for rank, (grads, _) in enumerate(results[1:], start=1):
            for step in range(STEPS):
                assert len(grads[step]) == len(ref_grads[step]) > 0
                for a, b in zip(ref_grads[step], grads[step]):
                    np.testing.assert_array_equal(
                        a, b, err_msg=f"rank {rank}, step {step}: shared grad diverged"
                    )

    def test_final_layer_weights_bitwise_identical_after_optimizer(self, trained):
        """Identical grads + identical AdamW state ⇒ identical weights, so
        the replication invariant is self-sustaining across steps."""
        results, _ = trained
        _, ref_weights = results[0]
        for _, weights in results[1:]:
            for step in range(STEPS):
                for a, b in zip(ref_weights[step], weights[step]):
                    np.testing.assert_array_equal(a, b)

    def test_forward_only_gather_issues_zero_backward_collectives(self, trained):
        """dist.stats counters: no collective of any kind in any backward."""
        _, world = trained
        assert world.traffic.count(phase="backward") == 0

    def test_traffic_is_exactly_one_gather_per_rank_per_step(self, trained):
        """§3.3: the entire communication of a training step is one AllGather
        of one channel per rank."""
        _, world = trained
        assert world.traffic.ops_histogram() == {"all_gather": 4 * STEPS}
        # Per-rank payload per step: one aggregated channel, [B, 1, N, D] floats.
        assert world.traffic.payload_bytes(op="all_gather", rank=0) == STEPS * B * N_TOKENS * D * 4
