"""Elastic recovery: scripted rank death → shrink → reshard → resume.

The headline invariant: a training run interrupted by rank loss and resumed
at a smaller world size follows the same loss trajectory as an uninterrupted
run of the same schedule (FSDP math is world-size independent; the
checkpoint restores parameters, moments and the step index exactly).
"""

import numpy as np
import pytest

from repro.dist import SpmdError, run_spmd, run_spmd_world
from repro.elastic import (
    ElasticSupervisor,
    FailurePlan,
    InjectedFailure,
    fsdp_training_segment,
)
from repro.nn import MLP, Module
from repro.tensor import Tensor
from repro.train import TrainConfig

DIM, HID = 6, 10
TOTAL, EVERY = 12, 3


class TinyRegressor(Module):
    """Deterministic toy model exposing ``loss(x, y)`` for the Trainer."""

    def __init__(self, seed=11):
        super().__init__()
        self.net = MLP(DIM, HID, np.random.default_rng(seed))

    def forward(self, x):
        return self.net(x)

    def loss(self, x, y):
        out = self.net(Tensor(x))
        return ((out - Tensor(y)) ** 2).mean()


def batch_fn(step):
    rng = np.random.default_rng(1000 + step)
    x = rng.standard_normal((4, DIM)).astype(np.float32)
    y = rng.standard_normal((4, DIM)).astype(np.float32)
    return x, y


def make_config(**overrides):
    kwargs = dict(
        lr=5e-3, total_steps=TOTAL, warmup_steps=2, checkpoint_every=EVERY
    )
    kwargs.update(overrides)
    return TrainConfig(**kwargs)


def run_elastic(tmp_path, world_size, plan, sub="run", **sup_kwargs):
    root = tmp_path / sub
    segment = fsdp_training_segment(TinyRegressor, batch_fn, make_config(), root)
    sup = ElasticSupervisor(segment, root, world_size, timeout=60, **sup_kwargs)
    return sup.run(TOTAL, failure_plan=plan)


class TestFailurePlan:
    def test_plan_algebra(self):
        plan = FailurePlan.kill(2, 7).then(1, 9)
        assert len(plan) == 2 and plan
        plan.check(0, 7)  # no match: silent
        plan.check(2, 6)
        with pytest.raises(InjectedFailure) as exc:
            plan.check(2, 7)
        assert exc.value.rank == 2 and exc.value.step == 7
        left = plan.without(2, 7)
        assert len(left) == 1
        left.check(2, 7)  # fired event removed
        assert not FailurePlan()

    def test_tick_kills_the_world_and_records_status(self):
        def fn(comm):
            for step in range(5):
                comm.tick(step)
                comm.barrier()
            return "done"

        with pytest.raises(SpmdError) as exc:
            run_spmd(fn, 3, failure_plan=FailurePlan.kill(1, 3), timeout=30)
        err = exc.value
        assert err.rank == 1
        assert isinstance(err.__cause__, InjectedFailure)
        assert err.__cause__.step == 3
        assert err.world.rank_status[1] == "failed"
        assert err.world.failed_ranks == [1]
        # Peers were unwound by the abort, not left running.
        assert all(s in ("aborted", "ok") for r, s in enumerate(err.world.rank_status) if r != 1)

    def test_no_plan_tick_is_noop(self):
        def fn(comm):
            comm.tick(0)
            return True

        assert run_spmd(fn, 2) == [True, True]

    def test_rank_status_all_ok_on_success(self):
        _, world = run_spmd_world(lambda comm: comm.rank, 3)
        assert world.rank_status == ["ok"] * 3


class TestElasticRecovery:
    def test_recovers_and_matches_uninterrupted_baseline(self, tmp_path):
        """The acceptance scenario: 4 ranks, rank 2 dies at step 7, the
        supervisor resumes 3-wide from the step-6 checkpoint, and the final
        loss matches an uninterrupted same-schedule run."""
        res = run_elastic(tmp_path, 4, FailurePlan.kill(2, 7), sub="elastic")
        base = run_elastic(tmp_path, 4, None, sub="baseline")

        assert res.attempts == 2
        assert len(res.losses) == TOTAL
        assert res.world_sizes == [4] * 6 + [3] * 6
        (ev,) = res.recoveries
        assert (ev.failed_rank, ev.failed_step) == (2, 7)
        assert ev.resume_step == 6  # last checkpoint at checkpoint_every=3
        assert ev.steps_lost == 1
        assert (ev.old_world_size, ev.new_world_size) == (4, 3)
        assert ev.reshard_bytes > 0

        np.testing.assert_allclose(res.losses, base.losses, rtol=1e-4, atol=1e-6)
        assert abs(res.final_loss - base.final_loss) <= 1e-4 * abs(base.final_loss)

    def test_trajectory_matches_serial_world(self, tmp_path):
        """FSDP sharding is math-neutral: a 1-rank uninterrupted run gives
        the same trajectory the elastic run reports."""
        res = run_elastic(tmp_path, 4, FailurePlan.kill(0, 4), sub="elastic")
        serial = run_elastic(tmp_path, 1, None, sub="serial")
        np.testing.assert_allclose(res.losses, serial.losses, rtol=1e-4, atol=1e-6)

    def test_cold_restart_before_first_checkpoint(self, tmp_path):
        """Death before any checkpoint restarts from scratch at the smaller
        world; the trajectory still matches the baseline."""
        res = run_elastic(tmp_path, 3, FailurePlan.kill(1, 1), sub="elastic")
        base = run_elastic(tmp_path, 2, None, sub="baseline")
        (ev,) = res.recoveries
        assert ev.resume_step == 0
        assert ev.reshard_bytes == 0  # nothing to reshard
        assert res.world_sizes == [2] * TOTAL
        np.testing.assert_allclose(res.losses, base.losses, rtol=1e-4, atol=1e-6)

    def test_two_sequential_failures(self, tmp_path):
        plan = FailurePlan.kill(3, 5).then(0, 10)
        res = run_elastic(tmp_path, 4, plan, sub="elastic")
        base = run_elastic(tmp_path, 4, None, sub="baseline")
        assert [r.new_world_size for r in res.recoveries] == [3, 2]
        assert res.attempts == 3
        assert res.world_sizes[-1] == 2
        np.testing.assert_allclose(res.losses, base.losses, rtol=1e-4, atol=1e-6)

    def test_refuses_to_shrink_below_min(self, tmp_path):
        with pytest.raises(SpmdError, match="min_world_size"):
            run_elastic(
                tmp_path, 2, FailurePlan.kill(0, 2), sub="elastic", min_world_size=2
            )

    def test_gives_up_after_max_recoveries(self, tmp_path):
        plan = FailurePlan.kill(0, 2).then(0, 3)
        with pytest.raises(SpmdError, match="gave up"):
            run_elastic(
                tmp_path, 4, plan, sub="elastic", max_recoveries=1
            )

    def test_unscripted_exceptions_also_recover(self, tmp_path):
        """A real (non-injected) rank exception takes the same recovery path;
        the crash is one-shot so the retry succeeds."""
        root = tmp_path / "real"
        fired = []

        def flaky_segment(comm, start_step, resume_dir):
            if comm.rank == 1 and not fired:
                fired.append(True)
                raise RuntimeError("spurious ECC error")
            segment = fsdp_training_segment(TinyRegressor, batch_fn, make_config(), root)
            return segment(comm, start_step, resume_dir)

        sup = ElasticSupervisor(flaky_segment, root, 3, timeout=60)
        res = sup.run(TOTAL)
        assert len(res.losses) == TOTAL
        (ev,) = res.recoveries
        assert ev.failed_rank == 1
        assert ev.failed_step == -1  # no step info on a raw exception
        assert ev.new_world_size == 2
