"""Elastic recovery: scripted rank death → shrink → reshard → resume.

The headline invariant: a training run interrupted by rank loss and resumed
at a smaller world size follows the same loss trajectory as an uninterrupted
run of the same schedule (FSDP math is world-size independent; the
checkpoint restores parameters, moments and the step index exactly).
"""

import numpy as np
import pytest

from repro.dist import SpmdError, run_spmd, run_spmd_world
from repro.elastic import (
    AlwaysShrink,
    CostAwareCadence,
    ElasticError,
    ElasticSupervisor,
    FailurePlan,
    InjectedFailure,
    RankArrival,
    RankReturn,
    SparePool,
    StepEconomics,
    fsdp_training_segment,
    young_daly_interval,
)
from repro.nn import MLP, Module
from repro.tensor import Tensor
from repro.train import TrainConfig

DIM, HID = 6, 10
TOTAL, EVERY = 12, 3


class TinyRegressor(Module):
    """Deterministic toy model exposing ``loss(x, y)`` for the Trainer."""

    def __init__(self, seed=11):
        super().__init__()
        self.net = MLP(DIM, HID, np.random.default_rng(seed))

    def forward(self, x):
        return self.net(x)

    def loss(self, x, y):
        out = self.net(Tensor(x))
        return ((out - Tensor(y)) ** 2).mean()


def batch_fn(step):
    rng = np.random.default_rng(1000 + step)
    x = rng.standard_normal((4, DIM)).astype(np.float32)
    y = rng.standard_normal((4, DIM)).astype(np.float32)
    return x, y


def make_config(**overrides):
    kwargs = dict(
        lr=5e-3, total_steps=TOTAL, warmup_steps=2, checkpoint_every=EVERY
    )
    kwargs.update(overrides)
    return TrainConfig(**kwargs)


def run_elastic(tmp_path, world_size, plan, sub="run", **sup_kwargs):
    root = tmp_path / sub
    segment = fsdp_training_segment(TinyRegressor, batch_fn, make_config(), root)
    sup = ElasticSupervisor(segment, root, world_size, timeout=60, **sup_kwargs)
    return sup.run(TOTAL, failure_plan=plan)


class TestFailurePlan:
    def test_plan_algebra(self):
        plan = FailurePlan.kill(2, 7).then(1, 9)
        assert len(plan) == 2 and plan
        plan.check(0, 7)  # no match: silent
        plan.check(2, 6)
        with pytest.raises(InjectedFailure) as exc:
            plan.check(2, 7)
        assert exc.value.rank == 2 and exc.value.step == 7
        left = plan.without(2, 7)
        assert len(left) == 1
        left.check(2, 7)  # fired event removed
        assert not FailurePlan()

    def test_tick_kills_the_world_and_records_status(self):
        def fn(comm):
            for step in range(5):
                comm.tick(step)
                comm.barrier()
            return "done"

        with pytest.raises(SpmdError) as exc:
            run_spmd(fn, 3, failure_plan=FailurePlan.kill(1, 3), timeout=30)
        err = exc.value
        assert err.rank == 1
        assert isinstance(err.__cause__, InjectedFailure)
        assert err.__cause__.step == 3
        assert err.world.rank_status[1] == "failed"
        assert err.world.failed_ranks == [1]
        # Peers were unwound by the abort, not left running.
        assert all(s in ("aborted", "ok") for r, s in enumerate(err.world.rank_status) if r != 1)

    def test_no_plan_tick_is_noop(self):
        def fn(comm):
            comm.tick(0)
            return True

        assert run_spmd(fn, 2) == [True, True]

    def test_rank_status_all_ok_on_success(self):
        _, world = run_spmd_world(lambda comm: comm.rank, 3)
        assert world.rank_status == ["ok"] * 3


class TestElasticRecovery:
    def test_recovers_and_matches_uninterrupted_baseline(self, tmp_path):
        """The acceptance scenario: 4 ranks, rank 2 dies at step 7, the
        supervisor resumes 3-wide from the step-6 checkpoint, and the final
        loss matches an uninterrupted same-schedule run."""
        res = run_elastic(tmp_path, 4, FailurePlan.kill(2, 7), sub="elastic")
        base = run_elastic(tmp_path, 4, None, sub="baseline")

        assert res.attempts == 2
        assert len(res.losses) == TOTAL
        assert res.world_sizes == [4] * 6 + [3] * 6
        (ev,) = res.recoveries
        assert (ev.failed_rank, ev.failed_step) == (2, 7)
        assert ev.resume_step == 6  # last checkpoint at checkpoint_every=3
        assert ev.steps_lost == 1
        assert (ev.old_world_size, ev.new_world_size) == (4, 3)
        assert ev.reshard_bytes > 0

        np.testing.assert_allclose(res.losses, base.losses, rtol=1e-4, atol=1e-6)
        assert abs(res.final_loss - base.final_loss) <= 1e-4 * abs(base.final_loss)

    def test_trajectory_matches_serial_world(self, tmp_path):
        """FSDP sharding is math-neutral: a 1-rank uninterrupted run gives
        the same trajectory the elastic run reports."""
        res = run_elastic(tmp_path, 4, FailurePlan.kill(0, 4), sub="elastic")
        serial = run_elastic(tmp_path, 1, None, sub="serial")
        np.testing.assert_allclose(res.losses, serial.losses, rtol=1e-4, atol=1e-6)

    def test_cold_restart_before_first_checkpoint(self, tmp_path):
        """Death before any checkpoint restarts from scratch at the smaller
        world; the trajectory still matches the baseline."""
        res = run_elastic(tmp_path, 3, FailurePlan.kill(1, 1), sub="elastic")
        base = run_elastic(tmp_path, 2, None, sub="baseline")
        (ev,) = res.recoveries
        assert ev.resume_step == 0
        assert ev.reshard_bytes == 0  # nothing to reshard
        assert res.world_sizes == [2] * TOTAL
        np.testing.assert_allclose(res.losses, base.losses, rtol=1e-4, atol=1e-6)

    def test_two_sequential_failures(self, tmp_path):
        plan = FailurePlan.kill(3, 5).then(0, 10)
        res = run_elastic(tmp_path, 4, plan, sub="elastic")
        base = run_elastic(tmp_path, 4, None, sub="baseline")
        assert [r.new_world_size for r in res.recoveries] == [3, 2]
        assert res.attempts == 3
        assert res.world_sizes[-1] == 2
        np.testing.assert_allclose(res.losses, base.losses, rtol=1e-4, atol=1e-6)

    def test_refuses_to_shrink_below_min(self, tmp_path):
        with pytest.raises(SpmdError, match="min_world_size"):
            run_elastic(
                tmp_path, 2, FailurePlan.kill(0, 2), sub="elastic", min_world_size=2
            )

    def test_gives_up_after_max_recoveries(self, tmp_path):
        plan = FailurePlan.kill(0, 2).then(0, 3)
        with pytest.raises(SpmdError, match="gave up"):
            run_elastic(
                tmp_path, 4, plan, sub="elastic", max_recoveries=1
            )

    def test_unscripted_exceptions_also_recover(self, tmp_path):
        """A real (non-injected) rank exception takes the same recovery path;
        the crash is one-shot so the retry succeeds."""
        root = tmp_path / "real"
        fired = []

        def flaky_segment(comm, start_step, resume_dir):
            if comm.rank == 1 and not fired:
                fired.append(True)
                raise RuntimeError("spurious ECC error")
            segment = fsdp_training_segment(TinyRegressor, batch_fn, make_config(), root)
            return segment(comm, start_step, resume_dir)

        sup = ElasticSupervisor(flaky_segment, root, 3, timeout=60)
        res = sup.run(TOTAL)
        assert len(res.losses) == TOTAL
        (ev,) = res.recoveries
        assert ev.failed_rank == 1
        assert ev.failed_step == -1  # no step info on a raw exception
        assert ev.new_world_size == 2

class TestRecoveryPolicies:
    def test_always_shrink_transitions(self):
        p = AlwaysShrink()
        assert p.initial_spares == 0
        assert p.on_failure(4, 0) == (3, 0)
        assert p.on_arrival(3, 0, 2) == (5, 0)
        assert p.checkpoint_interval(7) == 7

    def test_spare_pool_consumes_then_shrinks(self):
        p = SparePool(2)
        assert p.initial_spares == 2
        assert p.on_failure(4, 2) == (4, 1)
        assert p.on_failure(4, 1) == (4, 0)
        assert p.on_failure(4, 0) == (3, 0)

    def test_spare_pool_banks_arrivals_up_to_capacity(self):
        p = SparePool(2)
        # One slot free: bank one, grow by the rest.
        assert p.on_arrival(4, 1, 3) == (6, 2)
        # Pool full: every arrival grows the world.
        assert p.on_arrival(4, 2, 1) == (5, 2)

    def test_spare_pool_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            SparePool(0)

    def test_young_daly_interval(self):
        # tau = sqrt(2 * 2 * 10000) = 200 s -> 200 one-second steps.
        econ = StepEconomics(step_seconds=1.0, save_seconds=2.0, mtbf_seconds=1e4)
        assert young_daly_interval(econ) == 200
        # Expensive saves or a stabler fleet stretch the interval.
        worse = StepEconomics(step_seconds=1.0, save_seconds=8.0, mtbf_seconds=1e4)
        assert young_daly_interval(worse) == 400

    def test_cost_aware_cadence_delegates_and_overrides(self):
        p = CostAwareCadence(SparePool(1))
        assert p.name == "cost-aware[spare-pool-1]"
        assert p.on_failure(4, 1) == (4, 0)
        assert p.checkpoint_interval(5) == 5  # no economics: keep the default
        econ = StepEconomics(step_seconds=1.0, save_seconds=2.0, mtbf_seconds=1e4)
        assert p.checkpoint_interval(5, econ) == 200


class TestElasticGrow:
    def test_grow_on_rank_return_matches_baseline(self, tmp_path):
        """The v2 acceptance scenario: rank 2 dies at step 4 (shrink 4->3),
        a rank returns at step 7 (grow 3->4), and the full trajectory still
        matches an uninterrupted 4-wide run."""
        plan = FailurePlan.kill(2, 4).rejoin(7)
        res = run_elastic(tmp_path, 4, plan, sub="elastic")
        base = run_elastic(tmp_path, 4, None, sub="baseline")

        assert res.attempts == 3
        assert [ev.kind for ev in res.recoveries] == ["shrink", "grow"]
        shrink, grow = res.recoveries
        assert (shrink.old_world_size, shrink.new_world_size) == (4, 3)
        assert (grow.old_world_size, grow.new_world_size) == (3, 4)
        assert grow.failed_rank == -1  # nobody failed: ranks arrived
        assert grow.reshard_bytes > 0  # 3-wide shards re-split 4 ways
        assert res.world_sizes == [4] * 3 + [3] * 3 + [4] * 6
        np.testing.assert_allclose(res.losses, base.losses, rtol=1e-4, atol=1e-6)

    def test_grow_capped_by_max_world_size(self, tmp_path):
        plan = FailurePlan.kill(1, 4).rejoin(7, count=3)
        res = run_elastic(
            tmp_path, 4, plan, sub="elastic", max_world_size=4
        )
        base = run_elastic(tmp_path, 4, None, sub="baseline")
        grow = res.recoveries[-1]
        assert grow.kind == "grow"
        assert grow.new_world_size == 4  # 3 + 3 arrivals, capped at 4
        np.testing.assert_allclose(res.losses, base.losses, rtol=1e-4, atol=1e-6)

    def test_rank_arrival_plan_algebra(self):
        plan = FailurePlan.kill(1, 3).rejoin(6, count=2)
        assert len(plan) == 2 and plan
        with pytest.raises(RankReturn) as exc:
            plan.check(0, 6)  # only rank 0 observes the arrival
        assert exc.value.step == 6 and exc.value.count == 2
        plan.check(1, 6)  # other ranks pass through
        left = plan.without_arrival(6)
        assert len(left) == 1
        left.check(0, 6)  # consumed
        with pytest.raises(ValueError):
            RankArrival(step=2, count=0)

    def test_spare_pool_swap_keeps_world_size(self, tmp_path):
        res = run_elastic(
            tmp_path, 4, FailurePlan.kill(1, 5), sub="elastic", policy=SparePool(1)
        )
        base = run_elastic(tmp_path, 4, None, sub="baseline")
        (ev,) = res.recoveries
        assert ev.kind == "spare"
        assert (ev.old_world_size, ev.new_world_size) == (4, 4)
        assert ev.reshard_bytes == 0  # same layout: restore, don't reshard
        assert res.world_sizes == [4] * TOTAL
        np.testing.assert_allclose(res.losses, base.losses, rtol=1e-4, atol=1e-6)

    def test_async_delta_saves_survive_recovery(self, tmp_path):
        root = tmp_path / "ad"
        segment = fsdp_training_segment(
            TinyRegressor, batch_fn, make_config(), root,
            async_save=True, delta_saves=True, keep_last=3,
        )
        sup = ElasticSupervisor(segment, root, 4, timeout=60)
        res = sup.run(TOTAL, failure_plan=FailurePlan.kill(2, 7))
        base = run_elastic(tmp_path, 4, None, sub="baseline")
        assert [ev.kind for ev in res.recoveries] == ["shrink"]
        np.testing.assert_allclose(res.losses, base.losses, rtol=1e-4, atol=1e-6)

    def test_shard_batch_trajectory_matches_replicated(self, tmp_path):
        root = tmp_path / "sb"
        segment = fsdp_training_segment(
            TinyRegressor, batch_fn, make_config(), root, shard_batch=True
        )
        sup = ElasticSupervisor(segment, root, 4, timeout=60)
        res = sup.run(TOTAL, failure_plan=FailurePlan.kill(1, 5))
        base = run_elastic(tmp_path, 4, None, sub="baseline")
        assert res.world_sizes == [4] * 3 + [3] * 9
        np.testing.assert_allclose(res.losses, base.losses, rtol=1e-3, atol=1e-5)


class TestElasticError:
    def test_min_world_exit_carries_history(self, tmp_path):
        plan = FailurePlan.kill(0, 2).then(0, 4)
        with pytest.raises(ElasticError, match="min_world_size") as exc:
            run_elastic(tmp_path, 3, plan, sub="elastic", min_world_size=2)
        err = exc.value
        assert isinstance(err, SpmdError)  # old except clauses still catch it
        assert len(err.history) == 1  # the 3->2 shrink that *did* succeed
        assert err.history[0].kind == "shrink"
        assert err.history[0].new_world_size == 2

    def test_max_recoveries_exit_carries_history(self, tmp_path):
        plan = FailurePlan.kill(0, 2).then(0, 3)
        with pytest.raises(ElasticError, match="gave up") as exc:
            run_elastic(tmp_path, 4, plan, sub="elastic", max_recoveries=1)
        err = exc.value
        assert len(err.history) == 1
        assert (err.history[0].old_world_size, err.history[0].new_world_size) == (4, 3)

    def test_timeout_is_not_wrapped(self, tmp_path):
        """Driver-side timeouts identify no culprit: they re-raise as plain
        SpmdError (rank -1), never as a recovery exhaustion."""

        def hanging_segment(comm, start_step, resume_dir):
            if comm.rank == 0:
                import time

                time.sleep(3.0)
            comm.barrier()
            return []

        sup = ElasticSupervisor(hanging_segment, tmp_path / "hang", 2, timeout=0.5)
        with pytest.raises(SpmdError) as exc:
            sup.run(1)
        assert not isinstance(exc.value, ElasticError)
        assert exc.value.rank < 0
