"""Tests for activation (gradient) checkpointing."""

import gc

import numpy as np
import pytest

from repro.nn import MLP, ViTEncoder
from repro.tensor import (
    MemoryTracker,
    Tensor,
    checkpoint,
    checkpoint_sequential,
    track_memory,
)

RNG = np.random.default_rng(81)


class TestCheckpoint:
    def test_forward_value_unchanged(self):
        mlp = MLP(8, 16, np.random.default_rng(0))
        x = Tensor(RNG.standard_normal((3, 8)).astype(np.float32))
        np.testing.assert_allclose(checkpoint(mlp, x).data, mlp(x).data, rtol=1e-6)

    def test_input_gradients_match(self):
        mlp = MLP(8, 16, np.random.default_rng(0))
        x_plain = Tensor(RNG.standard_normal((3, 8)).astype(np.float32), requires_grad=True)
        (mlp(x_plain) ** 2).mean().backward()
        mlp.zero_grad()
        x_ck = Tensor(x_plain.data.copy(), requires_grad=True)
        (checkpoint(mlp, x_ck) ** 2).mean().backward()
        np.testing.assert_allclose(x_ck.grad, x_plain.grad, rtol=1e-5, atol=1e-7)

    def test_parameter_gradients_match(self):
        mlp = MLP(8, 16, np.random.default_rng(0))
        x = RNG.standard_normal((3, 8)).astype(np.float32)
        (mlp(Tensor(x)) ** 2).mean().backward()
        plain = {n: p.grad.copy() for n, p in mlp.named_parameters()}
        mlp.zero_grad()
        (checkpoint(mlp, Tensor(x, requires_grad=True)) ** 2).mean().backward()
        for n, p in mlp.named_parameters():
            np.testing.assert_allclose(p.grad, plain[n], rtol=1e-5, atol=1e-7, err_msg=n)

    def test_sequential_matches_plain_encoder(self):
        enc = ViTEncoder(16, 3, 4, np.random.default_rng(1))
        x = RNG.standard_normal((2, 6, 16)).astype(np.float32)
        xt = Tensor(x, requires_grad=True)
        out_plain = enc(xt)
        (out_plain**2).mean().backward()
        g_plain = xt.grad.copy()
        enc.zero_grad()
        xt2 = Tensor(x, requires_grad=True)
        out_ck = enc.norm(checkpoint_sequential(list(enc.blocks), xt2))
        np.testing.assert_allclose(out_ck.data, out_plain.data, rtol=1e-5)
        (out_ck**2).mean().backward()
        np.testing.assert_allclose(xt2.grad, g_plain, rtol=1e-4, atol=1e-6)

    def test_reduces_forward_peak_memory(self):
        enc = ViTEncoder(64, 4, 4, np.random.default_rng(2))
        x = RNG.standard_normal((4, 32, 64)).astype(np.float32)

        def peak(fn):
            gc.collect()
            tracker = MemoryTracker()
            with track_memory(tracker):
                fn()
            gc.collect()
            return tracker.peak_bytes

        plain = peak(lambda: enc(Tensor(x, requires_grad=True)))
        ck = peak(lambda: checkpoint_sequential(list(enc.blocks), Tensor(x, requires_grad=True)))
        assert ck < 0.7 * plain, f"checkpointed peak {ck} vs plain {plain}"

    def test_records_node_for_captured_params(self):
        """Even with non-grad inputs, captured parameters get gradients."""
        mlp = MLP(4, 8, np.random.default_rng(0))
        out = checkpoint(mlp, Tensor(np.zeros((1, 4), dtype=np.float32)))
        assert out.requires_grad
        (out * out).mean().backward()
        assert mlp.fc1.weight.grad is not None

    def test_no_grad_mode_skips_graph(self):
        from repro.tensor import no_grad

        mlp = MLP(4, 8, np.random.default_rng(0))
        with no_grad():
            out = checkpoint(mlp, Tensor(np.zeros((1, 4), dtype=np.float32)))
        assert not out.requires_grad

    def test_non_tensor_return_rejected(self):
        with pytest.raises(TypeError):
            checkpoint(lambda t: (t, t), Tensor(np.zeros(2), requires_grad=True))

    def test_training_with_checkpointing_converges(self):
        from repro.tensor import AdamW

        mlp = MLP(4, 16, np.random.default_rng(3))
        target = RNG.standard_normal((8, 4)).astype(np.float32)
        x = RNG.standard_normal((8, 4)).astype(np.float32)
        opt = AdamW(mlp.parameters(), lr=1e-2, weight_decay=0.0)
        losses = []
        for _ in range(30):
            mlp.zero_grad()
            loss = ((checkpoint(mlp, Tensor(x)) - Tensor(target)) ** 2).mean()
            loss.backward()
            opt.step()
            losses.append(loss.item())
        assert losses[-1] < 0.5 * losses[0]
