"""Pipeline-parallelism tests: GPipe schedule ≡ serial training."""

import numpy as np
import pytest

from repro.core import DCHAG, DCHAGConfig
from repro.dist import run_spmd, run_spmd_world
from repro.nn import LayerNorm, Module, ModuleList, ViTEncoder
from repro.parallel.pipeline import PipelineStage, split_blocks
from repro.tensor import Tensor

RNG = np.random.default_rng(101)
D, DEPTH, HEADS, B, N = 32, 4, 4, 4, 6


class _StageModule(Module):
    """A contiguous slice of encoder blocks (+ the final norm on the last)."""

    def __init__(self, blocks, norm: LayerNorm | None = None) -> None:
        super().__init__()
        self.blocks = ModuleList(list(blocks))
        self.norm = norm

    def forward(self, x: Tensor) -> Tensor:
        for b in self.blocks:
            x = b(x)
        return self.norm(x) if self.norm is not None else x


def _serial_reference(x: np.ndarray):
    enc = ViTEncoder(D, DEPTH, HEADS, np.random.default_rng(42))
    out = enc(Tensor(x))
    loss = (out * out).mean()
    loss.backward()
    grads = {n: p.grad.copy() for n, p in enc.named_parameters()}
    return float(loss.item()), grads, enc.state_dict()


class TestSplitBlocks:
    def test_even_partition(self):
        parts = split_blocks(list(range(8)), 4)
        assert [len(p) for p in parts] == [2, 2, 2, 2]

    def test_uneven_partition_front_loaded(self):
        parts = split_blocks(list(range(7)), 3)
        assert [len(p) for p in parts] == [3, 2, 2]
        assert sum(parts, []) == list(range(7))

    def test_invalid(self):
        with pytest.raises(ValueError):
            split_blocks([1, 2], 3)


class TestGPipeEquivalence:
    @pytest.mark.parametrize("n_micro", [1, 2, 4])
    @pytest.mark.parametrize("stages", [2, 4])
    def test_loss_and_grads_match_serial(self, n_micro, stages):
        x = RNG.standard_normal((B, N, D)).astype(np.float32)
        ref_loss, ref_grads, state = _serial_reference(x)
        micros = np.split(x, n_micro, axis=0)

        def fn(comm):
            enc = ViTEncoder(D, DEPTH, HEADS, np.random.default_rng(42))
            enc.load_state_dict(state)
            parts = split_blocks(list(enc.blocks), stages)
            mine = parts[comm.rank]
            module = _StageModule(mine, norm=enc.norm if comm.rank == stages - 1 else None)
            stage = PipelineStage(comm, None, module)
            losses = stage.train_step(
                micro_inputs=micros if stage.is_first else None,
                loss_fn=(lambda out: (out * out).mean()) if stage.is_last else None,
                n_micro=n_micro,
            )
            grads = {n: p.grad.copy() for n, p in module.named_parameters()}
            return losses, grads, comm.rank

        results = run_spmd(fn, stages)
        # Loss: mean of per-micro losses equals the full-batch loss.
        last_losses = results[-1][0]
        assert np.isclose(np.mean(last_losses), ref_loss, rtol=1e-5)
        # Gradients on every stage match the serial slices.
        offset = 0
        parts = split_blocks(list(range(DEPTH)), stages)
        for stage_idx, block_ids in enumerate(parts):
            grads = results[stage_idx][1]
            for local_i, global_i in enumerate(block_ids):
                for suffix in ("attn.qkv.weight", "mlp.fc2.bias", "norm1.weight"):
                    got = grads[f"blocks.{local_i}.{suffix}"]
                    want = ref_grads[f"blocks.{global_i}.{suffix}"]
                    np.testing.assert_allclose(got, want, rtol=2e-4, atol=2e-6)

    def test_multiple_steps_accumulate_independently(self):
        x1 = RNG.standard_normal((B, N, D)).astype(np.float32)
        x2 = RNG.standard_normal((B, N, D)).astype(np.float32)

        def fn(comm):
            enc = ViTEncoder(D, DEPTH, HEADS, np.random.default_rng(7))
            parts = split_blocks(list(enc.blocks), 2)
            module = _StageModule(parts[comm.rank], norm=enc.norm if comm.rank == 1 else None)
            stage = PipelineStage(comm, None, module)
            all_losses = []
            for x in (x1, x2):
                module.zero_grad()
                losses = stage.train_step(
                    micro_inputs=[x] if stage.is_first else None,
                    loss_fn=(lambda out: (out * out).mean()) if stage.is_last else None,
                    n_micro=1,
                )
                all_losses.extend(losses)
            return all_losses

        res = run_spmd(fn, 2)
        assert len(res[1]) == 2 and res[1][0] != res[1][1]

    def test_traffic_is_point_to_point_only(self):
        x = RNG.standard_normal((B, N, D)).astype(np.float32)

        def fn(comm):
            enc = ViTEncoder(D, DEPTH, HEADS, np.random.default_rng(7))
            parts = split_blocks(list(enc.blocks), 2)
            module = _StageModule(parts[comm.rank], norm=enc.norm if comm.rank == 1 else None)
            stage = PipelineStage(comm, None, module)
            stage.train_step(
                micro_inputs=[x, x] if stage.is_first else None,
                loss_fn=(lambda out: (out * out).mean()) if stage.is_last else None,
                n_micro=2,
            )

        _, world = run_spmd_world(fn, 2)
        hist = world.traffic.ops_histogram()
        assert set(hist) <= {"send", "recv"}
        # 2 micro fwd sends + 2 micro bwd sends (and matching recvs).
        assert hist["send"] == 4 and hist["recv"] == 4


class TestDCHAGWithPipeline:
    def test_dchag_frontend_on_first_stage(self):
        """D-CHAG channel stage on stage 0, transformer depth split across
        the pipeline — the §3.5 composition story for a third axis."""
        C, IMG, P = 8, 16, 4
        imgs = RNG.standard_normal((2, C, IMG, IMG)).astype(np.float32)

        class FirstStage(Module):
            def __init__(self, comm, blocks) -> None:
                super().__init__()
                cfg = DCHAGConfig(channels=C, patch=P, dim=D, heads=HEADS, kind="linear")
                # D-CHAG over the *whole* world here (1-rank group per stage
                # would also work; this exercises group reuse).
                self.frontend = DCHAG(comm, comm.group([comm.rank]), cfg, rng_seed=3)
                self.blocks = ModuleList(list(blocks))

            def forward(self, images) -> Tensor:
                x = self.frontend(images)
                for b in self.blocks:
                    x = b(x)
                return x

        def fn(comm):
            enc = ViTEncoder(D, DEPTH, HEADS, np.random.default_rng(11))
            parts = split_blocks(list(enc.blocks), 2)
            if comm.rank == 0:
                module = FirstStage(comm, parts[0])
            else:
                module = _StageModule(parts[1], norm=enc.norm)
            stage = PipelineStage(comm, None, module)
            losses = stage.train_step(
                micro_inputs=[imgs] if stage.is_first else None,
                loss_fn=(lambda out: (out * out).mean()) if stage.is_last else None,
                n_micro=1,
            )
            if comm.rank == 0:
                assert module.frontend.tokenizer.weight.grad is not None
            return losses

        res = run_spmd(fn, 2)
        assert len(res[1]) == 1 and np.isfinite(res[1][0])
