"""Full-stack integration tests: complete models under composed strategies.

These exercise paths no unit test covers end-to-end: TP front-end + TP
encoder trained together, FSDP with activation checkpointing, D-CHAG + FSDP
via the device mesh, and checkpoint interchange between a distributed and a
serial model.
"""

import numpy as np
import pytest

from repro.core import DCHAG, DCHAGConfig
from repro.dist import average_gradients, broadcast_parameters, run_spmd, run_spmd_world
from repro.models import MAEModel, build_serial_mae
from repro.nn import (
    ChannelCrossAttention,
    PatchTokenizer,
    ViTEncoder,
    load_checkpoint,
    save_checkpoint,
)
from repro.parallel import (
    DeviceMesh,
    DistributedTokenizer,
    FSDPModel,
    TPChannelCrossAttention,
    TPContext,
    TPViTEncoder,
    shard_batch,
)
from repro.tensor import AdamW, Tensor, checkpoint_sequential
from repro.train import TrainConfig, Trainer

RNG = np.random.default_rng(111)
C, IMG, P, D, HEADS, DEPTH = 8, 16, 4, 32, 4, 2


class TestFullTPStack:
    """The paper's baseline: TP applied to tokenizer-redundant front-end AND
    the ViT — trained for several steps, equivalent to serial throughout."""

    def test_tp_training_tracks_serial(self):
        imgs = RNG.standard_normal((2, C, IMG, IMG)).astype(np.float32)

        # Serial reference.
        rng = np.random.default_rng(5)
        tok = PatchTokenizer(C, P, D, rng)
        agg = ChannelCrossAttention(D, HEADS, rng)
        enc = ViTEncoder(D, DEPTH, HEADS, rng)
        params = tok.parameters() + agg.parameters() + enc.parameters()
        opt = AdamW(params, lr=1e-3, weight_decay=0.0)
        serial_losses = []
        for _ in range(3):
            for p in params:
                p.grad = None
            out = enc(agg(tok(imgs)))
            loss = (out * out).mean()
            loss.backward()
            opt.step()
            serial_losses.append(loss.item())

        def fn(comm):
            rng = np.random.default_rng(5)
            tok = PatchTokenizer(C, P, D, rng)          # replicated (same seed)
            agg_serial = ChannelCrossAttention(D, HEADS, rng)
            enc_serial = ViTEncoder(D, DEPTH, HEADS, rng)
            ctx = TPContext(comm)
            agg = TPChannelCrossAttention(
                ctx, D, HEADS,
                master_query_tokens=agg_serial.query_tokens.data,
                master_q_w=agg_serial.q_proj.weight.data,
                master_q_b=agg_serial.q_proj.bias.data,
                master_kv_w=agg_serial.kv_proj.weight.data,
                master_kv_b=agg_serial.kv_proj.bias.data,
                master_proj_w=agg_serial.proj.weight.data,
                master_proj_b=agg_serial.proj.bias.data,
            )
            enc = TPViTEncoder(ctx, D, DEPTH, HEADS, enc_serial.state_dict())
            params = tok.parameters() + agg.parameters() + enc.parameters()
            opt = AdamW(params, lr=1e-3, weight_decay=0.0)
            losses = []
            for _ in range(3):
                for p in params:
                    p.grad = None
                out = enc(agg(tok(imgs)))
                loss = (out * out).mean()
                loss.backward()
                opt.step()
                losses.append(loss.item())
            return losses

        for losses in run_spmd(fn, 2):
            np.testing.assert_allclose(losses, serial_losses, rtol=5e-3)


class TestFSDPWithCheckpointing:
    def test_combined_strategies_match_serial_step(self):
        """FSDP sharding + per-block activation checkpointing in one step."""
        x = RNG.standard_normal((2, 5, D)).astype(np.float32)

        serial = ViTEncoder(D, DEPTH, HEADS, np.random.default_rng(0))
        (serial(Tensor(x)) ** 2).mean().backward()
        opt = AdamW(serial.parameters(), lr=1e-2, weight_decay=0.0)
        opt.step()
        expect = serial(Tensor(x)).data

        def fn(comm):
            enc = ViTEncoder(D, DEPTH, HEADS, np.random.default_rng(0))
            model = FSDPModel(comm, None, enc, units=[b for b in enc.blocks])

            def fwd():
                # materialize + checkpointed block execution + final norm
                for u in model.units:
                    u.materialize()
                h = checkpoint_sequential(list(enc.blocks), Tensor(x))
                return enc.norm(h)

            (fwd() ** 2).mean().backward()
            opt = AdamW(model.shard_parameters(), lr=1e-2, weight_decay=0.0)
            opt.step()
            return fwd().data.copy()

        for out in run_spmd(fn, 2):
            np.testing.assert_allclose(out, expect, rtol=2e-4, atol=2e-5)


class TestDCHAGWithFSDPMesh:
    def test_hybrid_mesh_training_converges_and_syncs(self):
        """D-CHAG(tp=2) × DP(2) with FSDP-wrapped encoder inside each
        replica: mesh axes compose, losses drop, DP replicas stay in sync."""
        ds_imgs = RNG.standard_normal((8, C, IMG, IMG)).astype(np.float32)

        def fn(comm):
            mesh = DeviceMesh(comm, tp=2, dp=2)
            cfg = DCHAGConfig(channels=C, patch=P, dim=D, heads=HEADS, kind="linear")
            frontend = DCHAG(comm, mesh.dchag_group, cfg, rng_seed=1)
            shared = np.random.default_rng(0)
            model = MAEModel(
                frontend, ViTEncoder(D, DEPTH, HEADS, shared),
                num_tokens=(IMG // P) ** 2, dim=D, patch=P, out_channels=C,
                rng=shared, mask_ratio=0.5, decoder_depth=1,
            )
            broadcast_parameters(comm, model.parameters(), group=mesh.dp_group)
            local = shard_batch(ds_imgs, comm, mesh.dp_group)

            tr = Trainer(
                model, TrainConfig(lr=3e-3, total_steps=5, warmup_steps=1),
                grad_hook=lambda: average_gradients(comm, model.parameters(), group=mesh.dp_group),
            )
            losses = [tr.step(local, np.random.default_rng(70 + i)) for i in range(5)]
            probe = model.frontend.final.query_tokens.data.copy()
            return losses, probe

        res = run_spmd(fn, 4)
        # TP peers (ranks 0/1 and 2/3) share batches → identical losses.
        np.testing.assert_allclose(res[0][0], res[1][0], rtol=1e-5)
        np.testing.assert_allclose(res[2][0], res[3][0], rtol=1e-5)
        # Convergence on every replica.
        for losses, _ in res:
            assert losses[-1] < losses[0]
        # Replicated final layer identical across ALL ranks after training
        # (synced across DP by AllReduce, across TP by construction).
        for _, probe in res[1:]:
            np.testing.assert_allclose(probe, res[0][1], rtol=1e-5, atol=1e-6)


class TestCheckpointInterchange:
    def test_serial_checkpoint_restores_into_fresh_model(self, tmp_path):
        model = build_serial_mae(C, IMG, P, D, DEPTH, HEADS, np.random.default_rng(1))
        imgs = RNG.standard_normal((2, C, IMG, IMG)).astype(np.float32)
        tr = Trainer(model, TrainConfig(lr=3e-3, total_steps=3, warmup_steps=1))
        for i in range(3):
            tr.step(imgs, np.random.default_rng(i))
        path = save_checkpoint(model, tmp_path / "trained")

        fresh = build_serial_mae(C, IMG, P, D, DEPTH, HEADS, np.random.default_rng(99))
        load_checkpoint(fresh, path)
        a = model.loss(imgs, np.random.default_rng(7)).item()
        b = fresh.loss(imgs, np.random.default_rng(7)).item()
        assert a == pytest.approx(b, rel=1e-6)

    def test_distributed_tokenizer_reconstructs_serial_weights(self):
        """Gathering D-CHAG tokenizer shards reproduces the master tensor —
        the mechanism for converting a distributed checkpoint to serial."""
        master = PatchTokenizer(C, P, D, np.random.default_rng(4))

        def fn(comm):
            tok = DistributedTokenizer(
                comm, None, C, P, D, master.weight.data, master.bias.data
            )
            gathered = comm.all_gather_concat(tok.tokenizer.weight.data, axis=0)
            return gathered

        for gathered in run_spmd(fn, 4):
            np.testing.assert_array_equal(gathered, master.weight.data)
