"""Hypothesis property tests on the D-CHAG core data structures."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import DCHAGConfig, build_tree
from repro.core.partial_agg import PartialChannelAggregator
from repro.dist import run_spmd
from repro.parallel.dist_token import channel_shard
from repro.perf import ParallelPlan, Precision, Workload, estimate_memory, ModelConfig
from repro.tensor import Tensor


@settings(max_examples=100, deadline=None)
@given(st.integers(1, 4096), st.integers(0, 64))
def test_tree_partitions_channels_exactly(local_c, fanout):
    if max(1, fanout) > local_c:
        with pytest.raises(ValueError):
            build_tree(local_c, fanout)
        return
    spec = build_tree(local_c, fanout)
    assert sum(spec.group_sizes) == local_c
    assert len(spec.group_sizes) == max(1, fanout)
    # Even-as-possible: sizes differ by at most 1.
    assert max(spec.group_sizes) - min(spec.group_sizes) <= 1
    assert spec.has_root == (max(1, fanout) > 1)
    assert spec.num_units == len(spec.group_sizes) + (1 if spec.has_root else 0)
    assert spec.max_channels_per_unit >= spec.group_sizes[0] - 1


@settings(max_examples=50, deadline=None)
@given(st.integers(1, 256), st.sampled_from([1, 2, 3, 4, 8]))
def test_channel_shard_partitions_axis(channels, world):
    """Any channel count ≥ world partitions exactly — divisible or not —
    with shard sizes differing by at most one (remainder convention)."""
    if channels < world:
        channels = world

    def fn(comm):
        group = comm.world.default_group
        return channel_shard(channels, group, comm.rank)

    shards = run_spmd(fn, world)
    covered = []
    for s in shards:
        covered.extend(range(s.start, s.stop))
    assert covered == list(range(channels))
    widths = [s.stop - s.start for s in shards]
    assert max(widths) - min(widths) <= 1
    assert widths == sorted(widths, reverse=True)  # remainder goes first


@settings(max_examples=30, deadline=None)
@given(
    st.integers(1, 6).map(lambda k: 2**k),   # channels: 2..64
    st.sampled_from([0, 2, 4]),
    st.sampled_from(["linear", "cross"]),
    st.integers(0, 2**31 - 1),
)
def test_partial_aggregator_always_reduces_to_one(channels, fanout, kind, seed):
    if max(1, fanout) > channels:
        return
    rng = np.random.default_rng(seed)
    agg = PartialChannelAggregator(channels, 16, 2, rng, fanout=fanout, kind=kind)
    x = Tensor(rng.standard_normal((1, channels, 2, 16)).astype(np.float32))
    out = agg(x)
    assert out.shape == (1, 1, 2, 16)
    assert np.isfinite(out.data).all()


@settings(max_examples=50, deadline=None)
@given(
    st.integers(5, 9).map(lambda k: 2**k),   # channels 32..512
    st.sampled_from([1, 2, 4, 8]),
    st.integers(1, 8),
)
def test_memory_model_always_positive_and_dchag_never_worse_tokenization(ch, tp, batch):
    model = ModelConfig("prop", dim=256, depth=4, heads=8)
    w = Workload(ch, batch)
    tp_mem = estimate_memory(model, w, ParallelPlan("tp", tp=tp))
    dc_mem = estimate_memory(model, w, ParallelPlan("dchag", tp=tp))
    for bd in (tp_mem, dc_mem):
        assert bd.total > 0
        assert bd.tokenization >= 0 and bd.aggregation >= 0 and bd.transformer > 0
    assert dc_mem.tokenization <= tp_mem.tokenization + 1e-6


@settings(max_examples=50, deadline=None)
@given(st.integers(1, 6), st.integers(1, 6), st.integers(1, 6))
def test_parallel_plan_gpu_accounting(tp_exp, fsdp_exp, dp_exp):
    tp, fsdp, dp = 2 ** (tp_exp % 4), 2 ** (fsdp_exp % 3), 2 ** (dp_exp % 4)
    plan = ParallelPlan("dchag", tp=tp, fsdp=fsdp, dp=dp)
    assert plan.gpus_per_replica == tp * fsdp
    assert plan.total_gpus == tp * fsdp * dp
    assert str(tp) in plan.label or tp == 1


@settings(max_examples=30, deadline=None)
@given(st.integers(2, 1024), st.integers(2, 64), st.integers(2, 32), st.integers(1, 16))
def test_dchag_config_validation_total(c, p, d, h):
    d = d * h  # make divisible
    cfg = DCHAGConfig(channels=c, patch=p, dim=d, heads=h)
    assert cfg.variant_name.startswith("D-CHAG-")


@settings(max_examples=40, deadline=None)
@given(st.sampled_from([1, 2, 4, 8]), st.integers(0, 2**31 - 1))
def test_precision_state_bytes_consistent(scale, seed):
    rng = np.random.default_rng(seed)
    p = Precision(
        param_bytes=2 * scale,
        grad_bytes=2 * scale,
        optim_bytes=int(rng.integers(4, 16)),
    )
    assert p.state_bytes == p.param_bytes + p.grad_bytes + p.optim_bytes
