"""Tests for the autograd-aware collectives — the communication patterns the
paper's strategies are built from."""

import numpy as np
import pytest

from repro.dist import (
    SpmdError,
    all_gather_autograd,
    all_gather_forward_only,
    average_gradients,
    broadcast_parameters,
    copy_to_group,
    reduce_from_group,
    run_spmd,
    run_spmd_world,
)
from repro.tensor import Tensor


class TestAllGatherForwardOnly:
    def test_forward_concatenates(self):
        def fn(comm):
            x = Tensor(np.full((1, 2), float(comm.rank), dtype=np.float32), requires_grad=True)
            return all_gather_forward_only(comm, x, axis=0).data.copy()

        for out in run_spmd(fn, 3):
            np.testing.assert_allclose(out[:, 0], [0, 1, 2])

    def test_backward_slices_without_communication(self):
        def fn(comm):
            x = Tensor(np.ones((1, 3), dtype=np.float32) * (comm.rank + 1), requires_grad=True)
            y = all_gather_forward_only(comm, x, axis=0)
            (y * y).sum().backward()
            return x.grad.copy()

        res, world = run_spmd_world(fn, 4)
        for rank, grad in enumerate(res):
            np.testing.assert_allclose(grad, 2.0 * (rank + 1))
        # forward gather only: exactly one collective per rank, none after
        assert world.traffic.count(op="all_gather") == 4
        assert world.traffic.count(op="reduce_scatter") == 0
        assert world.traffic.count(op="all_reduce") == 0

    def test_gather_axis_one(self):
        def fn(comm):
            x = Tensor(np.full((2, 1, 3), float(comm.rank), dtype=np.float32), requires_grad=True)
            y = all_gather_forward_only(comm, x, axis=1)
            assert y.shape == (2, comm.size, 3)
            y.sum().backward()
            return x.grad.shape

        assert all(s == (2, 1, 3) for s in run_spmd(fn, 2))


class TestAllGatherAutograd:
    def test_backward_reduce_scatters(self):
        """d/dx_r of sum over all ranks' losses = sum of each rank's slice grad."""

        def fn(comm):
            x = Tensor(np.ones((1, 3), dtype=np.float32) * (comm.rank + 1), requires_grad=True)
            y = all_gather_autograd(comm, x, axis=0)
            # Each rank's loss weights slices differently: rank r weights
            # slice s by (r+1); total grad of slice s = sum_r (r+1) * 2*x_s.
            w = Tensor(np.full((comm.size, 1), float(comm.rank + 1), dtype=np.float32))
            (w * y * y).sum().backward()
            return x.grad.copy()

        world_size = 3
        res, world = run_spmd_world(fn, world_size)
        weight_sum = sum(r + 1 for r in range(world_size))
        for rank, grad in enumerate(res):
            np.testing.assert_allclose(grad, weight_sum * 2.0 * (rank + 1))
        assert world.traffic.count(op="reduce_scatter", phase="backward") == world_size

    def test_unequal_shards_gather_and_backward(self):
        """Remainder shards gather correctly and each rank's backward slice
        is the gradient of exactly its own contribution (padded collective,
        pad stripped)."""

        def fn(comm):
            n = 2 if comm.rank == 0 else 6
            x = Tensor(np.full((n, 3), float(comm.rank + 1), dtype=np.float32), requires_grad=True)
            full = all_gather_autograd(comm, x, axis=0)
            (full * full).sum().backward()
            return full.data.shape, x.grad.copy()

        shapes_grads = run_spmd(fn, 2)
        for shape, grad in shapes_grads:
            assert shape == (8, 3)
        # Every rank's upstream grad (2·full) is summed over the group before
        # scattering: rank 0's rows hold 1.0 → 2·1·2 ranks = 4, rank 1's 2.0 → 8.
        np.testing.assert_allclose(shapes_grads[0][1], np.full((2, 3), 4.0))
        np.testing.assert_allclose(shapes_grads[1][1], np.full((6, 3), 8.0))

    def test_mismatched_non_axis_dims_rejected(self):
        def fn(comm):
            w = 3 if comm.rank == 0 else 4
            x = Tensor(np.ones((2, w), dtype=np.float32), requires_grad=True)
            all_gather_autograd(comm, x, axis=0)

        with pytest.raises(SpmdError, match="non-axis"):
            run_spmd(fn, 2)


class TestConjugateOperators:
    def test_copy_then_reduce_roundtrip_gradients(self):
        """The Megatron f/g pair: forward value replicated, grads correct."""

        def fn(comm):
            x = Tensor(np.array([[2.0]], dtype=np.float32), requires_grad=True)
            h = copy_to_group(comm, x)
            # Each rank scales by (rank+1); reduce gives x * sum(scales).
            h = h * float(comm.rank + 1)
            y = reduce_from_group(comm, h)
            y.sum().backward()
            return y.data.item(), x.grad.item()

        res = run_spmd(fn, 4)
        scale_sum = 1 + 2 + 3 + 4
        for value, grad in res:
            assert value == 2.0 * scale_sum
            # backward: reduce_from_group passes grad 1 through; copy_to_group
            # all-reduces each rank's local grad (rank+1) -> 10.
            assert grad == scale_sum


class TestDataParallelHelpers:
    def test_average_gradients(self):
        def fn(comm):
            p = Tensor(np.zeros(5, dtype=np.float32), requires_grad=True)
            p.grad = np.full(5, float(comm.rank), dtype=np.float32)
            average_gradients(comm, [p])
            return p.grad.copy()

        for g in run_spmd(fn, 4):
            np.testing.assert_allclose(g, 1.5)

    def test_average_gradients_none_treated_as_zero(self):
        def fn(comm):
            p = Tensor(np.zeros(3, dtype=np.float32), requires_grad=True)
            if comm.rank == 0:
                p.grad = np.full(3, 2.0, dtype=np.float32)
            average_gradients(comm, [p])
            return p.grad.copy()

        for g in run_spmd(fn, 2):
            np.testing.assert_allclose(g, 1.0)

    def test_average_gradients_buckets(self):
        def fn(comm):
            params = [Tensor(np.zeros(100, dtype=np.float32), requires_grad=True) for _ in range(5)]
            for p in params:
                p.grad = np.full(100, float(comm.rank + 1), dtype=np.float32)
            average_gradients(comm, params, bucket_bytes=256)  # force several buckets
            return [p.grad.copy() for p in params]

        for grads in run_spmd(fn, 2):
            for g in grads:
                np.testing.assert_allclose(g, 1.5)

    def test_broadcast_parameters(self):
        def fn(comm):
            p = Tensor(np.full(4, float(comm.rank), dtype=np.float32), requires_grad=True)
            broadcast_parameters(comm, [p], root=0)
            return p.data.copy()

        for vals in run_spmd(fn, 3):
            np.testing.assert_allclose(vals, 0.0)
