"""Tests for memory and FLOP runtime accounting."""

import gc

import numpy as np

from repro.tensor import (
    FlopCounter,
    MemoryTracker,
    Tensor,
    count_flops,
    current_counter,
    current_tracker,
    track_memory,
)


class TestMemoryTracker:
    def test_registers_tensor_bytes(self):
        tracker = MemoryTracker()
        with track_memory(tracker):
            t = Tensor.zeros((1024,))
        assert tracker.current_bytes >= 4096
        assert tracker.peak_bytes >= 4096
        del t
        gc.collect()
        assert tracker.current_bytes < 4096

    def test_peak_is_high_water_mark(self):
        tracker = MemoryTracker()
        with track_memory(tracker):
            big = Tensor.zeros((10_000,))
            del big
            gc.collect()
            small = Tensor.zeros((10,))
        assert tracker.peak_bytes >= 40_000
        assert tracker.current_bytes < 1000
        del small

    def test_views_not_double_counted(self):
        tracker = MemoryTracker()
        with track_memory(tracker):
            t = Tensor.zeros((1000,))
            v = t.reshape(10, 100)  # a view: no new allocation
        assert tracker.total_allocated_bytes < 2 * 4000
        del t, v

    def test_grad_buffers_tracked(self):
        tracker = MemoryTracker()
        with track_memory(tracker):
            t = Tensor(np.zeros(1000, dtype=np.float32), requires_grad=True)
            (t * 2).sum().backward()
        assert tracker.peak_bytes >= 2 * 4000  # data + grad

    def test_context_isolated(self):
        assert current_tracker() is None
        tracker = MemoryTracker()
        with track_memory(tracker):
            assert current_tracker() is tracker
        assert current_tracker() is None

    def test_reset_peak(self):
        tracker = MemoryTracker()
        tracker.allocate(100)
        tracker.free(100)
        tracker.reset_peak()
        assert tracker.peak_bytes == 0


class TestFlopCounter:
    def test_matmul_flops_exact(self):
        with count_flops() as counter:
            a = Tensor(np.zeros((3, 4), dtype=np.float32))
            b = Tensor(np.zeros((4, 5), dtype=np.float32))
            _ = a @ b
        assert counter.by_category["matmul"] == 2 * 3 * 5 * 4

    def test_batched_matmul_flops(self):
        with count_flops() as counter:
            a = Tensor(np.zeros((2, 3, 4), dtype=np.float32))
            b = Tensor(np.zeros((2, 4, 5), dtype=np.float32))
            _ = a @ b
        assert counter.by_category["matmul"] == 2 * 2 * 3 * 5 * 4

    def test_backward_counts_separately(self):
        with count_flops() as counter:
            a = Tensor(np.zeros((3, 4), dtype=np.float32), requires_grad=True)
            b = Tensor(np.zeros((4, 5), dtype=np.float32), requires_grad=True)
            (a @ b).sum().backward()
        assert counter.by_category["matmul_bwd"] == 2 * (2 * 3 * 5 * 4)

    def test_nested_context_restores(self):
        assert current_counter() is None
        with count_flops():
            inner = FlopCounter()
            with count_flops(inner):
                _ = Tensor(np.zeros((2, 2), dtype=np.float32)) @ Tensor(
                    np.zeros((2, 2), dtype=np.float32)
                )
            assert inner.total > 0
        assert current_counter() is None

    def test_reset(self):
        c = FlopCounter()
        c.add(100)
        c.reset()
        assert c.total == 0 and c.by_category == {}
