"""Tests for the model assemblies (ChannelViT, MAE, weather forecaster)."""

import numpy as np
import pytest

from repro.models import (
    ChannelViT,
    SerialChannelFrontend,
    WeatherForecaster,
    build_serial_forecaster,
    build_serial_mae,
    unpatchify_tokens,
)
from repro.nn import ViTEncoder, patchify
from repro.tensor import Tensor
from repro.train import TrainConfig, Trainer

RNG = np.random.default_rng(51)


class TestSerialFrontend:
    @pytest.mark.parametrize("agg", ["cross", "linear"])
    def test_maps_images_to_tokens(self, agg):
        fe = SerialChannelFrontend(6, 4, 32, 4, RNG, agg=agg)
        imgs = RNG.standard_normal((2, 6, 16, 16)).astype(np.float32)
        out = fe(imgs)
        assert out.shape == (2, 16, 32)

    def test_bad_agg(self):
        with pytest.raises(ValueError):
            SerialChannelFrontend(6, 4, 32, 4, RNG, agg="pool")


class TestChannelViT:
    def _build(self, meta_fields=0):
        fe = SerialChannelFrontend(6, 4, 32, 4, RNG)
        enc = ViTEncoder(32, 2, 4, RNG)
        return ChannelViT(fe, enc, 16, 32, RNG, meta_fields=meta_fields)

    def test_forward_shape(self):
        model = self._build()
        imgs = RNG.standard_normal((2, 6, 16, 16)).astype(np.float32)
        assert model(imgs).shape == (2, 16, 32)

    def test_metadata_token_stripped(self):
        model = self._build(meta_fields=2)
        imgs = RNG.standard_normal((2, 6, 16, 16)).astype(np.float32)
        meta = np.zeros((2, 2), dtype=np.float32)
        assert model(imgs, meta).shape == (2, 16, 32)

    def test_metadata_required_when_configured(self):
        model = self._build(meta_fields=2)
        imgs = RNG.standard_normal((1, 6, 16, 16)).astype(np.float32)
        with pytest.raises(ValueError):
            model(imgs)

    def test_metadata_changes_output(self):
        model = self._build(meta_fields=1)
        imgs = RNG.standard_normal((1, 6, 16, 16)).astype(np.float32)
        a = model(imgs, np.array([[0.0]], dtype=np.float32)).data
        b = model(imgs, np.array([[5.0]], dtype=np.float32)).data
        assert not np.allclose(a, b)


class TestUnpatchify:
    def test_inverse_of_patchify(self):
        imgs = RNG.standard_normal((2, 3, 8, 12)).astype(np.float32)
        patches = patchify(imgs, 4)  # [2, 3, 6, 16]
        tokens = Tensor(patches.transpose(0, 2, 3, 1).reshape(2, 6, 16 * 3))
        rec = unpatchify_tokens(tokens, 4, 2, 3, 3)
        np.testing.assert_allclose(rec.data, imgs, rtol=1e-6)

    def test_token_count_mismatch(self):
        with pytest.raises(ValueError):
            unpatchify_tokens(Tensor(np.zeros((1, 5, 16), dtype=np.float32)), 4, 2, 3, 1)


class TestMAE:
    def _model(self, mask_ratio=0.5):
        return build_serial_mae(
            channels=6, image=16, patch=4, dim=32, depth=2, heads=4,
            rng=np.random.default_rng(0), mask_ratio=mask_ratio, agg="linear",
        )

    def test_forward_shapes(self):
        model = self._model()
        imgs = RNG.standard_normal((2, 6, 16, 16)).astype(np.float32)
        pred, keep, mask = model(imgs, np.random.default_rng(1))
        assert pred.shape == (2, 16, 4 * 4 * 6)
        assert mask.shape == (16,)
        assert len(keep) == 8  # half visible at ratio 0.5

    def test_reconstruction_target_layout(self):
        model = self._model()
        imgs = RNG.standard_normal((1, 6, 16, 16)).astype(np.float32)
        target = model.reconstruction_target(imgs)
        assert target.shape == (1, 16, 96)
        # Round trip through unpatchify recovers the image.
        rec = unpatchify_tokens(Tensor(target), 4, 4, 4, 6)
        np.testing.assert_allclose(rec.data, imgs, rtol=1e-6)

    def test_loss_scalar_and_differentiable(self):
        model = self._model()
        imgs = RNG.standard_normal((2, 6, 16, 16)).astype(np.float32)
        loss = model.loss(imgs, np.random.default_rng(1))
        assert loss.size == 1
        loss.backward()
        assert model.decoder.mask_token.grad is not None
        assert model.frontend.tokenizer.weight.grad is not None

    def test_training_reduces_loss(self):
        model = self._model()
        imgs = RNG.standard_normal((4, 6, 16, 16)).astype(np.float32)
        tr = Trainer(model, TrainConfig(lr=3e-3, total_steps=15, warmup_steps=2))
        losses = [tr.step(imgs, np.random.default_rng(i)) for i in range(15)]
        assert np.mean(losses[-3:]) < np.mean(losses[:3])

    def test_reconstruct_full_image_shape(self):
        model = self._model()
        imgs = RNG.standard_normal((2, 6, 16, 16)).astype(np.float32)
        rec = model.reconstruct(imgs, np.random.default_rng(0))
        assert rec.shape == (2, 6, 16, 16)


class TestForecaster:
    def _model(self):
        return build_serial_forecaster(
            channels=8, image_hw=(16, 32), patch=8, dim=32, depth=1, heads=4,
            rng=np.random.default_rng(0),
        )

    def test_forward_shape_nonsquare(self):
        model = self._model()
        x = RNG.standard_normal((2, 8, 16, 32)).astype(np.float32)
        meta = np.zeros((2, 2), dtype=np.float32)
        assert model(x, meta).shape == (2, 8, 16, 32)

    def test_loss_differentiable(self):
        model = self._model()
        x = RNG.standard_normal((2, 8, 16, 32)).astype(np.float32)
        y = RNG.standard_normal((2, 8, 16, 32)).astype(np.float32)
        meta = np.zeros((2, 2), dtype=np.float32)
        loss = model.loss(x, y, meta)
        loss.backward()
        assert model.head.weight.grad is not None

    def test_indivisible_image_raises(self):
        with pytest.raises(ValueError):
            build_serial_forecaster(
                channels=8, image_hw=(15, 32), patch=8, dim=32, depth=1, heads=4,
                rng=np.random.default_rng(0),
            )

    def test_training_reduces_loss(self):
        from repro.data import ERA5Config, SyntheticERA5

        era = SyntheticERA5(ERA5Config(n_steps=12, seed=1))
        model = build_serial_forecaster(
            channels=80, image_hw=(32, 64), patch=8, dim=32, depth=1, heads=4,
            rng=np.random.default_rng(0),
        )
        x, y, meta = era.batch([0, 1, 2, 3])
        tr = Trainer(model, TrainConfig(lr=2e-3, total_steps=10, warmup_steps=1))
        losses = [tr.step(x, y, meta) for _ in range(10)]
        assert losses[-1] < losses[0]
