"""Gradient and semantics tests for the core autograd ops."""

import numpy as np
import pytest

from repro.tensor import Tensor, check_gradients, no_grad

RNG = np.random.default_rng(1234)


def r(*shape):
    return RNG.standard_normal(shape)


class TestArithmetic:
    def test_add_grads(self):
        check_gradients(lambda a, b: a + b, [r(3, 4), r(3, 4)])

    def test_add_broadcast_grads(self):
        check_gradients(lambda a, b: a + b, [r(3, 4), r(4)])
        check_gradients(lambda a, b: a + b, [r(2, 1, 4), r(3, 1)])

    def test_sub_grads(self):
        check_gradients(lambda a, b: a - b, [r(3, 4), r(1, 4)])

    def test_mul_grads(self):
        check_gradients(lambda a, b: a * b, [r(3, 4), r(3, 4)])

    def test_div_grads(self):
        check_gradients(lambda a, b: a / b, [r(3, 4), np.abs(r(3, 4)) + 1.0])

    def test_pow_grads(self):
        check_gradients(lambda a: a**3, [r(3, 4)])

    def test_neg_grads(self):
        check_gradients(lambda a: -a, [r(5)])

    def test_scalar_operands(self):
        x = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        y = (2.0 * x + 1.0) / 2.0 - 0.5
        y.backward(np.ones(2))
        np.testing.assert_allclose(x.grad, [1.0, 1.0])

    def test_rsub_rdiv(self):
        x = Tensor(np.array([2.0, 4.0]))
        np.testing.assert_allclose((1.0 - x).data, [-1.0, -3.0])
        np.testing.assert_allclose((8.0 / x).data, [4.0, 2.0])

    def test_grad_accumulates_on_reuse(self):
        x = Tensor(np.array([3.0]), requires_grad=True)
        y = x * x + x  # dy/dx = 2x + 1 = 7
        y.backward(np.ones(1))
        np.testing.assert_allclose(x.grad, [7.0])


class TestMatmul:
    def test_2d_grads(self):
        check_gradients(lambda a, b: a @ b, [r(3, 4), r(4, 5)])

    def test_batched_grads(self):
        check_gradients(lambda a, b: a @ b, [r(2, 3, 4), r(2, 4, 5)])

    def test_broadcast_batched_grads(self):
        check_gradients(lambda a, b: a @ b, [r(3, 4), r(2, 4, 5)])
        check_gradients(lambda a, b: a @ b, [r(2, 3, 4), r(4, 5)])

    def test_matches_numpy(self):
        a, b = r(4, 6), r(6, 2)
        np.testing.assert_allclose((Tensor(a) @ Tensor(b)).data, (a @ b).astype(np.float32), rtol=1e-5)


class TestReductions:
    def test_sum_all(self):
        check_gradients(lambda a: a.sum(), [r(3, 4)])

    def test_sum_axis(self):
        check_gradients(lambda a: a.sum(axis=0), [r(3, 4)])
        check_gradients(lambda a: a.sum(axis=1, keepdims=True), [r(3, 4)])

    def test_mean(self):
        check_gradients(lambda a: a.mean(axis=-1), [r(3, 4)])

    def test_var(self):
        check_gradients(lambda a: a.var(axis=-1), [r(3, 5)], atol=5e-4)

    def test_max_unique(self):
        a = np.arange(12.0).reshape(3, 4)
        check_gradients(lambda t: t.max(axis=1), [a])

    def test_max_value(self):
        a = r(4, 5)
        np.testing.assert_allclose(Tensor(a).max(axis=0).data, a.max(axis=0).astype(np.float32))


class TestElementwise:
    @pytest.mark.parametrize(
        "fn",
        [
            lambda a: a.exp(),
            lambda a: (a * a + 1.0).log(),
            lambda a: (a * a + 0.5).sqrt(),
            lambda a: a.tanh(),
            lambda a: a.sigmoid(),
        ],
    )
    def test_unary_grads(self, fn):
        check_gradients(fn, [r(3, 4)])

    def test_relu_grads(self):
        # Avoid the kink at exactly 0.
        a = r(4, 4)
        a[np.abs(a) < 0.1] += 0.5
        check_gradients(lambda t: t.relu(), [a])

    def test_clip_grads(self):
        a = r(4, 4) * 2
        a[np.abs(np.abs(a) - 1.0) < 0.05] += 0.3  # keep away from clip edges
        check_gradients(lambda t: t.clip(-1.0, 1.0), [a])


class TestShape:
    def test_reshape_grads(self):
        check_gradients(lambda a: a.reshape(2, 6), [r(3, 4)])
        check_gradients(lambda a: a.reshape(-1), [r(3, 4)])

    def test_transpose_grads(self):
        check_gradients(lambda a: a.transpose(), [r(3, 4)])
        check_gradients(lambda a: a.transpose(2, 0, 1), [r(2, 3, 4)])

    def test_swapaxes_grads(self):
        check_gradients(lambda a: a.swapaxes(0, 2), [r(2, 3, 4)])

    def test_getitem_grads(self):
        check_gradients(lambda a: a[1], [r(3, 4)])
        check_gradients(lambda a: a[:, 1:3], [r(3, 4)])
        check_gradients(lambda a: a[::2, ::2], [r(4, 6)])

    def test_fancy_index_grads(self):
        idx = np.array([0, 2, 2])  # repeated index accumulates
        check_gradients(lambda a: a[idx], [r(4, 3)])

    def test_expand_squeeze(self):
        check_gradients(lambda a: a.expand_dims(1), [r(3, 4)])
        check_gradients(lambda a: a.expand_dims(0).squeeze(0), [r(3, 4)])

    def test_broadcast_to_grads(self):
        check_gradients(lambda a: a.broadcast_to((3, 2, 4)), [r(2, 4)])

    def test_pad_grads(self):
        check_gradients(lambda a: a.pad([(1, 2), (0, 1)]), [r(3, 4)])

    def test_concat_grads(self):
        check_gradients(lambda a, b: Tensor.concat([a, b], axis=1), [r(2, 3), r(2, 5)])

    def test_stack_split_roundtrip(self):
        a, b = Tensor(r(2, 3)), Tensor(r(2, 3))
        s = Tensor.stack([a, b], axis=0)
        parts = s.split(2, axis=0)
        np.testing.assert_allclose(parts[0].squeeze(0).data, a.data)
        np.testing.assert_allclose(parts[1].squeeze(0).data, b.data)

    def test_split_errors_on_uneven(self):
        with pytest.raises(ValueError):
            Tensor(r(5, 2)).split(2, axis=0)


class TestAutogradMechanics:
    def test_no_grad_blocks_graph(self):
        x = Tensor(r(3), requires_grad=True)
        with no_grad():
            y = x * 2
        assert not y.requires_grad

    def test_backward_requires_scalar_or_gradient(self):
        x = Tensor(r(3), requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2).backward()

    def test_backward_on_non_grad_tensor_raises(self):
        with pytest.raises(RuntimeError):
            Tensor(r(3)).backward(np.ones(3))

    def test_diamond_graph(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        a = x * 3
        b = x * 5
        (a * b).backward(np.ones(1))  # d/dx 15x^2 = 30x = 60
        np.testing.assert_allclose(x.grad, [60.0])

    def test_detach_stops_gradient(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x.detach() * x
        y.backward(np.ones(1))
        np.testing.assert_allclose(x.grad, [2.0])

    def test_zero_grad(self):
        x = Tensor(r(3), requires_grad=True)
        (x * x).sum().backward()
        assert x.grad is not None
        x.zero_grad()
        assert x.grad is None

    def test_dtype_defaults_to_float32(self):
        assert Tensor([1.0, 2.0]).dtype == np.float32
        assert Tensor(np.arange(3)).dtype == np.float32

    def test_constructors(self):
        assert Tensor.zeros((2, 3)).shape == (2, 3)
        assert Tensor.ones(4).data.sum() == 4
        assert Tensor.full((2,), 7.0).data.tolist() == [7.0, 7.0]
        assert Tensor.arange(5).shape == (5,)
        assert Tensor.randn((3, 3), np.random.default_rng(0)).shape == (3, 3)


class TestExtraOps:
    def test_abs_grads(self):
        a = r(4, 4)
        a[np.abs(a) < 0.1] += 0.5  # avoid the kink
        check_gradients(lambda t: t.abs(), [a])

    def test_min_matches_numpy(self):
        a = r(3, 5)
        np.testing.assert_allclose(Tensor(a).min(axis=1).data, a.min(axis=1).astype(np.float32), rtol=1e-6)

    def test_min_grads(self):
        a = np.arange(12.0).reshape(3, 4)[:, ::-1].copy()
        check_gradients(lambda t: t.min(axis=1), [a])

    def test_where_selects(self):
        cond = np.array([True, False, True])
        a = Tensor(np.array([1.0, 2.0, 3.0]))
        b = Tensor(np.array([10.0, 20.0, 30.0]))
        np.testing.assert_allclose(Tensor.where(cond, a, b).data, [1.0, 20.0, 3.0])

    def test_where_grads_route_by_mask(self):
        cond = np.array([True, False])
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        b = Tensor(np.array([3.0, 4.0]), requires_grad=True)
        Tensor.where(cond, a, b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 0.0])
        np.testing.assert_allclose(b.grad, [0.0, 1.0])
