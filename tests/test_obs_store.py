"""Tests for the sqlite sweep store (``repro.obs.store``) and the ``store=``
integration points of the search/measure/calibrate entry points."""

import json
import sqlite3

import pytest

from repro.obs.store import SCHEMA_VERSION, SweepStore, open_store
from repro.perf import frontier, named_model, search_configurations
from repro.perf.calibrate import calibrate, measure_plan
from repro.perf.modelcfg import ModelConfig
from repro.perf.plan import ParallelPlan, Workload

M = frontier()
SMALL = ModelConfig("obs-test", dim=64, depth=2, heads=4, patch=4, image_hw=(16, 16))


class TestSchema:
    def test_creates_versioned_schema(self, tmp_path):
        path = tmp_path / "sweep.db"
        with SweepStore(path) as store:
            assert store.run_history() == []
        db = sqlite3.connect(path)
        tables = {
            r[0]
            for r in db.execute(
                "SELECT name FROM sqlite_master WHERE type='table'"
            ).fetchall()
        }
        assert {"runs", "plans", "metrics", "traces"} <= tables
        assert db.execute("PRAGMA user_version").fetchone()[0] == SCHEMA_VERSION
        assert db.execute("PRAGMA journal_mode").fetchone()[0].lower() == "wal"
        db.close()

    def test_reopening_is_idempotent(self, tmp_path):
        path = tmp_path / "sweep.db"
        with SweepStore(path) as store:
            run_id = store.record_run("bench", "x")
        with SweepStore(path) as store:
            assert store.run_history()[0].id == run_id

    def test_future_schema_version_rejected(self, tmp_path):
        path = tmp_path / "sweep.db"
        SweepStore(path).close()
        db = sqlite3.connect(path)
        db.execute("PRAGMA user_version=99")
        db.close()
        with pytest.raises(ValueError, match="version 99"):
            SweepStore(path)

    def test_open_store_coerces(self, tmp_path):
        assert open_store(None) is None
        with SweepStore() as handle:
            assert open_store(handle) is handle
        opened = open_store(tmp_path / "s.db")
        assert isinstance(opened, SweepStore)
        opened.close()


class TestUpserts:
    def test_record_run_upserts_on_kind_name(self):
        with SweepStore() as store:
            a = store.record_run("search", "sweep-1", machine="frontier")
            b = store.record_run("search", "sweep-1", machine="other")
            assert a == b
            history = store.run_history(kind="search")
            assert len(history) == 1
            assert history[0].machine == "other"

    def test_fresh_rerun_replaces_child_rows(self):
        with SweepStore() as store:
            run_id = store.record_run("measure", "m")
            store.record_metric(run_id, "old_metric", 1.0)
            store.record_trace(run_id, "t.json", {"traceEvents": []})
            rerun = store.record_run("measure", "m")
            assert rerun == run_id
            assert store.metrics_for(run_id) == {}
            assert store.trace_names(run_id) == []

    def test_metric_upsert_on_natural_key(self):
        with SweepStore() as store:
            run_id = store.record_run("bench", "b")
            store.record_metric(run_id, "wire_bytes", 10, op="all_reduce",
                                phase="tp", link="intra", source="measured")
            store.record_metric(run_id, "wire_bytes", 20, op="all_reduce",
                                phase="tp", link="intra", source="measured")
            vols = store.volume_by_link(run_id, source="measured")
            assert vols == {("all_reduce", "tp", "intra"): 20.0}

    def test_trace_round_trip(self):
        trace = {"traceEvents": [{"ph": "M", "pid": 0, "tid": 0, "ts": 0,
                                  "name": "process_name", "args": {"name": "rank 0"}}]}
        with SweepStore() as store:
            run_id = store.record_run("trace", "t")
            store.record_trace(run_id, "step.json", trace)
            assert store.get_trace(run_id, "step.json") == trace
            assert store.get_trace(run_id, "missing.json") is None

    def test_run_history_filters_and_orders(self):
        with SweepStore() as store:
            store.record_run("search", "a")
            store.record_run("bench", "b")
            store.record_run("search", "c")
            assert [r.name for r in store.run_history(kind="search")] == ["c", "a"]
            assert store.latest_run(kind="bench").name == "b"
            assert store.latest_run(kind="nothing") is None


class TestSearchIntegration:
    @pytest.fixture(scope="class")
    def store_and_results(self):
        store = SweepStore()
        results = search_configurations(
            named_model("7B"), 500, 1024, M, 4096, store=store
        )
        yield store, results
        store.close()

    def test_persists_every_candidate(self, store_and_results):
        store, results = store_and_results
        run = store.latest_run(kind="search")
        assert run.params["candidates"] == len(results)
        stored = store.top_plans(run.id, limit=len(results) + 10)
        assert len(stored) == len(results)

    def test_top_plans_reproduces_the_podium(self, store_and_results):
        """The §6.2 golden podium, reproduced from the database alone."""
        store, results = store_and_results
        stored = store.top_plans(limit=3)  # defaults to the newest search run
        assert [p.label for p in stored] == [t.plan.label for t in results[:3]]
        for p, t in zip(stored, results[:3]):
            assert p.total_tflops == pytest.approx(t.total_tflops)
            assert (p.strategy, p.tp, p.fsdp, p.dp) == (
                t.plan.strategy, t.plan.tp, t.plan.fsdp, t.plan.dp
            )
            assert p.micro_batch == t.micro_batch
        assert stored[0].strategy == "dchag"  # the paper's conclusion survives

    def test_store_accepts_a_path(self, tmp_path):
        path = tmp_path / "search.db"
        results = search_configurations(
            named_model("1.7B"), 512, 8, M, 32, store=path, store_name="tiny"
        )
        with SweepStore(path) as store:
            run = store.latest_run(kind="search")
            assert run.name == "tiny"
            assert store.top_plans(run.id, limit=1)[0].label == results[0].plan.label


class TestMeasureAndCalibrateIntegration:
    def test_measure_plan_persists_metrics(self):
        with SweepStore() as store:
            plan = ParallelPlan("dist_tok", tp=2, fsdp=1, dp=2)
            measured = measure_plan(
                SMALL, Workload(16, 2), plan, M, eager=True, store=store
            )
            run = store.latest_run(kind="measure")
            assert run.name == plan.label
            metrics = store.metrics_for(run.id)
            assert metrics["step_seconds"] == pytest.approx(measured.step_seconds)
            assert metrics["dp_overlap"] == pytest.approx(measured.overlaps.dp_overlap)
            for axis, wire in measured.wire.items():
                assert metrics[f"wire/{axis}"] == wire

    def test_calibrate_persists_rows(self):
        with SweepStore() as store:
            report = calibrate(world_sizes=(2,), machine=M, store=store)
            run = store.latest_run(kind="calibrate")
            assert run.name == M.name
            rows = store._db.execute(
                "SELECT COUNT(*) FROM metrics WHERE run_id=?", (run.id,)
            ).fetchone()[0]
            assert rows == 2 * len(report.rows)  # wire_match + time_residual each


class TestJsonSafety:
    def test_params_round_trip_as_json(self):
        with SweepStore() as store:
            run_id = store.record_run(
                "bench", "j", params={"nested": {"a": [1, 2]}, "flag": True}
            )
            run = store.run_history()[0]
            assert run.id == run_id
            assert run.params == {"nested": {"a": [1, 2]}, "flag": True}
            raw = store._db.execute(
                "SELECT params_json FROM runs WHERE id=?", (run_id,)
            ).fetchone()[0]
            json.loads(raw)  # stored as valid JSON text
