"""Property tests: pooled wrapper buffers and batched-wake failure paths.

PR 8 threads ``out=`` through the FSDP / TP / DP wrappers via a site-keyed
:class:`repro.dist.BufferPool`, so steady-state training steps reuse one
buffer per collective site instead of allocating.  The contract pinned
here:

* pooled paths are **bitwise** identical to the allocating reference at
  2 / 4 / 8 ranks (FSDP unit gathers, TP region AllReduces, DP bucket
  syncs) — reuse may change addresses, never values;
* a converged step takes **zero** pool misses (no fresh allocations) and
  no buffer leaks across steps or sites;
* the batched-wake rendezvous aborts cleanly under injected rank failures
  in both distribution mode (small payloads) and publish mode (large
  payloads) — blocked waiters surface :class:`~repro.dist.SpmdError`
  instead of deadlocking.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dist import BufferPool, SpmdError, run_spmd, site_key
from repro.dist.autograd import average_gradients
from repro.dist.runtime import _PUBLISH_MIN
from repro.nn import ViTEncoder
from repro.parallel import FSDPModel, TPContext, TPViTEncoder
from repro.tensor import AdamW, Tensor

DIM, DEPTH, HEADS = 16, 2, 8

common = settings(max_examples=6, deadline=None)


class TestBufferPool:
    def test_take_reuses_the_same_buffer(self):
        pool = BufferPool()
        a = pool.take("k", (4, 3), np.float32)
        b = pool.take("k", (4, 3), np.float32)
        assert a is b
        assert (pool.hits, pool.misses) == (1, 1)

    def test_take_reallocates_on_shape_or_dtype_change(self):
        pool = BufferPool()
        a = pool.take("k", (4,), np.float32)
        b = pool.take("k", (5,), np.float32)       # shape change
        c = pool.take("k", (5,), np.float64)       # dtype change
        assert a is not b and b is not c
        assert pool.misses == 3 and pool.hits == 0
        assert pool.take("k", (5,), np.float64) is c

    def test_distinct_keys_never_share(self):
        pool = BufferPool()
        assert pool.take("a", (8,), np.float32) is not pool.take(
            "b", (8,), np.float32
        )

    def test_site_keys_are_unique(self):
        assert site_key("x") != site_key("x")

    def test_take_views_is_the_concatenation(self):
        pool = BufferPool()
        flat, views = pool.take_views("g", [(3, 2), (5, 2)], np.float32)
        assert flat.shape == (8, 2)
        assert [v.shape for v in views] == [(3, 2), (5, 2)]
        assert all(v.base is flat for v in views)
        views[0][...] = 1.0
        views[1][...] = 2.0
        assert np.array_equal(flat[:3], np.ones((3, 2), dtype=np.float32))
        assert np.array_equal(flat[3:], np.full((5, 2), 2.0, dtype=np.float32))
        again_flat, again_views = pool.take_views("g", [(3, 2), (5, 2)], np.float32)
        assert again_flat is flat and again_views[1] is views[1]

    def test_take_views_trailing_mismatch_raises(self):
        with pytest.raises(ValueError):
            BufferPool().take_views("g", [(3, 2), (5, 4)], np.float32)

    def test_allocated_bytes_counts_held_buffers(self):
        pool = BufferPool()
        pool.take("a", (4,), np.float64)
        pool.take_views("b", [(2,), (2,)], np.float32)
        assert pool.allocated_bytes() == 4 * 8 + 4 * 4


def _fsdp_run(comm, xs, pool):
    enc = ViTEncoder(DIM, DEPTH, 4, np.random.default_rng(7))
    model = FSDPModel(comm, None, enc, units=[b for b in enc.blocks], pool=pool)
    opt = AdamW(model.shard_parameters(), lr=1e-2, weight_decay=0.0)
    outs = []
    for x in xs:
        out = model(Tensor(x))
        (out**2).mean().backward()
        opt.step()
        opt.zero_grad()
        outs.append(out.data.copy())
    shards = [u.flat.shard.data.copy() for u in model.units]
    return outs, shards


class TestPooledFSDPParity:
    @common
    @given(n=st.sampled_from((2, 4, 8)), seed=st.integers(0, 2**31))
    def test_bitwise_vs_allocating_reference(self, n, seed):
        rng = np.random.default_rng(seed)
        xs = [rng.standard_normal((1, 5, DIM)).astype(np.float32) for _ in range(3)]

        def fn(comm):
            return _fsdp_run(comm, xs, pool=True), _fsdp_run(comm, xs, pool=False)

        for pooled, ref in run_spmd(fn, n):
            for a, b in zip(pooled[0], ref[0]):
                assert np.array_equal(a, b), "pooled forward diverged"
            for a, b in zip(pooled[1], ref[1]):
                assert np.array_equal(a, b), "pooled shard update diverged"

    def test_steady_state_takes_zero_pool_misses(self):
        x = np.random.default_rng(0).standard_normal((1, 5, DIM)).astype(np.float32)

        def fn(comm):
            enc = ViTEncoder(DIM, DEPTH, 4, np.random.default_rng(7))
            model = FSDPModel(comm, None, enc, units=[b for b in enc.blocks])
            opt = AdamW(model.shard_parameters(), lr=1e-2, weight_decay=0.0)

            def step():
                (model(Tensor(x)) ** 2).mean().backward()
                opt.step()
                opt.zero_grad()

            step()  # discovers peer shapes (allocating path)
            step()  # first pooled pass populates every site
            warm_misses = comm.pool.misses
            step()
            step()
            return comm.pool.misses - warm_misses, comm.pool.hits

        for fresh, hits in run_spmd(fn, 4):
            assert fresh == 0, "steady-state step allocated a pool buffer"
            assert hits > 0


class TestPooledTPParity:
    @common
    @given(tp=st.sampled_from((2, 4, 8)), seed=st.integers(0, 2**31))
    def test_bitwise_vs_allocating_reference(self, tp, seed):
        serial = ViTEncoder(DIM, DEPTH, HEADS, np.random.default_rng(42))
        state = serial.state_dict()
        x = (
            np.random.default_rng(seed)
            .standard_normal((2, 6, DIM))
            .astype(np.float32)
        )

        def fn(comm):
            def run(pool):
                enc = TPViTEncoder(
                    TPContext(comm, pool=pool), DIM, DEPTH, HEADS, state
                )
                xi = Tensor(x, requires_grad=True)
                out = enc(xi)
                (out**2).mean().backward()
                qkv = enc.blocks[0].attn.qkv.weight.grad.copy()
                res = out.data.copy(), xi.grad.copy(), qkv
                # Second step through the same blocks: pooled buffers now
                # hold stale step-1 results and must be fully overwritten.
                out2 = enc(Tensor(x * 0.5, requires_grad=True))
                return res + (out2.data.copy(),)

            return run(True), run(False)

        for pooled, ref in run_spmd(fn, tp):
            for a, b in zip(pooled, ref):
                assert np.array_equal(a, b), "pooled TP path diverged"


class TestPooledGradSyncParity:
    @common
    @given(
        n=st.sampled_from((2, 4, 8)),
        bucket_bytes=st.sampled_from((64, 1 << 24)),
        seed=st.integers(0, 2**31),
    )
    def test_average_gradients_bitwise(self, n, bucket_bytes, seed):
        sizes = (7, 13, 5, 20)

        def fn(comm):
            def params():
                ps = []
                for i, s in enumerate(sizes):
                    p = Tensor(np.zeros(s, dtype=np.float32), requires_grad=True)
                    p.grad = (
                        np.random.default_rng(seed % 9973 + 31 * i + comm.rank)
                        .standard_normal(s)
                        .astype(np.float32)
                    )
                    ps.append(p)
                return ps

            key = site_key("test.sync")
            pooled = params()
            average_gradients(comm, pooled, bucket_bytes=bucket_bytes, pool_key=key)
            again = params()  # same site key: bucket buffers are reused
            average_gradients(comm, again, bucket_bytes=bucket_bytes, pool_key=key)
            ref = params()
            average_gradients(comm, ref, bucket_bytes=bucket_bytes)
            return (
                [p.grad for p in pooled],
                [p.grad for p in again],
                [p.grad for p in ref],
            )

        for pooled, again, ref in run_spmd(fn, n):
            for a, b, c in zip(pooled, again, ref):
                assert np.array_equal(a, c), "pooled bucket sync diverged"
                assert np.array_equal(b, c), "bucket buffer reuse leaked state"


class TestBatchedWakeFailure:
    @common
    @given(
        n=st.sampled_from((2, 4, 8)),
        fail_rank=st.integers(0, 7),
        publish=st.booleans(),
        seed=st.integers(0, 2**31),
    )
    def test_rank_failure_aborts_instead_of_deadlocking(
        self, n, fail_rank, publish, seed
    ):
        """A rank dying before it joins leaves peers blocked in the batched
        wait loop; the abort must wake them in both wake modes."""
        fail = fail_rank % n
        length = _PUBLISH_MIN // 8 + 1 if publish else 16

        def fn(comm):
            if comm.rank == fail:
                raise RuntimeError("injected rank failure")
            comm.all_reduce(np.ones(length))

        with pytest.raises(SpmdError):
            run_spmd(fn, n, timeout=60.0)

    @pytest.mark.parametrize("publish", [False, True])
    def test_failure_after_some_collectives_complete(self, publish):
        """Failure mid-stream: earlier batched-wake slots completed and were
        recycled; the in-flight one must still abort every survivor."""
        length = _PUBLISH_MIN // 8 + 1 if publish else 16

        def fn(comm):
            x = np.full(length, float(comm.rank + 1))
            for _ in range(6):
                x = comm.all_reduce(x, op="mean")
            if comm.rank == 1:
                raise RuntimeError("late failure")
            comm.all_reduce(x)

        with pytest.raises(SpmdError):
            run_spmd(fn, 4, timeout=60.0)

    def test_per_rank_consume_error_surfaces_as_spmd_error(self):
        """A bad ``out=`` on one rank is a consume-time error: the batched
        distributor records it for the owning rank, which raises — the world
        aborts loudly instead of handing anyone corrupt buffers."""

        def fn(comm):
            mine = np.ones(8, dtype=np.float32)
            outs = None
            if comm.rank == 2:
                outs = [np.empty(8, dtype=np.float32) for _ in range(4)]
                outs[1] = np.empty(9, dtype=np.float32)  # wrong shape
            comm.all_gather(mine, out=outs)

        with pytest.raises(SpmdError):
            run_spmd(fn, 4, timeout=60.0)

    def test_pooled_world_failure_does_not_hang(self):
        """Failure injection through the pooled FSDP path (gather sites hold
        cached views): the abort still tears the world down."""
        x = np.random.default_rng(0).standard_normal((1, 4, DIM)).astype(np.float32)

        def fn(comm):
            enc = ViTEncoder(DIM, 1, 4, np.random.default_rng(7))
            model = FSDPModel(comm, None, enc)
            (model(Tensor(x)) ** 2).mean().backward()
            if comm.rank == 0:
                raise RuntimeError("boom after a pooled step")
            (model(Tensor(x)) ** 2).mean().backward()

        with pytest.raises(SpmdError):
            run_spmd(fn, 2, timeout=60.0)
