"""Regridding tests (the xESMF substitute), including conservation laws."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data import Grid, bilinear_regrid, conservative_regrid, nearest_regrid, regrid


class TestGrid:
    def test_coordinates(self):
        g = Grid(32, 64)
        assert g.shape == (32, 64)
        assert g.lats[0] == pytest.approx(-90 + 90 / 32)
        assert g.lons[0] == 0.0 and g.lons[-1] < 360.0

    def test_too_small_raises(self):
        with pytest.raises(ValueError):
            Grid(1, 10)


class TestBilinear:
    def test_constant_field_preserved(self):
        src, dst = Grid(32, 64), Grid(16, 32)
        out = bilinear_regrid(np.full(src.shape, 3.5), src, dst)
        np.testing.assert_allclose(out, 3.5, rtol=1e-6)

    def test_linear_in_latitude_preserved(self):
        src, dst = Grid(64, 8), Grid(16, 8)
        field = np.broadcast_to(src.lats[:, None], src.shape).copy()
        out = bilinear_regrid(field, src, dst)
        np.testing.assert_allclose(out, np.broadcast_to(dst.lats[:, None], dst.shape), atol=0.2)

    def test_periodic_longitude(self):
        """A smooth zonal wave survives interpolation across the seam."""
        src, dst = Grid(8, 64), Grid(8, 32)
        wave = np.cos(np.deg2rad(src.lons))[None, :] * np.ones((8, 1))
        out = bilinear_regrid(wave, src, dst)
        expect = np.cos(np.deg2rad(dst.lons))[None, :] * np.ones((8, 1))
        np.testing.assert_allclose(out, expect, atol=0.02)

    def test_leading_dimensions(self):
        src, dst = Grid(8, 16), Grid(4, 8)
        field = np.random.default_rng(0).standard_normal((3, 5, 8, 16))
        out = bilinear_regrid(field, src, dst)
        assert out.shape == (3, 5, 4, 8)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            bilinear_regrid(np.zeros((7, 16)), Grid(8, 16), Grid(4, 8))


class TestNearest:
    def test_identity_on_same_grid(self):
        g = Grid(8, 16)
        f = np.random.default_rng(0).standard_normal(g.shape)
        np.testing.assert_allclose(nearest_regrid(f, g, g), f, rtol=1e-6)

    def test_values_come_from_source(self):
        src, dst = Grid(16, 32), Grid(4, 8)
        f = np.random.default_rng(1).standard_normal(src.shape)
        out = nearest_regrid(f, src, dst)
        assert np.isin(out, f.astype(np.float32)).all()


class TestConservative:
    def test_area_weighted_mean_preserved(self):
        """First-order conservative regridding preserves the global mean."""
        src, dst = Grid(32, 64), Grid(8, 16)
        f = np.random.default_rng(2).standard_normal(src.shape)
        out = conservative_regrid(f, src, dst)
        w_src = np.cos(np.deg2rad(src.lats))[:, None]
        w_dst = np.cos(np.deg2rad(dst.lats))[:, None]
        mean_src = (f * w_src).sum() / (w_src.sum() * src.n_lon)
        mean_dst = (out * w_dst).sum() / (w_dst.sum() * dst.n_lon)
        np.testing.assert_allclose(mean_dst, mean_src, rtol=0.02, atol=1e-3)

    def test_non_integer_factor_raises(self):
        with pytest.raises(ValueError):
            conservative_regrid(np.zeros((10, 16)), Grid(10, 16), Grid(4, 8))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 2**31 - 1))
    def test_constant_preserved_property(self, seed):
        rng = np.random.default_rng(seed)
        value = float(rng.uniform(-100, 100))
        src, dst = Grid(16, 32), Grid(4, 8)
        out = conservative_regrid(np.full(src.shape, value), src, dst)
        np.testing.assert_allclose(out, value, rtol=1e-5, atol=1e-5)


class TestDispatch:
    def test_methods(self):
        src, dst = Grid(8, 16), Grid(4, 8)
        f = np.zeros(src.shape)
        for m in ("bilinear", "nearest", "conservative"):
            assert regrid(f, src, dst, m).shape == dst.shape
        with pytest.raises(ValueError):
            regrid(f, src, dst, "spectral")

    def test_era5_paper_pipeline(self):
        """The paper's 0.25°-like → 5.625° (32×64) coarsening path."""
        hi = Grid(128, 256)  # stand-in for 0.25° (memory-friendly)
        lo = Grid(32, 64)
        f = np.random.default_rng(3).standard_normal((2, *hi.shape))
        out = regrid(f, hi, lo, "bilinear")
        assert out.shape == (2, 32, 64)
        # Coarsening smooths: variance must not increase.
        assert out.var() <= f.var() * 1.05
