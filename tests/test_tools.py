"""Tests for user-facing tooling: ACC metric, report generator, CLI, and the
hierarchical Swin additions."""

import numpy as np
import pytest

from repro.__main__ import main as cli_main
from repro.data import SyntheticERA5, ERA5Config
from repro.nn.swin import HierarchicalSwinEncoder, PatchMerging
from repro.report import build_report, write_report
from repro.tensor import Tensor
from repro.train import anomaly_correlation

RNG = np.random.default_rng(91)


class TestAnomalyCorrelation:
    def _fields(self):
        clim = RNG.standard_normal((1, 2, 8, 16))
        truth = clim + RNG.standard_normal((4, 2, 8, 16))
        return clim, truth

    def test_perfect_forecast_is_one(self):
        clim, truth = self._fields()
        assert anomaly_correlation(truth, truth, clim) == pytest.approx(1.0)

    def test_climatology_forecast_is_zero_skill(self):
        clim, truth = self._fields()
        pred = np.broadcast_to(clim, truth.shape)
        with pytest.raises(ValueError):
            anomaly_correlation(pred, truth, clim)  # zero-variance anomalies

    def test_anticorrelated_is_negative(self):
        clim, truth = self._fields()
        pred = 2 * np.broadcast_to(clim, truth.shape) - truth  # mirrored anomaly
        assert anomaly_correlation(pred, truth, clim) == pytest.approx(-1.0)

    def test_bounded(self):
        clim, truth = self._fields()
        pred = truth + RNG.standard_normal(truth.shape)
        acc = anomaly_correlation(pred, truth, clim)
        assert -1.0 <= acc <= 1.0
        assert acc > 0.3  # correlated forecast keeps skill

    def test_channel_selection(self):
        clim, truth = self._fields()
        pred = truth.copy()
        pred[:, 1] = np.broadcast_to(clim[:, 1], pred[:, 1].shape) - (
            truth[:, 1] - clim[:, 1]
        )
        assert anomaly_correlation(pred, truth, clim, channel=0) == pytest.approx(1.0)
        assert anomaly_correlation(pred, truth, clim, channel=1) == pytest.approx(-1.0)

    def test_on_synthetic_era5_persistence(self):
        """Persistence forecasting has positive ACC on correlated dynamics."""
        era = SyntheticERA5(ERA5Config(n_steps=10, seed=2))
        clim = era.fields.mean(axis=0, keepdims=True)
        pred = era.fields[0:4]     # persistence: predict t+1 with t
        truth = era.fields[1:5]
        assert anomaly_correlation(pred, truth, clim) > 0.5


class TestHierarchicalSwin:
    def test_merging_halves_grid_doubles_dim(self):
        pm = PatchMerging(16, RNG)
        x = Tensor(RNG.standard_normal((2, 64, 16)).astype(np.float32))
        out, grid = pm(x, (8, 8))
        assert out.shape == (2, 16, 32) and grid == (4, 4)

    def test_merging_rejects_odd_grid(self):
        pm = PatchMerging(16, RNG)
        with pytest.raises(ValueError):
            pm(Tensor(np.zeros((1, 15, 16), dtype=np.float32)), (3, 5))

    def test_two_stage_encoder(self):
        enc = HierarchicalSwinEncoder(16, (2, 2), 4, grid=(8, 8), window=4, rng=RNG)
        x = Tensor(RNG.standard_normal((2, 64, 16)).astype(np.float32), requires_grad=True)
        out = enc(x)
        assert out.shape == (2, 16, 32)
        assert enc.out_dim == 32 and enc.out_grid == (4, 4)
        out.sum().backward()
        assert x.grad is not None

    def test_stage_grid_must_divide_window(self):
        with pytest.raises(ValueError):
            # second stage grid would be 2x2 < window 4 after merging... the
            # 4x4 first-stage grid divides, 2x2 does not.
            HierarchicalSwinEncoder(16, (1, 1, 1), 4, grid=(8, 8), window=4, rng=RNG)


class TestReport:
    @pytest.fixture(scope="class")
    def report(self):
        return build_report()

    def test_contains_every_analytic_figure(self, report):
        for fig in ("Fig. 6", "Fig. 7", "Fig. 8", "Fig. 9", "Fig. 13", "Fig. 14", "Fig. 15", "Fig. 16"):
            assert fig in report

    def test_key_conclusions_present(self, report):
        assert "OOM" in report            # capacity boundaries shown
        assert "D-CHAG-L-Tree0" in report  # planner recommendation
        assert "+" in report               # gains

    def test_write_report(self, tmp_path, report):
        path = write_report(tmp_path / "out" / "report.md")
        assert path.exists()
        assert path.read_text() == report


class TestCLI:
    def test_plan_command(self, capsys):
        assert cli_main(["plan", "--model", "1.7B", "--channels", "512", "--tp", "2"]) == 0
        out = capsys.readouterr().out
        assert "recommended: D-CHAG-L" in out
        assert "TFLOP/s/GPU" in out

    def test_report_command(self, tmp_path, capsys):
        target = tmp_path / "r.md"
        assert cli_main(["report", "--output", str(target)]) == 0
        assert target.exists()
        assert "Fig. 16" in target.read_text()
