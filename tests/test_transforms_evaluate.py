"""Tests for data transforms, channel subsetting, and evaluation loops."""

import numpy as np
import pytest

from repro.data import (
    ERA5Config,
    Normalizer,
    SyntheticERA5,
    add_noise,
    channel_dropout,
    random_flip,
    subset_channel_frontend,
)
from repro.models import SerialChannelFrontend, build_serial_forecaster, build_serial_mae
from repro.train import EarlyStopping, evaluate_forecaster, evaluate_mae

RNG = np.random.default_rng(121)


class TestTransforms:
    def test_flip_preserves_content(self):
        imgs = RNG.standard_normal((2, 3, 8, 8)).astype(np.float32)
        out = random_flip(imgs, np.random.default_rng(0), p=1.0)
        np.testing.assert_allclose(np.sort(out.ravel()), np.sort(imgs.ravel()))
        assert out.shape == imgs.shape

    def test_flip_noop_at_p_zero(self):
        imgs = RNG.standard_normal((2, 3, 8, 8)).astype(np.float32)
        np.testing.assert_array_equal(random_flip(imgs, np.random.default_rng(0), p=0.0), imgs)

    def test_channel_dropout_zeroes_dropped(self):
        imgs = np.ones((2, 10, 4, 4), dtype=np.float32)
        out, kept = channel_dropout(imgs, np.random.default_rng(0), drop_fraction=0.3)
        assert kept.sum() == 7
        np.testing.assert_allclose(out[:, ~kept], 0.0)
        np.testing.assert_allclose(out[:, kept], 1.0)
        np.testing.assert_allclose(imgs, 1.0)  # input untouched

    def test_channel_dropout_validation(self):
        with pytest.raises(ValueError):
            channel_dropout(np.zeros((1, 4, 2, 2)), np.random.default_rng(0), drop_fraction=1.0)

    def test_add_noise_scale(self):
        imgs = np.zeros((1, 2, 64, 64), dtype=np.float32)
        out = add_noise(imgs, np.random.default_rng(0), std=0.5)
        assert 0.4 < out.std() < 0.6

    def test_normalizer_roundtrip(self):
        imgs = RNG.standard_normal((8, 3, 6, 6)).astype(np.float32) * 5 + 2
        norm = Normalizer().fit(imgs)
        z = norm.transform(imgs)
        np.testing.assert_allclose(z.mean(axis=(0, 2, 3)), 0.0, atol=1e-4)
        np.testing.assert_allclose(z.std(axis=(0, 2, 3)), 1.0, atol=1e-2)
        np.testing.assert_allclose(norm.inverse(z), imgs, rtol=1e-4, atol=1e-4)

    def test_normalizer_requires_fit(self):
        with pytest.raises(RuntimeError):
            Normalizer().transform(np.zeros((1, 1, 2, 2)))


class TestChannelSubset:
    def test_subset_runs_on_fewer_channels(self):
        fe = SerialChannelFrontend(12, 4, 32, 4, np.random.default_rng(0), agg="cross")
        idx = np.array([0, 3, 7, 11])
        sub = subset_channel_frontend(fe, idx)
        imgs = RNG.standard_normal((2, 12, 16, 16)).astype(np.float32)
        out = sub(imgs[:, idx])
        assert out.shape == (2, 16, 32)

    def test_subset_tokenizer_slices_master_weights(self):
        fe = SerialChannelFrontend(12, 4, 32, 4, np.random.default_rng(0), agg="cross")
        idx = np.array([2, 5])
        sub = subset_channel_frontend(fe, idx)
        np.testing.assert_array_equal(sub.tokenizer.weight.data, fe.tokenizer.weight.data[idx])
        np.testing.assert_array_equal(sub.channel_ids.table.data, fe.channel_ids.table.data[idx])

    def test_full_subset_matches_original(self):
        fe = SerialChannelFrontend(8, 4, 32, 4, np.random.default_rng(0), agg="cross")
        sub = subset_channel_frontend(fe, np.arange(8))
        imgs = RNG.standard_normal((1, 8, 16, 16)).astype(np.float32)
        np.testing.assert_allclose(sub(imgs).data, fe(imgs).data, rtol=1e-5)

    def test_aggregator_shared_not_copied(self):
        fe = SerialChannelFrontend(8, 4, 32, 4, np.random.default_rng(0), agg="cross")
        sub = subset_channel_frontend(fe, np.array([1, 2]))
        assert sub.aggregator is fe.aggregator

    def test_linear_aggregator_rejected(self):
        fe = SerialChannelFrontend(8, 4, 32, 4, np.random.default_rng(0), agg="linear")
        with pytest.raises(TypeError, match="cross-attention"):
            subset_channel_frontend(fe, np.array([0, 1]))

    def test_out_of_range_indices(self):
        fe = SerialChannelFrontend(8, 4, 32, 4, np.random.default_rng(0), agg="cross")
        with pytest.raises(ValueError):
            subset_channel_frontend(fe, np.array([0, 8]))


class TestEvaluate:
    def test_evaluate_forecaster_metrics(self):
        era = SyntheticERA5(ERA5Config(n_steps=12, seed=5))
        model = build_serial_forecaster(
            channels=80, image_hw=(32, 64), patch=8, dim=32, depth=1, heads=4,
            rng=np.random.default_rng(0),
        )
        _, test_idx = era.train_test_split(0.3)
        clim = era.fields.mean(axis=0, keepdims=True)
        metrics = evaluate_forecaster(model, era, test_idx, climatology=clim)
        assert set(metrics) == {"rmse", "rmse_z500", "rmse_t850", "rmse_u10", "acc"}
        assert metrics["rmse"] > 0 and -1 <= metrics["acc"] <= 1
        assert model.training  # mode restored

    def test_evaluate_mae_metrics(self):
        model = build_serial_mae(4, 16, 4, 16, 1, 2, np.random.default_rng(0))
        imgs = RNG.standard_normal((6, 4, 16, 16)).astype(np.float32)
        metrics = evaluate_mae(model, imgs, np.random.default_rng(1), batch_size=4)
        assert metrics["masked_mse"] > 0
        assert abs(metrics["masked_rmse"] - np.sqrt(metrics["masked_mse"])) < 0.1

    def test_evaluation_runs_without_grads(self):
        model = build_serial_mae(4, 16, 4, 16, 1, 2, np.random.default_rng(0))
        imgs = RNG.standard_normal((2, 4, 16, 16)).astype(np.float32)
        evaluate_mae(model, imgs, np.random.default_rng(1))
        assert all(p.grad is None for p in model.parameters())


class TestEarlyStopping:
    def test_stops_after_patience(self):
        es = EarlyStopping(patience=2)
        assert not es.step(1.0)
        assert not es.step(1.1)
        assert es.step(1.2)

    def test_improvement_resets(self):
        es = EarlyStopping(patience=2)
        es.step(1.0)
        es.step(1.1)
        assert not es.step(0.5)  # improvement resets the counter
        assert not es.step(0.6)
        assert es.step(0.7)

    def test_min_delta(self):
        es = EarlyStopping(patience=1, min_delta=0.5)
        es.step(1.0)
        assert es.step(0.8)  # not enough improvement

    def test_validation(self):
        with pytest.raises(ValueError):
            EarlyStopping(patience=0)
