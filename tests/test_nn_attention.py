"""Tests for attention layers, tokenization, and the MAE decoder."""

import numpy as np
import pytest

from repro.nn import (
    ChannelCrossAttention,
    LinearChannelMixer,
    MAEDecoder,
    MultiHeadSelfAttention,
    PatchTokenizer,
    patchify,
    random_masking,
    unpatchify,
)
from repro.tensor import Tensor, functional as F

RNG = np.random.default_rng(11)


def manual_single_head_attention(x, qkv_w, qkv_b, proj_w, proj_b):
    """Reference implementation for heads=1."""
    qkv = x @ qkv_w + qkv_b
    d = x.shape[-1]
    q, k, v = qkv[..., :d], qkv[..., d : 2 * d], qkv[..., 2 * d :]
    scores = q @ k.swapaxes(-1, -2) / np.sqrt(d)
    scores = scores - scores.max(axis=-1, keepdims=True)
    attn = np.exp(scores)
    attn = attn / attn.sum(axis=-1, keepdims=True)
    return attn @ v @ proj_w + proj_b


class TestSelfAttention:
    def test_matches_manual_single_head(self):
        mha = MultiHeadSelfAttention(8, 1, RNG)
        x = RNG.standard_normal((2, 5, 8)).astype(np.float32)
        expect = manual_single_head_attention(
            x, mha.qkv.weight.data, mha.qkv.bias.data, mha.proj.weight.data, mha.proj.bias.data
        )
        np.testing.assert_allclose(mha(Tensor(x)).data, expect, rtol=1e-4, atol=1e-5)

    def test_multihead_shape_and_grads(self):
        mha = MultiHeadSelfAttention(16, 4, RNG)
        x = Tensor(RNG.standard_normal((2, 6, 16)).astype(np.float32), requires_grad=True)
        out = mha(x)
        assert out.shape == (2, 6, 16)
        out.sum().backward()
        assert x.grad is not None and mha.qkv.weight.grad is not None

    def test_permutation_equivariance(self):
        """Self-attention without positions commutes with token permutation."""
        mha = MultiHeadSelfAttention(8, 2, RNG)
        x = RNG.standard_normal((1, 5, 8)).astype(np.float32)
        perm = np.array([3, 1, 4, 0, 2])
        out = mha(Tensor(x)).data
        out_perm = mha(Tensor(x[:, perm])).data
        np.testing.assert_allclose(out[:, perm], out_perm, rtol=1e-4, atol=1e-5)

    def test_dim_head_divisibility(self):
        with pytest.raises(ValueError):
            MultiHeadSelfAttention(10, 3, RNG)


class TestChannelCrossAttention:
    def test_reduces_channels(self):
        agg = ChannelCrossAttention(8, 2, RNG)
        x = Tensor(RNG.standard_normal((2, 6, 4, 8)).astype(np.float32))
        assert agg(x).shape == (2, 4, 8)

    def test_multi_query_keeps_axis(self):
        agg = ChannelCrossAttention(8, 2, RNG, num_queries=3)
        x = Tensor(RNG.standard_normal((1, 6, 4, 8)).astype(np.float32))
        assert agg(x).shape == (1, 3, 4, 8)

    def test_channel_permutation_invariance(self):
        """Aggregation over channels (no channel IDs here) is a set operation."""
        agg = ChannelCrossAttention(8, 2, RNG)
        x = RNG.standard_normal((1, 5, 3, 8)).astype(np.float32)
        perm = np.array([4, 2, 0, 3, 1])
        a = agg(Tensor(x)).data
        b = agg(Tensor(x[:, perm])).data
        np.testing.assert_allclose(a, b, rtol=1e-4, atol=1e-5)

    def test_spatial_locations_independent(self):
        """Channel aggregation must not mix spatial positions."""
        agg = ChannelCrossAttention(8, 2, RNG)
        x = RNG.standard_normal((1, 4, 6, 8)).astype(np.float32)
        base = agg(Tensor(x)).data
        x2 = x.copy()
        x2[:, :, 3, :] = RNG.standard_normal((1, 4, 8))
        out2 = agg(Tensor(x2)).data
        np.testing.assert_allclose(out2[:, :3], base[:, :3], rtol=1e-5)
        np.testing.assert_allclose(out2[:, 4:], base[:, 4:], rtol=1e-5)
        assert not np.allclose(out2[:, 3], base[:, 3])

    def test_gradients_flow(self):
        agg = ChannelCrossAttention(8, 2, RNG)
        x = Tensor(RNG.standard_normal((1, 4, 3, 8)).astype(np.float32), requires_grad=True)
        agg(x).sum().backward()
        assert x.grad is not None and agg.query_tokens.grad is not None


class TestLinearChannelMixer:
    def test_is_weighted_channel_sum(self):
        mix = LinearChannelMixer(3, 1, RNG)
        x = RNG.standard_normal((2, 3, 4, 5)).astype(np.float32)
        out = mix(Tensor(x)).data
        expect = np.einsum("oc,bcnd->bond", mix.weight.data, x)[:, 0] + mix.bias.data[0]
        np.testing.assert_allclose(out, expect, rtol=1e-5, atol=1e-6)

    def test_multi_output(self):
        mix = LinearChannelMixer(4, 2, RNG)
        x = Tensor(RNG.standard_normal((1, 4, 3, 5)).astype(np.float32))
        assert mix(x).shape == (1, 2, 3, 5)

    def test_init_near_average(self):
        mix = LinearChannelMixer(10, 1, np.random.default_rng(0))
        np.testing.assert_allclose(mix.weight.data.sum(), 1.0, atol=0.5)

    def test_channel_mismatch_raises(self):
        mix = LinearChannelMixer(3, 1, RNG)
        with pytest.raises(ValueError):
            mix(Tensor(np.zeros((1, 4, 2, 5), dtype=np.float32)))


class TestPatchTokenizer:
    def test_patchify_unpatchify_inverse(self):
        x = RNG.standard_normal((2, 3, 16, 24)).astype(np.float32)
        np.testing.assert_allclose(unpatchify(patchify(x, 4), 4, 16, 24), x)

    def test_patchify_rejects_indivisible(self):
        with pytest.raises(ValueError):
            patchify(np.zeros((1, 1, 10, 10)), 4)

    def test_tokenizer_matches_per_channel_matmul(self):
        tok = PatchTokenizer(3, 4, 8, RNG)
        imgs = RNG.standard_normal((2, 3, 8, 8)).astype(np.float32)
        out = tok(imgs).data
        patches = patchify(imgs, 4)  # [2, 3, 4, 16]
        for c in range(3):
            expect = patches[:, c] @ tok.weight.data[c] + tok.bias.data[c]
            np.testing.assert_allclose(out[:, c], expect, rtol=1e-4, atol=1e-5)

    def test_channels_are_independent(self):
        tok = PatchTokenizer(4, 4, 8, RNG)
        imgs = RNG.standard_normal((1, 4, 8, 8)).astype(np.float32)
        base = tok(imgs).data
        imgs2 = imgs.copy()
        imgs2[:, 2] = 0.0
        out2 = tok(imgs2).data
        np.testing.assert_allclose(out2[:, [0, 1, 3]], base[:, [0, 1, 3]], rtol=1e-5)

    def test_wrong_channel_count(self):
        tok = PatchTokenizer(3, 4, 8, RNG)
        with pytest.raises(ValueError):
            tok(np.zeros((1, 5, 8, 8), dtype=np.float32))


class TestMasking:
    def test_mask_partition(self):
        keep, masked, mask = random_masking(16, 0.75, np.random.default_rng(0))
        assert len(keep) == 4 and len(masked) == 12
        assert set(keep) | set(masked) == set(range(16))
        np.testing.assert_allclose(mask[keep], 0.0)
        np.testing.assert_allclose(mask[masked], 1.0)

    def test_keeps_at_least_one(self):
        keep, _, _ = random_masking(4, 0.999, np.random.default_rng(0))
        assert len(keep) >= 1

    def test_deterministic_given_rng(self):
        a = random_masking(32, 0.5, np.random.default_rng(7))
        b = random_masking(32, 0.5, np.random.default_rng(7))
        np.testing.assert_array_equal(a[0], b[0])


class TestMAEDecoder:
    def test_output_shape_and_grads(self):
        dec = MAEDecoder(
            encoder_dim=8, decoder_dim=16, depth=1, heads=2,
            num_tokens=9, patch=2, out_channels=3, rng=RNG,
        )
        keep = np.array([0, 2, 5])
        vis = Tensor(RNG.standard_normal((2, 3, 8)).astype(np.float32), requires_grad=True)
        out = dec(vis, keep)
        assert out.shape == (2, 9, 2 * 2 * 3)
        out.sum().backward()
        assert vis.grad is not None and dec.mask_token.grad is not None

    def test_mask_token_fills_hidden_positions(self):
        dec = MAEDecoder(8, 16, 0, 2, num_tokens=4, patch=2, out_channels=1, rng=RNG)
        dec.pos.table.data[:] = 0.0  # remove positional differences
        keep = np.array([1])
        vis = Tensor(np.zeros((1, 1, 8), dtype=np.float32))
        # With depth 0 the decoder is embed + scatter + norm + head; hidden
        # positions all receive the same mask token -> identical outputs.
        out = dec(vis, keep).data
        np.testing.assert_allclose(out[0, 0], out[0, 2], rtol=1e-5)
        np.testing.assert_allclose(out[0, 2], out[0, 3], rtol=1e-5)
