"""Fleet simulator: scripted churn traces priced as pure event arithmetic.

Locks the simulator's ledger against hand-computed scenarios (constant
costs, one event at a time), its fidelity rules (torn in-flight async
saves, spare swaps at zero reshard, banked arrivals are free), the
replay-backed :class:`~repro.perf.schedule.StepCostTable` anchor logic,
and the SweepStore round trip of a policy comparison.
"""

import numpy as np
import pytest

from repro.elastic import (
    AlwaysShrink,
    CostAwareCadence,
    FleetCosts,
    FleetEvent,
    FleetTrace,
    SparePool,
    compare_policies,
    simulate_fleet,
)

STEP = 1.0  # constant per-step seconds for the hand-computed scenarios


def flat_costs(save_io=0.0, snapshot=0.0, restore=None, reshard=0.0):
    return FleetCosts(
        lambda world: STEP,
        save_io_seconds=save_io,
        snapshot_seconds=snapshot,
        restore_seconds=restore,
        reshard_seconds=reshard,
    )


class TestFleetTrace:
    def test_events_sorted_and_validated(self):
        tr = FleetTrace(
            10,
            (FleetEvent(7, "arrival"), FleetEvent(2, "failure"), FleetEvent(2, "arrival")),
        )
        assert [(e.step, e.kind) for e in tr.events] == [
            (2, "failure"), (2, "arrival"), (7, "arrival"),
        ]
        assert tr.n_failures == 1 and tr.n_arrivals == 2
        with pytest.raises(ValueError, match="beyond the horizon"):
            FleetTrace(5, (FleetEvent(5, "failure"),))
        with pytest.raises(ValueError, match="kind"):
            FleetEvent(1, "maintenance")
        with pytest.raises(ValueError, match="count"):
            FleetEvent(1, "failure", count=0)

    def test_poisson_is_seed_deterministic(self):
        a = FleetTrace.poisson(50_000, mtbf_steps=2_000, return_after_steps=500, seed=3)
        b = FleetTrace.poisson(50_000, mtbf_steps=2_000, return_after_steps=500, seed=3)
        assert a == b
        assert a.n_failures > 5
        assert a.n_arrivals <= a.n_failures  # late failures' returns fall off the end
        c = FleetTrace.poisson(50_000, mtbf_steps=2_000, return_after_steps=500, seed=4)
        assert c != a

    def test_mtbf_estimate(self):
        tr = FleetTrace(100, tuple(FleetEvent(s, "failure") for s in (10, 40, 70)))
        assert tr.mtbf_steps == pytest.approx(100 / 3)


class TestSimulateFleetLedger:
    def test_clean_run_charges_only_steps_and_saves(self):
        costs = flat_costs(save_io=0.5, snapshot=0.1)
        r = simulate_fleet(FleetTrace(10), AlwaysShrink(), costs, 4, cadence=3)
        # 10 one-second steps + saves at 3, 6, 9 (never at the horizon).
        assert r.productive_seconds == pytest.approx(10.0)
        assert r.recompute_seconds == 0.0
        assert r.saves == 3 and r.save_seconds == pytest.approx(3 * 0.6)
        assert r.wall_seconds == pytest.approx(11.8)
        assert r.goodput == pytest.approx(10.0 / 11.8)
        assert r.status == "completed" and r.steps_completed == 10

    def test_failure_rolls_back_to_last_checkpoint(self):
        costs = flat_costs(save_io=0.0, reshard=2.0)
        tr = FleetTrace(10, (FleetEvent(5, "failure"),))
        r = simulate_fleet(tr, AlwaysShrink(), costs, 2, cadence=3)
        # Steps 0-4 run, failure fires before step 5, world 2->1 resumes
        # from the step-3 checkpoint: steps 3-4 are recompute.
        assert r.productive_seconds == pytest.approx(10.0)
        assert r.recompute_seconds == pytest.approx(2.0)
        assert r.reshard_seconds == pytest.approx(2.0)
        assert r.restores == 1 and r.final_world == 1
        assert r.wall_seconds == pytest.approx(10 + 2 + 2)

    def test_exhausted_when_policy_hits_min_world(self):
        tr = FleetTrace(10, (FleetEvent(4, "failure"),))
        r = simulate_fleet(tr, AlwaysShrink(), flat_costs(), 1, cadence=3)
        assert r.status == "exhausted"
        assert r.steps_completed == 4
        assert r.restores == 0  # nothing to restart into

    def test_spare_swap_keeps_world_and_skips_reshard(self):
        costs = flat_costs(restore=0.5, reshard=7.0)
        tr = FleetTrace(10, (FleetEvent(5, "failure"),))
        r = simulate_fleet(tr, SparePool(1), costs, 4, cadence=3)
        assert r.final_world == 4 and r.spares_left == 0
        assert r.reshard_seconds == 0.0  # same size: no data movement
        assert r.restore_seconds == pytest.approx(0.5)
        assert r.restores == 1

    def test_banked_arrival_is_free_grow_restarts(self):
        costs = flat_costs(restore=0.5, reshard=2.0)
        # The pool starts full, so bank-testing needs the spare consumed
        # first: failure at 3 (spare swap), the returned host re-banks at 6.
        tr = FleetTrace(10, (FleetEvent(3, "failure"), FleetEvent(6, "arrival")))
        banked = simulate_fleet(tr, SparePool(1), costs, 4, cadence=3)
        assert banked.restores == 1  # the swap; the arrival never interrupts
        assert banked.spares_left == 1 and banked.final_world == 4
        assert banked.recompute_seconds == 0.0  # failure hit right at a save
        # AlwaysShrink grows on a bare arrival: planned restart from step 3.
        grown = simulate_fleet(
            FleetTrace(10, (FleetEvent(4, "arrival"),)),
            AlwaysShrink(), costs, 4, cadence=3,
        )
        assert grown.restores == 1 and grown.final_world == 5
        assert grown.recompute_seconds == pytest.approx(1.0)  # step 3 re-run
        assert grown.reshard_seconds == pytest.approx(2.0)

    def test_max_world_size_caps_growth(self):
        tr = FleetTrace(10, (FleetEvent(4, "arrival", count=3),))
        r = simulate_fleet(
            tr, AlwaysShrink(), flat_costs(), 4, cadence=3, max_world_size=5
        )
        assert r.final_world == 5

    def test_async_save_overlaps_io(self):
        costs = flat_costs(save_io=0.5, snapshot=0.1)
        blocking = simulate_fleet(FleetTrace(10), AlwaysShrink(), costs, 4, cadence=3)
        overlapped = simulate_fleet(
            FleetTrace(10), AlwaysShrink(), costs, 4, cadence=3, async_save=True
        )
        # Async pays only the snapshot up front; the io happens off-path
        # (cadence 3 > 0.5 s, so back-pressure never binds).
        assert overlapped.save_seconds == pytest.approx(3 * 0.1)
        assert overlapped.wall_seconds == pytest.approx(10 + 3 * 0.1)
        assert overlapped.wall_seconds < blocking.wall_seconds
        assert overlapped.goodput > blocking.goodput

    def test_async_backpressure_stalls_when_io_exceeds_cadence(self):
        # io = 5 s per save, one save per 2 one-second steps: the double
        # buffer fills and later commits wait for the previous write.
        costs = flat_costs(save_io=5.0, snapshot=0.0)
        r = simulate_fleet(FleetTrace(9), AlwaysShrink(), costs, 4, cadence=2, async_save=True)
        assert r.save_seconds > 0.0  # stalls were charged
        # Still never slower than fully blocking.
        b = simulate_fleet(FleetTrace(9), AlwaysShrink(), costs, 4, cadence=2)
        assert r.wall_seconds <= b.wall_seconds

    def test_failure_discards_in_flight_async_save(self):
        # Save at step 3 needs 5 s of io; the failure at step 4 beats it:
        # the write is torn, so the rollback target is step 0, not 3.
        costs = flat_costs(save_io=5.0, snapshot=0.0)
        tr = FleetTrace(10, (FleetEvent(4, "failure"),))
        r = simulate_fleet(tr, AlwaysShrink(), costs, 2, cadence=3, async_save=True)
        assert r.recompute_seconds == pytest.approx(4.0)  # steps 0-3 re-run

    def test_planned_grow_drains_in_flight_async_save(self):
        # Same in-flight save, but the interruption is a *planned* grow:
        # the supervisor drains the writer first, so step 3 is durable and
        # only step 3 itself is recomputed.
        costs = flat_costs(save_io=5.0, snapshot=0.0)
        tr = FleetTrace(10, (FleetEvent(4, "arrival"),))
        r = simulate_fleet(tr, AlwaysShrink(), costs, 2, cadence=3, async_save=True)
        assert r.recompute_seconds == pytest.approx(1.0)

    def test_cost_aware_cadence_uses_trace_mtbf(self):
        # step 1 s, save C = 2 s, MTBF = horizon/1 failure = 10_000 steps
        # -> tau = sqrt(2*2*10_000) = 200 steps.
        costs = flat_costs(save_io=2.0)
        tr = FleetTrace(10_000, (FleetEvent(9_999, "failure"),))
        r = simulate_fleet(tr, CostAwareCadence(), costs, 4, cadence=25)
        assert r.cadence_steps == 200
        assert r.saves == 10_000 // 200 - 1  # never saves at the horizon

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError, match="world_size"):
            simulate_fleet(FleetTrace(5), AlwaysShrink(), flat_costs(), 0)
        with pytest.raises(ValueError, match="cadence"):
            simulate_fleet(FleetTrace(5), AlwaysShrink(), flat_costs(), 2, cadence=0)
        with pytest.raises(ValueError, match="no step cost"):
            FleetCosts({4: 1.0}, save_io_seconds=0.0).step_seconds(3)


class TestComparePolicies:
    def _setup(self):
        costs = flat_costs(save_io=0.4, snapshot=0.1, restore=0.5, reshard=3.0)
        trace = FleetTrace.poisson(
            20_000, mtbf_steps=1_500, return_after_steps=600, seed=11
        )
        policies = [AlwaysShrink(), SparePool(2), CostAwareCadence(AlwaysShrink())]
        return trace, policies, costs

    def test_ranking_is_deterministic_and_sorted(self):
        trace, policies, costs = self._setup()
        a = compare_policies(trace, policies, costs, 4, cadence=25)
        b = compare_policies(trace, policies, costs, 4, cadence=25)
        assert [(r.policy, r.goodput) for r in a] == [(r.policy, r.goodput) for r in b]
        goodputs = [r.goodput for r in a]
        assert goodputs == sorted(goodputs, reverse=True)
        assert {r.policy for r in a} == {p.name for p in policies}

    def test_store_round_trip(self, tmp_path):
        from repro.obs.store import SweepStore

        trace, policies, costs = self._setup()
        db = tmp_path / "fleet.sqlite"
        results = compare_policies(
            trace, policies, costs, 4, cadence=25, store=db, name="unit-fleet"
        )
        with SweepStore(db) as store:
            rows = store.fleet_ranking()
            run = store.latest_run(kind="fleet")
        assert run is not None and run.name == "unit-fleet"
        assert [r.policy for r in rows] == [r.policy for r in results]
        for row, res in zip(rows, results):
            assert row.goodput == pytest.approx(res.goodput, abs=1e-12)
            assert row.restores == res.restores
            assert row.final_world == res.final_world
            assert row.status == res.status

    def test_empty_policy_list_rejected(self):
        trace, _, costs = self._setup()
        with pytest.raises(ValueError, match="at least one policy"):
            compare_policies(trace, [], costs, 4)


class TestStepCostTable:
    class _FakeSchedule:
        def __init__(self, world_size):
            self.world_size = world_size

    def test_anchor_replay_and_nearest_scaling(self, monkeypatch):
        import repro.perf.schedule as sched

        replayed = []

        def fake_replay(schedule, machine, n_steps=1, compute_scale=1.0, **kw):
            replayed.append(schedule.world_size)

            class R:
                step_seconds = 1.0 / schedule.world_size

            return R()

        monkeypatch.setattr(sched, "replay", fake_replay)
        table = sched.StepCostTable()
        table.add(self._FakeSchedule(2))
        table.add(self._FakeSchedule(4))
        assert table.worlds == [2, 4]
        assert len(table) == 2
        assert table.is_exact(4) and not table.is_exact(3)
        # Exact worlds replay (memoized: one replay per anchor).
        assert table.seconds_for(4) == pytest.approx(0.25)
        assert table(4) == pytest.approx(0.25)
        assert replayed.count(4) == 1
        # World 3 ties between anchors 2 and 4; the smaller anchor wins and
        # scales by anchor/world (perfect-scaling estimate).
        assert table.seconds_for(3) == pytest.approx(0.5 * 2 / 3)
        # World 6 estimates from the nearest anchor 4.
        assert table.seconds_for(6) == pytest.approx(0.25 * 4 / 6)

    def test_empty_table_raises(self):
        from repro.perf.schedule import StepCostTable

        with pytest.raises(ValueError):
            StepCostTable().seconds_for(4)
