"""Tests for NN functional primitives (softmax, gelu, layer_norm, losses)."""

import numpy as np
import pytest

from repro.tensor import Tensor, check_gradients, functional as F

RNG = np.random.default_rng(7)


def r(*shape):
    return RNG.standard_normal(shape)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        s = F.softmax(Tensor(r(4, 7)))
        np.testing.assert_allclose(s.data.sum(axis=-1), np.ones(4), atol=1e-6)

    def test_stability_large_logits(self):
        s = F.softmax(Tensor(np.array([[1e4, 1e4 - 1.0]])))
        assert np.isfinite(s.data).all()

    def test_grads(self):
        check_gradients(lambda x: F.softmax(x), [r(3, 5)])
        check_gradients(lambda x: F.softmax(x, axis=0), [r(3, 5)])

    def test_shift_invariance(self):
        x = r(2, 6)
        a = F.softmax(Tensor(x)).data
        b = F.softmax(Tensor(x + 100.0)).data
        np.testing.assert_allclose(a, b, atol=1e-6)


class TestLogSoftmax:
    def test_matches_log_of_softmax(self):
        x = r(3, 5)
        np.testing.assert_allclose(
            F.log_softmax(Tensor(x)).data, np.log(F.softmax(Tensor(x)).data), atol=1e-6
        )

    def test_grads(self):
        check_gradients(lambda x: F.log_softmax(x), [r(3, 5)])


class TestGelu:
    def test_grads_exact(self):
        check_gradients(lambda x: F.gelu(x), [r(4, 4)])

    def test_approximate_close_to_exact(self):
        x = Tensor(r(100))
        np.testing.assert_allclose(
            F.gelu(x, approximate=True).data, F.gelu(x).data, atol=2e-3
        )

    def test_known_values(self):
        out = F.gelu(Tensor(np.array([0.0])))
        np.testing.assert_allclose(out.data, [0.0], atol=1e-7)


class TestLayerNorm:
    def test_normalises_last_axis(self):
        x = Tensor(r(6, 32) * 5 + 3)
        out = F.layer_norm(x, Tensor(np.ones(32)), Tensor(np.zeros(32)))
        np.testing.assert_allclose(out.data.mean(axis=-1), 0.0, atol=1e-5)
        np.testing.assert_allclose(out.data.std(axis=-1), 1.0, atol=1e-3)

    def test_grads(self):
        w, b = r(6), r(6)
        check_gradients(lambda x, w, b: F.layer_norm(x, w, b), [r(3, 6), w, b], atol=5e-4)

    def test_affine_applies(self):
        x = Tensor(r(2, 4))
        out = F.layer_norm(x, Tensor(np.full(4, 2.0)), Tensor(np.full(4, 1.0)))
        base = F.layer_norm(x, Tensor(np.ones(4)), Tensor(np.zeros(4)))
        np.testing.assert_allclose(out.data, base.data * 2.0 + 1.0, atol=1e-5)


class TestDropout:
    def test_identity_in_eval(self):
        x = Tensor(r(10, 10))
        out = F.dropout(x, 0.5, np.random.default_rng(0), training=False)
        assert out is x

    def test_preserves_expectation(self):
        x = Tensor(np.ones((2000,)))
        out = F.dropout(x, 0.3, np.random.default_rng(0), training=True)
        assert abs(out.data.mean() - 1.0) < 0.05

    def test_grad_masks(self):
        x = Tensor(np.ones(1000), requires_grad=True)
        out = F.dropout(x, 0.5, np.random.default_rng(1))
        out.sum().backward()
        # Gradient is 0 where dropped, 1/keep where kept.
        assert set(np.unique(x.grad)).issubset({0.0, 2.0})


class TestLosses:
    def test_mse_zero_when_equal(self):
        x = Tensor(r(3, 4))
        assert F.mse_loss(x, Tensor(x.data.copy())).item() == 0.0

    def test_mse_grads(self):
        t = r(3, 4)
        check_gradients(lambda p: F.mse_loss(p, Tensor(t, dtype=np.float64)), [r(3, 4)])

    def test_masked_mse_only_masked(self):
        pred = Tensor(np.zeros((1, 4, 2)))
        target = Tensor(np.ones((1, 4, 2)))
        mask = np.array([1.0, 0.0, 0.0, 0.0])[None, :, None]
        loss = F.masked_mse_loss(pred, target, mask)
        np.testing.assert_allclose(loss.item(), 1.0)

    def test_masked_mse_empty_mask_raises(self):
        with pytest.raises(ValueError):
            F.masked_mse_loss(Tensor(np.zeros((1, 2))), Tensor(np.zeros((1, 2))), np.zeros((1, 2)))

    def test_weighted_mse_normalised_weights(self):
        pred, target = Tensor(np.zeros((2, 3))), Tensor(np.ones((2, 3)))
        w = np.array([1.0, 2.0, 3.0])
        # Weights normalise to mean 1 so a constant error of 1 gives loss 1.
        np.testing.assert_allclose(F.weighted_mse_loss(pred, target, w).item(), 1.0, rtol=1e-6)

    def test_cross_entropy_perfect_prediction(self):
        logits = Tensor(np.array([[10.0, -10.0], [-10.0, 10.0]]))
        loss = F.cross_entropy(logits, np.array([0, 1]))
        assert loss.item() < 1e-4

    def test_cross_entropy_grads(self):
        labels = np.array([0, 2, 1])
        check_gradients(lambda x: F.cross_entropy(x, labels), [r(3, 4)])
