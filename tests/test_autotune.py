"""Tests for the configuration autotuner (the §6.2 search, automated)."""

import pytest

from repro.perf import (
    best_configuration,
    frontier,
    global_batch_throughput,
    named_model,
    search_configurations,
    simulated_overlaps,
)
from repro.perf.overlap import DerivedOverlaps, OverlapReport
from repro.perf.plan import ParallelPlan

M = frontier()


class TestSearch:
    @pytest.fixture(scope="class")
    def results(self):
        return search_configurations(named_model("7B"), 500, 1024, M, 4096)

    def test_returns_feasible_plans_sorted(self, results):
        assert results
        tflops = [t.total_tflops for t in results]
        assert tflops == sorted(tflops, reverse=True)
        for t in results:
            assert t.plan.total_gpus == 1024
            assert t.micro_batch > 0

    def test_tp_stays_within_a_node(self, results):
        assert all(t.plan.tp <= M.gpus_per_node for t in results)

    def test_winner_is_dchag(self, results):
        """The paper's conclusion falls out of the search: the best use of
        1,024 GCDs for 7B/500ch is D-CHAG within a node + DP across."""
        best = results[0]
        assert best.plan.strategy == "dchag"
        assert best.plan.dp > 1

    def test_dchag_beats_every_tp_only_plan(self, results):
        best = results[0]
        tp_only = [t for t in results if t.plan.strategy == "tp"]
        assert tp_only, "search must include TP-only plans"
        assert best.total_tflops > 1.5 * tp_only[0].total_tflops

    def test_respects_channel_divisibility(self):
        # 500 channels: D-CHAG tp must divide 500 → tp ∈ {1, 2, 4} of the
        # pow2 ladder (500 = 4 · 125).
        results = search_configurations(named_model("7B"), 500, 64, M, 256)
        for t in results:
            if t.plan.strategy == "dchag":
                assert 500 % t.plan.tp == 0

    def test_global_batch_divisibility(self, results):
        for t in results:
            assert 4096 % t.plan.dp == 0


class TestBestConfiguration:
    def test_matches_search_head(self):
        best = best_configuration(named_model("7B"), 500, 1024, M, 4096)
        head = search_configurations(named_model("7B"), 500, 1024, M, 4096)[0]
        assert best.plan == head.plan

    def test_infeasible_raises(self):
        with pytest.raises(ValueError):
            # 26B on a single GPU cannot fit under any strategy.
            best_configuration(named_model("26B"), 64, 1, M, 8)

    def test_dchag_extends_feasibility_to_tiny_budgets(self):
        """26B with 1024 channels on just one node is only feasible via
        D-CHAG (Fig. 14's message, found by the search)."""
        results = search_configurations(named_model("26B"), 1024, 8, M, 64)
        assert results and all(t.plan.strategy == "dchag" for t in results)

    def test_small_budget_still_works(self):
        best = best_configuration(named_model("1.7B"), 512, 8, M, 32)
        assert best.plan.total_gpus == 8
        assert best.total_tflops > 0


def _const_overlaps(dp: float, fsdp: float) -> DerivedOverlaps:
    return DerivedOverlaps(
        dp=OverlapReport("dp_sync", "backward", 1.0, dp, dp),
        fsdp=OverlapReport("fsdp_gather", "forward", 1.0, fsdp, fsdp),
    )


class TestOverlapThreading:
    """overlaps= flows through global_batch_throughput into the ranking."""

    PLAN = ParallelPlan("dchag", tp=4, dchag_kind="linear", fsdp=2, dp=128)

    def test_more_overlap_means_more_throughput(self):
        lo = global_batch_throughput(
            named_model("7B"), 500, self.PLAN, M, 4096, overlaps=_const_overlaps(0.0, 0.0)
        )
        hi = global_batch_throughput(
            named_model("7B"), 500, self.PLAN, M, 4096, overlaps=_const_overlaps(1.0, 1.0)
        )
        assumed = global_batch_throughput(named_model("7B"), 500, self.PLAN, M, 4096)
        assert lo < assumed < hi

    def test_fixed_overlaps_recorded_on_every_plan(self):
        ov = _const_overlaps(0.9, 0.9)
        results = search_configurations(named_model("7B"), 500, 64, M, 256, overlaps=ov)
        assert results and all(t.overlaps is ov for t in results)

    def test_callable_overlaps_consulted_per_plan(self):
        seen: list[str] = []

        def oracle(plan, micro):
            seen.append(plan.label)
            return None  # fall back to the constants for every plan

        with_oracle = search_configurations(
            named_model("7B"), 500, 64, M, 256, overlaps=oracle
        )
        plain = search_configurations(named_model("7B"), 500, 64, M, 256)
        assert len(seen) == len(with_oracle)
        assert [t.plan.label for t in with_oracle] == [t.plan.label for t in plain]

    def test_simulated_oracle_skips_planless_axes(self):
        oracle = simulated_overlaps(M, named_model("7B"), 500)
        assert oracle(ParallelPlan("tp", tp=8), 4) is None


class TestGoldenRanking:
    """Pin the §6.2 search (7B / 500 ch / 1,024 GCDs / global batch 4,096)
    under the paper constants *and* under per-plan derived overlaps.

    The documented divergence: the paper's podium survives measurement —
    D-CHAG with early DP still wins — but positions 5/6 swap: under derived
    fractions TP4+DP256 overtakes D-CHAG-L-Tree0x1+FSDP2+DP512.  The
    FSDP-carrying plan's *measured* DP overlap collapses to ~0.14 (its FSDP
    gradient ReduceScatter occupies the same backward window and serial
    comm channel, so the DP buckets drain almost fully exposed) while the
    pure-DP plan's buckets hide 0.75 — close to the assumed 0.8.  The FSDP
    prefetch being fully hidden (measured 1.0 vs the assumed 0.5) does not
    make up the difference.  A cost-model edit that silently reorders
    either ranking fails here loudly.
    """

    TOP3 = [
        "D-CHAG-L-Tree0x4+DP256",
        "D-CHAG-L-Tree0x2+DP512",
        "D-CHAG-L-Tree0x4+FSDP2+DP128",
    ]

    @pytest.fixture(scope="class")
    def constant_ranking(self):
        return [
            t.plan.label
            for t in search_configurations(named_model("7B"), 500, 1024, M, 4096)
        ]

    @pytest.fixture(scope="class")
    def derived_ranking(self):
        oracle = simulated_overlaps(M, named_model("7B"), 500)
        return [
            t.plan.label
            for t in search_configurations(
                named_model("7B"), 500, 1024, M, 4096, overlaps=oracle
            )
        ]

    def test_top3_under_paper_constants(self, constant_ranking):
        assert constant_ranking[:3] == self.TOP3

    def test_top3_under_derived_overlaps(self, derived_ranking):
        """The paper's conclusion is robust to measured overlaps."""
        assert derived_ranking[:3] == self.TOP3

    def test_rankings_differ_where_documented(self, constant_ranking, derived_ranking):
        assert constant_ranking != derived_ranking
        assert constant_ranking[5:7] == [
            "D-CHAG-L-Tree0x1+FSDP2+DP512",
            "TP4+DP256",
        ]
        assert derived_ranking[5:7] == [
            "TP4+DP256",
            "D-CHAG-L-Tree0x1+FSDP2+DP512",
        ]

    def test_derived_ranking_is_deterministic(self, derived_ranking):
        oracle = simulated_overlaps(M, named_model("7B"), 500)
        again = [
            t.plan.label
            for t in search_configurations(
                named_model("7B"), 500, 1024, M, 4096, overlaps=oracle
            )
        ]
        assert again == derived_ranking


class TestPrunedSearch:
    """Bound-based pruning (`prune_top_k`) must return the exhaustive
    search's top-k exactly while consulting the per-plan oracle for only a
    handful of candidates (the §6.2 sweep stops paying a full eager world
    per mid-table plan)."""

    ARGS = (named_model("7B"), 500, 1024, M, 4096)

    @pytest.fixture(scope="class")
    def exhaustive(self):
        oracle = simulated_overlaps(M, named_model("7B"), 500)
        return search_configurations(*self.ARGS, overlaps=oracle)

    @pytest.fixture(scope="class")
    def pruned(self):
        oracle = simulated_overlaps(M, named_model("7B"), 500)
        return search_configurations(*self.ARGS, overlaps=oracle, prune_top_k=3)

    def test_top_k_identical_to_exhaustive(self, exhaustive, pruned):
        assert [(t.plan.label, t.micro_batch, t.total_tflops) for t in pruned[:3]] == [
            (t.plan.label, t.micro_batch, t.total_tflops) for t in exhaustive[:3]
        ]

    def test_same_candidate_set(self, exhaustive, pruned):
        assert sorted(t.plan.label for t in pruned) == sorted(
            t.plan.label for t in exhaustive
        )

    def test_only_a_handful_of_candidates_simulated(self, pruned):
        simulated = [t for t in pruned if t.overlaps is not None]
        assert simulated, "the contenders must still carry derived overlaps"
        assert len(simulated) < len(pruned) // 4, (
            "pruning must skip the oracle for the mid-table bulk "
            f"(simulated {len(simulated)} of {len(pruned)})"
        )

    def test_oracle_consulted_only_for_contenders(self):
        calls: list[str] = []
        real = simulated_overlaps(M, named_model("7B"), 500)

        def counting_oracle(plan, micro):
            calls.append(plan.label)
            return real(plan, micro)

        results = search_configurations(
            *self.ARGS, overlaps=counting_oracle, prune_top_k=3
        )
        assert len(calls) < len(results) // 2, "mid-table plans must skip the oracle"
        top3 = {t.plan.label for t in results[:3]}
        assert top3 <= set(calls), "every podium plan must have been simulated"

    def test_prune_ignored_for_non_callable_overlaps(self):
        plain = search_configurations(*self.ARGS)
        pruned = search_configurations(*self.ARGS, prune_top_k=3)
        assert [(t.plan.label, t.total_tflops) for t in plain] == [
            (t.plan.label, t.total_tflops) for t in pruned
        ]

    def test_winner_matches_best_configuration(self, pruned):
        best = best_configuration(*self.ARGS)
        assert pruned[0].plan == best.plan


class TestSequenceParallelAxis:
    """The sp axis: off by default (the golden podium is untouched),
    load-bearing at long sequence length (pinned with
    ``benchmarks/bench_longseq_sp_search.py``)."""

    LONGSEQ = named_model("7B").with_image(768, 1536)  # N = 4,608 tokens

    @pytest.fixture(scope="class")
    def longseq_ranking(self):
        return search_configurations(self.LONGSEQ, 500, 1024, M, 4096, max_sp=8)

    def test_sp_stays_off_by_default(self):
        results = search_configurations(named_model("7B"), 500, 64, M, 256)
        assert all(t.plan.sp == 1 for t in results)

    def test_longseq_winner_uses_sp(self, longseq_ranking):
        best = longseq_ranking[0]
        assert best.plan.sp > 1
        assert best.plan.label == "D-CHAG-L-Tree0x4+SP2+DP128"  # pinned

    def test_longseq_sp_beats_best_sp1_plan(self, longseq_ranking):
        best_sp1 = next(t for t in longseq_ranking if t.plan.sp == 1)
        assert longseq_ranking[0].total_tflops > best_sp1.total_tflops
        # ... and the sp=1 candidates rank exactly as a max_sp=1 sweep.
        sp1_only = search_configurations(self.LONGSEQ, 500, 1024, M, 4096)
        assert best_sp1.plan.label == sp1_only[0].plan.label

    def test_sp_candidates_respect_divisibility(self, longseq_ranking):
        for t in longseq_ranking:
            if t.plan.sp > 1:
                assert self.LONGSEQ.tokens % t.plan.sp == 0
                assert self.LONGSEQ.heads % (t.plan.tp * t.plan.sp) == 0

    def test_plan_axes_and_label(self):
        p = ParallelPlan("tp", tp=2, sp=4, fsdp=2, dp=2)
        assert p.gpus_per_replica == 16
        assert p.total_gpus == 32
        assert p.label == "TP2+SP4+FSDP2+DP2"
        assert "SP" not in ParallelPlan("tp", tp=2, fsdp=1, dp=1).label

    def test_serial_strategy_rejects_sp(self):
        with pytest.raises(ValueError, match="serial strategy requires sp=1"):
            ParallelPlan("serial", sp=2)
