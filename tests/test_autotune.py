"""Tests for the configuration autotuner (the §6.2 search, automated)."""

import pytest

from repro.perf import (
    best_configuration,
    frontier,
    named_model,
    search_configurations,
)

M = frontier()


class TestSearch:
    @pytest.fixture(scope="class")
    def results(self):
        return search_configurations(named_model("7B"), 500, 1024, M, 4096)

    def test_returns_feasible_plans_sorted(self, results):
        assert results
        tflops = [t.total_tflops for t in results]
        assert tflops == sorted(tflops, reverse=True)
        for t in results:
            assert t.plan.total_gpus == 1024
            assert t.micro_batch > 0

    def test_tp_stays_within_a_node(self, results):
        assert all(t.plan.tp <= M.gpus_per_node for t in results)

    def test_winner_is_dchag(self, results):
        """The paper's conclusion falls out of the search: the best use of
        1,024 GCDs for 7B/500ch is D-CHAG within a node + DP across."""
        best = results[0]
        assert best.plan.strategy == "dchag"
        assert best.plan.dp > 1

    def test_dchag_beats_every_tp_only_plan(self, results):
        best = results[0]
        tp_only = [t for t in results if t.plan.strategy == "tp"]
        assert tp_only, "search must include TP-only plans"
        assert best.total_tflops > 1.5 * tp_only[0].total_tflops

    def test_respects_channel_divisibility(self):
        # 500 channels: D-CHAG tp must divide 500 → tp ∈ {1, 2, 4} of the
        # pow2 ladder (500 = 4 · 125).
        results = search_configurations(named_model("7B"), 500, 64, M, 256)
        for t in results:
            if t.plan.strategy == "dchag":
                assert 500 % t.plan.tp == 0

    def test_global_batch_divisibility(self, results):
        for t in results:
            assert 4096 % t.plan.dp == 0


class TestBestConfiguration:
    def test_matches_search_head(self):
        best = best_configuration(named_model("7B"), 500, 1024, M, 4096)
        head = search_configurations(named_model("7B"), 500, 1024, M, 4096)[0]
        assert best.plan == head.plan

    def test_infeasible_raises(self):
        with pytest.raises(ValueError):
            # 26B on a single GPU cannot fit under any strategy.
            best_configuration(named_model("26B"), 64, 1, M, 8)

    def test_dchag_extends_feasibility_to_tiny_budgets(self):
        """26B with 1024 channels on just one node is only feasible via
        D-CHAG (Fig. 14's message, found by the search)."""
        results = search_configurations(named_model("26B"), 1024, 8, M, 64)
        assert results and all(t.plan.strategy == "dchag" for t in results)

    def test_small_budget_still_works(self):
        best = best_configuration(named_model("1.7B"), 512, 8, M, 32)
        assert best.plan.total_gpus == 8
        assert best.total_tflops > 0
