"""Calibration anchors: every capacity statement in the paper, checked
against the analytic memory model with the per-figure batch sizes recorded
in :data:`repro.perf.FIGURE_BATCH` (see EXPERIMENTS.md for the full
paper-vs-model accounting)."""

import pytest

from repro.perf import FIGURE_BATCH, ParallelPlan, Workload, estimate_memory, frontier, named_model

M = frontier()


def fits(name: str, channels: int, plan: ParallelPlan, batch: int) -> bool:
    return estimate_memory(named_model(name), Workload(channels, batch), plan).fits(M)


def min_tp(name: str, channels: int, batch: int) -> int | None:
    for tp in (1, 2, 4, 8, 16, 32, 64):
        if fits(name, channels, ParallelPlan("tp", tp=tp), batch):
            return tp
    return None


class TestFig6SingleGPU:
    """'The 100M-parameter model can handle up to 512 channels, while the
    1B and 3B models can handle 256 and 128 channels, respectively.'"""

    B = FIGURE_BATCH["fig6"]

    @pytest.mark.parametrize(
        "model,ok,oom",
        [("100M", 512, 1024), ("1B", 256, 512), ("3B", 128, 256)],
    )
    def test_capacity_boundary(self, model, ok, oom):
        serial = ParallelPlan("serial")
        assert fits(model, ok, serial, self.B)
        assert not fits(model, oom, serial, self.B)


class TestFig7TPCapacity:
    """'For the 1.7B model, two GPUs are required for 512 channels, a full
    node for 1024; for 7B, 256 channels fit on half a node, 512 need two
    nodes.'"""

    def test_17b_512_needs_two_gpus(self):
        assert min_tp("1.7B", 512, FIGURE_BATCH["fig7_1.7B"]) == 2

    def test_17b_1024_needs_full_node(self):
        assert min_tp("1.7B", 1024, FIGURE_BATCH["fig7_1.7B"]) == 8

    def test_7b_256_needs_half_node(self):
        assert min_tp("7B", 256, FIGURE_BATCH["fig7_7B"]) == 4

    def test_7b_512_needs_two_nodes(self):
        assert min_tp("7B", 512, FIGURE_BATCH["fig7_7B"]) == 16

    def test_tok_agg_dominate_at_high_channels(self):
        """'tokenization and channel aggregation account for 50% to 90% of
        the memory usage when the number of channels is large.'"""
        bd = estimate_memory(
            named_model("1.7B"),
            Workload(1024, FIGURE_BATCH["fig7_1.7B"]),
            ParallelPlan("tp", tp=8),
        )
        assert 0.5 <= bd.tok_plus_agg_fraction <= 0.95


class TestFSDPSufficiencyBoundary:
    """§4.3/§6.1: where FSDP alone suffices and where it stops."""

    B = FIGURE_BATCH["fig6"]

    def test_17b_256ch_fits_two_gpus_fsdp(self):
        assert fits("1.7B", 256, ParallelPlan("tp", fsdp=2), self.B)

    def test_7b_128ch_fits_one_node_fsdp(self):
        assert fits("7B", 128, ParallelPlan("tp", fsdp=8), self.B)

    def test_7b_256ch_does_not_fit_one_node_fsdp(self):
        assert not fits("7B", 256, ParallelPlan("tp", fsdp=8), self.B)

    def test_15b_64ch_fits_one_node_fsdp(self):
        assert fits("15B", 64, ParallelPlan("tp", fsdp=8), self.B)

    def test_26b_does_not_fit_one_node_at_all(self):
        assert not fits("26B", 64, ParallelPlan("tp", fsdp=8), self.B)


class TestFig14MemoryWall:
    """'for the 26B parameter model, we were unable to fit a 256-channel
    image at all on Frontier [with TP alone]' … 'when using the D-CHAG
    method, we can fit a 26B parameter model with 512 channels, utilizing
    less than 80% of the available memory.'"""

    B = FIGURE_BATCH["fig14"]

    @pytest.mark.parametrize("tp", [8, 16, 32, 64])
    def test_tp_only_oom_at_any_scale(self, tp):
        assert not fits("26B", 256, ParallelPlan("tp", tp=tp), self.B)

    def test_more_gpus_barely_help_tokenization(self):
        """'using more GPUs won't help decrease memory usage' — the
        channel-stage bytes are constant in tp under TP-only."""
        bd8 = estimate_memory(named_model("26B"), Workload(256, self.B), ParallelPlan("tp", tp=8))
        bd64 = estimate_memory(named_model("26B"), Workload(256, self.B), ParallelPlan("tp", tp=64))
        assert bd64.tokenization == pytest.approx(bd8.tokenization)

    def test_dchag_fits_512_channels(self):
        bd = estimate_memory(
            named_model("26B"),
            Workload(512, self.B),
            ParallelPlan("dchag", tp=32, dchag_kind="linear"),
        )
        assert bd.utilization(M) < 0.85  # paper: < 80 %

    def test_dchag_channel_stage_grows_with_ranks(self):
        """Fig. 14's D-CHAG caveat: more ranks → more partial-agg layers →
        the tok+agg slice grows (linearly, not quadratically)."""
        w = Workload(512, self.B)
        a = estimate_memory(named_model("26B"), w, ParallelPlan("dchag", tp=16, dchag_kind="cross"))
        b = estimate_memory(named_model("26B"), w, ParallelPlan("dchag", tp=64, dchag_kind="cross"))
        # Summed over all ranks: the model grows linearly in tp (per-rank
        # partial-aggregation layers are constant-size, so total = tp × const).
        assert 64 * b.aggregation_state > 16 * a.aggregation_state


class TestHeadlineClaims:
    def test_memory_reduction_up_to_75_percent(self):
        """Abstract: 'up to a 75% reduction in memory usage'."""
        w = Workload(1024, FIGURE_BATCH["fig7_1.7B"])
        tp = estimate_memory(named_model("1.7B"), w, ParallelPlan("tp", tp=8))
        dc = estimate_memory(named_model("1.7B"), w, ParallelPlan("dchag", tp=8, dchag_kind="linear"))
        reduction = 1.0 - dc.total / tp.total
        assert reduction > 0.5, f"only {reduction:.0%}"

    def test_fig9_cross_1024_gain_near_60_percent(self):
        """§4.5: Tree0-C 'yields a 60% improvement for 1024 channels'."""
        from repro.perf import throughput_gain

        g = throughput_gain(
            named_model("1.7B"), 1024,
            ParallelPlan("dchag", tp=8, dchag_kind="cross", dchag_fanout=0),
            ParallelPlan("tp", tp=8), M,
        )
        assert 0.3 < g < 1.6  # shape: large positive, same order as +60 %
