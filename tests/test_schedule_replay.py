"""Captured-schedule replay: bitwise parity with the live threaded runtime.

The tentpole contract: a schedule captured from ONE instrumented step and
replayed for k steps produces per-rank virtual timelines **bitwise equal**
to a live threaded run of k steps — across plans, world sizes and
eager/blocking clock modes, and for arbitrary hypothesis-generated SPMD
programs (compute charges, sub-group collectives, drains, ring p2p).
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dist import ProcessGroup, run_spmd_world
from repro.perf import (
    OVERLAP_PHASES,
    CapturedSchedule,
    ModelConfig,
    ParallelPlan,
    ScheduleReplayError,
    VirtualClock,
    Workload,
    derive_overlaps,
    frontier,
    named_model,
    replay,
    search_configurations,
    simulated_overlaps,
)
from repro.perf.autotune import sweep_replay
from repro.perf.calibrate import measure_plan
from repro.perf.schedule import (
    ReplayProgram,
    ReplayVariant,
    ScheduleEvent,
    replay_many,
)

MACHINE = frontier()
MODEL = ModelConfig("replay-test", dim=64, depth=2, heads=4, patch=4, image_hw=(16, 16))
WORKLOAD = Workload(channels=16, batch=2)

PLAN_CASES = [
    pytest.param(ParallelPlan("tp", tp=2, fsdp=1, dp=1), id="tp2"),
    pytest.param(ParallelPlan("tp", tp=1, fsdp=1, dp=4), id="dp4"),
    pytest.param(ParallelPlan("tp", tp=2, fsdp=1, dp=2), id="tp2dp2"),
    pytest.param(
        ParallelPlan("dchag", tp=2, fsdp=2, dp=2, dchag_kind="linear"), id="dchag8"
    ),
    pytest.param(ParallelPlan("tp", tp=1, sp=2, fsdp=1, dp=2), id="sp2dp2"),
    pytest.param(ParallelPlan("tp", tp=2, sp=2, fsdp=1, dp=1), id="tp2sp2"),
]


class TestPlanParity:
    """Plan-level parity: one captured measure_plan step replayed k times
    equals a live k-step world, bitwise."""

    @pytest.mark.parametrize("plan", PLAN_CASES)
    @pytest.mark.parametrize("eager", [False, True], ids=["blocking", "eager"])
    def test_replay_matches_live_threaded_run(self, plan, eager):
        captured = measure_plan(MODEL, WORKLOAD, plan, MACHINE, eager=eager, capture=True)
        assert captured.schedule is not None
        for k in (1, 4):
            live = measure_plan(MODEL, WORKLOAD, plan, MACHINE, eager=eager, n_steps=k)
            replayed = replay(captured.schedule, MACHINE, n_steps=k)
            assert replayed.times() == list(live.rank_times)  # bitwise

    def test_capture_does_not_perturb_the_timeline(self):
        plan = ParallelPlan("tp", tp=2, fsdp=1, dp=2)
        plain = measure_plan(MODEL, WORKLOAD, plan, MACHINE, eager=True)
        captured = measure_plan(MODEL, WORKLOAD, plan, MACHINE, eager=True, capture=True)
        assert captured.rank_times == plain.rank_times
        assert captured.step_seconds == plain.step_seconds

    def test_replay_overlaps_match_live_measured_overlaps(self):
        plan = ParallelPlan("dchag", tp=2, fsdp=2, dp=2, dchag_kind="linear")
        captured = measure_plan(MODEL, WORKLOAD, plan, MACHINE, eager=True, capture=True)
        replayed = replay(captured.schedule, MACHINE, n_steps=1)
        ov_live, ov_rep = captured.overlaps, replayed.overlaps()
        assert ov_rep.dp.source == "measured"
        assert ov_rep.dp_overlap == ov_live.dp_overlap
        assert ov_rep.fsdp_overlap == ov_live.fsdp_overlap
        assert ov_rep.buckets == ov_live.buckets

    def test_replay_overlaps_match_live_bound_overlaps(self):
        """Blocking phases take the bound path; without a traffic log the
        replay derives it from clock exposure totals — same numbers."""
        plan = ParallelPlan("tp", tp=1, fsdp=1, dp=4)
        captured = measure_plan(MODEL, WORKLOAD, plan, MACHINE, eager=False, capture=True)
        replayed = replay(captured.schedule, MACHINE, n_steps=1)
        ov_live, ov_rep = captured.overlaps, replayed.overlaps()
        assert ov_rep.dp.source == "bound"
        assert ov_rep.dp_overlap == ov_live.dp_overlap
        assert ov_rep.dp.comm_seconds == ov_live.dp.comm_seconds

    def test_per_step_semantics_of_multi_step_measure(self):
        plan = ParallelPlan("tp", tp=2, fsdp=1, dp=2)
        one = measure_plan(MODEL, WORKLOAD, plan, MACHINE, eager=False)
        three = measure_plan(MODEL, WORKLOAD, plan, MACHINE, eager=False, n_steps=3)
        assert three.n_steps == 3
        assert three.wire == one.wire  # per-step, not 3x
        assert math.isclose(three.step_seconds, one.step_seconds, rel_tol=1e-12)
        assert three.wire_matches_predicted()


# -- hypothesis-generated SPMD programs ------------------------------------
_PHASES = ("forward", "backward", "dp_sync", "fsdp_gather", "tp", "sp_a2a")
_OPS = (
    "all_reduce", "all_gather", "reduce_scatter", "broadcast", "barrier",
    "all_to_all",
)

_ITEM = st.one_of(
    st.tuples(
        st.just("compute"),
        st.sampled_from(_PHASES),
        st.floats(1e-7, 1e-4, allow_nan=False, allow_infinity=False),
    ),
    st.tuples(
        st.just("coll"), st.sampled_from(_OPS), st.sampled_from(_PHASES),
        st.integers(1, 64),
    ),
    st.tuples(
        st.just("coll_half"), st.sampled_from(_OPS), st.sampled_from(_PHASES),
        st.integers(1, 64),
    ),
    st.tuples(st.just("drain")),
    st.tuples(st.just("ring"), st.integers(1, 64)),
)
_PROGRAM = st.lists(_ITEM, min_size=1, max_size=10)
_EAGER = st.sampled_from([frozenset(), frozenset({"dp_sync"}), OVERLAP_PHASES])


def _run_program(comm, program):
    """Execute one SPMD-consistent program item list on this rank."""
    n = comm.size
    half_ranks = tuple(range(n // 2)) if comm.rank < n // 2 else tuple(range(n // 2, n))
    half = ProcessGroup(comm.world, half_ranks)
    for item in program:
        kind = item[0]
        if kind == "compute":
            _, phase, seconds = item
            comm.charge_compute(seconds, phase=phase)
        elif kind in ("coll", "coll_half"):
            _, op, phase, units = item
            group = half if kind == "coll_half" else None
            g = group.size if group is not None else n
            with comm.phase_scope(phase):
                if op == "barrier":
                    comm.barrier(group=group)
                elif op == "all_reduce":
                    comm.all_reduce(np.ones(units * g, np.float32), group=group)
                elif op == "all_gather":
                    comm.all_gather(np.ones(units, np.float32), group=group)
                elif op == "reduce_scatter":
                    comm.reduce_scatter(np.ones(units * g, np.float32), group=group)
                elif op == "all_to_all":
                    comm.all_to_all(
                        np.split(np.ones(units * g, np.float32), g), group=group
                    )
                else:
                    root = group.ranks[0] if group is not None else 0
                    comm.broadcast(np.ones(units * g, np.float32), root, group=group)
        elif kind == "drain":
            comm.drain_comm()
        else:  # ring p2p: send to the next rank, receive from the previous
            _, units = item
            comm.send(np.ones(units, np.float32), (comm.rank + 1) % n, tag=7)
            comm.recv((comm.rank - 1) % n, tag=7)


class TestProgramParity:
    @settings(max_examples=25, deadline=None)
    @given(_PROGRAM, st.sampled_from([2, 4]), _EAGER, st.sampled_from([1, 3]))
    def test_replay_is_bitwise_identical_to_live(self, program, world_size, eager, k):
        cap_clock = VirtualClock(MACHINE, eager_phases=eager, capture=True)
        run_spmd_world(lambda comm: _run_program(comm, program), world_size,
                       clock=cap_clock)
        schedule = cap_clock.schedule()

        live_clock = VirtualClock(MACHINE, eager_phases=eager)

        def live_fn(comm):
            for _ in range(k):
                _run_program(comm, program)

        run_spmd_world(live_fn, world_size, clock=live_clock)
        replayed = replay(schedule, MACHINE, n_steps=k)
        assert replayed.times() == live_clock.times()
        assert replayed.clock.comm_intervals() == live_clock.comm_intervals()
        assert replayed.clock.compute_intervals() == live_clock.compute_intervals()


class TestSerialization:
    def _schedule(self):
        plan = ParallelPlan("dchag", tp=2, fsdp=2, dp=1, dchag_kind="linear")
        return measure_plan(MODEL, WORKLOAD, plan, MACHINE, eager=True, capture=True).schedule

    def test_json_round_trip_replays_identically(self, tmp_path):
        schedule = self._schedule()
        path = tmp_path / "step.json"
        schedule.save(path)
        loaded = CapturedSchedule.load(path)
        assert loaded == schedule
        assert replay(loaded, MACHINE, n_steps=2).times() == replay(
            schedule, MACHINE, n_steps=2
        ).times()

    def test_rejects_unknown_event_kind(self):
        with pytest.raises(ValueError, match="kind"):
            ScheduleEvent.from_json({"kind": "warp", "rank": 0})

    def test_rejects_unknown_schema_version(self):
        with pytest.raises(ValueError, match="version"):
            CapturedSchedule.from_json({"version": 99, "world_size": 1})

    def test_rejects_out_of_range_rank(self):
        with pytest.raises(ValueError, match="out of range"):
            CapturedSchedule(
                world_size=2, events=(ScheduleEvent(kind="drain", rank=5),)
            )

    def test_from_clock_requires_capture(self):
        with pytest.raises(ValueError, match="capture"):
            CapturedSchedule.from_clock(VirtualClock(MACHINE))


class TestReplaySemantics:
    def test_n_steps_validation(self):
        schedule = CapturedSchedule(world_size=1)
        with pytest.raises(ValueError):
            replay(schedule, MACHINE, n_steps=0)

    def test_group_op_mismatch_raises(self):
        events = (
            ScheduleEvent(kind="coll", rank=0, op="all_reduce", phase="tp",
                          payload_bytes=64, group=(0, 1)),
            ScheduleEvent(kind="coll", rank=1, op="all_gather", phase="tp",
                          payload_bytes=64, group=(0, 1)),
        )
        schedule = CapturedSchedule(world_size=2, events=events)
        with pytest.raises(ScheduleReplayError, match="mismatch"):
            replay(schedule, MACHINE)

    def test_unmatched_recv_deadlocks_with_diagnostic(self):
        events = (ScheduleEvent(kind="recv", rank=0, peer=1, tag=3),)
        schedule = CapturedSchedule(world_size=2, events=events)
        with pytest.raises(ScheduleReplayError, match="deadlock"):
            replay(schedule, MACHINE)

    def test_mismatch_error_names_rank_event_and_op(self):
        """The rendered diagnostic carries enough to find the bad event:
        the offending rank, its event index and the op it issued."""
        events = (
            ScheduleEvent(kind="compute", rank=1, phase="forward", seconds=1e-6),
            ScheduleEvent(kind="coll", rank=0, op="all_reduce", phase="tp",
                          payload_bytes=64, group=(0, 1)),
            ScheduleEvent(kind="coll", rank=1, op="all_gather", phase="tp",
                          payload_bytes=64, group=(0, 1)),
        )
        schedule = CapturedSchedule(world_size=2, events=events)
        with pytest.raises(ScheduleReplayError) as exc_info:
            replay(schedule, MACHINE)
        err = exc_info.value
        text = str(err)
        assert f"rank {err.rank}" in text
        assert f"event {err.index}" in text
        assert repr(err.op) in text
        assert err.op in ("all_reduce", "all_gather")
        # The index is the rank's own event cursor, not the global position.
        assert (err.rank, err.index) in {(0, 0), (1, 1)}

    def test_not_a_member_error_names_rank_event_and_op(self):
        events = (
            ScheduleEvent(kind="coll", rank=0, op="broadcast", phase="tp",
                          payload_bytes=8, group=(1,)),
        )
        schedule = CapturedSchedule(world_size=2, events=events)
        with pytest.raises(ScheduleReplayError, match="not a member") as exc_info:
            replay(schedule, MACHINE)
        err = exc_info.value
        assert (err.rank, err.index, err.op) == (0, 0, "broadcast")
        assert "rank 0 event 0 ('broadcast')" in str(err)

    def test_deadlock_error_reports_each_blocked_rank(self):
        events = (
            ScheduleEvent(kind="recv", rank=0, peer=1, tag=3),
            ScheduleEvent(kind="recv", rank=1, peer=0, tag=9),
        )
        schedule = CapturedSchedule(world_size=2, events=events)
        with pytest.raises(ScheduleReplayError, match="deadlock") as exc_info:
            replay(schedule, MACHINE)
        err = exc_info.value
        text = str(err)
        assert "rank 0 event 0" in text and "rank 1 event 0" in text
        assert err.rank is not None and err.index is not None

    def test_compute_scale_scales_pure_compute_linearly(self):
        events = (
            ScheduleEvent(kind="compute", rank=0, phase="forward", seconds=1e-4),
        )
        schedule = CapturedSchedule(world_size=1, events=events)
        base = replay(schedule, MACHINE).elapsed
        assert replay(schedule, MACHINE, compute_scale=3.0).elapsed == pytest.approx(
            3.0 * base
        )

    def test_eager_phase_override_changes_exposure(self):
        """The same captured schedule re-simulated blocking exposes the
        full collective cost; the captured (eager) default hides some."""
        plan = ParallelPlan("tp", tp=1, fsdp=1, dp=4)
        captured = measure_plan(
            MODEL, WORKLOAD, plan, MACHINE, eager=True, capture=True
        )
        eager_rep = replay(captured.schedule, MACHINE)
        blocking_rep = replay(captured.schedule, MACHINE, eager_phases=None)
        assert blocking_rep.clock.exposed_seconds(
            phase="dp_sync"
        ) >= eager_rep.clock.exposed_seconds(phase="dp_sync")
        assert blocking_rep.elapsed >= eager_rep.elapsed

    def test_step_seconds_is_mean_per_step(self):
        schedule = CapturedSchedule(
            world_size=1,
            events=(ScheduleEvent(kind="compute", rank=0, phase="forward",
                                  seconds=2e-5),),
        )
        result = replay(schedule, MACHINE, n_steps=10)
        assert result.step_seconds == pytest.approx(2e-5)
        assert result.elapsed == pytest.approx(2e-4)


#: Lane scales for the vectorized-parity checks: 8 lanes trip the numpy
#: lane-vector executor (``_VECTOR_MIN_LANES``), with 1.0 mixed in so the
#: untouched-charges case rides along.
_LANE_SCALES = (1.0, 0.5, 2.0, 10.0, 1.0, 0.25, 4.0, 1.0)


def _assert_lane_bitwise(sched, ref, lane):
    """One vectorized lane must match the scalar interpreter bitwise."""
    assert lane.times() == ref.times()
    assert lane.clock.comm_intervals() == ref.clock.comm_intervals()
    assert lane.clock.comm_volumes() == ref.clock.comm_volumes()
    assert lane.overlaps() == ref.overlaps()
    for r in range(sched.world_size):
        for phase in (None, *_PHASES):
            assert lane.clock.compute_seconds(r, phase) == ref.clock.compute_seconds(r, phase)
            assert lane.clock.comm_busy_seconds(r, phase) == ref.clock.comm_busy_seconds(r, phase)
            assert lane.clock.exposed_seconds(r, phase) == ref.clock.exposed_seconds(r, phase)
            assert lane.clock.comm_count(r, phase) == ref.clock.comm_count(r, phase)
    assert lane.clock.compute_seconds() == ref.clock.compute_seconds()
    assert lane.clock.exposed_seconds() == ref.clock.exposed_seconds()
    assert lane.clock.elapsed() == ref.clock.elapsed()


class TestVectorizedParity:
    """The lowered program (python single-lane AND numpy lane-vector
    executors) reproduces the scalar interpreter bitwise — times, archived
    intervals, aggregate totals and derived overlaps, across compute
    scales."""

    @pytest.mark.parametrize("plan", PLAN_CASES)
    @pytest.mark.parametrize("eager", [False, True], ids=["blocking", "eager"])
    def test_single_and_vector_lanes_match_scalar(self, plan, eager):
        sched = measure_plan(
            MODEL, WORKLOAD, plan, MACHINE, eager=eager, capture=True
        ).schedule
        for k in (1, 4):
            scalar = replay(sched, MACHINE, n_steps=k)
            single = replay_many(
                sched, [ReplayVariant(machine=MACHINE)], n_steps=k
            )[0]
            _assert_lane_bitwise(sched, scalar, single)
            lanes = replay_many(
                sched,
                [ReplayVariant(machine=MACHINE, compute_scale=s) for s in _LANE_SCALES],
                n_steps=k,
            )
            for s, lane in zip(_LANE_SCALES, lanes):
                _assert_lane_bitwise(
                    sched, replay(sched, MACHINE, n_steps=k, compute_scale=s), lane
                )

    @settings(max_examples=15, deadline=None)
    @given(_PROGRAM, st.sampled_from([2, 4]), _EAGER, st.sampled_from([1, 3]))
    def test_arbitrary_programs_vectorize_bitwise(self, program, world_size, eager, k):
        cap_clock = VirtualClock(MACHINE, eager_phases=eager, capture=True)
        run_spmd_world(lambda comm: _run_program(comm, program), world_size,
                       clock=cap_clock)
        sched = cap_clock.schedule()
        refs = [replay(sched, MACHINE, n_steps=k, compute_scale=s)
                for s in _LANE_SCALES]
        lanes = replay_many(
            sched,
            [ReplayVariant(machine=MACHINE, compute_scale=s) for s in _LANE_SCALES],
            n_steps=k,
        )
        for ref, lane in zip(refs, lanes):
            assert lane.times() == ref.times()
            assert lane.clock.comm_intervals() == ref.clock.comm_intervals()
        single = replay_many(sched, [ReplayVariant(machine=MACHINE)], n_steps=k)[0]
        assert single.times() == refs[0].times()

    def test_program_reuse_across_runs(self):
        """One lowering, many run() calls: results stay bitwise stable."""
        sched = measure_plan(
            MODEL, WORKLOAD, ParallelPlan("tp", tp=2, fsdp=1, dp=2), MACHINE,
            eager=True, capture=True,
        ).schedule
        prog = ReplayProgram(sched, n_steps=2)
        first = prog.run([ReplayVariant(machine=MACHINE)])[0]
        second = prog.run([ReplayVariant(machine=MACHINE)])[0]
        assert first.times() == second.times()
        assert first.times() == replay(sched, MACHINE, n_steps=2).times()

    def test_lowering_raises_the_interpreter_errors(self):
        events = (
            ScheduleEvent(kind="coll", rank=0, op="all_reduce", phase="tp",
                          payload_bytes=64, group=(0, 1)),
            ScheduleEvent(kind="coll", rank=1, op="all_gather", phase="tp",
                          payload_bytes=64, group=(0, 1)),
        )
        sched = CapturedSchedule(world_size=2, events=events)
        with pytest.raises(ScheduleReplayError, match="mismatch") as exc_info:
            ReplayProgram(sched)
        assert exc_info.value.op in ("all_reduce", "all_gather")
        deadlocked = CapturedSchedule(
            world_size=2,
            events=(ScheduleEvent(kind="recv", rank=0, peer=1, tag=3),),
        )
        with pytest.raises(ScheduleReplayError, match="deadlock"):
            ReplayProgram(deadlocked)

    def test_variant_validation(self):
        sched = CapturedSchedule(
            world_size=1,
            events=(ScheduleEvent(kind="compute", rank=0, phase="forward",
                                  seconds=1e-6),),
        )
        with pytest.raises(ValueError, match="n_steps"):
            ReplayProgram(sched, n_steps=0)
        with pytest.raises(ValueError, match="compute_scale"):
            replay_many(sched, [ReplayVariant(machine=MACHINE, compute_scale=-1.0)])
        with pytest.raises(TypeError, match="ReplayVariant"):
            replay_many(sched, [MACHINE])

    def test_eager_phase_override_threads_through(self):
        plan = ParallelPlan("tp", tp=1, fsdp=1, dp=4)
        sched = measure_plan(
            MODEL, WORKLOAD, plan, MACHINE, eager=True, capture=True
        ).schedule
        ref = replay(sched, MACHINE, eager_phases=None)
        lane = replay_many(
            sched, [ReplayVariant(machine=MACHINE)], eager_phases=None
        )[0]
        assert lane.times() == ref.times()
        assert lane.clock.exposed_seconds(phase="dp_sync") == ref.clock.exposed_seconds(phase="dp_sync")


class TestSweepReplay:
    SWEEP_MODEL = ModelConfig("sweep", dim=256, depth=6, heads=8, patch=4,
                              image_hw=(32, 32))

    def test_rankings_equal_the_scalar_replay_search(self):
        """The strong contract: per budget, sweep_replay returns exactly
        what search_configurations(..., replay=True) returns — same plans,
        same float scores, same overlap pairs."""
        budgets = [(16, 32), (32, 64)]
        sweep = sweep_replay(self.SWEEP_MODEL, 32, MACHINE, budgets)
        assert [b for b, _ in sweep.rankings] == budgets
        for (g, b), ranked in sweep.rankings:
            ref = search_configurations(self.SWEEP_MODEL, 32, g, MACHINE, b,
                                        replay=True)
            assert list(ranked) == ref
        assert sweep.candidates == sum(len(r) for _, r in sweep.rankings)
        assert sweep.captured_worlds <= sweep.lanes <= sweep.candidates

    def test_fleet_scale_sweep_prices_1000_candidates_from_4_worlds(self):
        """The PR's fleet pin: a 1000+-candidate multi-budget sweep costs at
        most a handful of threaded worlds, and spot-checked budgets match
        the scalar search exactly."""
        import importlib.util as _ilu
        from pathlib import Path

        spec = _ilu.spec_from_file_location(
            "bench_fleet_sweep",
            Path(__file__).resolve().parent.parent / "benchmarks" / "bench_fleet_sweep.py",
        )
        bench = _ilu.module_from_spec(spec)
        spec.loader.exec_module(bench)
        model = named_model(bench.FLEET_MODEL_NAME)
        sweep = sweep_replay(
            model, bench.FLEET_CHANNELS, MACHINE, bench.FLEET_BUDGETS,
            strategies=bench.FLEET_STRATEGIES,
        )
        assert sweep.candidates >= 1000
        assert sweep.captured_worlds <= 4
        ranked = dict(sweep.rankings)
        for g, b in bench.FLEET_BUDGETS[:: len(bench.FLEET_BUDGETS) // 4]:
            ref = search_configurations(
                model, bench.FLEET_CHANNELS, g, MACHINE, b,
                strategies=bench.FLEET_STRATEGIES, replay=True,
            )
            assert list(ranked[(g, b)]) == ref

    def test_store_round_trip_reproduces_each_budget_podium(self, tmp_path):
        from repro.obs.store import SweepStore

        db = tmp_path / "sweep.db"
        sweep = sweep_replay(
            self.SWEEP_MODEL, 32, MACHINE, [(16, 32), (32, 32)],
            store=db, store_name="unit",
        )
        with SweepStore(db) as store:
            for (g, b), ranked in sweep.rankings:
                run, = store.run_history(kind="search", name=f"unit-g{g}-b{b}")
                top = store.top_plans(run.id, limit=3)
                assert [p.label for p in top] == [t.plan.label for t in ranked[:3]]


class TestReplayOracle:
    def test_search_with_replay_oracle_matches_threaded_podium(self):
        model = ModelConfig("sweep", dim=256, depth=6, heads=8, patch=4,
                            image_hw=(32, 32))
        threaded = search_configurations(
            model, 32, 16, MACHINE, 32,
            overlaps=simulated_overlaps(MACHINE, model, 32),
        )
        replayed = search_configurations(model, 32, 16, MACHINE, 32, replay=True)
        assert [t.plan.label for t in threaded[:3]] == [
            t.plan.label for t in replayed[:3]
        ]
        for a, b in zip(threaded[:3], replayed[:3]):
            assert b.total_tflops == pytest.approx(a.total_tflops, rel=1e-6)

    def test_replay_oracle_spins_up_one_world_per_shape(self):
        """The replay oracle's whole point: repeated consultations with
        different compute scales re-use one captured schedule."""
        model = ModelConfig("sweep", dim=256, depth=6, heads=8, patch=4,
                            image_hw=(32, 32))
        oracle = simulated_overlaps(MACHINE, model, 32, replay=True)
        plan = ParallelPlan("tp", tp=1, fsdp=1, dp=8)
        first = oracle(plan, 2)
        second = oracle(plan, 2)
        assert first is second  # cached
        assert first is not None and 0.0 <= first.dp_overlap <= 1.0
