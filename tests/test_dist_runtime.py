"""Tests for the simulated SPMD runtime and its collectives."""

import numpy as np
import pytest

from repro.dist import SpmdError, run_spmd, run_spmd_world


class TestCollectives:
    @pytest.mark.parametrize("world", [1, 2, 4, 8])
    def test_all_reduce_sum(self, world):
        def fn(comm):
            return comm.all_reduce(np.full(3, float(comm.rank + 1), dtype=np.float32))

        expect = sum(range(1, world + 1))
        for out in run_spmd(fn, world):
            np.testing.assert_allclose(out, expect)

    def test_all_reduce_mean_max_min(self):
        def fn(comm):
            x = np.array([float(comm.rank)], dtype=np.float32)
            return (
                comm.all_reduce(x, op="mean")[0],
                comm.all_reduce(x, op="max")[0],
                comm.all_reduce(x, op="min")[0],
            )

        for mean, mx, mn in run_spmd(fn, 4):
            assert (mean, mx, mn) == (1.5, 3.0, 0.0)

    def test_all_reduce_unknown_op(self):
        def fn(comm):
            comm.all_reduce(np.ones(1), op="prod")

        with pytest.raises(SpmdError):
            run_spmd(fn, 2)

    def test_all_gather_order(self):
        def fn(comm):
            return comm.all_gather_concat(np.array([comm.rank], dtype=np.float32))

        for out in run_spmd(fn, 4):
            np.testing.assert_allclose(out, [0, 1, 2, 3])

    def test_all_gather_returns_copies(self):
        def fn(comm):
            mine = np.zeros(2, dtype=np.float32)
            parts = comm.all_gather(mine)
            parts[comm.rank][:] = 99.0  # mutating the result must not leak
            comm.barrier()
            again = comm.all_gather(np.zeros(2, dtype=np.float32))
            return sum(p.sum() for p in again)

        assert all(v == 0.0 for v in run_spmd(fn, 2))

    def test_reduce_scatter_matches_allreduce_slice(self):
        def fn(comm):
            x = (np.arange(8, dtype=np.float32) + comm.rank * 10)
            full = comm.all_reduce(x)
            shard = comm.reduce_scatter(x)
            lo = comm.rank * 2
            return np.allclose(full[lo : lo + 2], shard)

        assert all(run_spmd(fn, 4))

    def test_reduce_scatter_uneven_pads_and_strips(self):
        """A non-divisible axis splits by the remainder convention (first
        ranks get the extra element); the pad never reaches the caller."""

        def fn(comm):
            x = np.arange(5, dtype=np.float32)
            return comm.reduce_scatter(x)

        res = run_spmd(fn, 2)
        np.testing.assert_array_equal(res[0], [0.0, 2.0, 4.0])
        np.testing.assert_array_equal(res[1], [6.0, 8.0])

    def test_reduce_scatter_explicit_sizes(self):
        def fn(comm):
            x = np.arange(6, dtype=np.float32)
            return comm.reduce_scatter(x, sizes=(1, 5))

        res = run_spmd(fn, 2)
        np.testing.assert_array_equal(res[0], [0.0])
        np.testing.assert_array_equal(res[1], [2.0, 4.0, 6.0, 8.0, 10.0])

    def test_reduce_scatter_bad_sizes_raise(self):
        def fn(comm):
            comm.reduce_scatter(np.zeros(6, dtype=np.float32), sizes=(2, 2))

        with pytest.raises(SpmdError):
            run_spmd(fn, 2)

    def test_uneven_reduce_scatter_charges_padded_wire_bytes(self):
        """5 floats over 2 ranks pad to 3-per-rank: the ring moves 6 elements'
        worth, not 5 (ring_wire_bytes of the padded payload)."""
        from repro.dist import ring_wire_bytes, run_spmd_world

        def fn(comm):
            comm.reduce_scatter(np.zeros(5, dtype=np.float32))

        _, world = run_spmd_world(fn, 2)
        assert world.traffic.wire_bytes(op="reduce_scatter", rank=0) == ring_wire_bytes(
            "reduce_scatter", 6 * 4, 2
        )

    def test_broadcast(self):
        def fn(comm):
            payload = np.array([3.14], dtype=np.float32) if comm.rank == 2 else None
            return comm.broadcast(payload, root=2)[0]

        assert all(abs(v - 3.14) < 1e-6 for v in run_spmd(fn, 4))

    def test_scatter_gather(self):
        def fn(comm):
            chunks = [np.array([i * 2.0]) for i in range(comm.size)] if comm.rank == 0 else None
            mine = comm.scatter(chunks, root=0)
            back = comm.gather(mine, root=0)
            if comm.rank == 0:
                return [b[0] for b in back]
            assert back is None
            return mine[0]

        res = run_spmd(fn, 4)
        assert res[0] == [0.0, 2.0, 4.0, 6.0]
        assert res[3] == 6.0

    def test_all_to_all_is_transpose(self):
        def fn(comm):
            send = [np.array([comm.rank * 10 + j], dtype=np.float32) for j in range(comm.size)]
            recv = comm.all_to_all(send)
            return [int(r[0]) for r in recv]

        res = run_spmd(fn, 3)
        assert res[1] == [1, 11, 21]  # rank j receives i*10+j from each rank i

    def test_send_recv(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send(np.array([42.0]), dst=1, tag=5)
                return None
            return comm.recv(src=0, tag=5)[0]

        assert run_spmd(fn, 2)[1] == 42.0

    def test_barrier_completes(self):
        def fn(comm):
            for _ in range(10):
                comm.barrier()
            return True

        assert all(run_spmd(fn, 8))


class TestGroups:
    def test_subgroup_collectives_are_isolated(self):
        def fn(comm):
            half = comm.group([0, 1]) if comm.rank < 2 else comm.group([2, 3])
            return comm.all_reduce(np.array([1.0], dtype=np.float32), group=half)[0]

        assert run_spmd(fn, 4) == [2.0] * 4

    def test_group_rank_index(self):
        def fn(comm):
            g = comm.group([1, 3])
            if comm.rank in (1, 3):
                return g.rank_index(comm.rank)
            return None

        res = run_spmd(fn, 4)
        assert res[1] == 0 and res[3] == 1

    def test_collective_on_foreign_group_raises(self):
        def fn(comm):
            g = comm.group([0, 1])
            if comm.rank == 2:
                comm.all_reduce(np.ones(1), group=g)
            else:
                comm.barrier(comm.group([0, 1, 3]))

        with pytest.raises(SpmdError):
            run_spmd(fn, 4)

    def test_duplicate_ranks_rejected(self):
        def fn(comm):
            comm.group([0, 0, 1])

        with pytest.raises(SpmdError):
            run_spmd(fn, 2)


class TestDeterminism:
    def test_allreduce_bitwise_deterministic(self):
        def fn(comm):
            rng = np.random.default_rng(comm.rank)
            return comm.all_reduce(rng.standard_normal(1000).astype(np.float32))

        a = run_spmd(fn, 4)
        b = run_spmd(fn, 4)
        for x, y in zip(a, b):
            assert (x == y).all()
        # all ranks identical
        for x in a[1:]:
            assert (x == a[0]).all()


class TestFailureHandling:
    def test_exception_propagates_and_unblocks(self):
        def fn(comm):
            if comm.rank == 1:
                raise ValueError("boom")
            comm.barrier()  # would deadlock without abort

        with pytest.raises(SpmdError, match="rank 1 failed.*boom"):
            run_spmd(fn, 4, timeout=20)


class TestTrafficLog:
    def test_counts_and_volumes(self):
        def fn(comm):
            comm.phase = "forward"
            comm.all_reduce(np.zeros(256, dtype=np.float32))  # 1 KiB payload
            comm.phase = "backward"
            comm.all_gather(np.zeros(64, dtype=np.float32))
            return None

        _, world = run_spmd_world(fn, 4)
        log = world.traffic
        assert log.count(op="all_reduce", phase="forward") == 4
        assert log.count(op="all_gather", phase="backward") == 4
        assert log.payload_bytes(op="all_reduce", rank=0) == 1024
        # ring all_reduce wire bytes: 2*(n-1)/n * payload
        assert log.wire_bytes(op="all_reduce", rank=0) == int(2 * 3 / 4 * 1024)
        hist = log.ops_histogram()
        assert hist == {"all_reduce": 4, "all_gather": 4}
