"""Hypothesis property tests on the autograd engine."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.tensor import Tensor, functional as F

ARRAYS = hnp.arrays(
    dtype=np.float64,
    shape=hnp.array_shapes(min_dims=1, max_dims=3, min_side=1, max_side=5),
    elements=st.floats(-10, 10, allow_nan=False, width=64),
)


@settings(max_examples=50, deadline=None)
@given(ARRAYS)
def test_add_self_equals_double(arr):
    t = Tensor(arr)
    np.testing.assert_allclose((t + t).data, (2.0 * t).data, rtol=1e-6)


@settings(max_examples=50, deadline=None)
@given(ARRAYS)
def test_sum_matches_numpy(arr):
    np.testing.assert_allclose(Tensor(arr).sum().item(), arr.astype(np.float32).sum(), rtol=1e-4, atol=1e-4)


@settings(max_examples=50, deadline=None)
@given(ARRAYS)
def test_reshape_roundtrip_preserves(arr):
    t = Tensor(arr, requires_grad=True)
    out = t.reshape(-1).reshape(t.shape)
    np.testing.assert_allclose(out.data, t.data)
    out.sum().backward()
    np.testing.assert_allclose(t.grad, np.ones_like(t.data))


@settings(max_examples=50, deadline=None)
@given(ARRAYS)
def test_mul_gradient_is_other_operand(arr):
    a = Tensor(arr, requires_grad=True)
    b = Tensor(np.ones_like(arr) * 3.0)
    (a * b).sum().backward()
    np.testing.assert_allclose(a.grad, b.data, rtol=1e-6)


@settings(max_examples=50, deadline=None)
@given(
    hnp.arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(1, 4), st.integers(2, 6)),
        elements=st.floats(-30, 30, allow_nan=False, width=64),
    )
)
def test_softmax_is_distribution(arr):
    s = F.softmax(Tensor(arr)).data
    assert (s >= 0).all()
    np.testing.assert_allclose(s.sum(axis=-1), 1.0, atol=1e-5)


@settings(max_examples=50, deadline=None)
@given(
    hnp.arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(1, 4), st.integers(2, 8)),
        elements=st.floats(-5, 5, allow_nan=False, width=64),
    )
)
def test_layernorm_output_standardized(arr):
    d = arr.shape[-1]
    out = F.layer_norm(Tensor(arr), Tensor(np.ones(d)), Tensor(np.zeros(d))).data
    np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-4)
    # variance ≈ 1 unless the row is (near-)constant
    row_var = arr.var(axis=-1)
    for i, v in enumerate(row_var):
        if v > 1e-3:
            np.testing.assert_allclose(out[i].var(), 1.0, atol=2e-2)


@settings(max_examples=30, deadline=None)
@given(
    st.integers(1, 4), st.integers(1, 5), st.integers(1, 5), st.integers(1, 4)
)
def test_matmul_matches_numpy(b, m, k, n):
    rng = np.random.default_rng(b * 100 + m * 10 + k)
    x = rng.standard_normal((b, m, k))
    y = rng.standard_normal((b, k, n))
    np.testing.assert_allclose(
        (Tensor(x) @ Tensor(y)).data, (x @ y).astype(np.float32), rtol=1e-4, atol=1e-5
    )


@settings(max_examples=30, deadline=None)
@given(ARRAYS, st.integers(0, 2))
def test_concat_split_roundtrip(arr, axis_seed):
    axis = axis_seed % arr.ndim
    t = Tensor(arr)
    joined = Tensor.concat([t, t], axis=axis)
    assert joined.shape[axis] == 2 * arr.shape[axis]
    parts = joined.split(2, axis=axis)
    np.testing.assert_allclose(parts[0].data, t.data)
    np.testing.assert_allclose(parts[1].data, t.data)


@settings(max_examples=30, deadline=None)
@given(ARRAYS)
def test_gelu_between_zero_and_identity(arr):
    out = F.gelu(Tensor(arr)).data
    x = arr.astype(np.float32)
    pos = x >= 0
    assert (out[pos] <= x[pos] + 1e-5).all() and (out[pos] >= -1e-5).all()
    assert (out[~pos] <= 1e-5).all() and (out[~pos] >= x[~pos] - 1e-5).all()
