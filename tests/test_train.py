"""Tests for the training harness (scheduler, trainer, metrics)."""

import numpy as np
import pytest

from repro.data import EVAL_CHANNELS
from repro.nn import Linear, Module
from repro.tensor import Tensor, functional as F
from repro.train import (
    TrainConfig,
    Trainer,
    cosine_warmup,
    eval_channel_rmse,
    lat_weighted_rmse,
    masked_reconstruction_rmse,
)


class TestSchedule:
    def test_warmup_ramps_linearly(self):
        lrs = [cosine_warmup(s, 100, 1.0, warmup_steps=10) for s in range(10)]
        np.testing.assert_allclose(lrs, np.arange(1, 11) / 10)

    def test_cosine_decays_to_min(self):
        assert cosine_warmup(100, 100, 1.0, warmup_steps=0, min_lr=0.1) == pytest.approx(0.1)

    def test_peak_after_warmup(self):
        assert cosine_warmup(10, 1000, 1.0, warmup_steps=10) == pytest.approx(1.0, rel=1e-3)

    def test_monotone_decay_after_warmup(self):
        lrs = [cosine_warmup(s, 50, 1.0, warmup_steps=5) for s in range(5, 50)]
        assert all(a >= b for a, b in zip(lrs, lrs[1:]))

    def test_invalid_total(self):
        with pytest.raises(ValueError):
            cosine_warmup(0, 0, 1.0)


class _Quadratic(Module):
    def __init__(self):
        super().__init__()
        self.lin = Linear(4, 1, np.random.default_rng(0))

    def loss(self, x, y):
        pred = self.lin(Tensor(x))
        return F.mse_loss(pred, Tensor(y))


class TestTrainer:
    def test_records_history(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((16, 4)).astype(np.float32)
        y = (x @ np.array([[1.0], [2.0], [-1.0], [0.5]])).astype(np.float32)
        model = _Quadratic()
        tr = Trainer(model, TrainConfig(lr=5e-2, total_steps=40, warmup_steps=2))
        for _ in range(40):
            tr.step(x, y)
        res = tr.result
        assert len(res.losses) == len(res.lrs) == len(res.grad_norms) == 40
        assert res.final_loss < res.losses[0] * 0.5

    def test_grad_hook_called(self):
        calls = []
        model = _Quadratic()
        tr = Trainer(model, TrainConfig(total_steps=3), grad_hook=lambda: calls.append(1))
        x = np.zeros((2, 4), dtype=np.float32)
        y = np.zeros((2, 1), dtype=np.float32)
        tr.step(x, y)
        tr.step(x, y)
        assert len(calls) == 2

    def test_smoothed_loss(self):
        model = _Quadratic()
        tr = Trainer(model, TrainConfig(total_steps=5))
        tr.result.losses = [5.0, 3.0, 1.0, 1.0, 1.0]
        sm = tr.result.smoothed(window=3)
        np.testing.assert_allclose(sm, [3.0, 5.0 / 3, 1.0])

    def test_checkpoint_cadence_fires_on_step_multiples(self):
        fired = []
        model = _Quadratic()
        tr = Trainer(
            model,
            TrainConfig(total_steps=10, checkpoint_every=3),
            checkpoint_hook=fired.append,
        )
        x = np.zeros((2, 4), dtype=np.float32)
        y = np.zeros((2, 1), dtype=np.float32)
        for _ in range(10):
            tr.step(x, y)
        assert fired == [3, 6, 9]

    def test_pre_step_hook_sees_step_indices(self):
        seen = []
        model = _Quadratic()
        tr = Trainer(model, TrainConfig(total_steps=4), pre_step_hook=seen.append)
        x = np.zeros((2, 4), dtype=np.float32)
        y = np.zeros((2, 1), dtype=np.float32)
        for _ in range(3):
            tr.step(x, y)
        assert seen == [0, 1, 2]

    def test_resume_continues_schedule_and_cadence(self):
        """A trainer resumed at start_step=s uses step s's LR and keeps the
        absolute checkpoint cadence (fires at multiples of the step index,
        not of the steps run since resume)."""
        x = np.random.default_rng(1).standard_normal((8, 4)).astype(np.float32)
        y = np.zeros((8, 1), dtype=np.float32)
        cfg = TrainConfig(lr=1e-2, total_steps=20, warmup_steps=4, checkpoint_every=4)

        full = Trainer(_Quadratic(), cfg)
        for _ in range(8):
            full.step(x, y)

        fired = []
        resumed = Trainer(_Quadratic(), cfg, start_step=6, checkpoint_hook=fired.append)
        assert resumed.step_index == 6
        resumed.step(x, y)
        resumed.step(x, y)
        assert fired == [8]
        # Step 6 and 7 of the resumed run use the same schedule LRs.
        np.testing.assert_allclose(resumed.result.lrs, full.result.lrs[6:8])

    def test_negative_start_step_rejected(self):
        with pytest.raises(ValueError):
            Trainer(_Quadratic(), TrainConfig(), start_step=-1)

    def test_fit_unpacks_list_batches_like_tuples(self):
        """Regression: loaders yielding [x, y] lists used to reach
        model.loss as a single positional argument and crash."""
        rng = np.random.default_rng(0)
        x = rng.standard_normal((4, 4)).astype(np.float32)
        y = rng.standard_normal((4, 1)).astype(np.float32)
        as_tuples = Trainer(_Quadratic(), TrainConfig(total_steps=3))
        as_lists = Trainer(_Quadratic(), TrainConfig(total_steps=3))
        as_tuples.fit([(x, y)] * 3)
        as_lists.fit([[x, y]] * 3)
        np.testing.assert_allclose(as_lists.result.losses, as_tuples.result.losses)

    def test_fit_passes_bare_array_batches_whole(self):
        """Non-sequence batches still arrive as one argument."""
        seen = []

        class _OneArg(Module):
            def __init__(self):
                super().__init__()
                self.lin = Linear(4, 1, np.random.default_rng(0))

            def loss(self, x):
                seen.append(x.shape)
                return F.mse_loss(self.lin(Tensor(x)), Tensor(np.zeros((2, 1), np.float32)))

        tr = Trainer(_OneArg(), TrainConfig(total_steps=2))
        tr.fit([np.zeros((2, 4), np.float32)] * 2)
        assert seen == [(2, 4), (2, 4)]

    def test_grad_norms_recorded_without_clipping(self):
        """Regression: grad_clip=0 used to record norm 0.0 instead of the
        true gradient norm — and must not scale any gradient."""
        rng = np.random.default_rng(0)
        x = rng.standard_normal((8, 4)).astype(np.float32)
        y = rng.standard_normal((8, 1)).astype(np.float32)

        unclipped = Trainer(_Quadratic(), TrainConfig(lr=0.0, grad_clip=0.0, total_steps=2))
        reference = Trainer(_Quadratic(), TrainConfig(lr=0.0, grad_clip=1e9, total_steps=2))
        unclipped.step(x, y)
        reference.step(x, y)
        # Same model/data: the recorded norm equals the (never-exceeded)
        # clip path's pre-clip norm, and it is a real nonzero magnitude.
        assert unclipped.result.grad_norms[0] == reference.result.grad_norms[0]
        assert unclipped.result.grad_norms[0] > 0.0
        # With lr=0 the step leaves params alone, so gradients themselves
        # must also be untouched by the norm computation.
        for p_u, p_r in zip(unclipped.params, reference.params):
            np.testing.assert_array_equal(p_u.grad, p_r.grad)


class TestMetrics:
    def test_lat_weighted_rmse_zero_when_equal(self):
        x = np.random.default_rng(0).standard_normal((2, 3, 8, 16))
        assert lat_weighted_rmse(x, x) == 0.0

    def test_constant_error_gives_that_rmse(self):
        x = np.zeros((1, 2, 8, 16))
        assert lat_weighted_rmse(x, x + 2.0) == pytest.approx(2.0, rel=1e-6)

    def test_equator_errors_weigh_more(self):
        pred = np.zeros((1, 1, 8, 16))
        pole = pred.copy()
        pole[0, 0, 0, :] = 1.0  # error at the pole row
        equator = pred.copy()
        equator[0, 0, 4, :] = 1.0  # error near the equator
        target = np.zeros_like(pred)
        assert lat_weighted_rmse(equator, target) > lat_weighted_rmse(pole, target)

    def test_channel_selection(self):
        pred = np.zeros((1, 80, 4, 8))
        target = np.zeros_like(pred)
        target[0, EVAL_CHANNELS["z500"]] = 1.0
        per = eval_channel_rmse(pred, target)
        assert per["z500"] == pytest.approx(1.0, rel=1e-6)
        assert per["t850"] == 0.0 and per["u10"] == 0.0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            lat_weighted_rmse(np.zeros((1, 2, 4, 4)), np.zeros((1, 2, 4, 5)))

    def test_masked_reconstruction_rmse(self):
        pred = np.zeros((1, 4, 6))
        target = np.ones((1, 4, 6))
        mask = np.array([1.0, 0.0, 1.0, 0.0])
        assert masked_reconstruction_rmse(pred, target, mask) == pytest.approx(1.0)
