"""Tests for the D-CHAG core: tree geometry, partial aggregation, and the
distributed module's headline properties (§3.3)."""

import numpy as np
import pytest

from repro.core import DCHAG, DCHAGConfig, PartialChannelAggregator, build_tree
from repro.dist import run_spmd, run_spmd_world
from repro.parallel import DistributedTokenizer
from repro.nn import PatchTokenizer
from repro.tensor import Tensor

RNG = np.random.default_rng(41)
B, C, H, P, D, HEADS = 2, 16, 16, 4, 32, 4


class TestTreeGeometry:
    def test_paper_tree2_example(self):
        """512 channels on 2 GPUs, Tree2: two layers of max 128 channels."""
        spec = build_tree(256, 2)
        assert spec.group_sizes == (128, 128)
        assert spec.has_root and spec.num_units == 3
        assert spec.max_channels_per_unit == 128

    def test_paper_tree8_example(self):
        """Tree8: eight aggregation layers, max 32 channels each."""
        spec = build_tree(256, 8)
        assert spec.group_sizes == (32,) * 8
        assert spec.max_channels_per_unit == 32

    def test_tree0_single_unit(self):
        spec = build_tree(256, 0)
        assert spec.group_sizes == (256,)
        assert not spec.has_root and spec.num_units == 1 and spec.depth == 1

    def test_tree1_equals_tree0(self):
        assert build_tree(64, 1).group_sizes == build_tree(64, 0).group_sizes

    def test_uneven_split(self):
        spec = build_tree(10, 4)
        assert spec.group_sizes == (3, 3, 2, 2)
        assert sum(spec.group_sizes) == 10

    def test_fanout_exceeding_channels_raises(self):
        with pytest.raises(ValueError):
            build_tree(4, 8)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            build_tree(0, 2)
        with pytest.raises(ValueError):
            build_tree(8, -1)


class TestPartialAggregator:
    @pytest.mark.parametrize("kind", ["linear", "cross"])
    @pytest.mark.parametrize("fanout", [0, 2, 4])
    def test_reduces_to_one_channel(self, kind, fanout):
        agg = PartialChannelAggregator(8, D, HEADS, RNG, fanout=fanout, kind=kind)
        x = Tensor(RNG.standard_normal((B, 8, 5, D)).astype(np.float32))
        assert agg(x).shape == (B, 1, 5, D)

    def test_gradients_reach_all_units(self):
        agg = PartialChannelAggregator(8, D, HEADS, RNG, fanout=4, kind="cross")
        x = Tensor(RNG.standard_normal((1, 8, 3, D)).astype(np.float32), requires_grad=True)
        agg(x).sum().backward()
        assert x.grad is not None
        for name, p in agg.named_parameters():
            assert p.grad is not None, name

    def test_linear_has_far_fewer_params_than_cross(self):
        lin = PartialChannelAggregator(32, D, HEADS, RNG, fanout=0, kind="linear")
        cro = PartialChannelAggregator(32, D, HEADS, RNG, fanout=0, kind="cross")
        assert lin.num_parameters() * 50 < cro.num_parameters()

    def test_deeper_tree_adds_params(self):
        t0 = PartialChannelAggregator(32, D, HEADS, RNG, fanout=0, kind="cross")
        t4 = PartialChannelAggregator(32, D, HEADS, RNG, fanout=4, kind="cross")
        assert t4.num_parameters() > t0.num_parameters()

    def test_channel_count_mismatch_raises(self):
        agg = PartialChannelAggregator(8, D, HEADS, RNG)
        with pytest.raises(ValueError):
            agg(Tensor(np.zeros((1, 6, 3, D), dtype=np.float32)))

    def test_invalid_kind(self):
        with pytest.raises(ValueError):
            PartialChannelAggregator(8, D, HEADS, RNG, kind="conv")


def run_dchag(world, kind="linear", fanout=0, tp_final=False, seed=7):
    imgs = np.random.default_rng(1).standard_normal((B, C, H, H)).astype(np.float32)

    def fn(comm):
        cfg = DCHAGConfig(
            channels=C, patch=P, dim=D, heads=HEADS,
            fanout=fanout, kind=kind, tp_shard_final=tp_final,
        )
        model = DCHAG(comm, None, cfg, rng_seed=seed)
        out = model(imgs)
        loss = (out * out).mean()
        comm.phase = "backward"
        loss.backward()
        comm.phase = ""
        return (
            out.data.copy(),
            [p.grad.copy() for p in model.shared_parameters() if p.grad is not None],
            model.local_channels,
        )

    return run_spmd_world(fn, world)


class TestDCHAG:
    @pytest.mark.parametrize("kind", ["linear", "cross"])
    @pytest.mark.parametrize("world", [1, 2, 4])
    def test_output_replicated_across_ranks(self, kind, world):
        res, _ = run_dchag(world, kind=kind)
        for out, _, _ in res[1:]:
            np.testing.assert_allclose(out, res[0][0], rtol=1e-5, atol=1e-6)

    def test_channels_sharded_evenly(self):
        res, _ = run_dchag(4)
        assert all(r[2] == C // 4 for r in res)

    def test_zero_backward_communication(self):
        """The paper's headline: no collectives in the backward pass."""
        _, world = run_dchag(4, kind="linear", fanout=2)
        assert world.traffic.count(phase="backward") == 0

    def test_single_forward_gather_of_one_channel(self):
        _, world = run_dchag(4)
        hist = world.traffic.ops_histogram()
        assert hist == {"all_gather": 4}
        # Payload per rank = one channel of tokens: B * 1 * N * D floats.
        n_tokens = (H // P) ** 2
        assert world.traffic.payload_bytes(op="all_gather", rank=0) == B * n_tokens * D * 4

    def test_shared_layer_gradients_identical_across_ranks(self):
        """Replicated final layer stays consistent without any AllReduce."""
        res, _ = run_dchag(4, kind="cross", fanout=2)
        ref = res[0][1]
        for _, grads, _ in res[1:]:
            assert len(grads) == len(ref) > 0
            for a, b in zip(ref, grads):
                np.testing.assert_allclose(a, b, rtol=1e-5, atol=1e-7)

    def test_tp_sharded_final_matches_replicated(self):
        res_rep, _ = run_dchag(2, tp_final=False)
        res_tp, _ = run_dchag(2, tp_final=True)
        np.testing.assert_allclose(res_tp[0][0], res_rep[0][0], rtol=3e-4, atol=3e-5)

    def test_param_partition_is_disjoint_and_complete(self):
        def fn(comm):
            cfg = DCHAGConfig(channels=C, patch=P, dim=D, heads=HEADS)
            model = DCHAG(comm, None, cfg)
            local = {id(p) for p in model.rank_local_parameters()}
            shared = {id(p) for p in model.shared_parameters()}
            everything = {id(p) for p in model.parameters()}
            return local.isdisjoint(shared) and (local | shared) == everything

        assert all(run_spmd(fn, 2))

    def test_ten_channels_on_four_ranks_uneven_shards(self):
        """The paper's 10-channel example: remainder sharding gives the
        first two ranks 3 channels and the rest 2, covering all channels,
        and the forward pass runs end-to-end on the uneven shards."""
        imgs = RNG.standard_normal((B, 10, H, H)).astype(np.float32)

        def fn(comm):
            cfg = DCHAGConfig(channels=10, patch=P, dim=D, heads=HEADS)
            model = DCHAG(comm, None, cfg, rng_seed=5)
            out = model(imgs)
            return (model.shard.start, model.shard.stop), out.data.shape

        res = run_spmd(fn, 4)
        spans = [r[0] for r in res]
        assert spans == [(0, 3), (3, 6), (6, 8), (8, 10)]
        for _, shape in res:
            assert shape == (B, (H // P) ** 2, D)

    def test_fewer_channels_than_ranks_raises(self):
        def fn(comm):
            cfg = DCHAGConfig(channels=2, patch=P, dim=D, heads=HEADS)
            DCHAG(comm, None, cfg)

        from repro.dist import SpmdError

        with pytest.raises(SpmdError):
            run_spmd(fn, 4)

    def test_master_weights_shard_matches_serial_tokens(self):
        """With master tokenizer weights, the concatenation of all ranks'
        local tokens equals the serial tokenizer output."""
        master = PatchTokenizer(C, P, D, np.random.default_rng(3))
        ids = np.zeros((C, D), dtype=np.float32)
        imgs = np.random.default_rng(1).standard_normal((B, C, H, H)).astype(np.float32)
        expect = master(imgs).data

        def fn(comm):
            cfg = DCHAGConfig(channels=C, patch=P, dim=D, heads=HEADS)
            model = DCHAG(
                comm, None, cfg,
                master_tok_weight=master.weight.data,
                master_tok_bias=master.bias.data,
                master_channel_ids=ids,
            )
            local = model.local_tokens(imgs)
            return comm.all_gather_concat(local.data, axis=1)

        for gathered in run_spmd(fn, 4):
            np.testing.assert_allclose(gathered, expect, rtol=1e-5, atol=1e-6)


class TestDCHAGConfig:
    def test_variant_names(self):
        assert DCHAGConfig(8, 4, 32, 4, kind="linear").variant_name == "D-CHAG-L-Tree0"
        assert DCHAGConfig(8, 4, 32, 4, fanout=4, kind="cross").variant_name == "D-CHAG-C-Tree4"

    def test_validation(self):
        with pytest.raises(ValueError):
            DCHAGConfig(8, 4, 32, 4, kind="dense")
        with pytest.raises(ValueError):
            DCHAGConfig(8, 4, 33, 4)
        with pytest.raises(ValueError):
            DCHAGConfig(0, 4, 32, 4)


class TestDistTokenizerTraffic:
    def test_dist_tok_pays_backward_reduce_scatter(self):
        """Contrast with D-CHAG: §3.1 gathers full tokens and pays a
        ReduceScatter in backward — the overhead Fig. 8 shows."""
        master = PatchTokenizer(C, P, D, np.random.default_rng(3))
        imgs = np.random.default_rng(1).standard_normal((B, C, H, H)).astype(np.float32)

        def fn(comm):
            tok = DistributedTokenizer(
                comm, None, C, P, D, master.weight.data, master.bias.data
            )
            out = tok(imgs)
            (out * out).mean().backward()
            return None

        _, world = run_spmd_world(fn, 2)
        assert world.traffic.count(op="reduce_scatter", phase="backward") == 2
        # Forward gather payload: the full local token block (C/tp channels).
        n_tokens = (H // P) ** 2
        expected = B * (C // 2) * n_tokens * D * 4
        assert world.traffic.payload_bytes(op="all_gather", rank=0) == expected


class TestPerceiverPartialAggregation:
    """§3.5: the Perceiver fusion module as D-CHAG partial units."""

    def test_partial_aggregator_perceiver_kind(self):
        agg = PartialChannelAggregator(8, D, HEADS, RNG, fanout=2, kind="perceiver")
        x = Tensor(RNG.standard_normal((1, 8, 3, D)).astype(np.float32))
        out = agg(x)
        assert out.shape == (1, 1, 3, D)
        out.sum().backward()
        for name, p in agg.named_parameters():
            assert p.grad is not None, name

    def test_dchag_runs_with_perceiver_partials(self):
        res, world = run_dchag(2, kind="perceiver", fanout=0)
        np.testing.assert_allclose(res[1][0], res[0][0], rtol=1e-5, atol=1e-6)
        assert world.traffic.count(phase="backward") == 0

    def test_variant_name(self):
        assert DCHAGConfig(8, 4, 32, 4, kind="perceiver").variant_name == "D-CHAG-P-Tree0"
