"""Optimizer tests: convergence, state accounting, clipping."""

import numpy as np
import pytest

from repro.tensor import AdamW, SGD, Tensor, clip_grad_norm
from repro.tensor.memory import MemoryTracker, track_memory


def quadratic_problem(seed=0):
    rng = np.random.default_rng(seed)
    target = rng.standard_normal(8).astype(np.float32)
    x = Tensor(np.zeros(8, dtype=np.float32), requires_grad=True)
    return x, target


def run(opt_cls, steps=200, **kwargs):
    x, target = quadratic_problem()
    opt = opt_cls([x], **kwargs)
    for _ in range(steps):
        opt.zero_grad()
        loss = ((x - Tensor(target)) ** 2).sum()
        loss.backward()
        opt.step()
    return x, target


class TestSGD:
    def test_converges(self):
        x, target = run(SGD, lr=0.1)
        np.testing.assert_allclose(x.data, target, atol=1e-3)

    def test_momentum_converges(self):
        x, target = run(SGD, lr=0.05, momentum=0.9)
        np.testing.assert_allclose(x.data, target, atol=1e-3)

    def test_weight_decay_shrinks(self):
        x = Tensor(np.ones(4, dtype=np.float32), requires_grad=True)
        opt = SGD([x], lr=0.1, weight_decay=0.5)
        x.grad = np.zeros(4, dtype=np.float32)
        opt.step()
        np.testing.assert_allclose(x.data, 0.95 * np.ones(4), rtol=1e-6)


class TestAdamW:
    def test_converges(self):
        x, target = run(AdamW, steps=400, lr=0.05, weight_decay=0.0)
        np.testing.assert_allclose(x.data, target, atol=1e-2)

    def test_decoupled_weight_decay(self):
        x = Tensor(np.ones(4, dtype=np.float32), requires_grad=True)
        opt = AdamW([x], lr=0.1, weight_decay=0.5)
        x.grad = np.zeros(4, dtype=np.float32)
        opt.step()
        np.testing.assert_allclose(x.data, 0.95 * np.ones(4), rtol=1e-5)

    def test_state_bytes_counts_moments(self):
        x = Tensor(np.zeros(100, dtype=np.float32), requires_grad=True)
        opt = AdamW([x])
        x.grad = np.ones(100, dtype=np.float32)
        opt.step()
        assert opt.state_bytes() == 2 * 100 * 4  # m and v, fp32

    def test_optimizer_state_tracked_by_memory_tracker(self):
        tracker = MemoryTracker()
        with track_memory(tracker):
            x = Tensor(np.zeros(1000, dtype=np.float32), requires_grad=True)
            opt = AdamW([x])
            x.grad = np.ones(1000, dtype=np.float32)
            opt.step()
        assert tracker.peak_bytes >= 3 * 1000 * 4  # param + m + v

    def test_skips_params_without_grad(self):
        x = Tensor(np.ones(4, dtype=np.float32), requires_grad=True)
        opt = AdamW([x], weight_decay=0.0)
        opt.step()  # no grad: no update, no crash
        np.testing.assert_allclose(x.data, np.ones(4))

    def test_empty_params_raise(self):
        with pytest.raises(ValueError):
            AdamW([])


class TestClipGradNorm:
    def test_clips_large(self):
        x = Tensor(np.zeros(4, dtype=np.float32), requires_grad=True)
        x.grad = np.full(4, 10.0, dtype=np.float32)
        norm = clip_grad_norm([x], 1.0)
        np.testing.assert_allclose(norm, 20.0)
        np.testing.assert_allclose(np.linalg.norm(x.grad), 1.0, rtol=1e-5)

    def test_leaves_small(self):
        x = Tensor(np.zeros(4, dtype=np.float32), requires_grad=True)
        x.grad = np.full(4, 0.1, dtype=np.float32)
        clip_grad_norm([x], 10.0)
        np.testing.assert_allclose(x.grad, 0.1, rtol=1e-6)
