"""TP ≡ serial equivalence — the correctness foundation of the paper's
baseline (§4.3, §5: "single-GPU runs as a more reliable baseline")."""

import numpy as np
import pytest

from repro.dist import run_spmd, run_spmd_world
from repro.nn import ChannelCrossAttention, MLP, ViTEncoder
from repro.parallel import (
    ColumnParallelLinear,
    RowParallelLinear,
    TPChannelCrossAttention,
    TPContext,
    TPMLP,
    TPViTEncoder,
)
from repro.tensor import Tensor, functional as F

RNG = np.random.default_rng(21)
DIM, DEPTH, HEADS = 32, 2, 4


class TestParallelLinears:
    def test_column_parallel_shards_columns(self):
        w = RNG.standard_normal((6, 8)).astype(np.float32)
        b = RNG.standard_normal(8).astype(np.float32)
        x = RNG.standard_normal((3, 6)).astype(np.float32)

        def fn(comm):
            ctx = TPContext(comm)
            col = ColumnParallelLinear(ctx, w, b)
            return col(Tensor(x)).data.copy()

        res = run_spmd(fn, 2)
        full = x @ w + b
        np.testing.assert_allclose(res[0], full[:, :4], rtol=1e-5)
        np.testing.assert_allclose(res[1], full[:, 4:], rtol=1e-5)

    def test_row_parallel_sums_to_full(self):
        w = RNG.standard_normal((8, 6)).astype(np.float32)
        x = RNG.standard_normal((3, 8)).astype(np.float32)

        def fn(comm):
            ctx = TPContext(comm)
            row = RowParallelLinear(ctx, w)
            shard = ctx.shard(8)
            partial = row(Tensor(x[:, shard]))
            return comm.all_reduce(partial.data)

        for out in run_spmd(fn, 2):
            np.testing.assert_allclose(out, x @ w, rtol=1e-4, atol=1e-5)

    def test_indivisible_shard_raises(self):
        def fn(comm):
            ctx = TPContext(comm)
            ctx.shard(5)

        from repro.dist import SpmdError

        with pytest.raises(SpmdError):
            run_spmd(fn, 2)


class TestTPMLP:
    def test_matches_serial(self):
        serial = MLP(DIM, 4 * DIM, np.random.default_rng(5))
        x = RNG.standard_normal((2, 7, DIM)).astype(np.float32)
        expect = serial(Tensor(x)).data

        def fn(comm):
            ctx = TPContext(comm)
            tp = TPMLP(
                ctx,
                serial.fc1.weight.data,
                serial.fc1.bias.data,
                serial.fc2.weight.data,
                serial.fc2.bias.data,
            )
            partial = tp(Tensor(x))
            return comm.all_reduce(partial.data) + tp.fc2_bias.data

        for out in run_spmd(fn, 4):
            np.testing.assert_allclose(out, expect, rtol=2e-4, atol=2e-5)


class TestTPViT:
    @pytest.mark.parametrize("tp", [2, 4])
    def test_forward_matches_serial(self, tp):
        serial = ViTEncoder(DIM, DEPTH, HEADS, np.random.default_rng(42))
        state = serial.state_dict()
        x = RNG.standard_normal((2, 6, DIM)).astype(np.float32)
        expect = serial(Tensor(x)).data

        def fn(comm):
            enc = TPViTEncoder(TPContext(comm), DIM, DEPTH, HEADS, state)
            return enc(Tensor(x)).data.copy()

        for out in run_spmd(fn, tp):
            np.testing.assert_allclose(out, expect, rtol=3e-4, atol=3e-5)

    def test_input_gradients_match_serial(self):
        serial = ViTEncoder(DIM, DEPTH, HEADS, np.random.default_rng(42))
        state = serial.state_dict()
        x = RNG.standard_normal((2, 6, DIM)).astype(np.float32)
        xt = Tensor(x, requires_grad=True)
        (serial(xt) ** 2).mean().backward()
        expect = xt.grad.copy()

        def fn(comm):
            enc = TPViTEncoder(TPContext(comm), DIM, DEPTH, HEADS, state)
            xi = Tensor(x, requires_grad=True)
            (enc(xi) ** 2).mean().backward()
            return xi.grad.copy()

        for grad in run_spmd(fn, 2):
            np.testing.assert_allclose(grad, expect, rtol=2e-3, atol=2e-5)

    def test_shard_gradients_match_serial_slices(self):
        """Each rank's qkv-weight gradient equals the serial gradient slice
        for its heads."""
        serial = ViTEncoder(DIM, 1, HEADS, np.random.default_rng(42))
        state = serial.state_dict()
        x = RNG.standard_normal((2, 6, DIM)).astype(np.float32)
        (serial(Tensor(x)) ** 2).mean().backward()
        serial_qkv_grad = serial.blocks[0].attn.qkv.weight.grad.copy()

        def fn(comm):
            enc = TPViTEncoder(TPContext(comm), DIM, 1, HEADS, state)
            (enc(Tensor(x)) ** 2).mean().backward()
            return enc.blocks[0].attn.qkv.weight.grad.copy()

        res = run_spmd(fn, 2)
        hd = DIM // HEADS
        half = HEADS // 2 * hd
        # Rank 0 holds q/k/v columns for heads 0-1.
        expect_rank0 = np.concatenate(
            [
                serial_qkv_grad[:, :half],
                serial_qkv_grad[:, DIM : DIM + half],
                serial_qkv_grad[:, 2 * DIM : 2 * DIM + half],
            ],
            axis=1,
        )
        np.testing.assert_allclose(res[0], expect_rank0, rtol=2e-3, atol=2e-5)

    def test_tp_traffic_is_allreduce_only(self):
        serial = ViTEncoder(DIM, DEPTH, HEADS, np.random.default_rng(42))
        state = serial.state_dict()
        x = RNG.standard_normal((1, 4, DIM)).astype(np.float32)

        def fn(comm):
            enc = TPViTEncoder(TPContext(comm), DIM, DEPTH, HEADS, state)
            xi = Tensor(x, requires_grad=True)
            (enc(xi) ** 2).mean().backward()
            return None

        _, world = run_spmd_world(fn, 2)
        hist = world.traffic.ops_histogram()
        assert set(hist) == {"all_reduce"}
        # 2 regions/block × (1 fwd g + 1 bwd f) × depth × ranks
        assert hist["all_reduce"] == 2 * 2 * DEPTH * 2


class TestTPCrossAttention:
    @pytest.mark.parametrize("tp", [2, 4])
    def test_matches_serial(self, tp):
        serial = ChannelCrossAttention(DIM, HEADS, np.random.default_rng(9))
        x = RNG.standard_normal((2, 5, 4, DIM)).astype(np.float32)
        expect = serial(Tensor(x)).data

        def fn(comm):
            m = TPChannelCrossAttention(
                TPContext(comm),
                DIM,
                HEADS,
                master_query_tokens=serial.query_tokens.data,
                master_q_w=serial.q_proj.weight.data,
                master_q_b=serial.q_proj.bias.data,
                master_kv_w=serial.kv_proj.weight.data,
                master_kv_b=serial.kv_proj.bias.data,
                master_proj_w=serial.proj.weight.data,
                master_proj_b=serial.proj.bias.data,
            )
            return m(Tensor(x)).data.copy()

        for out in run_spmd(fn, tp):
            np.testing.assert_allclose(out, expect, rtol=3e-4, atol=3e-5)
