"""The virtual-clock cost engine: one α–β pricing core for both layers.

Covers the acceptance contract of the cost-engine redesign:

* ``run_spmd(..., clock=VirtualClock(machine))`` produces **deterministic**
  per-rank timelines — bitwise identical across runs and thread schedules.
* Measured wire bytes equal the analytic ``ring_wire_bytes`` predictions for
  every ring collective at 2/4/8 ranks (the calibration harness's claim).
* The shared :class:`CostModel` is the single source of latency-step truth
  (``all_to_all`` pays one round, rings pay n−1, AllReduce 2·(n−1)).
* :mod:`repro.perf.overlap` derives dp/fsdp overlap fractions from rank
  timelines, and :func:`estimate_step_comm` accepts them in place of the
  hard-coded constants.
"""

import math
import time
from dataclasses import replace

import numpy as np
import pytest

from repro.dist import ring_wire_bytes, run_spmd, run_spmd_world
from repro.parallel import DataParallel, DeviceMesh, FSDPModel, shard_batch
from repro.perf import (
    CostModel,
    MachineSpec,
    ModelConfig,
    ParallelPlan,
    VirtualClock,
    Workload,
    collective_time,
    derive_bucket_exposures,
    derive_overlaps,
    estimate_step_comm,
    frontier,
    search_configurations,
    step_comm_schedule,
)
from repro.perf.calibrate import (
    FitSample,
    FittedLink,
    calibrate,
    fit_link,
    fit_machine,
    fit_machine_wallclock,
    load_or_fit_machine,
    measure_plan,
    wallclock_fit_samples,
)
from repro.perf.calibrate import main as calibrate_main
from repro.perf.overlap import DerivedOverlaps, OverlapReport, derive_overlap

MACHINE = frontier()


class TestCostModel:
    def test_step_counts_follow_ring_conventions(self):
        """The audited per-op latency table (satellite fix: all_to_all is a
        single direct exchange round, not a serialized ring)."""
        cost = CostModel(MACHINE)
        n = 8
        assert cost.latency_steps("all_reduce", n) == 2 * (n - 1)
        for op in ("all_gather", "reduce_scatter", "broadcast", "scatter", "gather", "barrier"):
            assert cost.latency_steps(op, n) == n - 1, op
        assert cost.latency_steps("all_to_all", n) == 1
        assert cost.latency_steps("send", n) == 1
        assert cost.latency_steps("recv", n) == 0

    def test_single_rank_groups_are_free(self):
        cost = CostModel(MACHINE)
        for op in ("all_reduce", "all_gather", "all_to_all", "barrier"):
            assert cost.latency_steps(op, 1) == 0
            assert cost.collective_seconds(op, 1 << 20, 1, True) == 0.0

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            CostModel(MACHINE).latency_steps("all_shuffle", 4)

    def test_collective_time_delegates_to_cost_model(self):
        """The analytic entry point and the CostModel are the same function."""
        cost = CostModel(MACHINE)
        for op in ("all_reduce", "all_gather", "reduce_scatter", "broadcast", "all_to_all"):
            for intra in (True, False):
                assert collective_time(op, 1 << 20, 8, MACHINE, intra) == cost.collective_seconds(
                    op, 1 << 20, 8, intra
                )

    def test_all_to_all_cheaper_than_ring_latency(self):
        """At small payloads the single-round all_to_all beats a ring pass."""
        cost = CostModel(MACHINE)
        assert cost.collective_seconds("all_to_all", 64, 8, True) < cost.collective_seconds(
            "broadcast", 64, 8, True
        )

    def test_topology_placement(self):
        cost = CostModel(MACHINE)  # 8 GPUs per node
        assert cost.intra_node(range(8))
        assert not cost.intra_node([7, 8])
        assert cost.intra_node([3])


class TestVirtualClockDeterminism:
    @staticmethod
    def _workload(comm):
        """A mixed workload with rank-skewed compute, subgroups and p2p."""
        lo = comm.group([0, 1])
        hi = comm.group([2, 3])
        mine = lo if comm.rank < 2 else hi
        comm.charge_compute(1e-6 * (comm.rank + 1), phase="forward")
        for i in range(5):
            comm.all_reduce(np.ones(256, dtype=np.float32))
            comm.all_reduce(np.full(64, float(comm.rank), dtype=np.float32), group=mine)
            comm.charge_compute(2e-7 * ((comm.rank + i) % 3), phase="backward")
            comm.barrier()
        if comm.rank == 0:
            comm.send(np.ones(128, dtype=np.float32), dst=3, tag=9)
        if comm.rank == 3:
            comm.recv(src=0, tag=9)
        # Real sleep perturbs the thread schedule but must not perturb
        # virtual time.
        time.sleep(0.001 * (comm.rank % 2))
        return comm.now()

    def test_timelines_identical_across_runs(self):
        runs = []
        for _ in range(3):
            clock = VirtualClock(MACHINE)
            times = run_spmd(self._workload, 4, clock=clock)
            assert times == clock.times()
            runs.append(times)
        assert runs[0] == runs[1] == runs[2]  # bitwise, not approximate

    def test_records_stamped_identically_across_runs(self):
        def stamps():
            clock = VirtualClock(MACHINE)
            _, world = run_spmd_world(self._workload, 4, clock=clock)
            return sorted(
                (r.rank, r.op, r.vstart, r.vend) for r in world.traffic.records()
            )

        assert stamps() == stamps()

    def test_no_clock_means_no_stamps(self):
        def fn(comm):
            comm.all_reduce(np.ones(4, dtype=np.float32))
            assert comm.now() == -1.0
            assert comm.charge_compute(1.0) is None
            return None

        _, world = run_spmd_world(fn, 2)
        for r in world.traffic.records():
            assert r.vstart == -1.0 and r.vend == -1.0

    def test_inflight_collectives_logged_on_abort(self):
        """A collective interrupted by a world abort still appears in the
        post-mortem traffic log, stamped incomplete (vend=-1) — the
        accounting the elastic recovery benchmarks rely on (regression)."""
        from repro.dist import SpmdError

        def fn(comm):
            if comm.rank == 0:
                raise RuntimeError("boom")
            comm.all_reduce(np.ones(4, dtype=np.float32))
            return None

        try:
            run_spmd(fn, 2, timeout=10, clock=VirtualClock(MACHINE))
            raise AssertionError("world should have aborted")
        except SpmdError as err:
            world = err.world
        recs = world.traffic.records(op="all_reduce", rank=1)
        assert len(recs) == 1
        assert recs[0].vend == -1.0


class TestVirtualClockSemantics:
    def test_group_synchronizes_to_slowest_arrival(self):
        clock = VirtualClock(MACHINE)

        def fn(comm):
            comm.charge_compute(1e-3 * comm.rank, phase="forward")
            comm.all_reduce(np.ones(1, dtype=np.float32))
            return comm.now()

        times = run_spmd(fn, 4, clock=clock)
        cost = CostModel(MACHINE).collective_seconds("all_reduce", 4, 4, True)
        expected = 3e-3 + cost  # slowest arrival (rank 3) + collective cost
        assert times == [expected] * 4

    def test_barrier_costs_latency_only(self):
        clock = VirtualClock(MACHINE)
        run_spmd(lambda comm: comm.barrier(), 4, clock=clock)
        assert math.isclose(clock.elapsed(), 3 * MACHINE.intra_latency, rel_tol=1e-12)
        # ...and barriers still never appear in the traffic log.

    def test_inter_node_group_costs_more(self):
        def elapsed(machine):
            clock = VirtualClock(machine)
            run_spmd(
                lambda comm: comm.all_reduce(np.ones(1024, dtype=np.float32)),
                4,
                clock=clock,
            )
            return clock.elapsed()

        intra = elapsed(MACHINE)                                # 4 ranks, 1 node
        inter = elapsed(replace(MACHINE, gpus_per_node=2))      # spans 2 nodes
        assert inter > intra

    def test_send_recv_carry_virtual_delivery_time(self):
        clock = VirtualClock(MACHINE)

        def fn(comm):
            if comm.rank == 0:
                comm.send(np.ones(1 << 20, dtype=np.float32), dst=1)
            else:
                comm.recv(src=0)
            return comm.now()

        t0, t1 = run_spmd(fn, 2, clock=clock)
        expected = CostModel(MACHINE).p2p_seconds(4 << 20, 0, 1)
        assert math.isclose(t0, expected, rel_tol=1e-12)
        assert t1 >= t0  # receiver cannot finish before delivery

    def test_compute_intervals_recorded_per_phase(self):
        clock = VirtualClock(MACHINE)

        def fn(comm):
            comm.charge_compute(2e-6, phase="forward")
            comm.charge_compute(3e-6, phase="backward", label="blk0")
            return None

        run_spmd(fn, 2, clock=clock)
        assert math.isclose(clock.compute_seconds(phase="forward"), 2 * 2e-6, rel_tol=1e-12)
        assert math.isclose(clock.compute_seconds(rank=1, phase="backward"), 3e-6, rel_tol=1e-12)
        (iv,) = clock.compute_intervals(rank=0, phase="backward")
        assert iv.label == "blk0" and math.isclose(iv.seconds, 3e-6, rel_tol=1e-12)

    def test_negative_charge_rejected(self):
        clock = VirtualClock(MACHINE)
        clock.bind(1)
        with pytest.raises(ValueError):
            clock.charge(0, -1.0)


class TestWireParity:
    """Measured wire bytes == ring_wire_bytes predictions, all ops, 2/4/8."""

    @pytest.mark.parametrize("world_size", [2, 4, 8])
    def test_all_ops_exact(self, world_size):
        report = calibrate(world_sizes=(world_size,), payload_bytes=2048)
        for row in report.rows:
            assert row.wire_match, (row.op, row.ranks, row.intra_node)
            assert row.measured_wire == ring_wire_bytes(
                row.op, row.payload_bytes, row.ranks
            ), row.op

    def test_virtual_time_matches_analytic_exactly(self):
        report = calibrate(world_sizes=(2, 4, 8), payload_bytes=2048)
        assert report.ok
        assert report.max_time_residual == 0.0

    def test_fitted_constants_recover_machine_spec(self):
        for intra in (True, False):
            fit = fit_machine(world_size=4, payload_sweep=(1 << 10, 1 << 13, 1 << 16),
                              intra_node=intra)
            assert fit.alpha_error < 1e-6, fit
            assert fit.beta_error < 1e-6, fit
            assert fit.rms_residual < 1e-12


class TestMeasuredPlans:
    TINY = ModelConfig("tiny", dim=32, depth=2, heads=4, patch=4, image_hw=(16, 16))

    def test_hybrid_plan_wire_and_time_parity(self):
        machine = replace(MACHINE, gpus_per_node=4)
        plan = ParallelPlan("dchag", tp=2, dchag_kind="linear", fsdp=2, dp=2)
        m = measure_plan(self.TINY, Workload(16, 2), plan, machine)
        assert m.wire_matches_predicted(), (m.wire, m.predicted.wire_by_axis())
        assert abs(m.comm_seconds - m.predicted.total) <= 1e-9 + 1e-6 * m.predicted.total
        assert m.step_seconds >= m.comm_seconds

    def test_schedule_is_shared_source_of_truth(self):
        """The analytic wire fields equal pricing the schedule by hand."""
        plan = ParallelPlan("dist_tok", tp=4, fsdp=2, dp=2)
        workload = Workload(16, 2)
        cost = CostModel(MACHINE)
        sizes = {
            "tp": plan.tp, "gather": plan.tp, "sp": plan.sp,
            "sp_gather": plan.sp, "sp_scatter": plan.sp,
            "fsdp": plan.fsdp, "dp": plan.dp,
        }
        by_axis = dict.fromkeys(sizes, 0)
        for ev in step_comm_schedule(self.TINY, workload, plan):
            by_axis[ev.axis] += ev.count * cost.wire_bytes(ev.op, ev.payload_bytes, sizes[ev.axis])
        comm = estimate_step_comm(self.TINY, workload, plan, MACHINE)
        assert comm.wire_by_axis() == by_axis


class TestDerivedOverlap:
    def _world(self, comm_seconds_payload: int, backward_seconds: float):
        """One dp_sync AllReduce of a known payload after known backward."""
        clock = VirtualClock(MACHINE)

        def fn(comm):
            comm.charge_compute(backward_seconds, phase="backward")
            with comm.phase_scope("dp_sync"):
                comm.all_reduce(np.ones(comm_seconds_payload // 4, dtype=np.float32))
            return None

        _, world = run_spmd_world(fn, 4, clock=clock)
        return world

    def test_full_overlap_when_compute_dominates(self):
        world = self._world(1 << 10, backward_seconds=1.0)
        rep = derive_overlap(world, "dp_sync", "backward")
        assert rep.overlap == 1.0

    def test_partial_overlap_is_ratio(self):
        payload = 1 << 20
        comm = CostModel(MACHINE).collective_seconds("all_reduce", payload, 4, True)
        world = self._world(payload, backward_seconds=comm / 2)
        rep = derive_overlap(world, "dp_sync", "backward")
        assert math.isclose(rep.overlap, 0.5, rel_tol=1e-9)

    def test_zero_when_no_comm_in_phase(self):
        world = self._world(1 << 10, backward_seconds=1e-6)
        rep = derive_overlap(world, "no_such_phase", "backward")
        assert rep.overlap == 0.0 and rep.comm_seconds == 0.0

    def test_zero_duration_records_do_not_divide_by_zero(self):
        """A size-1 group logs vstart == vend; the derivation must report
        overlap 0, not crash (regression)."""
        clock = VirtualClock(MACHINE)

        def fn(comm):
            solo = comm.group([comm.rank])
            with comm.phase_scope("dp_sync"):
                comm.all_reduce(np.ones(8, dtype=np.float32), group=solo)
            return None

        _, world = run_spmd_world(fn, 2, clock=clock)
        rep = derive_overlap(world, "dp_sync", "backward")
        assert rep.overlap == 0.0 and rep.comm_seconds == 0.0

    def test_requires_clock(self):
        _, world = run_spmd_world(
            lambda comm: comm.all_reduce(np.ones(4, dtype=np.float32)), 2
        )
        with pytest.raises(ValueError):
            derive_overlap(world, "dp_sync", "backward")

    def test_estimate_step_comm_accepts_derived_overlaps(self):
        model = ModelConfig("t", dim=64, depth=4, heads=4)
        plan = ParallelPlan("tp", tp=2, fsdp=2, dp=2)
        w = Workload(16, 2)
        mk = lambda dp, fsdp: DerivedOverlaps(
            dp=OverlapReport("dp_sync", "backward", 1.0, dp, dp),
            fsdp=OverlapReport("fsdp_gather", "forward", 1.0, fsdp, fsdp),
        )
        none_hidden = estimate_step_comm(model, w, plan, MACHINE, overlaps=mk(0.0, 0.0))
        all_hidden = estimate_step_comm(model, w, plan, MACHINE, overlaps=mk(1.0, 1.0))
        assumed = estimate_step_comm(model, w, plan, MACHINE)
        assert all_hidden.dp_time == 0.0 and all_hidden.fsdp_time == 0.0
        assert none_hidden.dp_time > assumed.dp_time > all_hidden.dp_time
        assert none_hidden.fsdp_time > assumed.fsdp_time > all_hidden.fsdp_time
        # overlap hides time, never bytes
        assert none_hidden.total_wire == all_hidden.total_wire == assumed.total_wire


class TestParallelWrapperHooks:
    def test_data_parallel_charges_and_tags(self):
        from repro.nn import MLP
        from repro.tensor import Tensor

        clock = VirtualClock(MACHINE)
        x = np.random.default_rng(0).standard_normal((4, 4)).astype(np.float32)

        def fn(comm):
            model = DataParallel(
                comm, None, MLP(4, 8, np.random.default_rng(0)),
                forward_seconds=1e-5, backward_seconds=2e-5,
            )
            (model(Tensor(shard_batch(x, comm))) ** 2).mean().backward()
            model.sync_gradients()
            return None

        _, world = run_spmd_world(fn, 2, clock=clock)
        assert world.traffic.count(op="all_reduce", phase="dp_sync") == 2
        assert math.isclose(clock.compute_seconds(rank=0, phase="forward"), 1e-5, rel_tol=1e-9)
        assert math.isclose(clock.compute_seconds(rank=0, phase="backward"), 2e-5, rel_tol=1e-9)
        ov = derive_overlaps(world)
        assert 0.0 <= ov.dp_overlap <= 1.0

    def test_data_parallel_bucketed_sync_under_issue_queue(self):
        """grad_buckets=k issues k dp_sync AllReduces interleaved with
        backward slices; under an eager clock earlier buckets hide under
        later slices (the bucketed-DDP schedule), and the reduced gradients
        are identical to the unbucketed sync."""
        from repro.nn import MLP
        from repro.tensor import Tensor

        x = np.random.default_rng(0).standard_normal((4, 4)).astype(np.float32)

        def run(buckets):
            clock = VirtualClock(MACHINE, eager_phases={"dp_sync"})

            def fn(comm):
                model = DataParallel(
                    comm, None, MLP(4, 8, np.random.default_rng(0)),
                    backward_seconds=4e-5, grad_buckets=buckets,
                )
                (model(Tensor(shard_batch(x, comm))) ** 2).mean().backward()
                model.sync_gradients()
                comm.drain_comm()
                return [p.grad.copy() for p in model.parameters()]

            grads, world = run_spmd_world(fn, 2, clock=clock)
            return grads[0], world

        grads1, _ = run(buckets=1)
        grads2, world = run(buckets=2)
        assert world.traffic.count(op="all_reduce", phase="dp_sync") == 2 * 2
        for a, b in zip(grads1, grads2):
            np.testing.assert_array_equal(a, b)  # bucketing reorders time, not math
        buckets = derive_bucket_exposures(world, "dp_sync")
        assert len(buckets) == 2
        # bucket 0 can hide under the second backward slice; the tail cannot
        assert buckets[0].hidden_fraction >= buckets[1].hidden_fraction
        ov = derive_overlaps(world)
        assert ov.dp.source == "measured"

    def test_fsdp_charges_and_tags(self):
        from repro.nn import ViTEncoder
        from repro.tensor import Tensor

        clock = VirtualClock(MACHINE)
        x = np.random.default_rng(1).standard_normal((2, 5, 16)).astype(np.float32)

        def fn(comm):
            enc = ViTEncoder(16, 2, 4, np.random.default_rng(0))
            model = FSDPModel(
                comm, None, enc, units=[b for b in enc.blocks], unit_seconds=5e-6
            )
            (model(Tensor(x)) ** 2).mean().backward()
            return None

        _, world = run_spmd_world(fn, 2, clock=clock)
        # 3 units (2 blocks + residual): forward gathers carry the phase tag.
        assert world.traffic.count(op="all_gather", phase="fsdp_gather") == 3 * 2
        # backward collectives keep their "backward" stamp
        assert world.traffic.count(op="reduce_scatter", phase="backward") == 3 * 2
        assert math.isclose(
            clock.compute_seconds(rank=0, phase="forward"), 3 * 5e-6, rel_tol=1e-12
        )
        ov = derive_overlaps(world)
        assert 0.0 <= ov.fsdp_overlap <= 1.0

    def test_mesh_training_derives_both_fractions(self):
        """FSDP × DP hybrid world: both overlap fractions derivable and the
        derived pair feeds estimate_step_comm."""
        from repro.dist import average_gradients
        from repro.nn import ViTEncoder
        from repro.tensor import Tensor

        clock = VirtualClock(MACHINE)
        x = np.random.default_rng(2).standard_normal((4, 5, 16)).astype(np.float32)

        def fn(comm):
            mesh = DeviceMesh(comm, tp=1, fsdp=2, dp=2)
            enc = ViTEncoder(16, 2, 4, np.random.default_rng(0))
            model = FSDPModel(
                comm, mesh.fsdp_group, enc, units=[b for b in enc.blocks],
                unit_seconds=1e-5,
            )
            local = shard_batch(x, comm, mesh.dp_group)
            (model(Tensor(local)) ** 2).mean().backward()
            comm.charge_compute(4e-5, phase="backward")
            with comm.phase_scope("dp_sync"):
                average_gradients(comm, model.shard_parameters(), group=mesh.dp_group)
            return comm.now()

        times = run_spmd(fn, 4, clock=clock)
        assert all(t == times[0] for t in times)
        _, world2 = run_spmd_world(fn, 4, clock=VirtualClock(MACHINE))
        ov = derive_overlaps(world2)
        model = ModelConfig("t", dim=64, depth=4, heads=4)
        comm_est = estimate_step_comm(
            model, Workload(16, 2), ParallelPlan("tp", tp=1, fsdp=2, dp=2),
            MACHINE, overlaps=ov,
        )
        assert comm_est.total >= 0.0

    def test_tp_context_charges_compute(self):
        from repro.nn import ViTEncoder
        from repro.parallel import TPContext, TPViTEncoder
        from repro.tensor import Tensor

        clock = VirtualClock(MACHINE)
        serial = ViTEncoder(16, 2, 4, np.random.default_rng(0))
        state = {k: v.copy() for k, v in serial.state_dict().items()}
        x = np.random.default_rng(3).standard_normal((1, 4, 16)).astype(np.float32)

        def fn(comm):
            ctx = TPContext(comm, block_seconds=1e-5, phase="tp")
            enc = TPViTEncoder(ctx, 16, 2, 4, state)
            enc(Tensor(x))
            return None

        _, world = run_spmd_world(fn, 2, clock=clock)
        # 2 ranks × 2 blocks × 2 regions (one record per participating rank)
        assert world.traffic.count(op="all_reduce", phase="tp") == 2 * 2 * 2
        assert math.isclose(
            clock.compute_seconds(rank=0, phase="forward"), 2 * 1e-5, rel_tol=1e-12
        )


def _ar_cost(payload: int, world: int = 4, machine: MachineSpec | None = None) -> float:
    m = machine if machine is not None else MACHINE
    return CostModel(m).collective_seconds("all_reduce", payload, world, True)


class TestIssueQueue:
    """The eager issue-queue engine: dispatch at record time, complete
    concurrently with charged compute, settle exposure at drain points."""

    def test_exposure_matches_closed_form(self):
        """One eager collective of cost C followed by compute K exposes
        exactly max(0, C − K) — the acceptance contract."""
        payload = 1 << 20
        cost = _ar_cost(payload)
        for k_frac in (0.25, 0.5, 1.5):
            clock = VirtualClock(MACHINE, eager_phases={"dp_sync"})

            def fn(comm, k=k_frac * cost):
                with comm.phase_scope("dp_sync"):
                    comm.all_reduce(np.ones(payload // 4, dtype=np.float32))
                comm.charge_compute(k, phase="backward")
                return comm.drain_comm()

            times = run_spmd(fn, 4, clock=clock)
            expected_exposed = max(0.0, cost - k_frac * cost)
            assert math.isclose(
                clock.exposed_seconds(rank=0, phase="dp_sync"),
                expected_exposed,
                rel_tol=1e-9,
                abs_tol=1e-18,
            )
            # makespan = compute + whatever the schedule could not hide
            assert math.isclose(
                times[0], k_frac * cost + expected_exposed, rel_tol=1e-9
            )

    def test_per_bucket_exposure_matches_closed_form(self):
        """Two eager buckets with interleaved compute: exposure per bucket
        follows the serial-channel drain recurrence to 1e-6."""
        p1, p2 = 1 << 20, 1 << 18
        c1, c2 = _ar_cost(p1), _ar_cost(p2)
        k1, k2 = c1 / 4.0, c1  # slice 1 hides a quarter of bucket 0; slice 2 is long
        clock = VirtualClock(MACHINE, eager_phases={"dp_sync"})

        def fn(comm):
            with comm.phase_scope("dp_sync"):
                comm.all_reduce(np.ones(p1 // 4, dtype=np.float32))
            comm.charge_compute(k1, phase="backward")
            with comm.phase_scope("dp_sync"):
                comm.all_reduce(np.ones(p2 // 4, dtype=np.float32))
            comm.charge_compute(k2, phase="backward")
            return comm.drain_comm()

        _, world = run_spmd_world(fn, 4, clock=clock)
        # channel: bucket0 [0, c1]; bucket1 issued at k1, starts at c1
        # (channel busy), ends c1 + c2.  Drain at w0 = k1 + k2:
        w0 = k1 + k2
        e0 = max(0.0, c1 - w0)
        e1 = max(0.0, (c1 + c2) - max(w0, c1))
        buckets = derive_bucket_exposures(world, "dp_sync")
        assert [b.index for b in buckets] == [0, 1]
        assert math.isclose(buckets[0].exposed_seconds, e0, rel_tol=1e-6, abs_tol=1e-12)
        assert math.isclose(buckets[1].exposed_seconds, e1, rel_tol=1e-6, abs_tol=1e-12)
        assert math.isclose(buckets[0].comm_seconds, c1, rel_tol=1e-9)
        assert math.isclose(buckets[1].comm_seconds, c2, rel_tol=1e-9)
        # derived overlap aggregates the buckets: 1 − exposed / busy
        ov = derive_overlaps(world)
        assert ov.dp.source == "measured"
        assert math.isclose(
            ov.dp_overlap, 1.0 - (e0 + e1) / (c1 + c2), rel_tol=1e-9
        )
        assert ov.buckets_for("dp_sync") == tuple(buckets)

    def test_eager_timelines_deterministic_across_thread_schedules(self):
        def workload(comm):
            rng_sleep = 0.0005 * ((comm.rank * 7) % 3)
            for i in range(4):
                with comm.phase_scope("dp_sync"):
                    comm.all_reduce(np.ones(256 * (i + 1), dtype=np.float32))
                comm.charge_compute(1e-6 * ((comm.rank + i) % 3), phase="backward")
                time.sleep(rng_sleep)  # perturbs threads, must not perturb time
            comm.drain_comm()
            return comm.now()

        def stamps():
            clock = VirtualClock(MACHINE, eager_phases={"dp_sync"})
            times = run_spmd(workload, 4, clock=clock)
            ivs = [
                (iv.rank, iv.op, iv.issue, iv.start, iv.end, iv.exposed)
                for iv in clock.comm_intervals()
            ]
            return times, sorted(ivs)

        assert stamps() == stamps()  # bitwise, not approximate

    def test_blocking_collective_drains_queue_first(self):
        """Channel serialization: a blocking collective cannot start before
        in-flight eager ones clear, and their wait is charged to them."""
        p_eager, p_block = 1 << 20, 1 << 16
        c_eager, c_block = _ar_cost(p_eager), _ar_cost(p_block)
        clock = VirtualClock(MACHINE, eager_phases={"dp_sync"})

        def fn(comm):
            with comm.phase_scope("dp_sync"):
                comm.all_reduce(np.ones(p_eager // 4, dtype=np.float32))
            comm.all_reduce(np.ones(p_block // 4, dtype=np.float32))  # blocking
            return comm.now()

        times = run_spmd(fn, 4, clock=clock)
        assert all(math.isclose(t, c_eager + c_block, rel_tol=1e-9) for t in times)
        # the eager op's full cost was exposed (nothing could hide it)
        assert math.isclose(
            clock.exposed_seconds(rank=0, phase="dp_sync"), c_eager, rel_tol=1e-9
        )

    def test_barrier_is_blocking_even_inside_eager_phase(self):
        clock = VirtualClock(MACHINE, eager_phases={"dp_sync"})

        def fn(comm):
            with comm.phase_scope("dp_sync"):
                comm.barrier()
            return comm.now()

        times = run_spmd(fn, 4, clock=clock)
        assert all(math.isclose(t, 3 * MACHINE.intra_latency, rel_tol=1e-12) for t in times)

    def test_finalize_drains_pending_on_rank_exit(self):
        """A rank that never drains still reports the true makespan."""
        payload = 1 << 20
        cost = _ar_cost(payload, world=2)
        clock = VirtualClock(MACHINE, eager_phases={"dp_sync"})

        def fn(comm):
            with comm.phase_scope("dp_sync"):
                comm.all_reduce(np.ones(payload // 4, dtype=np.float32))
            return comm.now()  # still pending: clock not advanced here

        times = run_spmd(fn, 2, clock=clock)
        assert times == [0.0, 0.0]  # issue did not stall the ranks...
        assert math.isclose(clock.elapsed(), cost, rel_tol=1e-9)  # ...drain did

    def test_causality_and_exposure_invariants(self):
        """issue ≤ start, end ≥ start, 0 ≤ exposed ≤ end − issue."""
        clock = VirtualClock(MACHINE, eager_phases={"dp_sync", "fsdp_gather"})

        def fn(comm):
            comm.charge_compute(3e-6 * (comm.rank + 1), phase="forward")
            for i, phase in enumerate(("dp_sync", "fsdp_gather", "dp_sync")):
                with comm.phase_scope(phase):
                    comm.all_reduce(np.ones(512 * (i + 1), dtype=np.float32))
                comm.charge_compute(2e-6, phase="backward")
            comm.all_reduce(np.ones(64, dtype=np.float32))  # blocking
            return comm.now()

        run_spmd(fn, 4, clock=clock)
        ivs = clock.comm_intervals()
        assert len(ivs) == 4 * 4  # 4 collectives per rank, all settled
        for iv in ivs:
            assert iv.issue <= iv.start + 1e-18
            assert iv.end >= iv.start
            assert 0.0 <= iv.exposed <= (iv.end - iv.issue) + 1e-18
            assert math.isclose(iv.hidden + iv.exposed, iv.end - iv.issue, rel_tol=1e-12)

    def test_non_eager_clock_has_blocking_intervals(self):
        """Fully blocking clocks archive CommIntervals too (exposed = full
        wait), so exposure read-out is uniform across modes."""
        clock = VirtualClock(MACHINE)

        def fn(comm):
            comm.all_reduce(np.ones(256, dtype=np.float32))
            return None

        run_spmd(fn, 2, clock=clock)
        (iv,) = clock.comm_intervals(rank=0)
        assert iv.exposed == iv.end - iv.issue
        assert math.isclose(iv.seconds, _ar_cost(1024, world=2), rel_tol=1e-12)


class TestEagerMeasuredPlans:
    TINY = ModelConfig("tiny", dim=32, depth=2, heads=4, patch=4, image_hw=(16, 16))
    MACHINE4 = replace(MACHINE, gpus_per_node=4)

    def test_eager_replay_keeps_wire_parity(self):
        for plan in (
            ParallelPlan("dchag", tp=2, dchag_kind="linear", fsdp=2, dp=2),
            ParallelPlan("tp", tp=4, dp=2),
        ):
            m = measure_plan(
                self.TINY, Workload(16, 2), plan, self.MACHINE4, eager=True
            )
            assert m.eager
            assert m.wire_matches_predicted(), (m.wire, m.predicted.wire_by_axis())

    def test_eager_never_slower_than_blocking(self):
        """With the latency-aware bucket cap, overlap can only help."""
        plan = ParallelPlan("dchag", tp=2, dchag_kind="linear", fsdp=2, dp=2)
        for scale in (1.0, 100.0):
            blocking = measure_plan(
                self.TINY, Workload(16, 2), plan, self.MACHINE4, compute_scale=scale
            )
            eager = measure_plan(
                self.TINY, Workload(16, 2), plan, self.MACHINE4,
                eager=True, compute_scale=scale,
            )
            assert eager.step_seconds <= blocking.step_seconds + 1e-15

    def test_eager_overlaps_are_measured_with_buckets(self):
        plan = ParallelPlan("dchag", tp=2, dchag_kind="linear", fsdp=2, dp=2)
        m = measure_plan(
            self.TINY, Workload(16, 2), plan, self.MACHINE4,
            eager=True, compute_scale=100.0,
        )
        ov = m.overlaps
        assert ov.dp.source == "measured" and ov.fsdp.source == "measured"
        assert ov.buckets, "eager replay must carry per-bucket evidence"
        for b in ov.buckets:
            assert 0.0 <= b.hidden_fraction <= 1.0
            assert b.exposed_seconds >= 0.0
        # generous forward compute fully hides the prefetched gathers
        assert ov.fsdp_overlap == 1.0


class TestMachineSpecPersistence:
    def test_round_trip_identity(self, tmp_path):
        spec = replace(frontier(), name="tuned", intra_latency=3.3e-6)
        path = tmp_path / "specs" / "machine.json"
        spec.save(path)
        assert MachineSpec.load(path) == spec  # every field, exactly

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError):
            MachineSpec.from_dict({"name": "x", "bogus": 1})

    def test_loaded_spec_ranks_identically(self, tmp_path):
        """save → load → the autotuner produces a byte-identical ranking."""
        from repro.perf import named_model

        spec = frontier()
        path = tmp_path / "machine.json"
        spec.save(path)
        loaded = MachineSpec.load(path)
        a = search_configurations(named_model("1.7B"), 512, 8, spec, 32)
        b = search_configurations(named_model("1.7B"), 512, 8, loaded, 32)
        assert [(t.plan.label, t.micro_batch, t.total_tflops) for t in a] == [
            (t.plan.label, t.micro_batch, t.total_tflops) for t in b
        ]


class TestFitResiduals:
    @staticmethod
    def _synthetic(alpha, beta, noise, seed=0, n=24):
        rng = np.random.default_rng(seed)
        steps = rng.integers(1, 15, size=n)
        wire = rng.integers(1 << 8, 1 << 20, size=n)
        secs = alpha * steps + beta * wire
        secs = secs + rng.normal(0.0, noise * np.abs(secs))
        return [
            FitSample(op="all_reduce", steps=int(s), wire_bytes=int(w), seconds=float(t))
            for s, w, t in zip(steps, wire, secs)
        ]

    def test_clean_synthetic_recovers_exactly(self):
        fit = fit_link(self._synthetic(2e-6, 2e-11, 0.0), 2e-6, 2e-11)
        assert fit.alpha_error < 1e-9 and fit.beta_error < 1e-9
        assert fit.relative_residual < 1e-9
        assert fit.within(1e-6)

    def test_noisy_synthetic_residual_tracks_noise(self):
        """The relative residual is the noise gate: ~σ for σ-noisy samples,
        so thresholds separate clean timelines from garbage."""
        quiet = fit_link(self._synthetic(2e-6, 2e-11, 0.01, seed=1), 2e-6, 2e-11)
        loud = fit_link(self._synthetic(2e-6, 2e-11, 0.60, seed=1), 2e-6, 2e-11)
        assert quiet.within(0.05)
        assert not loud.within(0.05)
        assert loud.relative_residual > quiet.relative_residual

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError):
            fit_link(self._synthetic(1e-6, 1e-11, 0.0, n=1), 1e-6, 1e-11)

    def test_to_machine_falls_back_on_degenerate_fit(self):
        bad = FittedLink(
            intra_node=True, alpha=-1.0, beta=-1.0,
            spec_alpha=2e-6, spec_beta=2e-11, rms_residual=0.0,
        )
        spec = bad.to_machine(frontier(), name="host")
        assert spec.intra_latency == 2e-6
        assert math.isclose(spec.intra_node_bw, 1.0 / 2e-11, rel_tol=1e-12)


class TestWallclockFit:
    def test_samples_come_from_timeline_runs(self):
        samples = wallclock_fit_samples(world_size=2, payload_sweep=(1 << 10,), repeats=2)
        assert len(samples) == 5  # one per ring op
        for s in samples:
            assert s.seconds >= 0.0
            assert s.steps >= 0 and s.wire_bytes >= 0

    def test_fit_machine_wallclock_builds_host_spec(self):
        spec, fit = fit_machine_wallclock(
            world_size=2, payload_sweep=(1 << 10, 1 << 13), repeats=2
        )
        assert spec.name == "host-calibrated"
        assert spec.intra_latency > 0.0 and spec.intra_node_bw > 0.0
        # host has one fabric: both links carry the fitted constants
        assert spec.inter_latency == spec.intra_latency
        assert math.isclose(spec.inter_node_bw_per_gpu, spec.intra_node_bw, rel_tol=1e-12)
        assert math.isfinite(fit.rms_residual)

    def test_load_or_fit_persists_once(self, tmp_path):
        path = tmp_path / "runs" / "machine.json"
        spec1 = load_or_fit_machine(
            path, world_size=2, payload_sweep=(1 << 10, 1 << 12), repeats=2
        )
        assert path.exists()
        spec2 = load_or_fit_machine(path)  # pure load: no re-fit
        assert spec1 == spec2


class TestCalibratedSpecFreshness:
    """`load_or_fit_machine` must notice a stale stored calibration
    (ROADMAP "calibrated-spec freshness") instead of loading it forever."""

    FIT_KW = dict(world_size=2, payload_sweep=(1 << 10, 1 << 12), repeats=2)

    @staticmethod
    def _meta(path):
        import json
        from repro.perf.calibrate import _meta_path

        return json.loads(_meta_path(path).read_text()), _meta_path(path)

    def test_fit_writes_fingerprint_sidecar(self, tmp_path):
        from repro.perf.calibrate import host_fingerprint

        path = tmp_path / "machine.json"
        load_or_fit_machine(path, **self.FIT_KW)
        meta, meta_path = self._meta(path)
        assert meta_path.exists()
        assert meta["fingerprint"] == host_fingerprint()
        assert "relative_residual" in meta

    def test_matching_fingerprint_loads_without_refit(self, tmp_path, monkeypatch):
        import repro.perf.calibrate as cal

        path = tmp_path / "machine.json"
        spec1 = load_or_fit_machine(path, **self.FIT_KW)

        def boom(*a, **k):  # any re-fit is a bug here
            raise AssertionError("re-fit triggered for a fresh spec")

        monkeypatch.setattr(cal, "fit_machine_wallclock", boom)
        assert cal.load_or_fit_machine(path) == spec1

    def test_fingerprint_drift_triggers_refit(self, tmp_path, monkeypatch):
        import json

        import repro.perf.calibrate as cal

        path = tmp_path / "machine.json"
        load_or_fit_machine(path, **self.FIT_KW)
        meta, meta_path = self._meta(path)
        meta["fingerprint"]["python"] = "0.0.0"  # another interpreter fitted it
        meta_path.write_text(json.dumps(meta))

        calls = []
        sentinel = replace(frontier(), name="refitted")

        def fake_fit(*a, **k):
            calls.append(1)
            return sentinel, FittedLink(
                intra_node=True, alpha=1e-6, beta=1e-11,
                spec_alpha=1e-6, spec_beta=1e-11, rms_residual=0.0,
            )

        monkeypatch.setattr(cal, "fit_machine_wallclock", fake_fit)
        spec = cal.load_or_fit_machine(path)
        assert calls and spec.name == "refitted"
        # the re-fit repaired the sidecar: next call loads cleanly
        meta2, _ = self._meta(path)
        assert meta2["fingerprint"]["python"] != "0.0.0"

    def test_stored_residual_above_threshold_triggers_refit(self, tmp_path, monkeypatch):
        import json

        import repro.perf.calibrate as cal

        path = tmp_path / "machine.json"
        load_or_fit_machine(path, **self.FIT_KW)
        meta, meta_path = self._meta(path)
        meta["relative_residual"] = 9.5  # the stored fit never explained its samples
        meta_path.write_text(json.dumps(meta))

        calls = []

        def fake_fit(*a, **k):
            calls.append(1)
            return frontier(), FittedLink(
                intra_node=True, alpha=1e-6, beta=1e-11,
                spec_alpha=1e-6, spec_beta=1e-11, rms_residual=0.0,
            )

        monkeypatch.setattr(cal, "fit_machine_wallclock", fake_fit)
        cal.load_or_fit_machine(path, max_residual=1.0)
        assert calls, "residual above max_residual must re-fit"
        calls.clear()
        cal.load_or_fit_machine(path, max_residual=1.0)  # repaired: loads now
        assert not calls

    def test_sidecarless_spec_is_pinned(self, tmp_path, monkeypatch):
        import repro.perf.calibrate as cal

        path = tmp_path / "machine.json"
        pinned = replace(frontier(), name="hand-written")
        pinned.save(path)  # no sidecar: deliberately pinned constants

        def boom(*a, **k):
            raise AssertionError("pinned spec must not be re-fitted")

        monkeypatch.setattr(cal, "fit_machine_wallclock", boom)
        assert cal.load_or_fit_machine(path) == pinned


class TestCalibrateCLI:
    """`python -m repro.perf.calibrate` must gate, not just print."""

    def test_smoke_pass_exits_zero(self, capsys):
        assert calibrate_main(["--ranks", "2", "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "OK:" in out
        assert "fitted intra" in out  # the fit gate runs even under --smoke

    def test_wire_divergence_exits_nonzero(self, monkeypatch, capsys):
        import repro.perf.calibrate as cal

        bad_row = cal.CalibrationRow(
            op="all_reduce", ranks=2, intra_node=True, payload_bytes=8,
            predicted_wire=8, measured_wire=9,
            predicted_seconds=1e-6, measured_seconds=1e-6,
        )
        monkeypatch.setattr(
            cal, "calibrate",
            lambda **kw: cal.CalibrationReport(machine=frontier(), rows=[bad_row]),
        )
        good_fit = FittedLink(
            intra_node=True, alpha=2e-6, beta=2e-11,
            spec_alpha=2e-6, spec_beta=2e-11, rms_residual=0.0, mean_seconds=1e-6,
        )
        monkeypatch.setattr(cal, "fit_machine", lambda **kw: good_fit)
        assert cal.main(["--smoke"]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_fit_divergence_exits_nonzero(self, monkeypatch, capsys):
        import repro.perf.calibrate as cal

        diverged = FittedLink(
            intra_node=True, alpha=1.0, beta=1.0,
            spec_alpha=2e-6, spec_beta=2e-11,
            rms_residual=float("nan"), mean_seconds=1e-6,
        )
        monkeypatch.setattr(cal, "fit_machine", lambda **kw: diverged)
        assert cal.main(["--ranks", "2", "--smoke"]) == 1
        assert "FAIL: fitted constants diverge" in capsys.readouterr().out


class TestOverlapAwareTrainerEndToEnd:
    """A real Trainer driven inside an eager-clock SPMD world: the bucketed
    DP gradient sync overlaps backward compute, drains at every optimizer
    boundary, and the resulting per-step virtual times agree with the
    analytic ``estimate_step(..., overlaps=derive_overlaps(world))``."""

    def test_trainer_step_times_match_overlap_aware_estimate(self):
        from repro.nn import Module
        from repro.perf import Precision, estimate_step, transformer_param_count
        from repro.tensor import Tensor
        from repro.train import TrainConfig, Trainer

        cfg = ModelConfig("e2e", dim=256, depth=6, heads=4, patch=4, image_hw=(16, 16))
        plan = ParallelPlan("tp", tp=1, fsdp=1, dp=2)
        wl = Workload(channels=16, batch=2)
        precision = Precision(grad_bytes=4)  # the world's gradients are real float32
        # Derate peak FLOPs so the charged compute is commensurate with the
        # gradient AllReduce — the regime where bucketed overlap actually
        # hides traffic (at paper peak this model's step is all-comm).
        machine = replace(MACHINE, peak_flops=MACHINE.peak_flops / 128.0)
        raw = estimate_step(cfg, wl, plan, machine, precision=precision)
        fwd_seconds = raw.compute_seconds / 3.0
        bwd_seconds = raw.compute_seconds * 2.0 / 3.0
        # Four float32 chunks summing exactly to the transformer parameter
        # count: the live bucketed AllReduce then moves byte-for-byte the
        # payload the analytic dp event prices.
        n_params = transformer_param_count(cfg)
        chunk = n_params // 4
        sizes = [chunk, chunk, chunk, n_params - 3 * chunk]
        n_steps = 3
        clock = VirtualClock(machine, eager_phases={"dp_sync"})

        def fn(comm):
            rng = np.random.default_rng(0)

            class _Flat(Module):
                def __init__(self):
                    super().__init__()
                    for i, sz in enumerate(sizes):
                        setattr(self, f"w{i}", Tensor(
                            0.01 * rng.standard_normal(sz).astype(np.float32),
                            requires_grad=True,
                        ))

            inner = _Flat()
            dp = DataParallel(
                comm, None, inner, backward_seconds=bwd_seconds, grad_buckets=4
            )

            class _Step(Module):
                def loss(self, batch):
                    comm.charge_compute(fwd_seconds, phase="forward")
                    total = None
                    for p in inner.parameters():
                        term = (p ** 2).mean()
                        total = term if total is None else total + term
                    return total

            marks = []
            trainer = Trainer(
                _Step(),
                TrainConfig(lr=1e-3, total_steps=n_steps),
                params=inner.parameters(),
                # DDP hook point: bucketed sync (charges backward slices and
                # issues each bucket eagerly), then drain at the optimizer
                # boundary so each step settles its own exposure.
                grad_hook=lambda: (dp.sync_gradients(), comm.drain_comm()),
                pre_step_hook=lambda step: marks.append(comm.now()),
            )
            trainer.fit([np.zeros(1, np.float32)] * n_steps)
            marks.append(comm.now())
            return marks

        results, world = run_spmd_world(fn, plan.total_gpus, clock=clock)
        assert all(m == results[0] for m in results)  # SPMD-deterministic
        deltas = [b - a for a, b in zip(results[0], results[0][1:])]
        assert len(deltas) == n_steps
        # Every step spans the identical virtual time (same schedule).
        for d in deltas[1:]:
            assert d == pytest.approx(deltas[0], rel=1e-9)
        # Wire parity: the run moved exactly the analytic dp payload per step.
        assert world.traffic.wire_bytes(phase="dp_sync", rank=0) // n_steps == raw.comm.dp_wire
        ov = derive_overlaps(world)
        assert ov.dp.source == "measured"
        assert 0.0 < ov.dp_overlap < 1.0  # genuinely partial hiding
        est = estimate_step(cfg, wl, plan, machine, precision=precision, overlaps=ov)
        # Per-step measured time vs the overlap-aware analytic estimate: the
        # only structural gap is 3 extra bucket latencies (~1% here).
        for d in deltas:
            assert d == pytest.approx(est.step_seconds, rel=0.15)
