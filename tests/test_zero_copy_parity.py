"""Property tests: the zero-copy collective fast paths are bitwise-faithful.

PR 5 reworked the runtime's data path — contributions are no longer
snapshotted (peers stay blocked while the reduction runs), reductions write
``np.add(..., out=)`` into per-slot scratch, and ``out=`` parameters reuse
preallocated result buffers.  PR 8 replaced the per-rank wake chain with
batched-wake distribution: the last arriver copies every member's value
straight from the live contributions and releases the group with one event
set.  None of that may change a single bit: every collective must equal the
reference rank-ordered computation (the same left-to-right pairwise order
the reference copy path used), private results must stay private (mutating
one rank's output — or its *input*, right after return — never leaks to
another rank or a later collective), and the charged wire bytes must stay
exactly :func:`repro.dist.ring_wire_bytes`.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dist import ring_wire_bytes, run_spmd_world
from repro.dist.runtime import split_sizes

WORLD_SIZES = (2, 4, 8)
REDUCE_OPS = ("sum", "mean", "max", "min")


def _contribs(n: int, length: int, dtype, seed: int) -> list[np.ndarray]:
    rng = np.random.default_rng(seed)
    if np.issubdtype(np.dtype(dtype), np.floating):
        # Full-precision noise: float associativity differences would show.
        return [rng.standard_normal(length).astype(dtype) * 3.7 for _ in range(n)]
    return [rng.integers(-1000, 1000, size=length).astype(dtype) for _ in range(n)]


def _reference_reduce(contribs: list[np.ndarray], op: str) -> np.ndarray:
    """Group-rank-ordered pairwise reduction — the determinism contract."""
    out = contribs[0].copy()
    for a in contribs[1:]:
        if op in ("sum", "mean"):
            out += a
        elif op == "max":
            np.maximum(out, a, out=out)
        elif op == "min":
            np.minimum(out, a, out=out)
    if op == "mean":
        out /= len(contribs)
    return out


def _wire_ok(world, op: str, payload: int, n: int, issues: int = 1) -> bool:
    return world.traffic.wire_bytes(op=op, rank=0) == issues * ring_wire_bytes(
        op, payload, n
    )


common = settings(max_examples=12, deadline=None)


class TestReduceParity:
    @common
    @given(
        n=st.sampled_from(WORLD_SIZES),
        length=st.integers(1, 97),
        dtype=st.sampled_from([np.float32, np.float64, np.int64]),
        op=st.sampled_from(REDUCE_OPS),
        use_out=st.booleans(),
        seed=st.integers(0, 2**31),
    )
    def test_all_reduce_bitwise(self, n, length, dtype, op, use_out, seed):
        if op == "mean" and not np.issubdtype(np.dtype(dtype), np.floating):
            return
        contribs = _contribs(n, length, dtype, seed)
        expect = _reference_reduce(contribs, op)

        def fn(comm):
            mine = contribs[comm.rank]
            out = np.empty_like(mine) if use_out else None
            res = comm.all_reduce(mine, op=op, out=out)
            if use_out:
                assert res is out
            got = res.copy()
            res[...] = 0  # mutating my private result must not leak
            again = comm.all_reduce(mine, op=op)
            return got, again

        results, world = run_spmd_world(fn, n)
        for got, again in results:
            assert got.dtype == expect.dtype
            assert np.array_equal(got, expect), "fast path diverged from reference"
            assert np.array_equal(again, expect), "result mutation leaked"
        assert _wire_ok(world, "all_reduce", expect.nbytes, n, issues=2)

    @common
    @given(
        n=st.sampled_from(WORLD_SIZES),
        length=st.integers(1, 61),
        op=st.sampled_from(REDUCE_OPS),
        uneven=st.booleans(),
        use_out=st.booleans(),
        seed=st.integers(0, 2**31),
    )
    def test_reduce_scatter_bitwise(self, n, length, op, uneven, use_out, seed):
        # uneven=True keeps the raw length (remainder convention / padded
        # collective); uneven=False rounds up to an even split.
        if not uneven:
            length += (-length) % n
        contribs = _contribs(n, length, np.float64, seed)
        full = _reference_reduce(contribs, op)
        sizes = split_sizes(length, n)

        def fn(comm):
            mine = contribs[comm.rank]
            out = (
                np.empty(sizes[comm.rank], dtype=mine.dtype) if use_out else None
            )
            res = comm.reduce_scatter(mine, op=op, out=out)
            if use_out:
                assert res is out
            return res.copy()

        results, world = run_spmd_world(fn, n)
        lo = 0
        for r, shard in enumerate(results):
            assert np.array_equal(shard, full[lo : lo + sizes[r]])
            lo += sizes[r]
        # Padded-collective accounting: the ring moves max(chunk)·n elements.
        padded = max(sizes) * n * full.itemsize
        assert _wire_ok(world, "reduce_scatter", padded, n)


class TestGatherParity:
    @common
    @given(
        n=st.sampled_from(WORLD_SIZES),
        length=st.integers(1, 73),
        dtype=st.sampled_from([np.float32, np.int64]),
        use_out=st.booleans(),
        seed=st.integers(0, 2**31),
    )
    def test_all_gather_small_bitwise(self, n, length, dtype, use_out, seed):
        contribs = _contribs(n, length, dtype, seed)

        def fn(comm):
            outs = (
                [np.empty_like(contribs[i]) for i in range(n)] if use_out else None
            )
            parts = comm.all_gather(contribs[comm.rank], out=outs)
            got = [p.copy() for p in parts]
            for p in parts:  # mutate every private part
                p[...] = 0
            again = comm.all_gather(contribs[comm.rank])
            return got, again

        results, world = run_spmd_world(fn, n)
        for got, again in results:
            for i in range(n):
                assert np.array_equal(got[i], contribs[i])
                assert np.array_equal(again[i], contribs[i]), "mutation leaked"
        assert _wire_ok(world, "all_gather", contribs[0].nbytes, n, issues=2)

    @pytest.mark.parametrize("n", WORLD_SIZES)
    @pytest.mark.parametrize("use_out", [False, True])
    def test_all_gather_large_payload_live_copy(self, n, use_out):
        """Large gathers copy parts straight from peers' live buffers during
        batched-wake distribution (no snapshot); mutating the *input* the
        moment the collective returns must therefore never leak to any
        peer's gathered parts."""
        length = (1 << 18) // 4 + 3  # ~256 KiB of float32 per rank
        contribs = _contribs(n, length, np.float32, seed=1234)
        orig = [c.copy() for c in contribs]

        def fn(comm):
            mine = contribs[comm.rank]
            outs = [np.empty_like(contribs[i]) for i in range(n)] if use_out else None
            parts = comm.all_gather(mine, out=outs)
            got = [p.copy() for p in parts]
            # Mutate the INPUT right after return: distribution must have
            # finished every peer's copy before anyone was released.
            mine[...] = -1.0
            return got

        results, world = run_spmd_world(fn, n)
        for got in results:
            for i in range(n):
                assert np.array_equal(got[i], orig[i])
        assert _wire_ok(world, "all_gather", orig[0].nbytes, n)

    @pytest.mark.parametrize("use_out", [False, True])
    def test_all_gather_mixed_out_and_uneven_shards(self, use_out):
        """Mixed per-rank configurations — uneven shard sizes, ``out=`` on
        only some ranks — all run the one batched-wake protocol (the old
        design split the group across a barrier vote here and had to fall
        back; there is no second protocol to fall back to anymore)."""
        big = (1 << 18) // 4 + 7   # ~256 KiB float32 shard
        small = 64                 # tiny shard on the other ranks
        lengths = [big, small, big, small]
        contribs = [
            np.full(lengths[r], float(r + 1), dtype=np.float32) for r in range(4)
        ]
        orig = [c.copy() for c in contribs]

        def fn(comm):
            mine = contribs[comm.rank]
            outs = None
            if use_out and comm.rank % 2 == 0:  # out= on only some ranks
                outs = [np.empty(lengths[i], dtype=np.float32) for i in range(4)]
            parts = comm.all_gather(mine, out=outs)
            got = [p.copy() for p in parts]
            mine[...] = -7.0  # mutation after return must not leak to peers
            return got

        results, _ = run_spmd_world(fn, 4, timeout=30.0)
        for got in results:
            for i in range(4):
                assert np.array_equal(got[i], orig[i])

    @common
    @given(
        n=st.sampled_from(WORLD_SIZES),
        length=st.integers(1, 40),
        seed=st.integers(0, 2**31),
    )
    def test_broadcast_and_all_to_all_bitwise(self, n, length, seed):
        contribs = _contribs(n, length * n, np.float64, seed)

        def fn(comm):
            got_b = comm.broadcast(
                contribs[0] if comm.rank == 0 else None, root=0
            ).copy()
            sends = np.split(contribs[comm.rank], n)
            got_a = [c.copy() for c in comm.all_to_all(sends)]
            return got_b, got_a

        results, world = run_spmd_world(fn, n)
        for rank, (got_b, got_a) in enumerate(results):
            assert np.array_equal(got_b, contribs[0])
            for i in range(n):
                expect = np.split(contribs[i], n)[rank]
                assert np.array_equal(got_a[i], expect)
        assert _wire_ok(world, "broadcast", contribs[0].nbytes, n)
        assert _wire_ok(world, "all_to_all", contribs[0].nbytes, n)

    @common
    @given(
        n=st.sampled_from(WORLD_SIZES),
        length=st.integers(1, 40),
        seed=st.integers(0, 2**31),
    )
    def test_gather_scatter_bitwise(self, n, length, seed):
        contribs = _contribs(n, length * n, np.float32, seed)

        def fn(comm):
            chunks = np.split(contribs[0], n) if comm.rank == 0 else None
            got_s = comm.scatter(chunks, root=0).copy()
            gathered = comm.gather(contribs[comm.rank], root=0)
            return got_s, None if gathered is None else [p.copy() for p in gathered]

        results, _ = run_spmd_world(fn, n)
        for rank, (got_s, gathered) in enumerate(results):
            assert np.array_equal(got_s, np.split(contribs[0], n)[rank])
            if rank == 0:
                for i in range(n):
                    assert np.array_equal(gathered[i], contribs[i])
            else:
                assert gathered is None


class TestOutBufferValidation:
    def test_mismatched_out_rejected(self):
        from repro.dist import SpmdError

        def fn(comm):
            comm.all_reduce(np.ones(4), out=np.empty(5))

        with pytest.raises(SpmdError):
            run_spmd_world(fn, 2)

    def test_all_gather_out_aliasing_input_rejected(self):
        from repro.dist import SpmdError

        def fn(comm):
            mine = np.ones(8, dtype=np.float32)
            outs = [mine, np.empty_like(mine)]  # peer slot aliases my input
            comm.all_gather(mine, out=outs if comm.rank == 1 else None)

        with pytest.raises(SpmdError):
            run_spmd_world(fn, 2)

    def test_all_reduce_out_may_alias_input(self):
        def fn(comm):
            mine = np.full(16, float(comm.rank + 1))
            res = comm.all_reduce(mine, out=mine)
            return res.copy()

        results, _ = run_spmd_world(fn, 2)
        for got in results:
            assert np.array_equal(got, np.full(16, 3.0))
