"""Property tests for ``repro.dist.stats``: the analytic ring formulas and
the per-invocation traffic counters the ablation benchmarks consume."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.dist import TrafficLog, TrafficRecord, TrafficTotals, ring_wire_bytes, run_spmd_world

PAYLOADS = st.integers(0, 10**9)
SIZES = st.integers(2, 64)


class TestRingFormulas:
    @settings(max_examples=50, deadline=None)
    @given(PAYLOADS, SIZES)
    def test_all_reduce_is_two_ring_passes(self, payload, n):
        """Ring AllReduce = ReduceScatter pass + AllGather pass:
        2·(n−1)/n of the full vector crosses each rank's link."""
        assert ring_wire_bytes("all_reduce", payload, n) == (2 * (n - 1) * payload) // n

    @settings(max_examples=50, deadline=None)
    @given(PAYLOADS, SIZES)
    def test_all_gather_moves_every_foreign_shard(self, payload, n):
        """Payload here is the per-rank shard; each rank receives the other
        n−1 shards, i.e. (n−1)/n of the gathered total."""
        assert ring_wire_bytes("all_gather", payload, n) == (n - 1) * payload

    @settings(max_examples=50, deadline=None)
    @given(PAYLOADS, SIZES)
    def test_reduce_scatter_is_one_ring_pass(self, payload, n):
        """(n−1)/n of the full input vector — exactly half an AllReduce."""
        wire = ring_wire_bytes("reduce_scatter", payload, n)
        assert wire == ((n - 1) * payload) // n
        assert 2 * wire <= ring_wire_bytes("all_reduce", payload, n) <= 2 * wire + 1

    @settings(max_examples=30, deadline=None)
    @given(
        st.sampled_from(["all_reduce", "all_gather", "reduce_scatter", "broadcast", "all_to_all"]),
        PAYLOADS,
    )
    def test_singleton_group_never_touches_the_wire(self, op, payload):
        assert ring_wire_bytes(op, payload, 1) == 0

    def test_unknown_op_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            ring_wire_bytes("all_shuffle", 1024, 4)
        with pytest.raises(ValueError):
            ring_wire_bytes("all_reduce", -1, 4)
        with pytest.raises(ValueError):
            ring_wire_bytes("all_reduce", 1024, 0)


def _one_step(comm):
    comm.all_reduce(np.zeros(256, dtype=np.float32))
    comm.all_gather(np.zeros(64, dtype=np.float32))
    comm.barrier()
    return None


class TestCounterLifecycle:
    def test_counters_reset_per_run_spmd_invocation(self):
        """Each run_spmd gets a fresh world and a fresh TrafficLog: repeated
        identical runs report identical (not accumulating) counters."""
        _, first = run_spmd_world(_one_step, 4)
        _, second = run_spmd_world(_one_step, 4)
        assert first is not second
        assert first.traffic is not second.traffic
        assert first.traffic.ops_histogram() == second.traffic.ops_histogram()
        assert first.traffic.count() == second.traffic.count() == 8

    def test_finished_world_log_is_frozen(self):
        """Running a new world must not append to an old world's log."""
        _, world = run_spmd_world(_one_step, 2)
        before = world.traffic.count()
        run_spmd_world(_one_step, 2)
        assert world.traffic.count() == before

    def test_barriers_move_no_data_and_are_not_logged(self):
        _, world = run_spmd_world(_one_step, 4)
        assert "barrier" not in world.traffic.ops_histogram()

    def test_logged_wire_bytes_match_the_analytic_formula(self):
        """The log's wire accounting and the α–β model's ring_wire_bytes are
        the same function — perf/comm_model.py depends on this agreement."""
        _, world = run_spmd_world(_one_step, 4)
        assert world.traffic.wire_bytes(op="all_reduce", rank=0) == ring_wire_bytes(
            "all_reduce", 256 * 4, 4
        )
        assert world.traffic.wire_bytes(op="all_gather", rank=0) == ring_wire_bytes(
            "all_gather", 64 * 4, 4
        )

    def test_manual_log_reset(self):
        log = TrafficLog()
        log.add(TrafficRecord(rank=0, op="all_reduce", phase="", payload_bytes=8, wire_bytes=4, group_size=2))
        assert log.count() == len(log) == 1
        log.reset()
        assert log.count() == 0
        assert log.ops_histogram() == {}


class TestRunningAggregation:
    """count/payload/wire queries scan per-(op, phase, rank) running totals,
    not the record list — and must stay consistent with a naive re-scan."""

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 3),                      # rank
                st.sampled_from(["all_reduce", "all_gather", "send"]),
                st.sampled_from(["", "forward", "backward"]),
                st.integers(0, 1 << 20),                # payload
            ),
            max_size=60,
        )
    )
    def test_totals_match_naive_scan(self, entries):
        log = TrafficLog()
        for rank, op, phase, payload in entries:
            log.add(
                TrafficRecord(
                    rank=rank, op=op, phase=phase,
                    payload_bytes=payload, wire_bytes=payload // 2, group_size=4,
                )
            )
        for op, phase, rank in [(None, None, None), ("all_reduce", None, None),
                                (None, "backward", 2), ("send", "", 0)]:
            naive = [
                r for r in log.records()
                if (op is None or r.op == op)
                and (phase is None or r.phase == phase)
                and (rank is None or r.rank == rank)
            ]
            assert log.totals(op, phase, rank) == TrafficTotals(
                count=len(naive),
                payload_bytes=sum(r.payload_bytes for r in naive),
                wire_bytes=sum(r.wire_bytes for r in naive),
            )
            assert log.count(op, phase, rank) == len(naive)

    def test_records_accept_the_same_filters(self):
        _, world = run_spmd_world(_one_step, 4)
        mine = world.traffic.records(op="all_reduce", rank=2)
        assert [r.op for r in mine] == ["all_reduce"]
        assert len(world.traffic.records()) == world.traffic.count()

    def test_totals_update_incrementally(self):
        log = TrafficLog()
        rec = TrafficRecord(rank=0, op="all_reduce", phase="", payload_bytes=100,
                            wire_bytes=50, group_size=2)
        for i in range(1, 4):
            log.add(rec)
            assert log.totals(op="all_reduce") == TrafficTotals(i, 100 * i, 50 * i)
        log.reset()
        assert log.totals() == TrafficTotals(0, 0, 0)
        assert log.ops_histogram() == {}

    def test_vseconds_totals_match_naive_rescan(self):
        """The bucket vseconds aggregate equals a full-record rescan of
        ``vend − vstart`` (unstamped records contribute nothing) — the
        parity pin for the ``phase_comm_seconds`` fast path."""
        log = TrafficLog()
        stamps = [(0.0, 1.5), (-1.0, -1.0), (2.0, 2.25), (-1.0, 3.0), (1.0, 4.0)]
        for i, (vs, ve) in enumerate(stamps):
            log.add(TrafficRecord(rank=i % 2, op="all_reduce", phase="dp_sync",
                                  payload_bytes=8, wire_bytes=8, group_size=2,
                                  vstart=vs, vend=ve))
        for rank in (None, 0, 1):
            naive = sum(
                r.vend - r.vstart
                for r in log.records()
                if r.vstart >= 0.0 and (rank is None or r.rank == rank)
            )
            assert log.totals(phase="dp_sync", rank=rank).vseconds == naive

    def test_phase_comm_seconds_fast_path_matches_record_rescan(self):
        """On a real clock world the O(buckets) fast path and the legacy
        O(records) rescan agree bitwise, for every rank and phase."""
        from repro.perf import VirtualClock, frontier
        from repro.perf.overlap import phase_comm_seconds

        clock = VirtualClock(frontier())

        def fn(comm):
            buf = np.ones(256, dtype=np.float32)
            with comm.phase_scope("tp"):
                comm.all_reduce(buf)
            comm.charge_compute(1e-5, phase="backward")
            with comm.phase_scope("dp_sync"):
                comm.all_reduce(buf)
                comm.all_gather(np.ones(64, dtype=np.float32))

        _, world = run_spmd_world(fn, 4, clock=clock)
        for rank in range(4):
            for phase in ("tp", "dp_sync", "missing"):
                fast = phase_comm_seconds(world, phase, rank=rank)
                rescan = sum(
                    r.vend - r.vstart
                    for r in world.traffic.records()
                    if r.rank == rank and r.phase == phase and r.vstart >= 0.0
                )
                assert fast == rescan
        # The fast path really is in play: the log exposes bucket totals.
        assert world.traffic.totals(phase="tp", rank=0).vseconds > 0.0


class TestTimeline:
    """Optional per-collective sequence/timestamp stamps (default off) —
    groundwork for deriving comm/compute overlap instead of assuming it."""

    def test_default_records_carry_no_timeline(self):
        _, world = run_spmd_world(_one_step, 2)
        assert not world.traffic.timeline
        for r in world.traffic.records():
            assert r.seq == -1 and r.timestamp == -1.0

    def test_timeline_stamps_monotonic_seq_and_time(self):
        _, world = run_spmd_world(_one_step, 4, timeline=True)
        records = sorted(world.traffic.records(), key=lambda r: r.seq)
        assert [r.seq for r in records] == list(range(len(records)))
        times = [r.timestamp for r in records]
        assert all(t >= 0 for t in times)
        assert all(a <= b for a, b in zip(times, times[1:]))

    def test_timeline_orders_dependent_collectives(self):
        """A rank's own collectives must appear in issue order."""
        _, world = run_spmd_world(_one_step, 4, timeline=True)
        mine = [r for r in world.traffic.records() if r.rank == 1]
        by_seq = sorted(mine, key=lambda r: r.seq)
        assert [r.op for r in by_seq] == ["all_reduce", "all_gather"]


class TestConcurrentAggregates:
    """Aggregate queries must not block (or corrupt under) live writers.

    Bucket values are immutable tuples replaced atomically, so a polling
    reader sees internally consistent snapshots without taking the write
    lock; per-rank TrafficWriter buffers are merged in batches and read
    directly by the aggregates, so buffered records are never invisible
    once the world quiesces.
    """

    PAYLOAD = 64

    def _record(self, rank):
        return TrafficRecord(
            rank=rank,
            op="all_reduce",
            phase="p",
            payload_bytes=self.PAYLOAD,
            wire_bytes=ring_wire_bytes("all_reduce", self.PAYLOAD, 4),
            group_size=4,
        )

    def test_totals_consistent_under_concurrent_writers(self):
        import threading

        log = TrafficLog()
        n_writers, per_writer = 4, 3000
        start = threading.Barrier(n_writers + 1)
        wire = ring_wire_bytes("all_reduce", self.PAYLOAD, 4)

        def writer(rank):
            w = log.writer()
            rec = self._record(rank)
            start.wait()
            for _ in range(per_writer):
                w.add(rec)
            w.flush()

        threads = [
            threading.Thread(target=writer, args=(r,)) for r in range(n_writers)
        ]
        for t in threads:
            t.start()
        start.wait()
        # Poll aggregates while the writers hammer: every snapshot must be
        # internally consistent (fixed payload/wire per record) and within
        # the documented transient window — a batch mid-merge may be
        # missing, so counts may dip by at most one flush batch per writer,
        # never exceed the true total, and never tear a bucket.
        seen = 0
        snapshots = 0
        slack = n_writers * 256  # TrafficWriter._FLUSH_EVERY per writer
        while any(t.is_alive() for t in threads) or snapshots < 3:
            tot = log.totals(op="all_reduce")
            assert tot.payload_bytes == tot.count * self.PAYLOAD
            assert tot.wire_bytes == tot.count * wire
            assert tot.count <= n_writers * per_writer
            assert tot.count >= seen - slack
            seen = max(seen, tot.count)
            snapshots += 1
        for t in threads:
            t.join()
        final = log.totals()
        assert final.count == n_writers * per_writer
        assert final.payload_bytes == final.count * self.PAYLOAD
        assert len(log.records()) == final.count

    def test_buffered_records_visible_before_flush(self):
        log = TrafficLog()
        w = log.writer()
        w.add(self._record(0))  # below the flush threshold: stays buffered
        assert w.pending, "precondition: record still in the rank buffer"
        assert log.count(op="all_reduce") == 1
        assert log.payload_bytes() == self.PAYLOAD
        assert len(log.records(rank=0)) == 1
        w.flush()
        assert not w.pending
        assert log.count(op="all_reduce") == 1

    def test_timeline_mode_bypasses_buffering(self):
        log = TrafficLog(timeline=True)
        w = log.writer()
        w.add(self._record(0))
        w.add(self._record(1))
        assert not w.pending
        recs = log.records()
        assert [r.seq for r in recs] == [0, 1]

    def test_reset_clears_writer_buffers(self):
        log = TrafficLog()
        w = log.writer()
        w.add(self._record(0))
        log.reset()
        assert log.count() == 0 and not w.pending


class TestObservabilityAccessors:
    """The capped repr, top-N histogram and streaming per-rank accessor the
    observability layer (repro.obs) and large-world drivers rely on."""

    @staticmethod
    def _log_with_ops(n_ops: int, per_op: int = 1) -> TrafficLog:
        log = TrafficLog()
        for i in range(n_ops):
            for _ in range(per_op):
                log.add(TrafficRecord(rank=0, op=f"op_{i:03d}", phase="p",
                                      payload_bytes=8, wire_bytes=4, group_size=2))
        return log

    def test_histogram_top_keeps_most_frequent_ops(self):
        log = TrafficLog()
        for op, n in (("a", 5), ("b", 3), ("c", 3), ("d", 1)):
            for _ in range(n):
                log.add(TrafficRecord(rank=0, op=op, phase="", payload_bytes=1,
                                      wire_bytes=1, group_size=2))
        assert log.ops_histogram(top=2) == {"a": 5, "b": 3}  # tie b/c -> name order
        assert log.ops_histogram(top=10) == log.ops_histogram()

    def test_repr_caps_rendered_ops(self):
        many = self._log_with_ops(TrafficLog._REPR_TOP_OPS + 7)
        text = repr(many)
        assert f"+7 more ops" in text
        assert text.count("op_") == TrafficLog._REPR_TOP_OPS
        few = self._log_with_ops(2)
        assert "more ops" not in repr(few)

    def test_records_by_rank_streams_filtered_records(self):
        log = TrafficLog()
        for rank in (0, 1):
            for op in ("all_reduce", "all_gather"):
                log.add(TrafficRecord(rank=rank, op=op, phase="tp",
                                      payload_bytes=8, wire_bytes=4, group_size=2))
        mine = list(log.records_by_rank(1))
        assert [r.rank for r in mine] == [1, 1]
        assert [r.op for r in mine] == ["all_reduce", "all_gather"]  # issue order
        assert [r.op for r in log.records_by_rank(1, op="all_gather")] == ["all_gather"]
        assert list(log.records_by_rank(0, phase="dp_sync")) == []

    def test_records_by_rank_sees_pending_writer_records(self):
        log = TrafficLog()
        w = log.writer()
        w.add(TrafficRecord(rank=0, op="all_reduce", phase="", payload_bytes=8,
                            wire_bytes=4, group_size=2))
        assert w.pending  # unflushed, yet visible to the stream
        assert [r.op for r in log.records_by_rank(0)] == ["all_reduce"]

    def test_records_by_rank_matches_records_on_live_world(self):
        _, world = run_spmd_world(_one_step, 4)
        for rank in range(4):
            assert list(world.traffic.records_by_rank(rank)) == world.traffic.records(
                rank=rank
            )
