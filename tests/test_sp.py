"""Sequence parallelism tests (paper §3.5: D-CHAG composes with SP)."""

import numpy as np
import pytest

from repro.core import DCHAG, DCHAGConfig
from repro.dist import run_spmd, run_spmd_world
from repro.nn import ViTEncoder
from repro.parallel import (
    SPContext,
    SPViTEncoder,
    all_to_all_heads_to_tokens,
    all_to_all_tokens_to_heads,
    gather_sequence,
    scatter_sequence,
)
from repro.tensor import Tensor

RNG = np.random.default_rng(61)
D, DEPTH, HEADS, B, N = 32, 2, 4, 2, 8


class TestScatterGather:
    def test_scatter_takes_contiguous_shards(self):
        x = RNG.standard_normal((B, N, D)).astype(np.float32)

        def fn(comm):
            ctx = SPContext(comm)
            return scatter_sequence(ctx, Tensor(x)).data.copy()

        res = run_spmd(fn, 2)
        np.testing.assert_allclose(res[0], x[:, :4])
        np.testing.assert_allclose(res[1], x[:, 4:])

    def test_scatter_then_gather_is_identity(self):
        x = RNG.standard_normal((B, N, D)).astype(np.float32)

        def fn(comm):
            ctx = SPContext(comm)
            xi = Tensor(x, requires_grad=True)
            out = gather_sequence(ctx, scatter_sequence(ctx, xi))
            out.sum().backward()
            return out.data.copy(), xi.grad.copy()

        for out, grad in run_spmd(fn, 4):
            np.testing.assert_allclose(out, x, rtol=1e-6)
            np.testing.assert_allclose(grad, 1.0)

    def test_scatter_indivisible_raises(self):
        from repro.dist import SpmdError

        def fn(comm):
            scatter_sequence(SPContext(comm), Tensor(np.zeros((1, 5, 4), dtype=np.float32)))

        with pytest.raises(SpmdError):
            run_spmd(fn, 2)


class TestAllToAll:
    def test_tokens_to_heads_roundtrip(self):
        x = RNG.standard_normal((B, HEADS, N // 2, 8)).astype(np.float32)

        def fn(comm):
            ctx = SPContext(comm)
            xi = Tensor(x, requires_grad=True)
            flipped = all_to_all_tokens_to_heads(ctx, xi)     # [B, h/sp, N, hd]
            assert flipped.shape == (B, HEADS // 2, N, 8)
            back = all_to_all_heads_to_tokens(ctx, flipped)
            (back * back).sum().backward()
            return back.data.copy(), xi.grad.copy()

        for back, grad in run_spmd(fn, 2):
            np.testing.assert_allclose(back, x, rtol=1e-6)
            np.testing.assert_allclose(grad, 2 * x, rtol=1e-5)


class TestSPEncoder:
    @pytest.mark.parametrize("sp", [2, 4])
    def test_matches_serial(self, sp):
        serial = ViTEncoder(D, DEPTH, HEADS, np.random.default_rng(42))
        state = serial.state_dict()
        x = RNG.standard_normal((B, N, D)).astype(np.float32)
        expect = serial(Tensor(x)).data

        def fn(comm):
            ctx = SPContext(comm)
            enc = SPViTEncoder(ctx, D, DEPTH, HEADS, state)
            out = enc(scatter_sequence(ctx, Tensor(x)))
            return gather_sequence(ctx, out).data.copy()

        for out in run_spmd(fn, sp):
            np.testing.assert_allclose(out, expect, rtol=3e-4, atol=3e-5)

    def test_input_gradients_match_serial(self):
        serial = ViTEncoder(D, DEPTH, HEADS, np.random.default_rng(42))
        state = serial.state_dict()
        x = RNG.standard_normal((B, N, D)).astype(np.float32)
        xt = Tensor(x, requires_grad=True)
        (serial(xt) ** 2).mean().backward()
        expect = xt.grad.copy()

        def fn(comm):
            ctx = SPContext(comm)
            enc = SPViTEncoder(ctx, D, DEPTH, HEADS, state)
            xi = Tensor(x, requires_grad=True)
            out = gather_sequence(ctx, enc(scatter_sequence(ctx, xi)))
            (out ** 2).mean().backward()
            return xi.grad.copy()

        for grad in run_spmd(fn, 2):
            np.testing.assert_allclose(grad, expect, rtol=2e-3, atol=2e-5)

    def test_communication_is_all_to_all_only_inside_blocks(self):
        serial = ViTEncoder(D, DEPTH, HEADS, np.random.default_rng(42))
        state = serial.state_dict()
        x = RNG.standard_normal((B, N, D)).astype(np.float32)

        def fn(comm):
            ctx = SPContext(comm)
            enc = SPViTEncoder(ctx, D, DEPTH, HEADS, state)
            enc(scatter_sequence(ctx, Tensor(x)))
            return None

        _, world = run_spmd_world(fn, 2)
        hist = world.traffic.ops_histogram()
        # 6 all-to-alls per block (q, k, v in; out back = 4 calls) × depth × ranks
        assert set(hist) == {"all_to_all"}
        assert hist["all_to_all"] == 4 * DEPTH * 2


class TestDCHAGWithSP:
    def test_composition(self):
        """§3.5: D-CHAG front-end + SP encoder over the same group."""
        C, IMG, P = 8, 16, 4
        imgs = RNG.standard_normal((B, C, IMG, IMG)).astype(np.float32)
        serial_enc = ViTEncoder(D, DEPTH, HEADS, np.random.default_rng(3))
        state = serial_enc.state_dict()

        def fn(comm):
            cfg = DCHAGConfig(channels=C, patch=P, dim=D, heads=HEADS, kind="linear")
            frontend = DCHAG(comm, None, cfg, rng_seed=9)
            ctx = SPContext(comm)
            enc = SPViTEncoder(ctx, D, DEPTH, HEADS, state)
            tokens = frontend(imgs)                       # replicated [B, N, D]
            shard = scatter_sequence(ctx, tokens)          # [B, N/sp, D]
            out = gather_sequence(ctx, enc(shard))
            loss = (out * out).mean()
            loss.backward()
            return out.data.copy(), loss.item()

        res = run_spmd(fn, 4)
        for out, loss in res[1:]:
            np.testing.assert_allclose(out, res[0][0], rtol=1e-4, atol=1e-5)
            assert loss == pytest.approx(res[0][1], rel=1e-5)
