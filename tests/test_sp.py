"""Sequence parallelism tests (paper §3.5: D-CHAG composes with SP)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DCHAG, DCHAGConfig
from repro.dist import SpmdError, run_spmd, run_spmd_world
from repro.nn import ViTEncoder
from repro.parallel import (
    SPContext,
    SPViTEncoder,
    all_to_all_heads_to_tokens,
    all_to_all_tokens_to_heads,
    gather_sequence,
    scatter_sequence,
)
from repro.parallel.sp import SP_A2A_PHASE, SP_GATHER_PHASE, SP_SCATTER_PHASE
from repro.tensor import Tensor

RNG = np.random.default_rng(61)
D, DEPTH, HEADS, B, N = 32, 2, 4, 2, 8


class TestScatterGather:
    def test_scatter_takes_contiguous_shards(self):
        x = RNG.standard_normal((B, N, D)).astype(np.float32)

        def fn(comm):
            ctx = SPContext(comm)
            return scatter_sequence(ctx, Tensor(x)).data.copy()

        res = run_spmd(fn, 2)
        np.testing.assert_allclose(res[0], x[:, :4])
        np.testing.assert_allclose(res[1], x[:, 4:])

    def test_scatter_then_gather_is_identity(self):
        x = RNG.standard_normal((B, N, D)).astype(np.float32)

        def fn(comm):
            ctx = SPContext(comm)
            xi = Tensor(x, requires_grad=True)
            out = gather_sequence(ctx, scatter_sequence(ctx, xi))
            out.sum().backward()
            return out.data.copy(), xi.grad.copy()

        for out, grad in run_spmd(fn, 4):
            np.testing.assert_allclose(out, x, rtol=1e-6)
            np.testing.assert_allclose(grad, 1.0)

    def test_scatter_indivisible_raises(self):
        from repro.dist import SpmdError

        def fn(comm):
            scatter_sequence(SPContext(comm), Tensor(np.zeros((1, 5, 4), dtype=np.float32)))

        with pytest.raises(SpmdError):
            run_spmd(fn, 2)


class TestAllToAll:
    def test_tokens_to_heads_roundtrip(self):
        x = RNG.standard_normal((B, HEADS, N // 2, 8)).astype(np.float32)

        def fn(comm):
            ctx = SPContext(comm)
            xi = Tensor(x, requires_grad=True)
            flipped = all_to_all_tokens_to_heads(ctx, xi)     # [B, h/sp, N, hd]
            assert flipped.shape == (B, HEADS // 2, N, 8)
            back = all_to_all_heads_to_tokens(ctx, flipped)
            (back * back).sum().backward()
            return back.data.copy(), xi.grad.copy()

        for back, grad in run_spmd(fn, 2):
            np.testing.assert_allclose(back, x, rtol=1e-6)
            np.testing.assert_allclose(grad, 2 * x, rtol=1e-5)


class TestSPEncoder:
    @pytest.mark.parametrize("sp", [2, 4])
    def test_matches_serial(self, sp):
        serial = ViTEncoder(D, DEPTH, HEADS, np.random.default_rng(42))
        state = serial.state_dict()
        x = RNG.standard_normal((B, N, D)).astype(np.float32)
        expect = serial(Tensor(x)).data

        def fn(comm):
            ctx = SPContext(comm)
            enc = SPViTEncoder(ctx, D, DEPTH, HEADS, state)
            out = enc(scatter_sequence(ctx, Tensor(x)))
            return gather_sequence(ctx, out).data.copy()

        for out in run_spmd(fn, sp):
            np.testing.assert_allclose(out, expect, rtol=3e-4, atol=3e-5)

    def test_input_gradients_match_serial(self):
        serial = ViTEncoder(D, DEPTH, HEADS, np.random.default_rng(42))
        state = serial.state_dict()
        x = RNG.standard_normal((B, N, D)).astype(np.float32)
        xt = Tensor(x, requires_grad=True)
        (serial(xt) ** 2).mean().backward()
        expect = xt.grad.copy()

        def fn(comm):
            ctx = SPContext(comm)
            enc = SPViTEncoder(ctx, D, DEPTH, HEADS, state)
            xi = Tensor(x, requires_grad=True)
            out = gather_sequence(ctx, enc(scatter_sequence(ctx, xi)))
            (out ** 2).mean().backward()
            return xi.grad.copy()

        for grad in run_spmd(fn, 2):
            np.testing.assert_allclose(grad, expect, rtol=2e-3, atol=2e-5)

    def test_communication_is_all_to_all_only_inside_blocks(self):
        serial = ViTEncoder(D, DEPTH, HEADS, np.random.default_rng(42))
        state = serial.state_dict()
        x = RNG.standard_normal((B, N, D)).astype(np.float32)

        def fn(comm):
            ctx = SPContext(comm)
            enc = SPViTEncoder(ctx, D, DEPTH, HEADS, state)
            enc(scatter_sequence(ctx, Tensor(x)))
            return None

        _, world = run_spmd_world(fn, 2)
        hist = world.traffic.ops_histogram()
        # 6 all-to-alls per block (q, k, v in; out back = 4 calls) × depth × ranks
        assert set(hist) == {"all_to_all"}
        assert hist["all_to_all"] == 4 * DEPTH * 2


class TestDCHAGWithSP:
    def test_composition(self):
        """§3.5: D-CHAG front-end + SP encoder over the same group."""
        C, IMG, P = 8, 16, 4
        imgs = RNG.standard_normal((B, C, IMG, IMG)).astype(np.float32)
        serial_enc = ViTEncoder(D, DEPTH, HEADS, np.random.default_rng(3))
        state = serial_enc.state_dict()

        def fn(comm):
            cfg = DCHAGConfig(channels=C, patch=P, dim=D, heads=HEADS, kind="linear")
            frontend = DCHAG(comm, None, cfg, rng_seed=9)
            ctx = SPContext(comm)
            enc = SPViTEncoder(ctx, D, DEPTH, HEADS, state)
            tokens = frontend(imgs)                       # replicated [B, N, D]
            shard = scatter_sequence(ctx, tokens)          # [B, N/sp, D]
            out = gather_sequence(ctx, enc(shard))
            loss = (out * out).mean()
            loss.backward()
            return out.data.copy(), loss.item()

        res = run_spmd(fn, 4)
        for out, loss in res[1:]:
            np.testing.assert_allclose(out, res[0][0], rtol=1e-4, atol=1e-5)
            assert loss == pytest.approx(res[0][1], rel=1e-5)


class TestSPParityHypothesis:
    """Forward + gradient parity vs the serial encoder over drawn shapes."""

    @settings(max_examples=8, deadline=None)
    @given(
        sp=st.sampled_from([2, 4]),
        batch=st.integers(1, 3),
        seq_mult=st.integers(1, 3),
        head_dim=st.sampled_from([4, 8]),
    )
    def test_forward_and_grad_match_serial(self, sp, batch, seq_mult, head_dim):
        heads = sp  # minimal legal head count: heads % sp == 0
        dim = heads * head_dim
        n = sp * seq_mult  # tokens % sp == 0 by construction
        serial = ViTEncoder(dim, 1, heads, np.random.default_rng(7))
        state = serial.state_dict()
        x = np.random.default_rng(11).standard_normal((batch, n, dim)).astype(np.float32)
        xt = Tensor(x, requires_grad=True)
        (serial(xt) ** 2).mean().backward()
        expect_out = serial(Tensor(x)).data
        expect_grad = xt.grad.copy()

        def fn(comm):
            ctx = SPContext(comm)
            enc = SPViTEncoder(ctx, dim, 1, heads, state)
            xi = Tensor(x, requires_grad=True)
            out = gather_sequence(ctx, enc(scatter_sequence(ctx, xi)))
            (out ** 2).mean().backward()
            return out.data.copy(), xi.grad.copy()

        for out, grad in run_spmd(fn, sp):
            np.testing.assert_allclose(out, expect_out, rtol=3e-4, atol=3e-5)
            np.testing.assert_allclose(grad, expect_grad, rtol=2e-3, atol=2e-5)


class TestDivisibility:
    def test_a2a_indivisible_axis_raises(self):
        def fn(comm):
            ctx = SPContext(comm)
            # 3 heads over sp=2: the head axis cannot be split evenly.
            all_to_all_tokens_to_heads(ctx, Tensor(np.zeros((1, 3, 4, 4), np.float32)))

        with pytest.raises(SpmdError):
            run_spmd(fn, 2)

    def test_attention_heads_indivisible_raises(self):
        from repro.parallel.sp import SPSelfAttention

        def fn(comm):
            ctx = SPContext(comm)
            d = 6
            SPSelfAttention(
                ctx, d, 3,
                np.zeros((d, 3 * d), np.float32), np.zeros(3 * d, np.float32),
                np.zeros((d, d), np.float32), np.zeros(d, np.float32),
            )

        with pytest.raises(SpmdError):
            run_spmd(fn, 2)

    def test_schedule_indivisible_tokens_raises(self):
        from repro.perf import ParallelPlan, Workload, step_comm_schedule
        from repro.perf.modelcfg import ModelConfig

        model = ModelConfig("odd", dim=32, depth=1, heads=4, patch=4, image_hw=(4, 12))
        assert model.tokens == 3
        with pytest.raises(ValueError, match="not divisible by sp"):
            step_comm_schedule(
                model, Workload(channels=4, batch=1),
                ParallelPlan("tp", tp=1, sp=2, fsdp=1, dp=1),
            )


class TestRoundTrips:
    def test_gather_then_scatter_returns_the_shard(self):
        """gather_sequence and scatter_sequence are conjugate both ways."""
        x = RNG.standard_normal((B, N, D)).astype(np.float32)

        def fn(comm):
            ctx = SPContext(comm)
            shard = scatter_sequence(ctx, Tensor(x, requires_grad=True))
            ref = shard.data.copy()
            back = scatter_sequence(ctx, gather_sequence(ctx, shard))
            (back * back).sum().backward()
            return back.data.copy(), ref

        for back, ref in run_spmd(fn, 4):
            np.testing.assert_allclose(back, ref, rtol=1e-6)


class TestBufferPooling:
    @staticmethod
    def _train_step(ctx, enc, x):
        xi = Tensor(x, requires_grad=True)
        out = gather_sequence(ctx, enc(scatter_sequence(ctx, xi)))
        (out ** 2).mean().backward()
        return out.data.copy(), xi.grad.copy()

    def test_pooled_matches_unpooled_bitwise(self):
        serial = ViTEncoder(D, DEPTH, HEADS, np.random.default_rng(42))
        state = serial.state_dict()
        x = RNG.standard_normal((B, N, D)).astype(np.float32)

        def fn_with(pool):
            def fn(comm):
                ctx = SPContext(comm, pool=pool)
                enc = SPViTEncoder(ctx, D, DEPTH, HEADS, state)
                # Two steps so the pooled path covers both the allocating
                # first visit and the steady-state out= reuse.
                self._train_step(ctx, enc, x)
                return self._train_step(ctx, enc, x)
            return fn

        pooled = run_spmd(fn_with(True), 2)
        plain = run_spmd(fn_with(False), 2)
        for (po, pg), (uo, ug) in zip(pooled, plain):
            np.testing.assert_array_equal(po, uo)
            np.testing.assert_array_equal(pg, ug)

    def test_steady_state_takes_zero_pool_misses(self):
        serial = ViTEncoder(D, DEPTH, HEADS, np.random.default_rng(42))
        state = serial.state_dict()
        x = RNG.standard_normal((B, N, D)).astype(np.float32)

        def fn(comm):
            ctx = SPContext(comm)
            enc = SPViTEncoder(ctx, D, DEPTH, HEADS, state)
            # Step 1 learns every site's peer shapes (allocating path, no
            # takes); step 2 is the first pooled pass and fills the pool.
            self._train_step(ctx, enc, x)
            self._train_step(ctx, enc, x)
            before = comm.pool.misses
            self._train_step(ctx, enc, x)
            return comm.pool.misses - before, comm.pool.hits

        for fresh_misses, hits in run_spmd(fn, 2):
            assert fresh_misses == 0
            assert hits > 0

    def test_single_peer_shape_drift_raises_loudly(self):
        def fn(comm):
            ctx = SPContext(comm)
            shapes = [(B, 2, 4, 4), (B, 2, 8, 4)]
            first = Tensor(np.zeros(shapes[0], np.float32))
            all_to_all_tokens_to_heads(ctx, first, pool_key="sp-drift-test")
            # Rank 0 replays the cached site; rank 1 drifts to a new shape.
            drifted = Tensor(np.zeros(shapes[comm.rank], np.float32))
            all_to_all_tokens_to_heads(ctx, drifted, pool_key="sp-drift-test")

        with pytest.raises(SpmdError):
            run_spmd(fn, 2)


class TestPhaseTagging:
    def _world(self):
        serial = ViTEncoder(D, DEPTH, HEADS, np.random.default_rng(42))
        state = serial.state_dict()
        x = RNG.standard_normal((B, N, D)).astype(np.float32)

        def fn(comm):
            ctx = SPContext(comm)
            enc = SPViTEncoder(ctx, D, DEPTH, HEADS, state)
            xi = Tensor(x, requires_grad=True)
            out = gather_sequence(ctx, enc(scatter_sequence(ctx, xi)))
            (out ** 2).mean().backward()

        _, world = run_spmd_world(fn, 2)
        return world

    def test_every_sp_collective_is_phase_tagged(self):
        traffic = self._world().traffic
        # 4 a2a per block forward + 4 backward, all stamped sp_a2a.
        assert traffic.count(op="all_to_all") == 8 * DEPTH * 2
        assert traffic.count(op="all_to_all", phase=SP_A2A_PHASE) == 8 * DEPTH * 2
        # One boundary gather each way per rank, on their own phases.
        assert traffic.count(op="all_gather", phase=SP_GATHER_PHASE) == 2
        assert traffic.count(op="all_gather", phase=SP_SCATTER_PHASE) == 2
        # Nothing SP emits rides an untagged phase.
        for phase in ("forward", "backward", ""):
            assert traffic.count(phase=phase) == 0

    def test_live_wrapper_wire_bytes_match_analytic_schedule(self):
        """The live SP world's traffic equals the analytic sp events priced
        by the CostModel — per op x phase, exact bytes (fp32 activations)."""
        from repro.perf import (
            CostModel,
            ParallelPlan,
            Precision,
            Workload,
            frontier,
            step_comm_schedule,
        )
        from repro.perf.calibrate import AXIS_PHASES
        from repro.perf.modelcfg import ModelConfig

        traffic = self._world().traffic
        model = ModelConfig(
            "sp-live", dim=D, depth=DEPTH, heads=HEADS, patch=4, image_hw=(8, 16)
        )
        assert model.tokens == N
        plan = ParallelPlan("tp", tp=1, sp=2, fsdp=1, dp=1)
        events = step_comm_schedule(
            model, Workload(channels=1, batch=B), plan,
            precision=Precision(act_bytes=4),  # the live wrapper is fp32
        )
        cost = CostModel(frontier())
        sp_events = [ev for ev in events if ev.axis.startswith("sp")]
        assert {ev.axis for ev in sp_events} == {"sp", "sp_gather", "sp_scatter"}
        for ev in sp_events:
            predicted = cost.wire_bytes(ev.op, ev.payload_bytes, plan.sp) * ev.count
            measured = traffic.wire_bytes(op=ev.op, phase=AXIS_PHASES[ev.axis], rank=0)
            assert measured == predicted, (ev.axis, measured, predicted)
