"""Smoke tests: every example script runs end-to-end (smallest settings)."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, argv: list[str]) -> None:
    old_argv = sys.argv
    sys.argv = [name] + argv
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


@pytest.mark.slow
def test_quickstart():
    run_example("quickstart.py", [])


@pytest.mark.slow
def test_hyperspectral_mae():
    run_example(
        "hyperspectral_mae.py",
        ["--channels", "8", "--steps", "6", "--dim", "32", "--batch", "4"],
    )


@pytest.mark.slow
def test_weather_forecast():
    run_example("weather_forecast.py", ["--steps", "4", "--batch", "4", "--dim", "32"])


@pytest.mark.slow
def test_hybrid_training():
    run_example("hybrid_training.py", ["--steps", "3", "--tp", "2", "--dp", "2"])


@pytest.mark.slow
def test_multimodal_fusion():
    run_example("multimodal_fusion.py", [])


@pytest.mark.slow
def test_elastic_training(tmp_path):
    run_example(
        "elastic_training.py",
        ["--world", "3", "--steps", "8", "--checkpoint-every", "2",
         "--kill-rank", "1", "--kill-step", "5", "--rejoin-step", "7",
         "--ckpt-dir", str(tmp_path)],
    )


@pytest.mark.slow
def test_scaling_planner():
    run_example("scaling_planner.py", ["--model", "1.7B", "--channels", "512", "--gpus", "64"])


@pytest.mark.slow
def test_overlap_calibration():
    run_example("overlap_calibration.py", ["--steps", "2"])


@pytest.mark.slow
def test_trace_export(tmp_path):
    run_example(
        "trace_export.py",
        ["--steps", "2", "--out", str(tmp_path / "step.trace.json")],
    )
