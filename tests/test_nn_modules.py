"""Tests for the Module system and primitive layers."""

import numpy as np
import pytest

from repro.nn import (
    MLP,
    ChannelIDEmbedding,
    Dropout,
    Identity,
    LayerNorm,
    Linear,
    MetadataEmbedding,
    Module,
    ModuleList,
    PositionalEmbedding,
    TransformerBlock,
    ViTEncoder,
    sincos_positions,
)
from repro.tensor import Tensor

RNG = np.random.default_rng(3)


class TestModuleSystem:
    def test_parameter_registration(self):
        lin = Linear(4, 8, RNG)
        names = dict(lin.named_parameters())
        assert set(names) == {"weight", "bias"}
        assert lin.num_parameters() == 4 * 8 + 8

    def test_nested_names(self):
        mlp = MLP(4, 16, RNG)
        names = {n for n, _ in mlp.named_parameters()}
        assert "fc1.weight" in names and "fc2.bias" in names

    def test_modulelist_registration(self):
        enc = ViTEncoder(8, 3, 2, RNG)
        names = {n for n, _ in enc.named_parameters()}
        assert "blocks.0.attn.qkv.weight" in names
        assert "blocks.2.mlp.fc2.bias" in names
        assert len(list(enc.blocks)) == 3
        assert isinstance(enc.blocks[1], TransformerBlock)

    def test_state_dict_roundtrip(self):
        a = MLP(4, 8, np.random.default_rng(0))
        b = MLP(4, 8, np.random.default_rng(99))
        b.load_state_dict(a.state_dict())
        x = Tensor(RNG.standard_normal((2, 4)).astype(np.float32))
        np.testing.assert_allclose(a(x).data, b(x).data)

    def test_state_dict_mismatch_raises(self):
        a = Linear(4, 8, RNG)
        with pytest.raises(KeyError):
            a.load_state_dict({"weight": np.zeros((4, 8))})
        with pytest.raises(ValueError):
            a.load_state_dict({"weight": np.zeros((8, 4)), "bias": np.zeros(8)})

    def test_train_eval_propagates(self):
        mlp = MLP(4, 8, RNG, dropout=0.5)
        mlp.eval()
        assert not mlp.training and not mlp.drop.training
        mlp.train()
        assert mlp.drop.training

    def test_zero_grad(self):
        lin = Linear(3, 3, RNG)
        out = lin(Tensor(np.ones((1, 3), dtype=np.float32)))
        out.sum().backward()
        assert lin.weight.grad is not None
        lin.zero_grad()
        assert lin.weight.grad is None

    def test_named_modules(self):
        enc = ViTEncoder(8, 2, 2, RNG)
        mods = dict(enc.named_modules())
        assert "blocks.0.attn" in mods and "norm" in mods


class TestLayers:
    def test_linear_matches_numpy(self):
        lin = Linear(5, 3, RNG)
        x = RNG.standard_normal((4, 5)).astype(np.float32)
        np.testing.assert_allclose(
            lin(Tensor(x)).data, x @ lin.weight.data + lin.bias.data, rtol=1e-5
        )

    def test_linear_no_bias(self):
        lin = Linear(5, 3, RNG, bias=False)
        assert not hasattr(lin, "bias") or "bias" not in dict(lin.named_parameters())

    def test_linear_explicit_weight_shape_check(self):
        with pytest.raises(ValueError):
            Linear(5, 3, weight=np.zeros((3, 5)))

    def test_layernorm_shapes_and_grads(self):
        ln = LayerNorm(16)
        x = Tensor(RNG.standard_normal((2, 7, 16)).astype(np.float32), requires_grad=True)
        out = ln(x)
        assert out.shape == (2, 7, 16)
        out.sum().backward()
        assert ln.weight.grad is not None and x.grad is not None

    def test_dropout_eval_identity(self):
        d = Dropout(0.9, RNG)
        d.eval()
        x = Tensor(np.ones((4, 4), dtype=np.float32))
        assert d(x) is x

    def test_identity(self):
        x = Tensor(np.ones(3))
        assert Identity()(x) is x


class TestEmbeddings:
    def test_channel_id_adds_per_channel(self):
        emb = ChannelIDEmbedding(4, 8, RNG)
        tokens = Tensor(np.zeros((2, 4, 5, 8), dtype=np.float32))
        out = emb(tokens)
        for c in range(4):
            np.testing.assert_allclose(out.data[0, c, 0], emb.table.data[c])

    def test_channel_id_wrong_channels(self):
        emb = ChannelIDEmbedding(4, 8, RNG)
        with pytest.raises(ValueError):
            emb(Tensor(np.zeros((1, 5, 2, 8), dtype=np.float32)))

    def test_positional_learned_vs_fixed(self):
        learned = PositionalEmbedding(10, 8, RNG)
        fixed = PositionalEmbedding(10, 8, learned=False)
        assert learned.table.requires_grad
        assert not fixed.table.requires_grad
        np.testing.assert_allclose(fixed.table.data, sincos_positions(10, 8))

    def test_positional_truncates_to_sequence(self):
        pos = PositionalEmbedding(10, 8, RNG)
        x = Tensor(np.zeros((2, 6, 8), dtype=np.float32))
        out = pos(x)
        np.testing.assert_allclose(out.data[0], pos.table.data[:6])

    def test_positional_too_long_raises(self):
        pos = PositionalEmbedding(4, 8, RNG)
        with pytest.raises(ValueError):
            pos(Tensor(np.zeros((1, 5, 8), dtype=np.float32)))

    def test_sincos_even_dim_required(self):
        with pytest.raises(ValueError):
            sincos_positions(4, 7)

    def test_metadata_embedding_shape(self):
        meta = MetadataEmbedding(2, 8, RNG)
        out = meta(np.array([[0.5, 1.0], [0.1, 2.0]], dtype=np.float32))
        assert out.shape == (2, 1, 8)

    def test_metadata_wrong_fields(self):
        meta = MetadataEmbedding(2, 8, RNG)
        with pytest.raises(ValueError):
            meta(np.zeros((2, 3), dtype=np.float32))


class TestTransformer:
    def test_block_preserves_shape(self):
        blk = TransformerBlock(16, 4, RNG)
        x = Tensor(RNG.standard_normal((2, 9, 16)).astype(np.float32))
        assert blk(x).shape == (2, 9, 16)

    def test_encoder_depth(self):
        enc = ViTEncoder(16, 4, 4, RNG)
        assert enc.depth == 4 and len(enc.blocks) == 4

    def test_backward_reaches_all_params(self):
        enc = ViTEncoder(16, 2, 4, RNG)
        x = Tensor(RNG.standard_normal((1, 4, 16)).astype(np.float32))
        enc(x).sum().backward()
        for name, p in enc.named_parameters():
            assert p.grad is not None, name

    def test_heads_must_divide(self):
        with pytest.raises(ValueError):
            TransformerBlock(16, 5, RNG)
