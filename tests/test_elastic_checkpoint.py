"""Sharded checkpoints: save/load round-trips, resharding, consolidation.

Locks the elastic subsystem's core guarantee: a checkpoint saved at world
size N consolidates — and, after resharding, loads — **bitwise identically**
at any world size M, optimizer moments included.
"""

import numpy as np
import pytest

from repro.dist import run_spmd, run_spmd_world
from repro.elastic import (
    checkpoint_dir,
    checkpoint_nbytes,
    consolidate,
    drain_writers,
    latest_checkpoint,
    load_manifest,
    load_sharded,
    prune_checkpoints,
    reshard,
    save_sharded,
    writer_for,
)
from repro.nn import MLP, load_checkpoint, read_manifest, save_checkpoint
from repro.parallel import DeviceMesh, FSDPModel
from repro.tensor import AdamW, Tensor

DIM, HID = 6, 10  # deliberately not divisible by 4: exercises flat-param padding


def make_module(seed=7):
    return MLP(DIM, HID, np.random.default_rng(seed))


def make_batch(seed=3):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((4, DIM)).astype(np.float32)


def train_and_save(comm, root, steps=2):
    """A few AdamW steps on an FSDP model, then a sharded save; returns the
    consolidated state dict for comparison."""
    module = make_module()
    model = FSDPModel(comm, None, module)
    opt = AdamW(model.shard_parameters(), lr=1e-2)
    x = make_batch()
    for _ in range(steps):
        model.zero_grad()
        (model(Tensor(x)) ** 2).mean().backward()
        opt.step()
    save_sharded(root, model, opt, step=steps)
    return model.consolidated_state_dict()


class TestSaveLoadRoundtrip:
    def test_load_restores_bitwise_and_optimizer(self, tmp_path):
        def fn(comm):
            expect = train_and_save(comm, tmp_path)
            fresh = FSDPModel(comm, None, make_module(seed=99))
            opt = AdamW(fresh.shard_parameters(), lr=1e-2)
            manifest = load_sharded(checkpoint_dir(tmp_path, 2), fresh, opt)
            got = fresh.consolidated_state_dict()
            same = all(np.array_equal(got[k], expect[k]) for k in expect)
            return same, manifest["step"], opt.state_dict()["step"]

        for same, step, adam_step in run_spmd(fn, 4):
            assert same
            assert step == 2
            assert adam_step == 2  # moments resumed mid-trajectory

    def test_consolidate_matches_model_consolidated_state_dict(self, tmp_path):
        def fn(comm):
            return train_and_save(comm, tmp_path)

        expect = run_spmd(fn, 4)[0]
        got = consolidate(checkpoint_dir(tmp_path, 2))
        assert got.keys() == expect.keys()
        for k in expect:
            np.testing.assert_array_equal(got[k], expect[k])

    def test_world_size_mismatch_requires_reshard(self, tmp_path):
        def save(comm):
            train_and_save(comm, tmp_path)

        run_spmd(save, 4)

        def load_wrong(comm):
            model = FSDPModel(comm, None, make_module())
            load_sharded(checkpoint_dir(tmp_path, 2), model)

        from repro.dist import SpmdError

        with pytest.raises(SpmdError, match="reshard"):
            run_spmd(load_wrong, 2)


class TestReshard:
    @pytest.mark.parametrize("new_world", [1, 2])
    def test_reshard_consolidates_bitwise(self, tmp_path, new_world):
        """The acceptance criterion: a world-size-4 checkpoint loads
        bitwise-identically at world sizes 1 and 2."""

        def save(comm):
            return train_and_save(comm, tmp_path)

        expect = run_spmd(save, 4)[0]
        src = checkpoint_dir(tmp_path, 2)
        dst, moved = reshard(src, new_world)
        assert dst != src and moved > 0
        assert load_manifest(dst)["world_size"] == new_world
        got = consolidate(dst)
        for k in expect:
            np.testing.assert_array_equal(got[k], expect[k])

        # And a live model at the new world size restores the same values.
        def load(comm):
            model = FSDPModel(comm, None, make_module(seed=123))
            opt = AdamW(model.shard_parameters(), lr=1e-2)
            load_sharded(dst, model, opt)
            return model.consolidated_state_dict()

        for state in run_spmd(load, new_world):
            for k in expect:
                np.testing.assert_array_equal(state[k], expect[k])

    def test_reshard_same_world_is_a_no_op(self, tmp_path):
        def save(comm):
            train_and_save(comm, tmp_path)

        run_spmd(save, 4)
        src = checkpoint_dir(tmp_path, 2)
        dst, moved = reshard(src, 4)
        assert dst == src and moved == 0

    def test_reshard_chain_stays_bitwise(self, tmp_path):
        """4 → 3 → 1 (two hops, uneven padding in between) stays exact."""

        def save(comm):
            return train_and_save(comm, tmp_path)

        expect = run_spmd(save, 4)[0]
        hop1, _ = reshard(checkpoint_dir(tmp_path, 2), 3)
        hop2, _ = reshard(hop1, 1)
        got = consolidate(hop2)
        for k in expect:
            np.testing.assert_array_equal(got[k], expect[k])

    def test_optimizer_state_reshards_with_params(self, tmp_path):
        def save(comm):
            train_and_save(comm, tmp_path)

        run_spmd(save, 4)
        src = checkpoint_dir(tmp_path, 2)
        dst, _ = reshard(src, 2)

        def load(comm):
            model = FSDPModel(comm, None, make_module())
            opt = AdamW(model.shard_parameters(), lr=1e-2)
            load_sharded(dst, model, opt)
            st = opt.state_dict()
            return st["step"], sum(float(np.abs(m).sum()) for m in st["m"])

        for step, m_mass in run_spmd(load, 2):
            assert step == 2
            assert m_mass > 0.0  # moments actually travelled


class TestConsolidatedVsSerial:
    def test_consolidated_state_dict_matches_serial_bitwise(self):
        """Satellite: FSDP consolidation ≡ the serial module's state dict.

        A whole-module FSDP wrap has one unit whose parameter names are the
        module's own dotted names, so ``unit0.<name>`` maps 1:1.
        """
        serial = make_module()
        expect = serial.state_dict()

        def fn(comm):
            return FSDPModel(comm, None, make_module()).consolidated_state_dict()

        for world in (1, 2, 4):
            got = run_spmd(fn, world)[0]
            assert set(got) == {f"unit0.{k}" for k in expect}
            for k in expect:
                np.testing.assert_array_equal(got[f"unit0.{k}"], expect[k])


class TestLatestCheckpoint:
    def test_picks_highest_step_and_skips_torn_dirs(self, tmp_path):
        def fn(comm):
            module = make_module()
            model = FSDPModel(comm, None, module)
            for step in (1, 3, 5):
                save_sharded(tmp_path, model, step=step)

        run_spmd(fn, 2)
        # Tear step 5: a save that died before its manifest landed.
        (checkpoint_dir(tmp_path, 5) / "manifest.json").unlink()
        assert latest_checkpoint(tmp_path) == checkpoint_dir(tmp_path, 3)
        # Tear step 3 differently: manifest present, shard file missing.
        (checkpoint_dir(tmp_path, 3) / "shard_0001.npz").unlink()
        assert latest_checkpoint(tmp_path) == checkpoint_dir(tmp_path, 1)

    def test_empty_root_returns_none(self, tmp_path):
        assert latest_checkpoint(tmp_path) is None
        assert latest_checkpoint(tmp_path / "missing") is None

    def test_checkpoint_nbytes_counts_params_and_moments(self, tmp_path):
        def fn(comm):
            model = FSDPModel(comm, None, make_module())
            opt = AdamW(model.shard_parameters(), lr=1e-2)
            (model(Tensor(make_batch())) ** 2).mean().backward()
            opt.step()
            save_sharded(tmp_path, model, opt, step=1)
            return sum(u.flat.shard.nbytes for u in model.units)

        per_rank = run_spmd(fn, 2)[0]
        # 2 ranks × (param + m + v) per unit shard.
        assert checkpoint_nbytes(checkpoint_dir(tmp_path, 1)) == 2 * 3 * per_rank


class TestDPDeduplication:
    def test_only_one_replica_writes(self, tmp_path):
        """On a dp×fsdp mesh, replicas hold identical shards; only dp==0
        writes, and the checkpoint's world size is the FSDP group size."""

        def fn(comm):
            mesh = DeviceMesh(comm, fsdp=2, dp=2)
            module = make_module()
            model = FSDPModel(comm, mesh.fsdp_group, module)
            save_sharded(tmp_path, model, step=1, write=mesh.coords.dp == 0)
            return model.consolidated_state_dict()

        results, _ = run_spmd_world(fn, 4)
        manifest = load_manifest(checkpoint_dir(tmp_path, 1))
        assert manifest["world_size"] == 2
        assert len(manifest["shards"]) == 2
        got = consolidate(checkpoint_dir(tmp_path, 1))
        for k in results[0]:
            np.testing.assert_array_equal(got[k], results[0][k])


class TestSerializationSuffix:
    def test_save_path_roundtrips_through_load(self, tmp_path):
        """Satellite: ``model.ckpt`` → ``model.ckpt.npz`` without the caller
        re-deriving the path — load accepts the original argument."""
        a, b = make_module(seed=1), make_module(seed=2)
        written = save_checkpoint(a, tmp_path / "model.ckpt")
        assert written == tmp_path / "model.ckpt.npz"
        # Load via the *original* (pre-derivation) path.
        load_checkpoint(b, tmp_path / "model.ckpt")
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_bare_and_npz_paths_roundtrip(self, tmp_path):
        a, b = make_module(seed=1), make_module(seed=2)
        save_checkpoint(a, tmp_path / "bare")
        load_checkpoint(b, tmp_path / "bare")
        c = make_module(seed=3)
        save_checkpoint(a, tmp_path / "exact.npz")
        load_checkpoint(c, tmp_path / "exact.npz")
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_embedded_manifest_roundtrips_and_stays_invisible(self, tmp_path):
        a, b = make_module(seed=1), make_module(seed=2)
        meta = {"step": 17, "world_size": 4, "note": "elastic"}
        path = save_checkpoint(a, tmp_path / "with_meta.ckpt", manifest=meta)
        assert read_manifest(tmp_path / "with_meta.ckpt") == meta
        # The reserved key must not leak into strict state-dict loading.
        load_checkpoint(b, path)
        plain = save_checkpoint(a, tmp_path / "plain")
        assert read_manifest(plain) is None

class TestAsyncCheckpointWriter:
    def test_async_save_bitwise_equals_sync(self, tmp_path):
        sync_root, async_root = tmp_path / "sync", tmp_path / "async"

        def fn(comm):
            module = make_module()
            model = FSDPModel(comm, None, module)
            opt = AdamW(model.shard_parameters(), lr=1e-2)
            x = make_batch()
            for _ in range(2):
                model.zero_grad()
                (model(Tensor(x)) ** 2).mean().backward()
                opt.step()
            save_sharded(sync_root, model, opt, step=2)
            save_sharded(async_root, model, opt, step=2, writer=writer_for(async_root))

        run_spmd(fn, 2)
        drain_writers(async_root)
        assert latest_checkpoint(async_root) == checkpoint_dir(async_root, 2)
        expect = consolidate(checkpoint_dir(sync_root, 2))
        got = consolidate(checkpoint_dir(async_root, 2))
        assert got.keys() == expect.keys()
        for k in expect:
            np.testing.assert_array_equal(got[k], expect[k])
        # Same manifests modulo nothing: digests agree, so either can serve
        # as the other's delta base.
        sm = load_manifest(checkpoint_dir(sync_root, 2))
        am = load_manifest(checkpoint_dir(async_root, 2))
        assert sm["digests"] == am["digests"]

    def test_staged_snapshot_is_immune_to_later_mutation(self, tmp_path):
        """The async writer copies at the barrier: training can stomp the
        live buffers on the very next step without corrupting the save."""

        def fn(comm):
            model = FSDPModel(comm, None, make_module())
            expect = model.consolidated_state_dict()
            save_sharded(tmp_path, model, step=1, writer=writer_for(tmp_path))
            for unit in model.units:
                unit.flat.shard.data += 123.0  # the "next step"
            return expect

        expect = run_spmd(fn, 2)[0]
        drain_writers(tmp_path)
        got = consolidate(checkpoint_dir(tmp_path, 1))
        for k in expect:
            np.testing.assert_array_equal(got[k], expect[k])

    def test_kill_during_async_save_is_torn_not_latest(self, tmp_path):
        writer = writer_for(tmp_path)

        def fn(comm):
            model = FSDPModel(comm, None, make_module())
            save_sharded(tmp_path, model, step=1)  # durable sync baseline
            save_sharded(tmp_path, model, step=2, writer=writer)

        def boom(step_dir):
            raise OSError("simulated crash before manifest")

        writer.pre_manifest_hook = boom
        run_spmd(fn, 2)
        with pytest.raises(RuntimeError, match="async checkpoint write failed"):
            drain_writers(tmp_path)
        # Shards may exist but the manifest never landed: torn, skipped.
        assert not (checkpoint_dir(tmp_path, 2) / "manifest.json").exists()
        assert latest_checkpoint(tmp_path) == checkpoint_dir(tmp_path, 1)
        writer.close()

    def test_registry_recreates_closed_writers(self, tmp_path):
        w1 = writer_for(tmp_path)
        assert writer_for(tmp_path) is w1
        w1.close()
        w2 = writer_for(tmp_path)
        assert w2 is not w1
        drain_writers(tmp_path / "never-used")  # unconditional drain is a no-op
        w2.close()


class TestDeltaCheckpoints:
    def _train_two_units(self, comm, root):
        module = make_module()
        model = FSDPModel(comm, None, module, units=[module.fc1, module.fc2])
        opt = AdamW(model.shard_parameters(), lr=1e-2)
        x = make_batch()
        model.zero_grad()
        (model(Tensor(x)) ** 2).mean().backward()
        opt.step()
        return model, opt

    def test_delta_stores_only_changed_units_and_consolidates(self, tmp_path):
        def fn(comm):
            model, opt = self._train_two_units(comm, tmp_path)
            base = save_sharded(tmp_path, model, opt, step=1)
            # Only unit 0 changes; unit 1 (and its moments) is untouched.
            model.units[0].flat.shard.data += 1.0
            save_sharded(tmp_path, model, opt, step=2, delta_base=base)
            return model.consolidated_state_dict()

        expect = run_spmd(fn, 2)[0]
        delta_dir = checkpoint_dir(tmp_path, 2)
        manifest = load_manifest(delta_dir)
        assert manifest["delta"] == {"base": "step_00000001", "units": [0]}
        got = consolidate(delta_dir)  # reads unit1 through the base chain
        assert got.keys() == expect.keys()
        for k in expect:
            np.testing.assert_array_equal(got[k], expect[k])
        # The delta physically stores less than its base.
        assert checkpoint_nbytes(delta_dir) < checkpoint_nbytes(
            checkpoint_dir(tmp_path, 1)
        )

    def test_torn_base_hides_the_delta(self, tmp_path):
        def fn(comm):
            model, opt = self._train_two_units(comm, tmp_path)
            save_sharded(tmp_path, model, opt, step=1)
            base = save_sharded(tmp_path, model, opt, step=2)
            model.units[0].flat.shard.data += 1.0
            save_sharded(tmp_path, model, opt, step=3, delta_base=base)

        run_spmd(fn, 2)
        assert latest_checkpoint(tmp_path) == checkpoint_dir(tmp_path, 3)
        # Tear the base: the delta is unreadable even though its own
        # manifest landed, so latest falls back past *both*.
        (checkpoint_dir(tmp_path, 2) / "manifest.json").unlink()
        assert latest_checkpoint(tmp_path) == checkpoint_dir(tmp_path, 1)

    def test_reshard_materializes_delta_to_full(self, tmp_path):
        def fn(comm):
            model, opt = self._train_two_units(comm, tmp_path)
            base = save_sharded(tmp_path, model, opt, step=1)
            model.units[0].flat.shard.data += 1.0
            save_sharded(tmp_path, model, opt, step=2, delta_base=base)
            return model.consolidated_state_dict()

        expect = run_spmd(fn, 2)[0]
        # Same world size, but a delta still materializes (resume dirs must
        # be self-contained).
        dst, moved = reshard(checkpoint_dir(tmp_path, 2), 2, dst_dir=tmp_path / "full")
        assert moved > 0
        out = load_manifest(dst)
        assert "delta" not in out
        got = consolidate(dst)
        for k in expect:
            np.testing.assert_array_equal(got[k], expect[k])

    def test_delta_base_must_match_world_size(self, tmp_path):
        def save4(comm):
            model, opt = self._train_two_units(comm, tmp_path)
            save_sharded(tmp_path, model, opt, step=1)

        run_spmd(save4, 4)
        base = checkpoint_dir(tmp_path, 1)

        def save2(comm):
            model, opt = self._train_two_units(comm, tmp_path)
            save_sharded(tmp_path, model, opt, step=2, delta_base=base)

        from repro.dist import SpmdError

        with pytest.raises(SpmdError, match="world size"):
            run_spmd(save2, 2)


class TestPruneCheckpoints:
    def _save_steps(self, comm, root, steps, delta_from=None):
        module = make_module()
        model = FSDPModel(comm, None, module, units=[module.fc1, module.fc2])
        opt = AdamW(model.shard_parameters(), lr=1e-2)
        last = None
        for step in steps:
            model.units[0].flat.shard.data += 1.0
            last = save_sharded(
                root, model, opt, step=step,
                delta_base=last if delta_from and step >= delta_from else None,
            )

    def test_prune_keeps_last_k_and_removes_torn(self, tmp_path):
        run_spmd(lambda comm: self._save_steps(comm, tmp_path, (1, 2, 3, 4)), 2)
        (checkpoint_dir(tmp_path, 4) / "manifest.json").unlink()  # torn
        removed = prune_checkpoints(tmp_path, keep_last=2)
        assert checkpoint_dir(tmp_path, 1) in removed
        assert checkpoint_dir(tmp_path, 4) in removed  # torn goes too
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            "step_00000002", "step_00000003",
        ]
        assert latest_checkpoint(tmp_path) == checkpoint_dir(tmp_path, 3)

    def test_prune_preserves_delta_base_chains(self, tmp_path):
        # steps 1, 2 full; 3, 4 delta-chained onto 2.
        run_spmd(
            lambda comm: self._save_steps(comm, tmp_path, (1, 2, 3, 4), delta_from=3),
            2,
        )
        removed = prune_checkpoints(tmp_path, keep_last=1)
        # Keeping the step-4 delta forces its whole base chain (3 -> 2) to
        # survive; only the unrelated full step 1 is reclaimable.
        assert removed == [checkpoint_dir(tmp_path, 1)]
        got = consolidate(checkpoint_dir(tmp_path, 4))
        assert got  # chain still readable end-to-end

    def test_save_with_keep_last_prunes_inline(self, tmp_path):
        def fn(comm):
            module = make_module()
            model = FSDPModel(comm, None, module)
            for step in (1, 2, 3):
                save_sharded(tmp_path, model, step=step, keep_last=2)

        run_spmd(fn, 2)
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            "step_00000002", "step_00000003",
        ]

# -- property: reshard round trips are bitwise, moments included ------------
from pathlib import Path
import tempfile

from hypothesis import given, settings, strategies as st


@st.composite
def _reshard_cases(draw):
    # Dims deliberately allowed to be coprime with the world sizes, so the
    # flat-param padding differs between N and M (the hard case).
    dim = draw(st.integers(min_value=3, max_value=9))
    hid = draw(st.integers(min_value=4, max_value=12))
    n = draw(st.integers(min_value=1, max_value=4))
    m = draw(st.integers(min_value=1, max_value=4))
    return dim, hid, n, m


class TestReshardRoundTripProperty:
    @settings(max_examples=8, deadline=None)
    @given(_reshard_cases())
    def test_n_to_m_to_n_bitwise_params_and_moments(self, case):
        """Satellite: for arbitrary (dim, hid, N, M) — uneven splits
        included — reshard N→M→N restores every rank's parameter shard AND
        its AdamW moment shards bitwise."""
        dim, hid, n, m = case

        def make(seed):
            module = MLP(dim, hid, np.random.default_rng(seed))
            return module, [module.fc1, module.fc2]

        with tempfile.TemporaryDirectory() as td:
            root = Path(td)

            def save(comm):
                module, units = make(5)
                model = FSDPModel(comm, None, module, units=units)
                opt = AdamW(model.shard_parameters(), lr=1e-2)
                rng = np.random.default_rng(13)
                x = rng.standard_normal((4, dim)).astype(np.float32)
                for _ in range(2):
                    model.zero_grad()
                    (model(Tensor(x)) ** 2).mean().backward()
                    opt.step()
                save_sharded(root, model, opt, step=2)
                return model.consolidated_state_dict(), opt.state_dict()

            originals = run_spmd(save, n)
            hop, _ = reshard(checkpoint_dir(root, 2), m, dst_dir=root / "hop")
            back, _ = reshard(hop, n, dst_dir=root / "back")

            def load(comm):
                module, units = make(99)  # different init: loading must win
                model = FSDPModel(comm, None, module, units=units)
                opt = AdamW(model.shard_parameters(), lr=1e-2)
                load_sharded(back, model, opt)
                return model.consolidated_state_dict(), opt.state_dict()

            for (got_state, got_opt), (orig_state, orig_opt) in zip(
                run_spmd(load, n), originals
            ):
                for k in orig_state:
                    np.testing.assert_array_equal(got_state[k], orig_state[k])
                assert got_opt["step"] == orig_opt["step"]
                for key in ("m", "v"):
                    for got_arr, orig_arr in zip(got_opt[key], orig_opt[key]):
                        np.testing.assert_array_equal(got_arr, orig_arr)

    @settings(max_examples=5, deadline=None)
    @given(
        fsdp=st.integers(min_value=1, max_value=2),
        m=st.integers(min_value=1, max_value=3),
    )
    def test_dp_deduplicated_save_survives_round_trip(self, fsdp, m):
        """DP replicas dedup at save time (only dp==0 writes); the surviving
        FSDP-group checkpoint still round-trips fsdp→M→fsdp bitwise."""
        with tempfile.TemporaryDirectory() as td:
            root = Path(td)

            def save(comm):
                mesh = DeviceMesh(comm, fsdp=fsdp, dp=2)
                module = make_module()
                model = FSDPModel(comm, mesh.fsdp_group, module)
                opt = AdamW(model.shard_parameters(), lr=1e-2)
                (model(Tensor(make_batch())) ** 2).mean().backward()
                opt.step()
                save_sharded(root, model, opt, step=1, write=mesh.coords.dp == 0)
                return model.consolidated_state_dict()

            expect = run_spmd(save, fsdp * 2)[0]
            assert load_manifest(checkpoint_dir(root, 1))["world_size"] == fsdp
            hop, _ = reshard(checkpoint_dir(root, 1), m, dst_dir=root / "hop")
            back, _ = reshard(hop, fsdp, dst_dir=root / "back")
            got = consolidate(back)
            assert got.keys() == expect.keys()
            for k in expect:
                np.testing.assert_array_equal(got[k], expect[k])
