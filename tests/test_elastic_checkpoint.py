"""Sharded checkpoints: save/load round-trips, resharding, consolidation.

Locks the elastic subsystem's core guarantee: a checkpoint saved at world
size N consolidates — and, after resharding, loads — **bitwise identically**
at any world size M, optimizer moments included.
"""

import numpy as np
import pytest

from repro.dist import run_spmd, run_spmd_world
from repro.elastic import (
    checkpoint_dir,
    checkpoint_nbytes,
    consolidate,
    latest_checkpoint,
    load_manifest,
    load_sharded,
    reshard,
    save_sharded,
)
from repro.nn import MLP, load_checkpoint, read_manifest, save_checkpoint
from repro.parallel import DeviceMesh, FSDPModel
from repro.tensor import AdamW, Tensor

DIM, HID = 6, 10  # deliberately not divisible by 4: exercises flat-param padding


def make_module(seed=7):
    return MLP(DIM, HID, np.random.default_rng(seed))


def make_batch(seed=3):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((4, DIM)).astype(np.float32)


def train_and_save(comm, root, steps=2):
    """A few AdamW steps on an FSDP model, then a sharded save; returns the
    consolidated state dict for comparison."""
    module = make_module()
    model = FSDPModel(comm, None, module)
    opt = AdamW(model.shard_parameters(), lr=1e-2)
    x = make_batch()
    for _ in range(steps):
        model.zero_grad()
        (model(Tensor(x)) ** 2).mean().backward()
        opt.step()
    save_sharded(root, model, opt, step=steps)
    return model.consolidated_state_dict()


class TestSaveLoadRoundtrip:
    def test_load_restores_bitwise_and_optimizer(self, tmp_path):
        def fn(comm):
            expect = train_and_save(comm, tmp_path)
            fresh = FSDPModel(comm, None, make_module(seed=99))
            opt = AdamW(fresh.shard_parameters(), lr=1e-2)
            manifest = load_sharded(checkpoint_dir(tmp_path, 2), fresh, opt)
            got = fresh.consolidated_state_dict()
            same = all(np.array_equal(got[k], expect[k]) for k in expect)
            return same, manifest["step"], opt.state_dict()["step"]

        for same, step, adam_step in run_spmd(fn, 4):
            assert same
            assert step == 2
            assert adam_step == 2  # moments resumed mid-trajectory

    def test_consolidate_matches_model_consolidated_state_dict(self, tmp_path):
        def fn(comm):
            return train_and_save(comm, tmp_path)

        expect = run_spmd(fn, 4)[0]
        got = consolidate(checkpoint_dir(tmp_path, 2))
        assert got.keys() == expect.keys()
        for k in expect:
            np.testing.assert_array_equal(got[k], expect[k])

    def test_world_size_mismatch_requires_reshard(self, tmp_path):
        def save(comm):
            train_and_save(comm, tmp_path)

        run_spmd(save, 4)

        def load_wrong(comm):
            model = FSDPModel(comm, None, make_module())
            load_sharded(checkpoint_dir(tmp_path, 2), model)

        from repro.dist import SpmdError

        with pytest.raises(SpmdError, match="reshard"):
            run_spmd(load_wrong, 2)


class TestReshard:
    @pytest.mark.parametrize("new_world", [1, 2])
    def test_reshard_consolidates_bitwise(self, tmp_path, new_world):
        """The acceptance criterion: a world-size-4 checkpoint loads
        bitwise-identically at world sizes 1 and 2."""

        def save(comm):
            return train_and_save(comm, tmp_path)

        expect = run_spmd(save, 4)[0]
        src = checkpoint_dir(tmp_path, 2)
        dst, moved = reshard(src, new_world)
        assert dst != src and moved > 0
        assert load_manifest(dst)["world_size"] == new_world
        got = consolidate(dst)
        for k in expect:
            np.testing.assert_array_equal(got[k], expect[k])

        # And a live model at the new world size restores the same values.
        def load(comm):
            model = FSDPModel(comm, None, make_module(seed=123))
            opt = AdamW(model.shard_parameters(), lr=1e-2)
            load_sharded(dst, model, opt)
            return model.consolidated_state_dict()

        for state in run_spmd(load, new_world):
            for k in expect:
                np.testing.assert_array_equal(state[k], expect[k])

    def test_reshard_same_world_is_a_no_op(self, tmp_path):
        def save(comm):
            train_and_save(comm, tmp_path)

        run_spmd(save, 4)
        src = checkpoint_dir(tmp_path, 2)
        dst, moved = reshard(src, 4)
        assert dst == src and moved == 0

    def test_reshard_chain_stays_bitwise(self, tmp_path):
        """4 → 3 → 1 (two hops, uneven padding in between) stays exact."""

        def save(comm):
            return train_and_save(comm, tmp_path)

        expect = run_spmd(save, 4)[0]
        hop1, _ = reshard(checkpoint_dir(tmp_path, 2), 3)
        hop2, _ = reshard(hop1, 1)
        got = consolidate(hop2)
        for k in expect:
            np.testing.assert_array_equal(got[k], expect[k])

    def test_optimizer_state_reshards_with_params(self, tmp_path):
        def save(comm):
            train_and_save(comm, tmp_path)

        run_spmd(save, 4)
        src = checkpoint_dir(tmp_path, 2)
        dst, _ = reshard(src, 2)

        def load(comm):
            model = FSDPModel(comm, None, make_module())
            opt = AdamW(model.shard_parameters(), lr=1e-2)
            load_sharded(dst, model, opt)
            st = opt.state_dict()
            return st["step"], sum(float(np.abs(m).sum()) for m in st["m"])

        for step, m_mass in run_spmd(load, 2):
            assert step == 2
            assert m_mass > 0.0  # moments actually travelled


class TestConsolidatedVsSerial:
    def test_consolidated_state_dict_matches_serial_bitwise(self):
        """Satellite: FSDP consolidation ≡ the serial module's state dict.

        A whole-module FSDP wrap has one unit whose parameter names are the
        module's own dotted names, so ``unit0.<name>`` maps 1:1.
        """
        serial = make_module()
        expect = serial.state_dict()

        def fn(comm):
            return FSDPModel(comm, None, make_module()).consolidated_state_dict()

        for world in (1, 2, 4):
            got = run_spmd(fn, world)[0]
            assert set(got) == {f"unit0.{k}" for k in expect}
            for k in expect:
                np.testing.assert_array_equal(got[f"unit0.{k}"], expect[k])


class TestLatestCheckpoint:
    def test_picks_highest_step_and_skips_torn_dirs(self, tmp_path):
        def fn(comm):
            module = make_module()
            model = FSDPModel(comm, None, module)
            for step in (1, 3, 5):
                save_sharded(tmp_path, model, step=step)

        run_spmd(fn, 2)
        # Tear step 5: a save that died before its manifest landed.
        (checkpoint_dir(tmp_path, 5) / "manifest.json").unlink()
        assert latest_checkpoint(tmp_path) == checkpoint_dir(tmp_path, 3)
        # Tear step 3 differently: manifest present, shard file missing.
        (checkpoint_dir(tmp_path, 3) / "shard_0001.npz").unlink()
        assert latest_checkpoint(tmp_path) == checkpoint_dir(tmp_path, 1)

    def test_empty_root_returns_none(self, tmp_path):
        assert latest_checkpoint(tmp_path) is None
        assert latest_checkpoint(tmp_path / "missing") is None

    def test_checkpoint_nbytes_counts_params_and_moments(self, tmp_path):
        def fn(comm):
            model = FSDPModel(comm, None, make_module())
            opt = AdamW(model.shard_parameters(), lr=1e-2)
            (model(Tensor(make_batch())) ** 2).mean().backward()
            opt.step()
            save_sharded(tmp_path, model, opt, step=1)
            return sum(u.flat.shard.nbytes for u in model.units)

        per_rank = run_spmd(fn, 2)[0]
        # 2 ranks × (param + m + v) per unit shard.
        assert checkpoint_nbytes(checkpoint_dir(tmp_path, 1)) == 2 * 3 * per_rank


class TestDPDeduplication:
    def test_only_one_replica_writes(self, tmp_path):
        """On a dp×fsdp mesh, replicas hold identical shards; only dp==0
        writes, and the checkpoint's world size is the FSDP group size."""

        def fn(comm):
            mesh = DeviceMesh(comm, fsdp=2, dp=2)
            module = make_module()
            model = FSDPModel(comm, mesh.fsdp_group, module)
            save_sharded(tmp_path, model, step=1, write=mesh.coords.dp == 0)
            return model.consolidated_state_dict()

        results, _ = run_spmd_world(fn, 4)
        manifest = load_manifest(checkpoint_dir(tmp_path, 1))
        assert manifest["world_size"] == 2
        assert len(manifest["shards"]) == 2
        got = consolidate(checkpoint_dir(tmp_path, 1))
        for k in results[0]:
            np.testing.assert_array_equal(got[k], results[0][k])


class TestSerializationSuffix:
    def test_save_path_roundtrips_through_load(self, tmp_path):
        """Satellite: ``model.ckpt`` → ``model.ckpt.npz`` without the caller
        re-deriving the path — load accepts the original argument."""
        a, b = make_module(seed=1), make_module(seed=2)
        written = save_checkpoint(a, tmp_path / "model.ckpt")
        assert written == tmp_path / "model.ckpt.npz"
        # Load via the *original* (pre-derivation) path.
        load_checkpoint(b, tmp_path / "model.ckpt")
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_bare_and_npz_paths_roundtrip(self, tmp_path):
        a, b = make_module(seed=1), make_module(seed=2)
        save_checkpoint(a, tmp_path / "bare")
        load_checkpoint(b, tmp_path / "bare")
        c = make_module(seed=3)
        save_checkpoint(a, tmp_path / "exact.npz")
        load_checkpoint(c, tmp_path / "exact.npz")
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_embedded_manifest_roundtrips_and_stays_invisible(self, tmp_path):
        a, b = make_module(seed=1), make_module(seed=2)
        meta = {"step": 17, "world_size": 4, "note": "elastic"}
        path = save_checkpoint(a, tmp_path / "with_meta.ckpt", manifest=meta)
        assert read_manifest(tmp_path / "with_meta.ckpt") == meta
        # The reserved key must not leak into strict state-dict loading.
        load_checkpoint(b, path)
        plain = save_checkpoint(a, tmp_path / "plain")
        assert read_manifest(plain) is None
