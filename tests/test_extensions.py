"""Tests for the §3.5 extension modules: Perceiver fusion, Swin encoder,
multi-modal front-end, and checkpointing."""

import numpy as np
import pytest

from repro.core import PartialChannelAggregator
from repro.models import (
    ChannelViT,
    ModalitySpec,
    MultiModalFrontend,
    SerialChannelFrontend,
    build_serial_mae,
)
from repro.nn import (
    PerceiverChannelFusion,
    SwinBlock,
    SwinEncoder,
    ViTEncoder,
    WindowAttention,
    checkpoint_equal,
    load_checkpoint,
    save_checkpoint,
    shifted_window_mask,
    window_partition,
    window_reverse,
)
from repro.tensor import Tensor

RNG = np.random.default_rng(71)


class TestPerceiverFusion:
    def test_shapes_and_grads(self):
        pf = PerceiverChannelFusion(32, 4, RNG, num_latents=3, iterations=2)
        x = Tensor(RNG.standard_normal((2, 6, 4, 32)).astype(np.float32), requires_grad=True)
        out = pf(x)
        assert out.shape == (2, 4, 32)
        out.sum().backward()
        assert x.grad is not None
        for name, p in pf.named_parameters():
            assert p.grad is not None, name

    def test_weight_tied_fewer_params(self):
        tied = PerceiverChannelFusion(32, 4, np.random.default_rng(0), iterations=3, weight_tied=True)
        untied = PerceiverChannelFusion(32, 4, np.random.default_rng(0), iterations=3, weight_tied=False)
        assert untied.num_parameters() > 2 * tied.num_parameters()

    def test_channel_permutation_invariant(self):
        pf = PerceiverChannelFusion(16, 2, RNG)
        x = RNG.standard_normal((1, 5, 3, 16)).astype(np.float32)
        perm = np.array([4, 0, 3, 1, 2])
        a = pf(Tensor(x)).data
        b = pf(Tensor(x[:, perm])).data
        np.testing.assert_allclose(a, b, rtol=1e-4, atol=1e-5)

    def test_spatial_independence(self):
        pf = PerceiverChannelFusion(16, 2, RNG)
        x = RNG.standard_normal((1, 4, 6, 16)).astype(np.float32)
        base = pf(Tensor(x)).data
        x2 = x.copy()
        x2[:, :, 2, :] = 0.0
        out = pf(Tensor(x2)).data
        np.testing.assert_allclose(out[:, :2], base[:, :2], rtol=1e-4, atol=1e-5)

    def test_as_frontend_aggregator(self):
        """Drop-in replacement for the cross-attention aggregation layer."""
        fe = SerialChannelFrontend(6, 4, 32, 4, RNG)
        fe.aggregator = PerceiverChannelFusion(32, 4, RNG)
        imgs = RNG.standard_normal((2, 6, 16, 16)).astype(np.float32)
        assert fe(imgs).shape == (2, 16, 32)

    def test_validation(self):
        with pytest.raises(ValueError):
            PerceiverChannelFusion(32, 4, RNG, num_latents=0)
        pf = PerceiverChannelFusion(32, 4, RNG)
        with pytest.raises(ValueError):
            pf(Tensor(np.zeros((1, 2, 3, 16), dtype=np.float32)))


class TestSwin:
    def test_partition_reverse_roundtrip(self):
        x = Tensor(RNG.standard_normal((2, 8, 12, 16)).astype(np.float32))
        w = window_partition(x, 4)
        assert w.shape == (2 * 2 * 3, 16, 16)
        np.testing.assert_allclose(window_reverse(w, 4, 8, 12).data, x.data)

    def test_partition_rejects_indivisible(self):
        with pytest.raises(ValueError):
            window_partition(Tensor(np.zeros((1, 6, 8, 4), dtype=np.float32)), 4)

    def test_window_attention_is_local(self):
        """Tokens in different windows must not influence each other."""
        attn = WindowAttention(16, 2, RNG)
        grid = Tensor(RNG.standard_normal((1, 8, 8, 16)).astype(np.float32))
        wins = window_partition(grid, 4)
        base = attn(wins).data
        # Perturb only the last window; earlier windows' outputs unchanged.
        data = grid.data.copy()
        data[:, 4:, 4:, :] += 1.0
        wins2 = window_partition(Tensor(data), 4)
        out2 = attn(wins2).data
        np.testing.assert_allclose(out2[:3], base[:3], rtol=1e-5)
        assert not np.allclose(out2[3], base[3])

    def test_shifted_mask_blocks_cross_region_attention(self):
        mask = shifted_window_mask(8, 8, 4, 2)
        assert mask.shape == (4, 16, 16)
        # Unshifted interior window: nothing masked.
        assert (mask[0] == 0).all()
        # Boundary windows contain several regions → some pairs masked.
        assert (mask[-1] < -1e8).any()
        # Mask is symmetric and zero on the diagonal.
        np.testing.assert_allclose(mask, np.swapaxes(mask, 1, 2))
        for w in mask:
            np.testing.assert_allclose(np.diag(w), 0.0)

    def test_encoder_shapes_and_grads(self):
        enc = SwinEncoder(32, 4, 4, grid=(8, 8), window=4, rng=RNG)
        x = Tensor(RNG.standard_normal((2, 64, 32)).astype(np.float32), requires_grad=True)
        out = enc(x)
        assert out.shape == (2, 64, 32)
        out.sum().backward()
        assert x.grad is not None
        # Every other block is shifted.
        shifts = [b.shift for b in enc.blocks]
        assert shifts == [0, 2, 0, 2]

    def test_no_shift_when_grid_equals_window(self):
        enc = SwinEncoder(16, 2, 2, grid=(4, 4), window=4, rng=RNG)
        assert all(b.shift == 0 for b in enc.blocks)

    def test_swin_as_channelvit_encoder(self):
        """§3.5: D-CHAG/ChannelViT is agnostic to the ViT architecture."""
        fe = SerialChannelFrontend(6, 4, 32, 4, RNG)
        enc = SwinEncoder(32, 2, 4, grid=(4, 4), window=4, rng=RNG)
        model = ChannelViT(fe, enc, 16, 32, RNG)
        imgs = RNG.standard_normal((2, 6, 16, 16)).astype(np.float32)
        out = model(imgs)
        assert out.shape == (2, 16, 32)
        out.sum().backward()

    def test_grid_window_validation(self):
        with pytest.raises(ValueError):
            SwinEncoder(16, 2, 2, grid=(6, 8), window=4, rng=RNG)
        with pytest.raises(ValueError):
            SwinBlock(16, 2, (8, 8), window=4, shift=4, rng=RNG)


class TestMultiModal:
    def _frontend(self):
        return MultiModalFrontend(
            [ModalitySpec("hyper", 6), ModalitySpec("rgb", 3, scale=2)],
            patch=4, dim=32, heads=4, rng=np.random.default_rng(0),
        )

    def _inputs(self, b=2):
        return {
            "hyper": RNG.standard_normal((b, 6, 16, 16)).astype(np.float32),
            "rgb": RNG.standard_normal((b, 3, 32, 32)).astype(np.float32),
        }

    def test_fuses_to_single_representation(self):
        mm = self._frontend()
        out = mm(self._inputs())
        assert out.shape == (2, 16, 32)
        assert mm.total_channels == 9

    def test_channel_slices_partition(self):
        mm = self._frontend()
        sl = mm.channel_slices
        assert sl["hyper"] == slice(0, 6) and sl["rgb"] == slice(6, 9)

    def test_higher_resolution_modality_pooled(self):
        mm = self._frontend()
        tokens = mm.tokenize(self._inputs())
        assert tokens.shape == (2, 9, 16, 32)  # both modalities on one grid

    def test_missing_modality_raises(self):
        mm = self._frontend()
        with pytest.raises(ValueError, match="missing"):
            mm({"hyper": np.zeros((1, 6, 16, 16), dtype=np.float32)})

    def test_mismatched_grid_raises(self):
        mm = MultiModalFrontend(
            [ModalitySpec("a", 2), ModalitySpec("b", 2, scale=2)],
            patch=4, dim=16, heads=2, rng=RNG,
        )
        bad = {
            "a": np.zeros((1, 2, 16, 16), dtype=np.float32),
            "b": np.zeros((1, 2, 16, 16), dtype=np.float32),  # should be 32x32
        }
        with pytest.raises(ValueError, match="grid"):
            mm(bad)

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            MultiModalFrontend(
                [ModalitySpec("x", 2), ModalitySpec("x", 3)], 4, 16, 2, RNG
            )

    def test_gradients_reach_every_tokenizer(self):
        mm = self._frontend()
        mm(self._inputs()).sum().backward()
        for tok in mm.tokenizers:
            assert tok.weight.grad is not None

    def test_fused_axis_sharding_matches_dchag_expectations(self):
        """The fused channel axis can be partitioned like a single-modality
        axis (what a multi-modal D-CHAG deployment would shard)."""
        mm = self._frontend()
        tokens = mm.tokenize(self._inputs())
        total = mm.total_channels
        shards = [tokens[:, i * 3 : (i + 1) * 3] for i in range(total // 3)]
        rejoined = Tensor.concat(shards, axis=1)
        np.testing.assert_allclose(rejoined.data, tokens.data)


class TestCheckpointing:
    def test_roundtrip(self, tmp_path):
        a = build_serial_mae(4, 16, 4, 16, 1, 2, np.random.default_rng(1))
        b = build_serial_mae(4, 16, 4, 16, 1, 2, np.random.default_rng(2))
        assert not checkpoint_equal(a, b)
        path = save_checkpoint(a, tmp_path / "mae")
        assert path.suffix == ".npz"
        load_checkpoint(b, path)
        assert checkpoint_equal(a, b)

    def test_strict_load_rejects_mismatch(self, tmp_path):
        from repro.nn import Linear

        a = Linear(4, 8, RNG)
        path = save_checkpoint(a, tmp_path / "lin.npz")
        other = Linear(4, 9, RNG)
        with pytest.raises((KeyError, ValueError)):
            load_checkpoint(other, path)

    def test_non_strict_reports_skipped(self, tmp_path):
        from repro.nn import Linear, MLP

        a = Linear(4, 8, RNG)
        path = save_checkpoint(a, tmp_path / "lin.npz")
        mlp = MLP(4, 8, np.random.default_rng(0))
        skipped = load_checkpoint(mlp, path, strict=False)
        assert skipped  # names don't line up; everything is reported

    def test_partial_aggregator_checkpoint(self, tmp_path):
        a = PartialChannelAggregator(8, 16, 2, np.random.default_rng(1), fanout=2, kind="cross")
        b = PartialChannelAggregator(8, 16, 2, np.random.default_rng(9), fanout=2, kind="cross")
        load_checkpoint(b, save_checkpoint(a, tmp_path / "agg"))
        x = Tensor(RNG.standard_normal((1, 8, 3, 16)).astype(np.float32))
        np.testing.assert_allclose(a(x).data, b(x).data, rtol=1e-6)
