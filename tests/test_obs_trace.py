"""Tests for the Chrome-trace exporter (``repro.obs.trace``)."""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs.trace import (
    COMM_TID,
    COMPUTE_TID,
    chrome_trace,
    export_trace,
    main as trace_main,
    validate_trace,
)
from repro.perf import frontier
from repro.perf.calibrate import measure_plan
from repro.perf.modelcfg import ModelConfig
from repro.perf.plan import ParallelPlan, Workload
from repro.perf.schedule import replay

M = frontier()
SMALL = ModelConfig("obs-test", dim=64, depth=2, heads=4, patch=4, image_hw=(16, 16))
WORKLOAD = Workload(16, 2)


def _measured(eager=True, **kwargs):
    plan = kwargs.pop("plan", ParallelPlan("dist_tok", tp=2, fsdp=1, dp=2))
    return measure_plan(
        SMALL, WORKLOAD, plan, M, eager=eager, keep_world=True, **kwargs
    )


@pytest.fixture(scope="module")
def eager_trace():
    measured = _measured(eager=True)
    return measured, chrome_trace(measured.world)


class TestSchema:
    def test_trace_validates(self, eager_trace):
        _, trace = eager_trace
        assert validate_trace(trace) == []

    def test_required_keys_and_units(self, eager_trace):
        measured, trace = eager_trace
        events = trace["traceEvents"]
        assert events
        for ev in events:
            assert {"ph", "pid", "tid", "ts"} <= ev.keys()
            assert ev["ts"] >= 0
        assert trace["otherData"]["world_size"] == measured.world_size
        # µs scaling: the trace horizon equals the clock makespan in µs.
        max_end = max(
            ev["ts"] + ev.get("dur", 0) for ev in events if ev["ph"] == "X"
        )
        assert max_end == pytest.approx(trace["otherData"]["elapsed_us"])

    def test_one_process_per_rank_with_two_threads(self, eager_trace):
        measured, trace = eager_trace
        names = {
            (ev["pid"], ev["tid"], ev["args"]["name"])
            for ev in trace["traceEvents"]
            if ev["ph"] == "M" and ev["name"] in ("process_name", "thread_name")
        }
        for rank in range(measured.world_size):
            assert (rank, COMPUTE_TID, f"rank {rank}") in names
            assert (rank, COMPUTE_TID, "compute") in names
            assert (rank, COMM_TID, "comm channel") in names

    def test_slices_monotonic_per_track(self, eager_trace):
        _, trace = eager_trace
        by_track = {}
        for ev in trace["traceEvents"]:
            if ev["ph"] == "X":
                by_track.setdefault((ev["pid"], ev["tid"]), []).append(
                    (ev["ts"], ev["ts"] + ev["dur"])
                )
        assert by_track
        for spans in by_track.values():
            spans.sort()
            for (_, prev_end), (start, _) in zip(spans, spans[1:]):
                assert start >= prev_end - 1e-6

    def test_comm_slices_mirror_clock_intervals(self, eager_trace):
        measured, trace = eager_trace
        clock = measured.world.clock
        for rank in range(measured.world_size):
            slices = [
                ev
                for ev in trace["traceEvents"]
                if ev["ph"] == "X" and ev["pid"] == rank and ev["tid"] == COMM_TID
            ]
            intervals = sorted(clock.comm_intervals(rank), key=lambda iv: iv.start)
            assert len(slices) == len(intervals)
            for ev, iv in zip(sorted(slices, key=lambda e: e["ts"]), intervals):
                assert ev["ts"] == pytest.approx(iv.start * 1e6)
                assert ev["dur"] == pytest.approx(iv.seconds * 1e6)
                assert ev["name"] == iv.op
                assert ev["args"]["wire_bytes"] == iv.wire_bytes
                assert ev["args"]["link"] == iv.link

    def test_flows_tie_each_collective_across_ranks(self, eager_trace):
        measured, trace = eager_trace
        flows = {}
        for ev in trace["traceEvents"]:
            if ev["ph"] in ("s", "t", "f"):
                flows.setdefault(ev["id"], []).append(ev)
        assert flows  # every multi-rank collective emits one
        for members in flows.values():
            phs = [ev["ph"] for ev in sorted(members, key=lambda e: e["pid"])]
            assert phs[0] == "s" and phs[-1] == "f"
            assert len({ev["name"] for ev in members}) == 1
            assert len({ev["pid"] for ev in members}) == len(members)

    def test_eager_collectives_emit_inflight_asyncs(self, eager_trace):
        _, trace = eager_trace
        asyncs = [ev for ev in trace["traceEvents"] if ev["ph"] in ("b", "e")]
        assert asyncs
        assert all(ev["cat"] == "inflight" for ev in asyncs)
        begins = sum(1 for ev in asyncs if ev["ph"] == "b")
        assert begins == len(asyncs) - begins

    def test_json_serializable(self, eager_trace):
        _, trace = eager_trace
        assert validate_trace(json.loads(json.dumps(trace))) == []


class TestCounterProperty:
    @settings(max_examples=6, deadline=None)
    @given(
        tp=st.sampled_from([1, 2]),
        dp=st.sampled_from([1, 2]),
        eager=st.booleans(),
        n_steps=st.sampled_from([1, 2]),
    )
    def test_exposed_counter_totals_equal_clock_exposure(self, tp, dp, eager, n_steps):
        """Property: the final value of every ``exposed:<phase>`` counter
        equals the clock's exposure total for that (rank, phase) — the trace
        renders the simulator's books, it does not keep parallel ones."""
        if tp * dp == 1:
            return
        measured = _measured(
            eager=eager,
            plan=ParallelPlan("dist_tok" if tp > 1 else "tp", tp=tp, fsdp=1, dp=dp),
            n_steps=n_steps,
        )
        clock = measured.world.clock
        trace = chrome_trace(measured.world)
        finals = {}
        for ev in trace["traceEvents"]:
            if ev["ph"] == "C" and ev["name"].startswith("exposed:"):
                finals[(ev["pid"], ev["name"][len("exposed:"):])] = ev["args"][
                    "seconds"
                ]
        phases = {phase for _, phase in finals}
        assert phases  # at least one comm phase rendered
        for (rank, phase), total in finals.items():
            assert total == pytest.approx(clock.exposed_seconds(rank, phase))
        # and the trace covers every phase the clock exposed anything in
        for rank in range(measured.world_size):
            for phase in phases:
                if clock.comm_count(rank, phase):
                    assert (rank, phase) in finals

    def test_wire_counter_totals_equal_clock_volumes(self, eager_trace):
        measured, trace = eager_trace
        clock = measured.world.clock
        finals = {}
        for ev in trace["traceEvents"]:
            if ev["ph"] == "C" and ev["name"].startswith("wire:"):
                finals[(ev["pid"], ev["name"][len("wire:"):])] = ev["args"]["bytes"]
        for rank in range(measured.world_size):
            by_phase = {}
            for (op, phase, intra), (c, wire, busy) in clock.comm_volumes(rank).items():
                by_phase[phase] = by_phase.get(phase, 0) + wire
            for phase, wire in by_phase.items():
                if wire:
                    assert finals[(rank, phase)] == wire


class TestReplayRoundTrip:
    def test_replay_trace_equals_live_trace(self):
        """Bitwise round trip: a captured schedule replayed through the pure
        event engine lowers to the identical trace as the live threaded run."""
        captured = _measured(eager=True, capture=True)
        live = chrome_trace(captured.world.clock, label="x")
        replayed = replay(captured.schedule, M, n_steps=1)
        from_replay = chrome_trace(replayed, label="x")
        assert from_replay["traceEvents"] == live["traceEvents"]

    def test_accepts_replay_result_directly(self):
        captured = _measured(eager=True, capture=True)
        result = replay(captured.schedule, M, n_steps=2)
        trace = chrome_trace(result)
        assert validate_trace(trace) == []
        assert trace["otherData"]["elapsed_us"] == pytest.approx(
            result.elapsed * 1e6
        )

    def test_rejects_clockless_source(self):
        with pytest.raises(TypeError, match="VirtualClock"):
            chrome_trace(object())


class TestValidator:
    def _valid(self):
        return chrome_trace(_measured().world)

    def test_flags_missing_keys(self):
        assert validate_trace({"traceEvents": [{"ph": "X"}]})
        assert validate_trace([]) == ["trace must be a dict with a traceEvents list"]

    def test_flags_overlapping_slices(self):
        trace = self._valid()
        bad = dict(trace)
        bad["traceEvents"] = trace["traceEvents"] + [
            {"ph": "X", "pid": 0, "tid": COMPUTE_TID, "ts": 0.0,
             "dur": 1e12, "name": "huge"}
        ]
        assert any("overlapping" in p for p in validate_trace(bad))

    def test_flags_unbalanced_flow(self):
        trace = self._valid()
        bad = dict(trace)
        bad["traceEvents"] = trace["traceEvents"] + [
            {"ph": "s", "pid": 0, "tid": COMM_TID, "ts": 0.0,
             "name": "orphan", "id": 999_999}
        ]
        assert any("flow" in p for p in validate_trace(bad))

    def test_flags_decreasing_counter(self):
        events = [
            {"ph": "C", "pid": 0, "tid": 1, "ts": 0.0, "name": "exposed:x",
             "args": {"seconds": 2.0}},
            {"ph": "C", "pid": 0, "tid": 1, "ts": 1.0, "name": "exposed:x",
             "args": {"seconds": 1.0}},
        ]
        assert any("non-decreasing" in p for p in validate_trace({"traceEvents": events}))


class TestCli:
    def test_smoke_writes_valid_trace(self, tmp_path, capsys):
        out = tmp_path / "smoke.trace.json"
        assert trace_main(["--smoke", "--out", str(out)]) == 0
        trace = json.loads(out.read_text())
        assert validate_trace(trace) == []
        assert trace["otherData"]["world_size"] == 4
        assert "trace valid" in capsys.readouterr().out

    def test_schedule_flag_renders_saved_capture(self, tmp_path):
        captured = _measured(eager=True, capture=True).schedule
        sched_path = tmp_path / "captured.json"
        captured.save(sched_path)
        out = tmp_path / "replay.trace.json"
        assert trace_main(
            ["--schedule", str(sched_path), "--steps", "2", "--out", str(out)]
        ) == 0
        assert validate_trace(json.loads(out.read_text())) == []

    def test_store_flag_persists_trace(self, tmp_path):
        from repro.obs.store import SweepStore

        out = tmp_path / "t.trace.json"
        db = tmp_path / "t.db"
        assert trace_main(["--smoke", "--out", str(out), "--store", str(db)]) == 0
        with SweepStore(db) as store:
            run = store.latest_run(kind="trace")
            assert store.get_trace(run.id, out.name)["otherData"]["world_size"] == 4

    def test_export_trace_writes_file(self, tmp_path):
        measured = _measured()
        out = tmp_path / "nested" / "x.json"
        trace = export_trace(measured.world, out)
        assert json.loads(out.read_text()) == json.loads(json.dumps(trace))
