"""Hypothesis property tests on collective semantics and the virtual clock."""

import math
import time

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.dist import ring_wire_bytes, run_spmd, run_spmd_world
from repro.perf import CostModel, VirtualClock, frontier

WORLD_SIZES = st.sampled_from([1, 2, 3, 4])


@settings(max_examples=20, deadline=None)
@given(WORLD_SIZES, st.integers(1, 16), st.integers(0, 2**31 - 1))
def test_allreduce_equals_sum_of_contributions(world, n, seed):
    rng = np.random.default_rng(seed)
    contribs = rng.standard_normal((world, n)).astype(np.float32)

    def fn(comm):
        return comm.all_reduce(contribs[comm.rank])

    expect = contribs[0].astype(np.float32).copy()
    for c in contribs[1:]:
        expect = expect + c
    for out in run_spmd(fn, world):
        np.testing.assert_allclose(out, expect, rtol=1e-5, atol=1e-5)


@settings(max_examples=20, deadline=None)
@given(st.sampled_from([2, 4]), st.integers(1, 8), st.integers(0, 2**31 - 1))
def test_reduce_scatter_then_gather_equals_allreduce(world, per, seed):
    rng = np.random.default_rng(seed)
    contribs = rng.standard_normal((world, per * world)).astype(np.float32)

    def fn(comm):
        shard = comm.reduce_scatter(contribs[comm.rank])
        return comm.all_gather_concat(shard), comm.all_reduce(contribs[comm.rank])

    for gathered, reduced in run_spmd(fn, world):
        np.testing.assert_allclose(gathered, reduced, rtol=1e-5, atol=1e-6)


@settings(max_examples=20, deadline=None)
@given(st.sampled_from([2, 3, 4]), st.integers(0, 2**31 - 1))
def test_all_to_all_twice_is_identity(world, seed):
    rng = np.random.default_rng(seed)
    mats = rng.standard_normal((world, world, 3)).astype(np.float32)

    def fn(comm):
        once = comm.all_to_all(list(mats[comm.rank]))
        twice = comm.all_to_all(once)
        return np.stack(twice)

    for rank, out in enumerate(run_spmd(fn, world)):
        np.testing.assert_allclose(out, mats[rank])


@settings(max_examples=20, deadline=None)
@given(st.sampled_from([1, 2, 4]), st.integers(0, 2**31 - 1))
def test_broadcast_from_every_root(world, seed):
    rng = np.random.default_rng(seed)
    payloads = rng.standard_normal((world, 5)).astype(np.float32)

    def fn(comm):
        outs = []
        for root in range(comm.size):
            outs.append(comm.broadcast(payloads[comm.rank], root=root))
        return np.stack(outs)

    for out in run_spmd(fn, world):
        np.testing.assert_allclose(out, payloads)


@settings(max_examples=50, deadline=None)
@given(
    st.sampled_from(["all_reduce", "all_gather", "reduce_scatter", "broadcast", "all_to_all"]),
    st.integers(0, 10**9),
    st.integers(1, 64),
)
def test_ring_wire_bytes_bounds(op, payload, n):
    wire = ring_wire_bytes(op, payload, n)
    assert wire >= 0
    if n == 1:
        assert wire == 0
    if op == "all_reduce":
        assert wire <= 2 * payload
    if op == "reduce_scatter":
        assert wire <= payload
    if op == "all_gather":
        assert wire == (n - 1) * payload if n > 1 else wire == 0


# --- issue-queue clock properties ------------------------------------------
#
# A randomized SPMD schedule: every rank executes the same program — a mix of
# compute charges, eager collectives ("dp_sync"), blocking collectives
# (unphased), barriers and explicit drains — while hypothesis-chosen sleep
# perturbations shuffle the *thread* schedule underneath.

MACHINE = frontier()

SCHEDULE_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("charge"), st.integers(0, 5)),
        st.tuples(st.just("eager"), st.integers(1, 64)),
        st.tuples(st.just("blocking"), st.integers(1, 64)),
        st.tuples(st.just("barrier"), st.just(0)),
        st.tuples(st.just("drain"), st.just(0)),
    ),
    min_size=1,
    max_size=10,
)


def _run_schedule(schedule, world, sleep_seed):
    clock = VirtualClock(MACHINE, eager_phases={"dp_sync"})

    def fn(comm):
        rng = np.random.default_rng(sleep_seed * 131 + comm.rank)
        for kind, arg in schedule:
            if rng.random() < 0.3:
                time.sleep(float(rng.random()) * 1e-4)
            if kind == "charge":
                comm.charge_compute(arg * 1e-7, phase="backward")
            elif kind == "eager":
                with comm.phase_scope("dp_sync"):
                    comm.all_reduce(np.ones(arg * 4, dtype=np.float32))
            elif kind == "blocking":
                comm.all_reduce(np.ones(arg * 4, dtype=np.float32))
            elif kind == "barrier":
                comm.barrier()
            elif kind == "drain":
                comm.drain_comm()
        return comm.now()

    _, w = run_spmd_world(fn, world, clock=clock)
    return clock, w


@settings(max_examples=12, deadline=None)
@given(SCHEDULE_OPS, st.sampled_from([2, 3, 4]), st.integers(0, 2**16))
def test_issue_queue_deterministic_under_adversarial_thread_schedules(
    schedule, world, seed
):
    """Two runs with *different* sleep patterns produce bitwise-identical
    virtual timelines and settled intervals."""

    def snapshot(sleep_seed):
        clock, w = _run_schedule(schedule, world, sleep_seed)
        return (
            clock.times(),
            sorted(
                (iv.rank, iv.op, iv.phase, iv.issue, iv.start, iv.end, iv.exposed)
                for iv in clock.comm_intervals()
            ),
            sorted((r.rank, r.op, r.vstart, r.vend) for r in w.traffic.records()),
        )

    assert snapshot(seed) == snapshot(seed + 1)


@settings(max_examples=12, deadline=None)
@given(SCHEDULE_OPS, st.sampled_from([2, 4]), st.integers(0, 2**16))
def test_issue_queue_causality_and_exposure_bounds(schedule, world, seed):
    """Invariants on every settled interval of a randomized schedule:
    issue ≤ start, end = start + priced cost, 0 ≤ exposed ≤ end − issue,
    and per-phase exposed ≤ per-phase record span (vend − vstart)."""
    clock, w = _run_schedule(schedule, world, seed)
    cost = CostModel(MACHINE)
    n_collectives = sum(
        1 for kind, _ in schedule if kind in ("eager", "blocking", "barrier")
    )
    assert len(clock.comm_intervals()) == n_collectives * world  # all settled
    for iv in clock.comm_intervals():
        assert iv.issue <= iv.start + 1e-18
        assert iv.start <= iv.end
        assert 0.0 <= iv.exposed <= (iv.end - iv.issue) + 1e-18
    # priced cost: every collective occupies exactly its α–β time
    payloads = [
        arg * 16 if kind != "barrier" else 0
        for kind, arg in schedule
        if kind in ("eager", "blocking", "barrier")
    ]
    ops = [
        "all_reduce" if kind != "barrier" else "barrier"
        for kind, _ in schedule
        if kind in ("eager", "blocking", "barrier")
    ]
    for iv, payload, op in zip(clock.comm_intervals(rank=0), payloads, ops):
        expected = cost.collective_seconds(op, payload, world, True)
        assert iv.op == op
        assert math.isclose(iv.end - iv.start, expected, rel_tol=1e-9, abs_tol=1e-18)
    for rank in range(world):
        span = sum(
            r.vend - r.vstart
            for r in w.traffic.records(rank=rank)
            if r.phase == "dp_sync" and r.vstart >= 0.0
        )
        assert clock.exposed_seconds(rank=rank, phase="dp_sync") <= span + 1e-15


@settings(max_examples=10, deadline=None)
@given(SCHEDULE_OPS, st.sampled_from([2, 4]), st.integers(0, 2**16))
def test_issue_queue_never_beats_perfect_overlap_bound(schedule, world, seed):
    """The eager makespan is bounded below by max(total compute, total comm
    occupancy) — overlap can hide, never delete, work."""
    clock, _ = _run_schedule(schedule, world, seed)
    for rank in range(world):
        compute = clock.compute_seconds(rank=rank)
        busy = clock.comm_busy_seconds(rank=rank)
        assert clock.now(rank) + 1e-15 >= max(compute, busy)
        assert clock.now(rank) <= compute + sum(
            iv.end - iv.issue for iv in clock.comm_intervals(rank=rank)
        ) + 1e-15
