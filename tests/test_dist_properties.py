"""Hypothesis property tests on collective semantics."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.dist import ring_wire_bytes, run_spmd

WORLD_SIZES = st.sampled_from([1, 2, 3, 4])


@settings(max_examples=20, deadline=None)
@given(WORLD_SIZES, st.integers(1, 16), st.integers(0, 2**31 - 1))
def test_allreduce_equals_sum_of_contributions(world, n, seed):
    rng = np.random.default_rng(seed)
    contribs = rng.standard_normal((world, n)).astype(np.float32)

    def fn(comm):
        return comm.all_reduce(contribs[comm.rank])

    expect = contribs[0].astype(np.float32).copy()
    for c in contribs[1:]:
        expect = expect + c
    for out in run_spmd(fn, world):
        np.testing.assert_allclose(out, expect, rtol=1e-5, atol=1e-5)


@settings(max_examples=20, deadline=None)
@given(st.sampled_from([2, 4]), st.integers(1, 8), st.integers(0, 2**31 - 1))
def test_reduce_scatter_then_gather_equals_allreduce(world, per, seed):
    rng = np.random.default_rng(seed)
    contribs = rng.standard_normal((world, per * world)).astype(np.float32)

    def fn(comm):
        shard = comm.reduce_scatter(contribs[comm.rank])
        return comm.all_gather_concat(shard), comm.all_reduce(contribs[comm.rank])

    for gathered, reduced in run_spmd(fn, world):
        np.testing.assert_allclose(gathered, reduced, rtol=1e-5, atol=1e-6)


@settings(max_examples=20, deadline=None)
@given(st.sampled_from([2, 3, 4]), st.integers(0, 2**31 - 1))
def test_all_to_all_twice_is_identity(world, seed):
    rng = np.random.default_rng(seed)
    mats = rng.standard_normal((world, world, 3)).astype(np.float32)

    def fn(comm):
        once = comm.all_to_all(list(mats[comm.rank]))
        twice = comm.all_to_all(once)
        return np.stack(twice)

    for rank, out in enumerate(run_spmd(fn, world)):
        np.testing.assert_allclose(out, mats[rank])


@settings(max_examples=20, deadline=None)
@given(st.sampled_from([1, 2, 4]), st.integers(0, 2**31 - 1))
def test_broadcast_from_every_root(world, seed):
    rng = np.random.default_rng(seed)
    payloads = rng.standard_normal((world, 5)).astype(np.float32)

    def fn(comm):
        outs = []
        for root in range(comm.size):
            outs.append(comm.broadcast(payloads[comm.rank], root=root))
        return np.stack(outs)

    for out in run_spmd(fn, world):
        np.testing.assert_allclose(out, payloads)


@settings(max_examples=50, deadline=None)
@given(
    st.sampled_from(["all_reduce", "all_gather", "reduce_scatter", "broadcast", "all_to_all"]),
    st.integers(0, 10**9),
    st.integers(1, 64),
)
def test_ring_wire_bytes_bounds(op, payload, n):
    wire = ring_wire_bytes(op, payload, n)
    assert wire >= 0
    if n == 1:
        assert wire == 0
    if op == "all_reduce":
        assert wire <= 2 * payload
    if op == "reduce_scatter":
        assert wire <= payload
    if op == "all_gather":
        assert wire == (n - 1) * payload if n > 1 else wire == 0
