"""Tests for the synthetic data substrates (APPL hyperspectral, ERA5)."""

import numpy as np
import pytest

from repro.data import (
    ArrayDataset,
    CHANNEL_VARIABLES,
    DataLoader,
    ERA5Config,
    EVAL_CHANNELS,
    EndmemberLibrary,
    HyperspectralConfig,
    HyperspectralDataset,
    SyntheticERA5,
    latitude_weights,
    pseudo_rgb,
)


class TestHyperspectral:
    DS = HyperspectralDataset(HyperspectralConfig(channels=64, height=24, width=24, n_images=12))

    def test_shapes_and_range(self):
        img = self.DS[0]
        assert img.shape == (64, 24, 24)
        assert img.dtype == np.float32
        assert np.isfinite(img).all()
        assert img.min() >= 0.0 and img.max() <= 1.5

    def test_default_matches_appl(self):
        ds = HyperspectralDataset()
        assert len(ds) == 494 and ds.config.channels == 500

    def test_deterministic_per_index(self):
        np.testing.assert_array_equal(self.DS[5], self.DS[5])

    def test_distinct_images(self):
        assert not np.allclose(self.DS[0], self.DS[1])

    def test_out_of_range(self):
        with pytest.raises(IndexError):
            self.DS[12]

    def test_batch(self):
        b = self.DS.batch([0, 1, 2])
        assert b.shape == (3, 64, 24, 24)

    def test_spectral_smoothness(self):
        """Adjacent bands are strongly correlated — the structure the MAE
        must exploit (real hyperspectral data has contiguous bands)."""
        img = self.DS[0].reshape(64, -1)
        corr = [np.corrcoef(img[c], img[c + 1])[0, 1] for c in range(0, 60, 7)]
        assert min(corr) > 0.8

    def test_red_edge_in_leaf_spectrum(self):
        """Vegetation NIR reflectance > visible reflectance (the red edge)."""
        lib = EndmemberLibrary.vnir(500)
        leaf = lib.spectra[lib.names.index("leaf")]
        visible = leaf[(lib.wavelengths_nm > 600) & (lib.wavelengths_nm < 680)].mean()
        nir = leaf[lib.wavelengths_nm > 780].mean()
        assert nir > 2 * visible

    def test_pseudo_rgb(self):
        rgb = pseudo_rgb(self.DS[0], self.DS.library)
        assert rgb.shape == (24, 24, 3)
        assert rgb.min() >= 0.0 and rgb.max() <= 1.0


class TestERA5:
    DS = SyntheticERA5(ERA5Config(n_steps=24, seed=3))

    def test_eighty_channels(self):
        assert len(CHANNEL_VARIABLES) == 80
        assert self.DS.fields.shape == (24, 80, 32, 64)

    def test_eval_channels_present(self):
        assert set(EVAL_CHANNELS) == {"z500", "t850", "u10"}
        assert CHANNEL_VARIABLES[EVAL_CHANNELS["u10"]] == "u10"
        assert CHANNEL_VARIABLES[EVAL_CHANNELS["z500"]] == "z500"

    def test_standardized(self):
        m = self.DS.fields.mean(axis=(0, 2, 3))
        s = self.DS.fields.std(axis=(0, 2, 3))
        np.testing.assert_allclose(m, 0.0, atol=1e-3)
        np.testing.assert_allclose(s, 1.0, atol=1e-2)

    def test_deterministic(self):
        again = SyntheticERA5(ERA5Config(n_steps=24, seed=3))
        np.testing.assert_array_equal(self.DS.fields, again.fields)

    def test_temporal_persistence(self):
        """Consecutive states are correlated (dynamics, not noise) but not
        identical — the forecasting task is learnable and non-trivial."""
        a, b = self.DS.fields[0].ravel(), self.DS.fields[1].ravel()
        corr = np.corrcoef(a, b)[0, 1]
        assert 0.5 < corr < 0.999

    def test_sample_pair_and_metadata(self):
        x, y, meta = self.DS.sample(4)
        np.testing.assert_array_equal(x, self.DS.fields[4])
        np.testing.assert_array_equal(y, self.DS.fields[5])
        assert meta.shape == (2,) and meta[1] == pytest.approx(0.25)  # 6h lead in days

    def test_split_chronological(self):
        train, test = self.DS.train_test_split(0.25)
        assert train.max() < test.min()
        assert len(train) + len(test) == len(self.DS)

    def test_latitude_weights_mean_one(self):
        w = latitude_weights(32)
        np.testing.assert_allclose(w.mean(), 1.0, rtol=1e-6)
        assert w[16] > w[0]  # equator heavier than pole


class TestLoader:
    def test_batching(self):
        ds = ArrayDataset(np.arange(10), np.arange(10) * 2)
        dl = DataLoader(ds, batch_size=3, drop_last=True)
        batches = list(dl)
        assert len(batches) == 3
        x, y = batches[0]
        np.testing.assert_array_equal(y, x * 2)

    def test_drop_last_false(self):
        ds = ArrayDataset(np.arange(10))
        dl = DataLoader(ds, batch_size=3, drop_last=False)
        assert len(list(dl)) == 4

    def test_shuffle_reproducible(self):
        ds = ArrayDataset(np.arange(16))
        a = [b.tolist() for b in DataLoader(ds, 4, shuffle=True, rng=np.random.default_rng(5))]
        b = [b.tolist() for b in DataLoader(ds, 4, shuffle=True, rng=np.random.default_rng(5))]
        assert a == b

    def test_shuffle_covers_everything(self):
        ds = ArrayDataset(np.arange(12))
        seen = np.concatenate(list(DataLoader(ds, 4, shuffle=True, rng=np.random.default_rng(0))))
        assert sorted(seen.tolist()) == list(range(12))

    def test_mismatched_arrays_raise(self):
        with pytest.raises(ValueError):
            ArrayDataset(np.arange(3), np.arange(4))
