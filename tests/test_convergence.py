"""Convergence equivalence (paper §5, Figs. 11–12, scaled down).

Baseline = serial model on one rank; D-CHAG = the distributed channel stage
on 2–4 ranks with an identically-seeded replicated encoder/decoder.  The
paper's claims, asserted here at miniature scale:

* training-loss curves agree closely (Fig. 11/12: "good agreement");
* test-metric degradation under 10 % at this scale (paper: < 1 % at full
  scale and full training length);
* the replicated (shared) modules stay bitwise-synchronized across ranks
  over many AdamW steps without any gradient AllReduce.
"""

import numpy as np
import pytest

from repro.core import DCHAG, DCHAGConfig
from repro.data import ERA5Config, HyperspectralConfig, HyperspectralDataset, SyntheticERA5
from repro.dist import run_spmd_world
from repro.models import ChannelViT, MAEModel, WeatherForecaster, build_serial_mae
from repro.nn import ViTEncoder
from repro.tensor import Tensor
from repro.train import TrainConfig, Trainer, eval_channel_rmse

C, IMG, P, D, HEADS, DEPTH = 8, 16, 4, 32, 4, 2
STEPS = 14


def _mae_batches():
    ds = HyperspectralDataset(HyperspectralConfig(channels=C, height=IMG, width=IMG, n_images=8, seed=2))
    return ds.batch(range(6))


def train_serial_mae(batch):
    model = build_serial_mae(
        channels=C, image=IMG, patch=P, dim=D, depth=DEPTH, heads=HEADS,
        rng=np.random.default_rng(0), mask_ratio=0.5, agg="cross",
    )
    tr = Trainer(model, TrainConfig(lr=3e-3, total_steps=STEPS, warmup_steps=2))
    return [tr.step(batch, np.random.default_rng(1000 + i)) for i in range(STEPS)]


def train_dchag_mae(comm, batch, kind="linear"):
    cfg = DCHAGConfig(channels=C, patch=P, dim=D, heads=HEADS, kind=kind)
    frontend = DCHAG(comm, None, cfg, rng_seed=7)
    shared_rng = np.random.default_rng(0)  # identical on every rank
    encoder = ViTEncoder(D, DEPTH, HEADS, shared_rng)
    model = MAEModel(
        frontend, encoder, num_tokens=(IMG // P) ** 2, dim=D, patch=P,
        out_channels=C, rng=shared_rng, mask_ratio=0.5, decoder_depth=2,
    )
    tr = Trainer(model, TrainConfig(lr=3e-3, total_steps=STEPS, warmup_steps=2))
    losses = [tr.step(batch, np.random.default_rng(1000 + i)) for i in range(STEPS)]
    shared_state = {
        **{f"final.{n}": p.data.copy() for n, p in model.frontend.final.named_parameters()},
        **{f"enc.{n}": p.data.copy() for n, p in model.encoder.named_parameters()},
    }
    return losses, shared_state


class TestMAEConvergence:
    """Fig. 11 in miniature."""

    @pytest.fixture(scope="class")
    def runs(self):
        batch = _mae_batches()
        serial = train_serial_mae(batch)
        results, world = run_spmd_world(train_dchag_mae, 2, batch)
        return serial, results, world

    def test_both_converge(self, runs):
        serial, results, _ = runs
        dchag = results[0][0]
        assert serial[-1] < serial[0] * 0.7
        assert dchag[-1] < dchag[0] * 0.7

    def test_loss_curves_agree(self, runs):
        """The paper's 'good agreement in the training loss'."""
        serial, results, _ = runs
        dchag = results[0][0]
        final_gap = abs(dchag[-1] - serial[-1]) / serial[-1]
        assert final_gap < 0.35, f"final-loss gap {final_gap:.0%}"

    def test_losses_identical_across_ranks(self, runs):
        _, results, _ = runs
        np.testing.assert_allclose(results[0][0], results[1][0], rtol=1e-5)

    def test_shared_modules_stay_synchronized(self, runs):
        """No DP AllReduce inside the D-CHAG group, yet replicated modules
        remain bitwise identical after 14 AdamW steps."""
        _, results, _ = runs
        state0, state1 = results[0][1], results[1][1]
        assert state0.keys() == state1.keys()
        for name in state0:
            np.testing.assert_array_equal(state0[name], state1[name], err_msg=name)

    def test_backward_comm_free_during_training(self, runs):
        """All traffic is forward AllGather: exactly one per rank per step
        (plus none anywhere else)."""
        _, results, world = runs
        hist = world.traffic.ops_histogram()
        assert set(hist) == {"all_gather"}
        assert hist["all_gather"] == 2 * STEPS  # 2 ranks × 14 steps


WC, WH, WW, WP = 16, 32, 64, 8  # 16 of 80 channels, full 5.625-degree grid


def _weather_model_serial():
    from repro.models import build_serial_forecaster

    return build_serial_forecaster(
        channels=WC, image_hw=(WH, WW), patch=WP, dim=D, heads=HEADS, depth=DEPTH,
        rng=np.random.default_rng(0),
    )


def train_dchag_weather(comm, x, y, meta):
    cfg = DCHAGConfig(channels=WC, patch=WP, dim=D, heads=HEADS, kind="linear")
    frontend = DCHAG(comm, None, cfg, rng_seed=5)
    shared_rng = np.random.default_rng(0)
    encoder = ViTEncoder(D, DEPTH, HEADS, shared_rng)
    n_tokens = (WH // WP) * (WW // WP)
    backbone = ChannelViT(frontend, encoder, n_tokens, D, shared_rng, meta_fields=2)
    model = WeatherForecaster(backbone, D, WP, WC, (WH, WW), shared_rng)
    tr = Trainer(model, TrainConfig(lr=2e-3, total_steps=STEPS, warmup_steps=2))
    losses = [tr.step(x, y, meta) for _ in range(STEPS)]
    pred = model(x, meta).data
    return losses, pred


class TestWeatherConvergence:
    """Fig. 12 in miniature (16 of the 80 channels to keep CI fast)."""

    @pytest.fixture(scope="class")
    def runs(self):
        era = SyntheticERA5(ERA5Config(n_steps=12, seed=4))
        x, y, meta = era.batch([0, 1, 2, 3])
        x, y = x[:, :WC], y[:, :WC]

        serial = _weather_model_serial()
        tr = Trainer(serial, TrainConfig(lr=2e-3, total_steps=STEPS, warmup_steps=2))
        serial_losses = [tr.step(x, y, meta) for _ in range(STEPS)]
        serial_pred = serial(x, meta).data

        results, world = run_spmd_world(train_dchag_weather, 4, x, y, meta)
        return serial_losses, serial_pred, results, (x, y, meta)

    def test_both_converge(self, runs):
        serial_losses, _, results, _ = runs
        dchag_losses = results[0][0]
        assert serial_losses[-1] < serial_losses[0]
        assert dchag_losses[-1] < dchag_losses[0]

    def test_training_loss_agreement(self, runs):
        serial_losses, _, results, _ = runs
        dchag_losses = results[0][0]
        gap = abs(dchag_losses[-1] - serial_losses[-1]) / serial_losses[-1]
        assert gap < 0.35, f"final-loss gap {gap:.0%}"

    def test_rmse_degradation_small(self, runs):
        """Paper: 'only a 1% lower rate' on test RMSE; at this miniature
        scale we allow 15 %."""
        _, serial_pred, results, (x, y, meta) = runs
        dchag_pred = results[0][1]
        from repro.train import lat_weighted_rmse

        r_serial = lat_weighted_rmse(serial_pred, y)
        r_dchag = lat_weighted_rmse(dchag_pred, y)
        assert abs(r_dchag - r_serial) / r_serial < 0.15

    def test_predictions_replicated(self, runs):
        _, _, results, _ = runs
        for r in results[1:]:
            np.testing.assert_allclose(r[1], results[0][1], rtol=1e-4, atol=1e-5)
