"""FSDP and DP correctness: sharded training ≡ serial training (§3.4)."""

import numpy as np
import pytest

from repro.dist import run_spmd, run_spmd_world
from repro.nn import MLP, ViTEncoder
from repro.parallel import DataParallel, DeviceMesh, FSDPModel, shard_batch
from repro.tensor import AdamW, Tensor

RNG = np.random.default_rng(31)
DIM = 16


def make_serial(seed=0):
    return ViTEncoder(DIM, 2, 4, np.random.default_rng(seed))


class TestFSDP:
    def test_forward_matches_serial(self):
        serial = make_serial()
        x = RNG.standard_normal((2, 5, DIM)).astype(np.float32)
        expect = serial(Tensor(x)).data

        def fn(comm):
            enc = make_serial()
            model = FSDPModel(comm, None, enc, units=[b for b in enc.blocks])
            return model(Tensor(x)).data.copy()

        for out in run_spmd(fn, 2):
            np.testing.assert_allclose(out, expect, rtol=1e-5, atol=1e-6)

    def test_gradients_match_serial(self):
        serial = make_serial()
        x = RNG.standard_normal((2, 5, DIM)).astype(np.float32)
        (serial(Tensor(x)) ** 2).mean().backward()
        serial_flat = np.concatenate([p.grad.ravel() for p in serial.parameters()])

        def fn(comm):
            enc = make_serial()
            model = FSDPModel(comm, None, enc, units=[b for b in enc.blocks])
            (model(Tensor(x)) ** 2).mean().backward()
            # Reassemble full gradient from shards.
            grads = []
            for unit in model.units:
                parts = comm.all_gather(unit.flat.shard.grad)
                grads.append(np.concatenate(parts)[: unit.flat.total])
            return np.concatenate(grads)

        for flat in run_spmd(fn, 2):
            # FSDP unit order: blocks then residual (norm); match by sorting names.
            assert flat.shape == serial_flat.shape
            np.testing.assert_allclose(np.sort(flat), np.sort(serial_flat), rtol=1e-4, atol=1e-5)

    def test_training_step_matches_serial(self):
        """One AdamW step on FSDP shards reproduces serial weights."""
        x = RNG.standard_normal((2, 5, DIM)).astype(np.float32)

        serial = make_serial()
        opt = AdamW(serial.parameters(), lr=1e-2, weight_decay=0.0)
        (serial(Tensor(x)) ** 2).mean().backward()
        opt.step()
        expect = serial(Tensor(x)).data

        def fn(comm):
            enc = make_serial()
            model = FSDPModel(comm, None, enc, units=[b for b in enc.blocks])
            opt = AdamW(model.shard_parameters(), lr=1e-2, weight_decay=0.0)
            (model(Tensor(x)) ** 2).mean().backward()
            opt.step()
            return model(Tensor(x)).data.copy()

        for out in run_spmd(fn, 2):
            np.testing.assert_allclose(out, expect, rtol=1e-4, atol=1e-5)

    def test_shard_bytes_scale_inversely(self):
        def fn(comm):
            enc = make_serial()
            model = FSDPModel(comm, None, enc, units=[b for b in enc.blocks])
            return model.shard_bytes()

        two = run_spmd(fn, 2)[0]
        four = run_spmd(fn, 4)[0]
        assert abs(four - two / 2) / two < 0.1  # halves (modulo padding)

    def test_fsdp_traffic_pattern(self):
        def fn(comm):
            enc = make_serial()
            model = FSDPModel(comm, None, enc, units=[b for b in enc.blocks])
            x = RNG.standard_normal((1, 4, DIM)).astype(np.float32)
            (model(Tensor(x)) ** 2).mean().backward()
            return None

        _, world = run_spmd_world(fn, 2)
        hist = world.traffic.ops_histogram()
        # 3 units (2 blocks + residual norm): AllGather fwd each, ReduceScatter bwd each.
        assert hist["all_gather"] >= 3 * 2
        assert hist["reduce_scatter"] == 3 * 2


class TestDataParallel:
    def test_dp_equals_full_batch_serial(self):
        """Mean-reduced DP gradients == gradients of the full-batch loss."""
        x = RNG.standard_normal((4, 5, DIM)).astype(np.float32)

        serial = make_serial()
        (serial(Tensor(x)) ** 2).mean().backward()
        expect = [p.grad.copy() for p in serial.parameters()]

        def fn(comm):
            model = DataParallel(comm, None, make_serial(seed=comm.rank))  # init synced by broadcast
            xi = shard_batch(x, comm)
            (model(Tensor(xi)) ** 2).mean().backward()
            model.sync_gradients()
            return [p.grad.copy() for p in model.parameters()]

        for grads in run_spmd(fn, 2):
            for g, e in zip(grads, expect):
                np.testing.assert_allclose(g, e, rtol=2e-4, atol=2e-5)

    def test_broadcast_synchronises_initialisation(self):
        def fn(comm):
            model = DataParallel(comm, None, MLP(4, 8, np.random.default_rng(comm.rank)))
            return model.module.fc1.weight.data.copy()

        res = run_spmd(fn, 3)
        for w in res[1:]:
            np.testing.assert_array_equal(w, res[0])

    def test_shard_batch(self):
        x = np.arange(8, dtype=np.float32).reshape(8, 1)

        def fn(comm):
            return shard_batch(x, comm)[:, 0].tolist()

        res = run_spmd(fn, 4)
        assert res[0] == [0.0, 1.0] and res[3] == [6.0, 7.0]

    def test_shard_batch_uneven_raises(self):
        def fn(comm):
            shard_batch(np.zeros((5, 1)), comm)

        from repro.dist import SpmdError

        with pytest.raises(SpmdError):
            run_spmd(fn, 2)


class TestDeviceMesh:
    def test_axes_partition_world(self):
        def fn(comm):
            mesh = DeviceMesh(comm, tp=2, fsdp=2, dp=2)
            return mesh.coords, mesh.tp_group.ranks, mesh.fsdp_group.ranks, mesh.dp_group.ranks

        res = run_spmd(fn, 8)
        # rank 5 = dp1, fsdp0, tp1
        coords, tpg, fsg, dpg = res[5]
        assert (coords.dp, coords.fsdp, coords.tp) == (1, 0, 1)
        assert tpg == (4, 5)
        assert fsg == (5, 7)
        assert dpg == (1, 5)

    def test_tp_groups_are_contiguous(self):
        def fn(comm):
            mesh = DeviceMesh(comm, tp=4)
            return mesh.tp_group.ranks

        res = run_spmd(fn, 8)
        assert res[0] == (0, 1, 2, 3) and res[7] == (4, 5, 6, 7)

    def test_dchag_group_is_tp_group(self):
        def fn(comm):
            mesh = DeviceMesh(comm, tp=2, dp=2)
            return mesh.dchag_group is mesh.tp_group

        assert all(run_spmd(fn, 4))

    def test_bad_factorisation_raises(self):
        def fn(comm):
            DeviceMesh(comm, tp=3)

        from repro.dist import SpmdError

        with pytest.raises(SpmdError):
            run_spmd(fn, 4)
