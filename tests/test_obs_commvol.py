"""Tests for the per-link comm-volume reconciliation (``repro.obs.commvol``)."""

from dataclasses import replace

import pytest

from repro.obs.commvol import (
    CommVolumeReport,
    VolumeBucket,
    comm_volume_report,
    main as commvol_main,
)
from repro.perf import frontier
from repro.perf.calibrate import measure_plan
from repro.perf.modelcfg import ModelConfig
from repro.perf.plan import ParallelPlan, Precision, Workload

M = frontier()
SMALL = ModelConfig("obs-test", dim=64, depth=2, heads=4, patch=4, image_hw=(16, 16))
WORKLOAD = Workload(16, 2)
PLAN = ParallelPlan("dist_tok", tp=2, fsdp=1, dp=2)


@pytest.fixture(scope="module", params=[True, False], ids=["eager", "blocking"])
def report(request):
    return comm_volume_report(SMALL, WORKLOAD, PLAN, M, eager=request.param)


class TestThreeWayAgreement:
    def test_wire_bytes_agree_exactly_per_bucket(self, report):
        """The acceptance invariant: analytic = simulated = measured wire
        bytes for every op × phase × link bucket of the tp2×dp2 world."""
        assert report.buckets
        for b in report.buckets:
            assert b.wire_ok, (
                f"{b.op}/{b.phase}/{b.link}: analytic {b.analytic_wire} "
                f"simulated {b.simulated_wire} measured {b.measured_wire}"
            )
        assert report.wire_exact
        assert report.mismatches() == []

    def test_counts_agree_per_bucket(self, report):
        for b in report.buckets:
            assert b.count_ok

    def test_simulated_busy_equals_analytic_alpha_beta(self, report):
        """Simulated channel occupancy is the same α–β pricing as the
        analytic column — residual at float precision."""
        assert report.max_seconds_residual < 1e-9

    def test_covers_every_schedule_phase(self, report):
        phases = {b.phase for b in report.buckets}
        assert {"tp", "gather", "dp_sync"} <= phases

    def test_multi_step_totals_scale(self):
        one = comm_volume_report(SMALL, WORKLOAD, PLAN, M, eager=True, n_steps=1)
        three = comm_volume_report(SMALL, WORKLOAD, PLAN, M, eager=True, n_steps=3)
        assert three.wire_exact
        by_key = {(b.op, b.phase, b.link): b for b in one.buckets}
        for b in three.buckets:
            assert b.measured_wire == 3 * by_key[(b.op, b.phase, b.link)].measured_wire


class TestLinkClassing:
    def test_cross_node_dp_lands_in_inter_bucket(self):
        # 2 GPUs per node: TP fits in a node, DP spans two -> both classes.
        machine = replace(M, gpus_per_node=2)
        report = comm_volume_report(SMALL, WORKLOAD, PLAN, machine, eager=True)
        links = {(b.phase, b.link) for b in report.buckets}
        assert ("tp", "intra") in links
        assert ("dp_sync", "inter") in links
        assert report.wire_exact  # agreement holds per link class too

    def test_fsdp_axis_classed_by_replica_extent(self):
        machine = replace(M, gpus_per_node=2)
        plan = ParallelPlan("dist_tok", tp=2, fsdp=2, dp=1)
        report = comm_volume_report(SMALL, WORKLOAD, plan, machine, eager=True)
        fsdp = [b for b in report.buckets if b.phase == "fsdp_gather"]
        assert fsdp and all(b.link == "inter" for b in fsdp)  # tp*fsdp=4 > 2
        assert report.wire_exact


class TestReportApi:
    def test_requires_a_kept_world(self):
        measured = measure_plan(SMALL, WORKLOAD, PLAN, M, eager=True)
        assert measured.world is None
        with pytest.raises(ValueError, match="keep_world"):
            comm_volume_report(SMALL, WORKLOAD, PLAN, M, measured=measured)

    def test_accepts_prebuilt_measurement(self):
        measured = measure_plan(SMALL, WORKLOAD, PLAN, M, eager=True, keep_world=True)
        report = comm_volume_report(SMALL, WORKLOAD, PLAN, M, measured=measured)
        assert report.wire_exact
        assert report.world_size == measured.world_size

    def test_total_wire_sums_buckets(self, report):
        total = report.total_wire("measured")
        assert total == sum(b.measured_wire for b in report.buckets)
        assert total == report.total_wire("analytic")


class TestMarkdown:
    def test_renders_one_row_per_bucket_all_ok(self, report):
        table = report.to_markdown()
        assert table.count("| OK |") == len(report.buckets)
        assert "MISMATCH" not in table
        assert "all wire bytes agree" in table
        for b in report.buckets:
            assert f"| {b.op} | {b.phase} | {b.link} " in table

    def test_flags_mismatching_bucket(self):
        bad = VolumeBucket(
            op="all_reduce", phase="tp", link="intra",
            analytic_wire=100, simulated_wire=100, measured_wire=90,
            analytic_count=1, simulated_count=1, measured_count=1,
        )
        report = CommVolumeReport(
            plan=PLAN, machine=M.name, world_size=4, eager=True, n_steps=1,
            buckets=(bad,),
        )
        assert not report.wire_exact
        assert report.mismatches() == [bad]
        table = report.to_markdown()
        assert "**MISMATCH**" in table
        assert "disagree beyond tolerance" in table

    def test_tolerance_forgives_small_spread(self):
        near = VolumeBucket(
            op="all_reduce", phase="tp", link="intra",
            analytic_wire=1000, simulated_wire=1000, measured_wire=995,
            analytic_count=1, simulated_count=1, measured_count=1,
        )
        report = CommVolumeReport(
            plan=PLAN, machine=M.name, world_size=4, eager=True, n_steps=1,
            buckets=(near,),
        )
        assert report.mismatches(tolerance=0.0) == [near]
        assert report.mismatches(tolerance=0.01) == []
        assert "MISMATCH" not in report.to_markdown(tolerance=0.01)

    def test_count_disagreement_is_flagged(self):
        bad = VolumeBucket(
            op="all_gather", phase="gather", link="intra",
            analytic_wire=64, simulated_wire=64, measured_wire=64,
            analytic_count=2, simulated_count=1, measured_count=2,
        )
        report = CommVolumeReport(
            plan=PLAN, machine=M.name, world_size=4, eager=True, n_steps=1,
            buckets=(bad,),
        )
        table = report.to_markdown()
        assert "**MISMATCH**" in table
        assert "2/1/2" in table


class TestCli:
    def test_default_run_passes_and_prints_table(self, capsys):
        assert commvol_main([]) == 0
        out = capsys.readouterr().out
        assert "| op | phase | link |" in out
        assert "all wire bytes agree" in out

    def test_blocking_mode_and_outputs(self, tmp_path, capsys):
        from repro.obs.store import SweepStore

        md = tmp_path / "vol.md"
        db = tmp_path / "vol.db"
        assert commvol_main(
            ["--blocking", "--out", str(md), "--store", str(db)]
        ) == 0
        assert "| op | phase | link |" in md.read_text()
        with SweepStore(db) as store:
            run = store.latest_run(kind="commvol")
            assert run.params["eager"] is False
            vols = store.volume_by_link(run.id, source="measured")
            assert vols  # buckets persisted and queryable
            assert vols == store.volume_by_link(run.id, source="analytic")
