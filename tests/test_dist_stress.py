"""Stress and failure-injection tests for the simulated runtime.

The SPMD engine is the substrate under every result in this repository, so
it gets adversarial coverage: collective storms, interleaved groups, large
worlds, mid-collective failures, and concurrent independent worlds.
"""

import threading

import numpy as np
import pytest

from repro.dist import SpmdError, run_spmd, run_spmd_world


class TestCollectiveStorm:
    def test_many_sequential_collectives(self):
        """1000 collectives per rank with rotating ops and roots."""

        def fn(comm):
            acc = 0.0
            for i in range(250):
                x = np.array([float(comm.rank + i)], dtype=np.float32)
                acc += comm.all_reduce(x)[0]
                acc += comm.all_gather_concat(x).sum()
                acc += comm.broadcast(x if comm.rank == i % comm.size else None, root=i % comm.size)[0]
                comm.barrier()
            return acc

        res = run_spmd(fn, 4)
        assert all(abs(r - res[0]) < 1e-3 for r in res)

    def test_interleaved_subgroup_collectives(self):
        """Two disjoint groups plus the world group, interleaved per step."""

        def fn(comm):
            lo = comm.group([0, 1])
            hi = comm.group([2, 3])
            mine = lo if comm.rank < 2 else hi
            total = 0.0
            for i in range(50):
                total += comm.all_reduce(np.ones(1, dtype=np.float32), group=mine)[0]
                total += comm.all_reduce(np.ones(1, dtype=np.float32))[0]
            return total

        assert run_spmd(fn, 4) == [50 * (2 + 4)] * 4

    def test_sixteen_ranks(self):
        def fn(comm):
            return comm.all_reduce(np.ones(4, dtype=np.float32))[0]

        assert run_spmd(fn, 16) == [16.0] * 16

    def test_thirty_two_ranks_collective_mix(self):
        """The CI smoke job's target: a 32-rank world driving a mixed
        collective sequence (AllReduce, AllGather, uneven ReduceScatter,
        barrier) to completion under the suite's SIGALRM timeout."""

        def fn(comm):
            total = 0.0
            for i in range(5):
                x = np.full(8, float(comm.rank + i), dtype=np.float32)
                total += comm.all_reduce(x)[0]
                total += comm.all_gather_concat(np.ones(1, dtype=np.float32)).sum()
                # 37 elements over 32 ranks: remainder shards exercise the
                # padded-collective path at scale.
                total += comm.reduce_scatter(np.ones(37, dtype=np.float32)).sum()
                comm.barrier()
            return total

        res = run_spmd(fn, 32, timeout=90)
        # 37 = 32 + 5: the first five ranks own one extra reduced slot worth
        # 32.0 per iteration; everything else is identical across ranks.
        assert all(abs(r - res[0]) < 1e-3 for r in res[1:5])
        assert all(abs(r - res[31]) < 1e-3 for r in res[5:31])
        assert res[0] - res[31] == 5 * 32.0

    def test_nested_group_membership(self):
        """Every rank participates in log2(n) nested halving groups."""

        def fn(comm):
            values = []
            span = comm.size
            base = 0
            while span >= 1:
                ranks = [base + i for i in range(span)]
                g = comm.group(ranks)
                values.append(comm.all_reduce(np.ones(1, dtype=np.float32), group=g)[0])
                half = span // 2
                if half == 0:
                    break
                if comm.rank >= base + half:
                    base += half
                span = half
            return values

        res = run_spmd(fn, 8)
        assert res[0][0] == 8.0 and res[0][1] == 4.0


class TestFailureInjection:
    def test_late_failure_mid_collective_chain(self):
        def fn(comm):
            for i in range(20):
                comm.all_reduce(np.ones(1, dtype=np.float32))
                if i == 13 and comm.rank == 2:
                    raise RuntimeError("injected fault at step 13")
            return True

        with pytest.raises(SpmdError, match="injected fault"):
            run_spmd(fn, 4, timeout=20)

    def test_failure_in_subgroup_unblocks_other_group(self):
        def fn(comm):
            if comm.rank < 2:
                g = comm.group([0, 1])
                if comm.rank == 0:
                    raise ValueError("group-0 fault")
                comm.all_reduce(np.ones(1, dtype=np.float32), group=g)
            else:
                g = comm.group([2, 3])
                for _ in range(5):
                    comm.all_reduce(np.ones(1, dtype=np.float32), group=g)
            return True

        with pytest.raises(SpmdError, match="group-0 fault"):
            run_spmd(fn, 4, timeout=20)

    def test_mismatched_collective_order_times_out(self):
        """A rank calling a different collective sequence deadlocks —
        detected by the timeout, not a hang."""

        def fn(comm):
            if comm.rank == 0:
                comm.all_reduce(np.ones(1, dtype=np.float32))  # others never join
            else:
                comm.barrier()
            return True

        with pytest.raises(SpmdError):
            run_spmd(fn, 2, timeout=1.0)

    def test_world_reusable_after_failure(self):
        """A failed run must not poison subsequent runs (fresh worlds)."""

        def bad(comm):
            raise RuntimeError("nope")

        with pytest.raises(SpmdError):
            run_spmd(bad, 2, timeout=5)

        def good(comm):
            return comm.all_reduce(np.ones(1, dtype=np.float32))[0]

        assert run_spmd(good, 2) == [2.0, 2.0]


class TestConcurrentWorlds:
    def test_two_worlds_in_parallel_threads(self):
        """Independent SPMD worlds launched from different driver threads
        must not interfere (trackers/counters are context-local)."""
        results = {}

        def driver(name, world, value):
            def fn(comm):
                return comm.all_reduce(np.full(2, value, dtype=np.float32))[0]

            results[name] = run_spmd(fn, world)

        threads = [
            threading.Thread(target=driver, args=("a", 2, 1.0)),
            threading.Thread(target=driver, args=("b", 4, 10.0)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert results["a"] == [2.0, 2.0]
        assert results["b"] == [40.0] * 4


class TestTrafficUnderStress:
    def test_log_consistency_across_heavy_usage(self):
        def fn(comm):
            for _ in range(40):
                comm.all_reduce(np.ones(64, dtype=np.float32))
            return None

        _, world = run_spmd_world(fn, 4)
        assert world.traffic.count(op="all_reduce") == 4 * 40
        assert world.traffic.payload_bytes(op="all_reduce", rank=2) == 40 * 64 * 4

    def test_memory_trackers_isolated_per_rank(self):
        from repro.tensor import MemoryTracker, Tensor, track_memory

        def fn(comm):
            tracker = MemoryTracker(name=f"rank{comm.rank}")
            with track_memory(tracker):
                size = 1000 * (comm.rank + 1)
                t = Tensor.zeros((size,))
                peak = tracker.peak_bytes
            del t
            return peak

        res = run_spmd(fn, 4)
        for rank, peak in enumerate(res):
            assert peak >= 4000 * (rank + 1)
            assert peak < 4000 * (rank + 1) + 4096  # no cross-rank bleed
