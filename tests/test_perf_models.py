"""Tests for the analytic performance models and their structural claims."""

import numpy as np
import pytest

from repro.core import plan_channel_stage, sweep_tree_configs
from repro.perf import (
    FIGURE_BATCH,
    MODEL_ZOO,
    ModelConfig,
    ParallelPlan,
    Precision,
    Workload,
    collective_time,
    estimate_flops,
    estimate_memory,
    estimate_step_comm,
    frontier,
    max_batch_per_replica,
    named_model,
    sustained_estimate,
    throughput_gain,
    transformer_param_count,
)

M = frontier()
SMALL = ModelConfig("test", dim=256, depth=4, heads=8)


class TestModelZoo:
    @pytest.mark.parametrize("name", ["7B", "15B", "26B"])
    def test_paper_sizes_match_labels(self, name):
        cfg = named_model(name)
        count = transformer_param_count(cfg)
        label = float(name[:-1]) * 1e9
        assert abs(count - label) / label < 0.15

    def test_paper_dims_exact(self):
        assert named_model("7B").dim == 4096
        assert named_model("15B").dim == 6144
        assert named_model("26B").dim == 8192
        for n in ("7B", "15B", "26B"):
            assert named_model(n).depth == 32 and named_model(n).heads == 32

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            named_model("999B")

    def test_zoo_monotone_in_size(self):
        sizes = [transformer_param_count(MODEL_ZOO[n]) for n in ("100M", "1B", "3B", "7B", "15B", "26B")]
        assert sizes == sorted(sizes)


class TestMemoryModel:
    def test_monotone_in_channels(self):
        t1 = estimate_memory(SMALL, Workload(64, 4)).total
        t2 = estimate_memory(SMALL, Workload(128, 4)).total
        assert t2 > t1

    def test_monotone_in_batch(self):
        t1 = estimate_memory(SMALL, Workload(64, 2)).total
        t2 = estimate_memory(SMALL, Workload(64, 8)).total
        assert t2 > t1

    def test_aggregation_quadratic_in_channels(self):
        a1 = estimate_memory(SMALL, Workload(128, 1)).aggregation_act
        a2 = estimate_memory(SMALL, Workload(256, 1)).aggregation_act
        assert a2 / a1 > 2.5  # super-linear: the quadratic score term

    def test_tokenization_linear_in_channels(self):
        t1 = estimate_memory(SMALL, Workload(128, 1)).tokenization
        t2 = estimate_memory(SMALL, Workload(256, 1)).tokenization
        np.testing.assert_allclose(t2 / t1, 2.0, rtol=0.05)

    def test_tp_does_not_shard_tokenization(self):
        """The paper's central observation (§4.3)."""
        base = estimate_memory(SMALL, Workload(256, 4), ParallelPlan("tp", tp=1))
        tp4 = estimate_memory(SMALL, Workload(256, 4), ParallelPlan("tp", tp=4))
        np.testing.assert_allclose(tp4.tokenization, base.tokenization, rtol=1e-6)
        assert tp4.transformer < base.transformer / 2

    def test_dchag_shards_tokenization(self):
        tp4 = estimate_memory(SMALL, Workload(256, 4), ParallelPlan("tp", tp=4))
        dc4 = estimate_memory(SMALL, Workload(256, 4), ParallelPlan("dchag", tp=4))
        assert dc4.tokenization < tp4.tokenization / 2

    def test_dist_tok_gather_overhead(self):
        """Distributed tokenization pays a full-token gather buffer (§4.4)."""
        dt = estimate_memory(SMALL, Workload(256, 4), ParallelPlan("dist_tok", tp=4))
        dc = estimate_memory(SMALL, Workload(256, 4), ParallelPlan("dchag", tp=4))
        # dist_tok gathers all C channels, D-CHAG one per rank: ratio C/tp.
        assert dt.gather_buffers == pytest.approx(64 * dc.gather_buffers)

    def test_fsdp_shards_state_not_activations(self):
        f1 = estimate_memory(SMALL, Workload(64, 4), ParallelPlan("tp", fsdp=1))
        f8 = estimate_memory(SMALL, Workload(64, 4), ParallelPlan("tp", fsdp=8))
        assert f8.transformer_state < f1.transformer_state / 2
        np.testing.assert_allclose(f8.transformer_act, f1.transformer_act, rtol=1e-6)

    def test_linear_partial_agg_smaller_than_cross(self):
        lin = estimate_memory(SMALL, Workload(256, 4), ParallelPlan("dchag", tp=4, dchag_kind="linear"))
        cro = estimate_memory(SMALL, Workload(256, 4), ParallelPlan("dchag", tp=4, dchag_kind="cross"))
        assert lin.aggregation < cro.aggregation

    def test_deeper_cross_tree_cuts_activation_quadratic(self):
        t0 = estimate_memory(SMALL, Workload(512, 4), ParallelPlan("dchag", tp=2, dchag_kind="cross", dchag_fanout=0))
        t8 = estimate_memory(SMALL, Workload(512, 4), ParallelPlan("dchag", tp=2, dchag_kind="cross", dchag_fanout=8))
        assert t8.aggregation_act < t0.aggregation_act
        assert t8.aggregation_state > t0.aggregation_state  # extra layers cost params

    def test_component_dict_sums_to_total(self):
        bd = estimate_memory(SMALL, Workload(64, 2))
        np.testing.assert_allclose(sum(bd.component_dict().values()), bd.total, rtol=1e-9)


class TestFlopsModel:
    def test_train_flops_against_runtime_counter(self):
        """The closed-form tokenization formula matches the runtime counter."""
        from repro.nn import PatchTokenizer
        from repro.tensor import Tensor, count_flops

        rng = np.random.default_rng(0)
        cfg = ModelConfig("tiny", dim=32, depth=1, heads=4, patch=4, image_hw=(16, 16))
        tok = PatchTokenizer(8, 4, 32, rng)
        imgs = rng.standard_normal((2, 8, 16, 16)).astype(np.float32)
        with count_flops() as counter:
            tok(imgs)
        analytic = estimate_flops(cfg, Workload(8, 2)).tokenization
        assert abs(counter.by_category["matmul"] - analytic) / analytic < 0.01

    def test_vit_flops_against_runtime_counter(self):
        from repro.nn import ViTEncoder
        from repro.tensor import Tensor, count_flops

        rng = np.random.default_rng(0)
        cfg = ModelConfig("tiny", dim=32, depth=2, heads=4, patch=4, image_hw=(16, 16))
        enc = ViTEncoder(32, 2, 4, rng)
        x = Tensor(rng.standard_normal((2, cfg.tokens, 32)).astype(np.float32))
        with count_flops() as counter:
            enc(x)
        analytic = estimate_flops(cfg, Workload(8, 2)).transformer
        measured = counter.by_category["matmul"]
        assert abs(measured - analytic) / analytic < 0.05

    def test_dchag_linear_removes_agg_flops(self):
        base = estimate_flops(SMALL, Workload(256, 4), ParallelPlan("tp", tp=4))
        dc = estimate_flops(SMALL, Workload(256, 4), ParallelPlan("dchag", tp=4, dchag_kind="linear"))
        assert dc.aggregation < base.aggregation / 10

    def test_tp_tokenization_redundant(self):
        t1 = estimate_flops(SMALL, Workload(128, 2), ParallelPlan("tp", tp=1))
        t4 = estimate_flops(SMALL, Workload(128, 2), ParallelPlan("tp", tp=4))
        assert t1.tokenization == t4.tokenization  # replicated on every rank


class TestCommModel:
    def test_intra_faster_than_inter(self):
        intra = collective_time("all_reduce", 1 << 20, 8, M, intra_node=True)
        inter = collective_time("all_reduce", 1 << 20, 8, M, intra_node=False)
        assert intra < inter

    def test_single_rank_free(self):
        assert collective_time("all_gather", 1 << 20, 1, M, True) == 0.0

    def test_dchag_gather_cheaper_than_dist_tok(self):
        w = Workload(512, 8)
        cfg = named_model("1.7B")
        dt = estimate_step_comm(cfg, w, ParallelPlan("dist_tok", tp=8), M)
        dc = estimate_step_comm(cfg, w, ParallelPlan("dchag", tp=8), M)
        assert dc.gather_time < dt.gather_time / 50

    def test_tp16_spans_nodes(self):
        """TP beyond one node (8 GCDs) rides the slow interconnect."""
        w = Workload(128, 8)
        cfg = named_model("7B")
        t8 = estimate_step_comm(cfg, w, ParallelPlan("tp", tp=8), M).tp_time
        t16 = estimate_step_comm(cfg, w, ParallelPlan("tp", tp=16), M).tp_time
        assert t16 > 2 * t8


class TestThroughput:
    def test_max_batch_positive_when_fits(self):
        assert max_batch_per_replica(SMALL, 64, ParallelPlan("serial"), M) > 0

    def test_max_batch_zero_when_oom(self):
        assert max_batch_per_replica(named_model("26B"), 256, ParallelPlan("serial"), M) == 0

    def test_dchag_enables_larger_batches(self):
        cfg = named_model("1.7B")
        b_tp = max_batch_per_replica(cfg, 512, ParallelPlan("tp", tp=2), M)
        b_dc = max_batch_per_replica(cfg, 512, ParallelPlan("dchag", tp=2, dchag_kind="linear"), M)
        assert b_dc > 2 * b_tp

    def test_gain_positive_for_paper_configs(self):
        cfg = named_model("7B")
        g = throughput_gain(cfg, 512, ParallelPlan("dchag", tp=16, dchag_kind="linear"), ParallelPlan("tp", tp=16), M)
        assert 0.3 < g < 1.5  # paper: +70 %

    def test_linear_beats_cross(self):
        cfg = named_model("7B")
        base = ParallelPlan("tp", tp=16)
        gl = throughput_gain(cfg, 256, ParallelPlan("dchag", tp=16, dchag_kind="linear"), base, M)
        gc = throughput_gain(cfg, 256, ParallelPlan("dchag", tp=16, dchag_kind="cross"), base, M)
        assert gl > gc

    def test_gains_grow_with_channels(self):
        """§6.1: 'for a fixed model size, better gains as channels increase'."""
        cfg = named_model("15B")
        base = ParallelPlan("tp", tp=16)
        plan = ParallelPlan("dchag", tp=16, dchag_kind="linear")
        assert throughput_gain(cfg, 256, plan, base, M) > throughput_gain(cfg, 128, plan, base, M)

    def test_gains_shrink_with_model_size(self):
        """§6.1: 'as transformer parameters grow, gains become smaller' —
        at the channel counts each model can actually run (Fig. 13 pairs
        channels to model size: 7B@512, 15B@256, 26B@128)."""
        base = ParallelPlan("tp", tp=16)
        plan = ParallelPlan("dchag", tp=16, dchag_kind="linear")
        g7 = throughput_gain(named_model("7B"), 512, plan, base, M)
        g15 = throughput_gain(named_model("15B"), 256, plan, base, M)
        g26 = throughput_gain(named_model("26B"), 128, plan, base, M)
        assert g7 > g15 > g26

    def test_infeasible_baseline_reports_inf(self):
        cfg = named_model("26B")
        g = throughput_gain(
            cfg, 256,
            ParallelPlan("dchag", tp=32, dchag_kind="linear"),
            ParallelPlan("tp", tp=32), M,
            precision=Precision(),
        )
        est = sustained_estimate(cfg, 256, ParallelPlan("tp", tp=32), M, micro_batch=FIGURE_BATCH["fig14"])
        assert not est.fits
        assert g == float("inf") or g > 0


class TestPlanner:
    def test_planner_picks_linear_tree0_like_paper(self):
        """§4.5: 'the best performance is achieved with Tree0-L'."""
        cfg = named_model("1.7B")
        choice = plan_channel_stage(cfg, Workload(512, 8), M, tp=2)
        assert choice.plan.dchag_kind == "linear"
        assert choice.plan.dchag_fanout == 0

    def test_sweep_covers_both_kinds(self):
        cfg = named_model("1.7B")
        choices = sweep_tree_configs(cfg, Workload(512, 8), M, tp=2)
        kinds = {c.plan.dchag_kind for c in choices}
        assert kinds == {"linear", "cross"}

    def test_sweep_skips_too_wide_trees(self):
        choices = sweep_tree_configs(SMALL, Workload(8, 1), M, tp=4, fanouts=(0, 2, 8))
        fanouts = {c.plan.dchag_fanout for c in choices}
        assert 8 not in fanouts  # 8 > 2 local channels
