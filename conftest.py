"""Suite-wide guards: a per-test wall-clock timeout.

The SPMD runtime aborts deadlocked collectives itself (run_spmd's timeout),
but a hang anywhere else — a livelocked thread, an accidental infinite loop
in a model under test — would stall the whole suite.  The image ships no
pytest-timeout plugin, so this implements the ``timeout`` ini option with
SIGALRM: the alarm fires in the main thread and raises, failing the test
instead of hanging CI.  Worker threads created by run_spmd are daemons, so
an interrupted test does not leak blocking threads into the next one.
"""

from __future__ import annotations

import contextlib
import signal
import threading

import pytest


def pytest_addoption(parser):
    parser.addini("timeout", "per-test wall-clock timeout in seconds (0 disables)", default="300")


@contextlib.contextmanager
def _alarm(config):
    """Raise TimeoutError in the main thread after the configured limit."""
    try:
        limit = float(config.getini("timeout"))
    except (TypeError, ValueError):
        limit = 0.0
    if (
        limit <= 0
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def on_alarm(signum, frame):
        raise TimeoutError(f"test phase exceeded the {limit:.0f}s per-test timeout")

    old_handler = signal.signal(signal.SIGALRM, on_alarm)
    signal.setitimer(signal.ITIMER_REAL, limit)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, old_handler)


# Each phase gets its own allotment: expensive module-scoped fixtures (e.g.
# the trained-model fixtures in tests/test_dchag_sync.py) run during *setup*
# of the first test, so wrapping only the call phase would let them hang.


@pytest.hookimpl(wrapper=True)
def pytest_runtest_setup(item):
    with _alarm(item.config):
        return (yield)


@pytest.hookimpl(wrapper=True)
def pytest_runtest_call(item):
    with _alarm(item.config):
        return (yield)


@pytest.hookimpl(wrapper=True)
def pytest_runtest_teardown(item):
    with _alarm(item.config):
        return (yield)
