"""Data transforms and channel-subset utilities.

Includes the channel-flexibility feature §2.1 highlights: cross-attention
aggregation "allows the model to generalize or fine-tune on subsets of the
original channel dimensions while still leveraging the full model capacity".
:func:`subset_channel_frontend` carves a trained front-end down to a channel
subset (slicing its tokenizer weights and ID table) so a 500-band model can
run inference on, say, 80 available bands.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "random_flip",
    "channel_dropout",
    "add_noise",
    "Normalizer",
    "subset_channel_frontend",
]


def random_flip(images: np.ndarray, rng: np.random.Generator, p: float = 0.5) -> np.ndarray:
    """Random horizontal/vertical flips of ``[B, C, H, W]`` (spatial axes
    only — spectral/channel content untouched)."""
    out = images
    if rng.random() < p:
        out = out[..., ::-1]
    if rng.random() < p:
        out = out[..., ::-1, :]
    return np.ascontiguousarray(out)


def channel_dropout(
    images: np.ndarray, rng: np.random.Generator, drop_fraction: float = 0.1
) -> tuple[np.ndarray, np.ndarray]:
    """Zero a random channel subset; returns ``(images, kept_mask)``.

    Simulates missing spectral bands / unavailable variables — the
    heterogeneous-source robustness motivating channel aggregation (§2.1).
    """
    if not 0.0 <= drop_fraction < 1.0:
        raise ValueError("drop_fraction must be in [0, 1)")
    c = images.shape[1]
    n_drop = int(round(c * drop_fraction))
    kept = np.ones(c, dtype=bool)
    if n_drop:
        kept[rng.choice(c, size=n_drop, replace=False)] = False
    out = images.copy()
    out[:, ~kept] = 0.0
    return out, kept


def add_noise(images: np.ndarray, rng: np.random.Generator, std: float = 0.01) -> np.ndarray:
    """Additive Gaussian sensor noise."""
    return (images + rng.standard_normal(images.shape) * std).astype(images.dtype)


class Normalizer:
    """Per-channel standardization with stats fitted on training data."""

    def __init__(self) -> None:
        self.mean: np.ndarray | None = None
        self.std: np.ndarray | None = None

    def fit(self, images: np.ndarray) -> "Normalizer":
        """*images*: ``[B, C, H, W]``."""
        self.mean = images.mean(axis=(0, 2, 3), keepdims=True).astype(np.float32)
        self.std = (images.std(axis=(0, 2, 3), keepdims=True) + 1e-6).astype(np.float32)
        return self

    def transform(self, images: np.ndarray) -> np.ndarray:
        if self.mean is None:
            raise RuntimeError("Normalizer.fit must run first")
        return ((images - self.mean) / self.std).astype(np.float32)

    def inverse(self, images: np.ndarray) -> np.ndarray:
        if self.mean is None:
            raise RuntimeError("Normalizer.fit must run first")
        return (images * self.std + self.mean).astype(np.float32)


def subset_channel_frontend(frontend, indices: np.ndarray):
    """Build a front-end over a channel *subset* from a trained one.

    Slices the per-channel tokenizer weights and the channel-ID table at
    *indices*; the (channel-count-agnostic) cross-attention aggregator is
    shared with the original.  Works for
    :class:`~repro.models.SerialChannelFrontend` with cross-attention
    aggregation.
    """
    from ..models.channel_vit import SerialChannelFrontend
    from ..nn import ChannelCrossAttention, ChannelIDEmbedding, PatchTokenizer

    if not isinstance(frontend, SerialChannelFrontend):
        raise TypeError("subset_channel_frontend expects a SerialChannelFrontend")
    if not isinstance(frontend.aggregator, ChannelCrossAttention):
        raise TypeError(
            "channel subsetting requires a cross-attention aggregator "
            "(a LinearChannelMixer is bound to its channel count)"
        )
    idx = np.asarray(indices)
    if idx.ndim != 1 or len(idx) < 1:
        raise ValueError("indices must be a non-empty 1-D array")
    if idx.min() < 0 or idx.max() >= frontend.channels:
        raise ValueError(f"indices out of range for {frontend.channels} channels")

    tok = frontend.tokenizer
    new = SerialChannelFrontend.__new__(SerialChannelFrontend)
    SerialChannelFrontend.__bases__[0].__init__(new)  # Module.__init__
    new.channels = len(idx)
    new.tokenizer = PatchTokenizer(
        len(idx), tok.patch, tok.dim,
        weight=tok.weight.data[idx].copy(),
        bias_value=tok.bias.data[idx].copy(),
    )
    new.channel_ids = ChannelIDEmbedding(
        len(idx), tok.dim, table=frontend.channel_ids.table.data[idx].copy()
    )
    new.aggregator = frontend.aggregator  # shared: channel-count agnostic
    return new
