"""Regridding utilities (xESMF substitute, paper §5.2).

The paper regrids ERA5 from 0.25° (720×1440) to 5.625° (32×64) with xESMF's
bilinear method.  We implement the three algorithms the paper names —
bilinear, nearest-neighbour and (first-order) conservative — for regular
lat-lon grids.  Conservative regridding preserves the area-weighted mean,
which the property tests assert.
"""

from __future__ import annotations

import numpy as np
from scipy.interpolate import RegularGridInterpolator

__all__ = ["Grid", "regrid", "bilinear_regrid", "nearest_regrid", "conservative_regrid"]


class Grid:
    """A regular global lat-lon grid with cell-centre coordinates."""

    def __init__(self, n_lat: int, n_lon: int) -> None:
        if n_lat < 2 or n_lon < 2:
            raise ValueError("grid must be at least 2x2")
        self.n_lat = n_lat
        self.n_lon = n_lon
        self.lats = np.linspace(-90 + 90.0 / n_lat, 90 - 90.0 / n_lat, n_lat)
        self.lons = np.linspace(0.0, 360.0, n_lon, endpoint=False)

    @property
    def shape(self) -> tuple[int, int]:
        return (self.n_lat, self.n_lon)

    def cell_weights(self) -> np.ndarray:
        """cos(lat) area weights, shape [n_lat, 1] (broadcastable)."""
        return np.cos(np.deg2rad(self.lats))[:, None]

    def __repr__(self) -> str:  # pragma: no cover
        return f"Grid({self.n_lat}x{self.n_lon}, {180.0 / self.n_lat:.3f} deg)"


def _check_field(field: np.ndarray, grid: Grid) -> np.ndarray:
    field = np.asarray(field, dtype=np.float64)
    if field.shape[-2:] != grid.shape:
        raise ValueError(f"field shape {field.shape[-2:]} != grid {grid.shape}")
    return field


def bilinear_regrid(field: np.ndarray, src: Grid, dst: Grid) -> np.ndarray:
    """Bilinear interpolation with periodic longitude (the paper's choice)."""
    field = _check_field(field, src)
    lead = field.shape[:-2]
    flat = field.reshape(-1, *src.shape)
    # Pad one periodic longitude column so dst lons beyond src.lons[-1] work.
    lons = np.concatenate([src.lons, [src.lons[0] + 360.0]])
    out = np.empty((flat.shape[0], dst.n_lat, dst.n_lon), dtype=np.float64)
    pts_lat = np.clip(dst.lats, src.lats[0], src.lats[-1])
    mesh = np.stack(np.meshgrid(pts_lat, dst.lons, indexing="ij"), axis=-1)
    for i, f in enumerate(flat):
        fp = np.concatenate([f, f[:, :1]], axis=1)
        interp = RegularGridInterpolator((src.lats, lons), fp, method="linear")
        out[i] = interp(mesh.reshape(-1, 2)).reshape(dst.shape)
    return out.reshape(*lead, *dst.shape).astype(np.float32)


def nearest_regrid(field: np.ndarray, src: Grid, dst: Grid) -> np.ndarray:
    """Nearest-neighbour sampling (periodic in longitude)."""
    field = _check_field(field, src)
    lat_idx = np.abs(src.lats[None, :] - dst.lats[:, None]).argmin(axis=1)
    dlon = np.abs((src.lons[None, :] - dst.lons[:, None] + 180.0) % 360.0 - 180.0)
    lon_idx = dlon.argmin(axis=1)
    return field[..., lat_idx[:, None], lon_idx[None, :]].astype(np.float32)


def conservative_regrid(field: np.ndarray, src: Grid, dst: Grid) -> np.ndarray:
    """First-order conservative (area-weighted box averaging).

    Requires the destination resolution to divide the source resolution
    evenly (the ERA5 0.25° → 5.625° case is a 1:22.5 ratio — we support the
    integer-factor case, e.g. 0.25°→4° or 1.40625°→5.625°).
    """
    field = _check_field(field, src)
    if src.n_lat % dst.n_lat or src.n_lon % dst.n_lon:
        raise ValueError(
            f"conservative regrid needs integer coarsening, got {src.shape} -> {dst.shape}"
        )
    fy = src.n_lat // dst.n_lat
    fx = src.n_lon // dst.n_lon
    lead = field.shape[:-2]
    blocks = field.reshape(*lead, dst.n_lat, fy, dst.n_lon, fx)
    w = np.cos(np.deg2rad(src.lats)).reshape(dst.n_lat, fy)
    w = w / w.sum(axis=1, keepdims=True)
    out = np.einsum("...ijkl,ij->...ik", blocks, w) / fx
    return out.astype(np.float32)


def regrid(field: np.ndarray, src: Grid, dst: Grid, method: str = "bilinear") -> np.ndarray:
    """Dispatch on *method* ∈ {bilinear, nearest, conservative}."""
    if method == "bilinear":
        return bilinear_regrid(field, src, dst)
    if method == "nearest":
        return nearest_regrid(field, src, dst)
    if method == "conservative":
        return conservative_regrid(field, src, dst)
    raise ValueError(f"unknown regrid method {method!r}")
