"""Minimal Dataset/DataLoader abstractions (torch.utils.data substitute)."""

from __future__ import annotations

from typing import Callable, Iterator, Sequence

import numpy as np

__all__ = ["ArrayDataset", "DataLoader"]


class ArrayDataset:
    """Wraps aligned arrays/sequences; ``dataset[i]`` returns a tuple."""

    def __init__(self, *arrays: Sequence) -> None:
        if not arrays:
            raise ValueError("need at least one array")
        n = len(arrays[0])
        for a in arrays:
            if len(a) != n:
                raise ValueError("all arrays must have equal length")
        self.arrays = arrays

    def __len__(self) -> int:
        return len(self.arrays[0])

    def __getitem__(self, i: int):
        items = tuple(a[i] for a in self.arrays)
        return items if len(items) > 1 else items[0]


class DataLoader:
    """Batches over a dataset with optional shuffling and a collate hook.

    The dataset needs ``__len__`` and ``__getitem__``; items are stacked
    with ``np.stack`` per field (tuples are stacked field-wise).
    """

    def __init__(
        self,
        dataset,
        batch_size: int,
        shuffle: bool = False,
        rng: np.random.Generator | None = None,
        drop_last: bool = True,
        collate: Callable | None = None,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.rng = rng if rng is not None else np.random.default_rng()
        self.drop_last = drop_last
        self.collate = collate if collate is not None else self._default_collate

    @staticmethod
    def _default_collate(items: list):
        first = items[0]
        if isinstance(first, tuple):
            return tuple(np.stack([it[k] for it in items]) for k in range(len(first)))
        return np.stack(items)

    def __len__(self) -> int:
        n = len(self.dataset)
        return n // self.batch_size if self.drop_last else -(-n // self.batch_size)

    def __iter__(self) -> Iterator:
        order = np.arange(len(self.dataset))
        if self.shuffle:
            self.rng.shuffle(order)
        stop = len(self) * self.batch_size if self.drop_last else len(order)
        for lo in range(0, stop, self.batch_size):
            idx = order[lo : lo + self.batch_size]
            if self.drop_last and len(idx) < self.batch_size:
                break
            yield self.collate([self.dataset[int(i)] for i in idx])
