"""Synthetic APPL-like hyperspectral plant imagery (paper §5.1 substitute).

The real dataset — 494 VNIR hyperspectral images of Poplar, 500 spectral
bands over 400–900 nm, from ORNL's Advanced Plant Phenotyping Laboratory —
is not distributable.  This generator produces images with the same tensor
shapes and the same *structure* that makes the MAE task learnable:

* a **linear spectral mixing model**: every pixel is a convex combination of
  a few endmember spectra (leaf, stem, soil, background panel), so the 500
  channels are strongly correlated along smooth spectral signatures
  (vegetation red-edge, chlorophyll absorption, soil slope);
* **spatially smooth abundance maps** with plant-like elliptical lobes, so
  masked patches are predictable from context;
* band-dependent sensor noise.

``pseudo_rgb`` mirrors the paper's Fig. 11 visualisation trick.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import ndimage

__all__ = ["EndmemberLibrary", "HyperspectralConfig", "HyperspectralDataset", "pseudo_rgb"]


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-x))


@dataclass(frozen=True)
class EndmemberLibrary:
    """Reflectance spectra of the scene's pure materials on a wavelength grid."""

    wavelengths_nm: np.ndarray  # [C]
    spectra: np.ndarray         # [K, C], rows normalised to [0, 1]
    names: tuple[str, ...]

    @staticmethod
    def vnir(channels: int = 500, lo_nm: float = 400.0, hi_nm: float = 900.0) -> "EndmemberLibrary":
        """Leaf / stem / soil / panel endmembers over the APPL VNIR range."""
        wl = np.linspace(lo_nm, hi_nm, channels)
        # Healthy leaf: green bump at 550, chlorophyll absorption at 680,
        # sharp red-edge to the NIR plateau at ~720 nm.
        leaf = (
            0.12
            + 0.10 * np.exp(-0.5 * ((wl - 550) / 25.0) ** 2)
            - 0.06 * np.exp(-0.5 * ((wl - 680) / 18.0) ** 2)
            + 0.55 * _sigmoid((wl - 715) / 12.0)
        )
        # Stem/bark: muted red-edge, browner visible slope.
        stem = 0.15 + 0.0004 * (wl - 400) + 0.25 * _sigmoid((wl - 730) / 30.0)
        # Soil: gently increasing, featureless.
        soil = 0.08 + 0.00045 * (wl - 400)
        # Calibration panel: flat and bright.
        panel = np.full_like(wl, 0.85)
        spectra = np.stack([leaf, stem, soil, panel]).astype(np.float32)
        return EndmemberLibrary(
            wavelengths_nm=wl.astype(np.float32),
            spectra=np.clip(spectra, 0.0, 1.0),
            names=("leaf", "stem", "soil", "panel"),
        )


@dataclass(frozen=True)
class HyperspectralConfig:
    channels: int = 500
    height: int = 64
    width: int = 64
    n_images: int = 494          # matches the APPL Poplar subset size
    noise_std: float = 0.01
    smoothness: float = 4.0      # Gaussian blur sigma of the abundance fields
    seed: int = 0


class HyperspectralDataset:
    """Deterministic, lazily generated synthetic hyperspectral images.

    ``dataset[i]`` → ``[C, H, W]`` float32 in [0, ~1].  Images are generated
    per-index from ``seed + i`` so any subset is reproducible without holding
    494 × 500-band images in memory.
    """

    def __init__(self, config: HyperspectralConfig = HyperspectralConfig()) -> None:
        self.config = config
        self.library = EndmemberLibrary.vnir(config.channels)

    def __len__(self) -> int:
        return self.config.n_images

    def _abundances(self, rng: np.random.Generator) -> np.ndarray:
        """[K, H, W] convex abundance maps with plant-like structure."""
        cfg = self.config
        h, w = cfg.height, cfg.width
        yy, xx = np.mgrid[0:h, 0:w].astype(np.float64)
        # Plant mask: a few elliptical leaf lobes around the image centre.
        plant = np.zeros((h, w))
        n_lobes = int(rng.integers(3, 7))
        for _ in range(n_lobes):
            cy = h / 2 + rng.normal(0, h / 8)
            cx = w / 2 + rng.normal(0, w / 8)
            ry = rng.uniform(h / 10, h / 4)
            rx = rng.uniform(w / 10, w / 4)
            theta = rng.uniform(0, np.pi)
            dy, dx = yy - cy, xx - cx
            u = dy * np.cos(theta) + dx * np.sin(theta)
            v = -dy * np.sin(theta) + dx * np.cos(theta)
            plant = np.maximum(plant, _sigmoid(4.0 * (1.0 - (u / ry) ** 2 - (v / rx) ** 2)))
        stem_frac = ndimage.gaussian_filter(rng.random((h, w)), cfg.smoothness)
        stem_frac = 0.15 + 0.25 * (stem_frac - stem_frac.min()) / np.ptp(stem_frac + 1e-9)
        leaf = plant * (1.0 - stem_frac)
        stem = plant * stem_frac
        # Background splits between soil and the calibration panel (a strip).
        bg = 1.0 - plant
        panel = np.zeros((h, w))
        panel[: max(1, h // 10), :] = 1.0
        soil = bg * (1.0 - panel)
        panel = bg * panel
        ab = np.stack([leaf, stem, soil, panel])
        return (ab / ab.sum(axis=0, keepdims=True)).astype(np.float32)

    def __getitem__(self, index: int) -> np.ndarray:
        cfg = self.config
        if not 0 <= index < cfg.n_images:
            raise IndexError(index)
        rng = np.random.default_rng(cfg.seed * 1_000_003 + index)
        ab = self._abundances(rng)                             # [K, H, W]
        img = np.einsum("kc,khw->chw", self.library.spectra, ab)
        # Mild per-image brightness variation + band-dependent sensor noise.
        img *= rng.uniform(0.85, 1.15)
        noise_scale = cfg.noise_std * (1.0 + 0.5 * np.linspace(0, 1, cfg.channels))
        img += rng.standard_normal(img.shape) * noise_scale[:, None, None]
        return np.clip(img, 0.0, 1.5).astype(np.float32)

    def batch(self, indices: list[int] | np.ndarray) -> np.ndarray:
        """Stack images for *indices* into ``[B, C, H, W]``."""
        return np.stack([self[int(i)] for i in indices])


def pseudo_rgb(image: np.ndarray, library: EndmemberLibrary) -> np.ndarray:
    """[C, H, W] hyperspectral → [H, W, 3] display image using the bands
    closest to 650/550/450 nm (the paper's Fig. 11 visualisation)."""
    wl = library.wavelengths_nm
    idx = [int(np.argmin(np.abs(wl - nm))) for nm in (650.0, 550.0, 450.0)]
    rgb = image[idx].transpose(1, 2, 0)
    lo, hi = rgb.min(), rgb.max()
    return ((rgb - lo) / (hi - lo + 1e-9)).astype(np.float32)
