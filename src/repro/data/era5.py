"""Synthetic ERA5-like weather data (paper §5.2 substitute).

The paper trains on ERA5 regridded from 0.25° to 5.625° (32 × 64), with
5 atmospheric variables on >10 pressure levels plus 3 surface variables for
**80 channels total**, and evaluates RMSE on Z500, T850 and U10.

This module synthesises a dynamically consistent substitute: smooth
geopotential fields evolve by zonal advection (a thermal-wind-like westerly
profile) plus slow Rossby-like phase drift; winds derive geostrophically
from the geopotential; temperature follows the geopotential anomaly with a
lapse-rate vertical structure; humidity decays with height.  Channels are
therefore cross-correlated exactly the way the model must exploit, and the
one-step forecasting task is learnable but not trivial.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "ERA5Config",
    "SyntheticERA5",
    "latitude_weights",
    "CHANNEL_VARIABLES",
    "EVAL_CHANNELS",
]

# The paper: 5 atmospheric variables "each across more than 10 pressure
# levels" + 3 surface variables = 80 channels.  We use 16 ERA5 levels for
# z/t/u/v and the 13 WeatherBench levels for q: 4·16 + 13 + 3 = 80.
PRESSURE_LEVELS_16 = (
    10, 50, 100, 150, 200, 250, 300, 400, 500, 600, 700, 775, 850, 925, 975, 1000
)
PRESSURE_LEVELS_13 = (50, 100, 150, 200, 250, 300, 400, 500, 600, 700, 850, 925, 1000)


def _build_channel_table() -> list[str]:
    names: list[str] = []
    for var in ("z", "t", "u", "v"):
        for lev in PRESSURE_LEVELS_16:
            names.append(f"{var}{lev}")
    for lev in PRESSURE_LEVELS_13:
        names.append(f"q{lev}")
    names += ["t2m", "u10", "v10"]
    return names


CHANNEL_VARIABLES: tuple[str, ...] = tuple(_build_channel_table())
assert len(CHANNEL_VARIABLES) == 80

#: The three variables the paper reports test RMSE for (Fig. 12).
EVAL_CHANNELS: dict[str, int] = {
    "z500": CHANNEL_VARIABLES.index("z500"),
    "t850": CHANNEL_VARIABLES.index("t850"),
    "u10": CHANNEL_VARIABLES.index("u10"),
}


def latitude_weights(n_lat: int) -> np.ndarray:
    """cos(lat) area weights, normalised to mean 1 (ClimaX convention)."""
    lats = np.linspace(-90 + 90 / n_lat, 90 - 90 / n_lat, n_lat)
    w = np.cos(np.deg2rad(lats))
    return (w / w.mean()).astype(np.float32)


@dataclass(frozen=True)
class ERA5Config:
    height: int = 32            # 5.625° grid
    width: int = 64
    n_steps: int = 256          # trajectory length
    dt_hours: float = 6.0
    lead_steps: int = 1         # forecast lead (1 step = 6 h)
    seed: int = 0
    n_modes: int = 6            # spectral richness of the initial state


class SyntheticERA5:
    """A deterministic synthetic reanalysis trajectory.

    ``dataset.fields`` is ``[T, 80, H, W]`` float32, standardized per
    channel.  ``sample(t)`` returns the ``(input, target, metadata)``
    forecasting pair at time *t*.
    """

    def __init__(self, config: ERA5Config = ERA5Config()) -> None:
        self.config = config
        self.channel_names = CHANNEL_VARIABLES
        self.fields = self._generate()

    # ------------------------------------------------------------------
    def _generate(self) -> np.ndarray:
        cfg = self.config
        h, w = cfg.height, cfg.width
        rng = np.random.default_rng(cfg.seed)
        lat = np.linspace(-np.pi / 2, np.pi / 2, h)[:, None]       # [H, 1]
        lon = np.linspace(0, 2 * np.pi, w, endpoint=False)[None, :]  # [1, W]

        # Z500-like base state: pole-to-pole gradient + travelling waves.
        amps = rng.uniform(0.3, 1.0, size=cfg.n_modes)
        zonal_k = rng.integers(1, 5, size=cfg.n_modes)
        merid_m = rng.integers(1, 4, size=cfg.n_modes)
        phases = rng.uniform(0, 2 * np.pi, size=cfg.n_modes)
        speeds = rng.uniform(-0.15, 0.35, size=cfg.n_modes)  # rad/step, mostly westerly

        levels = np.array(PRESSURE_LEVELS_16, dtype=np.float64)
        levels_q = np.array(PRESSURE_LEVELS_13, dtype=np.float64)
        # Vertical structure: waves amplify aloft (small p), like the real jet.
        z_vert = (1000.0 / levels) ** 0.35                     # [16]

        t_axis = np.arange(cfg.n_steps)
        fields = np.zeros((cfg.n_steps, 80, h, w), dtype=np.float32)

        for ti, t in enumerate(t_axis):
            anom = np.zeros((h, w))
            for a, k, m, p0, c in zip(amps, zonal_k, merid_m, phases, speeds):
                anom += a * np.cos(m * lat * 2) * np.sin(k * lon - c * t + p0)
            base = -1.5 * np.sin(lat) ** 2 + anom * np.cos(lat)  # [H, W]
            noise = rng.standard_normal((h, w)) * 0.02

            z_levels = base[None] * z_vert[:, None, None] + noise  # [16, H, W]
            # Geostrophic-ish winds from the z field (finite differences).
            dz_dy = np.gradient(z_levels, axis=1)
            dz_dx = np.gradient(z_levels, axis=2)
            f_cor = np.sin(lat) + np.sign(np.sin(lat)) * 0.2 + 1e-3  # regularised Coriolis
            u_levels = -dz_dy / f_cor
            v_levels = dz_dx / f_cor
            # Temperature ∝ −∂z/∂ln p (hypsometric), humidity decays aloft.
            t_levels = base[None] * (
                0.8 + 0.2 * np.log(levels / 10.0)[:, None, None] / np.log(100.0)
            )
            q_levels = np.exp(-(1000.0 - levels_q) / 400.0)[:, None, None] * (
                0.5 + 0.5 * np.cos(lat) + 0.1 * anom
            )
            surf_t = t_levels[-1] + 0.1 * rng.standard_normal((h, w))
            surf_u = u_levels[-1] * 0.7
            surf_v = v_levels[-1] * 0.7

            stack = np.concatenate(
                [z_levels, t_levels, u_levels, v_levels, q_levels,
                 surf_t[None], surf_u[None], surf_v[None]],
                axis=0,
            )
            fields[ti] = stack.astype(np.float32)

        # Standardize each channel over the trajectory (ClimaX-style).
        mean = fields.mean(axis=(0, 2, 3), keepdims=True)
        std = fields.std(axis=(0, 2, 3), keepdims=True) + 1e-6
        return ((fields - mean) / std).astype(np.float32)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.config.n_steps - self.config.lead_steps

    def sample(self, t: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Returns ``(input [80,H,W], target [80,H,W], metadata [2])``.

        Metadata = (normalised time-of-trajectory, lead time in days) — the
        paper's "metadata token" content (§2.1).
        """
        if not 0 <= t < len(self):
            raise IndexError(t)
        cfg = self.config
        meta = np.array(
            [t / cfg.n_steps, cfg.lead_steps * cfg.dt_hours / 24.0], dtype=np.float32
        )
        return self.fields[t], self.fields[t + cfg.lead_steps], meta

    def batch(self, ts: list[int] | np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        xs, ys, ms = zip(*(self.sample(int(t)) for t in ts))
        return np.stack(xs), np.stack(ys), np.stack(ms)

    def train_test_split(self, test_fraction: float = 0.2) -> tuple[np.ndarray, np.ndarray]:
        """Chronological split (test = the final year, like the paper)."""
        n = len(self)
        cut = int(n * (1.0 - test_fraction))
        return np.arange(cut), np.arange(cut, n)
