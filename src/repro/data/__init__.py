"""Data substrates: synthetic hyperspectral (APPL substitute), synthetic
ERA5-like weather, regridding (xESMF substitute), and loaders."""

from .era5 import (
    CHANNEL_VARIABLES,
    ERA5Config,
    EVAL_CHANNELS,
    SyntheticERA5,
    latitude_weights,
)
from .hyperspectral import (
    EndmemberLibrary,
    HyperspectralConfig,
    HyperspectralDataset,
    pseudo_rgb,
)
from .loader import ArrayDataset, DataLoader
from .regrid import Grid, bilinear_regrid, conservative_regrid, nearest_regrid, regrid
from .transforms import (
    Normalizer,
    add_noise,
    channel_dropout,
    random_flip,
    subset_channel_frontend,
)

__all__ = [
    "HyperspectralDataset",
    "HyperspectralConfig",
    "EndmemberLibrary",
    "pseudo_rgb",
    "SyntheticERA5",
    "ERA5Config",
    "CHANNEL_VARIABLES",
    "EVAL_CHANNELS",
    "latitude_weights",
    "Grid",
    "regrid",
    "bilinear_regrid",
    "nearest_regrid",
    "conservative_regrid",
    "ArrayDataset",
    "DataLoader",
    "random_flip",
    "channel_dropout",
    "add_noise",
    "Normalizer",
    "subset_channel_frontend",
]
