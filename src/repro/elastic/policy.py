"""Pluggable recovery policies: what the fleet does when ranks come and go.

The original supervisor hard-coded one answer — shrink by the dead rank,
reshard, resume.  At fleet scale the answer is a *policy decision* with real
cost trade-offs: a hot spare turns a failure into a same-size restart (zero
reshard traffic, no throughput loss), and the right checkpoint cadence is
not a constant but a function of how expensive a save is versus how often
you expect to pay for a lost segment.

:class:`RecoveryPolicy` is the protocol both consumers share:

* the live :class:`~repro.elastic.supervisor.ElasticSupervisor` consults it
  after every world abort (threaded ranks, real checkpoints);
* the :mod:`~repro.elastic.fleet` simulator replays *weeks* of scripted
  churn against several policies in seconds (pure event arithmetic, step
  cost priced by captured-schedule replay) to pick one before the real run.

Policies are **stateless**: spare-pool occupancy is passed in and returned,
so one policy instance can be evaluated against many histories concurrently
(the simulator does exactly that).

Shipped policies:

* :class:`AlwaysShrink` — the v1 behavior and the default: every failure
  shrinks the world, every arrival grows it back.
* :class:`SparePool` — hold up to *k* ranks out of the world as hot spares;
  failures consume a spare (same-size restart) before shrinking, arrivals
  refill the pool before growing.
* :class:`CostAwareCadence` — wraps another policy and chooses the
  checkpoint interval by the Young/Daly optimum from the α–β-priced save
  cost and the observed failure rate, instead of a fixed cadence.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Protocol, runtime_checkable

__all__ = [
    "StepEconomics",
    "young_daly_interval",
    "save_seconds_for",
    "RecoveryPolicy",
    "AlwaysShrink",
    "SparePool",
    "CostAwareCadence",
]


@dataclass(frozen=True)
class StepEconomics:
    """The three numbers a cadence decision needs.

    ``step_seconds`` comes from captured-schedule replay (or measurement),
    ``save_seconds`` from the α–β cost model via :func:`save_seconds_for`,
    and ``mtbf_seconds`` from the failure trace (observed or assumed mean
    time between failures for the whole fleet).
    """

    step_seconds: float
    save_seconds: float
    mtbf_seconds: float

    def __post_init__(self) -> None:
        for name in ("step_seconds", "save_seconds", "mtbf_seconds"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be > 0, got {getattr(self, name)}")


def young_daly_interval(economics: StepEconomics) -> int:
    """The Young/Daly checkpoint interval, in steps.

    The classic first-order optimum: checkpoint every
    ``tau = sqrt(2 * C * MTBF)`` seconds of useful work, where *C* is the
    save cost.  Saving more often wastes cadence overhead; less often wastes
    recomputation after a failure.  Returned in whole steps (>= 1).
    """
    tau = math.sqrt(2.0 * economics.save_seconds * economics.mtbf_seconds)
    return max(1, round(tau / economics.step_seconds))


def save_seconds_for(machine, ckpt_bytes_per_rank: float) -> float:
    """Price one blocking checkpoint save from the α–β machine description.

    Persistent-store writes stream over a rank's share of the node-egress
    link (the usual parallel-filesystem picture: every GPU's shard leaves
    the node), so the cost is one inter-node latency plus bytes over the
    per-GPU slice of node bandwidth.  *machine* is a
    :class:`~repro.perf.cost.MachineSpec`.
    """
    if ckpt_bytes_per_rank < 0:
        raise ValueError(f"ckpt_bytes_per_rank must be >= 0, got {ckpt_bytes_per_rank}")
    bw = machine.inter_node_bw_per_node / machine.gpus_per_node
    return machine.inter_latency + ckpt_bytes_per_rank / bw


@runtime_checkable
class RecoveryPolicy(Protocol):
    """The decision surface the supervisor and the fleet simulator share.

    ``on_failure`` / ``on_arrival`` map ``(world_size, spares)`` — plus the
    arrival head-count — to the next ``(world_size, spares)``.  Returning
    the same world size after a failure means "swap in a spare, restart at
    full strength"; the caller still restores from the latest checkpoint
    (the dead rank's optimizer shard exists nowhere else) but pays zero
    reshard traffic.  ``checkpoint_interval`` picks the save cadence given
    the configured default and, when available, measured step economics.
    """

    name: str
    initial_spares: int

    def on_failure(self, world_size: int, spares: int) -> tuple[int, int]: ...

    def on_arrival(self, world_size: int, spares: int, count: int) -> tuple[int, int]: ...

    def checkpoint_interval(
        self, default: int, economics: StepEconomics | None = None
    ) -> int: ...


class AlwaysShrink:
    """The v1 policy: shrink on every failure, grow on every arrival."""

    name = "always-shrink"
    initial_spares = 0

    def on_failure(self, world_size: int, spares: int) -> tuple[int, int]:
        return world_size - 1, spares

    def on_arrival(self, world_size: int, spares: int, count: int) -> tuple[int, int]:
        return world_size + count, spares

    def checkpoint_interval(
        self, default: int, economics: StepEconomics | None = None
    ) -> int:
        return default

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class SparePool:
    """Hold up to *capacity* ranks as hot spares outside the world.

    A failure consumes a spare when one is available — the world restarts at
    the **same** size (no reshard traffic, no throughput loss) — and only
    shrinks once the pool is dry.  Arrivals refill the pool first, then grow
    the world.  The cost of the policy is the spares' idle capacity; the
    fleet simulator quantifies whether that buys more goodput than it burns.
    """

    def __init__(self, capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.name = f"spare-pool-{capacity}"
        self.initial_spares = int(capacity)

    def on_failure(self, world_size: int, spares: int) -> tuple[int, int]:
        if spares > 0:
            return world_size, spares - 1
        return world_size - 1, 0

    def on_arrival(self, world_size: int, spares: int, count: int) -> tuple[int, int]:
        banked = min(count, self.capacity - spares)
        return world_size + count - banked, spares + banked

    def checkpoint_interval(
        self, default: int, economics: StepEconomics | None = None
    ) -> int:
        return default

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(capacity={self.capacity})"


class CostAwareCadence:
    """Wrap another policy, replacing its cadence with the Young/Daly optimum.

    Membership decisions delegate to *inner* (default :class:`AlwaysShrink`);
    ``checkpoint_interval`` ignores the configured default whenever step
    economics are known and returns :func:`young_daly_interval` instead —
    cheap saves or flaky fleets checkpoint often, expensive saves on stable
    fleets rarely.
    """

    def __init__(self, inner: RecoveryPolicy | None = None) -> None:
        self.inner: RecoveryPolicy = inner if inner is not None else AlwaysShrink()
        self.name = f"cost-aware[{self.inner.name}]"
        self.initial_spares = self.inner.initial_spares

    def on_failure(self, world_size: int, spares: int) -> tuple[int, int]:
        return self.inner.on_failure(world_size, spares)

    def on_arrival(self, world_size: int, spares: int, count: int) -> tuple[int, int]:
        return self.inner.on_arrival(world_size, spares, count)

    def checkpoint_interval(
        self, default: int, economics: StepEconomics | None = None
    ) -> int:
        if economics is None:
            return default
        return young_daly_interval(economics)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(inner={self.inner!r})"
