"""Deterministic failure injection for the elastic training subsystem.

A :class:`FailurePlan` scripts crashes — "kill rank *r* at step *s*" — so
tests and benchmarks can rehearse rank loss reproducibly.  Plans plug into
the runtime through ``run_spmd(..., failure_plan=plan)``: every rank calls
:meth:`~repro.dist.Communicator.tick` at its step boundaries (the
``Trainer``'s ``pre_step_hook`` is the natural place), and the plan raises
:class:`InjectedFailure` on a match, which aborts the world exactly like a
real rank loss would.

The raised error carries the (rank, step) coordinates, so an elastic
supervisor can mark that event as fired (:meth:`FailurePlan.without`) and
not re-trigger it when the surviving world re-runs the same steps after
resuming from a checkpoint.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["InjectedFailure", "RankFailure", "FailurePlan"]


class InjectedFailure(RuntimeError):
    """A scripted crash fired; carries the (rank, step) that triggered it."""

    def __init__(self, rank: int, step: int, message: str = "") -> None:
        self.rank = int(rank)
        self.step = int(step)
        text = message or f"injected failure: rank {rank} killed at step {step}"
        super().__init__(text)


@dataclass(frozen=True)
class RankFailure:
    """One scripted event: kill *rank* when it reaches *step*."""

    rank: int
    step: int
    message: str = ""

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise ValueError(f"rank must be >= 0, got {self.rank}")
        if self.step < 0:
            raise ValueError(f"step must be >= 0, got {self.step}")


@dataclass(frozen=True)
class FailurePlan:
    """An immutable set of scripted rank failures.

    ``check(rank, step)`` is the runtime-facing hook (duck-typed by
    :class:`~repro.dist.World`); everything else is plan algebra for
    supervisors.
    """

    failures: tuple[RankFailure, ...] = ()

    @classmethod
    def kill(cls, rank: int, step: int, message: str = "") -> "FailurePlan":
        """The one-event plan: kill *rank* at *step*."""
        return cls((RankFailure(rank, step, message),))

    def then(self, rank: int, step: int, message: str = "") -> "FailurePlan":
        """A new plan with one more scripted event appended."""
        return FailurePlan(self.failures + (RankFailure(rank, step, message),))

    def check(self, rank: int, step: int) -> None:
        """Raise :class:`InjectedFailure` if an event matches (rank, step)."""
        for f in self.failures:
            if f.rank == rank and f.step == step:
                raise InjectedFailure(rank, step, f.message)

    def without(self, rank: int, step: int) -> "FailurePlan":
        """The plan minus the event at (rank, step) — it already fired."""
        return FailurePlan(
            tuple(f for f in self.failures if not (f.rank == rank and f.step == step))
        )

    def __bool__(self) -> bool:
        return bool(self.failures)

    def __len__(self) -> int:
        return len(self.failures)
