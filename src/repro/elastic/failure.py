"""Deterministic failure *and arrival* injection for the elastic subsystem.

A :class:`FailurePlan` scripts the fleet's churn — "kill rank *r* at step
*s*", "a replacement rank returns at step *s*" — so tests and benchmarks can
rehearse rank loss and rank return reproducibly.  Plans plug into the
runtime through ``run_spmd(..., failure_plan=plan)``: every rank calls
:meth:`~repro.dist.Communicator.tick` at its step boundaries (the
``Trainer``'s ``pre_step_hook`` is the natural place), and the plan raises
on a match:

* :class:`InjectedFailure` for a scripted crash — aborts the world exactly
  like a real rank loss would;
* :class:`RankReturn` for a scripted arrival — also unwinds the world (a
  live SPMD world cannot admit a new member mid-collective), but it is a
  *control signal*, not a failure: the :class:`~repro.elastic.supervisor.
  ElasticSupervisor` recognizes the cause, **grows** the world by the
  returning ranks and resumes from the latest checkpoint instead of
  evicting anyone.

Both raised signals carry their coordinates, so a supervisor can mark the
event as fired (:meth:`FailurePlan.without` / :meth:`FailurePlan.
without_arrival`) and not re-trigger it when the resized world re-runs the
same steps after resuming from a checkpoint.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "InjectedFailure",
    "RankReturn",
    "RankFailure",
    "RankArrival",
    "FailurePlan",
]


class InjectedFailure(RuntimeError):
    """A scripted crash fired; carries the (rank, step) that triggered it."""

    def __init__(self, rank: int, step: int, message: str = "") -> None:
        self.rank = int(rank)
        self.step = int(step)
        text = message or f"injected failure: rank {rank} killed at step {step}"
        super().__init__(text)


class RankReturn(RuntimeError):
    """A scripted arrival fired: *count* ranks rejoin the fleet at *step*.

    Raised from :meth:`FailurePlan.check` on rank 0 only (one interruption
    per arrival, not a storm) and treated by the supervisor as a grow
    signal, never as a rank failure.
    """

    def __init__(self, step: int, count: int = 1, message: str = "") -> None:
        self.step = int(step)
        self.count = int(count)
        text = message or f"rank arrival: {count} rank(s) returned at step {step}"
        super().__init__(text)


@dataclass(frozen=True)
class RankFailure:
    """One scripted event: kill *rank* when it reaches *step*."""

    rank: int
    step: int
    message: str = ""

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise ValueError(f"rank must be >= 0, got {self.rank}")
        if self.step < 0:
            raise ValueError(f"step must be >= 0, got {self.step}")


@dataclass(frozen=True)
class RankArrival:
    """One scripted event: *count* ranks become available at *step*.

    Symmetric to :class:`RankFailure` — the steady-state fleet sees ranks
    return (repaired hosts, preempted instances handed back) as routinely
    as it sees them die.
    """

    step: int
    count: int = 1
    message: str = ""

    def __post_init__(self) -> None:
        if self.step < 0:
            raise ValueError(f"step must be >= 0, got {self.step}")
        if self.count < 1:
            raise ValueError(f"count must be >= 1, got {self.count}")


@dataclass(frozen=True)
class FailurePlan:
    """An immutable script of rank failures and rank arrivals.

    ``check(rank, step)`` is the runtime-facing hook (duck-typed by
    :class:`~repro.dist.World`); everything else is plan algebra for
    supervisors.  Failures take precedence over arrivals scripted at the
    same step (the death is what the fleet observes first).
    """

    failures: tuple[RankFailure, ...] = ()
    arrivals: tuple[RankArrival, ...] = ()

    @classmethod
    def kill(cls, rank: int, step: int, message: str = "") -> "FailurePlan":
        """The one-event plan: kill *rank* at *step*."""
        return cls((RankFailure(rank, step, message),))

    def then(self, rank: int, step: int, message: str = "") -> "FailurePlan":
        """A new plan with one more scripted failure appended."""
        return FailurePlan(
            self.failures + (RankFailure(rank, step, message),), self.arrivals
        )

    def rejoin(self, step: int, count: int = 1, message: str = "") -> "FailurePlan":
        """A new plan with a scripted arrival appended: *count* ranks
        return at *step*."""
        return FailurePlan(
            self.failures, self.arrivals + (RankArrival(step, count, message),)
        )

    def check(self, rank: int, step: int) -> None:
        """Raise on a match: :class:`InjectedFailure` for a scripted kill of
        (rank, step), :class:`RankReturn` (rank 0 only) for an arrival."""
        for f in self.failures:
            if f.rank == rank and f.step == step:
                raise InjectedFailure(rank, step, f.message)
        if rank == 0:
            for a in self.arrivals:
                if a.step == step:
                    raise RankReturn(step, a.count, a.message)

    def without(self, rank: int, step: int) -> "FailurePlan":
        """The plan minus the failure at (rank, step) — it already fired."""
        return FailurePlan(
            tuple(
                f for f in self.failures if not (f.rank == rank and f.step == step)
            ),
            self.arrivals,
        )

    def without_arrival(self, step: int) -> "FailurePlan":
        """The plan minus the arrival at *step* — it already fired."""
        return FailurePlan(
            self.failures, tuple(a for a in self.arrivals if a.step != step)
        )

    def __bool__(self) -> bool:
        return bool(self.failures or self.arrivals)

    def __len__(self) -> int:
        return len(self.failures) + len(self.arrivals)
