"""``repro.elastic`` — fault-tolerant, elastically resizable training.

The production-scale counterpart to :mod:`repro.dist`'s abort-on-failure
semantics: instead of dying with the world, training survives rank loss by
checkpointing in shards, resharding those shards to the surviving world
size, and resuming mid-schedule.

Three pieces:

* :mod:`~repro.elastic.checkpoint` — sharded checkpoints: one
  ``shard_*.npz`` per FSDP rank plus a ``manifest.json`` recording the flat
  parameter layout.  A checkpoint saved at world size N reshards to any M as
  pure data movement (bitwise), with AdamW moments carried along; DP
  replicas are deduplicated at save time.
* :mod:`~repro.elastic.failure` — deterministic failure injection:
  :class:`FailurePlan` scripts "kill rank r at step s" and plugs into
  ``run_spmd(..., failure_plan=...)`` via ``Communicator.tick``.
* :mod:`~repro.elastic.supervisor` — :class:`ElasticSupervisor` catches the
  world's :class:`~repro.dist.SpmdError`, shrinks the mesh, reshards the
  latest complete checkpoint and relaunches; resumed runs follow the same
  loss trajectory as an uninterrupted baseline.
"""

from .checkpoint import (
    MANIFEST_NAME,
    checkpoint_dir,
    checkpoint_nbytes,
    consolidate,
    latest_checkpoint,
    load_manifest,
    load_sharded,
    reshard,
    save_sharded,
)
from .failure import FailurePlan, InjectedFailure, RankFailure
from .supervisor import (
    ElasticResult,
    ElasticSupervisor,
    RecoveryEvent,
    fsdp_training_segment,
)

__all__ = [
    "MANIFEST_NAME",
    "checkpoint_dir",
    "checkpoint_nbytes",
    "consolidate",
    "latest_checkpoint",
    "load_manifest",
    "load_sharded",
    "reshard",
    "save_sharded",
    "FailurePlan",
    "InjectedFailure",
    "RankFailure",
    "ElasticResult",
    "ElasticSupervisor",
    "RecoveryEvent",
    "fsdp_training_segment",
]
