"""``repro.elastic`` — fault-tolerant, elastically resizable training.

The production-scale counterpart to :mod:`repro.dist`'s abort-on-failure
semantics: instead of dying with the world, training survives rank churn by
checkpointing in shards, resharding those shards to the next world size,
and resuming mid-schedule — shrinking when ranks die *and growing when they
return*.

Five pieces:

* :mod:`~repro.elastic.checkpoint` — sharded checkpoints: one
  ``shard_*.npz`` per FSDP rank plus a ``manifest.json`` recording the flat
  parameter layout.  A checkpoint saved at world size N reshards to any M as
  pure data movement (bitwise), with AdamW moments carried along; DP
  replicas are deduplicated at save time.  Saves can be **async**
  (double-buffered background writes via :class:`AsyncCheckpointWriter`)
  and **delta** (only units whose bytes changed since a base), with the
  manifest-last torn-save invariant preserved for both, directory-entry
  fsyncs for durability, and :func:`prune_checkpoints` for retention.
* :mod:`~repro.elastic.failure` — deterministic churn injection:
  :class:`FailurePlan` scripts "kill rank r at step s" *and* "k ranks
  return at step s" (:class:`RankArrival` → :class:`RankReturn`), plugging
  into ``run_spmd(..., failure_plan=...)`` via ``Communicator.tick``.
* :mod:`~repro.elastic.policy` — pluggable :class:`RecoveryPolicy`
  decisions: :class:`AlwaysShrink` (v1 behavior), :class:`SparePool` (hot
  spares absorb failures at zero reshard cost), :class:`CostAwareCadence`
  (Young/Daly checkpoint interval from α–β-priced save cost vs. failure
  rate).
* :mod:`~repro.elastic.supervisor` — :class:`ElasticSupervisor` catches the
  world's :class:`~repro.dist.SpmdError`, consults the policy, reshards the
  latest complete checkpoint to the next world size and relaunches; resumed
  runs follow the same loss trajectory as an uninterrupted baseline, and
  exhausted recovery raises a typed :class:`ElasticError` with the full
  event history.
* :mod:`~repro.elastic.fleet` — the capacity-planning simulator: replays
  multi-week scripted churn traces against competing policies in seconds,
  step cost priced by captured-schedule replay, results persisted to the
  :class:`~repro.obs.store.SweepStore`.
"""

from .checkpoint import (
    MANIFEST_NAME,
    AsyncCheckpointWriter,
    checkpoint_dir,
    checkpoint_nbytes,
    consolidate,
    drain_writers,
    latest_checkpoint,
    load_manifest,
    load_sharded,
    prune_checkpoints,
    reshard,
    save_sharded,
    writer_for,
)
from .failure import FailurePlan, InjectedFailure, RankArrival, RankFailure, RankReturn
from .policy import (
    AlwaysShrink,
    CostAwareCadence,
    RecoveryPolicy,
    SparePool,
    StepEconomics,
    save_seconds_for,
    young_daly_interval,
)
from .supervisor import (
    ElasticError,
    ElasticResult,
    ElasticSupervisor,
    RecoveryEvent,
    fsdp_training_segment,
)

# The fleet simulator resolves lazily (PEP 562): it pulls in the perf stack
# (replay pricing), which the live elastic machinery never needs.
_FLEET_EXPORTS = (
    "FleetEvent",
    "FleetTrace",
    "FleetCosts",
    "FleetRunResult",
    "simulate_fleet",
    "compare_policies",
)


def __getattr__(name: str):
    if name in _FLEET_EXPORTS:
        from importlib import import_module

        return getattr(import_module(".fleet", __name__), name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))

__all__ = [
    "MANIFEST_NAME",
    "AsyncCheckpointWriter",
    "checkpoint_dir",
    "checkpoint_nbytes",
    "consolidate",
    "drain_writers",
    "latest_checkpoint",
    "load_manifest",
    "load_sharded",
    "prune_checkpoints",
    "reshard",
    "save_sharded",
    "writer_for",
    "FailurePlan",
    "InjectedFailure",
    "RankArrival",
    "RankFailure",
    "RankReturn",
    "AlwaysShrink",
    "CostAwareCadence",
    "RecoveryPolicy",
    "SparePool",
    "StepEconomics",
    "save_seconds_for",
    "young_daly_interval",
    "ElasticError",
    "ElasticResult",
    "ElasticSupervisor",
    "RecoveryEvent",
    "fsdp_training_segment",
    "FleetEvent",
    "FleetTrace",
    "FleetCosts",
    "FleetRunResult",
    "simulate_fleet",
    "compare_policies",
]
