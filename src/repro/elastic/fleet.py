"""Fleet simulator: weeks of rank churn against competing recovery policies.

The capacity-planning question a production training service actually asks
is not "can we survive a failure?" but "which recovery policy — and which
checkpoint cadence — loses the least goodput over a month of realistic
churn?"  Answering it with live worlds would take a month.  This module
answers it in seconds, as pure event arithmetic:

* **step cost** comes from the captured-schedule replay engine — one
  :class:`~repro.perf.schedule.StepCostTable` anchor per world size, priced
  by :func:`~repro.perf.schedule.replay` (no threaded world ever spins up
  during simulation);
* **checkpoint, restore and reshard costs** come from the α–β
  :class:`~repro.perf.cost.CostModel` machine description
  (:meth:`FleetCosts.from_machine`);
* **churn** is a scripted :class:`FleetTrace` — failures and arrivals over
  a step horizon, hand-written or Poisson-generated from a seeded MTBF;
* **decisions** are the same :class:`~repro.elastic.policy.RecoveryPolicy`
  objects the live :class:`~repro.elastic.supervisor.ElasticSupervisor`
  consults, so a policy picked here is exactly the policy the real run
  executes.

:func:`simulate_fleet` replays one policy against one trace and returns a
:class:`FleetRunResult` (goodput, lost-work split, restore counts);
:func:`compare_policies` ranks several and persists the comparison to the
:class:`~repro.obs.store.SweepStore` (``fleet_runs`` table).

Fidelity notes.  The simulator mirrors the live supervisor's recovery
mechanics — rollback to the last *durable* checkpoint, reshard priced only
when the world size actually changes, spare swaps at zero reshard cost —
with two deliberate simplifications: an arrival a policy banks as a spare
parks without interrupting the run (a resource manager would hold the host
outside the job; the threaded runtime must restart either way), and an
async save still in flight when a failure hits is discarded as torn
(manifest-last semantics) rather than racing the failure.

``python -m repro.elastic.fleet --smoke`` is the ``elastic-smoke`` CI gate:
a >= 10k-step trace against three policies, finished in seconds, with a
deterministic pinned ranking and a store round trip.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Mapping, Sequence

import numpy as np

from .policy import RecoveryPolicy, StepEconomics, save_seconds_for

__all__ = [
    "FleetEvent",
    "FleetTrace",
    "FleetCosts",
    "FleetRunResult",
    "simulate_fleet",
    "compare_policies",
]

_KINDS = ("failure", "arrival")


@dataclass(frozen=True)
class FleetEvent:
    """One scripted churn event: *count* ranks fail or arrive at *step*.

    ``step`` is a progress coordinate: the event fires the first time the
    fleet *attempts* that step (re-runs after a rollback do not re-fire
    it — each event is consumed once, like a live
    :class:`~repro.elastic.FailurePlan` after ``without``).
    """

    step: int
    kind: str
    count: int = 1

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"kind must be one of {_KINDS}, got {self.kind!r}")
        if self.step < 0:
            raise ValueError(f"step must be >= 0, got {self.step}")
        if self.count < 1:
            raise ValueError(f"count must be >= 1, got {self.count}")


@dataclass(frozen=True)
class FleetTrace:
    """A scripted churn history over a fixed step horizon.

    ``events`` are kept sorted by step (failures before arrivals on ties:
    the death is observed first, matching
    :meth:`~repro.elastic.FailurePlan.check`).  Build one by hand for
    regression tests, or :meth:`poisson` for a statistically shaped
    multi-week trace that is still bit-for-bit reproducible from its seed.
    """

    horizon_steps: int
    events: tuple[FleetEvent, ...] = ()

    def __post_init__(self) -> None:
        if self.horizon_steps < 1:
            raise ValueError(f"horizon_steps must be >= 1, got {self.horizon_steps}")
        for ev in self.events:
            if ev.step >= self.horizon_steps:
                raise ValueError(
                    f"event at step {ev.step} is beyond the horizon "
                    f"{self.horizon_steps}"
                )
        ordered = tuple(
            sorted(self.events, key=lambda e: (e.step, _KINDS.index(e.kind)))
        )
        object.__setattr__(self, "events", ordered)

    @property
    def n_failures(self) -> int:
        return sum(e.count for e in self.events if e.kind == "failure")

    @property
    def n_arrivals(self) -> int:
        return sum(e.count for e in self.events if e.kind == "arrival")

    @property
    def mtbf_steps(self) -> float:
        """Mean steps between failures implied by the trace itself."""
        return self.horizon_steps / max(1, self.n_failures)

    @classmethod
    def poisson(
        cls,
        horizon_steps: int,
        mtbf_steps: float,
        return_after_steps: int | None = None,
        seed: int = 0,
    ) -> "FleetTrace":
        """A seeded Poisson failure process with optional scripted returns.

        Failures arrive with exponential inter-arrival times of mean
        *mtbf_steps*; when *return_after_steps* is set, every failed rank
        is handed back that many steps later (repaired host), producing
        the shrink/grow churn the elastic v2 machinery exists for.
        """
        if mtbf_steps <= 0:
            raise ValueError(f"mtbf_steps must be > 0, got {mtbf_steps}")
        rng = np.random.default_rng(seed)
        events: list[FleetEvent] = []
        at = 0.0
        while True:
            at += rng.exponential(mtbf_steps)
            step = int(at)
            if step >= horizon_steps:
                break
            events.append(FleetEvent(step, "failure"))
            if return_after_steps is not None:
                back = step + int(return_after_steps)
                if back < horizon_steps:
                    events.append(FleetEvent(back, "arrival"))
        return cls(horizon_steps, tuple(events))


def _per_world(value) -> Callable[[int], float]:
    """Normalize a per-world cost: a constant or a ``world -> seconds`` fn."""
    if callable(value):
        return value
    fixed = float(value)
    return lambda world: fixed


class FleetCosts:
    """Prices everything the simulator charges wall-clock for.

    ``step_cost`` maps world size to per-step seconds — a
    :class:`~repro.perf.schedule.StepCostTable` (replay-priced), a plain
    mapping, or any callable.  The remaining costs may each be a constant
    or a ``world -> seconds`` callable; ``reshard_seconds`` takes
    ``(old_world, new_world)`` and must be zero when the size is unchanged
    (a spare swap moves no shard bytes).
    """

    def __init__(
        self,
        step_cost: "Callable[[int], float] | Mapping[int, float]",
        save_io_seconds,
        snapshot_seconds=0.0,
        restore_seconds=None,
        reshard_seconds: Callable[[int, int], float] | float = 0.0,
    ) -> None:
        if isinstance(step_cost, Mapping):
            table = {int(k): float(v) for k, v in step_cost.items()}

            def lookup(world: int) -> float:
                try:
                    return table[world]
                except KeyError:
                    raise ValueError(
                        f"no step cost for world size {world} "
                        f"(have {sorted(table)})"
                    ) from None

            self._step = lookup
        else:
            self._step = step_cost
        self._save_io = _per_world(save_io_seconds)
        self._snapshot = _per_world(snapshot_seconds)
        self._restore = (
            self._save_io if restore_seconds is None else _per_world(restore_seconds)
        )
        if callable(reshard_seconds):
            self._reshard = reshard_seconds
        else:
            fixed = float(reshard_seconds)
            self._reshard = lambda old, new: 0.0 if old == new else fixed

    def step_seconds(self, world: int) -> float:
        return float(self._step(world))

    def save_io_seconds(self, world: int) -> float:
        return float(self._save_io(world))

    def snapshot_seconds(self, world: int) -> float:
        return float(self._snapshot(world))

    def restore_seconds(self, world: int) -> float:
        return float(self._restore(world))

    def reshard_seconds(self, old_world: int, new_world: int) -> float:
        if old_world == new_world:
            return 0.0
        return float(self._reshard(old_world, new_world))

    @classmethod
    def from_machine(
        cls,
        machine,
        model_bytes: float,
        step_cost: "Callable[[int], float] | Mapping[int, float]",
    ) -> "FleetCosts":
        """α–β pricing from a :class:`~repro.perf.cost.MachineSpec`.

        Master state is ``3 * model_bytes`` (param + AdamW m + v, the same
        accounting :func:`~repro.elastic.checkpoint.checkpoint_nbytes`
        reports), split evenly across the world.  Shard writes/reads stream
        over each rank's slice of node egress (:func:`~repro.elastic.policy.
        save_seconds_for`); the snapshot memcpy runs at intra-node
        bandwidth; a reshard re-lays-out the full master state once over
        node egress.
        """
        state = 3.0 * float(model_bytes)

        def per_rank(world: int) -> float:
            return state / world

        return cls(
            step_cost,
            save_io_seconds=lambda w: save_seconds_for(machine, per_rank(w)),
            snapshot_seconds=lambda w: machine.intra_latency
            + per_rank(w) / machine.intra_node_bw,
            reshard_seconds=lambda old, new: machine.inter_latency
            + state / machine.inter_node_bw_per_node,
        )


@dataclass(frozen=True)
class FleetRunResult:
    """One policy's simulated outcome against one trace.

    ``goodput`` is the fraction of wall-clock spent on *first-time* step
    compute — everything else (recompute after rollbacks, checkpoint
    cadence, restores, reshards) is the price of the churn under this
    policy.  ``status`` is ``"completed"`` or ``"exhausted"`` (the policy
    let the world collapse below the minimum before the horizon).
    """

    policy: str
    horizon_steps: int
    wall_seconds: float
    productive_seconds: float
    recompute_seconds: float
    save_seconds: float
    restore_seconds: float
    reshard_seconds: float
    restores: int
    saves: int
    final_world: int
    spares_left: int
    cadence_steps: int
    steps_completed: int
    status: str = "completed"

    @property
    def goodput(self) -> float:
        return self.productive_seconds / self.wall_seconds if self.wall_seconds else 0.0

    @property
    def lost_seconds(self) -> float:
        return self.wall_seconds - self.productive_seconds


def simulate_fleet(
    trace: FleetTrace,
    policy: RecoveryPolicy,
    costs: FleetCosts,
    world_size: int,
    cadence: int = 50,
    min_world_size: int = 1,
    max_world_size: int | None = None,
    async_save: bool = False,
) -> FleetRunResult:
    """Replay *trace* under *policy*, charging every second to a ledger.

    Mirrors the live supervisor's mechanics: failures and grows roll the
    fleet back to the last **durable** checkpoint (re-run steps are
    recompute, not goodput), restores and reshards are paid per restart,
    and the checkpoint cadence is whatever the policy derives from the
    measured step economics (``cadence`` is the configured default).  With
    ``async_save=True`` saves charge only the snapshot memcpy up front —
    the write lands in the background after ``save_io_seconds`` of wall
    time, a later save blocks on it (double-buffer back-pressure), and a
    failure that beats the write to durability discards it (torn).
    """
    if world_size < 1:
        raise ValueError(f"world_size must be >= 1, got {world_size}")
    if cadence < 1:
        raise ValueError(f"cadence must be >= 1, got {cadence}")
    world = world_size
    spares = policy.initial_spares
    step = 0  # next step to attempt
    frontier = 0  # first step never yet completed
    last_ckpt = 0  # step of the latest durable checkpoint
    pending: tuple[int, float] | None = None  # (ckpt step, wall when durable)
    wall = productive = recompute = save_s = restore_s = reshard_s = 0.0
    restores = saves = 0
    status = "completed"
    events = trace.events
    ei = 0

    def economics(w: int) -> StepEconomics | None:
        sec = costs.step_seconds(w)
        save = costs.snapshot_seconds(w) + costs.save_io_seconds(w)
        if sec <= 0 or save <= 0:
            return None  # free steps/saves: nothing to optimize a cadence for
        return StepEconomics(sec, save, trace.mtbf_steps * sec)

    cad = max(1, policy.checkpoint_interval(cadence, economics(world)))
    first_cadence = cad

    def settle() -> None:
        """A background write whose finish time has passed is durable."""
        nonlocal pending, last_ckpt
        if pending is not None and pending[1] <= wall:
            last_ckpt = pending[0]
            pending = None

    def restart(new_world: int) -> None:
        nonlocal world, step, wall, restore_s, reshard_s, restores, cad
        rs = costs.reshard_seconds(world, new_world)
        rst = costs.restore_seconds(new_world)
        wall += rs + rst
        reshard_s += rs
        restore_s += rst
        restores += 1
        world = new_world
        step = last_ckpt
        cad = max(1, policy.checkpoint_interval(cadence, economics(world)))

    while step < trace.horizon_steps:
        if ei < len(events) and events[ei].step <= step:
            ev = events[ei]
            ei += 1
            if ev.kind == "failure":
                settle()
                pending = None  # an in-flight write dies torn with the world
                new_world, new_spares = world, spares
                for _ in range(ev.count):
                    new_world, new_spares = policy.on_failure(new_world, new_spares)
                if new_world < min_world_size:
                    status = "exhausted"
                    break
                spares = new_spares
                restart(new_world)
            else:
                new_world, spares = policy.on_arrival(world, spares, ev.count)
                if max_world_size is not None:
                    new_world = min(new_world, max_world_size)
                if new_world != world:
                    # A grow is a planned restart: drain the writer first
                    # (the live supervisor does the same), so the in-flight
                    # save becomes durable instead of torn.
                    if pending is not None:
                        wall = max(wall, pending[1])
                        settle()
                    restart(new_world)
                # Banked as a spare: the host parks outside the job and the
                # run is never interrupted.
            continue
        settle()
        sec = costs.step_seconds(world)
        wall += sec
        if step >= frontier:
            productive += sec
            frontier = step + 1
        else:
            recompute += sec
        step += 1
        if step % cad == 0 and step < trace.horizon_steps:
            snap = costs.snapshot_seconds(world)
            io = costs.save_io_seconds(world)
            saves += 1
            if async_save:
                stall = 0.0
                if pending is not None:
                    # Double-buffer back-pressure: the previous write must
                    # finish before this save's commit slot frees up.
                    stall = max(0.0, pending[1] - wall)
                    wall += stall
                    settle()
                wall += snap
                save_s += snap + stall
                pending = (step, wall + io)
            else:
                wall += snap + io
                save_s += snap + io
                last_ckpt = step
    if pending is not None:
        # Run ended with a write in flight; it completes in the background.
        wall = max(wall, pending[1])
        settle()
    return FleetRunResult(
        policy=policy.name,
        horizon_steps=trace.horizon_steps,
        wall_seconds=wall,
        productive_seconds=productive,
        recompute_seconds=recompute,
        save_seconds=save_s,
        restore_seconds=restore_s,
        reshard_seconds=reshard_s,
        restores=restores,
        saves=saves,
        final_world=world,
        spares_left=spares,
        cadence_steps=first_cadence,
        steps_completed=frontier,
        status=status,
    )


def compare_policies(
    trace: FleetTrace,
    policies: Sequence[RecoveryPolicy],
    costs: FleetCosts,
    world_size: int,
    cadence: int = 50,
    min_world_size: int = 1,
    max_world_size: int | None = None,
    async_save: bool = False,
    store=None,
    name: str = "fleet-compare",
) -> list[FleetRunResult]:
    """Rank *policies* against one trace, best goodput first.

    Ties break by policy name, so the ranking is fully deterministic for a
    fixed trace and cost table — the property the CI smoke gate pins.
    With *store* (a :class:`~repro.obs.store.SweepStore`, or a path one is
    opened from) the comparison persists as one ``fleet`` run with a
    ``fleet_runs`` row per policy, queryable via
    :meth:`~repro.obs.store.SweepStore.fleet_ranking`.
    """
    if not policies:
        raise ValueError("compare_policies needs at least one policy")
    results = [
        simulate_fleet(
            trace,
            p,
            costs,
            world_size,
            cadence=cadence,
            min_world_size=min_world_size,
            max_world_size=max_world_size,
            async_save=async_save,
        )
        for p in policies
    ]
    results.sort(key=lambda r: (-r.goodput, r.policy))
    if store is not None:
        from ..obs.store import open_store

        handle = open_store(store)
        run_id = handle.record_run(
            kind="fleet",
            name=name,
            params={
                "world_size": world_size,
                "cadence": cadence,
                "horizon_steps": trace.horizon_steps,
                "failures": trace.n_failures,
                "arrivals": trace.n_arrivals,
                "async_save": async_save,
                "policies": [p.name for p in policies],
            },
        )
        handle.record_fleet_results(run_id, results)
        if handle is not store:
            handle.close()
    return results


# -- CLI smoke gate (wired into the elastic-smoke CI job) -------------------
def _anchor_table(worlds: Sequence[int], machine):  # pragma: no cover
    """One captured stand-in schedule per anchor world, replay-priced."""
    from ..perf.calibrate import measure_plan
    from ..perf.modelcfg import ModelConfig
    from ..perf.plan import ParallelPlan, Workload
    from ..perf.schedule import StepCostTable

    model = ModelConfig(
        "fleet-standin", dim=64, depth=2, heads=4, patch=4, image_hw=(16, 16)
    )
    workload = Workload(channels=16, batch=2)
    table = StepCostTable(machine=machine)
    for world in worlds:
        plan = ParallelPlan("tp", tp=1, sp=1, fsdp=world, dp=1)
        measured = measure_plan(model, workload, plan, machine, capture=True)
        table.add(measured.schedule, world)
    return table


def main(argv: Sequence[str] | None = None) -> int:  # pragma: no cover
    """Fleet-simulator smoke gate: >=10k-step trace, >=3 policies, seconds of
    wall clock, deterministic pinned ranking, store round trip."""
    import argparse
    import tempfile
    import time

    from ..perf.machine import frontier
    from .policy import AlwaysShrink, CostAwareCadence, SparePool

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="small fast subset")
    parser.add_argument("--horizon", type=int, default=None, help="trace steps")
    parser.add_argument("--world", type=int, default=4, help="starting world size")
    parser.add_argument("--seed", type=int, default=7, help="trace seed")
    parser.add_argument("--store", default=None, help="persist to this sqlite store")
    opts = parser.parse_args(argv)
    horizon = opts.horizon or (12_000 if opts.smoke else 100_000)
    machine = frontier()

    failures = 0

    def gate(name: str, ok: bool) -> None:
        nonlocal failures
        failures += 0 if ok else 1
        print(f"[{'OK ' if ok else 'FAIL'}] {name}")

    # Two captured stand-in worlds anchor the whole sweep of fleet sizes;
    # everything after this line is pure event arithmetic.  model_bytes is
    # sized to the stand-in capture so step, save and reshard costs stay
    # mutually consistent (a 2-block dim-64 model, not a frontier LLM).
    table = _anchor_table((max(1, opts.world // 2), opts.world), machine)
    costs = FleetCosts.from_machine(machine, model_bytes=1.5e6, step_cost=table)
    trace = FleetTrace.poisson(
        horizon, mtbf_steps=1_500, return_after_steps=700, seed=opts.seed
    )
    policies = [AlwaysShrink(), SparePool(2), CostAwareCadence(AlwaysShrink())]
    print(
        f"trace: {horizon} steps, {trace.n_failures} failures, "
        f"{trace.n_arrivals} arrivals; world {opts.world}, "
        f"anchors {table.worlds}"
    )

    # Rank under blocking saves: that is the cost model CostAwareCadence
    # prices its Young/Daly interval against, so the comparison is apples
    # to apples.  Async overlap is gated separately below.
    t0 = time.monotonic()
    results = compare_policies(
        trace, policies, costs, opts.world, cadence=25, async_save=False
    )
    elapsed = time.monotonic() - t0
    header = f"{'policy':>28s} {'goodput':>8s} {'recomp s':>9s} {'save s':>8s} {'restores':>8s} {'world':>5s}"
    print(header)
    for r in results:
        print(
            f"{r.policy:>28s} {r.goodput:8.4f} {r.recompute_seconds:9.2f} "
            f"{r.save_seconds:8.2f} {r.restores:8d} {r.final_world:5d}"
        )
    gate(f"simulated {horizon} steps x {len(policies)} policies in {elapsed:.2f}s",
         elapsed < 60.0)
    gate("every policy completed the horizon",
         all(r.status == "completed" for r in results))

    again = compare_policies(
        trace, policies, costs, opts.world, cadence=25, async_save=False
    )
    gate(
        "ranking is deterministic",
        [(r.policy, r.goodput) for r in results]
        == [(r.policy, r.goodput) for r in again],
    )
    if opts.smoke:
        pinned = ["cost-aware[always-shrink]", "spare-pool-2", "always-shrink"]
        gate(
            f"pinned ranking {pinned}",
            [r.policy for r in results] == pinned,
        )

    blocking = {r.policy: r for r in results}
    overlapped = {
        r.policy: r
        for r in compare_policies(
            trace, policies, costs, opts.world, cadence=25, async_save=True
        )
    }
    gate(
        "async saves never lose goodput vs blocking at the same cadence",
        all(
            overlapped[p.name].goodput >= blocking[p.name].goodput
            for p in policies
        ),
    )

    store_path = opts.store or str(
        Path(tempfile.mkdtemp(prefix="fleet_gate_")) / "fleet.sqlite"
    )
    from ..obs.store import SweepStore

    compare_policies(
        trace, policies, costs, opts.world, cadence=25, async_save=False,
        store=store_path, name=f"fleet-smoke-w{opts.world}",
    )
    with SweepStore(store_path) as store:
        persisted = store.fleet_ranking()
    gate(
        "store round trip reproduces the ranking",
        [p.policy for p in persisted] == [r.policy for r in results]
        and all(
            abs(p.goodput - r.goodput) < 1e-12
            for p, r in zip(persisted, results)
        ),
    )

    if failures:
        print(f"{failures} fleet gate(s) FAILED")
        return 1
    print("all fleet-simulator gates passed")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
