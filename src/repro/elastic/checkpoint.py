"""Distributed sharded checkpoints: resharding, async saves, delta chains.

Layout: one checkpoint is a directory ``step_{S:08d}/`` under a checkpoint
root, holding one ``shard_{i:04d}.npz`` per FSDP group rank plus a
``manifest.json`` describing the flat-parameter geometry:

.. code-block:: text

    ckpts/
      step_00000004/
        manifest.json          # written LAST -> its presence marks completeness
        shard_0000.npz         # unit{k}.param / unit{k}.m / unit{k}.v
        shard_0001.npz
      step_00000004.w3/        # the same step resharded to world size 3
      step_00000008/           # a *delta*: only units whose bytes changed
        manifest.json          #   since its base (manifest["delta"])

Each shard file stores, per FSDP unit, this rank's slice of the padded flat
parameter and (optionally) the matching AdamW moment slices — the optimizer
state rides along with exactly the same geometry, because the optimizer runs
on the flat shards.

Because the manifest records the *unpadded* layout (parameter names, shapes
and the flat ``total``), a checkpoint saved at world size N can be
**resharded** to any world size M as pure data movement: concatenate the N
shards, strip N's pad, re-pad for M, re-split.  No arithmetic touches the
values, so reshard → consolidate is bitwise-identical to the original
consolidated state at any M.

Three durability/throughput layers on top of the base format:

* **Torn-save detection.**  Shard files are written atomically
  (write → flush → fsync → rename → fsync the directory entry) and the
  manifest strictly last, so ``manifest.json`` existing implies every named
  shard is durable; :func:`latest_checkpoint` skips anything else.  A delta
  checkpoint is complete only if its whole base chain is.
* **Async (double-buffered) saves.**  :class:`AsyncCheckpointWriter` lets
  :func:`save_sharded` return after an in-memory shard snapshot taken at
  the group barrier; a background thread writes the files (manifest still
  last) overlapped with subsequent training steps.  ``max_pending`` bounds
  the snapshots in flight — the classic double buffer at the default of 1.
* **Delta checkpoints.**  ``save_sharded(..., delta_base=prev)`` writes
  only the units whose master bytes changed since *prev* (agreed
  collectively via per-unit digests, so every rank writes the same unit
  set); readers resolve the base chain transparently.  Deltas cut the
  steady-state cadence cost whenever part of the model is frozen.

DP replicas hold identical shards by construction, so only one replica
(``write=True``, conventionally ``mesh.coords.dp == 0``) writes files; the
other replicas still join the group barrier so the save is collective.

``python -m repro.elastic.checkpoint --smoke`` runs the async/delta parity
gate the ``elastic-smoke`` CI job enforces: async saves bitwise-equal to
blocking saves, torn saves (full *and* delta) invisible to
:func:`latest_checkpoint`, delta chains resolving exactly, retention
pruning keeping every live base.
"""

from __future__ import annotations

import json
import os
import queue
import shutil
import threading
import zlib
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from ..parallel.fsdp import FSDPModel
from ..tensor.optim import AdamW

__all__ = [
    "MANIFEST_NAME",
    "AsyncCheckpointWriter",
    "writer_for",
    "drain_writers",
    "checkpoint_dir",
    "save_sharded",
    "load_sharded",
    "load_manifest",
    "latest_checkpoint",
    "prune_checkpoints",
    "reshard",
    "consolidate",
    "checkpoint_nbytes",
]

MANIFEST_NAME = "manifest.json"
_VERSION = 2  # version 1 manifests (no digests/delta) still load


def checkpoint_dir(root: str | Path, step: int) -> Path:
    """The step directory for checkpoint *step* under *root*."""
    return Path(root) / f"step_{int(step):08d}"


def _shard_name(group_rank: int) -> str:
    return f"shard_{int(group_rank):04d}.npz"


def _fsync_dir(path: Path) -> None:
    """Flush a directory entry so a completed rename survives the metadata
    layer (a rename alone is atomic but not durable — the entry can be lost
    on power cut, leaving a complete-looking checkpoint torn)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # platforms/filesystems without directory fds
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _atomic_savez(path: Path, arrays: dict[str, np.ndarray]) -> None:
    """Durably write-then-rename so a crash mid-save never leaves a torn
    file and a finished rename never evaporates: flush + fsync the payload,
    rename into place, then fsync the parent directory entry."""
    tmp = path.with_name(path.name + ".tmp.npz")
    with open(tmp, "wb") as fh:
        np.savez(fh, **arrays)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    _fsync_dir(path.parent)


def _atomic_write_json(path: Path, obj: dict) -> None:
    """The manifest counterpart of :func:`_atomic_savez`."""
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(json.dumps(obj, indent=1))
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    _fsync_dir(path.parent)


# -- digests (the collective agreement behind delta saves) ------------------
def _digest_arrays(arrays: dict[str, np.ndarray], unit: int, keys: Sequence[str]) -> int:
    crc = 0
    for k in keys:
        crc = zlib.crc32(arrays[f"unit{unit}.{k}"].tobytes(), crc)
    return int(crc)


class AsyncCheckpointWriter:
    """Background writer overlapping checkpoint I/O with training compute.

    Shared by every rank of one SPMD world: ranks :meth:`stage` in-memory
    snapshots of their shard arrays (a copy — training mutates the live
    buffers on the very next step), and after the group barrier the lead
    rank :meth:`commit`\\ s the step, enqueueing one write job.  The worker
    thread writes every staged shard file atomically, then the manifest
    strictly last, then fsyncs the directory — so the manifest-last torn-
    save invariant holds for async saves exactly as for blocking ones.

    ``max_pending`` bounds the jobs in flight (default 1: one snapshot
    being written while the next is being staged — double buffering).  A
    :meth:`commit` beyond the bound blocks, which is the natural back-
    pressure when the write takes longer than a checkpoint interval.

    Background write errors surface on the next :meth:`commit`,
    :meth:`wait` or :meth:`close`.  ``pre_manifest_hook`` (test-only) runs
    after a job's shards and before its manifest — raising from it
    simulates a crash mid-save, leaving a torn checkpoint.
    """

    def __init__(self, max_pending: int = 1) -> None:
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self.max_pending = int(max_pending)
        self._slots = threading.Semaphore(max_pending)
        self._lock = threading.Lock()
        self._staged: dict[Path, dict[str, dict[str, np.ndarray]]] = {}
        self._manifests: dict[Path, dict] = {}
        self._queue: queue.Queue = queue.Queue()
        self._errors: list[BaseException] = []
        self._thread: threading.Thread | None = None
        self._closed = False
        self.pre_manifest_hook: Callable[[Path], None] | None = None

    # -- staging (called per rank, pre-barrier) ----------------------------
    def stage(self, step_dir: Path, shard_name: str, arrays: dict[str, np.ndarray]) -> None:
        """Snapshot one rank's shard arrays for *step_dir* (copies taken now)."""
        snap = {k: np.array(v, copy=True) for k, v in arrays.items()}
        with self._lock:
            self._staged.setdefault(Path(step_dir), {})[shard_name] = snap

    def pending_manifest(self, step_dir: Path) -> dict | None:
        """The manifest of a committed-but-possibly-unwritten save, so a
        delta save can chain to an in-flight base without touching disk."""
        with self._lock:
            m = self._manifests.get(Path(step_dir))
        return m

    # -- committing (lead rank, post-barrier) ------------------------------
    def commit(self, step_dir: Path, manifest: dict, keep_last: int | None = None) -> None:
        """Enqueue the write of *step_dir*: staged shards, manifest last.

        Blocks while ``max_pending`` earlier jobs are still writing (back-
        pressure).  Re-raises any background error from earlier jobs.
        """
        self._raise_pending()
        step_dir = Path(step_dir)
        with self._lock:
            shards = self._staged.pop(step_dir, {})
            self._manifests[step_dir] = manifest
        self._slots.acquire()
        self._ensure_thread()
        self._queue.put((step_dir, shards, manifest, keep_last))

    # -- worker ------------------------------------------------------------
    def _ensure_thread(self) -> None:
        if self._thread is None or not self._thread.is_alive():
            self._thread = threading.Thread(
                target=self._worker, name="ckpt-writer", daemon=True
            )
            self._thread.start()

    def _worker(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                self._queue.task_done()
                return
            step_dir, shards, manifest, keep_last = job
            try:
                step_dir.mkdir(parents=True, exist_ok=True)
                for shard_name, arrays in shards.items():
                    _atomic_savez(step_dir / shard_name, arrays)
                if self.pre_manifest_hook is not None:
                    self.pre_manifest_hook(step_dir)
                _atomic_write_json(step_dir / MANIFEST_NAME, manifest)
                if keep_last is not None:
                    prune_checkpoints(step_dir.parent, keep_last=keep_last)
            except BaseException as exc:  # surfaced on the next commit/wait
                with self._lock:
                    self._errors.append(exc)
            finally:
                self._slots.release()
                self._queue.task_done()

    # -- draining ----------------------------------------------------------
    def _raise_pending(self) -> None:
        with self._lock:
            if self._errors:
                err = self._errors.pop(0)
                raise RuntimeError("async checkpoint write failed") from err

    def wait(self) -> None:
        """Block until every committed save is durable; re-raise errors."""
        self._queue.join()
        self._raise_pending()

    def close(self) -> None:
        """Drain, then stop the worker thread.  Idempotent."""
        if self._closed:
            return
        self._queue.join()
        if self._thread is not None and self._thread.is_alive():
            self._queue.put(None)
            self._queue.join()
            self._thread.join(timeout=10.0)
        self._closed = True
        self._raise_pending()


# Process-wide writers keyed by checkpoint root: every rank thread of a
# world saving under one root shares one writer (one background I/O lane per
# run), and the supervisor can drain in-flight saves before picking a
# resume checkpoint.
_WRITER_REGISTRY: dict[Path, AsyncCheckpointWriter] = {}
_WRITER_REGISTRY_LOCK = threading.Lock()


def writer_for(root: str | Path, max_pending: int = 1) -> AsyncCheckpointWriter:
    """The shared :class:`AsyncCheckpointWriter` for checkpoint root *root*."""
    key = Path(root).resolve()
    with _WRITER_REGISTRY_LOCK:
        writer = _WRITER_REGISTRY.get(key)
        if writer is None or writer._closed:
            writer = AsyncCheckpointWriter(max_pending=max_pending)
            _WRITER_REGISTRY[key] = writer
        return writer


def drain_writers(root: str | Path) -> None:
    """Make every async save under *root* durable; re-raise write errors.

    A no-op when no writer was ever created for *root*, so callers (the
    elastic supervisor, tests) can drain unconditionally.
    """
    key = Path(root).resolve()
    with _WRITER_REGISTRY_LOCK:
        writer = _WRITER_REGISTRY.get(key)
    if writer is not None:
        writer.wait()


def save_sharded(
    root: str | Path,
    model: FSDPModel,
    optimizer: AdamW | None = None,
    step: int = 0,
    extra: dict | None = None,
    write: bool = True,
    writer: AsyncCheckpointWriter | None = None,
    delta_base: str | Path | None = None,
    keep_last: int | None = None,
) -> Path:
    """Collectively write a sharded checkpoint of *model* at *step*.

    Every rank of the model's FSDP group must call this at the same step.
    Ranks with ``write=False`` (deduplicated DP replicas) skip file I/O but
    still participate in the completion barrier.  The manifest is written by
    group rank 0 strictly after the barrier, so ``manifest.json`` existing
    implies every shard file is complete — the invariant
    :func:`latest_checkpoint` relies on to skip checkpoints torn by a crash.

    ``writer`` switches to the **async** path: the call returns once every
    rank's shard snapshot is staged (a memcpy at the barrier, not a disk
    write) and the :class:`AsyncCheckpointWriter` persists the files in the
    background, overlapped with subsequent steps.  Call ``writer.wait()``
    before relying on the save being durable.

    ``delta_base`` writes a **delta**: only units whose bytes (params and
    moments) changed since the base checkpoint are stored; the manifest
    records the base by name and readers resolve the chain transparently.
    The changed set is agreed collectively (per-unit digests AllGathered
    over the group), so every rank writes the same units; the base must
    live under the same *root*, match this group's world size, and carry
    digests (any version-2 save does).

    ``keep_last`` prunes the root down to the newest *keep_last* complete
    checkpoints (plus any base a kept delta chains to) once the manifest is
    durable — the retention knob long runs need.

    *extra* (JSON-serializable) is carried in the manifest; elastic trainers
    stash their loss history there so resumed runs report full trajectories.
    """
    comm, group = model.comm, model.group
    me = group.rank_index(comm.rank)
    root = Path(root)
    step_dir = checkpoint_dir(root, step)
    opt_state = optimizer.state_dict() if optimizer is not None else None
    adam_step = 0 if opt_state is None else int(opt_state["step"])
    keys = ["param"] + (["m", "v"] if opt_state is not None else [])
    arrays: dict[str, np.ndarray] = {}
    for i, unit in enumerate(model.units):
        arrays[f"unit{i}.param"] = unit.flat.shard.data
        if opt_state is not None:
            arrays[f"unit{i}.m"] = opt_state["m"][i]
            arrays[f"unit{i}.v"] = opt_state["v"][i]
    n_units = len(model.units)

    # Per-unit digests: every save carries them (so it can serve as a later
    # delta's base); a delta save compares them against the base's table.
    mine = np.array(
        [_digest_arrays(arrays, i, keys) for i in range(n_units)], dtype=np.uint64
    )
    table = [[int(d) for d in part] for part in comm.all_gather(mine, group=group)]

    delta_meta: dict | None = None
    saved_units = list(range(n_units))
    if delta_base is not None:
        base_dir = Path(delta_base)
        if base_dir.parent != root:
            raise ValueError(
                f"delta base {base_dir} must live under the checkpoint root {root}"
            )
        base_manifest = None
        if writer is not None:
            base_manifest = writer.pending_manifest(base_dir)
        if base_manifest is None:
            base_manifest = load_manifest(base_dir)
        if base_manifest["world_size"] != group.size:
            raise ValueError(
                f"delta base world size {base_manifest['world_size']} != "
                f"group size {group.size}"
            )
        base_digests = base_manifest.get("digests")
        if not base_digests:
            raise ValueError(
                f"delta base {base_dir} carries no digests; re-save it first"
            )
        saved_units = [
            i
            for i in range(n_units)
            if any(table[r][i] != base_digests[r][i] for r in range(group.size))
        ]
        delta_meta = {"base": base_dir.name, "units": saved_units}

    shard_arrays = {
        f"unit{i}.{k}": arrays[f"unit{i}.{k}"] for i in saved_units for k in keys
    }
    if write:
        if writer is not None:
            writer.stage(step_dir, _shard_name(me), shard_arrays)
        else:
            step_dir.mkdir(parents=True, exist_ok=True)
            _atomic_savez(step_dir / _shard_name(me), shard_arrays)
    comm.barrier(group)
    if write and me == 0:
        manifest = {
            "version": _VERSION,
            "step": int(step),
            "world_size": int(group.size),
            "units": model.shard_metadata(),
            "has_optimizer": optimizer is not None,
            "adam_step": adam_step,
            "shards": [_shard_name(r) for r in range(group.size)],
            "digests": table,
            "extra": extra if extra is not None else {},
        }
        if delta_meta is not None:
            manifest["delta"] = delta_meta
        if writer is not None:
            writer.commit(step_dir, manifest, keep_last=keep_last)
        else:
            _atomic_write_json(step_dir / MANIFEST_NAME, manifest)
            if keep_last is not None:
                prune_checkpoints(root, keep_last=keep_last)
    return step_dir


def load_manifest(step_dir: str | Path) -> dict:
    """Parse a step directory's manifest."""
    return json.loads((Path(step_dir) / MANIFEST_NAME).read_text())


def _delta_sources(step_dir: Path, manifest: dict) -> list[Path]:
    """Per-unit directory that physically holds the unit's shard data.

    A full checkpoint sources every unit from itself; a delta walks its
    base chain (base names resolve against the same checkpoint root) until
    every unit is found.  Raises on cycles and broken chains.
    """
    n_units = len(manifest["units"])
    sources: list[Path | None] = [None] * n_units
    d, m = Path(step_dir), manifest
    seen = {Path(step_dir)}
    while True:
        delta = m.get("delta")
        present = set(delta["units"]) if delta else set(range(n_units))
        for i in range(n_units):
            if sources[i] is None and i in present:
                sources[i] = d
        if all(s is not None for s in sources):
            return sources  # type: ignore[return-value]
        if not delta:
            missing = [i for i, s in enumerate(sources) if s is None]
            raise ValueError(
                f"checkpoint {step_dir} chain never provides units {missing}"
            )
        base = d.parent / delta["base"]
        if base in seen:
            raise ValueError(f"checkpoint {step_dir} has a cyclic delta chain")
        seen.add(base)
        d, m = base, load_manifest(base)


def _is_complete(step_dir: Path, _seen: frozenset = frozenset()) -> bool:
    manifest_path = step_dir / MANIFEST_NAME
    if not manifest_path.is_file():
        return False
    try:
        manifest = json.loads(manifest_path.read_text())
    except (OSError, json.JSONDecodeError):
        return False
    if not all((step_dir / name).is_file() for name in manifest.get("shards", ())):
        return False
    delta = manifest.get("delta")
    if delta:
        base = step_dir.parent / delta["base"]
        if base in _seen:
            return False  # cyclic chain: unusable
        return _is_complete(base, _seen | {step_dir})
    return True


def latest_checkpoint(root: str | Path) -> Path | None:
    """The newest *complete* checkpoint under *root*, or ``None``.

    Completeness = manifest present (written last) and every shard file it
    names on disk — and, for a delta, its whole base chain complete too, so
    a durable-looking delta whose base was torn is skipped.  Ties on step
    (an original and its reshard) break toward the lexicographically last
    directory name — they hold identical values, so either is correct.
    """
    root = Path(root)
    if not root.is_dir():
        return None
    candidates: list[tuple[int, str, Path]] = []
    for child in root.iterdir():
        if child.is_dir() and child.name.startswith("step_") and _is_complete(child):
            candidates.append((load_manifest(child)["step"], child.name, child))
    if not candidates:
        return None
    return max(candidates)[2]


def prune_checkpoints(root: str | Path, keep_last: int = 2) -> list[Path]:
    """Retention: delete all but the newest *keep_last* complete checkpoints.

    Long elastic runs accumulate one step directory per cadence fire;
    this keeps the newest *keep_last* complete checkpoints **plus every
    base a kept delta chains to** (a delta without its base is garbage),
    and removes everything else — older completes and torn leftovers
    alike.  Returns the removed directories.

    Do not run concurrently with an in-flight async save targeting the same
    root; the :class:`AsyncCheckpointWriter` prunes *after* each manifest
    lands when ``save_sharded(..., keep_last=)`` asks it to.
    """
    if keep_last < 1:
        raise ValueError(f"keep_last must be >= 1, got {keep_last}")
    root = Path(root)
    if not root.is_dir():
        return []
    complete: list[tuple[int, str, Path]] = []
    every: list[Path] = []
    for child in root.iterdir():
        if not (child.is_dir() and child.name.startswith("step_")):
            continue
        every.append(child)
        if _is_complete(child):
            complete.append((load_manifest(child)["step"], child.name, child))
    complete.sort()
    needed: set[Path] = set()
    for _step, _name, path in complete[-keep_last:]:
        # Keep every *link* of the delta chain, not just the dirs that hold
        # unit data: resolving a delta walks each intermediate manifest.
        d = path
        while d not in needed:
            needed.add(d)
            delta = load_manifest(d).get("delta")
            if not delta:
                break
            d = d.parent / delta["base"]
    removed = []
    for child in every:
        if child not in needed:
            shutil.rmtree(child, ignore_errors=True)
            removed.append(child)
    if removed:
        _fsync_dir(root)
    return sorted(removed)


def _validate_units(manifest: dict, model: FSDPModel) -> None:
    ours = model.shard_metadata()
    theirs = manifest["units"]
    if len(theirs) != len(ours):
        raise ValueError(
            f"checkpoint has {len(theirs)} FSDP units, model has {len(ours)}"
        )
    for i, (a, b) in enumerate(zip(theirs, ours)):
        for key in ("names", "shapes", "sizes", "total"):
            if a[key] != b[key]:
                raise ValueError(
                    f"unit {i} layout mismatch on {key!r}: checkpoint {a[key]} vs model {b[key]}"
                )


def load_sharded(
    step_dir: str | Path,
    model: FSDPModel,
    optimizer: AdamW | None = None,
) -> dict:
    """Restore *model* (and optionally *optimizer*) from a sharded checkpoint.

    Purely local I/O — each rank reads only its own shard file(s), so
    restore moves zero wire bytes and is bitwise exact.  Deltas resolve
    through their base chain (each unit read from the directory that
    physically holds it).  The checkpoint's world size must equal the
    model's FSDP group size; :func:`reshard` first otherwise.  Returns the
    manifest (whose ``step`` and ``extra`` drive trainer resume).
    """
    step_dir = Path(step_dir)
    manifest = load_manifest(step_dir)
    group = model.group
    if manifest["world_size"] != group.size:
        raise ValueError(
            f"checkpoint world size {manifest['world_size']} != FSDP group size "
            f"{group.size}; reshard() it first"
        )
    _validate_units(manifest, model)
    me = group.rank_index(model.comm.rank)
    sources = _delta_sources(step_dir, manifest)
    opened: dict[Path, np.lib.npyio.NpzFile] = {}
    try:
        def read(i: int, key: str) -> np.ndarray:
            src = sources[i]
            if src not in opened:
                opened[src] = np.load(src / _shard_name(me))
            return opened[src][f"unit{i}.{key}"]

        shards = [read(i, "param") for i in range(len(model.units))]
        model.load_shard_data(shards)
        if optimizer is not None:
            if not manifest["has_optimizer"]:
                raise ValueError("checkpoint carries no optimizer state")
            optimizer.load_state_dict(
                {
                    "step": manifest["adam_step"],
                    "m": [read(i, "m") for i in range(len(model.units))],
                    "v": [read(i, "v") for i in range(len(model.units))],
                }
            )
    finally:
        for fh in opened.values():
            fh.close()
    return manifest


def _resplit(full: np.ndarray, total: int, new_world: int) -> list[np.ndarray]:
    """Strip the old pad, re-pad for *new_world*, split into equal shards."""
    flat = full[:total]
    padded = ((total + new_world - 1) // new_world) * new_world
    shard_size = padded // new_world
    out = np.zeros(padded, dtype=flat.dtype)
    out[:total] = flat
    return [out[r * shard_size : (r + 1) * shard_size].copy() for r in range(new_world)]


def reshard(
    src_dir: str | Path,
    new_world_size: int,
    dst_dir: str | Path | None = None,
) -> tuple[Path, int]:
    """Rewrite a checkpoint saved at world size N for world size M.

    Offline (driver-side) transformation: per unit, the N parameter shards
    are concatenated, N's pad stripped, and the flat vector re-split with
    M's padding; optimizer moments ride along identically.  A delta source
    is materialized through its base chain, so the output is always a
    *full* checkpoint.  Returns the new step directory (default
    ``<src>.w{M}`` alongside the source) and the number of bytes moved —
    the wire cost a real cluster would pay to re-lay-out the shards, which
    the recovery benchmark reports.

    Resharding never does arithmetic on values, so consolidating the result
    is bitwise-identical to consolidating the source at any M.
    """
    src_dir = Path(src_dir)
    if new_world_size < 1:
        raise ValueError(f"new world size must be >= 1, got {new_world_size}")
    manifest = load_manifest(src_dir)
    old_world = manifest["world_size"]
    if new_world_size == old_world and "delta" not in manifest:
        return src_dir, 0
    if dst_dir is None:
        dst_dir = src_dir.with_name(f"{src_dir.name}.w{new_world_size}")
    dst_dir = Path(dst_dir)
    dst_dir.mkdir(parents=True, exist_ok=True)

    sources = _delta_sources(src_dir, manifest)
    per_unit: list[dict[str, list[np.ndarray]]] = []
    keys = ["param"] + (["m", "v"] if manifest["has_optimizer"] else [])
    n_units = len(manifest["units"])
    gathered: list[dict[str, list[np.ndarray]]] = [
        {k: [] for k in keys} for _ in range(n_units)
    ]
    for r, name in enumerate(manifest["shards"]):
        loads = {}
        try:
            for i in range(n_units):
                src = sources[i]
                if src not in loads:
                    loads[src] = np.load(src / _shard_name(r))
                for k in keys:
                    gathered[i][k].append(loads[src][f"unit{i}.{k}"])
        finally:
            for fh in loads.values():
                fh.close()
    for i, unit_meta in enumerate(manifest["units"]):
        total = unit_meta["total"]
        per_unit.append(
            {k: _resplit(np.concatenate(gathered[i][k]), total, new_world_size) for k in keys}
        )

    bytes_moved = 0
    new_units = []
    for unit_meta in manifest["units"]:
        total = unit_meta["total"]
        padded = ((total + new_world_size - 1) // new_world_size) * new_world_size
        new_units.append(
            {
                **unit_meta,
                "padded": padded,
                "shard_size": padded // new_world_size,
                "group_size": new_world_size,
            }
        )
    for r in range(new_world_size):
        arrays = {}
        for i in range(n_units):
            for k in keys:
                arr = per_unit[i][k][r]
                arrays[f"unit{i}.{k}"] = arr
                bytes_moved += arr.nbytes
        _atomic_savez(dst_dir / _shard_name(r), arrays)
    new_manifest = {
        **manifest,
        "world_size": new_world_size,
        "units": new_units,
        "shards": [_shard_name(r) for r in range(new_world_size)],
    }
    # The output is a full checkpoint at a new layout: the source's delta
    # marker no longer applies, and per-rank digests don't survive a
    # re-split (a resharded dir cannot serve as a delta base).
    new_manifest.pop("delta", None)
    new_manifest.pop("digests", None)
    _atomic_write_json(dst_dir / MANIFEST_NAME, new_manifest)
    return dst_dir, bytes_moved


def consolidate(step_dir: str | Path) -> dict[str, np.ndarray]:
    """Reassemble the full (unsharded) state dict from a checkpoint.

    Keys follow the :meth:`FSDPModel.consolidated_state_dict` convention
    (``unit{i}.{param_name}``), so the two are directly comparable.  Deltas
    resolve through their base chain.
    """
    step_dir = Path(step_dir)
    manifest = load_manifest(step_dir)
    sources = _delta_sources(step_dir, manifest)
    flats: list[list[np.ndarray]] = [[] for _ in manifest["units"]]
    for r, name in enumerate(manifest["shards"]):
        loads = {}
        try:
            for i in range(len(manifest["units"])):
                src = sources[i]
                if src not in loads:
                    loads[src] = np.load(src / _shard_name(r))
                flats[i].append(loads[src][f"unit{i}.param"])
        finally:
            for fh in loads.values():
                fh.close()
    out: dict[str, np.ndarray] = {}
    for i, unit_meta in enumerate(manifest["units"]):
        flat = np.concatenate(flats[i])[: unit_meta["total"]]
        offset = 0
        for name, shape, size in zip(
            unit_meta["names"], unit_meta["shapes"], unit_meta["sizes"]
        ):
            out[f"unit{i}.{name}"] = flat[offset : offset + size].reshape(shape)
            offset += size
    return out


def checkpoint_nbytes(step_dir: str | Path) -> int:
    """Array bytes physically held *in this directory* (params + moments).

    For a delta checkpoint this is exactly the cadence cost the delta
    saved — the bytes its base chain already holds are not re-counted.
    """
    step_dir = Path(step_dir)
    manifest = load_manifest(step_dir)
    total = 0
    for name in manifest["shards"]:
        with np.load(step_dir / name) as data:
            total += sum(int(data[k].nbytes) for k in data.files)
    return total


# -- CLI parity gate (wired into the elastic-smoke CI job) ------------------
def main(argv: Sequence[str] | None = None) -> int:  # pragma: no cover
    """Async/delta checkpoint parity gate: async saves bitwise-equal to
    blocking ones, torn saves (full and delta) invisible, chains exact."""
    import argparse
    import tempfile

    from ..dist import run_spmd
    from ..nn import MLP
    from ..tensor import Tensor

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="small fast subset")
    parser.add_argument("--world", type=int, default=None)
    opts = parser.parse_args(argv)
    world = opts.world if opts.world else (2 if opts.smoke else 4)
    root = Path(tempfile.mkdtemp(prefix="ckpt_gate_"))
    failures = 0

    def gate(name: str, ok: bool) -> None:
        nonlocal failures
        failures += 0 if ok else 1
        print(f"[{'OK ' if ok else 'FAIL'}] {name}")

    writer = AsyncCheckpointWriter()

    def fn(comm):
        module = MLP(6, 10, np.random.default_rng(7))
        model = FSDPModel(comm, None, module, units=[module.fc1, module.fc2])
        opt = AdamW(model.shard_parameters(), lr=1e-2)
        x = np.random.default_rng(3).standard_normal((4, 6)).astype(np.float32)

        def train(steps):
            for _ in range(steps):
                model.zero_grad()
                (model(Tensor(x)) ** 2).mean().backward()
                opt.step()

        train(2)
        save_sharded(root / "sync", model, opt, step=2)
        save_sharded(root / "async", model, opt, step=2, writer=writer)
        save_sharded(root / "delta", model, opt, step=2)
        train(2)
        base = save_sharded(root / "delta", model, opt, step=4)
        # Touch only unit 0: the delta must store that unit and skip unit 1.
        model.units[0].flat.shard.data += 1.0
        save_sharded(root / "delta", model, opt, step=6, delta_base=base)
        return model.consolidated_state_dict()

    state = run_spmd(fn, world)[0]
    writer.wait()
    writer.close()

    sync_c = consolidate(checkpoint_dir(root / "sync", 2))
    async_c = consolidate(checkpoint_dir(root / "async", 2))
    gate(
        "async save bitwise == blocking save",
        all(np.array_equal(sync_c[k], async_c[k]) for k in sync_c),
    )
    gate(
        "latest_checkpoint sees the async save",
        latest_checkpoint(root / "async") == checkpoint_dir(root / "async", 2),
    )

    # Torn full save: shards landed, manifest didn't.
    torn = AsyncCheckpointWriter()
    torn.pre_manifest_hook = lambda d: (_ for _ in ()).throw(OSError("killed"))

    def torn_fn(comm):
        module = MLP(6, 10, np.random.default_rng(7))
        model = FSDPModel(comm, None, module)
        save_sharded(root / "torn", model, step=1)
        save_sharded(root / "torn", model, step=3, writer=torn)

    run_spmd(torn_fn, world)
    try:
        torn.wait()
        gate("kill-during-save surfaces the write error", False)
    except RuntimeError:
        gate("kill-during-save surfaces the write error", True)
    gate(
        "torn async save skipped by latest_checkpoint",
        latest_checkpoint(root / "torn") == checkpoint_dir(root / "torn", 1),
    )

    # Delta chain resolves bitwise; torn base hides the delta.
    delta_dir = checkpoint_dir(root / "delta", 6)
    delta_c = consolidate(delta_dir)
    gate(
        "delta chain consolidates bitwise",
        all(np.array_equal(state[k], delta_c[k]) for k in state),
    )
    gate(
        "delta holds fewer bytes than its base",
        checkpoint_nbytes(delta_dir)
        < checkpoint_nbytes(checkpoint_dir(root / "delta", 4)),
    )
    gate(
        "latest_checkpoint returns the delta",
        latest_checkpoint(root / "delta") == delta_dir,
    )
    base_manifest = checkpoint_dir(root / "delta", 4) / MANIFEST_NAME
    stash = base_manifest.read_bytes()
    base_manifest.unlink()
    gate(
        "delta with a torn base is skipped",
        latest_checkpoint(root / "delta") == checkpoint_dir(root / "delta", 2),
    )
    base_manifest.write_bytes(stash)

    # Retention keeps the delta's base alive.
    removed = prune_checkpoints(root / "delta", keep_last=1)
    gate(
        "prune keeps the kept delta's base",
        checkpoint_dir(root / "delta", 4).is_dir()
        and checkpoint_dir(root / "delta", 6).is_dir()
        and checkpoint_dir(root / "delta", 2) in removed,
    )

    if failures:
        print(f"{failures} checkpoint gate(s) FAILED")
        return 1
    print("all async/delta checkpoint gates passed")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
