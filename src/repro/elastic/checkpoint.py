"""Distributed sharded checkpoints with manifest-driven resharding.

Layout: one checkpoint is a directory ``step_{S:08d}/`` under a checkpoint
root, holding one ``shard_{i:04d}.npz`` per FSDP group rank plus a
``manifest.json`` describing the flat-parameter geometry:

.. code-block:: text

    ckpts/
      step_00000004/
        manifest.json          # written LAST -> its presence marks completeness
        shard_0000.npz         # unit{k}.param / unit{k}.m / unit{k}.v
        shard_0001.npz
      step_00000004.w3/        # the same step resharded to world size 3

Each shard file stores, per FSDP unit, this rank's slice of the padded flat
parameter and (optionally) the matching AdamW moment slices — the optimizer
state rides along with exactly the same geometry, because the optimizer runs
on the flat shards.

Because the manifest records the *unpadded* layout (parameter names, shapes
and the flat ``total``), a checkpoint saved at world size N can be
**resharded** to any world size M as pure data movement: concatenate the N
shards, strip N's pad, re-pad for M, re-split.  No arithmetic touches the
values, so reshard → consolidate is bitwise-identical to the original
consolidated state at any M.

DP replicas hold identical shards by construction, so only one replica
(``write=True``, conventionally ``mesh.coords.dp == 0``) writes files; the
other replicas still join the group barrier so the save is collective.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from ..parallel.fsdp import FSDPModel
from ..tensor.optim import AdamW

__all__ = [
    "MANIFEST_NAME",
    "checkpoint_dir",
    "save_sharded",
    "load_sharded",
    "load_manifest",
    "latest_checkpoint",
    "reshard",
    "consolidate",
    "checkpoint_nbytes",
]

MANIFEST_NAME = "manifest.json"
_VERSION = 1


def checkpoint_dir(root: str | Path, step: int) -> Path:
    """The step directory for checkpoint *step* under *root*."""
    return Path(root) / f"step_{int(step):08d}"


def _shard_name(group_rank: int) -> str:
    return f"shard_{int(group_rank):04d}.npz"


def _atomic_savez(path: Path, arrays: dict[str, np.ndarray]) -> None:
    """Write-then-rename so a crash mid-save never leaves a torn file."""
    tmp = path.with_name(path.name + ".tmp.npz")
    np.savez(tmp, **arrays)
    os.replace(tmp, path)


def save_sharded(
    root: str | Path,
    model: FSDPModel,
    optimizer: AdamW | None = None,
    step: int = 0,
    extra: dict | None = None,
    write: bool = True,
) -> Path:
    """Collectively write a sharded checkpoint of *model* at *step*.

    Every rank of the model's FSDP group must call this at the same step.
    Ranks with ``write=False`` (deduplicated DP replicas) skip file I/O but
    still participate in the completion barrier.  The manifest is written by
    group rank 0 strictly after the barrier, so ``manifest.json`` existing
    implies every shard file is complete — the invariant
    :func:`latest_checkpoint` relies on to skip checkpoints torn by a crash.

    *extra* (JSON-serializable) is carried in the manifest; elastic trainers
    stash their loss history there so resumed runs report full trajectories.
    """
    comm, group = model.comm, model.group
    me = group.rank_index(comm.rank)
    step_dir = checkpoint_dir(root, step)
    adam_step = 0
    if write:
        step_dir.mkdir(parents=True, exist_ok=True)
        arrays: dict[str, np.ndarray] = {}
        opt_state = optimizer.state_dict() if optimizer is not None else None
        if opt_state is not None:
            adam_step = int(opt_state["step"])
        for i, unit in enumerate(model.units):
            arrays[f"unit{i}.param"] = unit.flat.shard.data
            if opt_state is not None:
                arrays[f"unit{i}.m"] = opt_state["m"][i]
                arrays[f"unit{i}.v"] = opt_state["v"][i]
        _atomic_savez(step_dir / _shard_name(me), arrays)
    comm.barrier(group)
    if write and me == 0:
        manifest = {
            "version": _VERSION,
            "step": int(step),
            "world_size": int(group.size),
            "units": model.shard_metadata(),
            "has_optimizer": optimizer is not None,
            "adam_step": adam_step,
            "shards": [_shard_name(r) for r in range(group.size)],
            "extra": extra if extra is not None else {},
        }
        tmp = step_dir / (MANIFEST_NAME + ".tmp")
        tmp.write_text(json.dumps(manifest, indent=1))
        os.replace(tmp, step_dir / MANIFEST_NAME)
    return step_dir


def load_manifest(step_dir: str | Path) -> dict:
    """Parse a step directory's manifest."""
    return json.loads((Path(step_dir) / MANIFEST_NAME).read_text())


def _is_complete(step_dir: Path) -> bool:
    manifest_path = step_dir / MANIFEST_NAME
    if not manifest_path.is_file():
        return False
    try:
        manifest = json.loads(manifest_path.read_text())
    except (OSError, json.JSONDecodeError):
        return False
    return all((step_dir / name).is_file() for name in manifest.get("shards", ()))


def latest_checkpoint(root: str | Path) -> Path | None:
    """The newest *complete* checkpoint under *root*, or ``None``.

    Completeness = manifest present (written last) and every shard file it
    names on disk.  Ties on step (an original and its reshard) break toward
    the lexicographically last directory name — they hold identical values,
    so either is correct.
    """
    root = Path(root)
    if not root.is_dir():
        return None
    candidates: list[tuple[int, str, Path]] = []
    for child in root.iterdir():
        if child.is_dir() and child.name.startswith("step_") and _is_complete(child):
            candidates.append((load_manifest(child)["step"], child.name, child))
    if not candidates:
        return None
    return max(candidates)[2]


def _validate_units(manifest: dict, model: FSDPModel) -> None:
    ours = model.shard_metadata()
    theirs = manifest["units"]
    if len(theirs) != len(ours):
        raise ValueError(
            f"checkpoint has {len(theirs)} FSDP units, model has {len(ours)}"
        )
    for i, (a, b) in enumerate(zip(theirs, ours)):
        for key in ("names", "shapes", "sizes", "total"):
            if a[key] != b[key]:
                raise ValueError(
                    f"unit {i} layout mismatch on {key!r}: checkpoint {a[key]} vs model {b[key]}"
                )


def load_sharded(
    step_dir: str | Path,
    model: FSDPModel,
    optimizer: AdamW | None = None,
) -> dict:
    """Restore *model* (and optionally *optimizer*) from a sharded checkpoint.

    Purely local I/O — each rank reads only its own shard file, so restore
    moves zero wire bytes and is bitwise exact.  The checkpoint's world size
    must equal the model's FSDP group size; :func:`reshard` first otherwise.
    Returns the manifest (whose ``step`` and ``extra`` drive trainer resume).
    """
    step_dir = Path(step_dir)
    manifest = load_manifest(step_dir)
    group = model.group
    if manifest["world_size"] != group.size:
        raise ValueError(
            f"checkpoint world size {manifest['world_size']} != FSDP group size "
            f"{group.size}; reshard() it first"
        )
    _validate_units(manifest, model)
    me = group.rank_index(model.comm.rank)
    with np.load(step_dir / _shard_name(me)) as data:
        shards = [data[f"unit{i}.param"] for i in range(len(model.units))]
        model.load_shard_data(shards)
        if optimizer is not None:
            if not manifest["has_optimizer"]:
                raise ValueError("checkpoint carries no optimizer state")
            optimizer.load_state_dict(
                {
                    "step": manifest["adam_step"],
                    "m": [data[f"unit{i}.m"] for i in range(len(model.units))],
                    "v": [data[f"unit{i}.v"] for i in range(len(model.units))],
                }
            )
    return manifest


def _resplit(full: np.ndarray, total: int, new_world: int) -> list[np.ndarray]:
    """Strip the old pad, re-pad for *new_world*, split into equal shards."""
    flat = full[:total]
    padded = ((total + new_world - 1) // new_world) * new_world
    shard_size = padded // new_world
    out = np.zeros(padded, dtype=flat.dtype)
    out[:total] = flat
    return [out[r * shard_size : (r + 1) * shard_size].copy() for r in range(new_world)]


def reshard(
    src_dir: str | Path,
    new_world_size: int,
    dst_dir: str | Path | None = None,
) -> tuple[Path, int]:
    """Rewrite a checkpoint saved at world size N for world size M.

    Offline (driver-side) transformation: per unit, the N parameter shards
    are concatenated, N's pad stripped, and the flat vector re-split with
    M's padding; optimizer moments ride along identically.  Returns the new
    step directory (default ``<src>.w{M}`` alongside the source) and the
    number of bytes moved — the wire cost a real cluster would pay to
    re-lay-out the shards, which the recovery benchmark reports.

    Resharding never does arithmetic on values, so consolidating the result
    is bitwise-identical to consolidating the source at any M.
    """
    src_dir = Path(src_dir)
    if new_world_size < 1:
        raise ValueError(f"new world size must be >= 1, got {new_world_size}")
    manifest = load_manifest(src_dir)
    old_world = manifest["world_size"]
    if new_world_size == old_world:
        return src_dir, 0
    if dst_dir is None:
        dst_dir = src_dir.with_name(f"{src_dir.name}.w{new_world_size}")
    dst_dir = Path(dst_dir)
    dst_dir.mkdir(parents=True, exist_ok=True)

    per_unit: list[dict[str, list[np.ndarray]]] = []
    keys = ["param"] + (["m", "v"] if manifest["has_optimizer"] else [])
    n_units = len(manifest["units"])
    gathered: list[dict[str, list[np.ndarray]]] = [
        {k: [] for k in keys} for _ in range(n_units)
    ]
    for name in manifest["shards"]:
        with np.load(src_dir / name) as data:
            for i in range(n_units):
                for k in keys:
                    gathered[i][k].append(data[f"unit{i}.{k}"])
    for i, unit_meta in enumerate(manifest["units"]):
        total = unit_meta["total"]
        per_unit.append(
            {k: _resplit(np.concatenate(gathered[i][k]), total, new_world_size) for k in keys}
        )

    bytes_moved = 0
    new_units = []
    for unit_meta in manifest["units"]:
        total = unit_meta["total"]
        padded = ((total + new_world_size - 1) // new_world_size) * new_world_size
        new_units.append(
            {
                **unit_meta,
                "padded": padded,
                "shard_size": padded // new_world_size,
                "group_size": new_world_size,
            }
        )
    for r in range(new_world_size):
        arrays = {}
        for i in range(n_units):
            for k in keys:
                arr = per_unit[i][k][r]
                arrays[f"unit{i}.{k}"] = arr
                bytes_moved += arr.nbytes
        _atomic_savez(dst_dir / _shard_name(r), arrays)
    new_manifest = {
        **manifest,
        "world_size": new_world_size,
        "units": new_units,
        "shards": [_shard_name(r) for r in range(new_world_size)],
    }
    tmp = dst_dir / (MANIFEST_NAME + ".tmp")
    tmp.write_text(json.dumps(new_manifest, indent=1))
    os.replace(tmp, dst_dir / MANIFEST_NAME)
    return dst_dir, bytes_moved


def consolidate(step_dir: str | Path) -> dict[str, np.ndarray]:
    """Reassemble the full (unsharded) state dict from a checkpoint.

    Keys follow the :meth:`FSDPModel.consolidated_state_dict` convention
    (``unit{i}.{param_name}``), so the two are directly comparable.
    """
    step_dir = Path(step_dir)
    manifest = load_manifest(step_dir)
    flats: list[list[np.ndarray]] = [[] for _ in manifest["units"]]
    for name in manifest["shards"]:
        with np.load(step_dir / name) as data:
            for i in range(len(manifest["units"])):
                flats[i].append(data[f"unit{i}.param"])
    out: dict[str, np.ndarray] = {}
    for i, unit_meta in enumerate(manifest["units"]):
        flat = np.concatenate(flats[i])[: unit_meta["total"]]
        offset = 0
        for name, shape, size in zip(
            unit_meta["names"], unit_meta["shapes"], unit_meta["sizes"]
        ):
            out[f"unit{i}.{name}"] = flat[offset : offset + size].reshape(shape)
            offset += size
    return out


def checkpoint_nbytes(step_dir: str | Path) -> int:
    """Total array bytes held in a checkpoint (params + optimizer state)."""
    step_dir = Path(step_dir)
    manifest = load_manifest(step_dir)
    total = 0
    for name in manifest["shards"]:
        with np.load(step_dir / name) as data:
            total += sum(int(data[k].nbytes) for k in data.files)
    return total
