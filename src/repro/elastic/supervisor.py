"""The elastic training driver: survive rank churn by resizing the world.

:class:`ElasticSupervisor` runs a *training segment* under a fresh SPMD
world and reacts to world aborts according to a pluggable
:class:`~repro.elastic.policy.RecoveryPolicy`:

* **Rank loss** — a real exception or a scripted
  :class:`~repro.elastic.InjectedFailure` aborts the world and surfaces an
  :class:`~repro.dist.SpmdError` carrying the failed rank.  The policy
  decides the new world size: shrink by the dead rank (the
  :class:`~repro.elastic.policy.AlwaysShrink` default) or swap in a hot
  spare and restart at full strength
  (:class:`~repro.elastic.policy.SparePool`).
* **Rank return** — a scripted :class:`~repro.elastic.RankReturn` unwinds
  the world the same way (a live SPMD world cannot admit members
  mid-collective), but the supervisor recognizes the cause and **grows**
  the world by the returning ranks instead of evicting anyone.

Either way the recovery mechanics are identical: find the latest *complete*
checkpoint (torn saves are skipped because the manifest is written last,
and async saves are drained first), reshard it to the next world size (pure
data movement, bitwise — AdamW moments carried), and relaunch the segment
from the checkpoint's step.

Because the segment restores parameters, optimizer moments and the step
index (so the LR schedule continues correctly), and FSDP's forward math is
independent of how flat parameters are sharded, the resumed run follows the
same loss trajectory as an uninterrupted run of the same schedule — for
shrinks *and* grows, the invariant ``tests/test_elastic_supervisor.py``
locks.

When recovery is impossible — the world would drop below ``min_world_size``
or ``max_recoveries`` is exhausted — the supervisor raises a typed
:class:`ElasticError` carrying the full :class:`RecoveryEvent` history, so
callers can see what the run survived before it gave up.

The module also ships :func:`fsdp_training_segment`, the canonical segment:
an FSDP-wrapped model driven by a :class:`~repro.train.Trainer` with
step-indexed batches, periodic sharded saves (optionally async and/or
delta), and failure-plan ticks.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from ..dist import (
    SpmdError,
    World,
    clip_grad_norm_sharded,
    run_spmd_world,
    split_sizes,
)
from ..nn import Module
from ..parallel.fsdp import FSDPModel
from ..train.trainer import TrainConfig, Trainer
from .checkpoint import (
    drain_writers,
    latest_checkpoint,
    load_manifest,
    load_sharded,
    reshard,
    save_sharded,
    writer_for,
)
from .failure import RankReturn
from .policy import AlwaysShrink, RecoveryPolicy, StepEconomics

__all__ = [
    "ElasticError",
    "RecoveryEvent",
    "ElasticResult",
    "ElasticSupervisor",
    "fsdp_training_segment",
]

# A segment runs steps [start_step, total) on one rank of a world and returns
# the full per-step loss history (including pre-resume history restored from
# the checkpoint manifest).
Segment = Callable[..., list]


class ElasticError(SpmdError):
    """Recovery is exhausted; carries everything the run survived first.

    Raised when the world would shrink below ``min_world_size`` or when
    ``max_recoveries`` world rebuilds have been spent.  ``history`` holds
    the completed :class:`RecoveryEvent`\\ s in order, so post-mortems can
    distinguish "died on the first failure" from "survived seven, lost the
    eighth".  Subclasses :class:`~repro.dist.SpmdError`, so existing
    handlers keep working.
    """

    def __init__(self, message: str, history: Sequence["RecoveryEvent"] = ()) -> None:
        super().__init__(message)
        self.history: tuple[RecoveryEvent, ...] = tuple(history)


@dataclass(frozen=True)
class RecoveryEvent:
    """One completed resize-reshard-resume cycle.

    ``kind`` distinguishes how the world changed: ``"shrink"`` (a failure
    evicted a rank), ``"spare"`` (a failure was absorbed by a hot spare —
    same-size restart, zero reshard bytes), or ``"grow"`` (scripted ranks
    returned and the world expanded).
    """

    failed_rank: int  # -1 for grow events (nobody failed)
    failed_step: int  # -1 when the failure carried no step information
    resume_step: int  # 0 = cold restart (no checkpoint existed yet)
    steps_lost: int  # failed_step - resume_step, or -1 when unknown
    old_world_size: int
    new_world_size: int
    reshard_bytes: int  # data moved to re-lay-out the shards
    kind: str = "shrink"


@dataclass
class ElasticResult:
    """Outcome of an elastic run that reached ``total_steps``."""

    losses: list[float]
    world_sizes: list[int]  # world size that produced each step
    recoveries: list[RecoveryEvent] = field(default_factory=list)
    attempts: int = 1
    final_world: World | None = None

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")

    @property
    def total_steps_lost(self) -> int:
        return sum(max(0, r.steps_lost) for r in self.recoveries)

    @property
    def total_reshard_bytes(self) -> int:
        return sum(r.reshard_bytes for r in self.recoveries)


class ElasticSupervisor:
    """Drive a segment to completion across rank failures and returns.

    *segment* is called as ``segment(comm, start_step, resume_dir)`` on every
    rank; ``resume_dir`` is ``None`` on a fresh start or a checkpoint
    directory already resharded to the current world size.  The segment must
    save its checkpoints under *ckpt_root* (:func:`save_sharded`) for the
    supervisor to find them.

    *policy* decides world sizes after churn (default
    :class:`~repro.elastic.policy.AlwaysShrink`, the v1 behavior);
    *max_world_size* caps growth (default: unbounded).  Only attributable
    rank failures are recovered; driver-side timeouts
    (``SpmdError.rank == -1``) re-raise, since a hang identifies no culprit
    to evict.
    """

    def __init__(
        self,
        segment: Segment,
        ckpt_root: str | Path,
        world_size: int,
        min_world_size: int = 1,
        max_recoveries: int = 8,
        timeout: float | None = None,
        policy: RecoveryPolicy | None = None,
        max_world_size: int | None = None,
    ) -> None:
        if world_size < 1:
            raise ValueError(f"world_size must be >= 1, got {world_size}")
        if not 1 <= min_world_size <= world_size:
            raise ValueError(
                f"min_world_size must be in [1, {world_size}], got {min_world_size}"
            )
        if max_world_size is not None and max_world_size < world_size:
            raise ValueError(
                f"max_world_size must be >= world_size={world_size}, got {max_world_size}"
            )
        self.segment = segment
        self.ckpt_root = Path(ckpt_root)
        self.world_size = world_size
        self.min_world_size = min_world_size
        self.max_recoveries = max_recoveries
        self.timeout = timeout
        self.policy: RecoveryPolicy = policy if policy is not None else AlwaysShrink()
        self.max_world_size = max_world_size

    def run(self, total_steps: int, failure_plan=None) -> ElasticResult:
        plan = failure_plan
        world_size = self.world_size
        spares = self.policy.initial_spares
        start_step = 0
        resume_dir: Path | None = None
        recoveries: list[RecoveryEvent] = []
        # (start_step, world_size) per attempt; the per-step world_sizes list
        # is derived from these against the *actual* trajectory length, so
        # bookkeeping stays right even if the segment's config.total_steps
        # disagrees with the total_steps passed here.
        segments: list[tuple[int, int]] = [(0, world_size)]
        attempts = 0
        while True:
            attempts += 1
            try:
                results, world = run_spmd_world(
                    self.segment,
                    world_size,
                    start_step,
                    resume_dir,
                    failure_plan=plan,
                    timeout=self.timeout,
                )
            except SpmdError as err:
                failed_rank = getattr(err, "rank", -1)
                if failed_rank < 0:
                    raise  # timeout/driver interrupt: no rank to evict
                cause = err.__cause__
                arrival = isinstance(cause, RankReturn)
                if arrival:
                    new_world, spares = self.policy.on_arrival(
                        world_size, spares, cause.count
                    )
                    if self.max_world_size is not None:
                        new_world = min(new_world, self.max_world_size)
                    kind = "grow"
                else:
                    new_world, spares = self.policy.on_failure(world_size, spares)
                    kind = "spare" if new_world == world_size else "shrink"
                if new_world < self.min_world_size:
                    raise ElasticError(
                        f"cannot shrink below min_world_size={self.min_world_size} "
                        f"after rank {failed_rank} failed",
                        history=recoveries,
                    ) from err
                if len(recoveries) >= self.max_recoveries:
                    raise ElasticError(
                        f"gave up after {len(recoveries)} recoveries",
                        history=recoveries,
                    ) from err
                failed_step = getattr(cause, "step", -1)
                if plan is not None and failed_step >= 0:
                    # The event fired; don't re-trigger it when the resized
                    # world re-runs the same steps.
                    if arrival and hasattr(plan, "without_arrival"):
                        plan = plan.without_arrival(failed_step)
                    elif not arrival and hasattr(plan, "without"):
                        plan = plan.without(failed_rank, failed_step)
                # Async saves may still be in flight; make them durable (and
                # surface any background write error) before choosing the
                # resume point.
                drain_writers(self.ckpt_root)
                ckpt = latest_checkpoint(self.ckpt_root)
                if ckpt is None:
                    resume_step, new_resume_dir, moved = 0, None, 0
                else:
                    resume_step = load_manifest(ckpt)["step"]
                    new_resume_dir, moved = reshard(ckpt, new_world)
                recoveries.append(
                    RecoveryEvent(
                        failed_rank=-1 if arrival else failed_rank,
                        failed_step=failed_step,
                        resume_step=resume_step,
                        steps_lost=(failed_step - resume_step) if failed_step >= 0 else -1,
                        old_world_size=world_size,
                        new_world_size=new_world,
                        reshard_bytes=moved,
                        kind=kind,
                    )
                )
                segments.append((resume_step, new_world))
                world_size, start_step, resume_dir = new_world, resume_step, new_resume_dir
                continue
            drain_writers(self.ckpt_root)  # final async saves become durable
            losses = list(results[0])
            world_sizes = [segments[0][1]] * len(losses)
            for seg_start, seg_world in segments[1:]:
                for i in range(seg_start, len(losses)):
                    world_sizes[i] = seg_world
            return ElasticResult(
                losses=losses,
                world_sizes=world_sizes,
                recoveries=recoveries,
                attempts=attempts,
                final_world=world,
            )


class _GlobalLossProxy:
    """What the Trainer sees when the batch axis is sharded.

    ``backward()`` runs on the rank-local *weighted* loss (weight
    ``n_local * world / n_global``), so FSDP's mean-reduce of gradients
    yields exactly the global-batch gradient; ``item()`` reports the
    *global* mean loss (already AllReduced), so every rank — and every
    world size — records the same trajectory.
    """

    __slots__ = ("_local", "_value")

    def __init__(self, local_weighted, value: float) -> None:
        self._local = local_weighted
        self._value = float(value)

    def backward(self) -> None:
        self._local.backward()

    def item(self) -> float:
        return self._value


class _BatchShardedModel:
    """Duck-types the Trainer's model surface over a row-sharded batch.

    Each rank trains on its contiguous slice of the global batch
    (``split_sizes`` keeps slices deterministic per world size), so growing
    or shrinking the world rebalances the batch axis automatically — the
    data-parallel half of elastic resizing, alongside the FSDP flat-param
    reshard.
    """

    def __init__(self, model: FSDPModel) -> None:
        self._model = model

    def zero_grad(self) -> None:
        self._model.zero_grad()

    def loss(self, *batch) -> _GlobalLossProxy:
        model = self._model
        group = model.group
        me = group.rank_index(model.comm.rank)
        lead = None
        for arg in batch:
            shape = getattr(arg, "shape", None)
            if shape:
                lead = int(shape[0])
                break
        if lead is None:
            raise ValueError("shard_batch needs at least one array-like batch arg")
        sizes = split_sizes(lead, group.size)
        start = sum(sizes[:me])
        stop = start + sizes[me]
        local = tuple(
            arg[start:stop]
            if getattr(arg, "shape", None) and int(arg.shape[0]) == lead
            else arg
            for arg in batch
        )
        local_loss = model.loss(*local)
        # Weighted so the group's mean-reduce of gradients equals the
        # global-batch gradient even when rows split unevenly.
        weight = sizes[me] * group.size / lead
        contrib = np.array([float(local_loss.item()) * sizes[me] / lead])
        global_value = model.comm.all_reduce(contrib, op="sum", group=group)[0]
        return _GlobalLossProxy(local_loss * weight, global_value)


def fsdp_training_segment(
    module_factory: Callable[[], Module],
    batch_fn: Callable[[int], Sequence],
    config: TrainConfig,
    ckpt_root: str | Path,
    units: Callable[[Module], list[Module]] | None = None,
    async_save: bool = False,
    delta_saves: bool = False,
    keep_last: int | None = None,
    shard_batch: bool = False,
    policy: RecoveryPolicy | None = None,
    economics: StepEconomics | None = None,
    save_stats: dict | None = None,
) -> Segment:
    """Build the canonical elastic segment: FSDP + Trainer + sharded saves.

    ``module_factory`` must construct the model deterministically (seeded
    RNGs) so every rank — and every restart — starts from identical master
    weights; FSDP then carves rank-local shards from them.  ``batch_fn(step)``
    returns that step's loss arguments, shared by all ranks; with
    ``shard_batch=True`` each rank instead trains on its row slice of the
    global batch (rebalanced automatically when the world resizes) while
    recording the *global* loss, so the trajectory stays world-size
    independent either way.

    Checkpoints fire every ``config.checkpoint_every`` steps — or at the
    interval *policy* derives from *economics* (see
    :class:`~repro.elastic.policy.CostAwareCadence`) — and stash the loss
    history in the manifest, so a resumed segment returns the full
    trajectory from step 0.  ``async_save`` routes saves through the
    process-wide :func:`~repro.elastic.checkpoint.writer_for` writer
    (double-buffered background writes; the supervisor drains them before
    resuming); ``delta_saves`` chains each save to the segment's previous
    one, storing only changed units; ``keep_last`` prunes old step dirs.

    ``save_stats`` (a plain dict, shared via the threaded runtime's memory)
    accumulates rank 0's ``save_seconds``/``saves`` from
    :class:`~repro.train.TrainResult` across attempts — the number the
    async-vs-blocking cadence-cost benchmark compares.
    """
    ckpt_root = Path(ckpt_root)
    if policy is not None:
        every = policy.checkpoint_interval(config.checkpoint_every, economics)
        if every != config.checkpoint_every:
            config = dataclasses.replace(config, checkpoint_every=every)

    def segment(comm, start_step: int, resume_dir: Path | None) -> list[float]:
        module = module_factory()
        model = FSDPModel(
            comm, None, module, units=units(module) if units is not None else None
        )
        writer = writer_for(ckpt_root) if async_save else None
        # Every rank tracks the same save sequence, so a plain local is
        # enough for delta chaining; a resumed segment starts with a full
        # save (its world size is fresh and the old chain may be pruned).
        last_save: dict = {"dir": None}

        def save_cb(step: int) -> None:
            last_save["dir"] = save_sharded(
                ckpt_root,
                model,
                trainer.optimizer,
                step,
                extra={"losses": [float(v) for v in trainer.result.losses]},
                writer=writer,
                delta_base=last_save["dir"] if delta_saves else None,
                keep_last=keep_last,
            )

        trainer = Trainer(
            _BatchShardedModel(model) if shard_batch else model,
            config,
            params=model.shard_parameters(),
            pre_step_hook=comm.tick,
            checkpoint_hook=save_cb,
            start_step=start_step,
            # Shards are disjoint: clip by the *global* norm so every world
            # size applies the same scale (the trajectory invariant).
            clip_fn=lambda params, max_norm: clip_grad_norm_sharded(
                comm, params, max_norm, model.group
            ),
        )
        if resume_dir is not None:
            manifest = load_sharded(resume_dir, model, trainer.optimizer)
            trainer.result.losses.extend(manifest["extra"].get("losses", []))
        try:
            for step in range(start_step, config.total_steps):
                trainer.step(*batch_fn(step))
        finally:
            if save_stats is not None and comm.rank == 0:
                save_stats["save_seconds"] = (
                    save_stats.get("save_seconds", 0.0)
                    + trainer.result.save_seconds
                )
                save_stats["saves"] = (
                    save_stats.get("saves", 0) + trainer.result.saves
                )
        return trainer.result.losses

    return segment
