"""The elastic training driver: survive rank loss by shrinking the world.

:class:`ElasticSupervisor` runs a *training segment* under a fresh SPMD
world.  When a rank dies (a real exception or a scripted
:class:`~repro.elastic.InjectedFailure`), the runtime aborts the world and
surfaces an :class:`~repro.dist.SpmdError` carrying the failed rank; the
supervisor then

1. shrinks the world by the lost rank,
2. finds the latest *complete* checkpoint (torn saves are skipped because
   the manifest is written last),
3. reshards it to the surviving world size (pure data movement, bitwise),
4. relaunches the segment from the checkpoint's step.

Because the segment restores parameters, optimizer moments and the step
index (so the LR schedule continues correctly), and FSDP's forward math is
independent of how flat parameters are sharded, the resumed run follows the
same loss trajectory as an uninterrupted run of the same schedule — the
invariant ``tests/test_elastic_supervisor.py`` locks.

The module also ships :func:`fsdp_training_segment`, the canonical segment:
an FSDP-wrapped model driven by a :class:`~repro.train.Trainer` with
step-indexed batches, periodic sharded saves, and failure-plan ticks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

from ..dist import SpmdError, World, clip_grad_norm_sharded, run_spmd_world
from ..nn import Module
from ..parallel.fsdp import FSDPModel
from ..train.trainer import TrainConfig, Trainer
from .checkpoint import (
    latest_checkpoint,
    load_manifest,
    load_sharded,
    reshard,
    save_sharded,
)

__all__ = [
    "RecoveryEvent",
    "ElasticResult",
    "ElasticSupervisor",
    "fsdp_training_segment",
]

# A segment runs steps [start_step, total) on one rank of a world and returns
# the full per-step loss history (including pre-resume history restored from
# the checkpoint manifest).
Segment = Callable[..., list]


@dataclass(frozen=True)
class RecoveryEvent:
    """One completed shrink-reshard-resume cycle."""

    failed_rank: int
    failed_step: int  # -1 when the failure carried no step information
    resume_step: int  # 0 = cold restart (no checkpoint existed yet)
    steps_lost: int  # failed_step - resume_step, or -1 when unknown
    old_world_size: int
    new_world_size: int
    reshard_bytes: int  # data moved to re-lay-out the shards


@dataclass
class ElasticResult:
    """Outcome of an elastic run that reached ``total_steps``."""

    losses: list[float]
    world_sizes: list[int]  # world size that produced each step
    recoveries: list[RecoveryEvent] = field(default_factory=list)
    attempts: int = 1
    final_world: World | None = None

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")

    @property
    def total_steps_lost(self) -> int:
        return sum(max(0, r.steps_lost) for r in self.recoveries)

    @property
    def total_reshard_bytes(self) -> int:
        return sum(r.reshard_bytes for r in self.recoveries)


class ElasticSupervisor:
    """Drive a segment to completion across rank failures.

    *segment* is called as ``segment(comm, start_step, resume_dir)`` on every
    rank; ``resume_dir`` is ``None`` on a fresh start or a checkpoint
    directory already resharded to the current world size.  The segment must
    save its checkpoints under *ckpt_root* (:func:`save_sharded`) for the
    supervisor to find them.

    Only attributable rank failures are recovered; driver-side timeouts
    (``SpmdError.rank == -1``) re-raise, since a hang identifies no culprit
    to evict.
    """

    def __init__(
        self,
        segment: Segment,
        ckpt_root: str | Path,
        world_size: int,
        min_world_size: int = 1,
        max_recoveries: int = 8,
        timeout: float | None = None,
    ) -> None:
        if world_size < 1:
            raise ValueError(f"world_size must be >= 1, got {world_size}")
        if not 1 <= min_world_size <= world_size:
            raise ValueError(
                f"min_world_size must be in [1, {world_size}], got {min_world_size}"
            )
        self.segment = segment
        self.ckpt_root = Path(ckpt_root)
        self.world_size = world_size
        self.min_world_size = min_world_size
        self.max_recoveries = max_recoveries
        self.timeout = timeout

    def run(self, total_steps: int, failure_plan=None) -> ElasticResult:
        plan = failure_plan
        world_size = self.world_size
        start_step = 0
        resume_dir: Path | None = None
        recoveries: list[RecoveryEvent] = []
        # (start_step, world_size) per attempt; the per-step world_sizes list
        # is derived from these against the *actual* trajectory length, so
        # bookkeeping stays right even if the segment's config.total_steps
        # disagrees with the total_steps passed here.
        segments: list[tuple[int, int]] = [(0, world_size)]
        attempts = 0
        while True:
            attempts += 1
            try:
                results, world = run_spmd_world(
                    self.segment,
                    world_size,
                    start_step,
                    resume_dir,
                    failure_plan=plan,
                    timeout=self.timeout,
                )
            except SpmdError as err:
                failed_rank = getattr(err, "rank", -1)
                if failed_rank < 0:
                    raise  # timeout/driver interrupt: no rank to evict
                new_world = world_size - 1
                if new_world < self.min_world_size:
                    raise SpmdError(
                        f"cannot shrink below min_world_size={self.min_world_size} "
                        f"after rank {failed_rank} failed"
                    ) from err
                if len(recoveries) >= self.max_recoveries:
                    raise SpmdError(
                        f"gave up after {len(recoveries)} recoveries"
                    ) from err
                cause = err.__cause__
                failed_step = getattr(cause, "step", -1)
                if plan is not None and failed_step >= 0 and hasattr(plan, "without"):
                    # The event fired; don't re-kill the shrunken world when
                    # it re-runs the same steps.
                    plan = plan.without(failed_rank, failed_step)
                ckpt = latest_checkpoint(self.ckpt_root)
                if ckpt is None:
                    resume_step, new_resume_dir, moved = 0, None, 0
                else:
                    resume_step = load_manifest(ckpt)["step"]
                    new_resume_dir, moved = reshard(ckpt, new_world)
                recoveries.append(
                    RecoveryEvent(
                        failed_rank=failed_rank,
                        failed_step=failed_step,
                        resume_step=resume_step,
                        steps_lost=(failed_step - resume_step) if failed_step >= 0 else -1,
                        old_world_size=world_size,
                        new_world_size=new_world,
                        reshard_bytes=moved,
                    )
                )
                segments.append((resume_step, new_world))
                world_size, start_step, resume_dir = new_world, resume_step, new_resume_dir
                continue
            losses = list(results[0])
            world_sizes = [segments[0][1]] * len(losses)
            for seg_start, seg_world in segments[1:]:
                for i in range(seg_start, len(losses)):
                    world_sizes[i] = seg_world
            return ElasticResult(
                losses=losses,
                world_sizes=world_sizes,
                recoveries=recoveries,
                attempts=attempts,
                final_world=world,
            )


def fsdp_training_segment(
    module_factory: Callable[[], Module],
    batch_fn: Callable[[int], Sequence],
    config: TrainConfig,
    ckpt_root: str | Path,
    units: Callable[[Module], list[Module]] | None = None,
) -> Segment:
    """Build the canonical elastic segment: FSDP + Trainer + sharded saves.

    ``module_factory`` must construct the model deterministically (seeded
    RNGs) so every rank — and every restart — starts from identical master
    weights; FSDP then carves rank-local shards from them.  ``batch_fn(step)``
    returns that step's loss arguments, shared by all ranks (the elastic demo
    shards the *model*, not the batch, so the trajectory is world-size
    independent).  Checkpoints fire every ``config.checkpoint_every`` steps
    and stash the loss history in the manifest, so a resumed segment returns
    the full trajectory from step 0.
    """
    ckpt_root = Path(ckpt_root)

    def segment(comm, start_step: int, resume_dir: Path | None) -> list[float]:
        module = module_factory()
        model = FSDPModel(
            comm, None, module, units=units(module) if units is not None else None
        )

        def save_cb(step: int) -> None:
            save_sharded(
                ckpt_root,
                model,
                trainer.optimizer,
                step,
                extra={"losses": [float(v) for v in trainer.result.losses]},
            )

        trainer = Trainer(
            model,
            config,
            params=model.shard_parameters(),
            pre_step_hook=comm.tick,
            checkpoint_hook=save_cb,
            start_step=start_step,
            # Shards are disjoint: clip by the *global* norm so every world
            # size applies the same scale (the trajectory invariant).
            clip_fn=lambda params, max_norm: clip_grad_norm_sharded(
                comm, params, max_norm, model.group
            ),
        )
        if resume_dir is not None:
            manifest = load_sharded(resume_dir, model, trainer.optimizer)
            trainer.result.losses.extend(manifest["extra"].get("losses", []))
        for step in range(start_step, config.total_steps):
            trainer.step(*batch_fn(step))
        return trainer.result.losses

    return segment
