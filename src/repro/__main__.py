"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``report``  write the analytic figure report (all memory/throughput tables)
``plan``    recommend a D-CHAG configuration for a model/channel/GPU budget
"""

from __future__ import annotations

import argparse
import sys


def _cmd_report(args: argparse.Namespace) -> int:
    from .report import write_report

    path = write_report(args.output)
    print(f"wrote {path}")
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    from .core import plan_channel_stage
    from .perf import GiB, Workload, frontier, named_model

    machine = frontier()
    model = named_model(args.model)
    choice = plan_channel_stage(
        model, Workload(args.channels, args.batch), machine, tp=args.tp
    )
    est = choice.estimate
    print(f"model {args.model} | {args.channels} channels | TP{args.tp} on {machine.name}")
    print(f"recommended: {choice.plan.label}")
    print(f"  micro-batch: {est.micro_batch}")
    print(f"  memory:      {est.memory.total / GiB:.1f} GB/GPU ({est.memory.utilization(machine):.0%})")
    print(f"  throughput:  {est.tflops_per_gpu:.1f} TFLOP/s/GPU")
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    from .perf import frontier, named_model, search_configurations

    machine = frontier()
    results = search_configurations(
        named_model(args.model), args.channels, args.gpus, machine, args.global_batch
    )
    if not results:
        print("no feasible configuration")
        return 1
    print(f"{len(results)} feasible configurations for {args.model} / "
          f"{args.channels}ch on {args.gpus} GCDs (global batch {args.global_batch}):")
    for t in results[: args.top]:
        print(f"  {t.summary}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_report = sub.add_parser("report", help="write the analytic figure report")
    p_report.add_argument("--output", default="report.md")
    p_report.set_defaults(fn=_cmd_report)

    p_plan = sub.add_parser("plan", help="recommend a D-CHAG configuration")
    p_plan.add_argument("--model", default="7B")
    p_plan.add_argument("--channels", type=int, default=500)
    p_plan.add_argument("--tp", type=int, default=8)
    p_plan.add_argument("--batch", type=int, default=8)
    p_plan.set_defaults(fn=_cmd_plan)

    p_tune = sub.add_parser("tune", help="search (strategy, tp, fsdp, dp) factorizations")
    p_tune.add_argument("--model", default="7B")
    p_tune.add_argument("--channels", type=int, default=500)
    p_tune.add_argument("--gpus", type=int, default=1024)
    p_tune.add_argument("--global-batch", type=int, default=4096)
    p_tune.add_argument("--top", type=int, default=5)
    p_tune.set_defaults(fn=_cmd_tune)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
