"""ClimaX-style weather forecasting model (paper §5.2, Fig. 12).

Image-to-image translation: all 80 ERA5 channels at time *t* in, the full
field at *t + Δ* out.  The lead time and timestamp enter through the
metadata token (§2.1).  Loss and evaluation use latitude-weighted MSE/RMSE
(the ClimaX convention), reported for Z500 / T850 / U10.
"""

from __future__ import annotations

import numpy as np

from ..data.era5 import latitude_weights
from ..nn import Linear, Module, ViTEncoder
from ..tensor import Tensor, functional as F
from .channel_vit import ChannelViT, SerialChannelFrontend, unpatchify_tokens

__all__ = ["WeatherForecaster", "build_serial_forecaster"]


class WeatherForecaster(Module):
    """ChannelViT backbone + per-token prediction head.

    ``image_hw`` need not be square (ERA5 at 5.625° is 32 × 64).
    """

    def __init__(
        self,
        backbone: ChannelViT,
        dim: int,
        patch: int,
        out_channels: int,
        image_hw: tuple[int, int],
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        h, w = image_hw
        if h % patch or w % patch:
            raise ValueError(f"image {h}x{w} not divisible by patch {patch}")
        self.backbone = backbone
        self.patch = patch
        self.out_channels = out_channels
        self.grid_h, self.grid_w = h // patch, w // patch
        self.head = Linear(dim, patch * patch * out_channels, rng)
        self._lat_w = latitude_weights(h)[None, None, :, None]  # [1,1,H,1]

    def forward(self, images: np.ndarray, metadata: np.ndarray) -> Tensor:
        """[B, C, H, W] + [B, meta] → predicted [B, C_out, H, W]."""
        tokens = self.backbone(images, metadata)               # [B, N, D]
        pred = self.head(tokens)                               # [B, N, p²·C]
        return unpatchify_tokens(pred, self.patch, self.grid_h, self.grid_w, self.out_channels)

    def loss(self, images: np.ndarray, targets: np.ndarray, metadata: np.ndarray) -> Tensor:
        """Latitude-weighted MSE over all output channels."""
        pred = self.forward(images, metadata)
        return F.weighted_mse_loss(pred, Tensor(np.asarray(targets, dtype=np.float32)), self._lat_w)


def build_serial_forecaster(
    channels: int,
    image_hw: tuple[int, int],
    patch: int,
    dim: int,
    depth: int,
    heads: int,
    rng: np.random.Generator,
    meta_fields: int = 2,
    agg: str = "cross",
) -> WeatherForecaster:
    """Single-device forecaster with the paper's architecture."""
    h, w = image_hw
    num_tokens = (h // patch) * (w // patch)
    frontend = SerialChannelFrontend(channels, patch, dim, heads, rng, agg=agg)
    encoder = ViTEncoder(dim, depth, heads, rng)
    backbone = ChannelViT(frontend, encoder, num_tokens, dim, rng, meta_fields=meta_fields)
    return WeatherForecaster(backbone, dim, patch, channels, image_hw, rng)
