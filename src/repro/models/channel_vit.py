"""The generic multi-channel foundation model of paper Fig. 1.

Composition-first design: the **channel front-end** (tokenization + channel
aggregation) and the **ViT encoder** are injected, so the same model class
runs serially, under TP, or with D-CHAG:

* serial:      ``SerialChannelFrontend`` + ``ViTEncoder``
* TP baseline: ``SerialChannelFrontend``/``TPChannelCrossAttention`` + ``TPViTEncoder``
* D-CHAG:      ``repro.core.DCHAG`` + either encoder

Any front-end is a module mapping ``[B, C, H, W] -> [B, N, D]``.
"""

from __future__ import annotations

import numpy as np

from ..nn import (
    ChannelCrossAttention,
    ChannelIDEmbedding,
    LinearChannelMixer,
    MetadataEmbedding,
    Module,
    PatchTokenizer,
    PositionalEmbedding,
    ViTEncoder,
)
from ..tensor import Tensor

__all__ = ["SerialChannelFrontend", "ChannelViT", "unpatchify_tokens"]


class SerialChannelFrontend(Module):
    """Single-device channel stage: tokenize → +channel IDs → aggregate.

    ``agg`` selects the aggregation layer: ``"cross"`` (the paper's
    baseline single cross-attention) or ``"linear"`` (ablation).
    """

    def __init__(
        self,
        channels: int,
        patch: int,
        dim: int,
        heads: int,
        rng: np.random.Generator,
        agg: str = "cross",
    ) -> None:
        super().__init__()
        self.channels = channels
        self.tokenizer = PatchTokenizer(channels, patch, dim, rng)
        self.channel_ids = ChannelIDEmbedding(channels, dim, rng)
        if agg == "cross":
            self.aggregator: Module = ChannelCrossAttention(dim, heads, rng, num_queries=1)
        elif agg == "linear":
            self.aggregator = LinearChannelMixer(channels, 1, rng)
        else:
            raise ValueError(f"agg must be 'cross' or 'linear', got {agg!r}")

    def forward(self, images: np.ndarray) -> Tensor:
        tokens = self.channel_ids(self.tokenizer(images))
        return self.aggregator(tokens)


class ChannelViT(Module):
    """Front-end + positional embedding + optional metadata token + ViT.

    ``forward`` returns the encoded spatial tokens ``[B, N, D]`` (the
    metadata token, when present, is consumed inside and stripped), ready
    for a task head (MAE decoder, forecasting head, …).
    """

    def __init__(
        self,
        frontend: Module,
        encoder: Module,
        num_tokens: int,
        dim: int,
        rng: np.random.Generator,
        meta_fields: int = 0,
    ) -> None:
        super().__init__()
        self.frontend = frontend
        self.encoder = encoder
        self.pos = PositionalEmbedding(num_tokens, dim, rng)
        self.meta = MetadataEmbedding(meta_fields, dim, rng) if meta_fields else None
        self.num_tokens = num_tokens

    def forward(self, images: np.ndarray, metadata: np.ndarray | None = None) -> Tensor:
        tokens = self.pos(self.frontend(images))            # [B, N, D]
        if self.meta is not None:
            if metadata is None:
                raise ValueError("model was built with meta_fields but got no metadata")
            tokens = Tensor.concat([tokens, self.meta(metadata)], axis=1)  # [B, N+1, D]
        encoded = self.encoder(tokens)
        if self.meta is not None:
            encoded = encoded[:, : self.num_tokens]
        return encoded


def unpatchify_tokens(tokens: Tensor, patch: int, grid_h: int, grid_w: int, channels: int) -> Tensor:
    """Differentiable inverse tokenization:
    ``[B, N, p²·C] -> [B, C, gh·p, gw·p]`` with ``N = gh·gw``."""
    b, n, _ = tokens.shape
    if n != grid_h * grid_w:
        raise ValueError(f"{n} tokens but grid is {grid_h}x{grid_w}")
    x = tokens.reshape(b, grid_h, grid_w, patch, patch, channels)
    x = x.transpose(0, 5, 1, 3, 2, 4)  # [B, C, gh, p, gw, p]
    return x.reshape(b, channels, grid_h * patch, grid_w * patch)
