"""Model assemblies: the generic ChannelViT FM, the MAE (hyperspectral), and
the ClimaX-style weather forecaster.  Named size configs live in
:mod:`repro.perf.modelcfg` and are re-exported here."""

from ..perf.modelcfg import MODEL_ZOO, ModelConfig, named_model
from .channel_vit import ChannelViT, SerialChannelFrontend, unpatchify_tokens
from .climax import WeatherForecaster, build_serial_forecaster
from .mae import MAEModel, build_serial_mae
from .multimodal import ModalitySpec, MultiModalFrontend

__all__ = [
    "ChannelViT",
    "SerialChannelFrontend",
    "unpatchify_tokens",
    "MAEModel",
    "build_serial_mae",
    "WeatherForecaster",
    "build_serial_forecaster",
    "ModelConfig",
    "named_model",
    "MODEL_ZOO",
    "ModalitySpec",
    "MultiModalFrontend",
]
