"""Multi-modal channel fusion (paper §1/§3.5).

"Our findings can be expanded beyond single multi-channel datasets, as the
same aggregation scheme has been used in FMs to fuse across different
modalities."  Channels from several modalities (e.g. hyperspectral bands +
weather variables + an RGB camera), possibly at different native
resolutions, are tokenized per modality, tagged with modality/channel-ID
embeddings, concatenated along the channel axis, and aggregated by the same
cross-attention — which makes the whole stack D-CHAG-distributable by
treating the fused channel list as a single channel axis.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nn import ChannelCrossAttention, ChannelIDEmbedding, Module, ModuleList, PatchTokenizer
from ..tensor import Tensor

__all__ = ["ModalitySpec", "MultiModalFrontend"]


@dataclass(frozen=True)
class ModalitySpec:
    """One input modality.

    ``scale``: integer factor by which this modality's images are *larger*
    than the base grid; they are average-pooled down before tokenization so
    every modality lands on the same token grid (heterogeneous resolutions,
    §2.1: "variables recorded at different resolutions").
    """

    name: str
    channels: int
    scale: int = 1

    def __post_init__(self) -> None:
        if self.channels < 1 or self.scale < 1:
            raise ValueError("channels and scale must be >= 1")


def _avg_pool(images: np.ndarray, factor: int) -> np.ndarray:
    """[B, C, H·f, W·f] -> [B, C, H, W] box average."""
    if factor == 1:
        return images
    b, c, h, w = images.shape
    if h % factor or w % factor:
        raise ValueError(f"image {h}x{w} not divisible by pooling factor {factor}")
    return images.reshape(b, c, h // factor, factor, w // factor, factor).mean(axis=(3, 5))


class MultiModalFrontend(Module):
    """Tokenize + fuse several modalities into one representation.

    ``forward`` takes ``{name: [B, C_m, H·s_m, W·s_m]}`` and returns
    ``[B, N, D]``.  The fused channel axis (``sum of C_m``) is exposed via
    ``total_channels`` and ``channel_slices`` so a D-CHAG deployment can
    shard it exactly like a single-modality channel axis.
    """

    def __init__(
        self,
        modalities: list[ModalitySpec],
        patch: int,
        dim: int,
        heads: int,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        if not modalities:
            raise ValueError("need at least one modality")
        names = [m.name for m in modalities]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate modality names: {names}")
        self.modalities = list(modalities)
        self.patch = patch
        self.dim = dim
        self.total_channels = sum(m.channels for m in modalities)
        self.tokenizers = ModuleList(
            [PatchTokenizer(m.channels, patch, dim, rng) for m in modalities]
        )
        # One shared ID table across the fused axis: channels of different
        # modalities get distinct IDs (the paper's "channels from the same
        # or different modalities" token).
        self.channel_ids = ChannelIDEmbedding(self.total_channels, dim, rng)
        self.aggregator = ChannelCrossAttention(dim, heads, rng, num_queries=1)

    @property
    def channel_slices(self) -> dict[str, slice]:
        out: dict[str, slice] = {}
        offset = 0
        for m in self.modalities:
            out[m.name] = slice(offset, offset + m.channels)
            offset += m.channels
        return out

    def tokenize(self, inputs: dict[str, np.ndarray]) -> Tensor:
        """Per-modality tokenization → fused ``[B, total_C, N, D]``."""
        missing = {m.name for m in self.modalities} - set(inputs)
        if missing:
            raise ValueError(f"missing modalities: {sorted(missing)}")
        token_blocks = []
        base_hw: tuple[int, int] | None = None
        for spec, tok in zip(self.modalities, self.tokenizers):
            imgs = _avg_pool(np.asarray(inputs[spec.name], dtype=np.float32), spec.scale)
            if base_hw is None:
                base_hw = imgs.shape[-2:]
            elif imgs.shape[-2:] != base_hw:
                raise ValueError(
                    f"modality {spec.name!r} lands on grid {imgs.shape[-2:]}, "
                    f"expected {base_hw} (check its scale)"
                )
            token_blocks.append(tok(imgs))
        fused = Tensor.concat(token_blocks, axis=1)
        return self.channel_ids(fused)

    def forward(self, inputs: dict[str, np.ndarray]) -> Tensor:
        return self.aggregator(self.tokenize(inputs))
