"""Self-supervised masked-autoencoder model (paper §5.1, Figs. 10–11).

Masking happens **after** channel aggregation — tokens are spatial patches —
so swapping the serial front-end for D-CHAG changes nothing downstream
(§3.5: D-CHAG "only modifies the input to the ViT module, without altering
the decoder modules").  The reconstruction target is the full per-channel
pixel content of each masked patch, and the loss is MSE on masked patches
only (He et al.).
"""

from __future__ import annotations

import numpy as np

from ..nn import MAEDecoder, Module, PositionalEmbedding, patchify, random_masking
from ..tensor import Tensor, functional as F
from .channel_vit import SerialChannelFrontend

__all__ = ["MAEModel", "build_serial_mae"]


class MAEModel(Module):
    """Front-end (+pos) → random masking → ViT on visible tokens → decoder."""

    def __init__(
        self,
        frontend: Module,
        encoder: Module,
        num_tokens: int,
        dim: int,
        patch: int,
        out_channels: int,
        rng: np.random.Generator,
        decoder_dim: int | None = None,
        decoder_depth: int = 2,
        decoder_heads: int = 4,
        mask_ratio: float = 0.75,
    ) -> None:
        super().__init__()
        self.frontend = frontend
        self.encoder = encoder
        self.pos = PositionalEmbedding(num_tokens, dim, rng)
        self.num_tokens = num_tokens
        self.patch = patch
        self.out_channels = out_channels
        self.mask_ratio = mask_ratio
        self.decoder = MAEDecoder(
            encoder_dim=dim,
            decoder_dim=decoder_dim if decoder_dim is not None else max(32, dim // 2),
            depth=decoder_depth,
            heads=decoder_heads,
            num_tokens=num_tokens,
            patch=patch,
            out_channels=out_channels,
            rng=rng,
        )

    def forward(
        self, images: np.ndarray, mask_rng: np.random.Generator
    ) -> tuple[Tensor, np.ndarray, np.ndarray]:
        """Returns ``(pred [B,N,p²·C], keep_idx, mask [N])``."""
        tokens = self.pos(self.frontend(images))                  # [B, N, D]
        keep, _, mask = random_masking(self.num_tokens, self.mask_ratio, mask_rng)
        visible = tokens[:, keep, :]
        encoded = self.encoder(visible)
        pred = self.decoder(encoded, keep)
        return pred, keep, mask

    def reconstruction_target(self, images: np.ndarray) -> np.ndarray:
        """[B, C, H, W] → [B, N, p²·C] matching the prediction layout."""
        patches = patchify(np.asarray(images, dtype=np.float32), self.patch)
        b, c, n, pp = patches.shape
        return patches.transpose(0, 2, 3, 1).reshape(b, n, pp * c)

    def loss(self, images: np.ndarray, mask_rng: np.random.Generator) -> Tensor:
        """Masked-patch MSE (the training loss of Fig. 11)."""
        pred, _, mask = self.forward(images, mask_rng)
        target = Tensor(self.reconstruction_target(images))
        return F.masked_mse_loss(pred, target, mask[None, :, None])

    def reconstruct(self, images: np.ndarray, mask_rng: np.random.Generator) -> np.ndarray:
        """Full predicted image ``[B, C, H, W]`` (Fig. 11's right panel)."""
        pred, _, _ = self.forward(images, mask_rng)
        b, n, _ = pred.shape
        g = int(round(np.sqrt(n * images.shape[-2] / images.shape[-1])))
        gh, gw = g, n // g
        x = pred.data.reshape(b, gh, gw, self.patch, self.patch, self.out_channels)
        x = x.transpose(0, 5, 1, 3, 2, 4)
        return x.reshape(b, self.out_channels, gh * self.patch, gw * self.patch)


def build_serial_mae(
    channels: int,
    image: int,
    patch: int,
    dim: int,
    depth: int,
    heads: int,
    rng: np.random.Generator,
    mask_ratio: float = 0.75,
    agg: str = "cross",
    decoder_depth: int = 2,
) -> MAEModel:
    """Single-device MAE with the paper's architecture (Fig. 10)."""
    from ..nn import ViTEncoder

    num_tokens = (image // patch) ** 2
    frontend = SerialChannelFrontend(channels, patch, dim, heads, rng, agg=agg)
    encoder = ViTEncoder(dim, depth, heads, rng)
    return MAEModel(
        frontend,
        encoder,
        num_tokens,
        dim,
        patch,
        channels,
        rng,
        decoder_depth=decoder_depth,
        mask_ratio=mask_ratio,
    )
