"""Module base class (the ``torch.nn.Module`` substitute).

Sub-modules and parameters auto-register through ``__setattr__``;
``named_parameters`` walks the tree depth-first with dotted names, which the
FSDP simulation and the state-dict round-trip tests depend on.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..tensor import Tensor

__all__ = ["Module", "ModuleList", "Parameter"]


def Parameter(data: np.ndarray) -> Tensor:
    """Wrap an array as a trainable tensor."""
    return Tensor(np.asarray(data, dtype=np.float32), requires_grad=True)


class Module:
    """Base class for all network modules."""

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "training", True)

    # -- registration -------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Tensor) and value.requires_grad:
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def register_parameter(self, name: str, param: Tensor) -> None:
        self._parameters[name] = param
        object.__setattr__(self, name, param)

    # -- traversal ------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Tensor]]:
        for name, p in self._parameters.items():
            yield (f"{prefix}{name}", p)
        for name, mod in self._modules.items():
            yield from mod.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> list[Tensor]:
        return [p for _, p in self.named_parameters()]

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        yield (prefix.rstrip("."), self)
        for name, mod in self._modules.items():
            yield from mod.named_modules(prefix=f"{prefix}{name}.")

    def modules(self) -> list["Module"]:
        return [m for _, m in self.named_modules()]

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def parameter_bytes(self) -> int:
        return sum(p.nbytes for p in self.parameters())

    # -- state dict -------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state_dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}")
        for name, p in own.items():
            arr = np.asarray(state[name], dtype=p.data.dtype)
            if arr.shape != p.data.shape:
                raise ValueError(f"shape mismatch for {name}: {arr.shape} vs {p.data.shape}")
            p.data = arr.copy()

    # -- train / eval ---------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        object.__setattr__(self, "training", mode)
        for m in self._modules.values():
            m.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.grad = None

    # -- forward ---------------------------------------------------------------
    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class ModuleList(Module):
    """A list of sub-modules, registered under their index."""

    def __init__(self, modules: list[Module] | None = None) -> None:
        super().__init__()
        self._items: list[Module] = []
        for m in modules or []:
            self.append(m)

    def append(self, module: Module) -> None:
        self._modules[str(len(self._items))] = module
        self._items.append(module)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, idx: int) -> Module:
        return self._items[idx]
