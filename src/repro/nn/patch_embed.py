"""Per-channel patch tokenization (paper Fig. 1, "tokenization").

Each channel of the ``[B, C, H, W]`` input is split into non-overlapping
``p × p`` patches, and *each channel has its own* embedding weights
(a stride-``p`` conv ≡ a linear map on flattened patches).  Per-channel
weights are what make tokenization memory grow linearly with the channel
count — the bottleneck D-CHAG distributes.
"""

from __future__ import annotations

import numpy as np

from ..tensor import Tensor, init
from .module import Module

__all__ = ["PatchTokenizer", "patchify", "unpatchify"]


def patchify(x: np.ndarray, patch: int) -> np.ndarray:
    """[B, C, H, W] -> [B, C, N, patch*patch] with N = (H/p)*(W/p)."""
    b, c, h, w = x.shape
    if h % patch or w % patch:
        raise ValueError(f"image {h}x{w} not divisible by patch {patch}")
    gh, gw = h // patch, w // patch
    x = x.reshape(b, c, gh, patch, gw, patch)
    x = x.transpose(0, 1, 2, 4, 3, 5)  # [B, C, gh, gw, p, p]
    return x.reshape(b, c, gh * gw, patch * patch)


def unpatchify(tokens: np.ndarray, patch: int, height: int, width: int) -> np.ndarray:
    """Inverse of :func:`patchify`: [B, C, N, p*p] -> [B, C, H, W]."""
    b, c, n, pp = tokens.shape
    gh, gw = height // patch, width // patch
    if n != gh * gw or pp != patch * patch:
        raise ValueError("token shape inconsistent with image geometry")
    x = tokens.reshape(b, c, gh, gw, patch, patch)
    x = x.transpose(0, 1, 2, 4, 3, 5)
    return x.reshape(b, c, height, width)


class PatchTokenizer(Module):
    """Tokenize each channel independently with channel-specific weights.

    ``weight``: ``[C, p*p, D]``, ``bias``: ``[C, D]``.  The forward is a
    batched matmul over the channel axis:
    ``[B, C, N, p*p] @ [C, p*p, D] -> [B, C, N, D]``.

    ``channel_offset`` lets a D-CHAG rank own the weights of its channel
    subset only while keeping the same per-channel initialisation as the
    serial model (used by the equivalence tests).
    """

    def __init__(
        self,
        channels: int,
        patch: int,
        dim: int,
        rng: np.random.Generator | None = None,
        weight: np.ndarray | None = None,
        bias_value: np.ndarray | None = None,
    ) -> None:
        super().__init__()
        self.channels = channels
        self.patch = patch
        self.dim = dim
        pp = patch * patch
        if weight is not None:
            if weight.shape != (channels, pp, dim):
                raise ValueError(f"weight shape {weight.shape} != {(channels, pp, dim)}")
            self.weight = Tensor(np.asarray(weight, dtype=np.float32), requires_grad=True)
        else:
            if rng is None:
                raise ValueError("PatchTokenizer needs rng or explicit weight")
            self.weight = init.trunc_normal((channels, pp, dim), rng, std=0.02)
        if bias_value is not None:
            self.bias = Tensor(np.asarray(bias_value, dtype=np.float32), requires_grad=True)
        else:
            self.bias = init.zeros((channels, dim))

    def forward(self, images: Tensor | np.ndarray) -> Tensor:
        """[B, C, H, W] -> [B, C, N, D]."""
        data = images.data if isinstance(images, Tensor) else np.asarray(images, dtype=np.float32)
        b, c, h, w = data.shape
        if c != self.channels:
            raise ValueError(f"expected {self.channels} channels, got {c}")
        patches = Tensor(patchify(data, self.patch))            # [B, C, N, pp]
        x = patches.transpose(1, 0, 2, 3)                        # [C, B, N, pp]
        n = x.shape[2]
        x = x.reshape(c, b * n, self.patch * self.patch)         # [C, B*N, pp]
        tokens = x @ self.weight                                 # [C, B*N, D]
        tokens = tokens.reshape(c, b, n, self.dim).transpose(1, 0, 2, 3)
        return tokens + self.bias.reshape(1, c, 1, self.dim)
