"""Neural-network module library for the D-CHAG reproduction."""

from .attention import (
    ChannelCrossAttention,
    LinearChannelMixer,
    MultiHeadSelfAttention,
    scaled_dot_product_attention,
)
from .embeddings import (
    ChannelIDEmbedding,
    MetadataEmbedding,
    PositionalEmbedding,
    sincos_positions,
)
from .layers import MLP, Dropout, Identity, LayerNorm, Linear
from .mae import MAEDecoder, random_masking
from .module import Module, ModuleList, Parameter
from .patch_embed import PatchTokenizer, patchify, unpatchify
from .perceiver import PerceiverChannelFusion
from .serialization import (
    checkpoint_equal,
    load_checkpoint,
    read_manifest,
    resolve_checkpoint_path,
    save_checkpoint,
)
from .swin import SwinBlock, SwinEncoder, WindowAttention, shifted_window_mask, window_partition, window_reverse
from .transformer import TransformerBlock, ViTEncoder

__all__ = [
    "Module",
    "ModuleList",
    "Parameter",
    "Linear",
    "LayerNorm",
    "MLP",
    "Dropout",
    "Identity",
    "MultiHeadSelfAttention",
    "ChannelCrossAttention",
    "LinearChannelMixer",
    "scaled_dot_product_attention",
    "PatchTokenizer",
    "patchify",
    "unpatchify",
    "ChannelIDEmbedding",
    "PositionalEmbedding",
    "MetadataEmbedding",
    "sincos_positions",
    "TransformerBlock",
    "ViTEncoder",
    "MAEDecoder",
    "PerceiverChannelFusion",
    "SwinEncoder",
    "SwinBlock",
    "WindowAttention",
    "window_partition",
    "window_reverse",
    "shifted_window_mask",
    "save_checkpoint",
    "load_checkpoint",
    "checkpoint_equal",
    "read_manifest",
    "resolve_checkpoint_path",
    "random_masking",
]
