"""Attention layers: multi-head self-attention (the ViT block component) and
cross-attention (the channel-aggregation component of the paper's Fig. 1).

Shapes
------
Self-attention operates over the spatial token axis::

    [B, N, D] -> [B, N, D]

Channel cross-attention operates over the *channel* axis independently at
every spatial location — the key structural point of the paper.  With input
``[B, C, N, D]`` the spatial axis is folded into the batch, a set of learned
query tokens attends over the C channels, and the result is ``[B, Q, N, D]``
(``Q = 1`` reduces the channels to a single representation).  The attention
score matrix is ``[B*N, heads, Q, C]`` — *quadratic in C* when ``Q ~ C``
(the paper's memory argument) and linear in C for the aggregating ``Q = 1``.
"""

from __future__ import annotations

import numpy as np

from ..tensor import Tensor, functional as F, init
from .layers import Dropout, Linear
from .module import Module

__all__ = [
    "MultiHeadSelfAttention",
    "ChannelCrossAttention",
    "LinearChannelMixer",
    "split_heads",
    "merge_heads",
    "scaled_dot_product_attention",
]


def _split_heads(x: Tensor, heads: int) -> Tensor:
    """[B, N, D] -> [B, h, N, D/h]"""
    b, n, d = x.shape
    return x.reshape(b, n, heads, d // heads).transpose(0, 2, 1, 3)


def _merge_heads(x: Tensor) -> Tensor:
    """[B, h, N, D/h] -> [B, N, D]"""
    b, h, n, hd = x.shape
    return x.transpose(0, 2, 1, 3).reshape(b, n, h * hd)


def split_heads(x: Tensor, heads: int) -> Tensor:
    """Public alias of :func:`_split_heads` (used by the TP layers)."""
    return _split_heads(x, heads)


def merge_heads(x: Tensor) -> Tensor:
    """Public alias of :func:`_merge_heads`."""
    return _merge_heads(x)


def scaled_dot_product_attention(
    q: Tensor, k: Tensor, v: Tensor, dropout: Module | None = None
) -> Tensor:
    """softmax(q kᵀ / √d) v over the last two axes (batched)."""
    scale = 1.0 / float(np.sqrt(q.shape[-1]))
    scores = (q @ k.swapaxes(-1, -2)) * scale
    attn = F.softmax(scores, axis=-1)
    if dropout is not None:
        attn = dropout(attn)
    return attn @ v


class MultiHeadSelfAttention(Module):
    """Standard ViT self-attention over the token axis.

    Accepts explicit qkv/proj weights so TP can shard a master init.
    """

    def __init__(
        self,
        dim: int,
        heads: int,
        rng: np.random.Generator | None = None,
        dropout: float = 0.0,
        qkv_weight: np.ndarray | None = None,
        qkv_bias: np.ndarray | None = None,
        proj_weight: np.ndarray | None = None,
        proj_bias: np.ndarray | None = None,
    ) -> None:
        super().__init__()
        if dim % heads != 0:
            raise ValueError(f"dim {dim} not divisible by heads {heads}")
        self.dim = dim
        self.heads = heads
        self.qkv = Linear(dim, 3 * dim, rng, weight=qkv_weight, bias_value=qkv_bias)
        self.proj = Linear(dim, dim, rng, weight=proj_weight, bias_value=proj_bias)
        self.attn_drop = Dropout(dropout, rng) if dropout > 0 else None

    def forward(self, x: Tensor) -> Tensor:
        b, n, d = x.shape
        qkv = self.qkv(x)  # [B, N, 3D]
        q, k, v = qkv.split(3, axis=-1)
        q, k, v = (_split_heads(t, self.heads) for t in (q, k, v))
        out = scaled_dot_product_attention(q, k, v, self.attn_drop)
        return self.proj(_merge_heads(out))


class ChannelCrossAttention(Module):
    """Cross-attention that aggregates the channel axis (paper §2.1).

    ``Q`` learned query tokens attend over the C input channels at every
    spatial location; ``Q = 1`` (the default) reduces C channels to one
    aggregated representation — the paper's channel-aggregation layer.
    """

    def __init__(
        self,
        dim: int,
        heads: int,
        rng: np.random.Generator | None = None,
        num_queries: int = 1,
        dropout: float = 0.0,
        query_tokens: np.ndarray | None = None,
        q_weight: np.ndarray | None = None,
        q_bias: np.ndarray | None = None,
        kv_weight: np.ndarray | None = None,
        kv_bias: np.ndarray | None = None,
        proj_weight: np.ndarray | None = None,
        proj_bias: np.ndarray | None = None,
    ) -> None:
        super().__init__()
        if dim % heads != 0:
            raise ValueError(f"dim {dim} not divisible by heads {heads}")
        self.dim = dim
        self.heads = heads
        self.num_queries = num_queries
        if query_tokens is not None:
            self.query_tokens = Tensor(np.asarray(query_tokens, dtype=np.float32), requires_grad=True)
        else:
            if rng is None:
                raise ValueError("ChannelCrossAttention needs rng or explicit weights")
            self.query_tokens = init.trunc_normal((num_queries, dim), rng, std=0.02)
        self.q_proj = Linear(dim, dim, rng, weight=q_weight, bias_value=q_bias)
        self.kv_proj = Linear(dim, 2 * dim, rng, weight=kv_weight, bias_value=kv_bias)
        self.proj = Linear(dim, dim, rng, weight=proj_weight, bias_value=proj_bias)
        self.attn_drop = Dropout(dropout, rng) if dropout > 0 else None

    def forward(self, x: Tensor) -> Tensor:
        """[B, C, N, D] -> [B, N, D] (Q=1) or [B, Q, N, D] (Q>1)."""
        b, c, n, d = x.shape
        # Fold spatial into batch: channels become the attention sequence.
        tokens = x.transpose(0, 2, 1, 3).reshape(b * n, c, d)  # [B*N, C, D]
        q_in = self.query_tokens.expand_dims(0).broadcast_to((b * n, self.num_queries, d))
        q = _split_heads(self.q_proj(q_in), self.heads)           # [B*N, h, Q, hd]
        kv = self.kv_proj(tokens)                                 # [B*N, C, 2D]
        k, v = kv.split(2, axis=-1)
        k = _split_heads(k, self.heads)                           # [B*N, h, C, hd]
        v = _split_heads(v, self.heads)
        out = scaled_dot_product_attention(q, k, v, self.attn_drop)  # [B*N, h, Q, hd]
        out = self.proj(_merge_heads(out))                        # [B*N, Q, D]
        out = out.reshape(b, n, self.num_queries, d).transpose(0, 2, 1, 3)  # [B, Q, N, D]
        if self.num_queries == 1:
            return out.squeeze(1)
        return out


class LinearChannelMixer(Module):
    """Lightweight linear substitute for an aggregation layer (the ``-L``
    variants): a learned linear map over the channel axis,
    ``[B, C_in, N, D] -> [B, C_out, N, D]`` (squeezed when ``C_out = 1``).

    Parameter count is ``C_in * C_out + C_out`` versus the cross-attention
    layer's ``~4 D² + Q D`` — the memory trade-off §3.3 discusses.
    """

    def __init__(
        self,
        c_in: int,
        c_out: int = 1,
        rng: np.random.Generator | None = None,
        weight: np.ndarray | None = None,
        bias_value: np.ndarray | None = None,
    ) -> None:
        super().__init__()
        self.c_in = c_in
        self.c_out = c_out
        if weight is not None:
            self.weight = Tensor(np.asarray(weight, dtype=np.float32), requires_grad=True)
        else:
            if rng is None:
                raise ValueError("LinearChannelMixer needs rng or explicit weight")
            # Initialise near uniform averaging so early training is stable.
            w = np.full((c_out, c_in), 1.0 / c_in, dtype=np.float32)
            w += (rng.standard_normal((c_out, c_in)) * 0.02).astype(np.float32)
            self.weight = Tensor(w, requires_grad=True)
        if bias_value is not None:
            self.bias = Tensor(np.asarray(bias_value, dtype=np.float32), requires_grad=True)
        else:
            self.bias = init.zeros((c_out,))

    def forward(self, x: Tensor) -> Tensor:
        b, c, n, d = x.shape
        if c != self.c_in:
            raise ValueError(f"expected {self.c_in} channels, got {c}")
        folded = x.reshape(b, c, n * d)                      # [B, C, N*D]
        mixed = self.weight @ folded                          # [B, C_out, N*D] (broadcast batch)
        mixed = mixed.reshape(b, self.c_out, n, d)
        out = mixed + self.bias.reshape(1, self.c_out, 1, 1)
        if self.c_out == 1:
            return out.squeeze(1)
        return out
