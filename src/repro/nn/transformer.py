"""ViT transformer blocks and encoder (pre-norm, GELU MLP)."""

from __future__ import annotations

import numpy as np

from ..tensor import Tensor
from .attention import MultiHeadSelfAttention
from .layers import MLP, LayerNorm
from .module import Module, ModuleList

__all__ = ["TransformerBlock", "ViTEncoder"]


class TransformerBlock(Module):
    """Pre-norm ViT block: ``x + MHSA(LN(x))`` then ``x + MLP(LN(x))``."""

    def __init__(
        self,
        dim: int,
        heads: int,
        rng: np.random.Generator,
        mlp_ratio: float = 4.0,
        dropout: float = 0.0,
    ) -> None:
        super().__init__()
        self.norm1 = LayerNorm(dim)
        self.attn = MultiHeadSelfAttention(dim, heads, rng, dropout=dropout)
        self.norm2 = LayerNorm(dim)
        self.mlp = MLP(dim, int(dim * mlp_ratio), rng, dropout=dropout)

    def forward(self, x: Tensor) -> Tensor:
        x = x + self.attn(self.norm1(x))
        x = x + self.mlp(self.norm2(x))
        return x


class ViTEncoder(Module):
    """A stack of transformer blocks with a final LayerNorm."""

    def __init__(
        self,
        dim: int,
        depth: int,
        heads: int,
        rng: np.random.Generator,
        mlp_ratio: float = 4.0,
        dropout: float = 0.0,
    ) -> None:
        super().__init__()
        self.dim = dim
        self.depth = depth
        self.blocks = ModuleList(
            [TransformerBlock(dim, heads, rng, mlp_ratio, dropout) for _ in range(depth)]
        )
        self.norm = LayerNorm(dim)

    def forward(self, x: Tensor) -> Tensor:
        for block in self.blocks:
            x = block(x)
        return self.norm(x)
