"""Checkpointing: save/load a module's state dict as a compressed ``.npz``.

Checkpoints are architecture-agnostic (plain name → array maps), so a model
trained with D-CHAG can be re-assembled serially and vice versa as long as
the parameter names line up — the property the paper uses when it compares
distributed runs against the single-GPU baseline.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from .module import Module

__all__ = ["save_checkpoint", "load_checkpoint", "checkpoint_equal"]


def save_checkpoint(module: Module, path: str | Path) -> Path:
    """Write ``module.state_dict()`` to *path* (``.npz``, compressed)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    state = module.state_dict()
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **state)
    return path


def load_checkpoint(module: Module, path: str | Path, strict: bool = True) -> list[str]:
    """Load a checkpoint into *module*.

    With ``strict=False``, parameters missing from the file keep their
    current values and unexpected file entries are ignored; the list of
    skipped names is returned (empty under ``strict=True`` success).
    """
    path = Path(path)
    with np.load(path) as data:
        state = {k: data[k] for k in data.files}
    if strict:
        module.load_state_dict(state)
        return []
    own = dict(module.named_parameters())
    skipped = sorted(set(state) ^ set(own))
    for name, p in own.items():
        if name in state:
            arr = np.asarray(state[name], dtype=p.data.dtype)
            if arr.shape != p.data.shape:
                raise ValueError(f"shape mismatch for {name}: {arr.shape} vs {p.data.shape}")
            p.data = arr.copy()
    return skipped


def checkpoint_equal(a: Module, b: Module, rtol: float = 0.0, atol: float = 0.0) -> bool:
    """Whether two modules hold identical (or allclose) parameters."""
    sa, sb = a.state_dict(), b.state_dict()
    if sa.keys() != sb.keys():
        return False
    for k in sa:
        if rtol == 0.0 and atol == 0.0:
            if not np.array_equal(sa[k], sb[k]):
                return False
        elif not np.allclose(sa[k], sb[k], rtol=rtol, atol=atol):
            return False
    return True
