"""Checkpointing: save/load a module's state dict as a compressed ``.npz``.

Checkpoints are architecture-agnostic (plain name → array maps), so a model
trained with D-CHAG can be re-assembled serially and vice versa as long as
the parameter names line up — the property the paper uses when it compares
distributed runs against the single-GPU baseline.

Both ends share one path convention: :func:`save_checkpoint` appends ``.npz``
to paths that lack it (``model.ckpt`` → ``model.ckpt.npz``) and
:func:`load_checkpoint` applies the same derivation, so the path a caller
passed to save round-trips through load unchanged.  A checkpoint may carry a
JSON *manifest* (step index, world geometry, anything the elastic subsystem
needs) stored under a reserved key that never collides with parameter names.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from .module import Module

__all__ = [
    "save_checkpoint",
    "load_checkpoint",
    "read_manifest",
    "checkpoint_equal",
    "resolve_checkpoint_path",
]

# Reserved npz entry holding the JSON manifest; parameter names are dotted
# attribute paths, so a dunder name cannot collide.
_MANIFEST_KEY = "__manifest__"


def resolve_checkpoint_path(path: str | Path, for_load: bool = False) -> Path:
    """The on-disk ``.npz`` path for *path* (shared by save and load).

    ``model.ckpt`` → ``model.ckpt.npz``; paths already ending in ``.npz``
    pass through.  For loads, an exact existing path wins even without the
    suffix, so checkpoints produced by other tools still open.
    """
    path = Path(path)
    if path.suffix == ".npz":
        return path
    if for_load and path.exists():
        return path
    return path.with_suffix(path.suffix + ".npz")


def save_checkpoint(
    module: Module, path: str | Path, manifest: dict | None = None
) -> Path:
    """Write ``module.state_dict()`` to *path* (``.npz``, compressed).

    *manifest*, when given, must be JSON-serializable; it is embedded in the
    archive and read back with :func:`read_manifest`.  Returns the actual
    path written (suffix-derived), which :func:`load_checkpoint` also
    derives — callers may round-trip either the argument or the return value.
    """
    path = resolve_checkpoint_path(path)
    state = dict(module.state_dict())
    if manifest is not None:
        if _MANIFEST_KEY in state:
            raise ValueError(f"state dict may not contain the reserved key {_MANIFEST_KEY!r}")
        state[_MANIFEST_KEY] = np.frombuffer(
            json.dumps(manifest).encode("utf-8"), dtype=np.uint8
        )
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **state)
    return path


def load_checkpoint(module: Module, path: str | Path, strict: bool = True) -> list[str]:
    """Load a checkpoint into *module*.

    Accepts the same path that was passed to :func:`save_checkpoint` (with or
    without the derived ``.npz`` suffix).  With ``strict=False``, parameters
    missing from the file keep their current values and unexpected file
    entries are ignored; the list of skipped names is returned (empty under
    ``strict=True`` success).
    """
    path = resolve_checkpoint_path(path, for_load=True)
    with np.load(path) as data:
        state = {k: data[k] for k in data.files if k != _MANIFEST_KEY}
    if strict:
        module.load_state_dict(state)
        return []
    own = dict(module.named_parameters())
    skipped = sorted(set(state) ^ set(own))
    for name, p in own.items():
        if name in state:
            arr = np.asarray(state[name], dtype=p.data.dtype)
            if arr.shape != p.data.shape:
                raise ValueError(f"shape mismatch for {name}: {arr.shape} vs {p.data.shape}")
            p.data = arr.copy()
    return skipped


def read_manifest(path: str | Path) -> dict | None:
    """The manifest embedded by :func:`save_checkpoint`, or ``None``."""
    path = resolve_checkpoint_path(path, for_load=True)
    with np.load(path) as data:
        if _MANIFEST_KEY not in data.files:
            return None
        raw = bytes(data[_MANIFEST_KEY].tobytes())
    return json.loads(raw.decode("utf-8"))


def checkpoint_equal(a: Module, b: Module, rtol: float = 0.0, atol: float = 0.0) -> bool:
    """Whether two modules hold identical (or allclose) parameters."""
    sa, sb = a.state_dict(), b.state_dict()
    if sa.keys() != sb.keys():
        return False
    for k in sa:
        if rtol == 0.0 and atol == 0.0:
            if not np.array_equal(sa[k], sb[k]):
                return False
        elif not np.allclose(sa[k], sb[k], rtol=rtol, atol=atol):
            return False
    return True
