"""Primitive layers: Linear, LayerNorm, MLP, Dropout.

Every layer can be constructed either from a fresh RNG or from explicit
weight arrays — the latter is how the tensor-parallel wrappers in
:mod:`repro.parallel.tp` build rank shards from one master initialisation so
that TP ≡ serial holds bitwise.
"""

from __future__ import annotations

import numpy as np

from ..tensor import Tensor, functional as F, init
from .module import Module

__all__ = ["Linear", "LayerNorm", "MLP", "Dropout", "Identity"]


class Linear(Module):
    """Affine map ``y = x @ W + b`` with ``W`` of shape ``[in, out]``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator | None = None,
        bias: bool = True,
        weight: np.ndarray | None = None,
        bias_value: np.ndarray | None = None,
    ) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        if weight is not None:
            if weight.shape != (in_features, out_features):
                raise ValueError(f"weight shape {weight.shape} != {(in_features, out_features)}")
            self.weight = Tensor(np.asarray(weight, dtype=np.float32), requires_grad=True)
        else:
            if rng is None:
                raise ValueError("Linear needs either rng or an explicit weight")
            self.weight = init.trunc_normal((in_features, out_features), rng, std=0.02)
        self.has_bias = bias
        if bias:
            if bias_value is not None:
                self.bias = Tensor(np.asarray(bias_value, dtype=np.float32), requires_grad=True)
            else:
                self.bias = init.zeros((out_features,))

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.has_bias:
            out = out + self.bias
        return out


class LayerNorm(Module):
    """Layer normalisation over the last axis with learned affine."""

    def __init__(self, dim: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.weight = init.ones((dim,))
        self.bias = init.zeros((dim,))

    def forward(self, x: Tensor) -> Tensor:
        return F.layer_norm(x, self.weight, self.bias, eps=self.eps)


class Dropout(Module):
    """Inverted dropout; seeded per-module for reproducibility."""

    def __init__(self, p: float, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        self.p = p
        self.rng = rng if rng is not None else np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self.rng, training=self.training)


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x


class MLP(Module):
    """Transformer feed-forward: Linear → GELU → Linear (+dropout)."""

    def __init__(
        self,
        dim: int,
        hidden_dim: int,
        rng: np.random.Generator,
        dropout: float = 0.0,
    ) -> None:
        super().__init__()
        self.fc1 = Linear(dim, hidden_dim, rng)
        self.fc2 = Linear(hidden_dim, dim, rng)
        self.drop = Dropout(dropout, rng) if dropout > 0 else Identity()

    @classmethod
    def from_masters(
        cls,
        fc1_weight: np.ndarray,
        fc1_bias: np.ndarray,
        fc2_weight: np.ndarray,
        fc2_bias: np.ndarray,
    ) -> "MLP":
        """Build directly from master arrays — the explicit-weight
        :class:`Linear` path the parallel wrappers use, with no rng and no
        throwaway random init."""
        self = cls.__new__(cls)
        Module.__init__(self)
        dim, hidden = fc1_weight.shape
        self.fc1 = Linear(dim, hidden, weight=fc1_weight, bias_value=fc1_bias)
        self.fc2 = Linear(hidden, dim, weight=fc2_weight, bias_value=fc2_bias)
        self.drop = Identity()
        return self

    def forward(self, x: Tensor) -> Tensor:
        return self.drop(self.fc2(F.gelu(self.fc1(x))))
