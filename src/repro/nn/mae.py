"""MAE masking utilities and decoder (He et al., used in paper §5.1).

The encoder side is the paper's ChannelViT; masking happens *after* channel
aggregation (tokens are spatial patches), so D-CHAG leaves the decoder
untouched — exactly the property §3.5 claims ("it only modifies the input to
the ViT module, without altering the decoder modules").
"""

from __future__ import annotations

import numpy as np

from ..tensor import Tensor, init
from .embeddings import PositionalEmbedding
from .layers import Linear
from .module import Module
from .transformer import ViTEncoder

__all__ = ["random_masking", "MAEDecoder"]


def random_masking(
    n_tokens: int, mask_ratio: float, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sample a random token mask.

    Returns ``(keep_idx, mask_idx, mask)`` where ``mask`` is ``[n_tokens]``
    with 1 for *masked* tokens; ``keep_idx`` is sorted ascending so visible
    tokens keep their relative order.
    """
    n_keep = max(1, int(round(n_tokens * (1.0 - mask_ratio))))
    perm = rng.permutation(n_tokens)
    keep_idx = np.sort(perm[:n_keep])
    mask_idx = np.sort(perm[n_keep:])
    mask = np.ones(n_tokens, dtype=np.float32)
    mask[keep_idx] = 0.0
    return keep_idx, mask_idx, mask


class MAEDecoder(Module):
    """Lightweight MAE decoder: embed → insert mask tokens → blocks → predict.

    Predicts per-patch pixels for all output channels:
    ``[B, N_vis, D] -> [B, N, patch² · C_out]``.
    """

    def __init__(
        self,
        encoder_dim: int,
        decoder_dim: int,
        depth: int,
        heads: int,
        num_tokens: int,
        patch: int,
        out_channels: int,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        self.num_tokens = num_tokens
        self.embed = Linear(encoder_dim, decoder_dim, rng)
        self.mask_token = init.trunc_normal((1, 1, decoder_dim), rng, std=0.02)
        self.pos = PositionalEmbedding(num_tokens, decoder_dim, learned=False)
        self.encoder = ViTEncoder(decoder_dim, depth, heads, rng)
        self.head = Linear(decoder_dim, patch * patch * out_channels, rng)

    def forward(self, visible: Tensor, keep_idx: np.ndarray) -> Tensor:
        """*visible*: [B, N_vis, D_enc]; returns [B, N, p²·C_out]."""
        b, n_vis, _ = visible.shape
        x = self.embed(visible)  # [B, N_vis, D_dec]
        d = x.shape[-1]
        # Scatter visible tokens into the full sequence, mask tokens elsewhere.
        full = self.mask_token.broadcast_to((b, self.num_tokens, d))
        keep = np.asarray(keep_idx)
        # Build with concat: mask_token-filled base + scatter via index add is
        # awkward in pure autograd; instead assemble per-position selection.
        sel = np.full(self.num_tokens, -1, dtype=np.int64)
        sel[keep] = np.arange(n_vis)
        vis_mask = (sel >= 0).astype(np.float32)[None, :, None]   # [1, N, 1]
        gather = np.where(sel >= 0, sel, 0)
        gathered = x[:, gather, :]                                 # [B, N, D]
        x_full = gathered * Tensor(vis_mask) + full * Tensor(1.0 - vis_mask)
        x_full = self.pos(x_full)
        x_full = self.encoder(x_full)
        return self.head(x_full)
