"""Perceiver-style channel fusion (paper §3.5).

Aurora — "one of the latest and most advanced FMs for weather prediction,
employs the Perceiver architecture as the fusion module".  The paper argues
D-CHAG helps such a module even more, because iterative cross-attention is
more compute-intensive than the single cross-attention layer benchmarked in
the main experiments.

:class:`PerceiverChannelFusion` is a drop-in alternative for
:class:`~repro.nn.attention.ChannelCrossAttention`: a small latent array
iteratively cross-attends to the channel tokens (with latent self-attention
in between), and the latents are finally pooled to the single aggregated
representation.  It plugs into :class:`~repro.models.SerialChannelFrontend`
and into D-CHAG partial/final layers alike (``[B, C, N, D] -> [B, N, D]``).
"""

from __future__ import annotations

import numpy as np

from ..tensor import Tensor, init
from .attention import merge_heads, scaled_dot_product_attention, split_heads
from .layers import LayerNorm, Linear, MLP
from .module import Module, ModuleList

__all__ = ["PerceiverChannelFusion"]


class _LatentCrossAttend(Module):
    """latents ← cross-attention over channel tokens (pre-norm, residual)."""

    def __init__(self, dim: int, heads: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.heads = heads
        self.norm_q = LayerNorm(dim)
        self.norm_kv = LayerNorm(dim)
        self.q_proj = Linear(dim, dim, rng)
        self.kv_proj = Linear(dim, 2 * dim, rng)
        self.out_proj = Linear(dim, dim, rng)

    def forward(self, latents: Tensor, tokens: Tensor) -> Tensor:
        q = split_heads(self.q_proj(self.norm_q(latents)), self.heads)
        k, v = self.kv_proj(self.norm_kv(tokens)).split(2, axis=-1)
        k = split_heads(k, self.heads)
        v = split_heads(v, self.heads)
        out = self.out_proj(merge_heads(scaled_dot_product_attention(q, k, v)))
        return latents + out


class _LatentSelfAttend(Module):
    """latent transformer block (pre-norm MHSA + MLP)."""

    def __init__(self, dim: int, heads: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.heads = heads
        self.norm1 = LayerNorm(dim)
        self.qkv = Linear(dim, 3 * dim, rng)
        self.proj = Linear(dim, dim, rng)
        self.norm2 = LayerNorm(dim)
        self.mlp = MLP(dim, 2 * dim, rng)

    def forward(self, latents: Tensor) -> Tensor:
        h = self.norm1(latents)
        q, k, v = (split_heads(t, self.heads) for t in self.qkv(h).split(3, axis=-1))
        latents = latents + self.proj(merge_heads(scaled_dot_product_attention(q, k, v)))
        return latents + self.mlp(self.norm2(latents))


class PerceiverChannelFusion(Module):
    """Iterative latent cross-attention over the channel axis.

    ``[B, C, N, D] -> [B, N, D]``: at every spatial location, ``num_latents``
    learned latents cross-attend to the C channel tokens ``iterations``
    times (latent self-attention in between), then mean-pool to one vector.
    """

    def __init__(
        self,
        dim: int,
        heads: int,
        rng: np.random.Generator,
        num_latents: int = 4,
        iterations: int = 2,
        weight_tied: bool = True,
    ) -> None:
        super().__init__()
        if num_latents < 1 or iterations < 1:
            raise ValueError("num_latents and iterations must be >= 1")
        self.dim = dim
        self.num_latents = num_latents
        self.iterations = iterations
        self.weight_tied = weight_tied
        self.latents = init.trunc_normal((num_latents, dim), rng, std=0.02)
        n_layers = 1 if weight_tied else iterations
        self.cross = ModuleList([_LatentCrossAttend(dim, heads, rng) for _ in range(n_layers)])
        self.process = ModuleList([_LatentSelfAttend(dim, heads, rng) for _ in range(n_layers)])
        self.out_norm = LayerNorm(dim)

    def forward(self, x: Tensor) -> Tensor:
        b, c, n, d = x.shape
        if d != self.dim:
            raise ValueError(f"expected dim {self.dim}, got {d}")
        tokens = x.transpose(0, 2, 1, 3).reshape(b * n, c, d)        # [B·N, C, D]
        lat = self.latents.expand_dims(0).broadcast_to((b * n, self.num_latents, d))
        for i in range(self.iterations):
            idx = 0 if self.weight_tied else i
            lat = self.cross[idx](lat, tokens)
            lat = self.process[idx](lat)
        pooled = self.out_norm(lat.mean(axis=1))                      # [B·N, D]
        return pooled.reshape(b, n, d)
