"""Special tokens of the paper's architecture (§2.1): channel-ID embeddings,
2-D sinusoidal/learned positional embeddings, and the metadata token (time /
geolocation / lead-time context).
"""

from __future__ import annotations

import numpy as np

from ..tensor import Tensor, init
from .layers import Linear
from .module import Module

__all__ = ["ChannelIDEmbedding", "PositionalEmbedding", "MetadataEmbedding", "sincos_positions"]


def sincos_positions(n: int, dim: int) -> np.ndarray:
    """Fixed 1-D sine/cosine table ``[n, dim]`` (ViT/MAE style)."""
    if dim % 2 != 0:
        raise ValueError("sincos embedding needs an even dim")
    pos = np.arange(n, dtype=np.float64)[:, None]
    omega = 1.0 / (10000 ** (np.arange(dim // 2, dtype=np.float64) / (dim // 2)))
    angles = pos * omega[None, :]
    return np.concatenate([np.sin(angles), np.cos(angles)], axis=1).astype(np.float32)


class ChannelIDEmbedding(Module):
    """A learned ID vector per channel, added before channel aggregation.

    A D-CHAG rank holding channels ``[lo, hi)`` slices the same master table
    (``offset=lo``), so the distributed model matches the serial one.
    """

    def __init__(
        self,
        channels: int,
        dim: int,
        rng: np.random.Generator | None = None,
        table: np.ndarray | None = None,
    ) -> None:
        super().__init__()
        self.channels = channels
        self.dim = dim
        if table is not None:
            if table.shape != (channels, dim):
                raise ValueError(f"table shape {table.shape} != {(channels, dim)}")
            self.table = Tensor(np.asarray(table, dtype=np.float32), requires_grad=True)
        else:
            if rng is None:
                raise ValueError("ChannelIDEmbedding needs rng or explicit table")
            self.table = init.trunc_normal((channels, dim), rng, std=0.02)

    def forward(self, tokens: Tensor) -> Tensor:
        """[B, C, N, D] + id[C, D] (broadcast over batch and space)."""
        b, c, n, d = tokens.shape
        if c != self.channels:
            raise ValueError(f"expected {self.channels} channels, got {c}")
        return tokens + self.table.reshape(1, c, 1, d)


class PositionalEmbedding(Module):
    """Learned (default) or fixed sin-cos positional embedding over tokens."""

    def __init__(
        self,
        num_tokens: int,
        dim: int,
        rng: np.random.Generator | None = None,
        learned: bool = True,
        table: np.ndarray | None = None,
    ) -> None:
        super().__init__()
        self.num_tokens = num_tokens
        self.dim = dim
        if table is None:
            if learned:
                if rng is None:
                    raise ValueError("learned PositionalEmbedding needs rng")
                self.table = init.trunc_normal((num_tokens, dim), rng, std=0.02)
            else:
                self.table = Tensor(sincos_positions(num_tokens, dim))
        else:
            self.table = Tensor(np.asarray(table, dtype=np.float32), requires_grad=learned)

    def forward(self, tokens: Tensor) -> Tensor:
        """[B, N, D] + pos[N, D] (supports N <= num_tokens, e.g. after masking)."""
        n = tokens.shape[-2]
        if n > self.num_tokens:
            raise ValueError(f"sequence {n} longer than table {self.num_tokens}")
        return tokens + self.table[:n]

    def lookup(self, indices: np.ndarray) -> Tensor:
        """Gather rows for the (possibly shuffled) visible-token indices."""
        return self.table[np.asarray(indices)]


class MetadataEmbedding(Module):
    """Embed scalar metadata (time stamp, lead time, geolocation) into a token.

    A two-layer MLP maps ``[B, n_fields] -> [B, 1, D]``, concatenated to the
    spatial tokens before the ViT (paper §2.1).
    """

    def __init__(self, n_fields: int, dim: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.n_fields = n_fields
        self.fc1 = Linear(n_fields, dim, rng)
        self.fc2 = Linear(dim, dim, rng)

    def forward(self, metadata: Tensor | np.ndarray) -> Tensor:
        x = metadata if isinstance(metadata, Tensor) else Tensor(np.asarray(metadata, dtype=np.float32))
        if x.ndim != 2 or x.shape[1] != self.n_fields:
            raise ValueError(f"metadata must be [B, {self.n_fields}]")
        h = self.fc1(x).tanh()
        out = self.fc2(h)
        return out.expand_dims(1)  # [B, 1, D]
