"""Swin-style hierarchical windowed self-attention (paper §3.5).

The paper points out that Aurora replaces the plain ViT with a Swin
Transformer, whose windowed attention supports longer token sequences —
which *increases* the tokenization/aggregation share of the workload and
therefore the benefit of D-CHAG.  This module provides that encoder variant:

* :func:`window_partition` / :func:`window_reverse` — grid ↔ window views;
* :class:`WindowAttention` — MHSA within windows, optional additive mask;
* :class:`SwinBlock` — W-MSA / SW-MSA with cyclic shift and the standard
  shifted-window attention mask;
* :class:`SwinEncoder` — a drop-in replacement for
  :class:`~repro.nn.transformer.ViTEncoder` over ``[B, N, D]`` tokens on a
  known (gh, gw) grid (no patch merging, so token count is preserved and the
  MAE decoder / forecasting head need no change — matching §3.5's claim that
  D-CHAG is agnostic to the ViT architecture).
"""

from __future__ import annotations

import numpy as np

from ..tensor import Tensor, functional as F
from .attention import merge_heads, split_heads
from .layers import LayerNorm, Linear, MLP
from .module import Module, ModuleList

__all__ = [
    "window_partition",
    "window_reverse",
    "WindowAttention",
    "SwinBlock",
    "SwinEncoder",
    "PatchMerging",
    "HierarchicalSwinEncoder",
]


def window_partition(x: Tensor, window: int) -> Tensor:
    """[B, gh, gw, D] -> [B·nW, window², D] (row-major window order)."""
    b, gh, gw, d = x.shape
    if gh % window or gw % window:
        raise ValueError(f"grid {gh}x{gw} not divisible by window {window}")
    x = x.reshape(b, gh // window, window, gw // window, window, d)
    x = x.transpose(0, 1, 3, 2, 4, 5)
    return x.reshape(b * (gh // window) * (gw // window), window * window, d)


def window_reverse(x: Tensor, window: int, gh: int, gw: int) -> Tensor:
    """Inverse of :func:`window_partition`."""
    nw = (gh // window) * (gw // window)
    b = x.shape[0] // nw
    x = x.reshape(b, gh // window, gw // window, window, window, x.shape[-1])
    x = x.transpose(0, 1, 3, 2, 4, 5)
    return x.reshape(b, gh, gw, x.shape[-1])


def _roll2d(x: Tensor, shift: int) -> Tensor:
    """Cyclic shift of a [B, gh, gw, D] grid by (-shift, -shift) (or back
    for positive), built from differentiable slicing + concat."""
    if shift == 0:
        return x
    s = shift % x.shape[1]
    x = Tensor.concat([x[:, s:], x[:, :s]], axis=1)
    s = shift % x.shape[2]
    return Tensor.concat([x[:, :, s:], x[:, :, :s]], axis=2)


def shifted_window_mask(gh: int, gw: int, window: int, shift: int) -> np.ndarray:
    """Additive attention mask ``[nW, window², window²]`` preventing tokens
    that were non-adjacent before the cyclic shift from attending to each
    other (the standard Swin construction)."""
    img = np.zeros((1, gh, gw, 1), dtype=np.float32)
    cnt = 0
    slices = (slice(0, -window), slice(-window, -shift), slice(-shift, None))
    for hs in slices:
        for ws in slices:
            img[:, hs, ws, :] = cnt
            cnt += 1
    windows = window_partition(Tensor(img), window).data.reshape(-1, window * window)
    diff = windows[:, None, :] - windows[:, :, None]
    return np.where(diff != 0, -1e9, 0.0).astype(np.float32)


class WindowAttention(Module):
    """Multi-head self-attention within windows, with an optional additive
    per-window mask (for the shifted configuration)."""

    def __init__(self, dim: int, heads: int, rng: np.random.Generator) -> None:
        super().__init__()
        if dim % heads:
            raise ValueError(f"dim {dim} not divisible by heads {heads}")
        self.dim = dim
        self.heads = heads
        self.qkv = Linear(dim, 3 * dim, rng)
        self.proj = Linear(dim, dim, rng)

    def forward(self, x: Tensor, mask: np.ndarray | None = None) -> Tensor:
        """*x*: [B·nW, T, D]; *mask*: [nW, T, T] additive, or None."""
        bn, t, d = x.shape
        q, k, v = (split_heads(p, self.heads) for p in self.qkv(x).split(3, axis=-1))
        scale = 1.0 / float(np.sqrt(d // self.heads))
        scores = (q @ k.swapaxes(-1, -2)) * scale            # [B·nW, h, T, T]
        if mask is not None:
            nw = mask.shape[0]
            tiles = bn // nw
            full = np.tile(mask[None, :, None], (tiles, 1, 1, 1, 1)).reshape(bn, 1, t, t)
            scores = scores + Tensor(full)
        attn = F.softmax(scores, axis=-1)
        return self.proj(merge_heads(attn @ v))


class SwinBlock(Module):
    """One Swin block: (shifted-)window attention + MLP, pre-norm."""

    def __init__(
        self,
        dim: int,
        heads: int,
        grid: tuple[int, int],
        window: int,
        shift: int,
        rng: np.random.Generator,
        mlp_ratio: float = 4.0,
    ) -> None:
        super().__init__()
        gh, gw = grid
        if shift and (shift >= window):
            raise ValueError("shift must be < window")
        self.grid = grid
        self.window = window
        self.shift = shift
        self.norm1 = LayerNorm(dim)
        self.attn = WindowAttention(dim, heads, rng)
        self.norm2 = LayerNorm(dim)
        self.mlp = MLP(dim, int(dim * mlp_ratio), rng)
        self._mask = shifted_window_mask(gh, gw, window, shift) if shift else None

    def forward(self, x: Tensor) -> Tensor:
        """[B, N, D] with N = gh·gw."""
        b, n, d = x.shape
        gh, gw = self.grid
        if n != gh * gw:
            raise ValueError(f"{n} tokens but grid is {gh}x{gw}")
        h = self.norm1(x).reshape(b, gh, gw, d)
        if self.shift:
            h = _roll2d(h, self.shift)                       # shift by (-s, -s)
        wins = window_partition(h, self.window)
        wins = self.attn(wins, mask=self._mask)
        h = window_reverse(wins, self.window, gh, gw)
        if self.shift:
            h = _roll2d(h, -self.shift)                      # roll back
        x = x + h.reshape(b, n, d)
        return x + self.mlp(self.norm2(x))


class SwinEncoder(Module):
    """A stack of alternating W-MSA / SW-MSA blocks + final norm.

    Drop-in for :class:`~repro.nn.transformer.ViTEncoder` when the token
    grid is known: ``[B, N, D] -> [B, N, D]``.
    """

    def __init__(
        self,
        dim: int,
        depth: int,
        heads: int,
        grid: tuple[int, int],
        window: int,
        rng: np.random.Generator,
        mlp_ratio: float = 4.0,
    ) -> None:
        super().__init__()
        gh, gw = grid
        if gh % window or gw % window:
            raise ValueError(f"grid {grid} not divisible by window {window}")
        shift = window // 2 if min(gh, gw) > window else 0
        self.dim = dim
        self.depth = depth
        self.grid = grid
        self.window = window
        self.blocks = ModuleList(
            [
                SwinBlock(dim, heads, grid, window, shift if i % 2 else 0, rng, mlp_ratio)
                for i in range(depth)
            ]
        )
        self.norm = LayerNorm(dim)

    def forward(self, x: Tensor) -> Tensor:
        for block in self.blocks:
            x = block(x)
        return self.norm(x)


class PatchMerging(Module):
    """Swin's downsampling layer: 2×2 neighbourhoods concatenate to ``4D``
    and project to ``2D`` — halves the grid, doubles the width."""

    def __init__(self, dim: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.dim = dim
        self.norm = LayerNorm(4 * dim)
        self.reduction = Linear(4 * dim, 2 * dim, rng, bias=False)

    def forward(self, x: Tensor, grid: tuple[int, int]) -> tuple[Tensor, tuple[int, int]]:
        """[B, gh·gw, D] -> ([B, gh/2·gw/2, 2D], (gh/2, gw/2))."""
        gh, gw = grid
        if gh % 2 or gw % 2:
            raise ValueError(f"grid {grid} must be even for merging")
        b, n, d = x.shape
        if n != gh * gw or d != self.dim:
            raise ValueError(f"tokens {x.shape} inconsistent with grid {grid} / dim {self.dim}")
        g = x.reshape(b, gh // 2, 2, gw // 2, 2, d)
        g = g.transpose(0, 1, 3, 2, 4, 5).reshape(b, (gh // 2) * (gw // 2), 4 * d)
        return self.reduction(self.norm(g)), (gh // 2, gw // 2)


class HierarchicalSwinEncoder(Module):
    """Multi-stage Swin: blocks at each resolution with PatchMerging between.

    ``depths`` gives blocks per stage; width doubles and the grid halves at
    every merge (the "hierarchical approach to self-attention" §3.5 cites as
    increasing the tokenization/aggregation share of the workload).  Output:
    ``[B, N / 4^(S-1), D · 2^(S-1)]``.
    """

    def __init__(
        self,
        dim: int,
        depths: tuple[int, ...],
        heads: int,
        grid: tuple[int, int],
        window: int,
        rng: np.random.Generator,
        mlp_ratio: float = 4.0,
    ) -> None:
        super().__init__()
        if not depths:
            raise ValueError("need at least one stage")
        self.grid = grid
        self.stages = ModuleList()
        self.merges = ModuleList()
        g = grid
        d = dim
        for si, depth in enumerate(depths):
            if g[0] % window or g[1] % window:
                raise ValueError(f"stage {si} grid {g} not divisible by window {window}")
            shift = window // 2 if min(g) > window else 0
            self.stages.append(
                ModuleList(
                    [
                        SwinBlock(d, heads, g, window, shift if i % 2 else 0, rng, mlp_ratio)
                        for i in range(depth)
                    ]
                )
            )
            if si < len(depths) - 1:
                self.merges.append(PatchMerging(d, rng))
                g = (g[0] // 2, g[1] // 2)
                d *= 2
        self.out_dim = d
        self.out_grid = g
        self.norm = LayerNorm(d)

    def forward(self, x: Tensor) -> Tensor:
        g = self.grid
        for si, stage in enumerate(self.stages):
            for block in stage:
                x = block(x)
            if si < len(self.merges):
                x, g = self.merges[si](x, g)
        return self.norm(x)
