"""Analytic performance models: the measurement substitute for Frontier.

These closed-form models regenerate every memory/throughput figure in the
paper; small-scale real runs (memory tracker + FLOP counter) validate them
in ``tests/test_perf_validation.py``.
"""

from .autotune import (
    ReplaySweep,
    TunedPlan,
    best_configuration,
    search_configurations,
    simulated_overlaps,
    sweep_replay,
)
from .clock import CommInterval, ComputeInterval, VirtualClock
from .cost import CostModel
from .figures import FIGURE_BATCH
from .comm_model import (
    CommBreakdown,
    CommEvent,
    collective_time,
    estimate_step_comm,
    step_comm_schedule,
)
from .flops import TRAIN_MULT, FlopsBreakdown, estimate_flops, useful_flops_per_step
from .machine import GiB, MachineSpec, frontier
from .overlap import (
    OVERLAP_PHASES,
    BucketExposure,
    DerivedOverlaps,
    OverlapReport,
    derive_bucket_exposures,
    derive_overlap,
    derive_overlaps,
)
from .memory_model import MemoryBreakdown, estimate_memory
from .modelcfg import MODEL_ZOO, ModelConfig, named_model, transformer_param_count
from .plan import ParallelPlan, Precision, Workload
from .schedule import (
    CapturedSchedule,
    ReplayProgram,
    ReplayResult,
    ReplayVariant,
    ScheduleEvent,
    ScheduleReplayError,
    replay,
    replay_many,
)
from .throughput import (
    StepEstimate,
    batch_efficiency,
    estimate_step,
    global_batch_throughput,
    max_batch_per_replica,
    sustained_estimate,
    throughput_gain,
)

__all__ = [
    "FIGURE_BATCH",
    "TunedPlan",
    "search_configurations",
    "best_configuration",
    "MachineSpec",
    "frontier",
    "GiB",
    "ModelConfig",
    "named_model",
    "MODEL_ZOO",
    "transformer_param_count",
    "ParallelPlan",
    "Precision",
    "Workload",
    "MemoryBreakdown",
    "estimate_memory",
    "FlopsBreakdown",
    "estimate_flops",
    "useful_flops_per_step",
    "TRAIN_MULT",
    "CommBreakdown",
    "CommEvent",
    "collective_time",
    "estimate_step_comm",
    "step_comm_schedule",
    "CostModel",
    "VirtualClock",
    "ComputeInterval",
    "CommInterval",
    "OVERLAP_PHASES",
    "BucketExposure",
    "DerivedOverlaps",
    "OverlapReport",
    "derive_bucket_exposures",
    "derive_overlap",
    "derive_overlaps",
    "simulated_overlaps",
    "CapturedSchedule",
    "ScheduleEvent",
    "ScheduleReplayError",
    "ReplayResult",
    "ReplayVariant",
    "ReplayProgram",
    "replay",
    "replay_many",
    "ReplaySweep",
    "sweep_replay",
    "StepEstimate",
    "estimate_step",
    "throughput_gain",
    "sustained_estimate",
    "global_batch_throughput",
    "batch_efficiency",
    "max_batch_per_replica",
]
