"""Analytic machine model of the Frontier supercomputer (paper §4.1).

Numbers come from the paper and the published MI250X / Slingshot-11 specs:

* 1 node = 4 × MI250X = 8 GCDs ("GPUs"), 64 GB HBM each
* Infinity Fabric GPU-GPU: 50 GB/s between GCDs inside a node
* Slingshot-11: 100 GB/s injection per node (4 NICs), so 12.5 GB/s per GCD
  when all 8 GCDs communicate off-node simultaneously
* MI250X peak: 383 TFLOP/s bf16 per module → 191.5 per GCD; sustained
  efficiency for transformer training on Frontier is ~25–35 % (ORBIT
  reports similar), default 0.30.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, fields, replace
from pathlib import Path

__all__ = ["MachineSpec", "frontier"]

GiB = 1024**3


@dataclass(frozen=True)
class MachineSpec:
    """Capacities and link speeds of one machine type."""

    name: str
    gpus_per_node: int
    hbm_bytes: int                 # per GPU (GCD)
    intra_node_bw: float           # bytes/s per GPU pair, Infinity Fabric
    inter_node_bw_per_node: float  # bytes/s injection bandwidth per node
    peak_flops: float              # per GPU, bf16
    compute_efficiency: float      # sustained fraction of peak for GEMMs
    intra_latency: float = 2.0e-6  # seconds per collective step, in-node
    inter_latency: float = 8.0e-6  # seconds per collective step, cross-node

    @property
    def inter_node_bw_per_gpu(self) -> float:
        return self.inter_node_bw_per_node / self.gpus_per_node

    @property
    def sustained_flops(self) -> float:
        return self.peak_flops * self.compute_efficiency

    def nodes_for(self, gpus: int) -> int:
        return (gpus + self.gpus_per_node - 1) // self.gpus_per_node

    def with_efficiency(self, eff: float) -> "MachineSpec":
        return replace(self, compute_efficiency=eff)

    # -- JSON persistence --------------------------------------------------
    # A fitted (host-calibrated) spec is saved next to checkpoints and
    # loaded by the autotuner in place of the paper constants
    # (`perf/calibrate.py::load_or_fit_machine`).  Round-trips exactly:
    # every field is a str/int/float and json preserves them losslessly.
    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: dict) -> "MachineSpec":
        known = {f.name for f in fields(cls)}
        unknown = set(d) - known
        if unknown:
            raise ValueError(f"unknown MachineSpec fields {sorted(unknown)}")
        return cls(**d)

    def save(self, path) -> None:
        """Write this spec as JSON (parent directories created)."""
        p = Path(path)
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n")

    @classmethod
    def load(cls, path) -> "MachineSpec":
        """Read a spec saved by :meth:`save` (bitwise field round-trip)."""
        return cls.from_dict(json.loads(Path(path).read_text()))


def frontier() -> MachineSpec:
    """The OLCF Frontier node as described in paper §4.1."""
    return MachineSpec(
        name="frontier",
        gpus_per_node=8,
        hbm_bytes=64 * GiB,
        intra_node_bw=50e9,
        inter_node_bw_per_node=100e9,
        peak_flops=191.5e12,
        compute_efficiency=0.30,
    )
