"""Captured-schedule replay: record one instrumented step, replay N cheaply.

A steady-state training step repeats an identical schedule of compute
charges and collectives, yet every simulated step today re-runs Python
autograd, numpy payloads and thread rendezvous.  This module lowers one
live :func:`repro.dist.run_spmd` step into a flat, serializable event list
(the same shape as tinygrad's ``LazyOp`` → ``ScheduleItem`` lowering) and
re-executes it as **pure event arithmetic**: no threads, no numpy, no
rendezvous — just the :class:`~repro.perf.clock.VirtualClock` methods the
live runtime would have called, in the same per-rank program order.  That
makes the replayed timeline *bitwise identical* to the live threaded run
(virtual times are pure functions of program order; see the determinism
note in :mod:`repro.perf.clock`).

Record → serialize → replay::

    clock = VirtualClock(machine, eager_phases=OVERLAP_PHASES, capture=True)
    run_spmd(one_step, world_size, clock=clock)      # live, instrumented
    sched = clock.schedule()                         # flat event list
    sched.save("step.json")                          # optional round-trip
    result = replay(sched, machine, n_steps=1000)    # pure arithmetic
    result.clock.times()                             # == live 1000-step run

Phase conventions (mirrors :mod:`repro.perf.overlap`):

    =============  =======================  =================================
    phase          issued by                replay/overlap meaning
    =============  =======================  =================================
    ``forward``    forward compute charges  compute that hides fsdp_gather
    ``backward``   backward compute charges compute that hides dp_sync
    ``dp_sync``    DP gradient AllReduce    eager under ``OVERLAP_PHASES``
    ``fsdp_gather`` FSDP param AllGather    eager under ``OVERLAP_PHASES``
    ``tp``         TP activation AllReduce  blocking (critical path)
    ``gather``     head-gather AllGather    blocking (critical path)
    =============  =======================  =================================

Event kinds: ``compute`` (charge seconds onto the rank timeline), ``coll``
(join a group collective — the replay rendezvous recomputes ``start =
max(bids)`` and ``end = start + cost`` exactly like the live slot),
``drain`` (settle the rank's eager issue queue), ``send``/``recv``
(store-and-forward p2p through a virtual mailbox).  Dependencies are
implicit in the per-rank program order plus the cross-rank joins (``coll``
groups and ``send``→``recv`` edges), so the flat list *is* the dependency
graph.

For fleet-scale sweeps, :class:`ReplayProgram` lowers a schedule ONCE into
a linear arithmetic program (rendezvous and mailbox dependencies resolved
at lowering time) and :func:`replay_many` prices it for many
``(machine, compute_scale)`` variants at once — numpy lane-vectors when
there are enough lanes, a python-float pass otherwise — each lane bitwise
equal to :func:`replay` (``repro.perf.autotune.sweep_replay`` prices
thousand-candidate autotuner sweeps this way).

Run ``python -m repro.perf.schedule [--smoke]`` for a self-contained
bitwise parity check (used by the ``perf-smoke`` CI job), covering both
the scalar interpreter and the vectorized kernel.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass
from typing import Any, Collection, Sequence

from .clock import VirtualClock
from .cost import CostModel
from .machine import MachineSpec

__all__ = [
    "ScheduleEvent",
    "CapturedSchedule",
    "ReplayResult",
    "ReplayVariant",
    "ReplayProgram",
    "ScheduleReplayError",
    "StepCostTable",
    "replay",
    "replay_many",
]

_SCHEMA_VERSION = 1
_KINDS = frozenset({"compute", "coll", "drain", "send", "recv"})


class ScheduleReplayError(RuntimeError):
    """A captured schedule could not be replayed (mismatched groups,
    an op disagreement inside a group slot, or a p2p deadlock).

    Carries the failure's coordinates so drivers can localize a mismatched
    capture without parsing the message: ``rank`` (the rank whose program
    failed, or the first blocked rank for a deadlock), ``index`` (its
    0-based event position), and ``op`` (the offending event's op, ``""``
    for opless kinds).  All three also appear in the rendered text.
    """

    def __init__(
        self,
        message: str,
        rank: int | None = None,
        index: int | None = None,
        op: str = "",
    ) -> None:
        super().__init__(message)
        self.rank = rank
        self.index = index
        self.op = op


@dataclass(frozen=True)
class ScheduleEvent:
    """One captured runtime event on one rank's program order.

    Field usage by kind — unused fields hold their defaults:

    ``compute``: ``phase``, ``label``, ``seconds``
    ``coll``:    ``op``, ``phase``, ``payload_bytes`` (this rank's bid),
                 ``group`` (world-rank tuple)
    ``drain``:   (no payload)
    ``send``:    ``payload_bytes``, ``peer`` (dst), ``tag``
    ``recv``:    ``peer`` (src), ``tag``
    """

    kind: str
    rank: int
    op: str = ""
    phase: str = ""
    label: str = ""
    seconds: float = 0.0
    payload_bytes: int = 0
    group: tuple[int, ...] = ()
    peer: int = -1
    tag: int = 0

    def to_json(self) -> dict:
        out: dict[str, Any] = {"kind": self.kind, "rank": self.rank}
        if self.op:
            out["op"] = self.op
        if self.phase:
            out["phase"] = self.phase
        if self.label:
            out["label"] = self.label
        if self.seconds:
            out["seconds"] = self.seconds
        if self.payload_bytes:
            out["payload_bytes"] = self.payload_bytes
        if self.group:
            out["group"] = list(self.group)
        if self.peer >= 0:
            out["peer"] = self.peer
        if self.tag:
            out["tag"] = self.tag
        return out

    @classmethod
    def from_json(cls, obj: dict) -> "ScheduleEvent":
        kind = obj["kind"]
        if kind not in _KINDS:
            raise ValueError(f"unknown schedule event kind {kind!r}")
        return cls(
            kind=kind,
            rank=int(obj["rank"]),
            op=str(obj.get("op", "")),
            phase=str(obj.get("phase", "")),
            label=str(obj.get("label", "")),
            seconds=float(obj.get("seconds", 0.0)),
            payload_bytes=int(obj.get("payload_bytes", 0)),
            group=tuple(int(r) for r in obj.get("group", ())),
            peer=int(obj.get("peer", -1)),
            tag=int(obj.get("tag", 0)),
        )


def _event_from_tuple(rank: int, raw: tuple) -> ScheduleEvent:
    kind = raw[0]
    if kind == "compute":
        _, phase, label, seconds = raw
        return ScheduleEvent(
            kind="compute", rank=rank, phase=phase, label=label, seconds=seconds
        )
    if kind == "coll":
        _, op, phase, payload, ranks = raw
        return ScheduleEvent(
            kind="coll", rank=rank, op=op, phase=phase,
            payload_bytes=payload, group=ranks,
        )
    if kind == "drain":
        return ScheduleEvent(kind="drain", rank=rank)
    if kind == "send":
        _, nbytes, dst, tag = raw
        return ScheduleEvent(
            kind="send", rank=rank, payload_bytes=nbytes, peer=dst, tag=tag
        )
    if kind == "recv":
        _, src, tag = raw
        return ScheduleEvent(kind="recv", rank=rank, peer=src, tag=tag)
    raise ValueError(f"unknown captured event tuple {raw!r}")


@dataclass(frozen=True)
class CapturedSchedule:
    """A flat, serializable event list lowered from one instrumented step.

    Events are stored in per-rank program order, concatenated in rank
    order; :meth:`events_for` recovers one rank's program.  The schedule
    carries the eager-phase set it was captured under so a replay defaults
    to the same issue-queue semantics.
    """

    world_size: int
    eager_phases: frozenset[str] = frozenset()
    events: tuple[ScheduleEvent, ...] = ()

    def __post_init__(self) -> None:
        if self.world_size < 1:
            raise ValueError(f"world_size must be >= 1, got {self.world_size}")
        for ev in self.events:
            if not 0 <= ev.rank < self.world_size:
                raise ValueError(
                    f"event rank {ev.rank} out of range for world of size "
                    f"{self.world_size}"
                )

    @classmethod
    def from_clock(cls, clock: VirtualClock) -> "CapturedSchedule":
        """Lower a capture-enabled clock's recorded events."""
        if not getattr(clock, "capture", False):
            raise ValueError("clock was not created with capture=True")
        events: list[ScheduleEvent] = []
        n = clock.world_size
        for rank in range(n):
            for raw in clock.captured_events(rank):
                events.append(_event_from_tuple(rank, raw))
        return cls(
            world_size=n,
            eager_phases=frozenset(clock.eager_phases),
            events=tuple(events),
        )

    def events_for(self, rank: int) -> tuple[ScheduleEvent, ...]:
        """One rank's captured program, in issue order."""
        return tuple(ev for ev in self.events if ev.rank == rank)

    @property
    def n_collectives(self) -> int:
        return sum(1 for ev in self.events if ev.kind == "coll")

    @property
    def n_compute(self) -> int:
        return sum(1 for ev in self.events if ev.kind == "compute")

    # -- serialization -----------------------------------------------------
    def to_json(self) -> dict:
        return {
            "version": _SCHEMA_VERSION,
            "world_size": self.world_size,
            "eager_phases": sorted(self.eager_phases),
            "events": [ev.to_json() for ev in self.events],
        }

    @classmethod
    def from_json(cls, obj: dict) -> "CapturedSchedule":
        version = int(obj.get("version", _SCHEMA_VERSION))
        if version != _SCHEMA_VERSION:
            raise ValueError(f"unsupported schedule schema version {version}")
        return cls(
            world_size=int(obj["world_size"]),
            eager_phases=frozenset(obj.get("eager_phases", ())),
            events=tuple(ScheduleEvent.from_json(e) for e in obj.get("events", ())),
        )

    def save(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_json(), fh)

    @classmethod
    def load(cls, path) -> "CapturedSchedule":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(json.load(fh))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CapturedSchedule(world={self.world_size}, "
            f"events={len(self.events)}, colls={self.n_collectives}, "
            f"eager={sorted(self.eager_phases)})"
        )


@dataclass(frozen=True)
class ReplayResult:
    """The outcome of :func:`replay`: the advanced clock plus metadata.

    Quacks enough like a :class:`~repro.dist.World` (it has ``.clock``)
    that :func:`repro.perf.overlap.derive_overlaps` accepts it directly —
    the bound path falls back to clock aggregates since a replay carries
    no traffic log.
    """

    schedule: CapturedSchedule
    clock: VirtualClock
    n_steps: int

    def times(self) -> list[float]:
        """Per-rank virtual completion times after ``n_steps`` replays."""
        return self.clock.times()

    @property
    def elapsed(self) -> float:
        """Virtual makespan of the whole replay (slowest rank)."""
        return self.clock.elapsed()

    @property
    def step_seconds(self) -> float:
        """Mean virtual seconds per replayed step."""
        return self.elapsed / self.n_steps if self.n_steps else 0.0

    def overlaps(self):
        """Derive overlap fractions from the replayed timeline."""
        from .overlap import derive_overlaps  # local: overlap imports clock too

        return derive_overlaps(self)


_UNSET = object()


def replay(
    schedule: CapturedSchedule,
    machine: MachineSpec | None = None,
    n_steps: int = 1,
    eager_phases: Collection[str] | None | object = _UNSET,
    cost: CostModel | None = None,
    compute_scale: float = 1.0,
) -> ReplayResult:
    """Advance a fresh :class:`VirtualClock` through *n_steps* of *schedule*.

    Pure event arithmetic: each rank's captured program is walked by a
    cursor; collectives wait in a rendezvous table until every group
    member's cursor reaches them (``start = max(bids)``, ``end = start +
    cost`` — the identical protocol the threaded runtime runs under its
    slot lock), and p2p events flow through a virtual mailbox carrying
    delivery times.  With the same ``machine``/``cost``/``eager_phases``
    the replayed timeline of step *k* is bitwise equal to a live threaded
    run of *k* steps, because both drive the very same clock methods in
    the same per-rank program order.

    ``eager_phases`` defaults to the set the schedule was captured under;
    pass an explicit value (or ``None`` for fully blocking) to re-simulate
    the same step under different issue-queue semantics.  ``compute_scale``
    multiplies every captured compute charge — the knob the autotuner's
    replay oracle turns to re-price a schedule for a different model size
    without re-capturing (``1.0`` leaves charges bitwise untouched).

    Raises :class:`ScheduleReplayError` if the schedule deadlocks (a recv
    with no matching send, or a collective some member never joins) or if
    members disagree on the op of a group's next collective.
    """
    if n_steps < 1:
        raise ValueError(f"n_steps must be >= 1, got {n_steps}")
    eph = schedule.eager_phases if eager_phases is _UNSET else eager_phases
    clock = VirtualClock(machine=machine, cost=cost, eager_phases=eph)
    clock.bind(schedule.world_size)
    scale = float(compute_scale)
    if scale < 0.0:
        raise ValueError(f"compute_scale must be >= 0, got {compute_scale}")
    programs = [schedule.events_for(r) for r in range(schedule.world_size)]
    # The p2p mailbox persists across steps (a recv may legitimately match
    # a send from an earlier replayed step, mirroring the live World mail).
    mail: dict[tuple[int, int, int], deque] = {}
    for _ in range(n_steps):
        _replay_step(clock, programs, scale, mail)
    for rank in range(schedule.world_size):
        clock.finalize_rank(rank)  # rank-exit drain, like run_spmd
    return ReplayResult(schedule=schedule, clock=clock, n_steps=n_steps)


def _replay_step(
    clock: VirtualClock,
    programs: Sequence[Sequence[ScheduleEvent]],
    scale: float,
    mail: dict[tuple[int, int, int], deque],
) -> None:
    n = len(programs)
    pos = [0] * n
    lengths = [len(p) for p in programs]
    # Rendezvous table: group ranks -> (op, {rank: (bid, issue, payload, phase)}).
    # One in-flight slot per group suffices: a rank blocks on its group's
    # collective, so no group can have two open generations at once.
    slots: dict[tuple[int, ...], tuple[str, dict[int, tuple[float, float, int, str]]]] = {}

    def advance(rank: int) -> bool:
        """Walk one rank's cursor until it blocks; True if it moved."""
        evs = programs[rank]
        moved = False
        while pos[rank] < lengths[rank]:
            ev = evs[pos[rank]]
            kind = ev.kind
            if kind == "compute":
                seconds = ev.seconds if scale == 1.0 else ev.seconds * scale
                clock.charge(rank, seconds, phase=ev.phase, label=ev.label)
            elif kind == "drain":
                clock.drain(rank)
            elif kind == "send":
                vstart = clock.now(rank)
                vend = vstart + clock.p2p_seconds(ev.payload_bytes, rank, ev.peer)
                clock.sync(rank, vend)
                mail.setdefault((rank, ev.peer, ev.tag), deque()).append(vend)
            elif kind == "recv":
                queue = mail.get((ev.peer, rank, ev.tag))
                if not queue:
                    return moved  # blocked: matching send not replayed yet
                sent_vend = queue.popleft()
                clock.sync(rank, max(clock.now(rank), sent_vend))
            elif kind == "coll":
                key = ev.group
                if rank not in key:
                    raise ScheduleReplayError(
                        f"rank {rank} event {pos[rank]} ({ev.op!r}): issued a "
                        f"collective on group {key} it is not a member of",
                        rank=rank, index=pos[rank], op=ev.op,
                    )
                op, arrivals = slots.setdefault(key, (ev.op, {}))
                if op != ev.op:
                    raise ScheduleReplayError(
                        f"rank {rank} event {pos[rank]} ({ev.op!r}): group "
                        f"{key} rendezvous mismatch — peers opened the slot "
                        f"with {op!r}",
                        rank=rank, index=pos[rank], op=ev.op,
                    )
                bid = clock.collective_arrival(rank, ev.op, ev.phase)
                issue = clock.now(rank)
                arrivals[rank] = (bid, issue, ev.payload_bytes, ev.phase)
                if len(arrivals) < len(key):
                    return True  # blocked awaiting the rest of the group
                # Last arriver: price once, complete for every member, and
                # push every member's cursor past its coll event.
                del slots[key]
                start = max(a[0] for a in arrivals.values())
                payload = max(a[2] for a in arrivals.values())
                end = start + clock.collective_seconds(ev.op, payload, key)
                for member in key:
                    _bid, m_issue, _payload, m_phase = arrivals[member]
                    clock.collective_complete(
                        member, ev.op, m_phase, m_issue, start, end,
                        payload_bytes=payload, ranks=key,
                    )
                    pos[member] += 1
                moved = True
                continue
            else:  # pragma: no cover - from_json rejects unknown kinds
                raise ScheduleReplayError(f"unknown event kind {kind!r}")
            pos[rank] += 1
            moved = True
        return moved

    while True:
        progressed = False
        for rank in range(n):
            if pos[rank] < lengths[rank]:
                progressed = advance(rank) or progressed
        if all(pos[r] >= lengths[r] for r in range(n)):
            return
        if not progressed:
            stuck = [
                (r, pos[r], programs[r][pos[r]])
                for r in range(n)
                if pos[r] < lengths[r]
            ]
            detail = "; ".join(
                f"rank {r} event {i}: {ev.kind}"
                + (f" {ev.op!r}" if ev.op else "")
                + (f" peer={ev.peer} tag={ev.tag}" if ev.kind in ("send", "recv") else "")
                + (f" group={ev.group}" if ev.kind == "coll" else "")
                for r, i, ev in stuck
            )
            first_rank, first_index, first_ev = stuck[0]
            raise ScheduleReplayError(
                f"schedule deadlocked; blocked cursors: {detail}",
                rank=first_rank, index=first_index, op=first_ev.op,
            )


# -- vectorized replay kernel ----------------------------------------------
#
# The scalar interpreter above re-walks the cursor/rendezvous control flow
# on every step of every replay.  But that control flow is *structural*: it
# depends only on the schedule (which rank issues what, in which order),
# never on the machine, the cost model or the compute scale.  So a schedule
# can be lowered ONCE into a linear program of arithmetic ops over a small
# slot arena — every data dependency (collective joins, send→recv edges,
# drain order) resolved at lowering time — and then *executed* for any
# number of (machine, compute_scale) variants as straight-line float math:
# one python-float pass per lane when pricing a few, or numpy lane-vectors
# (each op updating a [lanes]-wide array) when pricing hundreds at once.
# Both executors reproduce the scalar interpreter's float operations in the
# identical order, so the resulting timelines are bitwise equal to
# :func:`replay` — pinned by ``--smoke`` and ``tests/test_schedule_replay``.

_C_CHARGE, _C_BID_BLOCK, _C_BID_EAGER, _C_COLL, _C_DRAIN, _C_SEND, _C_RECV = (
    range(7)
)

#: Below this many lanes a per-lane python-float pass beats numpy's per-op
#: dispatch overhead; at or above it the lane-vector executor wins.
_VECTOR_MIN_LANES = 8


@dataclass(frozen=True)
class ReplayVariant:
    """One lane of a vectorized replay: the same two pricing knobs
    :func:`replay` exposes — a machine (or an explicit cost model) and a
    compute scale."""

    machine: MachineSpec | None = None
    cost: CostModel | None = None
    compute_scale: float = 1.0

    def resolve_cost(self) -> CostModel:
        if self.cost is None:
            from .machine import frontier

            return CostModel(self.machine if self.machine is not None else frontier())
        if self.machine is not None and self.cost.machine is not self.machine:
            raise ValueError("pass either machine or cost, not conflicting both")
        return self.cost


class ReplayProgram:
    """A :class:`CapturedSchedule` lowered to a linear op program.

    Lowering replicates :func:`_replay_step`'s cursor walk for ``n_steps``
    (plus the rank-exit drains) and emits one arithmetic op per clock
    effect: compute charges, arrival bids, collective completions (a
    segment max over the group's bid slots), drain settlements and p2p
    mailbox hops.  Slot arenas (bids / pending / mail) are free-listed, so
    their size is the schedule's peak concurrency, not its length; the
    archived-interval arrays are the only per-event state kept.

    :meth:`run` then prices the program for any list of
    :class:`ReplayVariant` lanes, returning one :class:`ReplayResult` per
    lane whose timeline is bitwise equal to ``replay(schedule, ...)`` with
    the same machine/cost/scale.  Raises :class:`ScheduleReplayError` at
    construction for the same malformed schedules the interpreter rejects.
    """

    def __init__(
        self,
        schedule: CapturedSchedule,
        n_steps: int = 1,
        eager_phases: Collection[str] | None | object = _UNSET,
    ) -> None:
        if n_steps < 1:
            raise ValueError(f"n_steps must be >= 1, got {n_steps}")
        eph = schedule.eager_phases if eager_phases is _UNSET else eager_phases
        self.schedule = schedule
        self.n_steps = int(n_steps)
        self.eager_phases = frozenset(eph) if eph else frozenset()
        n = schedule.world_size

        ops: list[tuple] = []
        cost_keys: list[tuple[str, int, tuple[int, ...]]] = []
        cost_ids: dict[tuple, int] = {}
        p2p_keys: list[tuple[int, int, int]] = []
        p2p_ids: dict[tuple, int] = {}
        free_bid: list[int] = []
        free_pend: list[int] = []
        free_mail: list[int] = []
        hwm = [0, 0, 0]  # arena high-water marks: bid / pend / mail

        def alloc(free: list[int], which: int) -> int:
            if free:
                return free.pop()
            s = hwm[which]
            hwm[which] = s + 1
            return s

        ctot_idx: dict[tuple[int, str], int] = {}  # (rank, phase) → compute slot
        mtot_idx: dict[tuple[int, str], int] = {}  # (rank, phase) → busy/exposed slot
        counts: dict[tuple[int, str], int] = {}

        def tot(table: dict, rank: int, phase: str) -> int:
            key = (rank, phase)
            idx = table.get(key)
            if idx is None:
                idx = table[key] = len(table)
            return idx

        arch_meta: list[tuple[int, str, str, int]] = []  # (rank, op, phase, kid)
        arch_by_rank: list[list[int]] = [[] for _ in range(n)]

        def archive(rank: int, op_name: str, phase: str, kid: int) -> int:
            aid = len(arch_meta)
            arch_meta.append((rank, op_name, phase, kid))
            arch_by_rank[rank].append(aid)
            counts[(rank, phase)] = counts.get((rank, phase), 0) + 1
            return aid

        # Structural FIFO stand-ins for the interpreter's runtime state: the
        # per-rank pending queue (heap order == issue order for the serial
        # channel — every new end is >= the rank's channel-free time, so
        # completions are monotone and the seq tiebreak preserves issue
        # order) and the cross-step p2p mailbox.
        pending: list[deque] = [deque() for _ in range(n)]
        mail: dict[tuple[int, int, int], deque] = {}
        programs = [schedule.events_for(r) for r in range(n)]

        def emit_drain(rank: int) -> None:
            q = pending[rank]
            while q:
                pslot, op_name, phase, kid = q.popleft()
                aid = archive(rank, op_name, phase, kid)
                ops.append((_C_DRAIN, rank, pslot, aid, tot(mtot_idx, rank, phase)))
                free_pend.append(pslot)

        eager_set = self.eager_phases

        def lower_step() -> None:
            pos = [0] * n
            lengths = [len(p) for p in programs]
            slots: dict[tuple[int, ...], tuple[str, dict[int, tuple]]] = {}

            def advance(rank: int) -> bool:
                evs = programs[rank]
                moved = False
                while pos[rank] < lengths[rank]:
                    ev = evs[pos[rank]]
                    kind = ev.kind
                    if kind == "compute":
                        ops.append(
                            (_C_CHARGE, rank, float(ev.seconds),
                             tot(ctot_idx, rank, ev.phase))
                        )
                    elif kind == "drain":
                        emit_drain(rank)
                    elif kind == "send":
                        mslot = alloc(free_mail, 2)
                        pkey = (ev.payload_bytes, rank, ev.peer)
                        pid = p2p_ids.get(pkey)
                        if pid is None:
                            pid = p2p_ids[pkey] = len(p2p_keys)
                            p2p_keys.append(pkey)
                        ops.append((_C_SEND, rank, mslot, pid))
                        mail.setdefault((rank, ev.peer, ev.tag), deque()).append(mslot)
                    elif kind == "recv":
                        queue = mail.get((ev.peer, rank, ev.tag))
                        if not queue:
                            return moved  # blocked: matching send not lowered yet
                        mslot = queue.popleft()
                        ops.append((_C_RECV, rank, mslot))
                        free_mail.append(mslot)
                    elif kind == "coll":
                        key = ev.group
                        if rank not in key:
                            raise ScheduleReplayError(
                                f"rank {rank} event {pos[rank]} ({ev.op!r}): issued a "
                                f"collective on group {key} it is not a member of",
                                rank=rank, index=pos[rank], op=ev.op,
                            )
                        op_name, arrivals = slots.setdefault(key, (ev.op, {}))
                        if op_name != ev.op:
                            raise ScheduleReplayError(
                                f"rank {rank} event {pos[rank]} ({ev.op!r}): group "
                                f"{key} rendezvous mismatch — peers opened the slot "
                                f"with {op_name!r}",
                                rank=rank, index=pos[rank], op=ev.op,
                            )
                        if ev.op != "barrier" and ev.phase in eager_set:
                            bslot = alloc(free_bid, 0)
                            pslot = alloc(free_pend, 1)
                            ops.append((_C_BID_EAGER, rank, bslot, pslot))
                        else:
                            emit_drain(rank)
                            bslot = alloc(free_bid, 0)
                            ops.append((_C_BID_BLOCK, rank, bslot))
                            pslot = -1
                        arrivals[rank] = (bslot, pslot, ev.payload_bytes, ev.phase)
                        if len(arrivals) < len(key):
                            return True  # blocked awaiting the rest of the group
                        del slots[key]
                        payload = max(a[2] for a in arrivals.values())
                        ckey = (ev.op, payload, key)
                        kid = cost_ids.get(ckey)
                        if kid is None:
                            kid = cost_ids[ckey] = len(cost_keys)
                            cost_keys.append(ckey)
                        members = []
                        for member in key:
                            m_b, m_p, _m_payload, m_phase = arrivals[member]
                            if m_p >= 0:
                                pending[member].append((m_p, ev.op, m_phase, kid))
                                members.append((member, m_b, m_p, -1, -1))
                            else:
                                aid = archive(member, ev.op, m_phase, kid)
                                members.append(
                                    (member, m_b, -1, aid,
                                     tot(mtot_idx, member, m_phase))
                                )
                            pos[member] += 1
                        ops.append((_C_COLL, kid, tuple(members)))
                        for m in members:
                            free_bid.append(m[1])
                        moved = True
                        continue
                    else:  # pragma: no cover - from_json rejects unknown kinds
                        raise ScheduleReplayError(f"unknown event kind {kind!r}")
                    pos[rank] += 1
                    moved = True
                return moved

            while True:
                progressed = False
                for rank in range(n):
                    if pos[rank] < lengths[rank]:
                        progressed = advance(rank) or progressed
                if all(pos[r] >= lengths[r] for r in range(n)):
                    return
                if not progressed:
                    stuck = [
                        (r, pos[r], programs[r][pos[r]])
                        for r in range(n)
                        if pos[r] < lengths[r]
                    ]
                    detail = "; ".join(
                        f"rank {r} event {i}: {ev.kind}"
                        + (f" {ev.op!r}" if ev.op else "")
                        + (f" peer={ev.peer} tag={ev.tag}" if ev.kind in ("send", "recv") else "")
                        + (f" group={ev.group}" if ev.kind == "coll" else "")
                        for r, i, ev in stuck
                    )
                    first_rank, first_index, first_ev = stuck[0]
                    raise ScheduleReplayError(
                        f"schedule deadlocked; blocked cursors: {detail}",
                        rank=first_rank, index=first_index, op=first_ev.op,
                    )

        for _ in range(self.n_steps):
            lower_step()
        for rank in range(n):
            emit_drain(rank)  # rank-exit drain, like run_spmd

        self._ops = tuple(ops)
        self._cost_keys = tuple(cost_keys)
        self._p2p_keys = tuple(p2p_keys)
        self._n_bid, self._n_pend, self._n_mail = hwm
        self._ctot_idx = ctot_idx
        self._mtot_idx = mtot_idx
        self._counts = counts
        self._arch_meta = tuple(arch_meta)
        self._arch_by_rank = tuple(tuple(a) for a in arch_by_rank)
        # Per-rank (phase, slot) lists in first-use order: aggregate
        # read-outs sum in the same order VirtualClock's per-rank dicts do.
        self._ctot_by_rank: list[list[tuple[str, int]]] = [[] for _ in range(n)]
        for (r, ph), i in ctot_idx.items():
            self._ctot_by_rank[r].append((ph, i))
        self._mtot_by_rank: list[list[tuple[str, int]]] = [[] for _ in range(n)]
        for (r, ph), i in mtot_idx.items():
            self._mtot_by_rank[r].append((ph, i))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ReplayProgram(world={self.schedule.world_size}, "
            f"steps={self.n_steps}, ops={len(self._ops)}, "
            f"arenas=(bid={self._n_bid}, pend={self._n_pend}, "
            f"mail={self._n_mail}))"
        )

    # -- executors ---------------------------------------------------------
    def run(self, variants: Sequence[ReplayVariant]) -> list[ReplayResult]:
        """Price the program once per lane; one ReplayResult per variant."""
        lanes = []
        for v in variants:
            if not isinstance(v, ReplayVariant):
                raise TypeError(f"expected ReplayVariant, got {type(v).__name__}")
            scale = float(v.compute_scale)
            if scale < 0.0:
                raise ValueError(
                    f"compute_scale must be >= 0, got {v.compute_scale}"
                )
            cost = v.resolve_cost()
            cvals = [
                cost.collective_seconds_for(op, payload, grp) if grp else 0.0
                for op, payload, grp in self._cost_keys
            ]
            pvals = [
                cost.p2p_seconds(nbytes, src, dst)
                for nbytes, src, dst in self._p2p_keys
            ]
            lanes.append((cost, scale, cvals, pvals))
        if len(lanes) >= _VECTOR_MIN_LANES:
            states = self._run_lanes(lanes)
        else:
            states = [
                self._run_single(scale, cvals, pvals)
                for _cost, scale, cvals, pvals in lanes
            ]
        return [
            ReplayResult(
                schedule=self.schedule,
                clock=_LaneClock(self, lanes[i][0], *states[i]),
                n_steps=self.n_steps,
            )
            for i in range(len(lanes))
        ]

    def _run_single(self, scale: float, cvals: list, pvals: list) -> tuple:
        """One lane as straight-line python-float arithmetic."""
        n = self.schedule.world_size
        t = [0.0] * n
        chan = [0.0] * n
        bids = [0.0] * self._n_bid
        pend_i = [0.0] * self._n_pend
        pend_s = [0.0] * self._n_pend
        pend_e = [0.0] * self._n_pend
        mailv = [0.0] * self._n_mail
        n_arch = len(self._arch_meta)
        a_issue = [0.0] * n_arch
        a_start = [0.0] * n_arch
        a_end = [0.0] * n_arch
        a_exp = [0.0] * n_arch
        ctot = [0.0] * len(self._ctot_idx)
        btot = [0.0] * len(self._mtot_idx)
        etot = [0.0] * len(self._mtot_idx)
        for op in self._ops:
            code = op[0]
            if code == _C_CHARGE:
                _, r, sec, k = op
                s = sec * scale
                t[r] += s
                ctot[k] += s
            elif code == _C_COLL:
                _, kid, members = op
                start = bids[members[0][1]]
                for m in members[1:]:
                    b = bids[m[1]]
                    if b > start:
                        start = b
                end = start + cvals[kid]
                busy = end - start
                for r, b, p, aid, k in members:
                    if chan[r] < end:
                        chan[r] = end
                    if p >= 0:
                        pend_s[p] = start
                        pend_e[p] = end
                    else:
                        exp = end - bids[b]
                        if exp < 0.0:
                            exp = 0.0
                        a_issue[aid] = bids[b]
                        a_start[aid] = start
                        a_end[aid] = end
                        a_exp[aid] = exp
                        btot[k] += busy
                        etot[k] += exp
                        if t[r] < end:
                            t[r] = end
            elif code == _C_BID_EAGER:
                _, r, b, p = op
                tv = t[r]
                cv = chan[r]
                bids[b] = tv if tv >= cv else cv
                pend_i[p] = tv
            elif code == _C_BID_BLOCK:
                _, r, b = op
                bids[b] = t[r]
            elif code == _C_DRAIN:
                _, r, p, aid, k = op
                e = pend_e[p]
                d = e - t[r]
                exp = d if d > 0.0 else 0.0
                if d > 0.0:
                    t[r] = e
                s0 = pend_s[p]
                a_issue[aid] = pend_i[p]
                a_start[aid] = s0
                a_end[aid] = e
                a_exp[aid] = exp
                btot[k] += e - s0
                etot[k] += exp
            elif code == _C_SEND:
                _, r, m, pid = op
                v = t[r] + pvals[pid]
                if v > t[r]:
                    t[r] = v
                mailv[m] = v
            else:  # _C_RECV
                _, r, m = op
                v = mailv[m]
                if v > t[r]:
                    t[r] = v
        return t, ctot, btot, etot, a_issue, a_start, a_end, a_exp

    def _run_lanes(self, lanes: list) -> list[tuple]:
        """All lanes at once: every op updates a [lanes]-wide numpy vector."""
        import numpy as np

        L = len(lanes)
        scale = np.array([ln[1] for ln in lanes], dtype=np.float64)
        n_keys = len(self._cost_keys)
        cvals = np.zeros((n_keys, L), dtype=np.float64)
        for i, ln in enumerate(lanes):
            cvals[:, i] = ln[2]
        n_p2p = len(self._p2p_keys)
        pvals = np.zeros((n_p2p, L), dtype=np.float64)
        for i, ln in enumerate(lanes):
            pvals[:, i] = ln[3]
        n = self.schedule.world_size
        t = np.zeros((n, L))
        chan = np.zeros((n, L))
        bids = np.zeros((self._n_bid, L))
        pend_i = np.zeros((self._n_pend, L))
        pend_s = np.zeros((self._n_pend, L))
        pend_e = np.zeros((self._n_pend, L))
        mailv = np.zeros((self._n_mail, L))
        n_arch = len(self._arch_meta)
        a_issue = np.zeros((n_arch, L))
        a_start = np.zeros((n_arch, L))
        a_end = np.zeros((n_arch, L))
        a_exp = np.zeros((n_arch, L))
        ctot = np.zeros((len(self._ctot_idx), L))
        btot = np.zeros((len(self._mtot_idx), L))
        etot = np.zeros((len(self._mtot_idx), L))
        maximum = np.maximum
        for op in self._ops:
            code = op[0]
            if code == _C_CHARGE:
                _, r, sec, k = op
                s = sec * scale
                t[r] += s
                ctot[k] += s
            elif code == _C_COLL:
                _, kid, members = op
                start = bids[members[0][1]].copy()
                for m in members[1:]:
                    maximum(start, bids[m[1]], out=start)
                end = start + cvals[kid]
                busy = end - start
                for r, b, p, aid, k in members:
                    maximum(chan[r], end, out=chan[r])
                    if p >= 0:
                        pend_s[p] = start
                        pend_e[p] = end
                    else:
                        d = end - bids[b]
                        exp = np.where(d > 0.0, d, 0.0)
                        a_issue[aid] = bids[b]
                        a_start[aid] = start
                        a_end[aid] = end
                        a_exp[aid] = exp
                        btot[k] += busy
                        etot[k] += exp
                        maximum(t[r], end, out=t[r])
            elif code == _C_BID_EAGER:
                _, r, b, p = op
                maximum(t[r], chan[r], out=bids[b])
                pend_i[p] = t[r]
            elif code == _C_BID_BLOCK:
                _, r, b = op
                bids[b] = t[r]
            elif code == _C_DRAIN:
                _, r, p, aid, k = op
                e = pend_e[p]
                d = e - t[r]
                exp = np.where(d > 0.0, d, 0.0)
                maximum(t[r], e, out=t[r])
                a_issue[aid] = pend_i[p]
                a_start[aid] = pend_s[p]
                a_end[aid] = e
                a_exp[aid] = exp
                btot[k] += e - pend_s[p]
                etot[k] += exp
            elif code == _C_SEND:
                _, r, m, pid = op
                v = t[r] + pvals[pid]
                maximum(t[r], v, out=t[r])
                mailv[m] = v
            else:  # _C_RECV
                _, r, m = op
                maximum(t[r], mailv[m], out=t[r])
        return [
            (t[:, i], ctot[:, i], btot[:, i], etot[:, i],
             a_issue[:, i], a_start[:, i], a_end[:, i], a_exp[:, i])
            for i in range(L)
        ]


class _LaneClock:
    """Read-only clock view over one lane of a :class:`ReplayProgram` run.

    Duck-types the :class:`VirtualClock` read-out surface
    :class:`ReplayResult` and :func:`repro.perf.overlap.derive_overlaps`
    consume — times/elapsed, per-(rank, phase) aggregate totals, structural
    comm counts, archived :class:`~repro.perf.clock.CommInterval` lists
    (materialized lazily; wire volume and link class re-priced through the
    lane's cost model exactly like the live clock) and ``comm_volumes``.
    Compute intervals are not materialized: the vectorized executor tracks
    aggregate compute per (rank, phase), not individual spans, so
    ``timeline()``/``compute_intervals()`` are deliberately absent.
    """

    capture = False
    capturing = False

    def __init__(
        self, program: ReplayProgram, cost: CostModel, times, ctot, btot, etot,
        a_issue, a_start, a_end, a_exp,
    ) -> None:
        self._program = program
        self.cost = cost
        self.machine = cost.machine
        self.eager_phases = program.eager_phases
        self._t = times
        self._ctot = ctot
        self._btot = btot
        self._etot = etot
        self._a_issue = a_issue
        self._a_start = a_start
        self._a_end = a_end
        self._a_exp = a_exp
        self._wire_memo: dict[int, tuple[int, bool]] = {}

    @property
    def world_size(self) -> int:
        return self._program.schedule.world_size

    def now(self, rank: int) -> float:
        return float(self._t[rank])

    def times(self) -> list[float]:
        return [float(x) for x in self._t]

    def elapsed(self) -> float:
        return max(self.times(), default=0.0)

    # -- aggregate totals (same summation order as VirtualClock._total) ----
    def _total(self, values, by_rank, idx_map, rank, phase) -> float:
        if phase is None:
            ranks = range(self.world_size) if rank is None else (rank,)
            return sum(
                sum(float(values[i]) for _ph, i in by_rank[r]) for r in ranks
            )
        if rank is None:
            return sum(
                float(values[idx_map[(r, phase)]])
                if (r, phase) in idx_map else 0.0
                for r in range(self.world_size)
            )
        i = idx_map.get((rank, phase))
        return float(values[i]) if i is not None else 0.0

    def compute_seconds(self, rank: int | None = None, phase: str | None = None) -> float:
        return self._total(
            self._ctot, self._program._ctot_by_rank, self._program._ctot_idx,
            rank, phase,
        )

    def comm_busy_seconds(self, rank: int | None = None, phase: str | None = None) -> float:
        return self._total(
            self._btot, self._program._mtot_by_rank, self._program._mtot_idx,
            rank, phase,
        )

    def exposed_seconds(self, rank: int | None = None, phase: str | None = None) -> float:
        return self._total(
            self._etot, self._program._mtot_by_rank, self._program._mtot_idx,
            rank, phase,
        )

    def comm_count(self, rank: int, phase: str | None = None) -> int:
        counts = self._program._counts
        if phase is None:
            return sum(c for (r, _ph), c in counts.items() if r == rank)
        return counts.get((rank, phase), 0)

    # -- archived intervals ------------------------------------------------
    def _wire_intra(self, kid: int) -> tuple[int, bool]:
        hit = self._wire_memo.get(kid)
        if hit is None:
            op, payload, grp = self._program._cost_keys[kid]
            if len(grp) > 1:
                hit = (
                    self.cost.wire_bytes(op, payload, len(grp)),
                    self.cost.intra_node(grp),
                )
            else:
                hit = (0, True)
            self._wire_memo[kid] = hit
        return hit

    def _interval(self, aid: int):
        from .clock import CommInterval

        rank, op, phase, kid = self._program._arch_meta[aid]
        _cop, payload, grp = self._program._cost_keys[kid]
        wire, intra = self._wire_intra(kid)
        return CommInterval(
            rank=rank, op=op, phase=phase,
            issue=float(self._a_issue[aid]), start=float(self._a_start[aid]),
            end=float(self._a_end[aid]), exposed=float(self._a_exp[aid]),
            payload_bytes=payload, wire_bytes=wire, intra=intra, group=grp,
        )

    def comm_intervals(self, rank: int | None = None, phase: str | None = None):
        """Settled collectives in archive order, like the live clock's."""
        meta = self._program._arch_meta
        ranks = range(self.world_size) if rank is None else (rank,)
        out = []
        for r in ranks:
            for aid in self._program._arch_by_rank[r]:
                if phase is None or meta[aid][2] == phase:
                    out.append(self._interval(aid))
        return out

    def comm_volumes(self, rank: int | None = None):
        """Settled comm volumes by ``(op, phase, intra)``, per-rank totals
        merged exactly like :meth:`VirtualClock.comm_volumes`."""
        meta = self._program._arch_meta
        ranks = range(self.world_size) if rank is None else (rank,)
        out: dict[tuple[str, str, bool], tuple[int, int, float]] = {}
        for r in ranks:
            vol: dict[tuple[str, str, bool], tuple[int, int, float]] = {}
            for aid in self._program._arch_by_rank[r]:
                _r, op, phase, kid = meta[aid]
                wire, intra = self._wire_intra(kid)
                key = (op, phase, intra)
                c, w, s = vol.get(key, (0, 0, 0.0))
                vol[key] = (
                    c + 1, w + wire,
                    s + (float(self._a_end[aid]) - float(self._a_start[aid])),
                )
            for key, (c, w, s) in vol.items():
                oc, ow, os_ = out.get(key, (0, 0, 0.0))
                out[key] = (oc + c, ow + w, os_ + s)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"_LaneClock(machine={self.machine.name!r}, "
            f"world={self.world_size}, elapsed={self.elapsed():.3e}s)"
        )


def replay_many(
    schedule: CapturedSchedule,
    variants: Sequence[ReplayVariant],
    n_steps: int = 1,
    eager_phases: Collection[str] | None | object = _UNSET,
) -> list[ReplayResult]:
    """Lower once, price many: the vectorized counterpart of :func:`replay`.

    ``replay_many(sched, [ReplayVariant(machine=m, compute_scale=s)])[0]``
    is bitwise equal to ``replay(sched, m, compute_scale=s)`` — same times,
    same aggregate totals, same archived intervals — at a fraction of the
    interpreter's cost, and an N-variant call amortizes one lowering over
    every lane (the autotuner's :func:`repro.perf.autotune.sweep_replay`
    prices thousand-candidate sweeps this way).
    """
    return ReplayProgram(schedule, n_steps=n_steps, eager_phases=eager_phases).run(
        variants
    )


class StepCostTable:
    """World-size-indexed step costs backed by captured-schedule replay.

    The elastic fleet simulator needs "what does one training step cost at
    world size w?" for every size the fleet passes through.  This table
    answers from **one captured schedule per world size**: :meth:`add`
    registers a :class:`CapturedSchedule` (from
    ``measure_plan(..., capture=True)``), and :meth:`seconds_for` replays
    it — memoized — to a per-step virtual cost.  No threaded world ever
    spins up at query time, so pricing a multi-week trace is pure event
    arithmetic.

    World sizes without a capture are estimated from the nearest captured
    size ``w`` as ``seconds(w) * w / world`` (fixed total work, ideal
    scaling anchored at the closest real capture).  Fleets sweep many
    sizes; capturing two or three anchors is usually enough for ranking
    policies, and :meth:`is_exact` tells callers which answers are
    replay-priced versus extrapolated.
    """

    def __init__(
        self,
        machine: MachineSpec | None = None,
        n_steps: int = 4,
        compute_scale: float = 1.0,
    ) -> None:
        if n_steps < 1:
            raise ValueError(f"n_steps must be >= 1, got {n_steps}")
        self.machine = machine
        self.n_steps = int(n_steps)
        self.compute_scale = float(compute_scale)
        self._schedules: dict[int, CapturedSchedule] = {}
        self._cache: dict[int, float] = {}

    def add(self, schedule: CapturedSchedule, world_size: int | None = None) -> None:
        """Register *schedule* as the anchor for its world size."""
        world = int(world_size) if world_size is not None else schedule.world_size
        if world < 1:
            raise ValueError(f"world size must be >= 1, got {world}")
        self._schedules[world] = schedule
        self._cache.pop(world, None)

    @property
    def worlds(self) -> list[int]:
        """Captured (exactly priced) world sizes, ascending."""
        return sorted(self._schedules)

    def is_exact(self, world_size: int) -> bool:
        return int(world_size) in self._schedules

    def seconds_for(self, world_size: int) -> float:
        """Per-step seconds at *world_size* (replayed once, then cached)."""
        world = int(world_size)
        if world < 1:
            raise ValueError(f"world size must be >= 1, got {world}")
        hit = self._cache.get(world)
        if hit is not None:
            return hit
        if not self._schedules:
            raise ValueError("StepCostTable has no captured schedules")
        if world in self._schedules:
            result = replay(
                self._schedules[world],
                self.machine,
                n_steps=self.n_steps,
                compute_scale=self.compute_scale,
            )
            seconds = result.step_seconds
        else:
            anchor = min(
                self._schedules, key=lambda w: (abs(w - world), w)
            )
            seconds = self.seconds_for(anchor) * anchor / world
        self._cache[world] = seconds
        return seconds

    __call__ = seconds_for

    def __len__(self) -> int:
        return len(self._schedules)


# -- CLI parity check (wired into the perf-smoke CI job) -------------------
def _parity_case(plan, world_size, eager, n_steps, machine):  # pragma: no cover
    from .calibrate import measure_plan
    from .modelcfg import ModelConfig
    from .plan import Workload

    model = ModelConfig(
        "replay-parity", dim=64, depth=2, heads=4, patch=4, image_hw=(16, 16)
    )
    workload = Workload(channels=16, batch=2)
    captured = measure_plan(
        model, workload, plan, machine, eager=eager, capture=True
    )
    live = measure_plan(
        model, workload, plan, machine, eager=eager, n_steps=n_steps
    )
    replayed = replay(captured.schedule, machine, n_steps=n_steps)
    return list(live.rank_times), replayed.times()


def _capture_case(plan, world_size, eager, machine):  # pragma: no cover
    from .calibrate import measure_plan
    from .modelcfg import ModelConfig
    from .plan import Workload

    model = ModelConfig(
        "replay-parity", dim=64, depth=2, heads=4, patch=4, image_hw=(16, 16)
    )
    workload = Workload(channels=16, batch=2)
    return measure_plan(
        model, workload, plan, machine, eager=eager, capture=True
    ).schedule


def main(argv: Sequence[str] | None = None) -> int:  # pragma: no cover
    """Bitwise parity check: live threaded k-step run vs captured replay."""
    import argparse

    from .machine import frontier
    from .plan import ParallelPlan

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="small fast subset")
    parser.add_argument("--steps", type=int, default=None, help="replay steps")
    opts = parser.parse_args(argv)
    machine = frontier()
    cases = [
        (ParallelPlan("tp", tp=2, fsdp=1, dp=2), 4),
        (ParallelPlan("tp", tp=1, sp=2, fsdp=1, dp=2), 4),
        (ParallelPlan("dchag", tp=2, fsdp=2, dp=1, dchag_kind="linear"), 4),
    ]
    if not opts.smoke:
        cases.append(
            (ParallelPlan("dchag", tp=2, fsdp=2, dp=2, dchag_kind="linear"), 8)
        )
    n_steps = opts.steps if opts.steps else (3 if opts.smoke else 10)
    failures = 0
    for plan, world_size in cases:
        for eager in (False, True):
            live, replayed = _parity_case(plan, world_size, eager, n_steps, machine)
            ok = live == replayed
            failures += 0 if ok else 1
            mode = "eager" if eager else "blocking"
            status = "OK " if ok else "FAIL"
            print(
                f"[{status}] {plan.label:>24s} world={world_size} {mode:>8s} "
                f"steps={n_steps} makespan={max(replayed):.6e}s"
            )
            if not ok:
                print(f"    live:   {live}\n    replay: {replayed}")
    # Vectorized kernel gate: the lowered program (single-lane float path
    # AND the numpy lane-vector path) must reproduce the scalar
    # interpreter's timelines, archived intervals and derived overlaps
    # bitwise, across compute scales.
    scales = [1.0, 0.5, 2.0, 10.0, 1.0, 0.25, 4.0, 1.0]
    for plan, world_size in cases:
        for eager in (False, True):
            sched = _capture_case(plan, world_size, eager, machine)
            scalar = replay(sched, machine, n_steps=n_steps)
            single = replay_many(
                sched, [ReplayVariant(machine=machine)], n_steps=n_steps
            )[0]
            lanes = replay_many(
                sched,
                [ReplayVariant(machine=machine, compute_scale=s) for s in scales],
                n_steps=n_steps,
            )
            ok = (
                scalar.times() == single.times()
                and scalar.clock.comm_intervals() == single.clock.comm_intervals()
                and scalar.overlaps() == single.overlaps()
            )
            for s, lane in zip(scales, lanes):
                ref = replay(sched, machine, n_steps=n_steps, compute_scale=s)
                ok = (
                    ok
                    and ref.times() == lane.times()
                    and ref.clock.comm_intervals() == lane.clock.comm_intervals()
                    and ref.overlaps() == lane.overlaps()
                )
            failures += 0 if ok else 1
            mode = "eager" if eager else "blocking"
            status = "OK " if ok else "FAIL"
            print(
                f"[{status}] {plan.label:>24s} world={world_size} {mode:>8s} "
                f"vectorized x{len(scales)} lanes + single"
            )
    if failures:
        print(f"{failures} parity case(s) FAILED")
        return 1
    print("all replay parity cases bitwise-identical to live runs")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
