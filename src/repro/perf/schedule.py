"""Captured-schedule replay: record one instrumented step, replay N cheaply.

A steady-state training step repeats an identical schedule of compute
charges and collectives, yet every simulated step today re-runs Python
autograd, numpy payloads and thread rendezvous.  This module lowers one
live :func:`repro.dist.run_spmd` step into a flat, serializable event list
(the same shape as tinygrad's ``LazyOp`` → ``ScheduleItem`` lowering) and
re-executes it as **pure event arithmetic**: no threads, no numpy, no
rendezvous — just the :class:`~repro.perf.clock.VirtualClock` methods the
live runtime would have called, in the same per-rank program order.  That
makes the replayed timeline *bitwise identical* to the live threaded run
(virtual times are pure functions of program order; see the determinism
note in :mod:`repro.perf.clock`).

Record → serialize → replay::

    clock = VirtualClock(machine, eager_phases=OVERLAP_PHASES, capture=True)
    run_spmd(one_step, world_size, clock=clock)      # live, instrumented
    sched = clock.schedule()                         # flat event list
    sched.save("step.json")                          # optional round-trip
    result = replay(sched, machine, n_steps=1000)    # pure arithmetic
    result.clock.times()                             # == live 1000-step run

Phase conventions (mirrors :mod:`repro.perf.overlap`):

    =============  =======================  =================================
    phase          issued by                replay/overlap meaning
    =============  =======================  =================================
    ``forward``    forward compute charges  compute that hides fsdp_gather
    ``backward``   backward compute charges compute that hides dp_sync
    ``dp_sync``    DP gradient AllReduce    eager under ``OVERLAP_PHASES``
    ``fsdp_gather`` FSDP param AllGather    eager under ``OVERLAP_PHASES``
    ``tp``         TP activation AllReduce  blocking (critical path)
    ``gather``     head-gather AllGather    blocking (critical path)
    =============  =======================  =================================

Event kinds: ``compute`` (charge seconds onto the rank timeline), ``coll``
(join a group collective — the replay rendezvous recomputes ``start =
max(bids)`` and ``end = start + cost`` exactly like the live slot),
``drain`` (settle the rank's eager issue queue), ``send``/``recv``
(store-and-forward p2p through a virtual mailbox).  Dependencies are
implicit in the per-rank program order plus the cross-rank joins (``coll``
groups and ``send``→``recv`` edges), so the flat list *is* the dependency
graph.

Run ``python -m repro.perf.schedule [--smoke]`` for a self-contained
bitwise parity check (used by the ``perf-smoke`` CI job).
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass
from typing import Any, Collection, Sequence

from .clock import VirtualClock
from .cost import CostModel
from .machine import MachineSpec

__all__ = [
    "ScheduleEvent",
    "CapturedSchedule",
    "ReplayResult",
    "ScheduleReplayError",
    "replay",
]

_SCHEMA_VERSION = 1
_KINDS = frozenset({"compute", "coll", "drain", "send", "recv"})


class ScheduleReplayError(RuntimeError):
    """A captured schedule could not be replayed (mismatched groups,
    an op disagreement inside a group slot, or a p2p deadlock).

    Carries the failure's coordinates so drivers can localize a mismatched
    capture without parsing the message: ``rank`` (the rank whose program
    failed, or the first blocked rank for a deadlock), ``index`` (its
    0-based event position), and ``op`` (the offending event's op, ``""``
    for opless kinds).  All three also appear in the rendered text.
    """

    def __init__(
        self,
        message: str,
        rank: int | None = None,
        index: int | None = None,
        op: str = "",
    ) -> None:
        super().__init__(message)
        self.rank = rank
        self.index = index
        self.op = op


@dataclass(frozen=True)
class ScheduleEvent:
    """One captured runtime event on one rank's program order.

    Field usage by kind — unused fields hold their defaults:

    ``compute``: ``phase``, ``label``, ``seconds``
    ``coll``:    ``op``, ``phase``, ``payload_bytes`` (this rank's bid),
                 ``group`` (world-rank tuple)
    ``drain``:   (no payload)
    ``send``:    ``payload_bytes``, ``peer`` (dst), ``tag``
    ``recv``:    ``peer`` (src), ``tag``
    """

    kind: str
    rank: int
    op: str = ""
    phase: str = ""
    label: str = ""
    seconds: float = 0.0
    payload_bytes: int = 0
    group: tuple[int, ...] = ()
    peer: int = -1
    tag: int = 0

    def to_json(self) -> dict:
        out: dict[str, Any] = {"kind": self.kind, "rank": self.rank}
        if self.op:
            out["op"] = self.op
        if self.phase:
            out["phase"] = self.phase
        if self.label:
            out["label"] = self.label
        if self.seconds:
            out["seconds"] = self.seconds
        if self.payload_bytes:
            out["payload_bytes"] = self.payload_bytes
        if self.group:
            out["group"] = list(self.group)
        if self.peer >= 0:
            out["peer"] = self.peer
        if self.tag:
            out["tag"] = self.tag
        return out

    @classmethod
    def from_json(cls, obj: dict) -> "ScheduleEvent":
        kind = obj["kind"]
        if kind not in _KINDS:
            raise ValueError(f"unknown schedule event kind {kind!r}")
        return cls(
            kind=kind,
            rank=int(obj["rank"]),
            op=str(obj.get("op", "")),
            phase=str(obj.get("phase", "")),
            label=str(obj.get("label", "")),
            seconds=float(obj.get("seconds", 0.0)),
            payload_bytes=int(obj.get("payload_bytes", 0)),
            group=tuple(int(r) for r in obj.get("group", ())),
            peer=int(obj.get("peer", -1)),
            tag=int(obj.get("tag", 0)),
        )


def _event_from_tuple(rank: int, raw: tuple) -> ScheduleEvent:
    kind = raw[0]
    if kind == "compute":
        _, phase, label, seconds = raw
        return ScheduleEvent(
            kind="compute", rank=rank, phase=phase, label=label, seconds=seconds
        )
    if kind == "coll":
        _, op, phase, payload, ranks = raw
        return ScheduleEvent(
            kind="coll", rank=rank, op=op, phase=phase,
            payload_bytes=payload, group=ranks,
        )
    if kind == "drain":
        return ScheduleEvent(kind="drain", rank=rank)
    if kind == "send":
        _, nbytes, dst, tag = raw
        return ScheduleEvent(
            kind="send", rank=rank, payload_bytes=nbytes, peer=dst, tag=tag
        )
    if kind == "recv":
        _, src, tag = raw
        return ScheduleEvent(kind="recv", rank=rank, peer=src, tag=tag)
    raise ValueError(f"unknown captured event tuple {raw!r}")


@dataclass(frozen=True)
class CapturedSchedule:
    """A flat, serializable event list lowered from one instrumented step.

    Events are stored in per-rank program order, concatenated in rank
    order; :meth:`events_for` recovers one rank's program.  The schedule
    carries the eager-phase set it was captured under so a replay defaults
    to the same issue-queue semantics.
    """

    world_size: int
    eager_phases: frozenset[str] = frozenset()
    events: tuple[ScheduleEvent, ...] = ()

    def __post_init__(self) -> None:
        if self.world_size < 1:
            raise ValueError(f"world_size must be >= 1, got {self.world_size}")
        for ev in self.events:
            if not 0 <= ev.rank < self.world_size:
                raise ValueError(
                    f"event rank {ev.rank} out of range for world of size "
                    f"{self.world_size}"
                )

    @classmethod
    def from_clock(cls, clock: VirtualClock) -> "CapturedSchedule":
        """Lower a capture-enabled clock's recorded events."""
        if not getattr(clock, "capture", False):
            raise ValueError("clock was not created with capture=True")
        events: list[ScheduleEvent] = []
        n = clock.world_size
        for rank in range(n):
            for raw in clock.captured_events(rank):
                events.append(_event_from_tuple(rank, raw))
        return cls(
            world_size=n,
            eager_phases=frozenset(clock.eager_phases),
            events=tuple(events),
        )

    def events_for(self, rank: int) -> tuple[ScheduleEvent, ...]:
        """One rank's captured program, in issue order."""
        return tuple(ev for ev in self.events if ev.rank == rank)

    @property
    def n_collectives(self) -> int:
        return sum(1 for ev in self.events if ev.kind == "coll")

    @property
    def n_compute(self) -> int:
        return sum(1 for ev in self.events if ev.kind == "compute")

    # -- serialization -----------------------------------------------------
    def to_json(self) -> dict:
        return {
            "version": _SCHEMA_VERSION,
            "world_size": self.world_size,
            "eager_phases": sorted(self.eager_phases),
            "events": [ev.to_json() for ev in self.events],
        }

    @classmethod
    def from_json(cls, obj: dict) -> "CapturedSchedule":
        version = int(obj.get("version", _SCHEMA_VERSION))
        if version != _SCHEMA_VERSION:
            raise ValueError(f"unsupported schedule schema version {version}")
        return cls(
            world_size=int(obj["world_size"]),
            eager_phases=frozenset(obj.get("eager_phases", ())),
            events=tuple(ScheduleEvent.from_json(e) for e in obj.get("events", ())),
        )

    def save(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_json(), fh)

    @classmethod
    def load(cls, path) -> "CapturedSchedule":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(json.load(fh))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CapturedSchedule(world={self.world_size}, "
            f"events={len(self.events)}, colls={self.n_collectives}, "
            f"eager={sorted(self.eager_phases)})"
        )


@dataclass(frozen=True)
class ReplayResult:
    """The outcome of :func:`replay`: the advanced clock plus metadata.

    Quacks enough like a :class:`~repro.dist.World` (it has ``.clock``)
    that :func:`repro.perf.overlap.derive_overlaps` accepts it directly —
    the bound path falls back to clock aggregates since a replay carries
    no traffic log.
    """

    schedule: CapturedSchedule
    clock: VirtualClock
    n_steps: int

    def times(self) -> list[float]:
        """Per-rank virtual completion times after ``n_steps`` replays."""
        return self.clock.times()

    @property
    def elapsed(self) -> float:
        """Virtual makespan of the whole replay (slowest rank)."""
        return self.clock.elapsed()

    @property
    def step_seconds(self) -> float:
        """Mean virtual seconds per replayed step."""
        return self.elapsed / self.n_steps if self.n_steps else 0.0

    def overlaps(self):
        """Derive overlap fractions from the replayed timeline."""
        from .overlap import derive_overlaps  # local: overlap imports clock too

        return derive_overlaps(self)


_UNSET = object()


def replay(
    schedule: CapturedSchedule,
    machine: MachineSpec | None = None,
    n_steps: int = 1,
    eager_phases: Collection[str] | None | object = _UNSET,
    cost: CostModel | None = None,
    compute_scale: float = 1.0,
) -> ReplayResult:
    """Advance a fresh :class:`VirtualClock` through *n_steps* of *schedule*.

    Pure event arithmetic: each rank's captured program is walked by a
    cursor; collectives wait in a rendezvous table until every group
    member's cursor reaches them (``start = max(bids)``, ``end = start +
    cost`` — the identical protocol the threaded runtime runs under its
    slot lock), and p2p events flow through a virtual mailbox carrying
    delivery times.  With the same ``machine``/``cost``/``eager_phases``
    the replayed timeline of step *k* is bitwise equal to a live threaded
    run of *k* steps, because both drive the very same clock methods in
    the same per-rank program order.

    ``eager_phases`` defaults to the set the schedule was captured under;
    pass an explicit value (or ``None`` for fully blocking) to re-simulate
    the same step under different issue-queue semantics.  ``compute_scale``
    multiplies every captured compute charge — the knob the autotuner's
    replay oracle turns to re-price a schedule for a different model size
    without re-capturing (``1.0`` leaves charges bitwise untouched).

    Raises :class:`ScheduleReplayError` if the schedule deadlocks (a recv
    with no matching send, or a collective some member never joins) or if
    members disagree on the op of a group's next collective.
    """
    if n_steps < 1:
        raise ValueError(f"n_steps must be >= 1, got {n_steps}")
    eph = schedule.eager_phases if eager_phases is _UNSET else eager_phases
    clock = VirtualClock(machine=machine, cost=cost, eager_phases=eph)
    clock.bind(schedule.world_size)
    scale = float(compute_scale)
    if scale < 0.0:
        raise ValueError(f"compute_scale must be >= 0, got {compute_scale}")
    programs = [schedule.events_for(r) for r in range(schedule.world_size)]
    # The p2p mailbox persists across steps (a recv may legitimately match
    # a send from an earlier replayed step, mirroring the live World mail).
    mail: dict[tuple[int, int, int], deque] = {}
    for _ in range(n_steps):
        _replay_step(clock, programs, scale, mail)
    for rank in range(schedule.world_size):
        clock.finalize_rank(rank)  # rank-exit drain, like run_spmd
    return ReplayResult(schedule=schedule, clock=clock, n_steps=n_steps)


def _replay_step(
    clock: VirtualClock,
    programs: Sequence[Sequence[ScheduleEvent]],
    scale: float,
    mail: dict[tuple[int, int, int], deque],
) -> None:
    n = len(programs)
    pos = [0] * n
    lengths = [len(p) for p in programs]
    # Rendezvous table: group ranks -> (op, {rank: (bid, issue, payload, phase)}).
    # One in-flight slot per group suffices: a rank blocks on its group's
    # collective, so no group can have two open generations at once.
    slots: dict[tuple[int, ...], tuple[str, dict[int, tuple[float, float, int, str]]]] = {}

    def advance(rank: int) -> bool:
        """Walk one rank's cursor until it blocks; True if it moved."""
        evs = programs[rank]
        moved = False
        while pos[rank] < lengths[rank]:
            ev = evs[pos[rank]]
            kind = ev.kind
            if kind == "compute":
                seconds = ev.seconds if scale == 1.0 else ev.seconds * scale
                clock.charge(rank, seconds, phase=ev.phase, label=ev.label)
            elif kind == "drain":
                clock.drain(rank)
            elif kind == "send":
                vstart = clock.now(rank)
                vend = vstart + clock.p2p_seconds(ev.payload_bytes, rank, ev.peer)
                clock.sync(rank, vend)
                mail.setdefault((rank, ev.peer, ev.tag), deque()).append(vend)
            elif kind == "recv":
                queue = mail.get((ev.peer, rank, ev.tag))
                if not queue:
                    return moved  # blocked: matching send not replayed yet
                sent_vend = queue.popleft()
                clock.sync(rank, max(clock.now(rank), sent_vend))
            elif kind == "coll":
                key = ev.group
                if rank not in key:
                    raise ScheduleReplayError(
                        f"rank {rank} event {pos[rank]} ({ev.op!r}): issued a "
                        f"collective on group {key} it is not a member of",
                        rank=rank, index=pos[rank], op=ev.op,
                    )
                op, arrivals = slots.setdefault(key, (ev.op, {}))
                if op != ev.op:
                    raise ScheduleReplayError(
                        f"rank {rank} event {pos[rank]} ({ev.op!r}): group "
                        f"{key} rendezvous mismatch — peers opened the slot "
                        f"with {op!r}",
                        rank=rank, index=pos[rank], op=ev.op,
                    )
                bid = clock.collective_arrival(rank, ev.op, ev.phase)
                issue = clock.now(rank)
                arrivals[rank] = (bid, issue, ev.payload_bytes, ev.phase)
                if len(arrivals) < len(key):
                    return True  # blocked awaiting the rest of the group
                # Last arriver: price once, complete for every member, and
                # push every member's cursor past its coll event.
                del slots[key]
                start = max(a[0] for a in arrivals.values())
                payload = max(a[2] for a in arrivals.values())
                end = start + clock.collective_seconds(ev.op, payload, key)
                for member in key:
                    _bid, m_issue, _payload, m_phase = arrivals[member]
                    clock.collective_complete(
                        member, ev.op, m_phase, m_issue, start, end,
                        payload_bytes=payload, ranks=key,
                    )
                    pos[member] += 1
                moved = True
                continue
            else:  # pragma: no cover - from_json rejects unknown kinds
                raise ScheduleReplayError(f"unknown event kind {kind!r}")
            pos[rank] += 1
            moved = True
        return moved

    while True:
        progressed = False
        for rank in range(n):
            if pos[rank] < lengths[rank]:
                progressed = advance(rank) or progressed
        if all(pos[r] >= lengths[r] for r in range(n)):
            return
        if not progressed:
            stuck = [
                (r, pos[r], programs[r][pos[r]])
                for r in range(n)
                if pos[r] < lengths[r]
            ]
            detail = "; ".join(
                f"rank {r} event {i}: {ev.kind}"
                + (f" {ev.op!r}" if ev.op else "")
                + (f" peer={ev.peer} tag={ev.tag}" if ev.kind in ("send", "recv") else "")
                + (f" group={ev.group}" if ev.kind == "coll" else "")
                for r, i, ev in stuck
            )
            first_rank, first_index, first_ev = stuck[0]
            raise ScheduleReplayError(
                f"schedule deadlocked; blocked cursors: {detail}",
                rank=first_rank, index=first_index, op=first_ev.op,
            )


# -- CLI parity check (wired into the perf-smoke CI job) -------------------
def _parity_case(plan, world_size, eager, n_steps, machine):  # pragma: no cover
    from .calibrate import measure_plan
    from .modelcfg import ModelConfig
    from .plan import Workload

    model = ModelConfig(
        "replay-parity", dim=64, depth=2, heads=4, patch=4, image_hw=(16, 16)
    )
    workload = Workload(channels=16, batch=2)
    captured = measure_plan(
        model, workload, plan, machine, eager=eager, capture=True
    )
    live = measure_plan(
        model, workload, plan, machine, eager=eager, n_steps=n_steps
    )
    replayed = replay(captured.schedule, machine, n_steps=n_steps)
    return list(live.rank_times), replayed.times()


def main(argv: Sequence[str] | None = None) -> int:  # pragma: no cover
    """Bitwise parity check: live threaded k-step run vs captured replay."""
    import argparse

    from .machine import frontier
    from .plan import ParallelPlan

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="small fast subset")
    parser.add_argument("--steps", type=int, default=None, help="replay steps")
    opts = parser.parse_args(argv)
    machine = frontier()
    cases = [
        (ParallelPlan("tp", tp=2, fsdp=1, dp=2), 4),
        (ParallelPlan("dchag", tp=2, fsdp=2, dp=1, dchag_kind="linear"), 4),
    ]
    if not opts.smoke:
        cases.append(
            (ParallelPlan("dchag", tp=2, fsdp=2, dp=2, dchag_kind="linear"), 8)
        )
    n_steps = opts.steps if opts.steps else (3 if opts.smoke else 10)
    failures = 0
    for plan, world_size in cases:
        for eager in (False, True):
            live, replayed = _parity_case(plan, world_size, eager, n_steps, machine)
            ok = live == replayed
            failures += 0 if ok else 1
            mode = "eager" if eager else "blocking"
            status = "OK " if ok else "FAIL"
            print(
                f"[{status}] {plan.label:>24s} world={world_size} {mode:>8s} "
                f"steps={n_steps} makespan={max(replayed):.6e}s"
            )
            if not ok:
                print(f"    live:   {live}\n    replay: {replayed}")
    if failures:
        print(f"{failures} parity case(s) FAILED")
        return 1
    print("all replay parity cases bitwise-identical to live runs")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
