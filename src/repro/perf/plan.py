"""Parallel execution plans and numeric precision for the analytic models."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ParallelPlan", "Precision", "Workload"]


@dataclass(frozen=True)
class ParallelPlan:
    """How a model replica is laid out across GPUs.

    ``strategy`` selects the channel-stage treatment:

    * ``"tp"``       — baseline: TP everywhere, tokenization replicated (§4.3)
    * ``"dist_tok"`` — distributed tokenization + AllGather (§3.1 / §4.4)
    * ``"dchag"``    — the D-CHAG method (§3.3)
    * ``"serial"``   — single GPU (tp must be 1)

    ``tp`` ranks form one model replica together with ``sp`` (Ulysses-style
    sequence parallelism over the token axis, §3.5) and ``fsdp``; ``dp``
    multiplies replicas.  GPUs per replica = tp · sp · fsdp; total =
    tp·sp·fsdp·dp.
    """

    strategy: str = "tp"
    tp: int = 1
    fsdp: int = 1
    dp: int = 1
    dchag_kind: str = "linear"       # 'linear' (-L) or 'cross' (-C)
    dchag_fanout: int = 0            # TreeN
    tp_shard_final: bool = True
    sp: int = 1                      # sequence-parallel degree (Ulysses)

    def __post_init__(self) -> None:
        if self.strategy not in ("serial", "tp", "dist_tok", "dchag"):
            raise ValueError(f"unknown strategy {self.strategy!r}")
        if self.strategy == "serial" and self.tp != 1:
            raise ValueError("serial strategy requires tp=1")
        if self.strategy == "serial" and self.sp != 1:
            raise ValueError("serial strategy requires sp=1")
        if min(self.tp, self.sp, self.fsdp, self.dp) < 1:
            raise ValueError("tp, sp, fsdp, dp must be >= 1")
        if self.dchag_kind not in ("linear", "cross"):
            raise ValueError("dchag_kind must be 'linear' or 'cross'")

    @property
    def gpus_per_replica(self) -> int:
        return self.tp * self.sp * self.fsdp

    @property
    def total_gpus(self) -> int:
        return self.tp * self.sp * self.fsdp * self.dp

    @property
    def label(self) -> str:
        parts = []
        if self.strategy == "dchag":
            suffix = "L" if self.dchag_kind == "linear" else "C"
            parts.append(f"D-CHAG-{suffix}-Tree{self.dchag_fanout}x{self.tp}")
        elif self.strategy == "dist_tok":
            parts.append(f"DistTok-TP{self.tp}")
        elif self.strategy == "tp":
            parts.append(f"TP{self.tp}")
        else:
            parts.append("1GPU")
        if self.sp > 1:
            parts.append(f"SP{self.sp}")
        if self.fsdp > 1:
            parts.append(f"FSDP{self.fsdp}")
        if self.dp > 1:
            parts.append(f"DP{self.dp}")
        return "+".join(parts)


@dataclass(frozen=True)
class Precision:
    """Bytes per element, mixed-precision training defaults (bf16 compute,
    fp32 AdamW moments — the usual Frontier setup).

    ``act_overhead`` is an eager-PyTorch fudge factor: besides the tensors
    the formulas enumerate, autograd retains softmax outputs, GELU inputs,
    dropout masks and allocator slack; 2.0 reproduces the paper's capacity
    statements (calibrated in ``tests/test_paper_anchors.py``).
    """

    param_bytes: int = 2
    grad_bytes: int = 2
    optim_bytes: int = 8
    act_bytes: int = 2
    act_overhead: float = 2.0

    @property
    def state_bytes(self) -> int:
        """Persistent bytes per parameter (weights + grads + optimizer)."""
        return self.param_bytes + self.grad_bytes + self.optim_bytes


@dataclass(frozen=True)
class Workload:
    """One training step's shape: channels and per-replica batch."""

    channels: int
    batch: int = 1

    def __post_init__(self) -> None:
        if self.channels < 1 or self.batch < 1:
            raise ValueError("channels and batch must be >= 1")
