"""Deterministic virtual clock for the SPMD runtime.

``run_spmd(fn, n, clock=VirtualClock(machine))`` makes every collective in
:mod:`repro.dist.runtime` advance a simulated per-rank clock: the group's
members synchronize to ``max(arrival times) + CostModel seconds`` and every
traffic record is stamped with virtual start/end times.  Ranks charge local
compute with :meth:`Communicator.charge_compute`, which appends a
:class:`ComputeInterval` to the rank's timeline.

Eager issue queues
------------------

By default every collective is **blocking** in virtual time: the issuing
rank's clock advances to the group-wide completion before its program
continues.  Passing ``eager_phases={"dp_sync", "fsdp_gather"}`` turns the
clock into an **issue-queue simulation** for those phases: a collective
issued inside an eager phase is *dispatched* at record time onto the rank's
outstanding communication channel (one serial channel per rank, the NCCL
stream analogue) and completes concurrently with subsequently charged
compute.  The issuing rank's compute clock does **not** advance at dispatch;
instead the in-flight interval sits in the rank's pending queue until a
synchronization point *drains* it:

* a blocking collective (any op whose phase is not eager, and every
  ``barrier``) drains the queue first — channels are serial, so it could not
  start before the queue cleared anyway;
* an explicit :meth:`drain` (``Communicator.drain_comm``);
* rank exit (:func:`repro.dist.run_spmd` finalizes each rank's clock).

At drain time each pending interval is charged its **exposed** seconds — the
part of its completion the rank actually stalls on, ``max(0, end − clock)``
processed in channel order — and archived as a :class:`CommInterval`.  The
sum of exposures is exactly the communication a perfectly-eager schedule
fails to hide, which is what :func:`repro.perf.overlap.derive_overlap` turns
into per-bucket overlap fractions (replacing the aggregate
``min(comm, compute)`` bound).

Scheduling model: a collective *starts* at ``max over members of
max(issue time, channel-free time)`` and *ends* ``CostModel seconds`` later;
every member's channel is busy until then.  Causality invariants (pinned by
``tests/test_dist_properties.py``): ``issue ≤ start``, ``end = start +
cost``, ``0 ≤ exposed ≤ end − issue``.

Determinism: virtual times are pure functions of each rank's *program
order* — compute charges plus the maxima taken at collective rendezvous —
never of wall-clock time or thread scheduling, so repeated runs of the same
world produce bitwise-identical timelines (eager or not).

Thread-safety contract (by construction, no locks needed): ``bind`` runs
before the rank threads start; ``now``/``charge``/``sync``/``drain`` touch
only the calling rank's own slot; the cross-rank ``max`` over arrival bids
happens inside the runtime's rendezvous, whose condition variable already
orders the reads after every write.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Collection, Sequence

from .cost import CostModel
from .machine import MachineSpec, frontier

__all__ = ["ComputeInterval", "CommInterval", "VirtualClock"]


@dataclass(frozen=True)
class ComputeInterval:
    """One charged compute span on a rank's virtual timeline."""

    rank: int
    phase: str
    label: str
    start: float
    end: float

    @property
    def seconds(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class CommInterval:
    """One priced collective on a rank's virtual timeline.

    ``issue`` is the rank's clock when it dispatched the collective,
    ``start``/``end`` the group-wide channel occupancy (``end − start`` is
    exactly the α–β cost), and ``exposed`` the stall this rank paid for it:
    the full wait for a blocking collective, the drained remainder
    ``max(0, end − clock at drain)`` for an eager one (0 when compute fully
    hid it).

    ``payload_bytes`` is the group-wide payload the rendezvous priced (the
    max over member bids), ``wire_bytes`` this rank's ring wire volume for
    it, ``intra`` the link class the group rode (every member on one
    node), and ``group`` the member world ranks — the identity the trace
    exporter uses to tie one collective's per-rank intervals into a single
    flow.  All default to the no-information values for legacy callers
    that complete a collective without payload metadata.
    """

    rank: int
    op: str
    phase: str
    issue: float
    start: float
    end: float
    exposed: float
    payload_bytes: int = 0
    wire_bytes: int = 0
    intra: bool = True
    group: tuple[int, ...] = ()

    @property
    def seconds(self) -> float:
        """Channel occupancy — the collective's priced cost."""
        return self.end - self.start

    @property
    def hidden(self) -> float:
        """Seconds of this collective the rank did *not* stall on."""
        return max(0.0, (self.end - self.issue) - self.exposed)

    @property
    def link(self) -> str:
        """Link class as the observability layer names it."""
        return "intra" if self.intra else "inter"


class VirtualClock:
    """Per-rank simulated time driven by one shared :class:`CostModel`.

    A clock belongs to **one world at a time**: :class:`~repro.dist.World`
    calls :meth:`bind` at construction, which resets the timelines.  Read
    ``times()`` / ``compute_intervals()`` / ``comm_intervals()`` between
    runs, not across them.

    ``eager_phases`` selects the traffic phases whose collectives are
    dispatched onto the per-rank issue queues instead of blocking (see the
    module docstring); ``barrier`` is always blocking regardless.
    """

    def __init__(
        self,
        machine: MachineSpec | None = None,
        cost: CostModel | None = None,
        eager_phases: Collection[str] | None = None,
        capture: bool = False,
    ) -> None:
        if cost is None:
            cost = CostModel(machine if machine is not None else frontier())
        elif machine is not None and cost.machine is not machine:
            raise ValueError("pass either machine or cost, not conflicting both")
        self.cost = cost
        self.machine = cost.machine
        self.eager_phases = frozenset(eager_phases) if eager_phases else frozenset()
        # Schedule capture: when on, every clock-visible event (compute
        # charge, collective issue, drain, p2p) is appended to the issuing
        # rank's event list as a plain tuple; the runtime feeds collectives
        # and drains through the ``capture_*`` hooks below.  Same
        # thread-safety contract as the timelines: each rank appends only to
        # its own slot.
        self.capture = bool(capture)
        self._captured: list[list[tuple]] = []
        self._times: list[float] = []
        self._compute: list[list[ComputeInterval]] = []
        # Issue-queue state: per-rank serial-channel free time, the in-flight
        # (pending) collectives as a completion-ordered event heap, and the
        # archive of drained/blocking ones.  The heap keeps drains O(log n)
        # per event and stays correct if a future channel model (multiple
        # NCCL-style channels, p2p sharing) makes completions non-monotone
        # in issue order; ``_pseq`` breaks ties deterministically.
        self._chan_free: list[float] = []
        # (end, seq, op, phase, issue, start, payload, wire, intra, group)
        self._pending: list[list[tuple]] = []
        self._pseq: list[int] = []
        self._comm: list[list[CommInterval]] = []
        # Running per-(rank, phase) totals so overlap derivation reads
        # aggregates in O(1) instead of rescanning interval lists.
        self._compute_tot: list[dict[str, float]] = []
        self._busy_tot: list[dict[str, float]] = []
        self._exposed_tot: list[dict[str, float]] = []
        self._count_tot: list[dict[str, int]] = []
        # Running per-rank comm-volume totals keyed by (op, phase, intra):
        # (count, wire_bytes, busy_seconds).  The export hook the
        # observability layer (repro.obs.commvol) reads without rescanning
        # interval lists.
        self._vol_tot: list[dict[tuple[str, str, bool], tuple[int, int, float]]] = []
        # (op, payload, group) → (wire_bytes, intra, collective_seconds):
        # steady-state schedules reissue the same few collectives thousands
        # of times per step, and every *member* prices wire volume at
        # completion — memoized per clock (the cost model and its MachineSpec
        # are fixed for the clock's lifetime; spec tweaks go through
        # dataclasses.replace and build a fresh clock).  Concurrent rank
        # threads may race a fill; dict item writes are GIL-atomic and the
        # value is deterministic, so a lost race only recomputes.
        self._price_memo: dict[tuple[str, int, tuple], tuple[int, bool, float]] = {}

    # -- world plumbing (called by repro.dist.runtime) ---------------------
    def bind(self, world_size: int) -> None:
        """Attach to a fresh world: zero all per-rank timelines."""
        n = int(world_size)
        self._captured = [[] for _ in range(n)]
        self._times = [0.0] * n
        self._compute = [[] for _ in range(n)]
        self._chan_free = [0.0] * n
        self._pending = [[] for _ in range(n)]
        self._pseq = [0] * n
        self._comm = [[] for _ in range(n)]
        self._compute_tot = [{} for _ in range(n)]
        self._busy_tot = [{} for _ in range(n)]
        self._exposed_tot = [{} for _ in range(n)]
        self._count_tot = [{} for _ in range(n)]
        self._vol_tot = [{} for _ in range(n)]

    @property
    def world_size(self) -> int:
        return len(self._times)

    def now(self, rank: int) -> float:
        return self._times[rank]

    def sync(self, rank: int, t: float) -> None:
        """Advance *rank* to time *t* (never backwards)."""
        if t > self._times[rank]:
            self._times[rank] = t

    def charge(
        self, rank: int, seconds: float, phase: str = "compute", label: str = ""
    ) -> tuple[float, float]:
        """Append a compute interval to *rank*'s timeline; returns (start, end).

        Charged compute runs concurrently with any in-flight eager
        collectives — that concurrency is the whole point of the issue
        queue — so pending entries are left untouched; they settle at the
        next drain point.
        """
        if seconds < 0.0:
            raise ValueError(f"compute seconds must be >= 0, got {seconds}")
        if self.capture:
            self._captured[rank].append(("compute", phase, label, float(seconds)))
        start = self._times[rank]
        end = start + seconds
        self._times[rank] = end
        self._compute[rank].append(
            ComputeInterval(rank=rank, phase=phase, label=label, start=start, end=end)
        )
        tot = self._compute_tot[rank]
        tot[phase] = tot.get(phase, 0.0) + seconds
        return start, end

    def _price(
        self, op: str, payload_bytes: int, grp: tuple
    ) -> tuple[int, bool, float]:
        """Memoized ``(wire_bytes, intra, seconds)`` for one collective shape."""
        key = (op, int(payload_bytes), grp)
        hit = self._price_memo.get(key)
        if hit is None:
            if len(grp) > 1:
                wire = self.cost.wire_bytes(op, int(payload_bytes), len(grp))
                intra = self.cost.intra_node(grp)
            else:
                wire, intra = 0, True
            secs = (
                self.cost.collective_seconds_for(op, payload_bytes, grp)
                if grp
                else 0.0
            )
            hit = self._price_memo[key] = (wire, intra, secs)
        return hit

    def collective_seconds(
        self, op: str, payload_bytes: int, ranks: Sequence[int]
    ) -> float:
        """α–β cost of one collective over the given world ranks (memoized)."""
        grp = ranks if isinstance(ranks, tuple) else tuple(ranks)
        return self._price(op, payload_bytes, grp)[2]

    def p2p_seconds(self, nbytes: int, src: int, dst: int) -> float:
        return self.cost.p2p_seconds(nbytes, src, dst)

    # -- schedule capture (hooks called by repro.dist.runtime) -------------
    @property
    def capturing(self) -> bool:
        """Whether the runtime should feed ``capture_*`` hooks (duck-typed:
        the runtime checks ``getattr(clock, "capturing", False)``)."""
        return self.capture

    def capture_collective(
        self, rank: int, op: str, phase: str, payload_bytes: int,
        ranks: Sequence[int],
    ) -> None:
        """Record a collective issue at *rank*'s current program position.

        ``payload_bytes`` is this rank's arrival bid (ranks may bid
        differently, e.g. a broadcast non-root bids 0); replay re-derives
        the group payload as the max over member bids, exactly like the
        rendezvous slot does.
        """
        self._captured[rank].append(
            ("coll", op, phase, int(payload_bytes), tuple(ranks))
        )

    def capture_drain(self, rank: int) -> None:
        """Record an explicit drain (``Communicator.drain_comm``).  Implicit
        drains — blocking arrivals, rank exit — are re-derived by replay."""
        self._captured[rank].append(("drain",))

    def capture_send(self, rank: int, nbytes: int, dst: int, tag: int) -> None:
        self._captured[rank].append(("send", int(nbytes), int(dst), int(tag)))

    def capture_recv(self, rank: int, src: int, tag: int) -> None:
        self._captured[rank].append(("recv", int(src), int(tag)))

    def captured_events(self, rank: int) -> tuple[tuple, ...]:
        """The raw captured event tuples for one rank, in program order."""
        return tuple(self._captured[rank])

    def schedule(self):
        """Package the captured events as a :class:`~repro.perf.schedule.CapturedSchedule`."""
        from .schedule import CapturedSchedule  # local: schedule.py imports this module

        return CapturedSchedule.from_clock(self)

    # -- issue-queue engine (called by the runtime's rendezvous) -----------
    def is_eager(self, op: str, phase: str) -> bool:
        """Whether a collective of this (op, phase) dispatches eagerly."""
        return op != "barrier" and phase in self.eager_phases

    def collective_arrival(self, rank: int, op: str, phase: str) -> float:
        """This rank's arrival bid for the group-wide start maximum.

        Blocking collectives drain the rank's pending queue first (the
        serial channel could not start them earlier anyway), so their bid is
        the post-drain clock; eager ones bid ``max(clock, channel free)``
        without advancing anything.
        """
        if self.is_eager(op, phase):
            return max(self._times[rank], self._chan_free[rank])
        self.drain(rank)
        return self._times[rank]

    def collective_complete(
        self,
        rank: int,
        op: str,
        phase: str,
        issue: float,
        start: float,
        end: float,
        payload_bytes: int = 0,
        ranks: Sequence[int] = (),
    ) -> None:
        """Record one priced collective for *rank*.

        ``start``/``end`` are the group-wide channel occupancy computed at
        rendezvous (``start = max(bids)``, ``end = start + cost``).  A
        blocking collective stalls the rank to ``end`` and archives its full
        wait as exposed; an eager one only occupies the channel and joins
        the pending queue (exposure settled at drain).

        ``payload_bytes`` (the group max bid) and ``ranks`` (the group's
        world ranks) stamp the archived interval with its wire volume and
        link class — callers that omit them (legacy duck-typed paths) get
        zero-byte intervals; virtual times are unaffected either way.
        """
        grp = ranks if isinstance(ranks, tuple) else tuple(ranks)
        wire, intra, _ = self._price(op, payload_bytes, grp)
        self._chan_free[rank] = max(self._chan_free[rank], end)
        if self.is_eager(op, phase):
            # Heap-ordered channel event: settled at the next drain point in
            # completion order, O(log n) per dispatch.
            seq = self._pseq[rank]
            self._pseq[rank] = seq + 1
            heapq.heappush(
                self._pending[rank],
                (end, seq, op, phase, issue, start, int(payload_bytes), wire,
                 intra, grp),
            )
            return
        self._archive(
            rank, op, phase, issue, start, end, max(0.0, end - issue),
            int(payload_bytes), wire, intra, grp,
        )
        self.sync(rank, end)

    def _archive(
        self, rank: int, op: str, phase: str, issue: float, start: float,
        end: float, exposed: float, payload: int = 0, wire: int = 0,
        intra: bool = True, group: tuple[int, ...] = (),
    ) -> None:
        """Record one settled collective and fold it into the totals."""
        self._comm[rank].append(
            CommInterval(
                rank=rank, op=op, phase=phase, issue=issue, start=start, end=end,
                exposed=exposed, payload_bytes=payload, wire_bytes=wire,
                intra=intra, group=group,
            )
        )
        busy = self._busy_tot[rank]
        busy[phase] = busy.get(phase, 0.0) + (end - start)
        exp = self._exposed_tot[rank]
        exp[phase] = exp.get(phase, 0.0) + exposed
        cnt = self._count_tot[rank]
        cnt[phase] = cnt.get(phase, 0) + 1
        vol = self._vol_tot[rank]
        key = (op, phase, intra)
        c, w, busy_s = vol.get(key, (0, 0, 0.0))
        vol[key] = (c + 1, w + wire, busy_s + (end - start))

    def drain(self, rank: int) -> float:
        """Settle *rank*'s pending queue; returns the post-drain clock.

        Pending events pop off the completion-ordered heap — equivalent to
        issue order for today's single serial channel, and still correct
        for channel models whose completions interleave — each charged
        ``max(0, end − running clock)`` exposed seconds.
        """
        heap = self._pending[rank]
        if heap:
            w = self._times[rank]
            while heap:
                end, _seq, op, phase, issue, start, payload, wire, intra, grp = (
                    heapq.heappop(heap)
                )
                exposed = max(0.0, end - w)
                w = max(w, end)
                self._archive(
                    rank, op, phase, issue, start, end, exposed, payload, wire,
                    intra, grp,
                )
            self._times[rank] = w
        return self._times[rank]

    def finalize_rank(self, rank: int) -> None:
        """Rank exit hook: drain so ``times()`` is the true makespan."""
        self.drain(rank)

    # -- read-out ----------------------------------------------------------
    def times(self) -> list[float]:
        """Per-rank virtual completion times (a copy)."""
        return list(self._times)

    def elapsed(self) -> float:
        """The world's virtual makespan: the slowest rank's clock."""
        return max(self._times, default=0.0)

    def compute_intervals(
        self, rank: int | None = None, phase: str | None = None
    ) -> list[ComputeInterval]:
        ranks = range(len(self._compute)) if rank is None else (rank,)
        out: list[ComputeInterval] = []
        for r in ranks:
            out.extend(
                iv for iv in self._compute[r] if phase is None or iv.phase == phase
            )
        return out

    def compute_seconds(
        self, rank: int | None = None, phase: str | None = None
    ) -> float:
        """Total charged compute, from the running totals (O(ranks))."""
        return self._total(self._compute_tot, rank, phase)

    def _total(
        self, tables: list[dict[str, float]], rank: int | None, phase: str | None
    ) -> float:
        ranks = range(len(tables)) if rank is None else (rank,)
        if phase is None:
            return sum(sum(tables[r].values()) for r in ranks)
        return sum(tables[r].get(phase, 0.0) for r in ranks)

    def comm_intervals(
        self, rank: int | None = None, phase: str | None = None
    ) -> list[CommInterval]:
        """Settled collectives in issue order (pendings only after drain)."""
        ranks = range(len(self._comm)) if rank is None else (rank,)
        out: list[CommInterval] = []
        for r in ranks:
            out.extend(iv for iv in self._comm[r] if phase is None or iv.phase == phase)
        return out

    def exposed_seconds(
        self, rank: int | None = None, phase: str | None = None
    ) -> float:
        """Total communication stall (see :class:`CommInterval.exposed`),
        from the running totals (O(ranks))."""
        return self._total(self._exposed_tot, rank, phase)

    def comm_busy_seconds(
        self, rank: int | None = None, phase: str | None = None
    ) -> float:
        """Total channel occupancy, Σ(end − start) — the pure α–β cost —
        from the running totals (O(ranks))."""
        return self._total(self._busy_tot, rank, phase)

    def comm_count(self, rank: int, phase: str | None = None) -> int:
        """Number of settled collectives on *rank*'s timeline (O(1))."""
        if phase is None:
            return sum(self._count_tot[rank].values())
        return self._count_tot[rank].get(phase, 0)

    # -- observability export hooks (consumed by repro.obs) ----------------
    def timeline(self, rank: int) -> list[ComputeInterval | CommInterval]:
        """One rank's full archived timeline, time-ordered.

        Compute and settled comm intervals merged and sorted by
        ``(start, end)`` — the flat view the trace exporter
        (:mod:`repro.obs.trace`) lowers to Chrome trace tracks.  Eager
        collectives still in the pending queue are not included; drain (or
        let :func:`repro.dist.run_spmd` finalize the rank) first.
        """
        merged: list[ComputeInterval | CommInterval] = [
            *self._compute[rank], *self._comm[rank]
        ]
        merged.sort(key=lambda iv: (iv.start, iv.end))
        return merged

    def comm_volumes(
        self, rank: int | None = None
    ) -> dict[tuple[str, str, bool], tuple[int, int, float]]:
        """Settled comm volumes by ``(op, phase, intra)`` from running totals.

        Values are ``(count, wire_bytes, busy_seconds)`` — ``wire_bytes``
        is the per-rank ring wire volume and ``busy_seconds`` the pure α–β
        channel occupancy, both independent of overlap.  With ``rank=None``
        the totals are summed over every rank.  O(buckets), never rescans
        interval lists — the comm-volume report's *simulated* column
        (:func:`repro.obs.commvol.comm_volume_report`) reads this.
        """
        ranks = range(len(self._vol_tot)) if rank is None else (rank,)
        out: dict[tuple[str, str, bool], tuple[int, int, float]] = {}
        for r in ranks:
            for key, (c, w, s) in self._vol_tot[r].items():
                oc, ow, os_ = out.get(key, (0, 0, 0.0))
                out[key] = (oc + c, ow + w, os_ + s)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"VirtualClock(machine={self.machine.name!r}, "
            f"world={self.world_size}, elapsed={self.elapsed():.3e}s, "
            f"eager={sorted(self.eager_phases)})"
        )
