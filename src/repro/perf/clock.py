"""Deterministic virtual clock for the SPMD runtime.

``run_spmd(fn, n, clock=VirtualClock(machine))`` makes every collective in
:mod:`repro.dist.runtime` advance a simulated per-rank clock: the group's
members synchronize to ``max(arrival times) + CostModel seconds`` and every
traffic record is stamped with virtual start/end times.  Ranks charge local
compute with :meth:`Communicator.charge_compute`, which appends a
:class:`ComputeInterval` to the rank's timeline.

Determinism: virtual times are pure functions of each rank's *program
order* — compute charges plus the maxima taken at collective rendezvous —
never of wall-clock time or thread scheduling, so repeated runs of the same
world produce bitwise-identical timelines.

Thread-safety contract (by construction, no locks needed): ``bind`` runs
before the rank threads start; ``now``/``charge``/``sync`` touch only the
calling rank's own slot; the cross-rank ``max`` over arrivals happens inside
the runtime's rendezvous, whose condition variable already orders the reads
after every write.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .cost import CostModel
from .machine import MachineSpec, frontier

__all__ = ["ComputeInterval", "VirtualClock"]


@dataclass(frozen=True)
class ComputeInterval:
    """One charged compute span on a rank's virtual timeline."""

    rank: int
    phase: str
    label: str
    start: float
    end: float

    @property
    def seconds(self) -> float:
        return self.end - self.start


class VirtualClock:
    """Per-rank simulated time driven by one shared :class:`CostModel`.

    A clock belongs to **one world at a time**: :class:`~repro.dist.World`
    calls :meth:`bind` at construction, which resets the timelines.  Read
    ``times()`` / ``compute_intervals()`` between runs, not across them.
    """

    def __init__(
        self, machine: MachineSpec | None = None, cost: CostModel | None = None
    ) -> None:
        if cost is None:
            cost = CostModel(machine if machine is not None else frontier())
        elif machine is not None and cost.machine is not machine:
            raise ValueError("pass either machine or cost, not conflicting both")
        self.cost = cost
        self.machine = cost.machine
        self._times: list[float] = []
        self._compute: list[list[ComputeInterval]] = []

    # -- world plumbing (called by repro.dist.runtime) ---------------------
    def bind(self, world_size: int) -> None:
        """Attach to a fresh world: zero all per-rank timelines."""
        self._times = [0.0] * int(world_size)
        self._compute = [[] for _ in range(int(world_size))]

    @property
    def world_size(self) -> int:
        return len(self._times)

    def now(self, rank: int) -> float:
        return self._times[rank]

    def sync(self, rank: int, t: float) -> None:
        """Advance *rank* to time *t* (never backwards)."""
        if t > self._times[rank]:
            self._times[rank] = t

    def charge(
        self, rank: int, seconds: float, phase: str = "compute", label: str = ""
    ) -> tuple[float, float]:
        """Append a compute interval to *rank*'s timeline; returns (start, end)."""
        if seconds < 0.0:
            raise ValueError(f"compute seconds must be >= 0, got {seconds}")
        start = self._times[rank]
        end = start + seconds
        self._times[rank] = end
        self._compute[rank].append(
            ComputeInterval(rank=rank, phase=phase, label=label, start=start, end=end)
        )
        return start, end

    def collective_seconds(
        self, op: str, payload_bytes: int, ranks: Sequence[int]
    ) -> float:
        """α–β cost of one collective over the given world ranks."""
        return self.cost.collective_seconds_for(op, payload_bytes, ranks)

    def p2p_seconds(self, nbytes: int, src: int, dst: int) -> float:
        return self.cost.p2p_seconds(nbytes, src, dst)

    # -- read-out ----------------------------------------------------------
    def times(self) -> list[float]:
        """Per-rank virtual completion times (a copy)."""
        return list(self._times)

    def elapsed(self) -> float:
        """The world's virtual makespan: the slowest rank's clock."""
        return max(self._times, default=0.0)

    def compute_intervals(
        self, rank: int | None = None, phase: str | None = None
    ) -> list[ComputeInterval]:
        ranks = range(len(self._compute)) if rank is None else (rank,)
        out: list[ComputeInterval] = []
        for r in ranks:
            out.extend(
                iv for iv in self._compute[r] if phase is None or iv.phase == phase
            )
        return out

    def compute_seconds(
        self, rank: int | None = None, phase: str | None = None
    ) -> float:
        return sum(iv.seconds for iv in self.compute_intervals(rank, phase))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"VirtualClock(machine={self.machine.name!r}, "
            f"world={self.world_size}, elapsed={self.elapsed():.3e}s)"
        )
