"""Named model-size configurations used throughout the paper.

The 7B / 15B / 26B numbers are given explicitly in §6.1 (embed 4096 / 6144 /
8192, all 32 layers, 32 heads); the smaller sizes are reconstructed to match
their quoted parameter counts (transformer blocks ≈ 12·depth·dim²).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["ModelConfig", "named_model", "MODEL_ZOO", "transformer_param_count"]


@dataclass(frozen=True)
class ModelConfig:
    """Architecture hyper-parameters of the generic FM (paper Fig. 1)."""

    name: str
    dim: int
    depth: int
    heads: int
    mlp_ratio: float = 4.0
    patch: int = 16
    image_hw: tuple[int, int] = (224, 224)

    @property
    def tokens(self) -> int:
        h, w = self.image_hw
        return (h // self.patch) * (w // self.patch)

    @property
    def head_dim(self) -> int:
        return self.dim // self.heads

    def with_image(self, h: int, w: int, patch: int | None = None) -> "ModelConfig":
        return replace(self, image_hw=(h, w), patch=patch if patch else self.patch)


def transformer_param_count(cfg: ModelConfig) -> int:
    """Parameters in the ViT blocks (qkv + proj + mlp + norms) + final norm."""
    d = cfg.dim
    per_block = (
        3 * d * d + 3 * d      # qkv
        + d * d + d            # proj
        + 2 * int(cfg.mlp_ratio) * d * d + int(cfg.mlp_ratio) * d + d  # mlp
        + 4 * d                # 2 layernorms
    )
    return cfg.depth * per_block + 2 * d


# Sizes quoted by the paper; embed/layers/heads for 7B/15B/26B are explicit
# (§6.1), the rest chosen so the transformer-block count matches the label.
MODEL_ZOO: dict[str, ModelConfig] = {
    "40M": ModelConfig("40M", dim=512, depth=12, heads=8),
    "53M": ModelConfig("53M", dim=576, depth=13, heads=8),
    "100M": ModelConfig("100M", dim=768, depth=14, heads=12),
    "1B": ModelConfig("1B", dim=2048, depth=20, heads=16),
    "1.7B": ModelConfig("1.7B", dim=2304, depth=26, heads=24),
    "3B": ModelConfig("3B", dim=2816, depth=32, heads=32),
    "7B": ModelConfig("7B", dim=4096, depth=32, heads=32),
    "15B": ModelConfig("15B", dim=6144, depth=32, heads=32),
    "26B": ModelConfig("26B", dim=8192, depth=32, heads=32),
}


def named_model(name: str) -> ModelConfig:
    try:
        return MODEL_ZOO[name]
    except KeyError:
        raise KeyError(f"unknown model {name!r}; choices: {sorted(MODEL_ZOO)}") from None
