"""Closed-form FLOP model per component and strategy.

Forward FLOPs; training steps cost ``3×`` forward (backward ≈ 2× forward),
the standard estimate the paper's TFLOPs/sec numbers are based on.  The
runtime counter in :mod:`repro.tensor.flops` validates these formulas at
small scale (see ``tests/test_perf_validation.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.tree import build_tree
from .modelcfg import ModelConfig
from .plan import ParallelPlan, Workload

__all__ = ["FlopsBreakdown", "estimate_flops", "useful_flops_per_step", "AGG_TIME_BOTTLENECK"]

TRAIN_MULT = 3.0  # forward + backward

# The aggregation module's q/kv projections are tall-skinny GEMMs over
# C·N short tokens — bandwidth-bound on MI250X rather than compute-bound.
# Their *time* contribution is modelled with an effective D/4 width (their
# *memory* in repro.perf.memory_model stays full-width).  Without this the
# channel stage would dwarf the ViT in modelled time for C ≥ 512, which
# contradicts the gain magnitudes the paper reports (≤ 70 % in Fig. 13).
AGG_TIME_BOTTLENECK = 4.0


@dataclass(frozen=True)
class FlopsBreakdown:
    """Forward FLOPs per GPU for one micro-batch, by component."""

    tokenization: float
    aggregation: float
    transformer: float

    @property
    def total(self) -> float:
        return self.tokenization + self.aggregation + self.transformer

    def component_dict(self) -> dict[str, float]:
        return {
            "tokenization": self.tokenization,
            "aggregation": self.aggregation,
            "transformer": self.transformer,
        }


def _cross_attention_flops(channels: int, n: int, d: int, batch: int) -> float:
    """One aggregation cross-attention spanning *channels*, per spatial token.

    q/k/v projections (3 · 2·C·D²), scores + weighted sum (2 · 2·C²·D),
    output projection (2·C·D²) — the quadratic-in-C term mirrors the score
    matrix of the memory model.
    """
    c = channels
    return batch * n * (6 * c * d * d + 4 * c * c * d + 2 * c * d * d) / AGG_TIME_BOTTLENECK


def _linear_mixer_flops(channels: int, n: int, d: int, batch: int) -> float:
    """Linear channel mix: ``2·C·N·D`` per output channel."""
    return batch * n * 2 * channels * d


def estimate_flops(
    model: ModelConfig,
    workload: Workload,
    plan: ParallelPlan = ParallelPlan("serial"),
) -> FlopsBreakdown:
    """Forward FLOPs executed **per GPU** for one micro-batch."""
    D = model.dim
    N = model.tokens
    pp = model.patch * model.patch
    C = workload.channels
    B = workload.batch
    tp = plan.tp

    local_c = C if plan.strategy in ("serial", "tp") else -(-C // tp)

    tok = 2.0 * B * local_c * N * pp * D
    if plan.strategy in ("serial", "tp"):
        tok = 2.0 * B * C * N * pp * D  # replicated: every rank does all C

    if plan.strategy in ("serial", "tp", "dist_tok"):
        agg = _cross_attention_flops(C, N, D, B) / tp
    else:
        spec = build_tree(local_c, plan.dchag_fanout)
        if plan.dchag_kind == "cross":
            agg = sum(_cross_attention_flops(s, N, D, B) for s in spec.group_sizes)
            if spec.has_root:
                agg += _cross_attention_flops(len(spec.group_sizes), N, D, B)
        else:
            agg = sum(_linear_mixer_flops(s, N, D, B) for s in spec.group_sizes)
            if spec.has_root:
                agg += _linear_mixer_flops(len(spec.group_sizes), N, D, B)
        final_div = tp if plan.tp_shard_final else 1
        agg += _cross_attention_flops(tp, N, D, B) / final_div

    # ViT blocks: qkv 6·N·D², scores+av 4·N²·D, proj 2·N·D², MLP 4·mlp·N·D².
    # Ulysses SP divides the block evenly: GEMMs see N/sp tokens, attention
    # sees heads/sp full-sequence heads — per-rank block FLOPs are /(tp·sp).
    mlp = model.mlp_ratio
    per_block = B * (N * (8 + 4 * mlp) * D * D + 4 * N * N * D)
    vit = model.depth * per_block / tp / plan.sp

    return FlopsBreakdown(tokenization=float(tok), aggregation=float(agg), transformer=float(vit))


def useful_flops_per_step(model: ModelConfig, workload: Workload) -> float:
    """Model FLOPs for one micro-batch on the *serial* architecture — the
    numerator of sustained TFLOPs/sec (redundant or extra layers introduced
    by a distribution strategy do not count as useful work)."""
    serial = estimate_flops(model, workload, ParallelPlan("serial"))
    return TRAIN_MULT * serial.total
