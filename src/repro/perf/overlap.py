"""Derive dp/fsdp communication-overlap fractions from virtual timelines.

The analytic model (:func:`~repro.perf.comm_model.estimate_step_comm`)
discounts DP and FSDP communication by an overlap fraction — the share a
real implementation hides under compute (bucketed DP gradient AllReduce
issued during backward; the next FSDP unit's AllGather prefetched during the
current unit's forward).  Those fractions used to be assumed constants
(0.8 / 0.5); this module derives them from the per-rank timelines a
virtual-clock run records.

Two derivation sources, picked per axis by what the run simulated:

* ``"measured"`` — the run used an **issue-queue clock**
  (:class:`~repro.perf.clock.VirtualClock` with the axis' phase in
  ``eager_phases``): collectives were dispatched at record time and
  completed concurrently with charged compute, so each one carries its own
  *exposed* seconds.  The hidden fraction is then read off the schedule
  directly, ``1 − exposed / busy`` (``busy`` = channel occupancy, the pure
  α–β cost), and :func:`derive_bucket_exposures` reports it **per bucket**
  (per dp gradient bucket / per fsdp unit gather).
* ``"bound"`` — the run was blocking (the legacy simulation serializes
  communication after compute): the best available estimate is the eager
  upper bound ``min(C, K) / C`` from the axis' total collective wall-time
  ``C`` and the compute ``K`` that could hide it.

Phase conventions (stamped by the parallel wrappers):

========================  ==================================================
phase                     producer
========================  ==================================================
``"dp_sync"``             :meth:`repro.parallel.DataParallel.sync_gradients`
``"fsdp_gather"``         :class:`repro.parallel.FSDPModel` unit materialize
``"forward"``             compute charged by the wrappers' forward hooks
``"backward"``            compute charged before the DP gradient sync
========================  ==================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = [
    "DP_SYNC_PHASE",
    "FSDP_GATHER_PHASE",
    "FORWARD_PHASE",
    "BACKWARD_PHASE",
    "OVERLAP_PHASES",
    "BucketExposure",
    "OverlapReport",
    "DerivedOverlaps",
    "phase_comm_seconds",
    "derive_bucket_exposures",
    "derive_overlap",
    "derive_overlaps",
]

DP_SYNC_PHASE = "dp_sync"
FSDP_GATHER_PHASE = "fsdp_gather"
FORWARD_PHASE = "forward"
BACKWARD_PHASE = "backward"

#: The phases an eager issue-queue simulation overlaps with compute — pass
#: ``VirtualClock(machine, eager_phases=OVERLAP_PHASES)`` to simulate
#: bucketed-DDP / FSDP-prefetch scheduling.  TP collectives stay blocking
#: (critical path), matching the analytic model's overlap-0 treatment.
OVERLAP_PHASES = frozenset({DP_SYNC_PHASE, FSDP_GATHER_PHASE})


@dataclass(frozen=True)
class BucketExposure:
    """One communication bucket's schedule-accurate exposure.

    A *bucket* is the *i*-th collective a rank issues in the phase (dp
    gradient bucket *i*, fsdp unit *i*'s gather); values are means over the
    ranks that issued it.  ``comm_seconds`` is channel occupancy (the pure
    α–β cost), ``exposed_seconds`` the stall the drain actually charged.
    """

    phase: str
    op: str
    index: int
    comm_seconds: float
    exposed_seconds: float

    @property
    def hidden_fraction(self) -> float:
        """Share of this bucket's cost hidden under compute, in [0, 1]."""
        if self.comm_seconds <= 0.0:
            return 0.0
        return min(1.0, max(0.0, 1.0 - self.exposed_seconds / self.comm_seconds))


@dataclass(frozen=True)
class OverlapReport:
    """Derived overlap of one communication axis against one compute phase."""

    comm_phase: str
    compute_phase: str
    comm_seconds: float      # mean per-rank collective wall-time on the axis
    compute_seconds: float   # mean per-rank compute available to hide it
    overlap: float           # derived hidden fraction in [0, 1]
    exposed_seconds: float = -1.0  # mean per-rank exposed comm (measured only)
    source: str = "bound"    # "measured" (issue queue) or "bound" (min(C,K)/C)


@dataclass(frozen=True)
class DerivedOverlaps:
    """The pair :func:`~repro.perf.comm_model.estimate_step_comm` consumes.

    ``buckets`` carries the per-bucket exposure detail when the run used an
    issue-queue clock (empty for blocking runs) — the aggregate ``dp`` /
    ``fsdp`` fractions are what the analytic model consumes, the buckets
    are the evidence.
    """

    dp: OverlapReport
    fsdp: OverlapReport
    buckets: tuple[BucketExposure, ...] = ()

    @property
    def dp_overlap(self) -> float:
        return self.dp.overlap

    @property
    def fsdp_overlap(self) -> float:
        return self.fsdp.overlap

    def buckets_for(self, phase: str) -> tuple[BucketExposure, ...]:
        return tuple(b for b in self.buckets if b.phase == phase)


def phase_comm_seconds(world: Any, phase: str, rank: int) -> float:
    """One rank's summed collective wall-time (``vend − vstart``) in *phase*.

    Only virtual-clock-stamped records contribute; includes time spent
    waiting for stragglers (that wait is real exposure too).  Reads the
    :class:`~repro.dist.stats.TrafficLog` bucket totals (O(buckets), not
    O(records) — 32-rank replays used to rescan the full record list per
    rank); duck-typed traffic stand-ins without ``totals`` still take the
    rescan path.
    """
    totals = getattr(world.traffic, "totals", None)
    if totals is not None:
        snap = totals(phase=phase, rank=rank)
        vseconds = getattr(snap, "vseconds", None)
        if vseconds is not None:
            return vseconds
    return sum(
        r.vend - r.vstart
        for r in world.traffic.records()
        if r.rank == rank and r.phase == phase and r.vstart >= 0.0
    )


def _require_clock(world: Any):
    clock = getattr(world, "clock", None)
    if clock is None:
        raise ValueError("overlap derivation needs a world run with a virtual clock")
    return clock


def _eager_phase(clock: Any, phase: str) -> bool:
    return phase in getattr(clock, "eager_phases", ())


def derive_bucket_exposures(world: Any, phase: str) -> list[BucketExposure]:
    """Per-bucket exposure of one eagerly-simulated phase.

    Bucket *i* aggregates the *i*-th :class:`~repro.perf.clock.CommInterval`
    each rank issued in *phase* (SPMD programs issue the same schedule on
    every rank), averaging cost and exposure over the ranks that reached
    it.  Empty for phases the clock did not simulate eagerly.
    """
    clock = _require_clock(world)
    if not _eager_phase(clock, phase) or not hasattr(clock, "comm_intervals"):
        return []
    per_rank = [
        clock.comm_intervals(rank=r, phase=phase)
        for r in range(clock.world_size)
    ]
    per_rank = [ivs for ivs in per_rank if ivs]
    if not per_rank:
        return []
    buckets: list[BucketExposure] = []
    depth = max(len(ivs) for ivs in per_rank)
    for i in range(depth):
        stack = [ivs[i] for ivs in per_rank if len(ivs) > i]
        buckets.append(
            BucketExposure(
                phase=phase,
                op=stack[0].op,
                index=i,
                comm_seconds=sum(iv.seconds for iv in stack) / len(stack),
                exposed_seconds=sum(iv.exposed for iv in stack) / len(stack),
            )
        )
    return buckets


def derive_overlap(world: Any, comm_phase: str, compute_phase: str) -> OverlapReport:
    """Derive one axis' hidden fraction from a finished virtual-clock world.

    *world* is the :class:`~repro.dist.World` of a ``run_spmd(...,
    clock=VirtualClock(machine))`` run whose collectives were phase-tagged.
    If the clock simulated *comm_phase* eagerly the fraction is **measured**
    from per-bucket exposure (``1 − exposed/busy``); otherwise it falls back
    to the ``min(C, K)/C`` **bound**.  Per-rank seconds are averaged over
    the ranks that issued any communication in *comm_phase* (in a mesh world
    every rank does).
    """
    clock = _require_clock(world)
    if _eager_phase(clock, comm_phase) and hasattr(clock, "comm_intervals"):
        busy: dict[int, float] = {}
        exposed: dict[int, float] = {}
        fast = hasattr(clock, "comm_count") and hasattr(clock, "comm_busy_seconds")
        for r in range(clock.world_size):
            # Running totals when the clock maintains them (O(1) per rank);
            # interval rescan only for duck-typed stand-ins.
            if fast:
                if clock.comm_count(r, comm_phase):
                    busy[r] = clock.comm_busy_seconds(rank=r, phase=comm_phase)
                    exposed[r] = clock.exposed_seconds(rank=r, phase=comm_phase)
                continue
            ivs = clock.comm_intervals(rank=r, phase=comm_phase)
            if ivs:
                busy[r] = sum(iv.seconds for iv in ivs)
                exposed[r] = sum(iv.exposed for iv in ivs)
        if busy:
            comm = sum(busy.values()) / len(busy)
            exp = sum(exposed.values()) / len(exposed)
            compute = sum(
                clock.compute_seconds(rank=r, phase=compute_phase) for r in busy
            ) / len(busy)
            overlap = 0.0
            if comm > 0.0:
                overlap = min(1.0, max(0.0, 1.0 - exp / comm))
            return OverlapReport(
                comm_phase=comm_phase,
                compute_phase=compute_phase,
                comm_seconds=comm,
                compute_seconds=compute,
                overlap=overlap,
                exposed_seconds=exp,
                source="measured",
            )
        return OverlapReport(comm_phase, compute_phase, 0.0, 0.0, 0.0, 0.0, "measured")
    per_rank: dict[int, float] = {}
    traffic = getattr(world, "traffic", None)
    if traffic is None:
        # A replayed timeline (repro.perf.schedule.ReplayResult) carries no
        # traffic log; for a blocking phase every settled interval has
        # ``exposed == end − issue == vend − vstart``, so the clock's
        # exposed totals reproduce the record walk bitwise (size-1 groups
        # never touch the clock and contribute zero either way).
        for rank in range(clock.world_size):
            if clock.comm_count(rank, comm_phase):
                per_rank[rank] = clock.exposed_seconds(rank=rank, phase=comm_phase)
    else:
        for r in traffic.records():
            if r.phase == comm_phase and r.vstart >= 0.0:
                per_rank[r.rank] = per_rank.get(r.rank, 0.0) + (r.vend - r.vstart)
    comm = sum(per_rank.values()) / len(per_rank) if per_rank else 0.0
    if comm <= 0.0:
        # No traffic in the phase — or only zero-duration records (size-1
        # groups log vstart == vend): nothing to hide, overlap 0.
        return OverlapReport(comm_phase, compute_phase, 0.0, 0.0, 0.0)
    compute = sum(
        clock.compute_seconds(rank=rank, phase=compute_phase) for rank in per_rank
    ) / len(per_rank)
    return OverlapReport(
        comm_phase=comm_phase,
        compute_phase=compute_phase,
        comm_seconds=comm,
        compute_seconds=compute,
        overlap=min(comm, compute) / comm,
    )


def derive_overlaps(world: Any) -> DerivedOverlaps:
    """Derive both fractions with the standard phase conventions.

    DP gradient AllReduce hides under backward compute; FSDP forward
    AllGathers hide under forward compute.  Axes with no traffic report
    overlap 0 — feeding that into :func:`estimate_step_comm` simply leaves
    the (absent) axis priced at zero anyway.  Eagerly-simulated runs also
    attach the per-bucket exposure evidence.

    *world* may be a live :class:`~repro.dist.World` **or** a replayed
    timeline (:class:`~repro.perf.schedule.ReplayResult`): anything with a
    ``.clock``; without a traffic log the bound path reads the clock's
    exposure totals instead.
    """
    return DerivedOverlaps(
        dp=derive_overlap(world, DP_SYNC_PHASE, BACKWARD_PHASE),
        fsdp=derive_overlap(world, FSDP_GATHER_PHASE, FORWARD_PHASE),
        buckets=tuple(
            derive_bucket_exposures(world, DP_SYNC_PHASE)
            + derive_bucket_exposures(world, FSDP_GATHER_PHASE)
        ),
    )
