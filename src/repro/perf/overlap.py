"""Derive dp/fsdp communication-overlap fractions from virtual timelines.

The analytic model (:func:`~repro.perf.comm_model.estimate_step_comm`)
discounts DP and FSDP communication by an overlap fraction — the share a
real implementation hides under compute (bucketed DP gradient AllReduce
issued during backward; the next FSDP unit's AllGather prefetched during the
current unit's forward).  Those fractions used to be assumed constants
(0.8 / 0.5); this module derives them from the per-rank timelines a
virtual-clock run records.

Model: the blocking simulation serializes communication after compute, so a
rank's timeline exposes, per axis, the total collective wall-time ``C``
(phase-tagged traffic records, ``vend − vstart``) and the compute it could
hide under ``K`` (phase-tagged :class:`~repro.perf.clock.ComputeInterval`).
An eager overlapped schedule hides ``min(C, K)`` of the communication, so
the derived hidden fraction is ``min(C, K) / C``.

Phase conventions (stamped by the parallel wrappers):

========================  ==================================================
phase                     producer
========================  ==================================================
``"dp_sync"``             :meth:`repro.parallel.DataParallel.sync_gradients`
``"fsdp_gather"``         :class:`repro.parallel.FSDPModel` unit materialize
``"forward"``             compute charged by the wrappers' forward hooks
``"backward"``            compute charged before the DP gradient sync
========================  ==================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = [
    "DP_SYNC_PHASE",
    "FSDP_GATHER_PHASE",
    "FORWARD_PHASE",
    "BACKWARD_PHASE",
    "OverlapReport",
    "DerivedOverlaps",
    "phase_comm_seconds",
    "derive_overlap",
    "derive_overlaps",
]

DP_SYNC_PHASE = "dp_sync"
FSDP_GATHER_PHASE = "fsdp_gather"
FORWARD_PHASE = "forward"
BACKWARD_PHASE = "backward"


@dataclass(frozen=True)
class OverlapReport:
    """Derived overlap of one communication axis against one compute phase."""

    comm_phase: str
    compute_phase: str
    comm_seconds: float      # mean per-rank collective wall-time on the axis
    compute_seconds: float   # mean per-rank compute available to hide it
    overlap: float           # derived hidden fraction, min(C, K)/C in [0, 1]


@dataclass(frozen=True)
class DerivedOverlaps:
    """The pair :func:`~repro.perf.comm_model.estimate_step_comm` consumes."""

    dp: OverlapReport
    fsdp: OverlapReport

    @property
    def dp_overlap(self) -> float:
        return self.dp.overlap

    @property
    def fsdp_overlap(self) -> float:
        return self.fsdp.overlap


def phase_comm_seconds(world: Any, phase: str, rank: int) -> float:
    """One rank's summed collective wall-time (``vend − vstart``) in *phase*.

    Only virtual-clock-stamped records contribute; includes time spent
    waiting for stragglers (that wait is real exposure too).
    """
    return sum(
        r.vend - r.vstart
        for r in world.traffic.records()
        if r.rank == rank and r.phase == phase and r.vstart >= 0.0
    )


def derive_overlap(world: Any, comm_phase: str, compute_phase: str) -> OverlapReport:
    """Derive one axis' hidden fraction from a finished virtual-clock world.

    *world* is the :class:`~repro.dist.World` of a ``run_spmd(...,
    clock=VirtualClock(machine))`` run whose collectives were phase-tagged.
    Per-rank comm/compute seconds are averaged over the ranks that issued
    any communication in *comm_phase* (in a mesh world every rank does).
    """
    clock = getattr(world, "clock", None)
    if clock is None:
        raise ValueError("derive_overlap needs a world run with a virtual clock")
    per_rank: dict[int, float] = {}
    for r in world.traffic.records():
        if r.phase == comm_phase and r.vstart >= 0.0:
            per_rank[r.rank] = per_rank.get(r.rank, 0.0) + (r.vend - r.vstart)
    comm = sum(per_rank.values()) / len(per_rank) if per_rank else 0.0
    if comm <= 0.0:
        # No traffic in the phase — or only zero-duration records (size-1
        # groups log vstart == vend): nothing to hide, overlap 0.
        return OverlapReport(comm_phase, compute_phase, 0.0, 0.0, 0.0)
    compute = sum(
        clock.compute_seconds(rank=rank, phase=compute_phase) for rank in per_rank
    ) / len(per_rank)
    return OverlapReport(
        comm_phase=comm_phase,
        compute_phase=compute_phase,
        comm_seconds=comm,
        compute_seconds=compute,
        overlap=min(comm, compute) / comm,
    )


def derive_overlaps(world: Any) -> DerivedOverlaps:
    """Derive both fractions with the standard phase conventions.

    DP gradient AllReduce hides under backward compute; FSDP forward
    AllGathers hide under forward compute.  Axes with no traffic report
    overlap 0 — feeding that into :func:`estimate_step_comm` simply leaves
    the (absent) axis priced at zero anyway.
    """
    return DerivedOverlaps(
        dp=derive_overlap(world, DP_SYNC_PHASE, BACKWARD_PHASE),
        fsdp=derive_overlap(world, FSDP_GATHER_PHASE, FORWARD_PHASE),
    )
