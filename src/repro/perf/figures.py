"""Per-figure experiment constants.

The paper does not report the micro-batch used in each performance
experiment; these values were calibrated so the analytic models reproduce
every capacity statement in the text (see ``tests/test_paper_anchors.py``
and EXPERIMENTS.md).  Each figure bench imports its batch from here.
"""

from __future__ import annotations

__all__ = ["FIGURE_BATCH"]

FIGURE_BATCH: dict[str, int] = {
    "fig6": 8,        # single-GPU component analysis (100M/1B/3B)
    "fig7_1.7B": 8,   # TP memory sweep, 1.7B
    "fig7_7B": 12,    # TP memory sweep, 7B
    "fig8": 8,        # distributed tokenization, 1.7B
    "fig9": 8,        # tree sweep, 1.7B
    "fig13": 8,       # model-size scaling (7B/15B/26B)
    "fig14": 32,      # 26B memory wall
    "fig15": 16,      # hybrid combinations, 7B / 500 channels
    "fig16": 16,      # batch-size scaling, 7B / 500 channels
}
