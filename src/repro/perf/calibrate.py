"""Calibration harness: the analytic/measured contract, enforced.

Three layers of cross-checking between the α–β :class:`CostModel` and the
SPMD runtime driven with a :class:`VirtualClock`:

1. :func:`calibrate` — runs every ring collective through real
   :func:`~repro.dist.run_spmd` worlds (2/4/8 ranks, intra- and inter-node
   placements) and checks the traffic log's **measured wire bytes equal the
   CostModel prediction exactly**, and the virtual step time equals
   :func:`~repro.perf.comm_model.collective_time`.
2. :func:`fit_machine` — least-squares-fits α (latency/step) and β (1/bw)
   from (steps, wire, seconds) samples over a payload sweep and reports the
   residuals against the :class:`MachineSpec` constants.  The samples can
   come from two sources: **virtual** (the clock re-prices its own
   CostModel, so the fit recovers the spec to float precision — the
   two-layers-share-one-core proof) or **wall-clock**
   (:func:`wallclock_fit_samples`, real ``timeline=True`` timestamps of the
   threaded runtime on *this host*).  :func:`fit_machine_wallclock` turns a
   wall-clock fit into a host-calibrated :class:`MachineSpec`, and
   :func:`load_or_fit_machine` persists/loads it as JSON so the autotuner
   ranks plans with measured constants instead of paper ones.
3. :func:`measure_plan` — replays the exact
   :func:`~repro.perf.comm_model.step_comm_schedule` of a hybrid
   (tp × sp × fsdp × dp) plan through a real :class:`~repro.parallel.DeviceMesh`
   world, returning per-axis measured wire/seconds plus derived overlap
   fractions; the measured fig-15/16 benchmarks sweep factorizations
   through it.  With ``eager=True`` the replay runs on an **issue-queue
   clock**: FSDP gathers prefetch under forward compute and the DP gradient
   AllReduce is split into buckets issued *during* backward — the derived
   overlaps then come from per-bucket measured exposure instead of the
   ``min(comm, compute)`` bound.

Run the smoke check from a shell (the CI job does; nonzero exit on any
wire-parity or fit-residual violation)::

    python -m repro.perf.calibrate --ranks 4 --smoke
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from pathlib import Path

import numpy as np

from ..dist import run_spmd_world
from .clock import VirtualClock
from .comm_model import (
    CommBreakdown,
    axis_group_sizes,
    estimate_step_comm,
    step_comm_schedule,
)
from .cost import CostModel
from .flops import TRAIN_MULT, estimate_flops
from .machine import MachineSpec, frontier
from .modelcfg import ModelConfig
from .overlap import OVERLAP_PHASES, DerivedOverlaps, derive_overlaps, phase_comm_seconds
from .plan import ParallelPlan, Precision, Workload
from .throughput import batch_efficiency

__all__ = [
    "RING_OPS",
    "CalibrationRow",
    "CalibrationReport",
    "calibrate",
    "FitSample",
    "fit_link",
    "FittedLink",
    "fit_machine",
    "wallclock_fit_samples",
    "fit_machine_wallclock",
    "host_fingerprint",
    "load_or_fit_machine",
    "MeasuredComm",
    "measure_plan",
    "main",
]

#: The collectives whose wire accounting the analytic model prices.
RING_OPS = ("all_reduce", "all_gather", "reduce_scatter", "broadcast", "all_to_all")

#: Schedule axis → traffic phase stamped by the measured replay.  The sp
#: phases match what the live :mod:`repro.parallel.sp` wrapper stamps, so
#: the analytic/simulated/measured books reconcile against real SP worlds.
AXIS_PHASES = {
    "tp": "tp",
    "gather": "gather",
    "sp": "sp_a2a",
    "sp_gather": "sp_gather",
    "sp_scatter": "sp_scatter",
    "fsdp": "fsdp_gather",
    "dp": "dp_sync",
}

#: Axes whose collectives block on the critical path in the eager replay —
#: TP AllReduces, the channel gather and the Ulysses SP collectives all
#: produce activations the next op consumes immediately.
BLOCKING_AXES = ("tp", "gather", "sp", "sp_gather", "sp_scatter")


def _issue(comm, op: str, payload_bytes: int, group, scratch: dict | None = None) -> None:
    """Issue one collective with exactly *payload_bytes* of per-rank payload
    (uint8 buffers, so any integer byte count is representable).

    *scratch* is an optional per-rank buffer cache: input and ``out=``
    buffers are allocated once per (kind, size) and reused across the
    schedule, so a replay measures the runtime's steady-state data path
    (warm preallocated buffers, zero allocations per collective) instead of
    the allocator.  Pass ``None`` to allocate fresh buffers per collective.
    """
    n = group.size
    if op in ("reduce_scatter", "all_to_all") and payload_bytes % n != 0:
        raise ValueError(
            f"{op} payload {payload_bytes} not divisible by group size {n}: "
            "pick shapes whose payloads split evenly or the padded-collective "
            "convention breaks exact wire parity"
        )

    def buffer(kind: str, nbytes: int) -> np.ndarray:
        if scratch is None:
            return np.zeros(nbytes, dtype=np.uint8)
        key = (kind, nbytes)
        buf = scratch.get(key)
        if buf is None:
            buf = scratch[key] = np.zeros(nbytes, dtype=np.uint8)
        return buf

    buf = buffer("in", payload_bytes)
    reuse = scratch is not None
    if op == "all_reduce":
        comm.all_reduce(
            buf, group=group, out=buffer("out", payload_bytes) if reuse else None
        )
    elif op == "all_gather":
        outs = (
            [buffer(f"ag{i}", payload_bytes) for i in range(n)] if reuse else None
        )
        comm.all_gather(buf, group=group, out=outs)
    elif op == "reduce_scatter":
        comm.reduce_scatter(
            buf, group=group,
            out=buffer("rs", payload_bytes // n) if reuse else None,
        )
    elif op == "broadcast":
        root = group.ranks[0]
        comm.broadcast(
            buf if comm.rank == root else None, root=root, group=group,
            out=buffer("bc", payload_bytes) if reuse else None,
        )
    elif op == "all_to_all":
        outs = (
            [buffer(f"aa{i}", payload_bytes // n) for i in range(n)] if reuse else None
        )
        comm.all_to_all(np.split(buf, n), group=group, out=outs)
    else:
        raise ValueError(f"unknown ring collective {op!r}")


@dataclass(frozen=True)
class CalibrationRow:
    """One (op, world size, placement) cross-check."""

    op: str
    ranks: int
    intra_node: bool
    payload_bytes: int
    predicted_wire: int
    measured_wire: int
    predicted_seconds: float
    measured_seconds: float

    @property
    def wire_match(self) -> bool:
        return self.predicted_wire == self.measured_wire

    @property
    def time_residual(self) -> float:
        """Relative |measured − predicted| virtual seconds."""
        scale = max(abs(self.predicted_seconds), 1e-30)
        return abs(self.measured_seconds - self.predicted_seconds) / scale


@dataclass(frozen=True)
class CalibrationReport:
    machine: MachineSpec
    rows: list[CalibrationRow]

    @property
    def wire_exact(self) -> bool:
        return all(r.wire_match for r in self.rows)

    @property
    def max_time_residual(self) -> float:
        return max((r.time_residual for r in self.rows), default=0.0)

    @property
    def ok(self) -> bool:
        return self.wire_exact and self.max_time_residual < 1e-9


def _run_one(
    op: str, world_size: int, payload_bytes: int, machine: MachineSpec
) -> CalibrationRow:
    cost = CostModel(machine)
    clock = VirtualClock(machine)

    def fn(comm):
        _issue(comm, op, payload_bytes, comm.world.default_group)
        return comm.now()

    _, world = run_spmd_world(fn, world_size, clock=clock, timeout=60.0)
    intra = cost.intra_node(range(world_size))
    rec = next(r for r in world.traffic.records() if r.rank == 0 and r.op == op)
    return CalibrationRow(
        op=op,
        ranks=world_size,
        intra_node=intra,
        payload_bytes=payload_bytes,
        predicted_wire=cost.wire_bytes(op, rec.payload_bytes, world_size),
        measured_wire=world.traffic.wire_bytes(op=op, rank=0),
        predicted_seconds=cost.collective_seconds(
            op, rec.payload_bytes, world_size, intra
        ),
        measured_seconds=clock.elapsed(),
    )


def calibrate(
    world_sizes: tuple[int, ...] = (2, 4, 8),
    machine: MachineSpec | None = None,
    payload_bytes: int = 4096,
    store=None,
) -> CalibrationReport:
    """Cross-check every ring collective at every world size, both placements.

    The inter-node placement reuses the same machine with
    ``gpus_per_node = world_size // 2`` so the world's default group spans
    two simulated nodes.  ``store`` (a :class:`~repro.obs.store.SweepStore`
    or path) persists the matrix as a ``calibrate`` run — one
    wire-match/time-residual metric pair per (op, ranks, placement) row.
    """
    machine = machine if machine is not None else frontier()
    rows: list[CalibrationRow] = []
    for n in world_sizes:
        # Payload divisible by every group size keeps padded conventions exact.
        payload = payload_bytes - payload_bytes % n
        for spec in (machine, replace(machine, gpus_per_node=max(1, n // 2))):
            for op in RING_OPS:
                rows.append(_run_one(op, n, payload, spec))
    report = CalibrationReport(machine=machine, rows=rows)
    if store is not None:
        from ..obs.store import open_store  # local: obs imports this module

        handle = open_store(store)
        run_id = handle.record_run(
            "calibrate", machine.name, machine=machine.name,
            params={"world_sizes": list(world_sizes), "payload_bytes": payload_bytes},
        )
        for r in report.rows:
            link = "intra" if r.intra_node else "inter"
            handle.record_metric(
                run_id, f"wire_match/r{r.ranks}", float(r.wire_match),
                op=r.op, link=link, source="calibrate",
            )
            handle.record_metric(
                run_id, f"time_residual/r{r.ranks}", r.time_residual,
                op=r.op, link=link, source="calibrate",
            )
        if handle is not store:
            handle.close()
    return report


@dataclass(frozen=True)
class FitSample:
    """One (collective, payload) timing sample the α–β fit consumes.

    ``steps`` and ``wire_bytes`` are the CostModel features; ``seconds``
    the measured duration — virtual (clock-priced) or wall-clock
    (``timeline=True`` timestamps of the threaded runtime).
    """

    op: str
    steps: int
    wire_bytes: int
    seconds: float


@dataclass(frozen=True)
class FittedLink:
    """α–β constants recovered from measured samples of one link."""

    intra_node: bool
    alpha: float            # fitted seconds per latency step
    beta: float             # fitted seconds per wire byte
    spec_alpha: float       # MachineSpec latency
    spec_beta: float        # 1 / MachineSpec bandwidth
    rms_residual: float     # RMS of (measured − fitted) seconds
    mean_seconds: float = 0.0  # mean |sample| — the residual's scale

    @property
    def alpha_error(self) -> float:
        return abs(self.alpha - self.spec_alpha) / self.spec_alpha

    @property
    def beta_error(self) -> float:
        return abs(self.beta - self.spec_beta) / self.spec_beta

    @property
    def relative_residual(self) -> float:
        """RMS residual relative to the mean sample — the noise gate."""
        if not math.isfinite(self.rms_residual):
            return float("inf")
        if self.mean_seconds <= 0.0:
            return 0.0 if self.rms_residual == 0.0 else float("inf")
        return self.rms_residual / self.mean_seconds

    def within(self, tol: float) -> bool:
        """Whether the fit explains the samples to within *tol* (relative)."""
        return self.relative_residual <= tol

    def to_machine(self, base: MachineSpec | None = None, name: str | None = None) -> MachineSpec:
        """Bake the fitted constants into a :class:`MachineSpec`.

        The host a wall-clock fit measures has one fabric (Python threads),
        so both links get the fitted α and 1/β; non-positive fits (possible
        on tiny noisy sweeps) fall back to the spec constants rather than
        producing a spec that prices collectives backwards.
        """
        base = base if base is not None else frontier()
        alpha = self.alpha if self.alpha > 0.0 else self.spec_alpha
        beta = self.beta if self.beta > 0.0 else self.spec_beta
        bw = 1.0 / beta
        return replace(
            base,
            name=name if name is not None else f"{base.name}-fitted",
            intra_node_bw=bw,
            inter_node_bw_per_node=bw * base.gpus_per_node,
            intra_latency=alpha,
            inter_latency=alpha,
        )


def fit_link(
    samples: list[FitSample],
    spec_alpha: float,
    spec_beta: float,
    intra_node: bool = True,
) -> FittedLink:
    """Least-squares ``seconds = α·steps + β·wire`` over *samples*.

    Pure fitting — callers choose the sample source (virtual clock,
    wall-clock timeline, or synthetic noisy data in the residual tests).
    """
    if len(samples) < 2:
        raise ValueError(f"α–β fit needs at least 2 samples, got {len(samples)}")
    a = np.asarray([[s.steps, s.wire_bytes] for s in samples], dtype=np.float64)
    y = np.asarray([s.seconds for s in samples], dtype=np.float64)
    coef, _, _, _ = np.linalg.lstsq(a, y, rcond=None)
    resid = float(np.sqrt(np.mean((a @ coef - y) ** 2)))
    return FittedLink(
        intra_node=intra_node,
        alpha=float(coef[0]),
        beta=float(coef[1]),
        spec_alpha=spec_alpha,
        spec_beta=spec_beta,
        rms_residual=resid,
        mean_seconds=float(np.mean(np.abs(y))),
    )


def fit_machine(
    machine: MachineSpec | None = None,
    world_size: int = 4,
    payload_sweep: tuple[int, ...] = (1 << 10, 1 << 12, 1 << 14, 1 << 16),
    intra_node: bool = True,
) -> FittedLink:
    """Recover α and β by least squares over a *virtual* payload sweep.

    Samples come from real virtual-clock runs, so with the clock driving
    the same CostModel the fit recovers the :class:`MachineSpec` constants
    to float precision — the residual is the proof the two layers share one
    pricing core.  For *host* constants use :func:`fit_machine_wallclock`,
    which feeds real ``timeline=True`` timestamps through the same fit.
    """
    machine = machine if machine is not None else frontier()
    spec = machine if intra_node else replace(machine, gpus_per_node=max(1, world_size // 2))
    cost = CostModel(spec)
    samples: list[FitSample] = []
    for payload in payload_sweep:
        payload -= payload % world_size
        for op in RING_OPS:
            r = _run_one(op, world_size, payload, spec)
            samples.append(
                FitSample(
                    op=op,
                    steps=cost.latency_steps(op, world_size),
                    wire_bytes=r.measured_wire,
                    seconds=r.measured_seconds,
                )
            )
    bw, lat = cost.link(intra_node)
    return fit_link(samples, spec_alpha=lat, spec_beta=1.0 / bw, intra_node=intra_node)


#: Default payload sweep for wall-clock fits.  β (1/bandwidth) is only
#: identifiable when the largest payload's wire time rivals the host's
#: per-collective latency (~tens of µs of thread-rendezvous overhead), so
#: the sweep reaches 2 MiB; latency-only sweeps fit β as pure noise.
WALLCLOCK_PAYLOAD_SWEEP = (1 << 12, 1 << 18, 1 << 21)


def wallclock_fit_samples(
    world_size: int = 2,
    payload_sweep: tuple[int, ...] = WALLCLOCK_PAYLOAD_SWEEP,
    repeats: int = 3,
    machine: MachineSpec | None = None,
    timeout: float = 60.0,
) -> list[FitSample]:
    """Time every ring collective on *this host* via ``timeline=True`` runs.

    Each (op, payload) run issues one warm-up plus *repeats* collectives
    through a real :func:`~repro.dist.run_spmd` world with the traffic
    log's timeline mode on; a collective's wall duration is the spacing of
    consecutive completion marks (the max ``timestamp`` over the world's
    records for that slot — ranks log right after the rendezvous
    completes, and slot *k*'s records all precede slot *k+1*'s).  The
    CostModel features (steps, wire) come from *machine* (default
    :func:`frontier`), which shares the step/wire table with every spec.
    """
    machine = machine if machine is not None else frontier()
    cost = CostModel(machine)
    samples: list[FitSample] = []
    for payload in payload_sweep:
        payload -= payload % world_size
        for op in RING_OPS:

            def fn(comm, op=op, payload=payload):
                group = comm.world.default_group
                for _ in range(repeats + 1):  # first is the warm-up mark
                    _issue(comm, op, payload, group)
                return None

            _, world = run_spmd_world(fn, world_size, timeline=True, timeout=timeout)
            recs = world.traffic.records(op=op)
            marks = [
                max(r.timestamp for r in recs[k * world_size : (k + 1) * world_size])
                for k in range(repeats + 1)
            ]
            spacings = [b - a for a, b in zip(marks, marks[1:])]
            samples.append(
                FitSample(
                    op=op,
                    steps=cost.latency_steps(op, world_size),
                    wire_bytes=cost.wire_bytes(op, payload, world_size),
                    seconds=max(0.0, sum(spacings) / len(spacings)),
                )
            )
    return samples


def fit_machine_wallclock(
    base: MachineSpec | None = None,
    world_size: int = 2,
    payload_sweep: tuple[int, ...] = WALLCLOCK_PAYLOAD_SWEEP,
    repeats: int = 3,
    name: str | None = None,
) -> tuple[MachineSpec, FittedLink]:
    """Fit a **host-calibrated** :class:`MachineSpec` from wall-clock runs.

    Returns ``(spec, fit)``: the spec carries the fitted α (latency/step)
    and 1/β (bandwidth) on both links — the simulated host has one fabric —
    with every non-link field inherited from *base*.  Persist it with
    ``spec.save(path)`` (or use :func:`load_or_fit_machine`) and hand it to
    the autotuner in place of the paper constants.
    """
    base = base if base is not None else frontier()
    samples = wallclock_fit_samples(
        world_size=world_size, payload_sweep=payload_sweep, repeats=repeats, machine=base
    )
    cost = CostModel(base)
    bw, lat = cost.link(True)
    fit = fit_link(samples, spec_alpha=lat, spec_beta=1.0 / bw, intra_node=True)
    return fit.to_machine(base, name=name if name is not None else "host-calibrated"), fit


def host_fingerprint() -> dict:
    """Identity of the machine a wall-clock fit measured.

    A stored spec is only as good as the host it was fitted on; these are
    the fields whose drift invalidates it (interpreter and CPU changes move
    the thread-rendezvous constants the fit absorbed into α/β).
    """
    import os
    import platform

    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "cpus": os.cpu_count() or 1,
    }


def _meta_path(path: Path) -> Path:
    return path.with_name(path.name + ".meta.json")


def load_or_fit_machine(
    path,
    base: MachineSpec | None = None,
    max_residual: float | None = None,
    check_host: bool = True,
    **fit_kwargs,
) -> MachineSpec:
    """Load a persisted host-calibrated spec, fitting and saving on a miss
    — or when the stored calibration has gone **stale**.

    The autotuner entry point: ``search_configurations(...,
    machine=load_or_fit_machine("runs/machine.json"))`` ranks every plan
    with this host's measured α/β instead of the paper constants.  Loading
    is a bitwise field round-trip, so rankings computed from a loaded spec
    are identical to rankings computed from the spec that was saved.

    Freshness: every fit writes a ``<path>.meta.json`` sidecar carrying the
    :func:`host_fingerprint` and the fit's relative residual.  A stored
    spec is re-fitted (and re-saved) when ``check_host`` is on and the
    fingerprint no longer matches this host, or when ``max_residual`` is
    given and the **stored** residual exceeds it (the fit never explained
    its own samples well enough to trust).  A spec with no sidecar — e.g.
    hand-written or produced by :meth:`MachineSpec.save` directly — is
    treated as deliberately pinned and loaded as-is.
    """
    import json

    p = Path(path)
    meta_p = _meta_path(p)
    if p.exists():
        stale = None
        if meta_p.exists():
            try:
                meta = json.loads(meta_p.read_text())
            except (OSError, ValueError):
                meta = {}
            if check_host and meta.get("fingerprint") != host_fingerprint():
                stale = "host fingerprint drifted"
            elif (
                max_residual is not None
                and float(meta.get("relative_residual", 0.0)) > max_residual
            ):
                stale = (
                    f"stored fit residual {meta.get('relative_residual')} "
                    f"exceeds {max_residual}"
                )
        if stale is None:
            return MachineSpec.load(p)
    spec, fit = fit_machine_wallclock(base=base, **fit_kwargs)
    spec.save(p)
    meta_p.write_text(
        json.dumps(
            {
                "fingerprint": host_fingerprint(),
                "relative_residual": fit.relative_residual,
                "rms_residual": fit.rms_residual,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
    return spec


@dataclass(frozen=True)
class MeasuredComm:
    """One plan's step replayed through a real DeviceMesh world."""

    plan: ParallelPlan
    world_size: int
    wire: dict[str, int]          # per-rank measured wire bytes by axis, per step
    seconds: dict[str, float]     # per-rank measured collective seconds by axis, per step
    step_seconds: float           # virtual makespan per step (compute + exposed comm)
    overlaps: DerivedOverlaps
    predicted: CommBreakdown      # analytic, overlap 0 (raw comm)
    eager: bool = False           # issue-queue replay (overlaps are measured)
    n_steps: int = 1              # steps the world actually ran
    rank_times: tuple[float, ...] = ()  # final per-rank virtual clocks (whole run)
    schedule: object | None = None  # CapturedSchedule when capture=True
    world: object | None = None     # the finished World when keep_world=True

    @property
    def comm_seconds(self) -> float:
        return sum(self.seconds.values())

    def wire_matches_predicted(self) -> bool:
        return all(
            self.wire.get(axis, 0) == predicted
            for axis, predicted in self.predicted.wire_by_axis().items()
        )


def _dp_bucket_payloads(payload: int, group_size: int, buckets: int) -> list[int]:
    """Split a DP AllReduce payload into bucket payloads, wire-exactly.

    Ring wire volume is ``2·(n−1)·p // n`` — linear in *p* only when every
    bucket stays divisible by *n*, so chunks are floored to multiples of
    the group size and the remainder rides the last bucket.  Payloads that
    cannot split exactly (not divisible by *n*, or smaller than one chunk
    per bucket) stay whole: parity with the unsplit analytic prediction
    beats bucketing fidelity.
    """
    if buckets <= 1 or group_size <= 1 or payload % group_size:
        return [payload]
    base = (payload // buckets) // group_size * group_size
    if base <= 0:
        return [payload]
    chunks = [base] * (buckets - 1)
    chunks.append(payload - base * (buckets - 1))
    return chunks


def measure_plan(
    model: ModelConfig,
    workload: Workload,
    plan: ParallelPlan,
    machine: MachineSpec | None = None,
    precision: Precision = Precision(),
    timeout: float = 90.0,
    eager: bool = False,
    dp_buckets: int = 4,
    compute_scale: float = 1.0,
    cap_dp_buckets: bool = True,
    workspace: dict | None = None,
    n_steps: int = 1,
    capture: bool = False,
    keep_world: bool = False,
    store=None,
    store_name: str | None = None,
) -> MeasuredComm:
    """Replay one step's collective schedule through a real SPMD world.

    The world is factored by a :class:`~repro.parallel.DeviceMesh` exactly
    as the plan prescribes (TP innermost); each rank issues the events of
    :func:`step_comm_schedule` on its own mesh groups, phase-tagged per
    axis, with forward/backward compute charged around them (⅓ / ⅔ of the
    plan's step FLOPs at the plan's batch efficiency).  Returns measured
    per-axis wire/seconds — comparable byte-for-byte with
    :func:`estimate_step_comm` — plus overlap fractions derived from the
    run's own timelines.

    ``eager=False`` (default) keeps the blocking replay: communication
    serializes after compute, measured collective seconds equal the
    analytic un-overlapped total, and the derived overlaps are the
    ``min(comm, compute)`` bound.  ``eager=True`` runs the schedule the way
    an overlapped implementation would, on an issue-queue clock:

    * TP, channel-gather and Ulysses SP collectives stay blocking
      (critical path);
    * FSDP gathers are dispatched eagerly, each *before* a slice of
      forward compute (prefetch under the current unit's work);
    * the FSDP gradient ReduceScatter and the DP AllReduce — the latter
      split into ``dp_buckets`` wire-exact buckets — are dispatched during
      backward, each *after* the compute slice that produced its gradients
      (bucketed-DDP scheduling).

    Exposure is whatever the end-of-step drain cannot hide, so
    ``overlaps`` carries **measured per-bucket** fractions
    (:class:`~repro.perf.overlap.BucketExposure`) and ``step_seconds`` is
    the overlapped makespan.  Wire accounting is identical in both modes.

    ``compute_scale`` multiplies the charged forward/backward seconds — the
    knob :func:`repro.perf.autotune.simulated_overlaps` uses to make a
    scaled-down stand-in world reproduce the *real* plan's compute/comm
    balance (overlap fractions depend on exactly that ratio).

    ``workspace`` is an optional caller-held dict that carries each rank's
    replay buffers across calls: a sweep (or a benchmark loop) that replays
    many plans reuses warm preallocated buffers instead of first-touching
    a fresh working set per world.  Results are unaffected — only the
    allocator traffic changes.

    ``n_steps`` repeats the step body that many times in one world (the
    reported ``wire``/``seconds``/``step_seconds`` stay **per step**;
    ``rank_times`` carries the whole run's final per-rank clocks).
    ``capture=True`` records the run on a schedule-capturing clock and
    attaches the lowered :class:`~repro.perf.schedule.CapturedSchedule` —
    the entry point of the record → replay pipeline (capture one step,
    then :func:`repro.perf.schedule.replay` advances it arbitrarily many
    steps as pure event arithmetic).

    ``keep_world=True`` attaches the finished world to the result — the
    observability layer reads its clock intervals and traffic log
    (:func:`repro.obs.commvol.comm_volume_report`,
    :func:`repro.obs.trace.chrome_trace`).  ``store`` (a
    :class:`~repro.obs.store.SweepStore` or a path) persists the
    measurement as a ``measure`` run named ``store_name`` (default: the
    plan label).
    """
    from ..parallel.mesh import DeviceMesh  # runtime import: parallel pulls nn

    if n_steps < 1:
        raise ValueError(f"n_steps must be >= 1, got {n_steps}")
    machine = machine if machine is not None else frontier()
    events = step_comm_schedule(model, workload, plan, precision)
    own = TRAIN_MULT * estimate_flops(model, workload, plan).total
    compute = own / (machine.peak_flops * batch_efficiency(machine, workload.batch))
    compute *= float(compute_scale)
    fwd_seconds, bwd_seconds = compute / 3.0, 2.0 * compute / 3.0
    clock = VirtualClock(
        machine, eager_phases=OVERLAP_PHASES if eager else None, capture=capture
    )

    def fn(comm):
        mesh = DeviceMesh(comm, tp=plan.tp, sp=plan.sp, fsdp=plan.fsdp, dp=plan.dp)
        groups = {
            "tp": mesh.tp_group,
            "gather": mesh.tp_group,
            "sp": mesh.sp_group,
            "sp_gather": mesh.sp_group,
            "sp_scatter": mesh.sp_group,
            "fsdp": mesh.fsdp_group,
            "dp": mesh.dp_group,
        }
        # Per-rank buffer cache: the replay reuses warm input/out buffers
        # across the schedule, measuring the runtime's steady-state data
        # path rather than the host allocator.  A caller-held *workspace*
        # extends the reuse across worlds (sweeps, benchmark repetitions).
        scratch: dict = {} if workspace is None else workspace.setdefault(comm.rank, {})

        def blocking_step():
            comm.charge_compute(fwd_seconds, phase="forward")
            for ev in events:
                if ev.axis == "dp":
                    continue
                with comm.phase_scope(AXIS_PHASES[ev.axis]):
                    for _ in range(ev.count):
                        _issue(comm, ev.op, ev.payload_bytes, groups[ev.axis], scratch)
            comm.charge_compute(bwd_seconds, phase="backward")
            for ev in events:
                if ev.axis != "dp":
                    continue
                with comm.phase_scope(AXIS_PHASES["dp"]):
                    for _ in range(ev.count):
                        _issue(comm, ev.op, ev.payload_bytes, groups["dp"], scratch)

        def eager_step():
            # Critical-path collectives first: TP AllReduces, the channel
            # gather and the Ulysses SP collectives block exactly as in a
            # Megatron-style implementation.
            for ev in events:
                if ev.axis in BLOCKING_AXES:
                    with comm.phase_scope(AXIS_PHASES[ev.axis]):
                        for _ in range(ev.count):
                            _issue(comm, ev.op, ev.payload_bytes, groups[ev.axis], scratch)
            # Forward: dispatch each FSDP gather, then hide it under the next
            # slice of forward compute (the prefetch schedule).
            gathers = [
                ev
                for ev in events
                if ev.axis == "fsdp" and ev.op == "all_gather"
                for _ in range(ev.count)
            ]
            if gathers:
                per = fwd_seconds / len(gathers)
                for ev in gathers:
                    with comm.phase_scope(AXIS_PHASES["fsdp"]):
                        _issue(comm, ev.op, ev.payload_bytes, groups["fsdp"], scratch)
                    comm.charge_compute(per, phase="forward")
            else:
                comm.charge_compute(fwd_seconds, phase="forward")
            # Backward: each gradient collective is ready only after its slice
            # of backward compute — charge first, then dispatch (bucketed DDP).
            issues: list[tuple[str, str, int]] = []
            for ev in events:
                if ev.axis == "fsdp" and ev.op != "all_gather":
                    issues.extend(("fsdp", ev.op, ev.payload_bytes) for _ in range(ev.count))
                elif ev.axis == "dp":
                    for _ in range(ev.count):
                        if ev.op == "all_reduce":
                            # Callers simulating a *scaled-down* stand-in world
                            # disable the cap and pass the bucket count the
                            # real plan's volume/latency ratio justifies (see
                            # ``simulated_overlaps``).
                            cost, n = clock.cost, groups["dp"].size
                            k = dp_buckets
                            if cap_dp_buckets:
                                k = cost.bucket_cap(
                                    ev.op,
                                    ev.payload_bytes,
                                    n,
                                    cost.intra_node(groups["dp"].ranks),
                                    dp_buckets,
                                )
                            issues.extend(
                                ("dp", ev.op, p)
                                for p in _dp_bucket_payloads(
                                    ev.payload_bytes, n, k
                                )
                            )
                        else:
                            issues.append(("dp", ev.op, ev.payload_bytes))
            per = bwd_seconds / max(1, len(issues))
            if not issues:
                comm.charge_compute(bwd_seconds, phase="backward")
            for axis, op, payload in issues:
                comm.charge_compute(per, phase="backward")
                with comm.phase_scope(AXIS_PHASES[axis]):
                    _issue(comm, op, payload, groups[axis], scratch)
            # The end-of-step drain charges whatever exposure the schedule
            # failed to hide (run_spmd finalizes each rank too, but the
            # explicit drain marks the optimizer boundary inside the step —
            # and is captured, so a replayed step settles at the same point).
            comm.drain_comm()

        step = eager_step if eager else blocking_step
        for _ in range(n_steps):
            step()
        return comm.now()

    _, world = run_spmd_world(fn, plan.total_gpus, clock=clock, timeout=timeout)
    sizes = axis_group_sizes(plan)
    wire = {
        axis: world.traffic.wire_bytes(phase=phase, rank=0) // n_steps
        for axis, phase in AXIS_PHASES.items()
        if sizes[axis] > 1
    }
    seconds = {
        axis: phase_comm_seconds(world, phase, rank=0) / n_steps
        for axis, phase in AXIS_PHASES.items()
        if sizes[axis] > 1
    }
    predicted = estimate_step_comm(
        model, workload, plan, machine, precision, dp_overlap=0.0, fsdp_overlap=0.0
    )
    result = MeasuredComm(
        plan=plan,
        world_size=plan.total_gpus,
        wire=wire,
        seconds=seconds,
        step_seconds=clock.elapsed() / n_steps,
        overlaps=derive_overlaps(world),
        predicted=predicted,
        eager=eager,
        n_steps=n_steps,
        rank_times=tuple(clock.times()),
        schedule=clock.schedule() if capture else None,
        world=world if keep_world else None,
    )
    if store is not None:
        _store_measured(store, result, machine, store_name)
    return result


def _store_measured(
    store, result: MeasuredComm, machine: MachineSpec, name: str | None
) -> None:
    """Persist one measurement as a ``measure`` run in a sweep store."""
    from ..obs.store import open_store  # local: obs imports this module

    handle = open_store(store)
    run_id = handle.record_run(
        "measure",
        name if name is not None else result.plan.label,
        machine=machine.name,
        params={
            "world_size": result.world_size,
            "eager": result.eager,
            "n_steps": result.n_steps,
        },
    )
    handle.record_metric(run_id, "step_seconds", result.step_seconds, unit="s")
    handle.record_metric(run_id, "dp_overlap", result.overlaps.dp_overlap)
    handle.record_metric(run_id, "fsdp_overlap", result.overlaps.fsdp_overlap)
    for axis, wire_bytes in result.wire.items():
        handle.record_metric(
            run_id, f"wire/{axis}", wire_bytes, unit="B", source="measured"
        )
    for axis, secs in result.seconds.items():
        handle.record_metric(
            run_id, f"seconds/{axis}", secs, unit="s", source="measured"
        )
    if handle is not store:  # we opened a path — close our handle
        handle.close()


def main(argv: list[str] | None = None) -> int:
    """CLI: run the calibration matrix and print per-op residuals.

    Exits nonzero whenever wire-byte parity, virtual-time residuals or fit
    residuals exceed tolerance — the CI gate.  ``--smoke`` shortens the
    sweeps but **still gates everything**; ``--fit-host PATH`` additionally
    wall-clock-fits this host's α/β, persists the calibrated
    :class:`MachineSpec` as JSON at PATH, and gates on the fit's relative
    residual (``--fit-tol``).
    """
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--ranks", type=int, nargs="+", default=[2, 4],
                        help="world sizes to calibrate at")
    parser.add_argument("--payload", type=int, default=4096, help="payload bytes")
    parser.add_argument("--smoke", action="store_true",
                        help="smallest quick pass (2 and 4 ranks, short fit sweep)")
    parser.add_argument("--fit-host", metavar="PATH", default=None,
                        help="wall-clock-fit this host's alpha/beta and save the "
                             "calibrated MachineSpec JSON at PATH")
    parser.add_argument("--fit-tol", type=float, default=0.5,
                        help="max relative RMS residual for the host fit (default 0.5 "
                             "— threaded wall timings are noisy)")
    args = parser.parse_args(argv)

    failures = 0
    sizes = tuple(args.ranks) if not args.smoke else tuple(r for r in args.ranks if r <= 4)
    report = calibrate(world_sizes=sizes or (2, 4), payload_bytes=args.payload)
    header = f"{'op':<16}{'ranks':>6}{'placement':>12}{'wire ok':>9}{'time resid':>12}"
    print(f"calibration on {report.machine.name} (payload {args.payload} B)")
    print(header)
    print("-" * len(header))
    for r in report.rows:
        place = "intra" if r.intra_node else "inter"
        print(
            f"{r.op:<16}{r.ranks:>6}{place:>12}"
            f"{'yes' if r.wire_match else 'NO':>9}{r.time_residual:>12.2e}"
        )
    if not report.ok:
        print("FAIL: measured traffic diverges from the CostModel")
        failures = 1
    # The virtual fit gate always runs (smoke shrinks the sweep): recovering
    # the MachineSpec constants to float precision is the proof the runtime
    # and the analytic layer share one pricing core.
    sweep = (1 << 10, 1 << 13) if args.smoke else (1 << 10, 1 << 12, 1 << 14, 1 << 16)
    for intra in (True, False):
        fit = fit_machine(payload_sweep=sweep, intra_node=intra)
        place = "intra" if intra else "inter"
        print(
            f"fitted {place}: alpha {fit.alpha:.3e}s (spec {fit.spec_alpha:.3e}), "
            f"beta {fit.beta:.3e}s/B (spec {fit.spec_beta:.3e}), "
            f"rms residual {fit.rms_residual:.2e}"
        )
        if fit.alpha_error > 1e-6 or fit.beta_error > 1e-6 or not math.isfinite(fit.rms_residual):
            print("FAIL: fitted constants diverge from MachineSpec")
            failures = 1
    if args.fit_host:
        spec, fit = fit_machine_wallclock()
        spec.save(args.fit_host)
        print(
            f"host fit -> {args.fit_host}: alpha {spec.intra_latency:.3e}s, "
            f"bw {spec.intra_node_bw:.3e} B/s, "
            f"relative residual {fit.relative_residual:.2f}"
        )
        if fit.alpha <= 0.0 or fit.beta <= 0.0:
            # to_machine already substituted the spec constant for the
            # degenerate coefficient — say so rather than letting a paper
            # number masquerade as a measurement.
            which = "alpha" if fit.alpha <= 0.0 else "beta (bandwidth)"
            print(
                f"WARNING: fitted {which} was non-positive — unidentifiable at "
                f"this payload sweep; the saved spec keeps the unmeasured "
                f"MachineSpec constant for it"
            )
        if not fit.within(args.fit_tol):
            print(
                f"FAIL: host fit residual {fit.relative_residual:.2f} exceeds "
                f"tolerance {args.fit_tol:.2f}"
            )
            failures = 1
    if failures:
        return failures
    print(f"OK: wire bytes exact, max time residual {report.max_time_residual:.2e}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised by the CI smoke job
    raise SystemExit(main())
