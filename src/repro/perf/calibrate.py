"""Calibration harness: the analytic/measured contract, enforced.

Three layers of cross-checking between the α–β :class:`CostModel` and the
SPMD runtime driven with a :class:`VirtualClock`:

1. :func:`calibrate` — runs every ring collective through real
   :func:`~repro.dist.run_spmd` worlds (2/4/8 ranks, intra- and inter-node
   placements) and checks the traffic log's **measured wire bytes equal the
   CostModel prediction exactly**, and the virtual step time equals
   :func:`~repro.perf.comm_model.collective_time`.
2. :func:`fit_machine` — least-squares-fits α (latency/step) and β (1/bw)
   from (steps, wire, seconds) samples over a payload sweep and reports the
   residuals against the :class:`MachineSpec` constants — the hook for
   tightening specs against *real* timestamps later (timeline mode).
3. :func:`measure_plan` — replays the exact
   :func:`~repro.perf.comm_model.step_comm_schedule` of a hybrid
   (tp × fsdp × dp) plan through a real :class:`~repro.parallel.DeviceMesh`
   world, returning per-axis measured wire/seconds plus derived overlap
   fractions; the measured fig-15/16 benchmarks sweep factorizations
   through it.

Run the smoke check from a shell (the CI job does)::

    python -m repro.perf.calibrate --ranks 4 --smoke
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np

from ..dist import run_spmd_world
from .clock import VirtualClock
from .comm_model import (
    CommBreakdown,
    axis_group_sizes,
    estimate_step_comm,
    step_comm_schedule,
)
from .cost import CostModel
from .flops import TRAIN_MULT, estimate_flops
from .machine import MachineSpec, frontier
from .modelcfg import ModelConfig
from .overlap import DerivedOverlaps, derive_overlaps, phase_comm_seconds
from .plan import ParallelPlan, Precision, Workload
from .throughput import batch_efficiency

__all__ = [
    "RING_OPS",
    "CalibrationRow",
    "CalibrationReport",
    "calibrate",
    "FittedLink",
    "fit_machine",
    "MeasuredComm",
    "measure_plan",
    "main",
]

#: The collectives whose wire accounting the analytic model prices.
RING_OPS = ("all_reduce", "all_gather", "reduce_scatter", "broadcast", "all_to_all")

#: Schedule axis → traffic phase stamped by the measured replay.
AXIS_PHASES = {"tp": "tp", "gather": "gather", "fsdp": "fsdp_gather", "dp": "dp_sync"}


def _issue(comm, op: str, payload_bytes: int, group) -> None:
    """Issue one collective with exactly *payload_bytes* of per-rank payload
    (uint8 buffers, so any integer byte count is representable)."""
    n = group.size
    if op in ("reduce_scatter", "all_to_all") and payload_bytes % n != 0:
        raise ValueError(
            f"{op} payload {payload_bytes} not divisible by group size {n}: "
            "pick shapes whose payloads split evenly or the padded-collective "
            "convention breaks exact wire parity"
        )
    buf = np.zeros(payload_bytes, dtype=np.uint8)
    if op == "all_reduce":
        comm.all_reduce(buf, group=group)
    elif op == "all_gather":
        comm.all_gather(buf, group=group)
    elif op == "reduce_scatter":
        comm.reduce_scatter(buf, group=group)
    elif op == "broadcast":
        root = group.ranks[0]
        comm.broadcast(buf if comm.rank == root else None, root=root, group=group)
    elif op == "all_to_all":
        comm.all_to_all(np.split(buf, n), group=group)
    else:
        raise ValueError(f"unknown ring collective {op!r}")


@dataclass(frozen=True)
class CalibrationRow:
    """One (op, world size, placement) cross-check."""

    op: str
    ranks: int
    intra_node: bool
    payload_bytes: int
    predicted_wire: int
    measured_wire: int
    predicted_seconds: float
    measured_seconds: float

    @property
    def wire_match(self) -> bool:
        return self.predicted_wire == self.measured_wire

    @property
    def time_residual(self) -> float:
        """Relative |measured − predicted| virtual seconds."""
        scale = max(abs(self.predicted_seconds), 1e-30)
        return abs(self.measured_seconds - self.predicted_seconds) / scale


@dataclass(frozen=True)
class CalibrationReport:
    machine: MachineSpec
    rows: list[CalibrationRow]

    @property
    def wire_exact(self) -> bool:
        return all(r.wire_match for r in self.rows)

    @property
    def max_time_residual(self) -> float:
        return max((r.time_residual for r in self.rows), default=0.0)

    @property
    def ok(self) -> bool:
        return self.wire_exact and self.max_time_residual < 1e-9


def _run_one(
    op: str, world_size: int, payload_bytes: int, machine: MachineSpec
) -> CalibrationRow:
    cost = CostModel(machine)
    clock = VirtualClock(machine)

    def fn(comm):
        _issue(comm, op, payload_bytes, comm.world.default_group)
        return comm.now()

    _, world = run_spmd_world(fn, world_size, clock=clock, timeout=60.0)
    intra = cost.intra_node(range(world_size))
    rec = next(r for r in world.traffic.records() if r.rank == 0 and r.op == op)
    return CalibrationRow(
        op=op,
        ranks=world_size,
        intra_node=intra,
        payload_bytes=payload_bytes,
        predicted_wire=cost.wire_bytes(op, rec.payload_bytes, world_size),
        measured_wire=world.traffic.wire_bytes(op=op, rank=0),
        predicted_seconds=cost.collective_seconds(
            op, rec.payload_bytes, world_size, intra
        ),
        measured_seconds=clock.elapsed(),
    )


def calibrate(
    world_sizes: tuple[int, ...] = (2, 4, 8),
    machine: MachineSpec | None = None,
    payload_bytes: int = 4096,
) -> CalibrationReport:
    """Cross-check every ring collective at every world size, both placements.

    The inter-node placement reuses the same machine with
    ``gpus_per_node = world_size // 2`` so the world's default group spans
    two simulated nodes.
    """
    machine = machine if machine is not None else frontier()
    rows: list[CalibrationRow] = []
    for n in world_sizes:
        # Payload divisible by every group size keeps padded conventions exact.
        payload = payload_bytes - payload_bytes % n
        for spec in (machine, replace(machine, gpus_per_node=max(1, n // 2))):
            for op in RING_OPS:
                rows.append(_run_one(op, n, payload, spec))
    return CalibrationReport(machine=machine, rows=rows)


@dataclass(frozen=True)
class FittedLink:
    """α–β constants recovered from measured samples of one link."""

    intra_node: bool
    alpha: float            # fitted seconds per latency step
    beta: float             # fitted seconds per wire byte
    spec_alpha: float       # MachineSpec latency
    spec_beta: float        # 1 / MachineSpec bandwidth
    rms_residual: float     # RMS of (measured − fitted) seconds

    @property
    def alpha_error(self) -> float:
        return abs(self.alpha - self.spec_alpha) / self.spec_alpha

    @property
    def beta_error(self) -> float:
        return abs(self.beta - self.spec_beta) / self.spec_beta


def fit_machine(
    machine: MachineSpec | None = None,
    world_size: int = 4,
    payload_sweep: tuple[int, ...] = (1 << 10, 1 << 12, 1 << 14, 1 << 16),
    intra_node: bool = True,
) -> FittedLink:
    """Recover α and β by least squares over a payload sweep.

    ``seconds = α·steps + β·wire`` is linear in (steps, wire); samples come
    from real virtual-clock runs, so with the clock driving the same
    CostModel the fit recovers the :class:`MachineSpec` constants to float
    precision — the residual is the proof the two layers share one pricing
    core.  Plug wall-clock timestamps in instead (timeline mode) to fit
    constants for the *host* machine.
    """
    machine = machine if machine is not None else frontier()
    spec = machine if intra_node else replace(machine, gpus_per_node=max(1, world_size // 2))
    cost = CostModel(spec)
    rows = []
    seconds = []
    for payload in payload_sweep:
        payload -= payload % world_size
        for op in RING_OPS:
            r = _run_one(op, world_size, payload, spec)
            rows.append([cost.latency_steps(op, world_size), r.measured_wire])
            seconds.append(r.measured_seconds)
    a = np.asarray(rows, dtype=np.float64)
    y = np.asarray(seconds, dtype=np.float64)
    coef, _, _, _ = np.linalg.lstsq(a, y, rcond=None)
    alpha, beta = float(coef[0]), float(coef[1])
    resid = float(np.sqrt(np.mean((a @ coef - y) ** 2)))
    bw, lat = cost.link(intra_node)
    return FittedLink(
        intra_node=intra_node,
        alpha=alpha,
        beta=beta,
        spec_alpha=lat,
        spec_beta=1.0 / bw,
        rms_residual=resid,
    )


@dataclass(frozen=True)
class MeasuredComm:
    """One plan's step replayed through a real DeviceMesh world."""

    plan: ParallelPlan
    world_size: int
    wire: dict[str, int]          # per-rank measured wire bytes by axis
    seconds: dict[str, float]     # per-rank measured collective seconds by axis
    step_seconds: float           # virtual makespan (compute + exposed comm)
    overlaps: DerivedOverlaps
    predicted: CommBreakdown      # analytic, overlap 0 (raw comm)

    @property
    def comm_seconds(self) -> float:
        return sum(self.seconds.values())

    def wire_matches_predicted(self) -> bool:
        return all(
            self.wire.get(axis, 0) == predicted
            for axis, predicted in self.predicted.wire_by_axis().items()
        )


def measure_plan(
    model: ModelConfig,
    workload: Workload,
    plan: ParallelPlan,
    machine: MachineSpec | None = None,
    precision: Precision = Precision(),
    timeout: float = 90.0,
) -> MeasuredComm:
    """Replay one step's collective schedule through a real SPMD world.

    The world is factored by a :class:`~repro.parallel.DeviceMesh` exactly
    as the plan prescribes (TP innermost); each rank issues the events of
    :func:`step_comm_schedule` on its own mesh groups, phase-tagged per
    axis, with forward/backward compute charged around them (⅓ / ⅔ of the
    plan's step FLOPs at the plan's batch efficiency).  Returns measured
    per-axis wire/seconds — comparable byte-for-byte with
    :func:`estimate_step_comm` — plus overlap fractions derived from the
    run's own timelines.
    """
    from ..parallel.mesh import DeviceMesh  # runtime import: parallel pulls nn

    machine = machine if machine is not None else frontier()
    events = step_comm_schedule(model, workload, plan, precision)
    own = TRAIN_MULT * estimate_flops(model, workload, plan).total
    compute = own / (machine.peak_flops * batch_efficiency(machine, workload.batch))
    fwd_seconds, bwd_seconds = compute / 3.0, 2.0 * compute / 3.0
    clock = VirtualClock(machine)

    def fn(comm):
        mesh = DeviceMesh(comm, tp=plan.tp, fsdp=plan.fsdp, dp=plan.dp)
        groups = {
            "tp": mesh.tp_group,
            "gather": mesh.tp_group,
            "fsdp": mesh.fsdp_group,
            "dp": mesh.dp_group,
        }
        comm.charge_compute(fwd_seconds, phase="forward")
        for ev in events:
            if ev.axis == "dp":
                continue
            with comm.phase_scope(AXIS_PHASES[ev.axis]):
                for _ in range(ev.count):
                    _issue(comm, ev.op, ev.payload_bytes, groups[ev.axis])
        comm.charge_compute(bwd_seconds, phase="backward")
        for ev in events:
            if ev.axis != "dp":
                continue
            with comm.phase_scope(AXIS_PHASES["dp"]):
                for _ in range(ev.count):
                    _issue(comm, ev.op, ev.payload_bytes, groups["dp"])
        return comm.now()

    _, world = run_spmd_world(fn, plan.total_gpus, clock=clock, timeout=timeout)
    sizes = axis_group_sizes(plan)
    wire = {
        axis: world.traffic.wire_bytes(phase=phase, rank=0)
        for axis, phase in AXIS_PHASES.items()
        if sizes[axis] > 1
    }
    seconds = {
        axis: phase_comm_seconds(world, phase, rank=0)
        for axis, phase in AXIS_PHASES.items()
        if sizes[axis] > 1
    }
    predicted = estimate_step_comm(
        model, workload, plan, machine, precision, dp_overlap=0.0, fsdp_overlap=0.0
    )
    return MeasuredComm(
        plan=plan,
        world_size=plan.total_gpus,
        wire=wire,
        seconds=seconds,
        step_seconds=clock.elapsed(),
        overlaps=derive_overlaps(world),
        predicted=predicted,
    )


def main(argv: list[str] | None = None) -> int:
    """CLI: run the calibration matrix and print per-op residuals."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--ranks", type=int, nargs="+", default=[2, 4],
                        help="world sizes to calibrate at")
    parser.add_argument("--payload", type=int, default=4096, help="payload bytes")
    parser.add_argument("--smoke", action="store_true",
                        help="smallest quick pass (2 and 4 ranks, skip the fit sweep)")
    args = parser.parse_args(argv)

    sizes = tuple(args.ranks) if not args.smoke else tuple(r for r in args.ranks if r <= 4)
    report = calibrate(world_sizes=sizes or (2, 4), payload_bytes=args.payload)
    header = f"{'op':<16}{'ranks':>6}{'placement':>12}{'wire ok':>9}{'time resid':>12}"
    print(f"calibration on {report.machine.name} (payload {args.payload} B)")
    print(header)
    print("-" * len(header))
    for r in report.rows:
        place = "intra" if r.intra_node else "inter"
        print(
            f"{r.op:<16}{r.ranks:>6}{place:>12}"
            f"{'yes' if r.wire_match else 'NO':>9}{r.time_residual:>12.2e}"
        )
    if not args.smoke:
        for intra in (True, False):
            fit = fit_machine(intra_node=intra)
            place = "intra" if intra else "inter"
            print(
                f"fitted {place}: alpha {fit.alpha:.3e}s (spec {fit.spec_alpha:.3e}), "
                f"beta {fit.beta:.3e}s/B (spec {fit.spec_beta:.3e}), "
                f"rms residual {fit.rms_residual:.2e}"
            )
            if fit.alpha_error > 1e-6 or fit.beta_error > 1e-6 or not math.isfinite(fit.rms_residual):
                print("FAIL: fitted constants diverge from MachineSpec")
                return 1
    if not report.ok:
        print("FAIL: measured traffic diverges from the CostModel")
        return 1
    print(f"OK: wire bytes exact, max time residual {report.max_time_residual:.2e}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised by the CI smoke job
    raise SystemExit(main())
