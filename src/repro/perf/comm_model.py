"""α–β communication cost model over the Frontier topology.

Collective time = latency·steps + moved-bytes / bottleneck-bandwidth, with
ring algorithms (what RCCL runs).  A group whose ranks all live inside one
node rides Infinity Fabric (50 GB/s); a group spanning nodes is limited by
the per-GPU share of the node's Slingshot injection bandwidth (§4.1).

All pricing delegates to the shared :class:`~repro.perf.cost.CostModel` —
the same core the runtime's :class:`~repro.perf.clock.VirtualClock` uses, so
analytic predictions and measured (simulated) runs can be cross-checked
byte-for-byte (``perf/calibrate.py``).

:func:`step_comm_schedule` is the single source of the per-step collective
schedule: :func:`estimate_step_comm` prices it analytically, and the
calibration harness replays the identical events through real
:func:`~repro.dist.run_spmd` worlds on :class:`~repro.parallel.DeviceMesh`
groups.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from .cost import CostModel
from .machine import MachineSpec
from .modelcfg import ModelConfig, transformer_param_count
from .plan import ParallelPlan, Precision, Workload

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from .overlap import DerivedOverlaps

__all__ = [
    "collective_time",
    "CommEvent",
    "step_comm_schedule",
    "axis_group_sizes",
    "axis_intra_node",
    "CommBreakdown",
    "estimate_step_comm",
]

#: Default hidden fractions when no derived overlaps are supplied — the
#: paper-era assumptions.  Derive real ones with a virtual-clock run and
#: :func:`repro.perf.overlap.derive_overlaps`, then pass ``overlaps=``.
DEFAULT_DP_OVERLAP = 0.8
DEFAULT_FSDP_OVERLAP = 0.5


def collective_time(
    op: str,
    payload_bytes: float,
    group_size: int,
    machine: MachineSpec,
    intra_node: bool,
) -> float:
    """Seconds for one collective; *payload_bytes* is the per-rank payload
    (matching :func:`repro.dist.stats.ring_wire_bytes` conventions).

    Thin wrapper over :meth:`CostModel.collective_seconds` — kept as the
    historical entry point of the analytic layer.
    """
    return CostModel(machine).collective_seconds(op, payload_bytes, group_size, intra_node)


@dataclass(frozen=True)
class CommEvent:
    """One collective in a training step's schedule.

    ``axis`` names the parallel axis whose process group carries the event
    (``"tp"``, ``"gather"`` — the channel-stage gather, rides the TP group —
    ``"sp"`` / ``"sp_gather"`` / ``"sp_scatter"`` — the Ulysses all-to-alls
    and the sequence-boundary gathers, all on the SP group — ``"fsdp"`` or
    ``"dp"``); ``count`` is the per-step multiplicity.
    """

    axis: str
    op: str
    payload_bytes: int
    count: int = 1


def step_comm_schedule(
    model: ModelConfig,
    workload: Workload,
    plan: ParallelPlan,
    precision: Precision = Precision(),
) -> list[CommEvent]:
    """Every collective one training step issues, with exact payload bytes.

    The analytic pricer and the measured replay (``perf/calibrate.py``)
    consume this same list, which is what makes their wire-byte accounting
    comparable at all.
    """
    D = model.dim
    N = model.tokens
    C = workload.channels
    B = workload.batch
    ab = precision.act_bytes
    tp, sp, fsdp, dp = plan.tp, plan.sp, plan.fsdp, plan.dp

    events: list[CommEvent] = []

    # ---- TP: 2 AllReduce fwd + 2 bwd per block, each B·N·D activations,
    # plus the channel-aggregation module's own TP collectives (2 fwd + 2 bwd).
    if tp > 1:
        act_bytes = int(B * N * D * ab)
        events.append(CommEvent("tp", "all_reduce", act_bytes, 4 * model.depth + 4))

    # ---- SP: the Ulysses schedule.  Each block's attention flips the
    # sharded axis with all-to-alls over q/k/v (tokens→heads) and the
    # attention output (heads→tokens): 4 forward + 4 mirrored backward per
    # block, each moving this rank's B·(N/sp)·D activation shard — the
    # O(N/sp) per-link traffic that beats TP's O(N) ring collectives at
    # long sequence.  The boundary ops are the scatter/gather pair: the
    # scatter's backward re-assembles the full gradient with one AllGather
    # and the gather's forward re-assembles the full sequence with another.
    if sp > 1:
        if N % sp != 0:
            raise ValueError(f"sequence length {N} not divisible by sp={sp}")
        shard_bytes = int(B * (N // sp) * D * ab)
        events.append(CommEvent("sp", "all_to_all", shard_bytes, 8 * model.depth))
        events.append(CommEvent("sp_gather", "all_gather", shard_bytes))
        events.append(CommEvent("sp_scatter", "all_gather", shard_bytes))

    # ---- channel-stage gather ------------------------------------------
    if plan.strategy == "dist_tok" and tp > 1:
        shard = int(B * (C // tp) * N * D * ab)
        events.append(CommEvent("gather", "all_gather", shard))
        # backward pays the ReduceScatter of the full gradient
        events.append(CommEvent("gather", "reduce_scatter", shard * tp))
    elif plan.strategy == "dchag" and tp > 1:
        one_channel = int(B * 1 * N * D * ab)
        events.append(CommEvent("gather", "all_gather", one_channel))
        # no backward collective (the paper's headline property)

    # ---- FSDP: AllGather params fwd + bwd, ReduceScatter grads ----------
    if fsdp > 1:
        params = transformer_param_count(model) / tp
        shard_bytes = int(params * precision.param_bytes / fsdp)
        events.append(CommEvent("fsdp", "all_gather", shard_bytes, 2))
        events.append(
            CommEvent("fsdp", "reduce_scatter", int(params * precision.grad_bytes))
        )

    # ---- DP: one gradient AllReduce per step -----------------------------
    if dp > 1:
        grad_bytes = int(
            (transformer_param_count(model) / tp / fsdp) * precision.grad_bytes
        )
        events.append(CommEvent("dp", "all_reduce", grad_bytes))

    return events


def axis_group_sizes(plan: ParallelPlan) -> dict[str, int]:
    """Process-group size carrying each schedule axis."""
    return {
        "tp": plan.tp,
        "gather": plan.tp,
        "sp": plan.sp,
        "sp_gather": plan.sp,
        "sp_scatter": plan.sp,
        "fsdp": plan.fsdp,
        "dp": plan.dp,
    }


def axis_intra_node(plan: ParallelPlan, machine: MachineSpec) -> dict[str, bool]:
    """Placement per axis: a replica occupies tp·sp·fsdp consecutive GPUs
    (TP innermost, then SP, then FSDP), so SP crosses nodes once tp·sp
    exceeds a node, FSDP once tp·sp·fsdp does; DP is outermost (almost
    always cross-node).  Matches the TP-innermost
    :class:`~repro.parallel.DeviceMesh` rank layout."""
    tp, sp, fsdp, dp = plan.tp, plan.sp, plan.fsdp, plan.dp
    g = machine.gpus_per_node
    tp_intra = tp <= g
    sp_intra = tp * sp <= g
    return {
        "tp": tp_intra,
        "gather": tp_intra,
        "sp": sp_intra,
        "sp_gather": sp_intra,
        "sp_scatter": sp_intra,
        "fsdp": tp * sp * fsdp <= g,
        "dp": tp * sp * fsdp * dp <= g,
    }


@dataclass(frozen=True)
class CommBreakdown:
    """Per-step communication seconds (and per-rank wire bytes) by axis.

    The ``*_time`` fields are **exposed** seconds — the FSDP and DP entries
    already discounted by their overlap fractions; the ``*_wire`` fields are
    raw per-rank ring wire bytes (overlap hides time, not bytes).
    """

    tp_time: float
    gather_time: float      # channel-stage gather (dist_tok / dchag)
    fsdp_time: float
    dp_time: float
    tp_wire: int = 0
    gather_wire: int = 0
    fsdp_wire: int = 0
    dp_wire: int = 0
    sp_time: float = 0.0    # Ulysses a2a + boundary gathers, critical path
    sp_wire: int = 0
    sp_gather_wire: int = 0
    sp_scatter_wire: int = 0

    @property
    def total(self) -> float:
        return (
            self.tp_time + self.gather_time + self.sp_time
            + self.fsdp_time + self.dp_time
        )

    @property
    def total_wire(self) -> int:
        return (
            self.tp_wire + self.gather_wire + self.sp_wire
            + self.sp_gather_wire + self.sp_scatter_wire
            + self.fsdp_wire + self.dp_wire
        )

    def wire_by_axis(self) -> dict[str, int]:
        return {
            "tp": self.tp_wire,
            "gather": self.gather_wire,
            "sp": self.sp_wire,
            "sp_gather": self.sp_gather_wire,
            "sp_scatter": self.sp_scatter_wire,
            "fsdp": self.fsdp_wire,
            "dp": self.dp_wire,
        }


def estimate_step_comm(
    model: ModelConfig,
    workload: Workload,
    plan: ParallelPlan,
    machine: MachineSpec,
    precision: Precision = Precision(),
    dp_overlap: float = DEFAULT_DP_OVERLAP,
    fsdp_overlap: float = DEFAULT_FSDP_OVERLAP,
    overlaps: "DerivedOverlaps | None" = None,
) -> CommBreakdown:
    """Non-overlapped communication seconds for one training step.

    DP AllReduce and FSDP gathers partially overlap with compute
    (``*_overlap`` = hidden fraction); TP collectives and the Ulysses SP
    all-to-alls sit on the critical path (overlap 0), as in Megatron-style
    implementations — the next op consumes their output immediately.  Pass
    ``overlaps=`` (a :class:`~repro.perf.overlap.DerivedOverlaps` from a
    virtual-clock run) to replace the assumed fractions with derived ones.
    """
    if overlaps is not None:
        dp_overlap = overlaps.dp_overlap
        fsdp_overlap = overlaps.fsdp_overlap
    cost = CostModel(machine)
    sizes = axis_group_sizes(plan)
    intra = axis_intra_node(plan, machine)

    times = dict.fromkeys(sizes, 0.0)
    wires = dict.fromkeys(sizes, 0)
    for ev in step_comm_schedule(model, workload, plan, precision):
        n = sizes[ev.axis]
        times[ev.axis] += ev.count * cost.collective_seconds(
            ev.op, ev.payload_bytes, n, intra[ev.axis]
        )
        if n > 1:
            wires[ev.axis] += ev.count * cost.wire_bytes(ev.op, ev.payload_bytes, n)

    return CommBreakdown(
        tp_time=times["tp"],
        gather_time=times["gather"],
        sp_time=times["sp"] + times["sp_gather"] + times["sp_scatter"],
        fsdp_time=times["fsdp"] * (1.0 - fsdp_overlap),
        dp_time=times["dp"] * (1.0 - dp_overlap),
        tp_wire=wires["tp"],
        gather_wire=wires["gather"],
        sp_wire=wires["sp"],
        sp_gather_wire=wires["sp_gather"],
        sp_scatter_wire=wires["sp_scatter"],
        fsdp_wire=wires["fsdp"],
        dp_wire=wires["dp"],
    )
