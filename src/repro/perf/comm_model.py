"""α–β communication cost model over the Frontier topology.

Collective time = latency·steps + moved-bytes / bottleneck-bandwidth, with
ring algorithms (what RCCL runs).  A group whose ranks all live inside one
node rides Infinity Fabric (50 GB/s); a group spanning nodes is limited by
the per-GPU share of the node's Slingshot injection bandwidth (§4.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dist.stats import ring_wire_bytes
from .machine import MachineSpec
from .modelcfg import ModelConfig, transformer_param_count
from .plan import ParallelPlan, Precision, Workload

__all__ = ["collective_time", "CommBreakdown", "estimate_step_comm"]


def collective_time(
    op: str,
    payload_bytes: float,
    group_size: int,
    machine: MachineSpec,
    intra_node: bool,
) -> float:
    """Seconds for one collective; *payload_bytes* is the per-rank payload
    (matching :func:`repro.dist.stats.ring_wire_bytes` conventions)."""
    if group_size <= 1:
        return 0.0
    wire = ring_wire_bytes(op, int(payload_bytes), group_size)
    if intra_node:
        bw, lat = machine.intra_node_bw, machine.intra_latency
    else:
        bw, lat = machine.inter_node_bw_per_gpu, machine.inter_latency
    steps = 2 * (group_size - 1) if op == "all_reduce" else (group_size - 1)
    return lat * steps + wire / bw


@dataclass(frozen=True)
class CommBreakdown:
    """Per-step communication seconds by parallel axis."""

    tp_time: float
    gather_time: float      # channel-stage gather (dist_tok / dchag)
    fsdp_time: float
    dp_time: float

    @property
    def total(self) -> float:
        return self.tp_time + self.gather_time + self.fsdp_time + self.dp_time


def estimate_step_comm(
    model: ModelConfig,
    workload: Workload,
    plan: ParallelPlan,
    machine: MachineSpec,
    precision: Precision = Precision(),
    dp_overlap: float = 0.8,
    fsdp_overlap: float = 0.5,
) -> CommBreakdown:
    """Non-overlapped communication seconds for one training step.

    DP AllReduce and FSDP gathers partially overlap with compute
    (``*_overlap`` = hidden fraction); TP collectives sit on the critical
    path (overlap 0), as in Megatron-style implementations.
    """
    D = model.dim
    N = model.tokens
    C = workload.channels
    B = workload.batch
    ab = precision.act_bytes
    tp, fsdp, dp = plan.tp, plan.fsdp, plan.dp

    tp_intra = tp <= machine.gpus_per_node
    # A replica occupies tp·fsdp consecutive GPUs; FSDP crosses nodes once
    # tp·fsdp exceeds a node.  DP is outermost (almost always cross-node).
    fsdp_intra = tp * fsdp <= machine.gpus_per_node
    dp_intra = tp * fsdp * dp <= machine.gpus_per_node

    # ---- TP: 2 AllReduce fwd + 2 bwd per block, each B·N·D activations ----
    tp_time = 0.0
    if tp > 1:
        act_bytes = B * N * D * ab
        per_block = 4 * collective_time("all_reduce", act_bytes, tp, machine, tp_intra)
        tp_time = model.depth * per_block
        # channel-aggregation module's own TP collectives (2 fwd + 2 bwd)
        tp_time += 4 * collective_time("all_reduce", act_bytes, tp, machine, tp_intra)

    # ---- channel-stage gather ------------------------------------------
    gather_time = 0.0
    if plan.strategy == "dist_tok" and tp > 1:
        shard = B * (C // tp) * N * D * ab
        gather_time += collective_time("all_gather", shard, tp, machine, tp_intra)
        # backward pays the ReduceScatter of the full gradient
        gather_time += collective_time("reduce_scatter", shard * tp, tp, machine, tp_intra)
    elif plan.strategy == "dchag" and tp > 1:
        one_channel = B * 1 * N * D * ab
        gather_time += collective_time("all_gather", one_channel, tp, machine, tp_intra)
        # no backward collective (the paper's headline property)

    # ---- FSDP: AllGather params fwd + bwd, ReduceScatter grads ----------
    fsdp_time = 0.0
    if fsdp > 1:
        params = transformer_param_count(model) / tp
        shard_bytes = params * precision.param_bytes / fsdp
        t = 2 * collective_time("all_gather", shard_bytes, fsdp, machine, fsdp_intra)
        t += collective_time(
            "reduce_scatter", params * precision.grad_bytes, fsdp, machine, fsdp_intra
        )
        fsdp_time = t * (1.0 - fsdp_overlap)

    # ---- DP: one gradient AllReduce per step -----------------------------
    dp_time = 0.0
    if dp > 1:
        grad_bytes = (transformer_param_count(model) / tp / fsdp) * precision.grad_bytes
        dp_time = collective_time("all_reduce", grad_bytes, dp, machine, dp_intra)
        dp_time *= 1.0 - dp_overlap

    return CommBreakdown(
        tp_time=float(tp_time),
        gather_time=float(gather_time),
        fsdp_time=float(fsdp_time),
        dp_time=float(dp_time),
    )
