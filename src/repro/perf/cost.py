"""The α–β pricing core shared by the analytic model and the SPMD runtime.

One :class:`CostModel` instance prices every collective the system issues —
the analytic layer (:func:`repro.perf.comm_model.collective_time` and
:func:`~repro.perf.comm_model.estimate_step_comm`) and the runtime's
:class:`~repro.perf.clock.VirtualClock` both delegate here, so the two
layers can cross-check each other byte-for-byte (``perf/calibrate.py``).

Pricing convention (§4.1, RCCL ring algorithms)::

    seconds = latency · steps(op, n)  +  wire_bytes(op, payload, n) / bandwidth

Latency **step counts** per op — the single source of truth the runtime and
the analytic model share (audited against the ring conventions documented in
:mod:`repro.dist.stats`):

=================  ============  ==================================================
op                 steps         why
=================  ============  ==================================================
``all_reduce``     ``2·(n−1)``   ring ReduceScatter pass + ring AllGather pass
``all_gather``     ``n−1``       one ring pass, shards rotate n−1 hops
``reduce_scatter`` ``n−1``       one ring pass
``broadcast``      ``n−1``       pipelined ring from the root
``scatter``        ``n−1``       root emits one chunk per peer
``gather``         ``n−1``       inverse of scatter
``all_to_all``     ``1``         **not** a serialized ring: every pair exchanges
                                 directly in a single concurrent round, so only
                                 one latency is paid (the volume term carries
                                 the per-peer payloads)
``barrier``        ``n−1``       latency-only ring pass, zero bytes
``send``           ``1``         one point-to-point message
``recv``           ``0``         priced on the sender's side
=================  ============  ==================================================

Topology placement: ranks map onto nodes contiguously
(``node = rank // gpus_per_node``); a group whose ranks all share a node
rides the intra-node fabric, anything else pays the per-GPU share of the
node injection bandwidth.  This is the same placement rule
:func:`~repro.perf.comm_model.estimate_step_comm` applies to the
TP-innermost :class:`~repro.parallel.DeviceMesh` layout, so analytic and
measured placements coincide by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..dist.stats import ring_wire_bytes
from .machine import MachineSpec

__all__ = ["CostModel"]


@dataclass(frozen=True)
class CostModel:
    """Prices collectives (seconds + wire bytes) on one :class:`MachineSpec`."""

    machine: MachineSpec

    # -- the shared step-count table --------------------------------------
    def latency_steps(self, op: str, group_size: int) -> int:
        """Serialized latency rounds for one collective (see module table)."""
        n = int(group_size)
        if n < 1:
            raise ValueError(f"group size must be >= 1, got {group_size}")
        if op == "send":
            return 1
        if op == "recv":
            return 0
        if n == 1:
            return 0
        if op == "all_reduce":
            return 2 * (n - 1)
        if op in ("all_gather", "reduce_scatter", "broadcast", "scatter", "gather", "barrier"):
            return n - 1
        if op == "all_to_all":
            return 1
        raise ValueError(f"unknown collective op {op!r}")

    def wire_bytes(self, op: str, payload_bytes: int, group_size: int) -> int:
        """Per-rank ring wire volume (:func:`repro.dist.stats.ring_wire_bytes`)."""
        if op == "barrier":
            return 0
        return ring_wire_bytes(op, int(payload_bytes), group_size)

    # -- topology placement ------------------------------------------------
    def node_of(self, rank: int) -> int:
        return int(rank) // self.machine.gpus_per_node

    def intra_node(self, ranks: Sequence[int]) -> bool:
        """True when every rank of the group lives on one node."""
        return len({self.node_of(r) for r in ranks}) <= 1

    def link(self, intra_node: bool) -> tuple[float, float]:
        """(bandwidth bytes/s, latency s/step) of the bottleneck link."""
        m = self.machine
        if intra_node:
            return m.intra_node_bw, m.intra_latency
        return m.inter_node_bw_per_gpu, m.inter_latency

    # -- pricing -----------------------------------------------------------
    def collective_seconds(
        self, op: str, payload_bytes: float, group_size: int, intra_node: bool
    ) -> float:
        """Seconds for one collective; *payload_bytes* follows the per-op
        conventions of :mod:`repro.dist.stats`."""
        if group_size <= 1:
            return 0.0
        wire = self.wire_bytes(op, int(payload_bytes), group_size)
        bw, lat = self.link(intra_node)
        return lat * self.latency_steps(op, group_size) + wire / bw

    def collective_seconds_for(
        self, op: str, payload_bytes: float, ranks: Sequence[int]
    ) -> float:
        """Like :meth:`collective_seconds` with placement derived from the
        group's world ranks."""
        return self.collective_seconds(
            op, payload_bytes, len(ranks), self.intra_node(ranks)
        )

    def p2p_seconds(self, nbytes: float, src: int, dst: int) -> float:
        """One tagged point-to-point message between two world ranks."""
        bw, lat = self.link(self.node_of(src) == self.node_of(dst))
        return lat + int(nbytes) / bw

    def bucket_cap(
        self,
        op: str,
        payload_bytes: int,
        group_size: int,
        intra_node: bool,
        max_buckets: int,
    ) -> int:
        """Largest useful bucket count for splitting one collective.

        Every bucket re-pays the op's full latency rounds, so splitting
        only helps while each bucket's volume time stays above its latency
        time — the α–β form of real DDP's ~25 MB bucket-size heuristic.
        Latency-dominated payloads stay whole.  The single source of this
        decision for the eager replay and the autotuner's overlap oracle.
        """
        if max_buckets <= 1 or group_size <= 1:
            return 1
        bw, lat = self.link(intra_node)
        vol_t = self.wire_bytes(op, int(payload_bytes), group_size) / bw
        lat_t = lat * self.latency_steps(op, group_size)
        if lat_t <= 0.0:
            return max_buckets
        return min(max_buckets, max(1, int(vol_t / lat_t)))

    def compute_seconds(self, flops: float) -> float:
        """GEMM time at the machine's sustained throughput."""
        return float(flops) / self.machine.sustained_flops
