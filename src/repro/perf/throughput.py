"""Throughput estimator: sustained TFLOPs/sec and the "performance gain over
TP-only" metric of Figs. 9, 13, 15 and 16.

Mechanism (this is what the paper's gains actually come from, §6.2):

1. Each plan runs the **largest micro-batch that fits** in HBM.  D-CHAG
   frees the tokenization/aggregation memory, so it runs bigger batches.
2. GEMM efficiency **saturates with batch**: small micro-batches leave the
   GPUs starved (``eff = peak_eff · B/(B + B_half)``).
3. Exposed communication is amortized over the micro-batch; a global batch
   larger than what fits is served by gradient accumulation.
4. Throughput is quoted in **useful** FLOPs — the serial reference model's
   FLOPs per sample × samples/s — so all plans are compared in a common
   currency (redundant TP tokenization and D-CHAG's extra partial layers
   cost time but don't inflate the numerator).
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

from typing import TYPE_CHECKING

from .comm_model import CommBreakdown, estimate_step_comm
from .flops import TRAIN_MULT, estimate_flops
from .machine import MachineSpec
from .memory_model import MemoryBreakdown, estimate_memory
from .modelcfg import ModelConfig
from .plan import ParallelPlan, Precision, Workload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .overlap import DerivedOverlaps

__all__ = [
    "StepEstimate",
    "estimate_step",
    "sustained_estimate",
    "throughput_gain",
    "max_batch_per_replica",
    "BATCH_EFF_HALF",
    "MICRO_BATCH_CAP",
]

BATCH_EFF_HALF = 4.0     # micro-batch at which GEMM efficiency is half of peak
MICRO_BATCH_CAP = 64     # largest micro-batch the runtime will attempt


def batch_efficiency(machine: MachineSpec, micro_batch: int) -> float:
    """Saturating sustained-efficiency curve in the per-GPU micro-batch."""
    return machine.compute_efficiency * micro_batch / (micro_batch + BATCH_EFF_HALF)


@functools.lru_cache(maxsize=4096)
def max_batch_per_replica(
    model: ModelConfig,
    channels: int,
    plan: ParallelPlan,
    machine: MachineSpec,
    precision: Precision = Precision(),
    limit: int = MICRO_BATCH_CAP,
) -> int:
    """Largest micro-batch that still fits per GPU (0 ⇒ plan infeasible) —
    the lever Hybrid D-CHAG uses to raise TFLOPs/sec in §6.2.

    Memoized (every argument is a frozen dataclass): the configuration
    search asks for the same (model, plan, machine) fit both when
    enumerating candidates and inside every throughput evaluation, and the
    memory-model binary search is the search's single hottest analytic
    call.
    """
    lo = 0
    hi = 1
    while hi <= limit and estimate_memory(
        model, Workload(channels, hi), plan, precision
    ).fits(machine):
        lo = hi
        hi *= 2
    hi = min(hi, limit + 1)
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if estimate_memory(model, Workload(channels, mid), plan, precision).fits(machine):
            lo = mid
        else:
            hi = mid
    return lo


@dataclass(frozen=True)
class StepEstimate:
    """One plan's sustained operating point."""

    plan: ParallelPlan
    micro_batch: int
    memory: MemoryBreakdown
    compute_seconds: float     # per micro-batch, per replica
    comm: CommBreakdown
    useful_flops: float        # serial-model FLOPs for this micro-batch
    fits: bool

    @property
    def step_seconds(self) -> float:
        return self.compute_seconds + self.comm.total

    @property
    def samples_per_second(self) -> float:
        """Per replica."""
        if not self.fits:
            return 0.0
        return self.micro_batch / self.step_seconds

    @property
    def tflops_per_gpu(self) -> float:
        """Sustained useful TFLOP/s per GPU (0 when the plan does not fit)."""
        if not self.fits:
            return 0.0
        return self.useful_flops / self.step_seconds / self.plan.gpus_per_replica / 1e12

    @property
    def tflops_total(self) -> float:
        return self.tflops_per_gpu * self.plan.total_gpus

    def tflops_per_node(self, machine: MachineSpec) -> float:
        return self.tflops_per_gpu * machine.gpus_per_node


def _useful_flops(model: ModelConfig, workload: Workload) -> float:
    """Serial reference-model training FLOPs for one micro-batch."""
    return TRAIN_MULT * estimate_flops(model, workload, ParallelPlan("serial")).total


def estimate_step(
    model: ModelConfig,
    workload: Workload,
    plan: ParallelPlan,
    machine: MachineSpec,
    precision: Precision = Precision(),
    overlaps: "DerivedOverlaps | None" = None,
) -> StepEstimate:
    """Estimate a step at an explicit micro-batch (``workload.batch``).

    ``overlaps`` replaces the assumed dp/fsdp overlap fractions with ones
    derived from a virtual-clock run (:func:`repro.perf.overlap.derive_overlaps`).
    """
    memory = estimate_memory(model, workload, plan, precision)
    own = TRAIN_MULT * estimate_flops(model, workload, plan).total
    eff = batch_efficiency(machine, workload.batch)
    compute = own / (machine.peak_flops * eff)
    comm = estimate_step_comm(model, workload, plan, machine, precision, overlaps=overlaps)
    return StepEstimate(
        plan=plan,
        micro_batch=workload.batch,
        memory=memory,
        compute_seconds=float(compute),
        comm=comm,
        useful_flops=_useful_flops(model, workload),
        fits=memory.fits(machine),
    )


def sustained_estimate(
    model: ModelConfig,
    channels: int,
    plan: ParallelPlan,
    machine: MachineSpec,
    precision: Precision = Precision(),
    micro_batch: int | None = None,
    overlaps: "DerivedOverlaps | None" = None,
) -> StepEstimate:
    """Estimate at the best (largest fitting) micro-batch for this plan."""
    b = micro_batch if micro_batch is not None else max_batch_per_replica(
        model, channels, plan, machine, precision
    )
    if b == 0:
        # Report the infeasible single-sample point (fits=False ⇒ 0 TFLOPs).
        return estimate_step(model, Workload(channels, 1), plan, machine, precision, overlaps)
    return estimate_step(model, Workload(channels, b), plan, machine, precision, overlaps)


def throughput_gain(
    model: ModelConfig,
    channels: int,
    plan: ParallelPlan,
    baseline: ParallelPlan,
    machine: MachineSpec,
    precision: Precision = Precision(),
) -> float:
    """Fractional per-GPU sustained-throughput gain of *plan* over *baseline*
    (``0.6`` ⇒ "60 % improvement", the form Figs. 9/13 quote).

    ``inf`` when only the baseline OOMs, ``nan`` when both do, ``-1.0`` when
    the candidate itself OOMs.
    """
    ours = sustained_estimate(model, channels, plan, machine, precision)
    base = sustained_estimate(model, channels, baseline, machine, precision)
    if not base.fits and not ours.fits:
        return float("nan")
    if not base.fits:
        return float("inf")
    if not ours.fits:
        return -1.0
    return ours.tflops_per_gpu / base.tflops_per_gpu - 1.0


def global_batch_throughput(
    model: ModelConfig,
    channels: int,
    plan: ParallelPlan,
    machine: MachineSpec,
    global_batch: int,
    precision: Precision = Precision(),
    overlaps: "DerivedOverlaps | None" = None,
) -> float:
    """Total sustained useful TFLOP/s at a fixed global batch (Fig. 16).

    The global batch spreads over ``dp`` replicas; whatever exceeds a
    replica's largest fitting micro-batch is served by gradient
    accumulation (more micro-steps, same efficiency, one DP AllReduce per
    optimizer step so its cost amortizes).  ``overlaps`` replaces the
    assumed dp/fsdp hidden fractions with derived ones — the autotuner
    passes each candidate's own simulated fractions through here.
    """
    if global_batch % plan.dp != 0:
        raise ValueError(f"global batch {global_batch} not divisible by dp={plan.dp}")
    per_replica = global_batch // plan.dp
    b_max = max_batch_per_replica(model, channels, plan, machine, precision)
    if b_max == 0:
        return 0.0
    micro = min(per_replica, b_max)
    n_micro = -(-per_replica // micro)
    est = estimate_step(
        model, Workload(channels, micro), plan, machine, precision, overlaps=overlaps
    )
    if not est.fits:
        return 0.0
    # DP sync happens once per optimizer step; non-DP comm per micro-step.
    micro_time = (
        est.compute_seconds + est.comm.tp_time + est.comm.gather_time
        + est.comm.sp_time + est.comm.fsdp_time
    )
    step_time = n_micro * micro_time + est.comm.dp_time
    useful = _useful_flops(model, Workload(channels, micro)) * n_micro * plan.dp
    return useful / step_time / 1e12
