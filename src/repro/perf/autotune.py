"""Full configuration search: the generalization of §6.2's manual tuning.

The paper finds its best Fig. 15/16 layout by hand ("we aim to find the
optimal configuration by adding FSDP and DP for a fixed model size and
compute budget").  :func:`search_configurations` automates that: it
enumerates every ``(strategy, tp, fsdp, dp)`` factorization of a GPU budget
(TP capped at the node size so it stays on Infinity Fabric, the §6.3
placement rule), filters to plans that fit in HBM, and ranks them by
projected sustained throughput at the requested global batch.
"""

from __future__ import annotations

from dataclasses import dataclass

from .machine import MachineSpec
from .modelcfg import ModelConfig
from .plan import ParallelPlan, Precision
from .throughput import global_batch_throughput, max_batch_per_replica

__all__ = ["TunedPlan", "search_configurations", "best_configuration"]


@dataclass(frozen=True)
class TunedPlan:
    plan: ParallelPlan
    micro_batch: int
    total_tflops: float

    @property
    def summary(self) -> str:
        return (
            f"{self.plan.label}: micro-batch {self.micro_batch}, "
            f"{self.total_tflops:,.0f} TFLOP/s total"
        )


def _divisors_pow2(n: int, cap: int) -> list[int]:
    out = []
    d = 1
    while d <= min(n, cap):
        if n % d == 0:
            out.append(d)
        d *= 2
    return out


def search_configurations(
    model: ModelConfig,
    channels: int,
    total_gpus: int,
    machine: MachineSpec,
    global_batch: int,
    strategies: tuple[str, ...] = ("tp", "dchag"),
    precision: Precision = Precision(),
    intra_node_tp: bool = True,
) -> list[TunedPlan]:
    """All feasible plans for the budget, best throughput first."""
    tp_cap = machine.gpus_per_node if intra_node_tp else total_gpus
    results: list[TunedPlan] = []
    seen: set[str] = set()
    for strategy in strategies:
        for tp in _divisors_pow2(total_gpus, tp_cap if strategy != "serial" else 1):
            if strategy == "dchag" and channels % tp != 0:
                continue
            remaining = total_gpus // tp
            for fsdp in _divisors_pow2(remaining, remaining):
                dp = remaining // fsdp
                if global_batch % dp != 0:
                    continue
                plan = ParallelPlan(
                    strategy,
                    tp=tp,
                    fsdp=fsdp,
                    dp=dp,
                    dchag_kind="linear",
                    dchag_fanout=0,
                )
                if plan.label in seen:
                    continue
                seen.add(plan.label)
                micro = max_batch_per_replica(model, channels, plan, machine, precision)
                if micro == 0:
                    continue
                tflops = global_batch_throughput(
                    model, channels, plan, machine, global_batch, precision
                )
                results.append(TunedPlan(plan, micro, tflops))
    results.sort(key=lambda t: t.total_tflops, reverse=True)
    return results


def best_configuration(
    model: ModelConfig,
    channels: int,
    total_gpus: int,
    machine: MachineSpec,
    global_batch: int,
    **kwargs,
) -> TunedPlan:
    """The throughput-optimal plan (raises if nothing fits)."""
    results = search_configurations(
        model, channels, total_gpus, machine, global_batch, **kwargs
    )
    if not results:
        raise ValueError(
            f"no feasible configuration for {model.name} / {channels}ch on {total_gpus} GPUs"
        )
    return results[0]
