"""Full configuration search: the generalization of §6.2's manual tuning.

The paper finds its best Fig. 15/16 layout by hand ("we aim to find the
optimal configuration by adding FSDP and DP for a fixed model size and
compute budget").  :func:`search_configurations` automates that: it
enumerates every ``(strategy, tp, sp, fsdp, dp)`` factorization of a GPU
budget (TP capped at the node size so it stays on Infinity Fabric, the §6.3
placement rule; sequence parallelism capped at ``max_sp``, default 1 —
pass ``max_sp > 1`` to let long-sequence workloads trade TP's O(N) ring
collectives for Ulysses' O(N/sp) all-to-alls, §3.5), filters to plans that
fit in HBM, and ranks them by projected sustained throughput at the
requested global batch.

Overlap-aware ranking
---------------------

By default the throughput model discounts DP/FSDP communication by the
paper-era constants (0.8 / 0.5).  Pass ``overlaps=`` to rank with derived
fractions instead:

* a :class:`~repro.perf.overlap.DerivedOverlaps` applies one measured pair
  to every candidate;
* a callable ``(plan, micro_batch) -> DerivedOverlaps | None`` is consulted
  **per candidate** — :func:`simulated_overlaps` builds one that replays a
  scaled-down stand-in of each plan through a real issue-queue world
  (:func:`~repro.perf.calibrate.measure_plan` with ``eager=True``) so every
  plan is ranked with fractions derived from *its own* simulated timeline.

Combined with a host-calibrated machine
(:func:`~repro.perf.calibrate.load_or_fit_machine`), the search ranks on
measured inputs end to end instead of paper constants.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Callable, Union

from .comm_model import axis_intra_node, estimate_step_comm
from .flops import TRAIN_MULT, estimate_flops
from .machine import MachineSpec
from .modelcfg import ModelConfig
from .plan import ParallelPlan, Precision, Workload
from .throughput import (
    batch_efficiency,
    global_batch_throughput,
    max_batch_per_replica,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .overlap import DerivedOverlaps

__all__ = [
    "TunedPlan",
    "OverlapSource",
    "ReplaySweep",
    "search_configurations",
    "best_configuration",
    "simulated_overlaps",
    "sweep_replay",
]

#: What ``search_configurations(overlaps=...)`` accepts: one fixed derived
#: pair, a per-plan oracle, or None for the paper constants.
OverlapSource = Union[
    "DerivedOverlaps",
    Callable[[ParallelPlan, int], "DerivedOverlaps | None"],
    None,
]


@dataclass(frozen=True)
class TunedPlan:
    plan: ParallelPlan
    micro_batch: int
    total_tflops: float
    overlaps: "DerivedOverlaps | None" = None  # what the ranking used (None ⇒ constants)

    @property
    def summary(self) -> str:
        return (
            f"{self.plan.label}: micro-batch {self.micro_batch}, "
            f"{self.total_tflops:,.0f} TFLOP/s total"
        )


def _divisors_pow2(n: int, cap: int) -> list[int]:
    out = []
    d = 1
    while d <= min(n, cap):
        if n % d == 0:
            out.append(d)
        d *= 2
    return out


def _full_overlaps() -> "DerivedOverlaps":
    """The optimistic bound: every dp/fsdp byte hidden under compute.

    Throughput is monotone in the overlap fractions, so ranking with this
    pair upper-bounds any score a simulated (or constant) pair can produce
    — the pruning certificate ``search_configurations(prune_top_k=...)``
    relies on.
    """
    from .overlap import DerivedOverlaps, OverlapReport

    return DerivedOverlaps(
        dp=OverlapReport("dp_sync", "backward", 0.0, 0.0, 1.0),
        fsdp=OverlapReport("fsdp_gather", "forward", 0.0, 0.0, 1.0),
    )


def _enumerate_candidates(
    model: ModelConfig,
    channels: int,
    total_gpus: int,
    machine: MachineSpec,
    global_batch: int,
    strategies: tuple[str, ...],
    precision: Precision,
    intra_node_tp: bool,
    max_sp: int = 1,
) -> list[tuple[ParallelPlan, int]]:
    """Every feasible (plan, micro-batch) for the budget, unscored.

    ``max_sp`` caps the sequence-parallel axis (default 1 — the historical
    tp × fsdp × dp grid, which keeps the §6.2 golden podium byte-stable).
    SP degrees are pow-2 divisors of the budget that divide both the token
    count (the shards) and the head count (the Ulysses head switch).
    """
    tp_cap = machine.gpus_per_node if intra_node_tp else total_gpus
    out: list[tuple[ParallelPlan, int]] = []
    seen: set[str] = set()
    for strategy in strategies:
        for tp in _divisors_pow2(total_gpus, tp_cap if strategy != "serial" else 1):
            if strategy == "dchag" and channels % tp != 0:
                continue
            sp_budget = total_gpus // tp
            for sp in _divisors_pow2(sp_budget, max_sp if strategy != "serial" else 1):
                if sp > 1 and (model.tokens % sp or model.heads % (tp * sp)):
                    continue
                remaining = sp_budget // sp
                for fsdp in _divisors_pow2(remaining, remaining):
                    dp = remaining // fsdp
                    if global_batch % dp != 0:
                        continue
                    plan = ParallelPlan(
                        strategy,
                        tp=tp,
                        fsdp=fsdp,
                        dp=dp,
                        dchag_kind="linear",
                        dchag_fanout=0,
                        sp=sp,
                    )
                    if plan.label in seen:
                        continue
                    seen.add(plan.label)
                    micro = max_batch_per_replica(model, channels, plan, machine, precision)
                    if micro == 0:
                        continue
                    out.append((plan, micro))
    return out


def search_configurations(
    model: ModelConfig,
    channels: int,
    total_gpus: int,
    machine: MachineSpec,
    global_batch: int,
    strategies: tuple[str, ...] = ("tp", "dchag"),
    precision: Precision = Precision(),
    intra_node_tp: bool = True,
    overlaps: OverlapSource = None,
    prune_top_k: int | None = None,
    replay: bool = False,
    store=None,
    store_name: str | None = None,
    max_sp: int = 1,
) -> list[TunedPlan]:
    """All feasible plans for the budget, best throughput first.

    ``overlaps`` selects the dp/fsdp hidden fractions the ranking uses
    (module docstring); each returned :class:`TunedPlan` records the pair
    applied to it.

    ``max_sp`` opens the sequence-parallel axis: candidates enumerate
    tp × sp × fsdp × dp with sp up to the cap (default 1 reproduces the
    historical tp × fsdp × dp grid exactly — the §6.2 golden podium).

    ``replay=True`` (with ``overlaps=None``) ranks with the captured-
    schedule replay oracle: one threaded stand-in world is recorded per
    schedule shape and every further candidate is priced by replaying that
    schedule as pure event arithmetic (see :func:`simulated_overlaps`) —
    the cheap way to run a measured-overlap sweep.  Ignored when an
    explicit ``overlaps`` source is passed.

    ``prune_top_k`` (with a *callable* ``overlaps``) turns on bound-based
    pruning: candidates are visited in descending order of their analytic
    **upper bound** (throughput at full overlap), and the per-plan oracle —
    each consultation may cost a real issue-queue simulation — is only
    invoked while a candidate's bound can still beat the ``k``-th best
    simulated score.  Because the bound dominates every achievable score,
    the top ``k`` plans and their ordering are **exactly** those of the
    exhaustive search (pinned by the golden-ranking tests); pruned
    candidates rank below them by their paper-constant score with
    ``overlaps=None`` recorded.  ``None`` (default) keeps the exhaustive
    behavior, consulting the oracle for every candidate.

    ``store`` (a :class:`~repro.obs.store.SweepStore` or path) persists
    the full ranked candidate list as a ``search`` run named
    ``store_name`` (default derived from the budget);
    :meth:`~repro.obs.store.SweepStore.top_plans` then reproduces this
    function's podium from the database alone.
    """
    if replay and overlaps is None:
        overlaps = simulated_overlaps(machine, model, channels, precision, replay=True)
    candidates = _enumerate_candidates(
        model, channels, total_gpus, machine, global_batch,
        strategies, precision, intra_node_tp, max_sp=max_sp,
    )

    def score(plan: ParallelPlan, ov: "DerivedOverlaps | None") -> float:
        return global_batch_throughput(
            model, channels, plan, machine, global_batch, precision, overlaps=ov,
        )

    results: list[TunedPlan] = []
    if prune_top_k is not None and prune_top_k >= 1 and callable(overlaps):
        bound_pair = _full_overlaps()
        # Deterministic visit order: best bound first, label breaks ties.
        bounded = sorted(
            ((score(plan, bound_pair), plan, micro) for plan, micro in candidates),
            key=lambda t: (-t[0], t[1].label),
        )
        incumbents: list[float] = []  # top-k simulated scores, descending
        for bound, plan, micro in bounded:
            kth = incumbents[prune_top_k - 1] if len(incumbents) >= prune_top_k else float("-inf")
            # >= : a candidate whose bound ties the k-th incumbent could
            # still tie into the top k, so it is simulated, keeping the
            # exactness guarantee through score ties.
            if bound >= kth:
                ov = overlaps(plan, micro)
                tflops = score(plan, ov)
                results.append(TunedPlan(plan, micro, tflops, ov))
                incumbents.append(tflops)
                incumbents.sort(reverse=True)
                del incumbents[prune_top_k:]
            else:
                # bound ≤ kth ⇒ no achievable score reaches the top k;
                # rank the tail by the paper-constant estimate.
                results.append(TunedPlan(plan, micro, score(plan, None), None))
    else:
        for plan, micro in candidates:
            ov = overlaps(plan, micro) if callable(overlaps) else overlaps
            results.append(TunedPlan(plan, micro, score(plan, ov), ov))
    results.sort(key=lambda t: t.total_tflops, reverse=True)
    if store is not None:
        from ..obs.store import open_store  # local: obs imports perf modules

        handle = open_store(store)
        run_id = handle.record_run(
            "search",
            store_name
            if store_name is not None
            else f"{model.name}-ch{channels}-g{total_gpus}-b{global_batch}",
            machine=machine.name,
            params={
                "channels": channels,
                "total_gpus": total_gpus,
                "global_batch": global_batch,
                "strategies": list(strategies),
                "candidates": len(results),
            },
        )
        handle.record_plans(run_id, results)
        if handle is not store:
            handle.close()
    return results


def best_configuration(
    model: ModelConfig,
    channels: int,
    total_gpus: int,
    machine: MachineSpec,
    global_batch: int,
    **kwargs,
) -> TunedPlan:
    """The throughput-optimal plan (raises if nothing fits)."""
    results = search_configurations(
        model, channels, total_gpus, machine, global_batch, **kwargs
    )
    if not results:
        raise ValueError(
            f"no feasible configuration for {model.name} / {channels}ch on {total_gpus} GPUs"
        )
    return results[0]


# -- fleet-scale vectorized replay sweep -----------------------------------


@dataclass(frozen=True)
class ReplaySweep:
    """A multi-budget search priced entirely by vectorized replay.

    ``rankings`` pairs each ``(total_gpus, global_batch)`` budget with its
    ranked candidate list — element-wise **equal** (same plans, same float
    scores, same :class:`~repro.perf.overlap.DerivedOverlaps`) to what
    ``search_configurations(..., replay=True)`` returns for that budget,
    because the vectorized kernel's timelines are bitwise identical to the
    scalar interpreter's.  ``captured_worlds`` counts the threaded stand-in
    worlds actually spun up (one per schedule shape) and ``lanes`` the
    distinct ``(shape, placement, scale)`` variants priced through them —
    the sweep's whole point is ``candidates >> lanes >= captured_worlds``.
    """

    rankings: tuple[tuple[tuple[int, int], tuple[TunedPlan, ...]], ...]
    candidates: int
    captured_worlds: int
    lanes: int

    @property
    def summary(self) -> str:
        return (
            f"{self.candidates} candidates priced through "
            f"{self.lanes} replay lanes from {self.captured_worlds} "
            f"captured world(s)"
        )


def sweep_replay(
    model: ModelConfig,
    channels: int,
    machine: MachineSpec,
    budgets: "Sequence[tuple[int, int]]",
    strategies: tuple[str, ...] = ("tp", "dchag"),
    precision: Precision = Precision(),
    intra_node_tp: bool = True,
    dp_buckets: int = 4,
    store=None,
    store_name: str | None = None,
    max_sp: int = 1,
) -> ReplaySweep:
    """Rank every candidate of every budget from a handful of captured worlds.

    The per-candidate oracle of ``search_configurations(..., replay=True)``
    interleaves capture and pricing: each cache miss walks the scalar
    interpreter over the captured schedule.  A fleet sweep (many GPU
    budgets x batch sizes) hits hundreds of such misses, all replays of the
    same few schedules under different node placements and compute scales —
    exactly the shape :func:`repro.perf.schedule.replay_many` batches.  So
    this entry runs the sweep in three phases:

    1. enumerate every feasible candidate of every budget and map it to its
       replay variant key (stand-in shape, node placement, bucket count,
       quantized compute scale — the same keying the oracle caches under);
    2. capture ONE threaded stand-in world per schedule shape, lower it
       once, and price all of that shape's variants in a single vectorized
       :meth:`~repro.perf.schedule.ReplayProgram.run` call;
    3. score and rank each budget's candidates from the priced overlaps.

    Scores, overlaps and ranking order are equal to per-budget
    ``search_configurations(model, channels, g, machine, b, replay=True)``
    calls (pinned by ``tests/test_schedule_replay.py``); only the
    orchestration differs.  ``store`` persists one ``search`` run per
    budget, named ``{store_name or model.name-chN}-gG-bB``, so
    :meth:`~repro.obs.store.SweepStore.top_plans` reproduces any budget's
    podium from the database alone.
    """
    from .calibrate import measure_plan  # runtime import: calibrate pulls dist
    from .schedule import ReplayVariant, replay_many

    # Phase 1: enumerate, and key every candidate needing an overlap pair.
    per_budget: list[tuple[tuple[int, int], list[tuple[ParallelPlan, int, tuple | None]]]] = []
    variant_by_key: dict[tuple, tuple] = {}  # key -> (sim_mach, scale)
    keys_by_shape: dict[tuple, tuple[ParallelPlan, list[tuple]]] = {}  # skey -> (sim, keys)
    for total_gpus, global_batch in budgets:
        rows: list[tuple[ParallelPlan, int, tuple | None]] = []
        for plan, micro in _enumerate_candidates(
            model, channels, total_gpus, machine, global_batch,
            strategies, precision, intra_node_tp, max_sp=max_sp,
        ):
            if plan.dp <= 1 and plan.fsdp <= 1:
                rows.append((plan, micro, None))
                continue
            sim = _shrink_plan(plan)
            sim_mach = _sim_machine(plan, machine, sim)
            scale = _compute_scale(
                model, channels, plan, micro, machine, precision, sim, sim_mach
            )
            buckets = _dp_buckets_for(
                model, channels, plan, micro, machine, precision, dp_buckets
            )
            if scale > 0.0:
                scale = 10.0 ** round(math.log10(scale), 1)
            key = (sim.label, sim_mach.gpus_per_node, buckets, scale)
            if key not in variant_by_key:
                skey = (sim.label, buckets)
                variant_by_key[key] = (sim_mach, scale)
                keys_by_shape.setdefault(skey, (sim, []))[1].append(key)
            rows.append((plan, micro, key))
        per_budget.append(((total_gpus, global_batch), rows))

    # Phase 2: one threaded capture per schedule shape, then one vectorized
    # replay_many call pricing every variant of that shape.
    workspace: dict = {}
    overlaps_by_key: dict[tuple, "DerivedOverlaps"] = {}
    for (_sim_label, buckets), (sim_plan, keys) in keys_by_shape.items():
        cap = measure_plan(
            _SIM_MODEL,
            Workload(_SIM_CHANNELS, _SIM_BATCH),
            sim_plan,
            machine,
            eager=True,
            dp_buckets=buckets,
            compute_scale=1.0,
            cap_dp_buckets=False,
            workspace=workspace,
            capture=True,
        )
        variants = [
            ReplayVariant(machine=variant_by_key[k][0], compute_scale=variant_by_key[k][1])
            for k in keys
        ]
        for k, res in zip(keys, replay_many(cap.schedule, variants)):
            overlaps_by_key[k] = res.overlaps()

    # Phase 3: score and rank each budget from the priced pairs.
    rankings: list[tuple[tuple[int, int], tuple[TunedPlan, ...]]] = []
    n_candidates = 0
    for (total_gpus, global_batch), rows in per_budget:
        results = [
            TunedPlan(
                plan,
                micro,
                global_batch_throughput(
                    model, channels, plan, machine, global_batch, precision,
                    overlaps=overlaps_by_key.get(key),
                ),
                overlaps_by_key.get(key),
            )
            for plan, micro, key in rows
        ]
        results.sort(key=lambda t: t.total_tflops, reverse=True)
        n_candidates += len(results)
        rankings.append(((total_gpus, global_batch), tuple(results)))
        if store is not None:
            from ..obs.store import open_store  # local: obs imports perf modules

            handle = open_store(store)
            base = store_name if store_name is not None else f"{model.name}-ch{channels}"
            run_id = handle.record_run(
                "search",
                f"{base}-g{total_gpus}-b{global_batch}",
                machine=machine.name,
                params={
                    "channels": channels,
                    "total_gpus": total_gpus,
                    "global_batch": global_batch,
                    "strategies": list(strategies),
                    "candidates": len(results),
                    "oracle": "sweep_replay",
                },
            )
            handle.record_plans(run_id, results)
            if handle is not store:
                handle.close()

    return ReplaySweep(
        rankings=tuple(rankings),
        candidates=n_candidates,
        captured_worlds=len(keys_by_shape),
        lanes=len(variant_by_key),
    )


# -- per-plan simulated overlap oracle ------------------------------------

#: Stand-in model for the oracle's scaled-down worlds: small enough that
#: every schedule payload is an honest in-memory buffer, structured enough
#: to exercise every axis.  16 channels divide every shrunk tp.
_SIM_MODEL = ModelConfig("overlap-sim", dim=32, depth=2, heads=4, patch=4, image_hw=(16, 16))
_SIM_CHANNELS = 16
_SIM_BATCH = 2


def _shrink_plan(plan: ParallelPlan) -> ParallelPlan:
    """Structure-preserving stand-in: every active axis capped at 2.

    Overlap fractions depend on which axes exist and where they sit, not on
    their width — the width's effect on the compute/comm balance is
    restored separately via ``compute_scale``.
    """
    return ParallelPlan(
        plan.strategy,
        tp=min(plan.tp, 2),
        fsdp=min(plan.fsdp, 2),
        dp=min(plan.dp, 2),
        dchag_kind=plan.dchag_kind,
        dchag_fanout=0,
        sp=min(plan.sp, 2),
    )


def _sim_machine(plan: ParallelPlan, machine: MachineSpec, sim: ParallelPlan) -> MachineSpec:
    """A machine whose node size reproduces the real plan's axis placement.

    The real plan's intra/inter-node flags per axis (TP innermost) decide
    how many of the stand-in world's ranks share a node, so every simulated
    collective rides the same link class as its real counterpart.
    """
    intra = axis_intra_node(plan, machine)
    if intra["dp"]:
        gpn = sim.total_gpus
    elif intra["fsdp"]:
        gpn = sim.tp * sim.sp * sim.fsdp
    elif intra["sp"]:
        gpn = sim.tp * sim.sp
    elif intra["tp"]:
        gpn = sim.tp
    else:
        gpn = max(1, sim.tp // 2)
    return replace(machine, gpus_per_node=max(1, gpn))


def _compute_scale(
    model: ModelConfig,
    channels: int,
    plan: ParallelPlan,
    micro: int,
    machine: MachineSpec,
    precision: Precision,
    sim_plan: ParallelPlan,
    sim_machine: MachineSpec,
) -> float:
    """Scale factor that gives the stand-in the real compute/comm ratio.

    Hidden fractions are a function of how much compute is available per
    second of communication; matching that ratio is what makes a 4–8-rank
    simulation's fractions transfer to the 1,024-GPU plan.
    """

    def ratio(m, ch, p, b, mach):
        comm = estimate_step_comm(
            m, Workload(ch, b), p, mach, precision, dp_overlap=0.0, fsdp_overlap=0.0
        ).total
        flops = TRAIN_MULT * estimate_flops(m, Workload(ch, b), p).total
        compute = flops / (mach.peak_flops * batch_efficiency(mach, b))
        return compute, comm

    real_compute, real_comm = ratio(model, channels, plan, micro, machine)
    sim_compute, sim_comm = ratio(
        _SIM_MODEL, _SIM_CHANNELS, sim_plan, _SIM_BATCH, sim_machine
    )
    if real_comm <= 0.0 or sim_comm <= 0.0 or sim_compute <= 0.0:
        return 1.0
    return (real_compute / real_comm) / (sim_compute / sim_comm)


def _dp_buckets_for(
    model: ModelConfig,
    channels: int,
    plan: ParallelPlan,
    micro: int,
    machine: MachineSpec,
    precision: Precision,
    max_buckets: int,
) -> int:
    """Bucket count the *real* plan's DP volume/latency ratio justifies.

    The stand-in's payloads are tiny (latency-dominated), so the in-replay
    cap would always pick 1; the real gradient AllReduce is volume-dominated
    and buckets profitably.  Computed once here — via the shared
    :meth:`CostModel.bucket_cap` rule — and passed with the cap disabled.
    """
    from .comm_model import step_comm_schedule  # local: avoid import cycle noise
    from .cost import CostModel

    if plan.dp <= 1:
        return 1
    cost = CostModel(machine)
    intra = axis_intra_node(plan, machine)["dp"]
    for ev in step_comm_schedule(model, Workload(channels, micro), plan, precision):
        if ev.axis == "dp" and ev.op == "all_reduce":
            return cost.bucket_cap(ev.op, ev.payload_bytes, plan.dp, intra, max_buckets)
    return 1


def simulated_overlaps(
    machine: MachineSpec,
    model: ModelConfig,
    channels: int,
    precision: Precision = Precision(),
    dp_buckets: int = 4,
    replay: bool = False,
) -> Callable[[ParallelPlan, int], "DerivedOverlaps | None"]:
    """Build a per-plan overlap oracle for ``search_configurations``.

    For each candidate the oracle replays a structure-preserving stand-in
    (axes capped at 2, placement and compute/comm ratio matched to the real
    plan) through a real :func:`~repro.dist.run_spmd` world on an
    issue-queue clock, and returns the measured
    :class:`~repro.perf.overlap.DerivedOverlaps`.  Results are cached by
    stand-in shape, so a 1,024-GPU sweep costs a handful of ≤8-rank
    simulations.  Plans with neither a DP nor an FSDP axis return ``None``
    (nothing to overlap — the constants are irrelevant there anyway).

    ``replay=True`` spins up **one** threaded world per stand-in *shape*
    (schedule structure = plan shape × bucket count), capturing its event
    schedule; every further cache miss replays that captured schedule as
    pure event arithmetic (:func:`repro.perf.schedule.replay`) with the
    candidate's node placement and compute scale — no extra threads, no
    numpy payloads.  The replayed fractions can differ from the threaded
    oracle's in the last float bits (the compute scale multiplies captured
    charges instead of pre-scaled ones), so rankings agree at podium level,
    not bitwise.
    """
    from .calibrate import measure_plan  # runtime import: calibrate pulls dist
    from .schedule import replay as replay_schedule

    cache: dict[tuple, "DerivedOverlaps"] = {}
    schedules: dict[tuple, object] = {}  # captured per stand-in shape
    workspace: dict = {}  # warm replay buffers shared by every simulation

    def oracle(plan: ParallelPlan, micro: int) -> "DerivedOverlaps | None":
        if plan.dp <= 1 and plan.fsdp <= 1:
            return None
        sim = _shrink_plan(plan)
        sim_mach = _sim_machine(plan, machine, sim)
        scale = _compute_scale(
            model, channels, plan, micro, machine, precision, sim, sim_mach
        )
        buckets = _dp_buckets_for(
            model, channels, plan, micro, machine, precision, dp_buckets
        )
        # Quantize the scale onto a log grid (~26% steps) and simulate at
        # the quantized value: candidates with nearly the same compute/comm
        # balance then share one cache slot honestly — scales range over
        # orders of magnitude, so rounding the raw value would never hit.
        if scale > 0.0:
            scale = 10.0 ** round(math.log10(scale), 1)
        key = (sim.label, sim_mach.gpus_per_node, buckets, scale)
        if key not in cache:
            if replay:
                # Capture once per schedule shape (the node placement and
                # the compute scale do not change the event structure, only
                # its pricing — exactly what replay re-derives).
                skey = (sim.label, buckets)
                sched = schedules.get(skey)
                if sched is None:
                    cap = measure_plan(
                        _SIM_MODEL,
                        Workload(_SIM_CHANNELS, _SIM_BATCH),
                        sim,
                        machine,
                        eager=True,
                        dp_buckets=buckets,
                        compute_scale=1.0,
                        cap_dp_buckets=False,
                        workspace=workspace,
                        capture=True,
                    )
                    sched = schedules[skey] = cap.schedule
                cache[key] = replay_schedule(
                    sched, machine=sim_mach, compute_scale=scale
                ).overlaps()
            else:
                m = measure_plan(
                    _SIM_MODEL,
                    Workload(_SIM_CHANNELS, _SIM_BATCH),
                    sim,
                    sim_mach,
                    eager=True,
                    dp_buckets=buckets,
                    compute_scale=scale,
                    cap_dp_buckets=False,
                    workspace=workspace,
                )
                cache[key] = m.overlaps
        return cache[key]

    return oracle
