"""Closed-form per-GPU memory model of the FM under each strategy.

Reproduces the paper's memory figures (Figs. 6–8, 14, 15).  The model follows
the paper's structural arguments:

* tokenization parameters and activations are **linear in the channels a
  rank tokenizes** (per-channel embedding weights);
* the channel-aggregation cross-attention stores a score matrix **quadratic
  in the channels it spans** (FlashAttention covers the ViT's self-attention
  — §4.1 — but is "not directly applicable to cross-attention due to the
  uneven nature of the input and output variables", §3.2, so aggregation
  scores are materialized);
* TP shards the *embedding* dimension of attention/MLP weights and of the
  head-split activations, but cannot shard the channel axis (§4.3);
* FSDP shards parameter/gradient/optimizer state, not activations;
* D-CHAG moves tokenization and first-level aggregation onto ``C/tp``
  channels per rank and leaves only a ``tp``-channel final cross-attention.

All byte counts are per GPU for one micro-batch of size ``workload.batch``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.tree import build_tree
from .machine import MachineSpec
from .modelcfg import ModelConfig, transformer_param_count
from .plan import ParallelPlan, Precision, Workload

__all__ = ["MemoryBreakdown", "estimate_memory"]


@dataclass(frozen=True)
class MemoryBreakdown:
    """Per-GPU bytes, split the way the paper's stacked bars are."""

    tokenization_state: float
    tokenization_act: float
    aggregation_state: float
    aggregation_act: float
    transformer_state: float
    transformer_act: float
    gather_buffers: float

    @property
    def tokenization(self) -> float:
        return self.tokenization_state + self.tokenization_act

    @property
    def aggregation(self) -> float:
        return self.aggregation_state + self.aggregation_act + self.gather_buffers

    @property
    def transformer(self) -> float:
        return self.transformer_state + self.transformer_act

    @property
    def total(self) -> float:
        return self.tokenization + self.aggregation + self.transformer

    @property
    def tok_plus_agg_fraction(self) -> float:
        """The 50–90 % figure §4.3 quotes."""
        return (self.tokenization + self.aggregation) / self.total

    def fits(self, machine: MachineSpec, headroom: float = 0.92) -> bool:
        """Whether the breakdown fits one GPU's HBM (default 8 % headroom
        for fragmentation/runtime, matching practical allocator limits)."""
        return self.total <= machine.hbm_bytes * headroom

    def utilization(self, machine: MachineSpec) -> float:
        return self.total / machine.hbm_bytes

    def component_dict(self) -> dict[str, float]:
        return {
            "tokenization": self.tokenization,
            "aggregation": self.aggregation,
            "transformer": self.transformer,
        }


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


def estimate_memory(
    model: ModelConfig,
    workload: Workload,
    plan: ParallelPlan = ParallelPlan("serial"),
    precision: Precision = Precision(),
) -> MemoryBreakdown:
    """Per-GPU memory for one training step of the generic FM."""
    D = model.dim
    N = model.tokens
    pp = model.patch * model.patch
    H = model.heads
    C = workload.channels
    B = workload.batch
    tp = plan.tp
    fsdp = plan.fsdp
    pb, ab = precision.param_bytes, precision.act_bytes
    ab = ab * precision.act_overhead  # eager-autograd retention overhead
    state = precision.state_bytes  # per param: weight + grad + optimizer

    # ---------------- tokenization -------------------------------------
    local_c = C if plan.strategy in ("serial", "tp") else _ceil_div(C, tp)
    tok_params = local_c * (pp * D + D) + local_c * D  # embed + bias + channel-ID
    tok_state = tok_params * state / fsdp + (tok_params * pb if fsdp > 1 else 0)
    tok_act = B * local_c * N * (pp + D) * ab

    # ---------------- channel aggregation ------------------------------
    gather = 0.0
    if plan.strategy in ("serial", "tp", "dist_tok"):
        # One cross-attention spanning all C channels.  TP shards the
        # embedding dim of weights and the head-split activations, but the
        # channel axis — and hence the quadratic score matrix per head —
        # survives on every rank (divided only by the head sharding).
        agg_params = (4 * D * D + 4 * D) / tp
        agg_act = B * N * ab * (
            3 * C * D / tp          # q/k/v projections over C channels
            + (H / tp) * C * C      # score matrix (quadratic in C)
            + C * D / tp            # attention output pre-proj
            + D                     # aggregated representation (replicated)
        )
        if plan.strategy == "dist_tok":
            # AllGather materializes the full token tensor on every rank —
            # the overhead that negates distributed tokenization (§4.4).
            gather = B * C * N * D * ab
    else:  # dchag
        spec = build_tree(local_c, plan.dchag_fanout)
        n_units = len(spec.group_sizes)
        if plan.dchag_kind == "cross":
            # Rank-local units: full embedding dim (not TP-sharded), full heads.
            unit_params = n_units * (4 * D * D + 4 * D)
            unit_act = sum(
                B * N * ab * (3 * s * D + H * s * s + s * D + D)
                for s in spec.group_sizes
            )
            if spec.has_root:
                unit_params += 4 * D * D + 4 * D
                unit_act += B * N * ab * (3 * n_units * D + H * n_units**2 + n_units * D + D)
        else:  # linear mixers: C_in (+1) params each, activations just outputs
            unit_params = sum(s + 1 for s in spec.group_sizes)
            unit_act = sum(B * N * ab * D for _ in spec.group_sizes)
            if spec.has_root:
                unit_params += n_units + 1
                unit_act += B * N * ab * D
        # Final shared cross-attention over the tp gathered channels.
        final_div = tp if plan.tp_shard_final else 1
        final_params = (4 * D * D + 4 * D) / final_div
        final_act = B * N * ab * (
            3 * tp * D / final_div + (H / final_div) * tp * tp + tp * D / final_div + D
        )
        agg_params = unit_params + final_params
        agg_act = unit_act + final_act
        gather = B * tp * N * D * ab  # the one-channel-per-rank AllGather buffer

    agg_state = agg_params * state / fsdp + (agg_params * pb if fsdp > 1 else 0)

    # ---------------- transformer blocks --------------------------------
    vit_params = transformer_param_count(model) / tp
    vit_state = vit_params * state / fsdp
    if fsdp > 1:
        # One materialized unit (a block) lives at full (TP-shard) size.
        vit_state += (transformer_param_count(model) / model.depth / tp) * pb
    # Per block stored activations (FlashAttention ⇒ no N² score tensor):
    # replicated: 2 LN outputs + 2 residuals (4·D); sharded: qkv (3·D/tp),
    # attention output (D/tp), MLP hidden + GELU (2·mlp·D/tp).
    mlp = int(model.mlp_ratio)
    per_block = B * N * ab * (4 * D + (3 * D + D + 2 * mlp * D) / tp)
    # Ulysses SP shards every block activation on the token axis (attention
    # holds heads/sp full-sequence heads — same footprint as N/sp tokens of
    # all heads); parameters stay replicated across sp, so SP's memory
    # relief is activation-only — exactly the term that dominates at long N.
    vit_act = model.depth * per_block / plan.sp + B * N * D * ab  # + final norm

    return MemoryBreakdown(
        tokenization_state=float(tok_state),
        tokenization_act=float(tok_act),
        aggregation_state=float(agg_state),
        aggregation_act=float(agg_act),
        transformer_state=float(vit_state),
        transformer_act=float(vit_act),
        gather_buffers=float(gather),
    )
