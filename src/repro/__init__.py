"""repro — reproduction of "Distributed Cross-Channel Hierarchical Aggregation
for Foundation Models" (D-CHAG, SC 2025).

Subpackages
-----------
``repro.tensor``    NumPy autograd engine (PyTorch substitute)
``repro.nn``        neural-network module library
``repro.dist``      simulated multi-rank distributed runtime (RCCL substitute)
``repro.parallel``  TP / FSDP / DP / DeviceMesh strategies
``repro.core``      the D-CHAG method itself
``repro.elastic``   fault-tolerant elastic training (sharded ckpts, resharding)
``repro.perf``      Frontier machine model + memory/FLOPs/comm/throughput models
``repro.data``      synthetic hyperspectral & ERA5-like datasets, regridding
``repro.models``    ChannelViT / MAE / weather-forecaster assemblies
``repro.train``     training loop, losses, metrics
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
