"""Learning-rate schedules (linear warmup + cosine decay, the ViT default)."""

from __future__ import annotations

import math

__all__ = ["cosine_warmup", "constant_lr"]


def cosine_warmup(step: int, total_steps: int, base_lr: float, warmup_steps: int = 0, min_lr: float = 0.0) -> float:
    """LR at *step* for linear warmup followed by cosine decay to *min_lr*."""
    if total_steps < 1:
        raise ValueError("total_steps must be >= 1")
    if warmup_steps and step < warmup_steps:
        return base_lr * (step + 1) / warmup_steps
    span = max(1, total_steps - warmup_steps)
    progress = min(1.0, (step - warmup_steps) / span)
    return min_lr + 0.5 * (base_lr - min_lr) * (1.0 + math.cos(math.pi * progress))


def constant_lr(step: int, total_steps: int, base_lr: float, **_: float) -> float:
    return base_lr
