"""Evaluation metrics: latitude-weighted RMSE per variable (Fig. 12) and
reconstruction error summaries (Fig. 11)."""

from __future__ import annotations

import numpy as np

from ..data.era5 import EVAL_CHANNELS, latitude_weights

__all__ = [
    "lat_weighted_rmse",
    "eval_channel_rmse",
    "masked_reconstruction_rmse",
    "anomaly_correlation",
]


def lat_weighted_rmse(pred: np.ndarray, target: np.ndarray, channel: int | None = None) -> float:
    """cos(lat)-weighted RMSE over ``[B, C, H, W]`` fields (ClimaX metric).

    With *channel* given, the metric is computed for that channel alone —
    how the paper reports Z500 / T850 / U10.
    """
    pred = np.asarray(pred, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    if pred.shape != target.shape or pred.ndim != 4:
        raise ValueError(f"expected matching [B,C,H,W], got {pred.shape} vs {target.shape}")
    if channel is not None:
        pred = pred[:, channel : channel + 1]
        target = target[:, channel : channel + 1]
    w = latitude_weights(pred.shape[-2]).astype(np.float64)[None, None, :, None]
    mse = (w * (pred - target) ** 2).mean()
    return float(np.sqrt(mse))


def eval_channel_rmse(pred: np.ndarray, target: np.ndarray) -> dict[str, float]:
    """RMSE for the paper's three headline variables (Z500, T850, U10)."""
    return {
        name: lat_weighted_rmse(pred, target, channel=idx)
        for name, idx in EVAL_CHANNELS.items()
    }


def anomaly_correlation(
    pred: np.ndarray,
    target: np.ndarray,
    climatology: np.ndarray,
    channel: int | None = None,
) -> float:
    """Latitude-weighted anomaly correlation coefficient (ACC).

    The standard medium-range-forecast skill score (WeatherBench/ClimaX):
    the weighted correlation between predicted and true *anomalies* from a
    climatology field (broadcastable to ``[B, C, H, W]``).  1.0 is a perfect
    forecast; ~0 is no skill.
    """
    pred = np.asarray(pred, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    clim = np.broadcast_to(np.asarray(climatology, dtype=np.float64), pred.shape)
    if pred.shape != target.shape or pred.ndim != 4:
        raise ValueError(f"expected matching [B,C,H,W], got {pred.shape} vs {target.shape}")
    if channel is not None:
        pred = pred[:, channel : channel + 1]
        target = target[:, channel : channel + 1]
        clim = clim[:, channel : channel + 1]
    w = latitude_weights(pred.shape[-2]).astype(np.float64)[None, None, :, None]
    pa = pred - clim
    ta = target - clim
    num = (w * pa * ta).sum()
    den = np.sqrt((w * pa * pa).sum() * (w * ta * ta).sum())
    if den == 0:
        raise ValueError("anomaly_correlation: zero-variance anomalies")
    return float(num / den)


def masked_reconstruction_rmse(
    pred_tokens: np.ndarray, target_tokens: np.ndarray, mask: np.ndarray
) -> float:
    """RMSE restricted to masked patches, for MAE eval ([B, N, p²·C] layout)."""
    pred = np.asarray(pred_tokens, dtype=np.float64)
    target = np.asarray(target_tokens, dtype=np.float64)
    m = np.asarray(mask, dtype=bool)
    diff = pred[:, m, :] - target[:, m, :]
    return float(np.sqrt((diff**2).mean()))
