"""Training loop utilities shared by the convergence experiments.

``Trainer`` drives any model exposing ``loss(*batch) -> Tensor`` over an
iterable of batches, with AdamW, optional warmup-cosine schedule, gradient
clipping, and a recorded loss history — enough to regenerate the training
curves of Figs. 11 and 12 for both the baseline and the D-CHAG runs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

import numpy as np

from ..nn import Module
from ..tensor import AdamW, Tensor, clip_grad_norm
from .schedule import cosine_warmup

__all__ = ["TrainConfig", "TrainResult", "Trainer", "seed_everything"]


def seed_everything(seed: int) -> np.random.Generator:
    """One seeded generator per call site keeps SPMD ranks reproducible."""
    return np.random.default_rng(seed)


@dataclass(frozen=True)
class TrainConfig:
    lr: float = 1e-3
    weight_decay: float = 0.01
    warmup_steps: int = 10
    total_steps: int = 100
    grad_clip: float = 1.0
    use_schedule: bool = True
    # Every N completed steps the trainer's checkpoint_hook fires (0 = never).
    checkpoint_every: int = 0


@dataclass
class TrainResult:
    losses: list[float] = field(default_factory=list)
    grad_norms: list[float] = field(default_factory=list)
    lrs: list[float] = field(default_factory=list)
    # Wall-clock seconds the training loop spent blocked inside
    # checkpoint_hook, summed over the run — the cadence cost an async
    # writer exists to shrink.
    save_seconds: float = 0.0
    saves: int = 0

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")

    def smoothed(self, window: int = 10) -> np.ndarray:
        arr = np.asarray(self.losses, dtype=np.float64)
        if window <= 1 or arr.size < window:
            return arr
        kernel = np.ones(window) / window
        return np.convolve(arr, kernel, mode="valid")


class Trainer:
    """Drives ``model.loss(*batch)`` with AdamW.

    ``grad_hook`` runs after backward and before the optimizer step — the
    hook point where DP wrappers AllReduce gradients.  ``pre_step_hook(step)``
    runs before each step begins (where elastic runs consult their failure
    plan via ``comm.tick``), and ``checkpoint_hook(step)`` fires after every
    ``config.checkpoint_every``-th completed step with the just-finished step
    index.  ``start_step`` resumes mid-schedule: the LR schedule, the step
    counter and the checkpoint cadence all continue from that index (restore
    optimizer state separately via ``trainer.optimizer.load_state_dict``).
    """

    def __init__(
        self,
        model: Module,
        config: TrainConfig = TrainConfig(),
        params: Sequence[Tensor] | None = None,
        grad_hook: Callable[[], None] | None = None,
        pre_step_hook: Callable[[int], None] | None = None,
        checkpoint_hook: Callable[[int], None] | None = None,
        start_step: int = 0,
        clip_fn: Callable[[Sequence[Tensor], float], float] | None = None,
    ) -> None:
        self.model = model
        self.config = config
        self.params = list(params) if params is not None else model.parameters()
        self.optimizer = AdamW(self.params, lr=config.lr, weight_decay=config.weight_decay)
        self.grad_hook = grad_hook
        self.pre_step_hook = pre_step_hook
        self.checkpoint_hook = checkpoint_hook
        # Sharded params (FSDP) need a *global* norm: each rank holds a
        # disjoint shard, so the default local clip would scale ranks
        # inconsistently.  clip_fn lets wrappers substitute a distributed
        # norm while keeping the clip-then-step ordering here.
        self.clip_fn = clip_fn if clip_fn is not None else clip_grad_norm
        self.result = TrainResult()
        if start_step < 0:
            raise ValueError(f"start_step must be >= 0, got {start_step}")
        self._step = int(start_step)

    @property
    def step_index(self) -> int:
        """Index of the next step to run (== completed steps when fresh)."""
        return self._step

    def step(self, *batch) -> float:
        """One optimizer step on one batch; returns the loss value."""
        cfg = self.config
        if self.pre_step_hook is not None:
            self.pre_step_hook(self._step)
        if cfg.use_schedule:
            lr = cosine_warmup(self._step, cfg.total_steps, cfg.lr, cfg.warmup_steps)
            self.optimizer.lr = lr
        else:
            lr = cfg.lr
        self.model.zero_grad()
        # model.zero_grad() only reaches parameters registered in the module
        # tree; the trained params may live outside it (FSDP flat shards), so
        # zero the optimizer's list too or their grads accumulate silently.
        self.optimizer.zero_grad()
        loss = self.model.loss(*batch)
        loss.backward()
        if self.grad_hook is not None:
            self.grad_hook()
        # With clipping disabled the true gradient norm is still recorded:
        # clip_fn at max_norm=inf computes the (possibly distributed) global
        # norm without scaling anything, so TrainResult.grad_norms reports
        # real magnitudes for unclipped runs instead of a flat 0.0.
        max_norm = cfg.grad_clip if cfg.grad_clip else float("inf")
        norm = self.clip_fn(self.params, max_norm)
        self.optimizer.step()
        value = float(loss.item())
        self.result.losses.append(value)
        self.result.grad_norms.append(float(norm))
        self.result.lrs.append(lr)
        self._step += 1
        if (
            self.checkpoint_hook is not None
            and cfg.checkpoint_every > 0
            and self._step % cfg.checkpoint_every == 0
        ):
            t0 = time.perf_counter()
            self.checkpoint_hook(self._step)
            self.result.save_seconds += time.perf_counter() - t0
            self.result.saves += 1
        return value

    def fit(self, batches: Iterable, max_steps: int | None = None) -> TrainResult:
        limit = max_steps if max_steps is not None else self.config.total_steps
        for batch in batches:
            if self._step >= limit:
                break
            # Loaders yield (inputs, targets) as tuples *or* lists; both
            # unpack into model.loss(*batch).  Anything else (a bare
            # Tensor/array batch) passes through as a single argument.
            if isinstance(batch, (tuple, list)):
                self.step(*batch)
            else:
                self.step(batch)
        return self.result
