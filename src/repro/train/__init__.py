"""Training harness: trainer, LR schedules, and evaluation metrics."""

from .metrics import (
    anomaly_correlation,
    eval_channel_rmse,
    lat_weighted_rmse,
    masked_reconstruction_rmse,
)
from .evaluate import EarlyStopping, evaluate_forecaster, evaluate_mae
from .schedule import constant_lr, cosine_warmup
from .trainer import TrainConfig, Trainer, TrainResult, seed_everything

__all__ = [
    "Trainer",
    "TrainConfig",
    "TrainResult",
    "seed_everything",
    "cosine_warmup",
    "constant_lr",
    "lat_weighted_rmse",
    "eval_channel_rmse",
    "masked_reconstruction_rmse",
    "anomaly_correlation",
    "evaluate_forecaster",
    "evaluate_mae",
    "EarlyStopping",
]
