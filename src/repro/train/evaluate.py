"""Evaluation loops for the two paper applications."""

from __future__ import annotations

import numpy as np

from ..data.era5 import SyntheticERA5
from ..tensor import no_grad
from .metrics import anomaly_correlation, eval_channel_rmse, lat_weighted_rmse

__all__ = ["evaluate_forecaster", "evaluate_mae", "EarlyStopping"]


def evaluate_forecaster(
    model,
    dataset: SyntheticERA5,
    indices: np.ndarray,
    batch_size: int = 8,
    climatology: np.ndarray | None = None,
) -> dict[str, float]:
    """Test-set metrics for a :class:`~repro.models.WeatherForecaster`.

    Returns overall lat-weighted RMSE, the paper's Z500/T850/U10 RMSEs, and
    (when *climatology* is given) the ACC skill score.
    """
    was_training = model.training
    model.eval()
    preds, targets = [], []
    try:
        with no_grad():
            for lo in range(0, len(indices), batch_size):
                x, y, meta = dataset.batch(indices[lo : lo + batch_size])
                preds.append(model(x, meta).data)
                targets.append(y)
    finally:
        model.train(was_training)
    pred = np.concatenate(preds)
    target = np.concatenate(targets)
    out = {"rmse": lat_weighted_rmse(pred, target)}
    out.update({f"rmse_{k}": v for k, v in eval_channel_rmse(pred, target).items()})
    if climatology is not None:
        out["acc"] = anomaly_correlation(pred, target, climatology)
    return out


def evaluate_mae(
    model,
    images: np.ndarray,
    mask_rng: np.random.Generator,
    batch_size: int = 8,
) -> dict[str, float]:
    """Masked-reconstruction metrics for a :class:`~repro.models.MAEModel`."""
    from .metrics import masked_reconstruction_rmse

    was_training = model.training
    model.eval()
    losses, rmses = [], []
    try:
        with no_grad():
            for lo in range(0, len(images), batch_size):
                batch = images[lo : lo + batch_size]
                pred, _, mask = model(batch, mask_rng)
                target = model.reconstruction_target(batch)
                rmses.append(masked_reconstruction_rmse(pred.data, target, mask))
                diff = (pred.data - target) * mask[None, :, None]
                denom = mask.sum() * target.shape[0] * target.shape[2]
                losses.append(float((diff**2).sum() / denom))
    finally:
        model.train(was_training)
    return {
        "masked_mse": float(np.mean(losses)),
        "masked_rmse": float(np.mean(rmses)),
    }


class EarlyStopping:
    """Stop when a metric hasn't improved for *patience* evaluations."""

    def __init__(self, patience: int = 5, min_delta: float = 0.0) -> None:
        if patience < 1:
            raise ValueError("patience must be >= 1")
        self.patience = patience
        self.min_delta = min_delta
        self.best = float("inf")
        self.bad_count = 0

    def step(self, value: float) -> bool:
        """Record *value* (lower is better); returns True when training
        should stop."""
        if value < self.best - self.min_delta:
            self.best = value
            self.bad_count = 0
        else:
            self.bad_count += 1
        return self.bad_count >= self.patience
