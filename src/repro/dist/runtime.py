"""The threaded SPMD runtime: one Python thread per simulated rank.

:func:`run_spmd` spawns ``world_size`` threads, hands each a
:class:`Communicator`, and joins them.  Collectives rendezvous per process
group: the *n*-th collective a rank issues on a group meets the *n*-th
collective of every other member, the last arriver reduces the contributions
**in group-rank order** (so results are bitwise identical on every rank and
across repeated runs — the invariant D-CHAG's replicated final layer relies
on, §3.3), and everyone leaves with a private copy.

Failure semantics: an exception on any rank aborts the whole world.  Blocked
peers poll an abort flag while waiting, so a barrier whose partner died
raises instead of deadlocking, and :func:`run_spmd` re-raises the original
failure as :class:`SpmdError` ("rank N failed: ...").  A rank that issues a
*different* collective than its peers on the same group slot fails fast with
a mismatch error rather than timing out.

Worlds are fully isolated: every :func:`run_spmd` call builds a fresh
:class:`World` with its own groups, mailboxes and
:class:`~repro.dist.stats.TrafficLog`, so concurrent worlds driven from
different threads never interfere.

Virtual clock: ``run_spmd(..., clock=VirtualClock(machine))`` attaches a
deterministic simulated clock (:class:`repro.perf.clock.VirtualClock`, duck
typed — this module never imports it).  Every collective then advances the
member ranks to ``max(arrival times) + α–β collective cost``, every traffic
record carries virtual ``vstart``/``vend`` stamps, and ranks can charge
compute intervals with :meth:`Communicator.charge_compute` — the substrate
from which :mod:`repro.perf.overlap` derives communication/compute overlap
fractions instead of assuming them.  Timelines depend only on program order
(never on thread scheduling), so repeated runs are bitwise identical.
"""

from __future__ import annotations

import contextlib
import threading
import time
from collections import deque
from typing import Any, Callable, Iterator, Sequence

import numpy as np

from .stats import TrafficLog, TrafficRecord, ring_wire_bytes

__all__ = [
    "SpmdError",
    "ProcessGroup",
    "World",
    "Communicator",
    "run_spmd",
    "run_spmd_world",
    "split_sizes",
]

# How often blocked ranks re-check the abort flag.  Completions are signalled
# with notify_all, so this only bounds abort latency, not collective latency.
_POLL_S = 0.05

_DEFAULT_TIMEOUT_S = 120.0

_REDUCE_OPS = ("sum", "mean", "max", "min")


class SpmdError(RuntimeError):
    """A simulated SPMD world failed (rank exception, misuse, or timeout).

    When raised by :func:`run_spmd_world` the error carries post-mortem
    context for elastic supervisors: ``rank`` is the world rank that failed
    (``-1`` for driver-side timeouts), and ``world`` is the dead
    :class:`World`, whose ``rank_status`` and ``traffic`` survive the abort.
    """

    rank: int = -1
    world: "World | None" = None


class _Aborted(BaseException):
    """Internal: unwinds a rank thread after the world aborted.

    Derives from BaseException so user-level ``except Exception`` blocks
    inside rank functions cannot swallow the shutdown.
    """


class ProcessGroup:
    """An ordered subset of world ranks that communicates collectively.

    The *i*-th entry of ``ranks`` is group-rank *i*; reductions accumulate in
    this order, which is what makes them deterministic.
    """

    __slots__ = ("world", "ranks", "size", "_index", "_state")

    def __init__(self, world: "World", ranks: tuple[int, ...]) -> None:
        self.world = world
        self.ranks = ranks
        self.size = len(ranks)
        self._index = {r: i for i, r in enumerate(ranks)}
        self._state = world._group_state(ranks)

    def rank_index(self, world_rank: int) -> int:
        """This world rank's position within the group."""
        try:
            return self._index[world_rank]
        except KeyError:
            raise SpmdError(f"rank {world_rank} is not a member of group {list(self.ranks)}") from None

    def __contains__(self, world_rank: int) -> bool:
        return world_rank in self._index

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ProcessGroup(ranks={list(self.ranks)})"


class _Slot:
    """One collective rendezvous: the n-th collective issued on a group."""

    __slots__ = (
        "signature",
        "data",
        "arrived",
        "done",
        "result",
        "error",
        "consumed",
        "arrivals",
        "payload_max",
        "start",
        "finish",
    )

    def __init__(self, signature: tuple) -> None:
        self.signature = signature
        self.data: dict[int, Any] = {}
        self.arrived = 0
        self.done = False
        self.result: Any = None
        self.error: BaseException | None = None
        self.consumed = 0
        # Virtual-clock bookkeeping (unused without a clock): per-group-rank
        # arrival bids, the largest payload bid (the padded-collective
        # convention), and the shared channel start / completion times.
        self.arrivals: dict[int, float] = {}
        self.payload_max = 0
        self.start = -1.0
        self.finish = -1.0


class _GroupState:
    """Shared rendezvous state for one ranks-tuple (lazily created)."""

    __slots__ = ("cond", "slots", "next_seq")

    def __init__(self) -> None:
        self.cond = threading.Condition()
        self.slots: dict[int, _Slot] = {}
        # Per-rank count of collectives issued on this group so far.
        self.next_seq: dict[int, int] = {}


class World:
    """Shared state of one SPMD run: groups, mailboxes, traffic, abort flag.

    ``failure_plan`` is any object exposing ``check(rank, step)`` (see
    :class:`repro.elastic.FailurePlan`); ranks consult it through
    :meth:`Communicator.tick` so tests can script deterministic crashes.
    ``rank_status`` records each rank's clean exit state — ``"running"``,
    ``"ok"``, ``"failed"`` (the rank that raised) or ``"aborted"`` (peers
    unwound by the abort) — and stays readable after the world dies.

    ``clock`` is an optional virtual clock (duck typed against
    :class:`repro.perf.clock.VirtualClock`: ``bind``/``now``/``sync``/
    ``charge``/``collective_seconds``/``p2p_seconds``); when installed,
    every collective advances the simulated per-rank timelines and stamps
    its traffic records with virtual start/end times.
    """

    def __init__(
        self,
        size: int,
        timeline: bool = False,
        failure_plan: Any | None = None,
        clock: Any | None = None,
    ) -> None:
        if size < 1:
            raise ValueError(f"world size must be >= 1, got {size}")
        self.size = size
        self.traffic = TrafficLog(timeline=timeline)
        self.failure_plan = failure_plan
        self.clock = clock
        if clock is not None:
            clock.bind(size)
        self.rank_status: list[str] = ["running"] * size
        self._lock = threading.Lock()
        self._group_states: dict[tuple[int, ...], _GroupState] = {}
        self._abort_event = threading.Event()
        self._failure: tuple[int, BaseException] | None = None
        self._mail: dict[tuple[int, int, int], deque] = {}
        self._mail_cond = threading.Condition()
        self.default_group = ProcessGroup(self, tuple(range(size)))

    # -- group bookkeeping -------------------------------------------------
    def _group_state(self, ranks: tuple[int, ...]) -> _GroupState:
        with self._lock:
            state = self._group_states.get(ranks)
            if state is None:
                state = self._group_states[ranks] = _GroupState()
            return state

    def group(self, ranks: Sequence[int]) -> ProcessGroup:
        ranks = tuple(int(r) for r in ranks)
        if len(set(ranks)) != len(ranks):
            raise SpmdError(f"duplicate ranks in group {list(ranks)}")
        if not ranks:
            raise SpmdError("cannot create an empty process group")
        for r in ranks:
            if not 0 <= r < self.size:
                raise SpmdError(f"rank {r} out of range for world of size {self.size}")
        return ProcessGroup(self, ranks)

    # -- failure handling ----------------------------------------------------
    @property
    def aborted(self) -> bool:
        return self._abort_event.is_set()

    @property
    def failed_ranks(self) -> list[int]:
        """World ranks whose thread raised (not peers unwound by the abort)."""
        return [r for r, s in enumerate(self.rank_status) if s == "failed"]

    def abort(self, rank: int, exc: BaseException) -> None:
        """Record the first failure and wake every blocked rank."""
        with self._lock:
            if self._failure is None:
                self._failure = (rank, exc)
        self._abort_event.set()
        with self._mail_cond:
            self._mail_cond.notify_all()
        with self._lock:
            states = list(self._group_states.values())
        for state in states:
            with state.cond:
                state.cond.notify_all()

    def _check_abort(self) -> None:
        if self._abort_event.is_set():
            raise _Aborted()


def split_sizes(total: int, parts: int) -> tuple[int, ...]:
    """Partition *total* elements over *parts* ranks, remainder spread first.

    The shared uneven-sharding convention (``np.array_split``): the first
    ``total % parts`` ranks own one extra element, all blocks contiguous.
    """
    if parts < 1:
        raise ValueError(f"parts must be >= 1, got {parts}")
    if total < 0:
        raise ValueError(f"total must be >= 0, got {total}")
    base, rem = divmod(total, parts)
    return tuple(base + 1 if i < rem else base for i in range(parts))


def _copy_in(value) -> np.ndarray:
    """Snapshot a contribution so later mutation by the sender cannot leak."""
    return np.array(value, copy=True)


def _check_mean_dtype(op: str, arr: np.ndarray) -> None:
    """A mean of integer arrays would be cast back and silently truncate."""
    if op == "mean" and not np.issubdtype(arr.dtype, np.floating):
        raise SpmdError(
            f"mean reduction requires a floating-point array, got dtype {arr.dtype}; "
            "cast before reducing or use op='sum'"
        )


def _reduce(arrays: list[np.ndarray], op: str) -> np.ndarray:
    """Reduce in list order — fixed group-rank order, hence deterministic."""
    shapes = {a.shape for a in arrays}
    if len(shapes) > 1:
        raise SpmdError(f"mismatched shapes in reduction: {sorted(shapes)}")
    dtypes = {a.dtype for a in arrays}
    if len(dtypes) > 1:
        # The result is cast to group-rank-0's dtype; mixed inputs would be
        # silently truncated (e.g. float contributions into an int buffer).
        raise SpmdError(f"mismatched dtypes in reduction: {sorted(map(str, dtypes))}")
    # In-place into a private copy: this runs under the group's rendezvous
    # lock, so avoid n-1 full-size temporaries there.
    out = arrays[0].copy()
    if op in ("sum", "mean"):
        for a in arrays[1:]:
            out += a
        if op == "mean":
            out /= len(arrays)  # float-only; int mean is rejected at the call site
    elif op == "max":
        for a in arrays[1:]:
            np.maximum(out, a, out=out)
    elif op == "min":
        for a in arrays[1:]:
            np.minimum(out, a, out=out)
    else:  # validated at the call site; defensive here
        raise SpmdError(f"unknown reduce op {op!r}")
    return out


class Communicator:
    """One rank's handle on the world — the RCCL substitute.

    All collectives take an optional ``group``; ``None`` means the world
    group.  ``phase`` is a free-form label ("forward", "backward", ...)
    stamped on every traffic record this rank emits.
    """

    def __init__(self, world: World, rank: int) -> None:
        self.world = world
        self.rank = rank
        self.size = world.size
        self.phase = ""

    # -- plumbing ----------------------------------------------------------
    def group(self, ranks: Sequence[int]) -> ProcessGroup:
        """Create (or re-attach to) the process group over *ranks*."""
        return self.world.group(ranks)

    def tick(self, step: int) -> None:
        """Consult the world's failure plan at a step boundary.

        Trainers call this once per training step; a scripted
        :class:`~repro.elastic.FailurePlan` raises on its (rank, step) match,
        which aborts the world exactly like a real rank loss.  A no-op when
        the world has no plan installed.
        """
        plan = self.world.failure_plan
        if plan is not None:
            plan.check(self.rank, step)

    def _resolve(self, group: ProcessGroup | None) -> ProcessGroup:
        group = group if group is not None else self.world.default_group
        if self.rank not in group:
            raise SpmdError(
                f"rank {self.rank} called a collective on foreign group {list(group.ranks)}"
            )
        return group

    def _log(
        self,
        op: str,
        payload_bytes: int,
        group_size: int,
        vstart: float = -1.0,
        vend: float = -1.0,
    ) -> None:
        wire = ring_wire_bytes(op, payload_bytes, group_size)
        self.world.traffic.add(
            TrafficRecord(
                rank=self.rank,
                op=op,
                phase=self.phase,
                payload_bytes=int(payload_bytes),
                wire_bytes=int(wire),
                group_size=group_size,
                vstart=vstart,
                vend=vend,
            )
        )

    def _vnow(self) -> float:
        """This rank's virtual time (``-1`` without a clock)."""
        clock = self.world.clock
        return clock.now(self.rank) if clock is not None else -1.0

    def _rendezvous(
        self,
        group: ProcessGroup,
        signature: tuple,
        contribution,
        compute: Callable[[dict[int, Any]], Any],
        payload_bytes: int = 0,
    ) -> tuple[Any, float, float]:
        """Join the group's next collective slot; return its shared result.

        The last arriver runs *compute* over contributions keyed by group
        rank — **outside** the group's critical section, so a large
        reduction never serializes unrelated groups' rendezvous on this
        state (contributions buffer under the lock; only the done/notify
        handoff re-acquires it).  Callers must copy out anything they plan
        to mutate.

        Returns ``(result, vstart, vend)``: this rank's virtual issue time
        and the group-wide virtual completion (slowest arrival bid +
        collective cost priced by the world's clock), both ``-1.0`` without
        a clock.  With a clock, op name ``signature[0]`` is priced over the
        largest per-rank payload bid (the padded-collective convention); a
        *blocking* collective advances every member's clock to the shared
        completion, while one issued inside an eager clock phase (see
        :class:`repro.perf.clock.VirtualClock` ``eager_phases``) only joins
        the rank's outstanding issue queue — its exposure is settled at the
        next drain point, and the rank's compute clock keeps running.
        """
        state = group._state
        me = group.rank_index(self.rank)
        clock = self.world.clock
        op = signature[0]
        if clock is not None:
            # The arrival bid feeds the group-wide start maximum.  Issue-
            # queue clocks distinguish it from the rank's compute clock
            # (channel-free time for eager dispatch; blocking ops drain the
            # queue first); legacy duck clocks fall back to `now`.
            if hasattr(clock, "collective_arrival"):
                bid = clock.collective_arrival(self.rank, op, self.phase)
            else:
                bid = clock.now(self.rank)
            vstart = clock.now(self.rank)
        else:
            bid = vstart = -1.0
        with state.cond:
            seq = state.next_seq.get(self.rank, 0)
            state.next_seq[self.rank] = seq + 1
            slot = state.slots.get(seq)
            if slot is None:
                slot = state.slots[seq] = _Slot(signature)
            elif slot.signature != signature:
                raise SpmdError(
                    f"collective mismatch on group {list(group.ranks)} slot {seq}: "
                    f"rank {self.rank} issued {signature[0]!r} but peers issued "
                    f"{slot.signature[0]!r}"
                )
            slot.data[me] = contribution
            if clock is not None:
                slot.arrivals[me] = bid
                if payload_bytes > slot.payload_max:
                    slot.payload_max = int(payload_bytes)
            slot.arrived += 1
            last = slot.arrived == group.size
        if last:
            # Reduction compute runs outside the per-group critical section:
            # no other rank mutates slot.data once everyone has arrived.
            result: Any = None
            error: BaseException | None = None
            try:
                result = compute(slot.data)
            except BaseException as exc:  # surfaces on every member rank
                error = exc
            start = finish = -1.0
            if clock is not None:
                start = max(slot.arrivals.values())
                finish = start + clock.collective_seconds(
                    op, slot.payload_max, group.ranks
                )
            with state.cond:
                slot.result, slot.error = result, error
                slot.start, slot.finish = start, finish
                slot.done = True
                state.cond.notify_all()
        with state.cond:
            while not slot.done:
                self.world._check_abort()
                state.cond.wait(_POLL_S)
            error, result = slot.error, slot.result
            start, finish = slot.start, slot.finish
            slot.consumed += 1
            if slot.consumed == group.size:
                del state.slots[seq]
        if clock is not None and finish >= 0.0:
            if hasattr(clock, "collective_complete"):
                clock.collective_complete(
                    self.rank, op, self.phase, vstart, start, finish
                )
            else:
                clock.sync(self.rank, finish)
        if error is not None:
            raise SpmdError(f"collective failed: {error}") from error
        return result, vstart, finish

    def _run_collective(
        self,
        group: ProcessGroup,
        signature: tuple,
        contribution,
        compute: Callable[[dict[int, Any]], Any],
        payload_bytes: int,
    ):
        """Rendezvous + traffic accounting for one logged collective.

        A collective that fails or is unwound by a world abort is **still
        logged** (with ``vend=-1.0``, marking it incomplete) so post-mortem
        traffic accounting across a failure boundary sees every op each
        rank issued — the convention the elastic recovery-cost benchmarks
        rely on.
        """
        op = signature[0]
        try:
            result, vs, ve = self._rendezvous(
                group, signature, contribution, compute, payload_bytes
            )
        except BaseException:
            self._log(op, payload_bytes, group.size, self._vnow(), -1.0)
            raise
        self._log(op, payload_bytes, group.size, vs, ve)
        return result

    # -- virtual clock -----------------------------------------------------
    def now(self) -> float:
        """This rank's virtual time (``-1.0`` when no clock is installed)."""
        return self._vnow()

    def charge_compute(
        self, seconds: float, phase: str = "compute", label: str = ""
    ) -> tuple[float, float] | None:
        """Advance this rank's virtual clock by a compute interval.

        The parallel wrappers (:class:`~repro.parallel.DataParallel`,
        :class:`~repro.parallel.FSDPModel`, :class:`~repro.parallel.TPContext`)
        call this so rank timelines interleave compute with communication and
        :mod:`repro.perf.overlap` can derive overlap fractions.  Returns the
        ``(start, end)`` virtual interval, or ``None`` when the world has no
        clock (a no-op, so instrumented code runs unchanged without one).
        """
        clock = self.world.clock
        if clock is None or seconds <= 0.0:
            return None
        return clock.charge(self.rank, float(seconds), phase=phase, label=label)

    def drain_comm(self) -> float:
        """Settle this rank's outstanding eager collectives (a sync point).

        With an issue-queue clock (``VirtualClock(..., eager_phases=...)``)
        this advances the rank past every in-flight collective, charging
        each its exposed seconds — the virtual analogue of
        ``stream.synchronize()``.  Returns the rank's (possibly advanced)
        virtual time; a no-op without a clock or with a fully blocking one.
        The runtime drains automatically at rank exit and before every
        blocking collective, so explicit calls only matter at mid-step sync
        points (e.g. before reading an optimizer step's wall time).
        """
        clock = self.world.clock
        if clock is None:
            return -1.0
        if hasattr(clock, "drain"):
            return clock.drain(self.rank)
        return clock.now(self.rank)

    @contextlib.contextmanager
    def phase_scope(self, phase: str) -> Iterator[None]:
        """Stamp every traffic record issued inside with *phase*."""
        prev = self.phase
        self.phase = phase
        try:
            yield
        finally:
            self.phase = prev

    # -- collectives -------------------------------------------------------
    def barrier(self, group: ProcessGroup | None = None) -> None:
        """Block until every group member reaches the same barrier call.

        Not logged as traffic (it moves no payload), but with a clock it
        still costs its latency steps and synchronizes the group's virtual
        timelines to the slowest arrival.
        """
        group = self._resolve(group)
        if group.size == 1:
            return
        self._rendezvous(group, ("barrier",), None, lambda data: None)

    def all_reduce(
        self, array, op: str = "sum", group: ProcessGroup | None = None
    ) -> np.ndarray:
        """Reduce *array* over the group; every rank gets the full result."""
        group = self._resolve(group)
        if op not in _REDUCE_OPS:
            raise SpmdError(f"unknown reduce op {op!r} (expected one of {_REDUCE_OPS})")
        arr = _copy_in(array)
        _check_mean_dtype(op, arr)
        if group.size == 1:
            t = self._vnow()
            self._log("all_reduce", arr.nbytes, 1, t, t)
            return arr
        result = self._run_collective(
            group,
            ("all_reduce", op),
            arr,
            lambda data: _reduce([data[i] for i in range(group.size)], op),
            payload_bytes=arr.nbytes,
        )
        return result.copy()

    def all_gather(self, array, group: ProcessGroup | None = None) -> list[np.ndarray]:
        """Gather every rank's array; returns private copies in group order."""
        group = self._resolve(group)
        arr = _copy_in(array)
        if group.size == 1:
            t = self._vnow()
            self._log("all_gather", arr.nbytes, 1, t, t)
            return [arr]
        parts = self._run_collective(
            group,
            ("all_gather",),
            arr,
            lambda data: [data[i] for i in range(group.size)],
            payload_bytes=arr.nbytes,
        )
        return [p.copy() for p in parts]

    def all_gather_concat(
        self, array, group: ProcessGroup | None = None, axis: int = 0
    ) -> np.ndarray:
        """AllGather then concatenate along *axis* (one logged collective)."""
        return np.concatenate(self.all_gather(array, group=group), axis=axis)

    def reduce_scatter(
        self,
        array,
        op: str = "sum",
        group: ProcessGroup | None = None,
        axis: int = 0,
        sizes: Sequence[int] | None = None,
    ) -> np.ndarray:
        """Reduce over the group, return this rank's slice of *axis*.

        With *sizes* (one entry per group rank, summing to the axis length)
        the split may be uneven; without it, a non-divisible axis falls back
        to the remainder convention of :func:`split_sizes` (first ``r`` ranks
        get one extra element).  Uneven splits are executed as *padded*
        collectives — every chunk is padded to the largest, the ring moves
        the padded volume (which is what the traffic log charges), and the
        pad is stripped before the result is returned.
        """
        group = self._resolve(group)
        if op not in _REDUCE_OPS:
            raise SpmdError(f"unknown reduce op {op!r} (expected one of {_REDUCE_OPS})")
        arr = _copy_in(array)
        _check_mean_dtype(op, arr)
        n = group.size
        dim = arr.shape[axis]
        if sizes is None:
            chunk_sizes = split_sizes(dim, n)
        else:
            chunk_sizes = tuple(int(s) for s in sizes)
            if len(chunk_sizes) != n:
                raise SpmdError(
                    f"reduce_scatter sizes must have one entry per group rank "
                    f"({n}), got {len(chunk_sizes)}"
                )
            if any(s < 0 for s in chunk_sizes) or sum(chunk_sizes) != dim:
                raise SpmdError(
                    f"reduce_scatter sizes {list(chunk_sizes)} do not partition "
                    f"axis {axis} of size {dim}"
                )
        # Padded-collective accounting: with uneven chunks the ring moves
        # max(chunk) per rank per step, i.e. n·max(chunk) total elements.
        padded_dim = max(chunk_sizes) * n if chunk_sizes else 0
        payload = arr.nbytes if dim == 0 else (arr.nbytes // dim) * padded_dim
        if n == 1:
            t = self._vnow()
            self._log("reduce_scatter", payload, 1, t, t)
            return arr
        full = self._run_collective(
            group,
            ("reduce_scatter", op, axis, chunk_sizes),
            arr,
            lambda data: _reduce([data[i] for i in range(n)], op),
            payload_bytes=payload,
        )
        me = group.rank_index(self.rank)
        lo = int(sum(chunk_sizes[:me]))
        idx = [slice(None)] * full.ndim
        idx[axis] = slice(lo, lo + chunk_sizes[me])
        return full[tuple(idx)].copy()

    def broadcast(self, value, root: int, group: ProcessGroup | None = None) -> np.ndarray:
        """Every rank receives a copy of the *root* world-rank's payload."""
        group = self._resolve(group)
        root_index = group.rank_index(root)
        payload = _copy_in(value) if self.rank == root else None
        if group.size == 1:
            t = self._vnow()
            self._log("broadcast", payload.nbytes, 1, t, t)
            return payload

        def compute(data: dict[int, Any]) -> np.ndarray:
            contributed = data[root_index]
            if contributed is None:
                raise SpmdError(f"broadcast root rank {root} supplied no payload")
            return contributed

        bid = payload.nbytes if payload is not None else 0
        try:
            result, vs, ve = self._rendezvous(
                group, ("broadcast", root), payload, compute, payload_bytes=bid
            )
        except BaseException:
            # Failed/aborted broadcasts still log (vend=-1), like every
            # other collective; non-root ranks only know their zero bid.
            self._log("broadcast", bid, group.size, self._vnow(), -1.0)
            raise
        self._log("broadcast", result.nbytes, group.size, vs, ve)
        return result.copy()

    def scatter(self, chunks, root: int, group: ProcessGroup | None = None) -> np.ndarray:
        """Root supplies one chunk per group rank; each rank gets its own."""
        group = self._resolve(group)
        root_index = group.rank_index(root)
        contribution = None
        payload = 0
        if self.rank == root:
            if chunks is None or len(chunks) != group.size:
                raise SpmdError(
                    f"scatter root must supply exactly {group.size} chunks, "
                    f"got {0 if chunks is None else len(chunks)}"
                )
            contribution = [_copy_in(c) for c in chunks]
            payload = sum(c.nbytes for c in contribution)
        if group.size == 1:
            t = self._vnow()
            self._log("scatter", payload, 1, t, t)
            return contribution[0]

        def compute(data: dict[int, Any]) -> list[np.ndarray]:
            sent = data[root_index]
            if sent is None:
                raise SpmdError(f"scatter root rank {root} supplied no chunks")
            return sent

        parts = self._run_collective(
            group, ("scatter", root), contribution, compute, payload_bytes=payload
        )
        return parts[group.rank_index(self.rank)].copy()

    def gather(self, array, root: int, group: ProcessGroup | None = None) -> list[np.ndarray] | None:
        """Inverse of scatter: the root receives every rank's array in group
        order; other ranks receive ``None``."""
        group = self._resolve(group)
        group.rank_index(root)  # validate membership
        arr = _copy_in(array)
        if group.size == 1:
            t = self._vnow()
            self._log("gather", arr.nbytes, 1, t, t)
            return [arr]
        parts = self._run_collective(
            group,
            ("gather", root),
            arr,
            lambda data: [data[i] for i in range(group.size)],
            payload_bytes=arr.nbytes,
        )
        if self.rank != root:
            return None
        return [p.copy() for p in parts]

    def all_to_all(self, sends, group: ProcessGroup | None = None) -> list[np.ndarray]:
        """Transpose: element *i* of the result is what group-rank *i* sent
        to this rank (their ``sends[my_group_index]``)."""
        group = self._resolve(group)
        n = group.size
        if len(sends) != n:
            raise SpmdError(f"all_to_all needs exactly {n} send buffers, got {len(sends)}")
        contribution = [_copy_in(s) for s in sends]
        payload = sum(c.nbytes for c in contribution)
        if n == 1:
            t = self._vnow()
            self._log("all_to_all", payload, 1, t, t)
            return [contribution[0]]
        matrix = self._run_collective(
            group,
            ("all_to_all",),
            contribution,
            lambda data: {i: data[i] for i in range(n)},
            payload_bytes=payload,
        )
        me = group.rank_index(self.rank)
        return [matrix[i][me].copy() for i in range(n)]

    # -- point-to-point ----------------------------------------------------
    def send(self, array, dst: int, tag: int = 0) -> None:
        """Deposit a tagged message for *dst* (non-blocking).

        With a clock the sender is charged the full transfer
        (store-and-forward); the message carries its virtual delivery time so
        the matching :meth:`recv` completes no earlier.
        """
        if not 0 <= dst < self.size:
            raise SpmdError(f"send dst {dst} out of range for world of size {self.size}")
        arr = _copy_in(array)
        clock = self.world.clock
        vstart = vend = -1.0
        if clock is not None:
            vstart = clock.now(self.rank)
            vend = vstart + clock.p2p_seconds(arr.nbytes, self.rank, dst)
            clock.sync(self.rank, vend)
        self._log("send", arr.nbytes, 2, vstart, vend)
        key = (self.rank, dst, int(tag))
        with self.world._mail_cond:
            self.world._mail.setdefault(key, deque()).append((arr, vend))
            self.world._mail_cond.notify_all()

    def recv(self, src: int, tag: int = 0) -> np.ndarray:
        """Block until a message with this (src, tag) arrives."""
        if not 0 <= src < self.size:
            raise SpmdError(f"recv src {src} out of range for world of size {self.size}")
        key = (src, self.rank, int(tag))
        with self.world._mail_cond:
            while True:
                queue = self.world._mail.get(key)
                if queue:
                    arr, sent_vend = queue.popleft()
                    break
                self.world._check_abort()
                self.world._mail_cond.wait(_POLL_S)
        clock = self.world.clock
        vstart = vend = -1.0
        if clock is not None:
            vstart = clock.now(self.rank)
            vend = max(vstart, sent_vend)
            clock.sync(self.rank, vend)
        self._log("recv", arr.nbytes, 2, vstart, vend)
        return arr

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Communicator(rank={self.rank}, size={self.size})"


def run_spmd_world(
    fn: Callable[..., Any],
    world_size: int,
    *args,
    timeout: float | None = None,
    timeline: bool = False,
    failure_plan: Any | None = None,
    clock: Any | None = None,
) -> tuple[list, World]:
    """Run ``fn(comm, *args)`` on every rank of a fresh world.

    Returns ``(results, world)`` with results in rank order; the world
    exposes ``traffic``, ``rank_status`` and ``default_group`` for
    post-mortem inspection.  Raises :class:`SpmdError` if any rank fails or
    the run exceeds *timeout* seconds (default 120); the error carries the
    failed ``rank`` and the dead ``world``.  ``timeline=True`` stamps every
    traffic record with a per-world sequence number and monotonic timestamp;
    ``failure_plan`` installs a scripted-crash plan consulted by
    :meth:`Communicator.tick`; ``clock`` installs a virtual clock (e.g.
    :class:`repro.perf.clock.VirtualClock`) that prices every collective and
    produces deterministic per-rank simulated timelines.
    """
    timeout = _DEFAULT_TIMEOUT_S if timeout is None else float(timeout)
    world = World(world_size, timeline=timeline, failure_plan=failure_plan, clock=clock)
    results: list = [None] * world_size

    def runner(rank: int) -> None:
        comm = Communicator(world, rank)
        try:
            results[rank] = fn(comm, *args)
            if clock is not None and hasattr(clock, "finalize_rank"):
                # Settle any in-flight eager collectives so the clock's
                # times() report the true per-rank makespan.
                clock.finalize_rank(rank)
            world.rank_status[rank] = "ok"
        except _Aborted:
            world.rank_status[rank] = "aborted"
        except BaseException as exc:
            world.rank_status[rank] = "failed"
            world.abort(rank, exc)

    threads = [
        threading.Thread(target=runner, args=(r,), name=f"spmd-rank-{r}", daemon=True)
        for r in range(world_size)
    ]
    start = time.monotonic()
    for t in threads:
        t.start()
    timed_out = False
    try:
        for t in threads:
            remaining = timeout - (time.monotonic() - start)
            t.join(max(0.0, remaining))
            if t.is_alive():
                timed_out = True
                break
    except BaseException as exc:
        # The driver thread was interrupted (Ctrl-C, a per-test alarm, ...):
        # tear the world down so rank threads stop executing fn and polling.
        world.abort(-1, exc)
        for t in threads:
            t.join(1.0)
        raise
    if timed_out:
        world.abort(-1, TimeoutError(f"SPMD world timed out after {timeout:g}s"))
        grace = 5.0
        for t in threads:
            t.join(grace)
    failure = world._failure
    if failure is not None:
        rank, exc = failure
        if rank < 0:
            err = SpmdError(
                f"SPMD world timed out after {timeout:g}s "
                "(likely a deadlocked or mismatched collective)"
            )
        else:
            err = SpmdError(f"rank {rank} failed: {type(exc).__name__}: {exc}")
        err.rank = rank
        err.world = world
        raise err from exc
    return results, world


def run_spmd(
    fn: Callable[..., Any],
    world_size: int,
    *args,
    timeout: float | None = None,
    timeline: bool = False,
    failure_plan: Any | None = None,
    clock: Any | None = None,
) -> list:
    """Like :func:`run_spmd_world` but returns only the per-rank results."""
    results, _ = run_spmd_world(
        fn,
        world_size,
        *args,
        timeout=timeout,
        timeline=timeline,
        failure_plan=failure_plan,
        clock=clock,
    )
    return results
